module tsq

go 1.22
