//go:build !race

package series

// raceBuild reports whether the test binary was built with the race
// detector, whose per-access instrumentation flattens the instruction-
// level parallelism the blocked-kernel speedup test measures.
const raceBuild = false
