package series

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSeries(rng *rand.Rand, n int) Series {
	s := make(Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()*25 + 100
	}
	return s
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanStd(t *testing.T) {
	s := Series{2, 4, 4, 4, 5, 5, 7, 9}
	if got := s.Mean(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample std with divisor n-1: sqrt(32/7).
	if got, want := s.Std(), math.Sqrt(32.0/7.0); !almostEqual(got, want, 1e-12) {
		t.Errorf("Std = %v, want %v", got, want)
	}
}

func TestMeanStdDegenerate(t *testing.T) {
	if got := (Series{}).Mean(); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
	if got := (Series{7}).Std(); got != 0 {
		t.Errorf("singleton std = %v", got)
	}
	if got := (Series{3, 3, 3}).Std(); got != 0 {
		t.Errorf("constant std = %v", got)
	}
}

func TestNormalFormProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 2
		s := randSeries(rand.New(rand.NewSource(seed)), n)
		norm, mean, std := s.NormalForm()
		if std == 0 {
			return true
		}
		// Normal form has mean ~0 and sample std ~1.
		if !almostEqual(norm.Mean(), 0, 1e-9) || !almostEqual(norm.Std(), 1, 1e-9) {
			return false
		}
		// Denormalize reconstructs the original.
		back := Denormalize(norm, mean, std)
		for i := range s {
			if !almostEqual(back[i], s[i], 1e-9*(1+math.Abs(s[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNormalFormConstantSeries(t *testing.T) {
	norm, mean, std := (Series{5, 5, 5, 5}).NormalForm()
	if mean != 5 || std != 0 {
		t.Errorf("mean/std = %v/%v, want 5/0", mean, std)
	}
	for _, v := range norm {
		if v != 0 {
			t.Errorf("constant normal form = %v, want zeros", norm)
		}
	}
}

func TestNormalFormMinimizesShiftDistance(t *testing.T) {
	// Property 1 of Sec. 3.2: subtracting the mean minimizes the Euclidean
	// distance over all scalar shifts.
	rng := rand.New(rand.NewSource(42))
	x := randSeries(rng, 64)
	y := randSeries(rng, 64)
	base := func(sx, sy float64) float64 {
		var ss float64
		for i := range x {
			d := (x[i] - sx) - (y[i] - sy)
			ss += d * d
		}
		return math.Sqrt(ss)
	}
	best := base(x.Mean(), y.Mean())
	for trial := 0; trial < 200; trial++ {
		sx := x.Mean() + rng.NormFloat64()*5
		sy := y.Mean() + rng.NormFloat64()*5
		if base(sx, sy) < best-1e-9 {
			t.Fatalf("shift (%v,%v) beats the mean shift: %v < %v", sx, sy, base(sx, sy), best)
		}
	}
}

func TestDistanceCorrelationIdentity(t *testing.T) {
	// Eq. 9 (self-consistent form): for normal forms,
	// D^2 = 2(n-1)(1 - rho).
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 3
		rng := rand.New(rand.NewSource(seed))
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		nx, _, sx := x.NormalForm()
		ny, _, sy := y.NormalForm()
		if sx == 0 || sy == 0 {
			return true
		}
		d := EuclideanDistance(nx, ny)
		rho := Correlation(x, y)
		want := 2 * float64(n-1) * (1 - rho)
		return almostEqual(d*d, want, 1e-6*(1+want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCorrelationInvariantToAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randSeries(rng, 50)
	y := randSeries(rng, 50)
	rho := Correlation(x, y)
	x2 := Add(Scale(x, 3.5), make(Series, 50))
	for i := range x2 {
		x2[i] += 42
	}
	if got := Correlation(x2, y); !almostEqual(got, rho, 1e-9) {
		t.Errorf("correlation changed under positive affine map: %v vs %v", got, rho)
	}
	// Negative scaling flips the sign.
	if got := Correlation(Scale(x, -2), y); !almostEqual(got, -rho, 1e-9) {
		t.Errorf("correlation under negation = %v, want %v", got, -rho)
	}
}

func TestCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randSeries(rng, 30)
		y := randSeries(rng, 30)
		rho := Correlation(x, y)
		return rho >= -1-1e-12 && rho <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	x := Series{1, 2, 3, 4}
	if got := Correlation(x, x); !almostEqual(got, 1, 1e-12) {
		t.Errorf("self correlation = %v", got)
	}
	if got := Correlation(x, Scale(x, -1)); !almostEqual(got, -1, 1e-12) {
		t.Errorf("anti correlation = %v", got)
	}
}

func TestThresholdTranslationRoundTrip(t *testing.T) {
	// Sec. 3.2: translating correlation -> distance -> correlation is the
	// identity; the paper's headline numbers hold (rho=0.96, n=128 => ~3.19).
	d := DistanceForCorrelation(128, 0.96)
	if !almostEqual(d, math.Sqrt(2*127*0.04), 1e-12) {
		t.Errorf("distance for rho=0.96,n=128 = %v", d)
	}
	if d < 3.18 || d > 3.20 {
		t.Errorf("distance for rho=0.96,n=128 = %v, want ~3.19 (paper: 'less than 3' ballpark)", d)
	}
	for _, rho := range []float64{-0.5, 0, 0.5, 0.9, 0.96, 0.99, 1} {
		back := CorrelationForDistance(100, DistanceForCorrelation(100, rho))
		if !almostEqual(back, rho, 1e-12) {
			t.Errorf("roundtrip rho %v -> %v", rho, back)
		}
	}
}

func TestDistances(t *testing.T) {
	a := Series{0, 0, 0}
	b := Series{3, 4, 0}
	if got := EuclideanDistance(a, b); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	if got := CityBlockDistance(a, b); !almostEqual(got, 7, 1e-12) {
		t.Errorf("CityBlock = %v, want 7", got)
	}
	// Triangle inequality property.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y, z := randSeries(rng, 20), randSeries(rng, 20), randSeries(rng, 20)
		return EuclideanDistance(x, z) <= EuclideanDistance(x, y)+EuclideanDistance(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMovingAverage(t *testing.T) {
	s := Series{1, 2, 3, 4, 5}
	got := MovingAverage(s, 3)
	want := Series{2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("MA[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Window 1 is the identity.
	id := MovingAverage(s, 1)
	for i := range s {
		if id[i] != s[i] {
			t.Errorf("MA1 not identity at %d", i)
		}
	}
	// Full window is the mean.
	full := MovingAverage(s, 5)
	if len(full) != 1 || !almostEqual(full[0], 3, 1e-12) {
		t.Errorf("MA5 = %v, want [3]", full)
	}
}

func TestMovingAverageMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randSeries(rng, 100)
	for _, m := range []int{1, 2, 7, 40, 100} {
		got := MovingAverage(s, m)
		for i := range got {
			var sum float64
			for j := 0; j < m; j++ {
				sum += s[i+j]
			}
			if !almostEqual(got[i], sum/float64(m), 1e-9) {
				t.Fatalf("m=%d i=%d: %v vs naive %v", m, i, got[i], sum/float64(m))
			}
		}
	}
}

func TestCircularMovingAverage(t *testing.T) {
	s := Series{10, 12, 10, 12}
	got := CircularMovingAverage(s, 2)
	want := Series{11, 11, 11, 11}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("CMA2[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// The appendix's mv2(s2) example (trailing windows).
	s2 := Series{10, 11, 12, 11}
	got2 := CircularMovingAverage(s2, 2)
	want2 := Series{10.5, 10.5, 11.5, 11.5}
	for i := range want2 {
		if !almostEqual(got2[i], want2[i], 1e-12) {
			t.Errorf("CMA2(s2)[%d] = %v, want %v", i, got2[i], want2[i])
		}
	}
}

func TestCircularMovingAverageMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := randSeries(rng, 37)
	for _, m := range []int{1, 2, 5, 36, 37} {
		got := CircularMovingAverage(s, m)
		for i := range got {
			var sum float64
			for j := 0; j < m; j++ {
				sum += s[((i-j)%len(s)+len(s))%len(s)]
			}
			if !almostEqual(got[i], sum/float64(m), 1e-9) {
				t.Fatalf("m=%d i=%d: %v vs naive %v", m, i, got[i], sum/float64(m))
			}
		}
	}
}

func TestMomentum(t *testing.T) {
	s := Series{1, 4, 9, 16}
	got := Momentum(s, 1)
	want := Series{3, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Momentum1[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	got2 := Momentum(s, 2)
	want2 := Series{8, 12}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Errorf("Momentum2[%d] = %v, want %v", i, got2[i], want2[i])
		}
	}
}

func TestCircularMomentum(t *testing.T) {
	s := Series{1, 4, 9, 16}
	got := CircularMomentum(s)
	want := Series{-15, 3, 5, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CircularMomentum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestShift(t *testing.T) {
	s := Series{1, 2, 3, 4}
	right := Shift(s, 2)
	wantR := Series{0, 0, 1, 2}
	for i := range wantR {
		if right[i] != wantR[i] {
			t.Errorf("Shift+2[%d] = %v, want %v", i, right[i], wantR[i])
		}
	}
	left := Shift(s, -1)
	wantL := Series{2, 3, 4, 0}
	for i := range wantL {
		if left[i] != wantL[i] {
			t.Errorf("Shift-1[%d] = %v, want %v", i, left[i], wantL[i])
		}
	}
	if zero := Shift(s, 0); EuclideanDistance(zero, s) != 0 {
		t.Error("Shift 0 is not the identity")
	}
	allZero := Shift(s, 10)
	for _, v := range allZero {
		if v != 0 {
			t.Errorf("overlong shift = %v, want zeros", allZero)
		}
	}
}

func TestPadZerosAndClone(t *testing.T) {
	s := Series{1, 2}
	p := PadZeros(s, 3)
	if len(p) != 5 || p[0] != 1 || p[4] != 0 {
		t.Errorf("PadZeros = %v", p)
	}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"MovingAverage window 0", func() { MovingAverage(Series{1, 2}, 0) }},
		{"MovingAverage window too big", func() { MovingAverage(Series{1, 2}, 3) }},
		{"CircularMovingAverage window 0", func() { CircularMovingAverage(Series{1}, 0) }},
		{"Momentum lag 0", func() { Momentum(Series{1, 2}, 0) }},
		{"Momentum lag too big", func() { Momentum(Series{1, 2}, 2) }},
		{"Distance mismatch", func() { EuclideanDistance(Series{1}, Series{1, 2}) }},
		{"Add mismatch", func() { Add(Series{1}, Series{1, 2}) }},
		{"Sub mismatch", func() { Sub(Series{1}, Series{1, 2}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestTimeScale(t *testing.T) {
	s := Series{0, 1, 2, 3}
	// Identity length.
	same := TimeScale(s, 4)
	for i := range s {
		if !almostEqual(same[i], s[i], 1e-12) {
			t.Fatalf("identity rescale changed the series: %v", same)
		}
	}
	// Upsample a linear ramp: stays linear.
	up := TimeScale(s, 7)
	if len(up) != 7 || !almostEqual(up[0], 0, 1e-12) || !almostEqual(up[6], 3, 1e-12) {
		t.Fatalf("upsample = %v", up)
	}
	for i := 1; i < 7; i++ {
		if !almostEqual(up[i]-up[i-1], 0.5, 1e-12) {
			t.Fatalf("upsampled ramp not linear: %v", up)
		}
	}
	// Downsample keeps the endpoints.
	down := TimeScale(Series{5, 1, 9, 2, 8, 3}, 3)
	if len(down) != 3 || down[0] != 5 || down[2] != 3 {
		t.Fatalf("downsample = %v", down)
	}
	// A scaled sine still correlates strongly with a natively sampled one.
	long := make(Series, 200)
	for i := range long {
		long[i] = math.Sin(2 * math.Pi * float64(i) / 200)
	}
	short := make(Series, 50)
	for i := range short {
		short[i] = math.Sin(2 * math.Pi * float64(i) / 50 * (199.0 / 200.0) * (49.0 / 49.0))
	}
	rescaled := TimeScale(long, 50)
	if rho := Correlation(rescaled, short); rho < 0.99 {
		t.Errorf("rescaled sine correlation %v", rho)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for m=1")
		}
	}()
	TimeScale(s, 1)
}
