// Package series provides the time-series kernel: the Series value type,
// distance measures (Euclidean, city-block), Pearson cross-correlation,
// normal forms, and the time-domain operations the paper's motivating
// examples use (moving average, momentum, time shift).
//
// Conventions. A time series is a finite sequence of float64 samples. The
// normal form of a series subtracts its mean and divides by its sample
// standard deviation (divisor n-1), which is the convention that makes the
// distance/correlation identity of Eq. (9) come out exactly as
// D^2 = 2(n-1)(1 - rho) for Pearson rho.
package series

import (
	"fmt"
	"math"
)

// Series is a time series: one real value per time point.
type Series []float64

// Clone returns an independent copy of s.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Mean returns the arithmetic mean of s. The mean of an empty series is 0.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Std returns the sample standard deviation of s (divisor n-1). Series
// shorter than two points have standard deviation 0.
func (s Series) Std() float64 {
	n := len(s)
	if n < 2 {
		return 0
	}
	mu := s.Mean()
	var ss float64
	for _, v := range s {
		d := v - mu
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Stats returns the mean and sample standard deviation in one pass pair.
func (s Series) Stats() (mean, std float64) {
	return s.Mean(), s.Std()
}

// NormalForm returns the normal form of s (Sec. 3.2): (s - mean)/std,
// together with the mean and std needed to reconstruct the original. A
// constant series (std == 0) normalizes to all zeros.
func (s Series) NormalForm() (norm Series, mean, std float64) {
	mean, std = s.Stats()
	norm = make(Series, len(s))
	if std == 0 {
		return norm, mean, std
	}
	for i, v := range s {
		norm[i] = (v - mean) / std
	}
	return norm, mean, std
}

// Denormalize reverses NormalForm: returns norm*std + mean.
func Denormalize(norm Series, mean, std float64) Series {
	out := make(Series, len(norm))
	for i, v := range norm {
		out[i] = v*std + mean
	}
	return out
}

// EuclideanDistance returns the L2 distance between two equal-length series.
//
// The loop is blocked four samples wide over four independent
// accumulators: the loop body is pure float arithmetic with no
// loop-carried dependency on a single running sum, the shape a
// vectorizing backend maps onto SIMD lanes and that on a scalar backend
// still overlaps the four chains. DistEuclideanAbandon uses the exact
// same shape and final combine order ((s0+s1)+(s2+s3)), so completed
// sums of the two kernels are bit-identical.
func EuclideanDistance(a, b Series) float64 {
	checkLen("EuclideanDistance", a, b)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return math.Sqrt((s0 + s1) + (s2 + s3))
}

// DistEuclideanAbandon is EuclideanDistance with an early-abandoning
// cutoff: squared differences are non-negative, so the partial sums
// grow monotonically and the loop stops as soon as they prove the
// distance exceeds eps. When it abandons it returns (lb, true) with lb
// a lower bound on the true distance; otherwise the value is
// bit-identical to EuclideanDistance and abandoned is false. The
// cutoff sits slightly above eps² so the abandon decision can never
// disagree with the exact kernel at the boundary (sqrt rounding). The
// loop is blocked exactly like EuclideanDistance, with the cutoff
// checked once per four-sample block; partial sums only grow, so
// block-granular checking abandons on the same inputs as per-sample
// checking — whenever the full sum would exceed the cutoff.
func DistEuclideanAbandon(a, b Series, eps float64) (float64, bool) {
	checkLen("DistEuclideanAbandon", a, b)
	cut := eps*eps*(1+1e-9) + 1e-9
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if ss := (s0 + s1) + (s2 + s3); ss > cut {
			return math.Sqrt(ss), true
		}
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
		if ss := (s0 + s1) + (s2 + s3); ss > cut {
			return math.Sqrt(ss), true
		}
	}
	return math.Sqrt((s0 + s1) + (s2 + s3)), false
}

// CityBlockDistance returns the L1 distance between two equal-length series.
func CityBlockDistance(a, b Series) float64 {
	checkLen("CityBlockDistance", a, b)
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// Correlation returns the Pearson cross-correlation coefficient between two
// equal-length series, in [-1, 1]. If either series is constant the
// correlation is undefined and 0 is returned.
func Correlation(a, b Series) float64 {
	checkLen("Correlation", a, b)
	n := len(a)
	if n < 2 {
		return 0
	}
	ma, mb := a.Mean(), b.Mean()
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// DistanceForCorrelation translates a correlation threshold into the
// equivalent Euclidean-distance threshold on normal forms (Eq. 9, with the
// self-consistent constant): D^2 = 2(n-1)(1-rho).
func DistanceForCorrelation(n int, rho float64) float64 {
	if n < 2 {
		return 0
	}
	d2 := 2 * float64(n-1) * (1 - rho)
	if d2 < 0 {
		return 0
	}
	return math.Sqrt(d2)
}

// CorrelationForDistance is the inverse translation of
// DistanceForCorrelation: given a distance threshold on normal forms it
// returns the corresponding correlation threshold.
func CorrelationForDistance(n int, d float64) float64 {
	if n < 2 {
		return 0
	}
	return 1 - d*d/(2*float64(n-1))
}

// MovingAverage returns the plain (non-circular) m-day moving average of s:
// output[i] = mean(s[i..i+m-1]). The result is m-1 points shorter than s.
// m must be in [1, len(s)].
func MovingAverage(s Series, m int) Series {
	if m < 1 || m > len(s) {
		panic(fmt.Sprintf("series: MovingAverage window %d out of range for length %d", m, len(s)))
	}
	out := make(Series, len(s)-m+1)
	var window float64
	for i := 0; i < m; i++ {
		window += s[i]
	}
	out[0] = window / float64(m)
	for i := 1; i < len(out); i++ {
		window += s[i+m-1] - s[i-1]
		out[i] = window / float64(m)
	}
	return out
}

// CircularMovingAverage returns the circular m-day moving average used by
// the frequency-domain moving-average transformation: output[i] is the mean
// of the trailing window s[i-m+1 mod n], ..., s[i]. The trailing convention
// is the one the paper's appendix uses (mv2 of [10 11 12 11] is
// [10.5 10.5 11.5 11.5]). The output has the same length as s. m must be
// in [1, len(s)].
func CircularMovingAverage(s Series, m int) Series {
	n := len(s)
	if m < 1 || m > n {
		panic(fmt.Sprintf("series: CircularMovingAverage window %d out of range for length %d", m, n))
	}
	out := make(Series, n)
	var window float64
	for j := 0; j < m; j++ {
		window += s[((0-j)%n+n)%n]
	}
	for i := 0; i < n; i++ {
		out[i] = window / float64(m)
		window += s[(i+1)%n] - s[((i+1-m)%n+n)%n]
	}
	return out
}

// Momentum returns the lag-k momentum of s: out[i] = s[i+k] - s[i]. The
// result is k points shorter than s. k must be in [1, len(s)-1].
func Momentum(s Series, k int) Series {
	if k < 1 || k >= len(s) {
		panic(fmt.Sprintf("series: Momentum lag %d out of range for length %d", k, len(s)))
	}
	out := make(Series, len(s)-k)
	for i := range out {
		out[i] = s[i+k] - s[i]
	}
	return out
}

// CircularMomentum returns the circular lag-1 momentum used by the
// frequency-domain momentum transformation: the circular convolution of s
// with [1, -1, 0, ..., 0] per Sec. 3.1.1. The output has the same length
// as s: out[i] = s[i] - s[i-1 mod n].
func CircularMomentum(s Series) Series {
	n := len(s)
	out := make(Series, n)
	for i := 0; i < n; i++ {
		out[i] = s[i] - s[((i-1)%n+n)%n]
	}
	return out
}

// Shift returns s shifted k points to the right, padded with zeros on the
// left and truncated to the original length (the Sec. 3.1.2 convention of
// forgetting overflow values). Negative k shifts left. |k| larger than the
// series length yields all zeros.
func Shift(s Series, k int) Series {
	n := len(s)
	out := make(Series, n)
	for i := 0; i < n; i++ {
		j := i - k
		if j >= 0 && j < n {
			out[i] = s[j]
		}
	}
	return out
}

// TimeScale resamples s to length m by linear interpolation, the
// g(t) = f(c*t) time-scaling operation of the companion paper. Unlike the
// other operations here it is not expressible as a linear transformation
// over the Fourier coefficients of a fixed length, so it is a series
// utility rather than an indexable transform: scale first, then query.
// m must be at least 2 and s at least 2 points long.
func TimeScale(s Series, m int) Series {
	if len(s) < 2 || m < 2 {
		panic(fmt.Sprintf("series: TimeScale from %d to %d points", len(s), m))
	}
	out := make(Series, m)
	scale := float64(len(s)-1) / float64(m-1)
	for i := 0; i < m; i++ {
		pos := float64(i) * scale
		j := int(pos)
		if j >= len(s)-1 {
			out[i] = s[len(s)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = s[j]*(1-frac) + s[j+1]*frac
	}
	return out
}

// PadZeros returns s extended with k trailing zeros.
func PadZeros(s Series, k int) Series {
	out := make(Series, len(s)+k)
	copy(out, s)
	return out
}

// Scale returns c*s.
func Scale(s Series, c float64) Series {
	out := make(Series, len(s))
	for i, v := range s {
		out[i] = c * v
	}
	return out
}

// Add returns a+b elementwise.
func Add(a, b Series) Series {
	checkLen("Add", a, b)
	out := make(Series, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// Sub returns a-b elementwise.
func Sub(a, b Series) Series {
	checkLen("Sub", a, b)
	out := make(Series, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

func checkLen(op string, a, b Series) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("series: %s on mismatched lengths %d and %d", op, len(a), len(b)))
	}
}
