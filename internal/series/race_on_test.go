//go:build race

package series

// raceBuild reports whether the test binary was built with the race
// detector; see race_off_test.go.
const raceBuild = true
