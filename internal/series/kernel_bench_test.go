package series

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// euclideanScalarRef is the pre-blocking form of the Euclidean kernel —
// a single accumulator, so every addition waits on the previous one.
// It is kept in the test file as the reference the blocked kernel is
// benchmarked against; the bit-identity of the blocked kernel is pinned
// separately (TestBlockedKernelMatchesScalarSum below) against the
// blocked summation order, not against this chain.
func euclideanScalarRef(a, b Series) float64 {
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

func kernelBenchPair(n int, seed int64) (Series, Series) {
	rng := rand.New(rand.NewSource(seed))
	x := make(Series, n)
	y := make(Series, n)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	return x, y
}

func benchEuclidean(b *testing.B, f func(x, y Series) float64, n int) {
	x, y := kernelBenchPair(n, 1)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += f(x, y)
	}
	if sink == 0 {
		b.Fatal("kernel returned zero on random input")
	}
}

// BenchmarkKernelEuclideanScalar / BenchmarkKernelEuclideanBlocked are
// the micro-benchmark pair for the blocked Euclidean kernel: same
// inputs, single dependency chain vs four independent accumulators.
func BenchmarkKernelEuclideanScalar(b *testing.B)  { benchEuclidean(b, euclideanScalarRef, 128) }
func BenchmarkKernelEuclideanBlocked(b *testing.B) { benchEuclidean(b, EuclideanDistance, 128) }

// BenchmarkKernelEuclideanAbandonSurvive measures the abandoning kernel
// on a candidate that survives to the end (the cutoff check is pure
// overhead here); BenchmarkKernelEuclideanAbandonEarly on one abandoned
// in the first blocks.
func BenchmarkKernelEuclideanAbandonSurvive(b *testing.B) {
	x, y := kernelBenchPair(128, 1)
	cut := EuclideanDistance(x, y) + 1
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := DistEuclideanAbandon(x, y, cut)
		sink += d
	}
	if sink == 0 {
		b.Fatal("kernel returned zero on random input")
	}
}

func BenchmarkKernelEuclideanAbandonEarly(b *testing.B) {
	x, y := kernelBenchPair(128, 1)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, _ := DistEuclideanAbandon(x, y, 1e-3)
		sink += d
	}
	if sink == 0 {
		b.Fatal("kernel returned zero on random input")
	}
}

// minKernelTime runs f in fixed-size batches and returns the fastest
// batch. Interleaved best-of-N is robust to frequency scaling and
// scheduler noise in a way one long run is not: both variants see the
// same machine states, and the minimum discards the slow outliers.
func minKernelTime(f func() float64, batch, rounds int) (time.Duration, float64) {
	best := time.Duration(math.MaxInt64)
	var sink float64
	for r := 0; r < rounds; r++ {
		start := time.Now()
		for i := 0; i < batch; i++ {
			sink += f()
		}
		if el := time.Since(start); el < best {
			best = el
		}
	}
	return best, sink
}

// TestBlockedEuclideanFaster asserts the point of the blocked kernel:
// with four independent accumulators the additions pipeline instead of
// serializing on one chain, so the blocked form must beat the scalar
// reference. The threshold is deliberately below the ~1.4× this
// machine shows steady-state, to absorb CI noise; the race detector's
// per-access instrumentation removes the parallelism being measured,
// so the test is skipped under -race (and under -short).
func TestBlockedEuclideanFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion skipped in short mode")
	}
	if raceBuild {
		t.Skip("race instrumentation serializes the kernel; speedup not measurable")
	}
	x, y := kernelBenchPair(128, 1)
	const batch, rounds = 20000, 7
	var scalarBest, blockedBest time.Duration
	scalarBest = time.Duration(math.MaxInt64)
	blockedBest = scalarBest
	var sink float64
	// Interleave the two variants round by round so slow machine states
	// (GC, frequency dips) hit both.
	for r := 0; r < rounds; r++ {
		s, v1 := minKernelTime(func() float64 { return euclideanScalarRef(x, y) }, batch, 1)
		bl, v2 := minKernelTime(func() float64 { return EuclideanDistance(x, y) }, batch, 1)
		sink += v1 + v2
		if s < scalarBest {
			scalarBest = s
		}
		if bl < blockedBest {
			blockedBest = bl
		}
	}
	if sink == 0 {
		t.Fatal("kernels returned zero on random input")
	}
	ratio := float64(scalarBest) / float64(blockedBest)
	t.Logf("scalar %v, blocked %v per %d calls: %.2fx", scalarBest, blockedBest, batch, ratio)
	if ratio < 1.1 {
		t.Errorf("blocked Euclidean kernel only %.2fx the scalar reference, want >= 1.1x", ratio)
	}
}

// TestBlockedKernelMatchesScalarSum pins the summation order contract:
// the blocked kernel's value equals the explicitly re-derived blocked
// sum (four accumulators, tail into the first, combined pairwise) —
// bit for bit, across lengths covering every tail residue.
func TestBlockedKernelMatchesScalarSum(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 64, 127, 128, 129} {
		x := make(Series, n)
		y := make(Series, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+4 <= n; i += 4 {
			d0, d1, d2, d3 := x[i]-y[i], x[i+1]-y[i+1], x[i+2]-y[i+2], x[i+3]-y[i+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		for ; i < n; i++ {
			d := x[i] - y[i]
			s0 += d * d
		}
		want := math.Sqrt((s0 + s1) + (s2 + s3))
		if got := EuclideanDistance(x, y); got != want {
			t.Fatalf("n=%d: EuclideanDistance = %v, blocked sum = %v", n, got, want)
		}
	}
}
