package series

import (
	"math/rand"
	"testing"
)

// TestDistEuclideanAbandonAgreesWithExact: not abandoned means
// bit-identical to EuclideanDistance; abandoned means the exact
// distance exceeds eps.
func TestDistEuclideanAbandonAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var abandons, passes int
	for trial := 0; trial < 5000; trial++ {
		n := 2 + rng.Intn(120)
		a := make(Series, n)
		b := make(Series, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		exact := EuclideanDistance(a, b)
		eps := exact * (0.5 + rng.Float64())
		d, abandoned := DistEuclideanAbandon(a, b, eps)
		if abandoned {
			abandons++
			if exact <= eps {
				t.Fatalf("trial %d: abandoned at eps=%v but exact %v qualifies", trial, eps, exact)
			}
		} else {
			passes++
			if d != exact {
				t.Fatalf("trial %d: non-abandoned %v != exact %v", trial, d, exact)
			}
		}
		// eps equal to the true distance must never abandon (boundary
		// slack contract).
		if _, ab := DistEuclideanAbandon(a, b, exact); ab {
			t.Fatalf("trial %d: abandoned at eps == exact distance", trial)
		}
	}
	if abandons == 0 || passes == 0 {
		t.Fatalf("degenerate trial mix: %d abandons, %d passes", abandons, passes)
	}
}
