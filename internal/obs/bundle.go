package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime/debug"
	"runtime/pprof"
	"time"

	"tsq/internal/obs/capture"
)

// Support bundle: one versioned JSON artifact capturing everything the
// diagnostics layer knows, so "send me the bundle" replaces a dozen
// back-and-forth curl commands when a production query goes bad. A
// bundle snapshots the build and runtime environment, the metrics
// registry (with exemplars), the windowed rates, the flight recorder's
// slow queries, an optional index-health report, and (flag-gated)
// short CPU and heap profiles — and then audits itself: a set of
// reconciliation checks cross-verifies the registry's counters against
// histogram totals and the recorder's trace-derived rollups, the same
// discipline as the EXPLAIN ANALYZE trace-vs-storage assertion. A
// bundle whose checks fail is still written (the mismatch is itself
// the diagnostic); OK() reports the verdict.

// BundleSchemaVersion identifies the bundle JSON shape.
const BundleSchemaVersion = 1

// BundleOptions configures bundle collection.
type BundleOptions struct {
	// CounterHistogramPairs maps counter names to histogram names that
	// must agree exactly (the counter increments once per observation).
	// The facade passes its query-counter/latency-histogram pairs.
	CounterHistogramPairs map[string]string
	// ExpectCompleteRecorder asserts that the recorder has seen every
	// query the registry counted (recorder installed at process start,
	// nothing evicted): the paired counters must sum to the recorder's
	// total. tsquery -bundle runs under this regime; a long-lived
	// server that enabled recording late does not.
	ExpectCompleteRecorder bool
	// CPUProfile, when positive, collects a CPU profile of that
	// duration into the bundle (the process must not already be
	// profiling). Flag-gated because it blocks collection for the
	// duration and costs a few percent CPU.
	CPUProfile time.Duration
	// HeapProfile includes a heap profile snapshot.
	HeapProfile bool
}

// BuildSection identifies the binary.
type BuildSection struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

// Check is one reconciliation result.
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail"`
}

// Bundle is the versioned support artifact. Index is an opaque
// JSON-encoded health report supplied by the facade (this package
// cannot import the engine).
type Bundle struct {
	SchemaVersion int          `json:"schema_version"`
	CreatedAt     time.Time    `json:"created_at"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Build         BuildSection `json:"build"`
	Runtime       RuntimeInfo  `json:"runtime"`

	Metrics  Snapshot          `json:"metrics"`
	Rates    *RatesReport      `json:"rates,omitempty"`
	Queries  *RecorderSnapshot `json:"queries,omitempty"`
	QueryLog *QueryLogStats    `json:"query_log,omitempty"`
	Capture  *capture.Stats    `json:"capture,omitempty"`
	Index    json.RawMessage   `json:"index,omitempty"`

	// Reconciliation audits the sections against each other; see OK.
	Reconciliation []Check `json:"reconciliation"`

	// Profiles holds pprof profiles keyed by name ("cpu", "heap"),
	// base64-encoded by the JSON marshaller. ProfileError records a
	// collection failure without failing the bundle.
	Profiles     map[string][]byte `json:"profiles,omitempty"`
	ProfileError string            `json:"profile_error,omitempty"`
}

// OK reports whether every reconciliation check passed.
func (b *Bundle) OK() bool {
	for _, c := range b.Reconciliation {
		if !c.OK {
			return false
		}
	}
	return true
}

// FailedChecks returns the reconciliation checks that did not pass.
func (b *Bundle) FailedChecks() []Check {
	var out []Check
	for _, c := range b.Reconciliation {
		if !c.OK {
			out = append(out, c)
		}
	}
	return out
}

// WriteJSON writes the bundle as indented JSON.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// String renders the build section on one line — the CLIs' -version
// output.
func (b BuildSection) String() string {
	s := b.GoVersion
	if b.Path != "" {
		s += " " + b.Path
	}
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	}
	s += " revision " + rev
	if b.Modified {
		s += " (modified)"
	}
	return s
}

// ReadBuildSection captures the binary's build provenance; every
// failure mode degrades to empty fields (a bundle must never fail
// because the binary lacks VCS stamps).
func ReadBuildSection() BuildSection {
	b := BuildSection{GoVersion: ReadRuntimeInfo().GoVersion}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	b.Path = info.Main.Path
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// NewBundle collects a bundle from the given sources. sampler, rec,
// qlog and cw may be nil (their sections are omitted); indexHealth may
// be nil. windows selects the rate spans when a sampler is present.
func NewBundle(reg *Registry, sampler *Sampler, rec *Recorder, qlog *QueryLogger, cw *capture.Writer, indexHealth json.RawMessage, opts BundleOptions, windows ...time.Duration) *Bundle {
	b := &Bundle{
		SchemaVersion: BundleSchemaVersion,
		CreatedAt:     time.Now(),
		UptimeSeconds: Uptime().Seconds(),
		Build:         ReadBuildSection(),
		Runtime:       ReadRuntimeInfo(),
		Index:         indexHealth,
	}
	// Profiles first: the CPU profile needs the process to keep doing
	// whatever it is doing, and the registry snapshot should be the
	// freshest section (it is what reconciliation audits).
	collectProfiles(b, opts)
	if rec != nil {
		snap := rec.Snapshot()
		b.Queries = &snap
	}
	if qlog != nil {
		st := qlog.Stats()
		b.QueryLog = &st
	}
	if cw != nil {
		st := cw.Stats()
		b.Capture = &st
	}
	if sampler != nil {
		rr := sampler.Report(windows...)
		b.Rates = &rr
	}
	b.Metrics = reg.Snapshot()
	b.Reconciliation = reconcile(b, opts)
	return b
}

// collectProfiles gathers the flag-gated pprof profiles.
func collectProfiles(b *Bundle, opts BundleOptions) {
	if opts.CPUProfile <= 0 && !opts.HeapProfile {
		return
	}
	b.Profiles = make(map[string][]byte)
	if opts.CPUProfile > 0 {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			b.ProfileError = err.Error()
		} else {
			time.Sleep(opts.CPUProfile)
			pprof.StopCPUProfile()
			b.Profiles["cpu"] = buf.Bytes()
		}
	}
	if opts.HeapProfile {
		var buf bytes.Buffer
		if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
			b.ProfileError = err.Error()
		} else {
			b.Profiles["heap"] = buf.Bytes()
		}
	}
}

// reconcile audits the collected sections against each other.
func reconcile(b *Bundle, opts BundleOptions) []Check {
	var checks []Check
	add := func(name string, ok bool, format string, args ...any) {
		checks = append(checks, Check{Name: name, OK: ok, Detail: fmt.Sprintf(format, args...)})
	}

	counters := make(map[string]int64, len(b.Metrics.Counters))
	for _, c := range b.Metrics.Counters {
		counters[c.Name] = c.Value
	}
	hists := make(map[string]HistogramSnap, len(b.Metrics.Histograms))
	for _, h := range b.Metrics.Histograms {
		hists[h.Name] = h
	}

	// Every histogram's buckets must sum to its observation count.
	for _, h := range b.Metrics.Histograms {
		var sum int64
		for _, c := range h.Counts {
			sum += c
		}
		add("histogram_buckets/"+h.Name, sum == h.Count,
			"bucket sum %d vs count %d", sum, h.Count)
	}

	// Paired counters and histograms move in lockstep: the facade
	// increments the counter and observes the latency once per query.
	var pairedTotal int64
	for cname, hname := range opts.CounterHistogramPairs {
		cv, cok := counters[cname]
		h, hok := hists[hname]
		if !cok || !hok {
			add("counter_histogram/"+cname, false, "missing %s=%v %s=%v", cname, cok, hname, hok)
			continue
		}
		pairedTotal += cv
		add("counter_histogram/"+cname, cv == h.Count,
			"counter %d vs histogram count %d", cv, h.Count)
	}

	// Exemplar ids must have been issued by this process.
	maxID := LastQueryID()
	for _, h := range b.Metrics.Histograms {
		for _, ex := range h.Exemplars {
			if ex.QueryID > maxID {
				add("exemplar_ids/"+h.Name, false,
					"bucket %d carries query id %d but only %d were issued", ex.Bucket, ex.QueryID, maxID)
			}
		}
	}

	if b.Queries != nil {
		q := b.Queries
		// Ring accounting: every slow query seen is either retained or
		// counted as evicted.
		slowSeen := q.Total - q.Sampled
		add("recorder_ring", slowSeen == q.Evicted+uint64(len(q.Slow)),
			"slow seen %d vs evicted %d + retained %d", slowSeen, q.Evicted, len(q.Slow))

		// Trace-derived rollups: each retained record's headline counts
		// must be recomputable from its own trace — the bundle-level
		// form of the EXPLAIN ANALYZE trace-vs-storage cross-check.
		traced, mismatched := 0, 0
		for _, recs := range [][]QueryRecord{q.Slow, q.Sample} {
			for _, r := range recs {
				if r.Trace == nil {
					continue
				}
				traced++
				if r.Matches != r.Trace.Sum(KindVerify, AMatches) ||
					r.Candidates != r.Trace.Sum(KindFilter, ACandidates) ||
					r.Transforms != r.Trace.Sum(KindProbe, ATransforms) {
					mismatched++
				}
			}
		}
		add("recorder_trace_rollups", mismatched == 0,
			"%d traced records, %d with rollups diverging from their trace", traced, mismatched)

		if opts.ExpectCompleteRecorder {
			add("recorder_coverage", uint64(pairedTotal) == q.Total,
				"registry counted %d queries vs recorder total %d", pairedTotal, q.Total)
		}
	}

	if b.Capture != nil {
		// Capture accounting: every query the journal saw was written,
		// sampled out, or explicitly dropped — nothing vanishes silently.
		c := b.Capture
		add("capture_accounting", c.Seen == c.Written+c.SampledOut+c.Dropped,
			"seen %d vs written %d + sampled out %d + dropped %d",
			c.Seen, c.Written, c.SampledOut, c.Dropped)
		add("capture_healthy", c.Dropped == 0 && c.LastError == "",
			"dropped %d, last error %q", c.Dropped, c.LastError)
	}
	return checks
}
