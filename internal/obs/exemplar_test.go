package obs

import (
	"testing"
	"time"
)

// TestExemplarsRetainLastQueryPerBucket: each bucket remembers the most
// recent tagged observation; untagged buckets stay empty.
func TestExemplarsRetainLastQueryPerBucket(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	if got := h.exemplars(); got != nil {
		t.Errorf("disabled histogram reports exemplars: %v", got)
	}
	h.EnableExemplars()
	h.EnableExemplars() // idempotent

	h.ObserveExemplar(5, 1)    // bucket 0
	h.ObserveExemplar(7, 2)    // bucket 0, overwrites id 1
	h.ObserveExemplar(500, 3)  // bucket 2
	h.ObserveExemplar(5000, 4) // bucket 3 (unbounded)
	h.Observe(50)              // bucket 1, untagged — leaves no exemplar
	before := time.Now().UnixNano()

	ex := h.exemplars()
	if len(ex) != 3 {
		t.Fatalf("got %d exemplars, want 3: %+v", len(ex), ex)
	}
	want := []Exemplar{
		{Bucket: 0, QueryID: 2, Value: 7},
		{Bucket: 2, QueryID: 3, Value: 500},
		{Bucket: 3, QueryID: 4, Value: 5000},
	}
	for i, w := range want {
		g := ex[i]
		if g.Bucket != w.Bucket || g.QueryID != w.QueryID || g.Value != w.Value {
			t.Errorf("exemplar[%d] = %+v, want %+v", i, g, w)
		}
		if g.UnixNano <= 0 || g.UnixNano > before {
			t.Errorf("exemplar[%d] timestamp %d out of range", i, g.UnixNano)
		}
	}

	// Id 0 counts the observation but records no exemplar.
	h.ObserveExemplar(50, 0)
	if got := len(h.exemplars()); got != 3 {
		t.Errorf("id-0 observation created an exemplar (%d total)", got)
	}
	if h.Count() != 6 {
		t.Errorf("histogram count = %d, want 6", h.Count())
	}
}

// TestExemplarsInSnapshot: registry snapshots surface exemplars on the
// owning histogram.
func TestExemplarsInSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_ns", DurationBuckets())
	h.EnableExemplars()
	h.ObserveDurationExemplar(3*time.Millisecond, 11)

	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot has %d histograms", len(snap.Histograms))
	}
	ex := snap.Histograms[0].Exemplars
	if len(ex) != 1 || ex[0].QueryID != 11 || ex[0].Value != (3*time.Millisecond).Nanoseconds() {
		t.Errorf("snapshot exemplars = %+v", ex)
	}
}

// TestObserveExemplarDisabledAllocs: with exemplars never enabled, the
// tagged observe path is Observe plus one atomic load — no allocations.
func TestObserveExemplarDisabledAllocs(t *testing.T) {
	h := NewHistogram(DurationBuckets())
	if n := testing.AllocsPerRun(100, func() { h.ObserveExemplar(12345, 9) }); n != 0 {
		t.Errorf("disabled ObserveExemplar allocates %.1f/op, want 0", n)
	}
	// Enabled writes are three atomic stores — still alloc-free.
	h.EnableExemplars()
	if n := testing.AllocsPerRun(100, func() { h.ObserveExemplar(12345, 9) }); n != 0 {
		t.Errorf("enabled ObserveExemplar allocates %.1f/op, want 0", n)
	}
}
