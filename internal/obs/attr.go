package obs

import (
	"runtime"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Per-query resource attribution. The facade samples process resource
// totals (heap allocation, GC activity) immediately before and after a
// query and books the delta into QueryStats and the root span, so a
// slow-query record answers not just "what did the engine do" but
// "what did it cost the process". The totals are process-wide: under
// concurrent queries the deltas overlap and attribute shared work (GC
// runs for everyone) to whichever queries were in flight — a signal
// for diagnostics, not an exact accounting. Attribution is opt-in and
// the disabled path is one atomic load, zero allocations.

// processStart anchors uptime reporting (/rates, support bundles).
var processStart = time.Now()

// Uptime returns the time since the process (strictly: this package)
// was initialized.
func Uptime() time.Duration { return time.Since(processStart) }

// attributionOn gates per-query resource sampling and pprof labeling.
var attributionOn atomic.Bool

// SetAttribution turns per-query resource attribution on or off.
func SetAttribution(on bool) { attributionOn.Store(on) }

// AttributionEnabled reports whether per-query resource attribution is
// on. The disabled check is a single atomic load.
func AttributionEnabled() bool { return attributionOn.Load() }

// queryID issues process-wide query ids; 0 means "no id".
var queryID atomic.Uint64

// NextQueryID returns a fresh nonzero query id. The id links a query's
// artifacts across the diagnostics layer: the query log record, the
// flight-recorder entry, and the histogram exemplar its latency landed
// in all carry the same id.
func NextQueryID() uint64 { return queryID.Add(1) }

// LastQueryID returns the most recently issued query id (0 before the
// first query). Bundle reconciliation uses it as an upper bound for
// exemplar ids.
func LastQueryID() uint64 { return queryID.Load() }

// Resources is a snapshot of cumulative process resource totals, or
// (via Sub) the delta over a query.
type Resources struct {
	// AllocBytes is the cumulative heap allocation in bytes
	// (runtime/metrics /gc/heap/allocs:bytes).
	AllocBytes int64 `json:"alloc_bytes"`
	// Mallocs is the cumulative heap object count
	// (/gc/heap/allocs:objects).
	Mallocs int64 `json:"mallocs"`
	// GCCycles is the number of completed GC cycles (debug.GCStats.NumGC).
	GCCycles int64 `json:"gc_cycles"`
	// GCPauseNs is the cumulative stop-the-world pause time in
	// nanoseconds (debug.GCStats.PauseTotal).
	GCPauseNs int64 `json:"gc_pause_ns"`
}

// Sub returns the delta r - prev.
func (r Resources) Sub(prev Resources) Resources {
	return Resources{
		AllocBytes: r.AllocBytes - prev.AllocBytes,
		Mallocs:    r.Mallocs - prev.Mallocs,
		GCCycles:   r.GCCycles - prev.GCCycles,
		GCPauseNs:  r.GCPauseNs - prev.GCPauseNs,
	}
}

// resReader holds the reusable buffers one resource read needs; pooled
// so the steady state allocates nothing.
type resReader struct {
	samples [2]metrics.Sample
	gc      debug.GCStats
}

var resPool = sync.Pool{New: func() any {
	r := &resReader{}
	r.samples[0].Name = "/gc/heap/allocs:bytes"
	r.samples[1].Name = "/gc/heap/allocs:objects"
	// debug.ReadGCStats reallocates Pause when its capacity is below
	// 2*256+3 (two copies of the runtime's pause history plus three
	// trailer words); pre-size it so pooled readers never reallocate.
	r.gc.Pause = make([]time.Duration, 0, 2*256+3)
	return r
}}

// ReadResources samples the process resource totals: two fixed
// runtime/metrics reads plus one debug.ReadGCStats, microseconds of
// work and zero allocations in the steady state (buffers are pooled).
func ReadResources() Resources {
	r := resPool.Get().(*resReader)
	metrics.Read(r.samples[:])
	debug.ReadGCStats(&r.gc)
	res := Resources{
		AllocBytes: int64(r.samples[0].Value.Uint64()),
		Mallocs:    int64(r.samples[1].Value.Uint64()),
		GCCycles:   r.gc.NumGC,
		GCPauseNs:  r.gc.PauseTotal.Nanoseconds(),
	}
	resPool.Put(r)
	return res
}

// runtimeSampler caches one batch of runtime/metrics reads so the
// function-backed registry gauges don't re-read the runtime when a
// snapshot samples several of them back to back.
type runtimeSampler struct {
	mu      sync.Mutex
	at      time.Time
	samples []metrics.Sample
	vals    map[string]int64
	pause   int64
}

const runtimeSampleTTL = 100 * time.Millisecond

func newRuntimeSampler(names []string) *runtimeSampler {
	rs := &runtimeSampler{vals: make(map[string]int64, len(names))}
	for _, n := range names {
		rs.samples = append(rs.samples, metrics.Sample{Name: n})
	}
	return rs
}

// value returns the latest sampled value of the named metric,
// refreshing the batch when the cache is older than the TTL.
func (rs *runtimeSampler) value(name string) int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if time.Since(rs.at) > runtimeSampleTTL {
		metrics.Read(rs.samples)
		for i := range rs.samples {
			rs.vals[rs.samples[i].Name] = int64(rs.samples[i].Value.Uint64())
		}
		rs.pause = ReadResources().GCPauseNs
		rs.at = time.Now()
	}
	return rs.vals[name]
}

func (rs *runtimeSampler) pauseNs() int64 {
	rs.value("/sched/goroutines:goroutines") // refresh the batch if stale
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.pause
}

// RegisterRuntimeMetrics mirrors process runtime health into r as
// function-backed instruments, sampled only when the registry is
// snapshotted (so registration costs nothing per query):
//
//	tsq_heap_bytes          live heap (gauge: bytes of live objects)
//	tsq_goroutines          goroutine count (gauge)
//	tsq_alloc_bytes_total   cumulative heap allocation (counter)
//	tsq_gc_cycles_total     completed GC cycles (counter)
//	tsq_gc_pause_total_ns   cumulative stop-the-world pause (counter)
//
// The two gauges ride the CounterFunc mechanism; window samplers rate
// only the _total-suffixed names meaningfully.
func RegisterRuntimeMetrics(r *Registry) {
	rs := newRuntimeSampler([]string{
		"/memory/classes/heap/objects:bytes",
		"/sched/goroutines:goroutines",
		"/gc/heap/allocs:bytes",
		"/gc/cycles/total:gc-cycles",
	})
	r.CounterFunc("tsq_heap_bytes", func() int64 { return rs.value("/memory/classes/heap/objects:bytes") })
	r.CounterFunc("tsq_goroutines", func() int64 { return rs.value("/sched/goroutines:goroutines") })
	r.CounterFunc("tsq_alloc_bytes_total", func() int64 { return rs.value("/gc/heap/allocs:bytes") })
	r.CounterFunc("tsq_gc_cycles_total", func() int64 { return rs.value("/gc/cycles/total:gc-cycles") })
	r.CounterFunc("tsq_gc_pause_total_ns", func() int64 { return rs.pauseNs() })
}

// RuntimeInfo is the process environment section of a support bundle.
type RuntimeInfo struct {
	GoVersion  string    `json:"go_version"`
	GOOS       string    `json:"goos"`
	GOARCH     string    `json:"goarch"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Goroutines int       `json:"goroutines"`
	HeapBytes  int64     `json:"heap_bytes"`
	Resources  Resources `json:"resources"`
}

// ReadRuntimeInfo captures the current process environment.
func ReadRuntimeInfo() RuntimeInfo {
	heap := []metrics.Sample{{Name: "/memory/classes/heap/objects:bytes"}}
	metrics.Read(heap)
	return RuntimeInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  int64(heap[0].Value.Uint64()),
		Resources:  ReadResources(),
	}
}
