// Package obs is the stdlib-only observability layer of the query
// engine: a metrics registry of atomic counters and fixed-bucket
// histograms (metrics.go), context-propagated query traces with typed
// spans carrying the paper's per-phase counters (this file), and
// exporters — an EXPLAIN ANALYZE-style text tree, JSON snapshots, and an
// expvar-style HTTP handler (render.go).
//
// The tracing side is built around a nil fast path: every method on a
// nil *Trace or nil *Span is a no-op that performs zero allocations, so
// instrumented code paths cost nothing when tracing is disabled. Callers
// that build span labels with fmt.Sprintf guard on the parent being
// non-nil; everything else can call through unconditionally.
//
// A Span belongs to the goroutine that created it: attribute writes and
// End are not synchronized. Creating child spans from concurrent
// goroutines is safe (the trace's span list is mutex-protected), which
// is what the parallel MT-index group probes do — one span per group,
// each owned by its probing goroutine. Render a trace only after the
// work producing it has completed.
package obs

import (
	"context"
	"sync"
	"time"
)

// Kind types a span by query phase.
type Kind uint8

const (
	// KindQuery is a root span covering one whole query.
	KindQuery Kind = iota
	// KindPlan covers the cost-based planner (including its probe I/O).
	KindPlan
	// KindFeatures covers query featurization: normal form + DFT.
	KindFeatures
	// KindProbe covers one transformation rectangle's filter-and-verify
	// pipeline (an index traversal plus candidate verification).
	KindProbe
	// KindFilter covers the R*-tree traversal of one probe.
	KindFilter
	// KindFetch covers candidate record retrieval (heap page reads).
	KindFetch
	// KindVerify covers exact distance verification of candidates.
	KindVerify
	// KindScan covers a sequential scan of the relation.
	KindScan
)

// String names the span kind.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "query"
	case KindPlan:
		return "plan"
	case KindFeatures:
		return "features"
	case KindProbe:
		return "probe"
	case KindFilter:
		return "filter"
	case KindFetch:
		return "fetch"
	case KindVerify:
		return "verify"
	case KindScan:
		return "scan"
	default:
		return "span"
	}
}

// Attr is a typed per-span counter. The fixed set keeps spans
// allocation-free after creation and lets cross-checks sum attributes
// over a whole trace without string keys.
type Attr uint8

const (
	// ANodes counts index nodes visited, all levels (the paper's DA_all).
	ANodes Attr = iota
	// ALeaves counts leaf nodes visited (DA_leaf).
	ALeaves
	// APruned counts entries rejected without descending (failed MBR
	// intersection or MINDIST bound).
	APruned
	// APagesRead counts backend page reads attributed to the span.
	APagesRead
	// ABufferHits counts buffer-pool hits attributed to the span.
	ABufferHits
	// ACandidates counts candidate records kept for verification.
	ACandidates
	// AComparisons counts full-record distance evaluations.
	AComparisons
	// AMatches counts matches produced.
	AMatches
	// AFalsePositives counts candidates that produced no match.
	AFalsePositives
	// ATransforms counts transformations covered by the span's group.
	ATransforms
	// AGroupIndex is the MT-index transformation-group ordinal a probe
	// span belongs to (not a counter — set once, used to attribute the
	// probe's candidate/false-positive counts to its group in index
	// health reports).
	AGroupIndex
	// APagesPrefetched counts pages delivered by the tail of a batched
	// run read (the first page of a run counts as APagesRead).
	APagesPrefetched
	// ASkippedLB counts candidates rejected by the DFT-prefix lower
	// bound before their record page was fetched.
	ASkippedLB
	// AAbandoned counts distance evaluations cut short by the
	// early-abandoning cutoff (each still counts in AComparisons).
	AAbandoned
	// ASkippedLB0 counts the ASkippedLB dismissals decided by tier 0 of
	// the verification cascade (cosine-free magnitude-gap bound).
	ASkippedLB0
	// ASkippedLB1 counts dismissals decided by tier 1 (exact first
	// coefficient, shared Sincos).
	ASkippedLB1
	// ASkippedLB2 counts dismissals that needed the full DFT-prefix
	// bound (tier 2).
	ASkippedLB2
	// ALBNanos is the wall time of the verification lower-bound stage
	// in nanoseconds (shard times sum under parallel verification).
	ALBNanos
	// AAllocBytes is the heap allocation (bytes) attributed to the query
	// by the resource-attribution sampler; process-wide totals sampled
	// around the query, so concurrent queries overlap (see attr.go).
	AAllocBytes
	// AMallocs is the heap object count attributed to the query.
	AMallocs
	// AGCCycles counts GC cycles that completed during the query.
	AGCCycles
	// AGCPauseNs is the stop-the-world pause time (ns) that elapsed
	// during the query.
	AGCPauseNs
	// AShard is the shard ordinal a scatter-gather probe ran in. Only
	// set when the DB has more than one shard, so single-shard traces
	// are unchanged.
	AShard

	numAttrs = int(AShard) + 1
)

// String names the attribute as rendered in the span tree.
func (a Attr) String() string {
	switch a {
	case ANodes:
		return "nodes"
	case ALeaves:
		return "leaves"
	case APruned:
		return "pruned"
	case APagesRead:
		return "pages_read"
	case ABufferHits:
		return "buf_hits"
	case ACandidates:
		return "candidates"
	case AComparisons:
		return "comparisons"
	case AMatches:
		return "matches"
	case AFalsePositives:
		return "false_pos"
	case ATransforms:
		return "transforms"
	case AGroupIndex:
		return "group"
	case APagesPrefetched:
		return "pages_prefetched"
	case ASkippedLB:
		return "candidates_skipped_lb"
	case AAbandoned:
		return "abandoned"
	case ASkippedLB0:
		return "skipped_lb_t0"
	case ASkippedLB1:
		return "skipped_lb_t1"
	case ASkippedLB2:
		return "skipped_lb_t2"
	case ALBNanos:
		return "lb_ns"
	case AAllocBytes:
		return "alloc_bytes"
	case AMallocs:
		return "mallocs"
	case AGCCycles:
		return "gc_cycles"
	case AGCPauseNs:
		return "gc_pause_ns"
	case AShard:
		return "shard"
	default:
		return "attr"
	}
}

// Trace collects the spans of one (or several) queries. The zero of the
// pointer type is valid everywhere: a nil *Trace records nothing and
// allocates nothing.
type Trace struct {
	mu    sync.Mutex
	spans []*Span
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Span is one timed phase of a query with typed counters. A nil *Span
// is valid: every method no-ops.
type Span struct {
	trace  *Trace
	id     int32
	parent int32 // -1 for a root span
	kind   Kind
	label  string
	start  time.Time
	dur    time.Duration
	done   bool
	errMsg string
	set    uint32 // bitmask of assigned attrs
	attrs  [numAttrs]int64
}

func (t *Trace) newSpan(parent int32, kind Kind, label string) *Span {
	s := &Span{trace: t, parent: parent, kind: kind, label: label, start: time.Now()}
	t.mu.Lock()
	s.id = int32(len(t.spans))
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Start opens a root span. Nil-safe.
func (t *Trace) Start(kind Kind, label string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan(-1, kind, label)
}

// Spans returns a snapshot of the recorded spans in creation order.
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Sum totals attribute a over every span of the given kind — the
// cross-check API: e.g. Sum(KindProbe, APagesRead) must equal the
// storage manager's read delta for the traced query.
func (t *Trace) Sum(kind Kind, a Attr) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var total int64
	for _, s := range t.spans {
		if s.kind == kind {
			total += s.attrs[a]
		}
	}
	return total
}

// Child opens a sub-span. Nil-safe.
func (s *Span) Child(kind Kind, label string) *Span {
	if s == nil {
		return nil
	}
	return s.trace.newSpan(s.id, kind, label)
}

// Set assigns attribute a. Nil-safe.
func (s *Span) Set(a Attr, v int64) {
	if s == nil {
		return
	}
	s.attrs[a] = v
	s.set |= 1 << a
}

// Add accumulates into attribute a. Nil-safe.
func (s *Span) Add(a Attr, v int64) {
	if s == nil {
		return
	}
	s.attrs[a] += v
	s.set |= 1 << a
}

// Get returns attribute a (0 when unset or s is nil).
func (s *Span) Get(a Attr) int64 {
	if s == nil {
		return 0
	}
	return s.attrs[a]
}

// Has reports whether attribute a was assigned on s. It distinguishes
// an explicit zero (e.g. group ordinal 0) from never-set.
func (s *Span) Has(a Attr) bool {
	return s != nil && s.set&(1<<a) != 0
}

// End closes the span successfully. Nil-safe; the first End wins.
func (s *Span) End() { s.EndErr(nil) }

// EndErr closes the span, recording err's message as its error status
// when non-nil. Nil-safe; the first close wins.
func (s *Span) EndErr(err error) {
	if s == nil || s.done {
		return
	}
	s.dur = time.Since(s.start)
	s.done = true
	if err != nil {
		s.errMsg = err.Error()
	}
}

// Done reports whether the span was closed.
func (s *Span) Done() bool { return s != nil && s.done }

// Err returns the span's error status ("" when none).
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	return s.errMsg
}

// Kind returns the span's kind.
func (s *Span) Kind() Kind {
	if s == nil {
		return KindQuery
	}
	return s.kind
}

// Label returns the span's label.
func (s *Span) Label() string {
	if s == nil {
		return ""
	}
	return s.label
}

// Duration returns the span's wall time (0 until closed).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return s.dur
}

// Context propagation. Traces and spans travel in a context.Context;
// absent keys yield nil, which downstream instrumentation treats as
// "tracing off".

type traceKey struct{}
type spanKey struct{}

// WithTrace attaches tr to ctx.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, tr)
}

// FromContext returns the trace in ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}

// ContextWithSpan attaches sp to ctx as the current parent span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current parent span in ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}
