package obs

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestRecorderSlowRing checks threshold classification and ring
// eviction order (oldest dropped first, snapshot oldest-first).
func TestRecorderSlowRing(t *testing.T) {
	r := NewRecorder(RecorderOptions{SlowN: 3, SampleN: 2, Threshold: time.Millisecond})
	for i := 1; i <= 5; i++ {
		r.Record("range", "q", 0, time.Duration(i)*time.Millisecond, nil, nil)
	}
	snap := r.Snapshot()
	if len(snap.Slow) != 3 {
		t.Fatalf("%d slow records, want 3", len(snap.Slow))
	}
	// Queries 1..5ms all exceed the 1ms threshold; ring keeps 3,4,5.
	for i, want := range []int64{3, 4, 5} {
		if got := snap.Slow[i].DurationNs / 1e6; got != want {
			t.Errorf("slow[%d] = %dms, want %dms", i, got, want)
		}
		if !snap.Slow[i].Slow {
			t.Errorf("slow[%d] not flagged slow", i)
		}
	}
	if snap.Total != 5 {
		t.Errorf("total = %d, want 5", snap.Total)
	}
	if snap.Slow[0].Seq >= snap.Slow[1].Seq {
		t.Error("slow ring not ordered by sequence")
	}
}

// TestRecorderReservoir checks Algorithm R invariants: the reservoir
// never exceeds capacity, fills with the first SampleN under-threshold
// queries, and holds valid records after many replacements.
func TestRecorderReservoir(t *testing.T) {
	r := NewRecorder(RecorderOptions{SlowN: 1, SampleN: 8, Threshold: time.Second})
	for i := 0; i < 1000; i++ {
		r.Record("nn", "q", 0, time.Microsecond, nil, nil)
	}
	snap := r.Snapshot()
	if len(snap.Sample) != 8 {
		t.Fatalf("reservoir size = %d, want 8", len(snap.Sample))
	}
	if snap.Sampled != 1000 {
		t.Errorf("sampled = %d, want 1000", snap.Sampled)
	}
	seen := make(map[uint64]bool)
	for _, rec := range snap.Sample {
		if rec.Seq == 0 || rec.Seq > 1000 || rec.Slow {
			t.Errorf("bad reservoir record %+v", rec)
		}
		if seen[rec.Seq] {
			t.Errorf("duplicate seq %d in reservoir", rec.Seq)
		}
		seen[rec.Seq] = true
	}
	// With 1000 queries through an 8-slot reservoir, replacement should
	// have occurred: not all survivors can be the first 8.
	all := true
	for _, rec := range snap.Sample {
		if rec.Seq > 8 {
			all = false
		}
	}
	if all {
		t.Error("reservoir never replaced a record over 1000 queries")
	}
}

// TestRecorderTraceAttrs checks attribute extraction from an attached
// trace and error capture.
func TestRecorderTraceAttrs(t *testing.T) {
	tr := New()
	root := tr.Start(KindQuery, "q")
	probe := root.Child(KindProbe, "p")
	probe.Set(ATransforms, 4)
	f := probe.Child(KindFilter, "f")
	f.Set(ACandidates, 12)
	f.End()
	v := probe.Child(KindVerify, "v")
	v.Set(AMatches, 9)
	v.End()
	probe.End()
	root.End()

	r := NewRecorder(RecorderOptions{Threshold: time.Nanosecond})
	r.Record("range", "eps=0.5", 7, time.Millisecond, errors.New("boom"), tr)
	snap := r.Snapshot()
	if len(snap.Slow) != 1 {
		t.Fatalf("%d slow records, want 1", len(snap.Slow))
	}
	rec := snap.Slow[0]
	if rec.Matches != 9 || rec.Candidates != 12 || rec.Transforms != 4 {
		t.Errorf("attrs = matches=%d cands=%d transforms=%d", rec.Matches, rec.Candidates, rec.Transforms)
	}
	if rec.Err != "boom" || rec.Kind != "range" || rec.Label != "eps=0.5" {
		t.Errorf("record = %+v", rec)
	}
	if rec.Trace == nil {
		t.Error("trace not retained")
	}
}

// TestRecorderNilAndConcurrent: a nil recorder drops records without
// panicking, and concurrent Record/Snapshot is safe (run under -race).
func TestRecorderNilAndConcurrent(t *testing.T) {
	var nilRec *Recorder
	nilRec.Record("range", "", 0, time.Second, nil, nil)
	if snap := nilRec.Snapshot(); snap.Total != 0 {
		t.Error("nil recorder snapshot not empty")
	}

	r := NewRecorder(RecorderOptions{SlowN: 4, SampleN: 4, Threshold: time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record("range", "", 0, time.Duration(g)*time.Millisecond, nil, nil)
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := r.Snapshot().Total; got != 400 {
		t.Errorf("total = %d, want 400", got)
	}
}

// TestRecorderHandler drains the recorder over HTTP as JSON.
func TestRecorderHandler(t *testing.T) {
	r := NewRecorder(RecorderOptions{Threshold: time.Nanosecond})
	r.Record("nn", "k=5", 0, time.Millisecond, nil, nil)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap RecorderSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Slow) != 1 || snap.Slow[0].Kind != "nn" {
		t.Errorf("served snapshot = %+v", snap)
	}
}
