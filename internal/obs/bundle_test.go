package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// tracedQuery builds a trace whose rollups (matches, candidates,
// transforms) are internally consistent, the way the facade produces
// them: verify spans carry matches, filter spans candidates, probe
// spans transforms.
func tracedQuery(matches, candidates, transforms int64) *Trace {
	tr := New()
	root := tr.Start(KindQuery, "range")
	probe := root.Child(KindProbe, "group")
	probe.Set(ATransforms, transforms)
	filter := probe.Child(KindFilter, "rtree")
	filter.Set(ACandidates, candidates)
	filter.End()
	verify := probe.Child(KindVerify, "")
	verify.Set(AMatches, matches)
	verify.End()
	probe.End()
	root.End()
	return tr
}

// bundleFixture wires a registry, sampler, recorder and query logger
// through n queries so every bundle section is populated and mutually
// consistent.
func bundleFixture(t *testing.T, n int) (*Registry, *Sampler, *Recorder, *QueryLogger, BundleOptions) {
	t.Helper()
	reg := NewRegistry()
	qc := reg.Counter("q_total")
	lat := reg.Histogram("q_latency_ns", DurationBuckets())
	lat.EnableExemplars()
	rec := NewRecorder(RecorderOptions{Threshold: time.Nanosecond, SlowN: 16})
	ql := NewQueryLogger(&captureHandler{}, QueryLogOptions{SlowThreshold: -1})
	sampler := NewSampler(reg, SamplerOptions{})
	sampler.Sample() // baseline

	for i := 0; i < n; i++ {
		qid := NextQueryID()
		dur := time.Duration(i+1) * time.Millisecond
		tr := tracedQuery(int64(i), int64(2*i), 16)
		qc.Inc()
		lat.ObserveDurationExemplar(dur, qid)
		rec.Record("range", "mt-index", qid, dur, nil, tr)
		ql.Log(QueryLogRecord{QueryID: qid, Kind: "range", Duration: dur, Matches: int64(i)})
	}
	sampler.Sample()
	opts := BundleOptions{
		CounterHistogramPairs:  map[string]string{"q_total": "q_latency_ns"},
		ExpectCompleteRecorder: true,
	}
	return reg, sampler, rec, ql, opts
}

// TestBundleReconciles: a consistent system yields a bundle whose every
// check passes and whose JSON round-trips with all sections present.
func TestBundleReconciles(t *testing.T) {
	reg, sampler, rec, ql, opts := bundleFixture(t, 5)
	b := NewBundle(reg, sampler, rec, ql, nil, json.RawMessage(`{"series":150}`), opts, time.Minute)

	if !b.OK() {
		t.Fatalf("bundle failed reconciliation: %+v", b.FailedChecks())
	}
	if len(b.Reconciliation) < 3 {
		t.Errorf("only %d reconciliation checks ran", len(b.Reconciliation))
	}
	names := map[string]bool{}
	for _, c := range b.Reconciliation {
		names[c.Name] = true
	}
	for _, want := range []string{
		"histogram_buckets/q_latency_ns",
		"counter_histogram/q_total",
		"recorder_ring",
		"recorder_trace_rollups",
		"recorder_coverage",
	} {
		if !names[want] {
			t.Errorf("missing reconciliation check %q (have %v)", want, names)
		}
	}

	if b.SchemaVersion != BundleSchemaVersion {
		t.Errorf("schema version %d, want %d", b.SchemaVersion, BundleSchemaVersion)
	}
	if b.UptimeSeconds <= 0 || b.CreatedAt.IsZero() {
		t.Errorf("bundle missing envelope fields: uptime=%v created=%v", b.UptimeSeconds, b.CreatedAt)
	}
	if b.Build.GoVersion == "" || b.Runtime.NumCPU <= 0 {
		t.Errorf("bundle missing environment: build=%+v runtime=%+v", b.Build, b.Runtime)
	}
	if b.Queries == nil || b.Queries.Total != 5 || len(b.Queries.Slow) != 5 {
		t.Errorf("queries section: %+v", b.Queries)
	}
	if b.QueryLog == nil || b.QueryLog.Emitted != 5 {
		t.Errorf("query log section: %+v", b.QueryLog)
	}
	if b.Rates == nil || b.Rates.SchemaVersion != RatesSchemaVersion || len(b.Rates.Windows) != 1 {
		t.Errorf("rates section: %+v", b.Rates)
	}
	if string(b.Index) != `{"series":150}` {
		t.Errorf("index section: %s", b.Index)
	}

	// The bundle JSON round-trips through a generic decode with the
	// versioned envelope intact.
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("bundle JSON invalid: %v", err)
	}
	if v, _ := decoded["schema_version"].(float64); int(v) != BundleSchemaVersion {
		t.Errorf("decoded schema_version = %v", decoded["schema_version"])
	}
	for _, key := range []string{"build", "runtime", "metrics", "rates", "queries", "query_log", "index", "reconciliation"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("bundle JSON missing %q section", key)
		}
	}
}

// TestBundleDetectsCounterDrift: a counter bumped without a matching
// histogram observation fails exactly the paired check — the bundle
// still writes, and FailedChecks names the drift.
func TestBundleDetectsCounterDrift(t *testing.T) {
	reg, sampler, rec, ql, opts := bundleFixture(t, 3)
	reg.Counter("q_total").Add(2) // drift: two phantom queries
	b := NewBundle(reg, sampler, rec, ql, nil, nil, opts)
	if b.OK() {
		t.Fatal("bundle passed despite counter drift")
	}
	failed := b.FailedChecks()
	foundPair, foundCoverage := false, false
	for _, c := range failed {
		switch c.Name {
		case "counter_histogram/q_total":
			foundPair = true
		case "recorder_coverage":
			foundCoverage = true
		case "histogram_buckets/q_latency_ns", "recorder_ring", "recorder_trace_rollups":
			t.Errorf("unrelated check failed: %+v", c)
		}
	}
	if !foundPair || !foundCoverage {
		t.Errorf("drift not attributed to pair+coverage checks: %+v", failed)
	}
	// A bundle with failing checks still serializes.
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Errorf("failed bundle does not serialize: %v", err)
	}
}

// TestBundleDetectsRollupDrift: a retained record whose headline counts
// disagree with its own trace fails recorder_trace_rollups.
func TestBundleDetectsRollupDrift(t *testing.T) {
	reg, sampler, rec, ql, opts := bundleFixture(t, 2)
	// A record whose trace says 1 match but was recorded against a
	// doctored trace claiming different rollups: build a trace, then
	// mutate its verify attribute after Record snapshots the rollups.
	tr := tracedQuery(1, 2, 16)
	qid := NextQueryID()
	reg.Counter("q_total").Inc()
	reg.Histogram("q_latency_ns", nil).ObserveDurationExemplar(time.Millisecond, qid)
	rec.Record("range", "mt-index", qid, time.Millisecond, nil, tr)
	for _, s := range tr.Spans() {
		if s.Kind() == KindVerify {
			s.Add(AMatches, 5) // rollup drift
		}
	}
	b := NewBundle(reg, sampler, rec, ql, nil, nil, opts)
	if b.OK() {
		t.Fatal("bundle passed despite rollup drift")
	}
	for _, c := range b.FailedChecks() {
		if c.Name == "recorder_trace_rollups" {
			return
		}
	}
	t.Errorf("rollup drift not detected: %+v", b.FailedChecks())
}

// TestBundleRingEvictionAccounting: an overflowing slow ring keeps the
// recorder_ring identity Total-Sampled == Evicted+len(Slow).
func TestBundleRingEvictionAccounting(t *testing.T) {
	reg := NewRegistry()
	rec := NewRecorder(RecorderOptions{Threshold: time.Nanosecond, SlowN: 4})
	for i := 0; i < 10; i++ {
		rec.Record("range", "seqscan", 0, time.Millisecond, nil, nil)
	}
	b := NewBundle(reg, nil, rec, nil, nil, nil, BundleOptions{})
	if b.Queries.Evicted != 6 || len(b.Queries.Slow) != 4 {
		t.Fatalf("evicted=%d slow=%d, want 6 and 4", b.Queries.Evicted, len(b.Queries.Slow))
	}
	for _, c := range b.Reconciliation {
		if c.Name == "recorder_ring" && !c.OK {
			t.Errorf("ring check failed under eviction: %+v", c)
		}
	}
	if !b.OK() {
		t.Errorf("bundle failed: %+v", b.FailedChecks())
	}
}

// TestBundleNilSections: nil sampler/recorder/qlog omit their sections
// and skip their checks; the bundle still reconciles.
func TestBundleNilSections(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total").Add(3)
	b := NewBundle(reg, nil, nil, nil, nil, nil, BundleOptions{})
	if b.Queries != nil || b.QueryLog != nil || b.Rates != nil || b.Index != nil {
		t.Errorf("nil sources produced sections: %+v", b)
	}
	if !b.OK() {
		t.Errorf("minimal bundle failed: %+v", b.FailedChecks())
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"rates", "queries", "query_log", "index", "profiles"} {
		if _, ok := decoded[key]; ok {
			t.Errorf("omitted section %q present in JSON", key)
		}
	}
}

// TestBundleHeapProfile: the flag-gated heap profile lands in the
// bundle as a non-empty pprof blob.
func TestBundleHeapProfile(t *testing.T) {
	b := NewBundle(NewRegistry(), nil, nil, nil, nil, nil, BundleOptions{HeapProfile: true})
	if b.ProfileError != "" {
		t.Fatalf("profile error: %s", b.ProfileError)
	}
	if len(b.Profiles["heap"]) == 0 {
		t.Fatal("heap profile empty")
	}
	// CPU profile with a tiny duration also collects.
	b = NewBundle(NewRegistry(), nil, nil, nil, nil, nil, BundleOptions{CPUProfile: 10 * time.Millisecond})
	if b.ProfileError != "" {
		t.Fatalf("cpu profile error: %s", b.ProfileError)
	}
	if len(b.Profiles["cpu"]) == 0 {
		t.Fatal("cpu profile empty")
	}
}

// TestBundleErrRecords: errored queries flow through to the recorder
// section without tripping any check.
func TestBundleErrRecords(t *testing.T) {
	reg, sampler, rec, ql, opts := bundleFixture(t, 2)
	qid := NextQueryID()
	reg.Counter("q_total").Inc()
	reg.Histogram("q_latency_ns", nil).ObserveDurationExemplar(time.Millisecond, qid)
	rec.Record("range", "mt-index", qid, time.Millisecond, errors.New("checksum mismatch"), nil)
	b := NewBundle(reg, sampler, rec, ql, nil, nil, opts)
	if !b.OK() {
		t.Fatalf("bundle with errored query failed: %+v", b.FailedChecks())
	}
	last := b.Queries.Slow[len(b.Queries.Slow)-1]
	if last.Err != "checksum mismatch" {
		t.Errorf("errored record: %+v", last)
	}
}
