package obs

import (
	"context"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// captureHandler retains every record it receives, for assertions.
type captureHandler struct {
	mu      sync.Mutex
	records []capturedRecord
}

type capturedRecord struct {
	level slog.Level
	msg   string
	attrs map[string]slog.Value
}

func (h *captureHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *captureHandler) Handle(_ context.Context, r slog.Record) error {
	rec := capturedRecord{level: r.Level, msg: r.Message, attrs: make(map[string]slog.Value)}
	r.Attrs(func(a slog.Attr) bool {
		rec.attrs[a.Key] = a.Value
		return true
	})
	h.mu.Lock()
	h.records = append(h.records, rec)
	h.mu.Unlock()
	return nil
}

func (h *captureHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *captureHandler) WithGroup(string) slog.Handler      { return h }

func (h *captureHandler) all() []capturedRecord {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]capturedRecord(nil), h.records...)
}

// TestQueryLoggerEmitsFullRecord: one fast query produces one Info
// record carrying the query shape, effort counters, I/O, and resources.
func TestQueryLoggerEmitsFullRecord(t *testing.T) {
	h := &captureHandler{}
	l := NewQueryLogger(h, QueryLogOptions{SlowThreshold: -1})
	l.Log(QueryLogRecord{
		QueryID:     42,
		Kind:        "range",
		Label:       "mt-index",
		Transforms:  16,
		Eps:         0.25,
		Duration:    3 * time.Millisecond,
		Matches:     3,
		Candidates:  8,
		SkippedLB:   120,
		SkippedLB0:  100,
		SkippedLB1:  15,
		SkippedLB2:  5,
		Comparisons: 8,
		PagesRead:   5,
		BufferHits:  2,
		Resources:   Resources{AllocBytes: 4096, Mallocs: 12},
	})

	recs := h.all()
	if len(recs) != 1 {
		t.Fatalf("emitted %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.level != slog.LevelInfo || r.msg != "query" {
		t.Errorf("record level=%v msg=%q", r.level, r.msg)
	}
	for key, want := range map[string]int64{
		"query_id":      42,
		"transforms":    16,
		"matches":       3,
		"candidates":    8,
		"skipped_lb":    120,
		"skipped_lb_t0": 100,
		"skipped_lb_t1": 15,
		"skipped_lb_t2": 5,
		"comparisons":   8,
		"pages_read":    5,
		"buffer_hits":   2,
		"alloc_bytes":   4096,
		"mallocs":       12,
	} {
		v, ok := r.attrs[key]
		if !ok {
			t.Errorf("record missing attr %q", key)
			continue
		}
		var got int64
		switch v.Kind() {
		case slog.KindUint64:
			got = int64(v.Uint64())
		default:
			got = v.Int64()
		}
		if got != want {
			t.Errorf("attr %s = %d, want %d", key, got, want)
		}
	}
	if r.attrs["kind"].String() != "range" || r.attrs["algo"].String() != "mt-index" {
		t.Errorf("kind=%q algo=%q", r.attrs["kind"], r.attrs["algo"])
	}
	// A range record carries eps, not k.
	if eps := r.attrs["eps"].Float64(); eps != 0.25 {
		t.Errorf("eps = %v, want 0.25", eps)
	}
	if _, ok := r.attrs["k"]; ok {
		t.Error("range record carries a k attr")
	}
	if _, ok := r.attrs["slow"]; ok {
		t.Error("fast record marked slow")
	}
	if st := l.Stats(); st.Emitted != 1 || st.Slow != 0 || st.Dropped != 0 || st.SampledOut != 0 {
		t.Errorf("stats = %+v", st)
	}

	// An NN record carries k, not eps; an error is attached.
	l.Log(QueryLogRecord{QueryID: 43, Kind: "nn", K: 5, Err: errors.New("boom")})
	r = h.all()[1]
	if k := r.attrs["k"].Int64(); k != 5 {
		t.Errorf("k = %d, want 5", k)
	}
	if _, ok := r.attrs["eps"]; ok {
		t.Error("NN record carries an eps attr")
	}
	if r.attrs["error"].String() != "boom" {
		t.Errorf("error attr = %q", r.attrs["error"])
	}
}

// TestQueryLoggerSampling: SampleEvery=3 emits every third normal query
// and counts the rest, but slow queries bypass sampling entirely.
func TestQueryLoggerSampling(t *testing.T) {
	h := &captureHandler{}
	l := NewQueryLogger(h, QueryLogOptions{SampleEvery: 3, SlowThreshold: time.Second})
	for i := 0; i < 9; i++ {
		l.Log(QueryLogRecord{QueryID: uint64(i), Kind: "range", Duration: time.Millisecond})
	}
	if st := l.Stats(); st.Emitted != 3 || st.SampledOut != 6 {
		t.Errorf("after 9 sampled queries: %+v, want 3 emitted / 6 sampled out", st)
	}
	// Slow queries ignore the sampling stride.
	for i := 0; i < 4; i++ {
		l.Log(QueryLogRecord{QueryID: uint64(100 + i), Kind: "range", Duration: 2 * time.Second})
	}
	st := l.Stats()
	if st.Emitted != 7 || st.Slow != 4 {
		t.Errorf("after 4 slow queries: %+v, want 7 emitted / 4 slow", st)
	}
}

// TestQueryLoggerSlowPromotion: a query at or over the threshold logs at
// Warn with slow=true and the rendered trace attached.
func TestQueryLoggerSlowPromotion(t *testing.T) {
	h := &captureHandler{}
	l := NewQueryLogger(h, QueryLogOptions{SlowThreshold: 10 * time.Millisecond})

	tr := New()
	sp := tr.Start(KindQuery, "slow range")
	sp.Set(AMatches, 2)
	sp.End()

	l.Log(QueryLogRecord{QueryID: 7, Kind: "range", Duration: 50 * time.Millisecond, Trace: tr})
	recs := h.all()
	if len(recs) != 1 {
		t.Fatalf("emitted %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.level != slog.LevelWarn {
		t.Errorf("slow record level = %v, want WARN", r.level)
	}
	if !r.attrs["slow"].Bool() {
		t.Error("slow record missing slow=true")
	}
	trace := r.attrs["trace"].String()
	if trace == "" || !containsAll(trace, "slow range", "matches=2") {
		t.Errorf("slow record trace attr = %q", trace)
	}
	if st := l.Stats(); st.Slow != 1 {
		t.Errorf("stats = %+v, want 1 slow", st)
	}

	// Negative threshold disables promotion outright.
	h2 := &captureHandler{}
	l2 := NewQueryLogger(h2, QueryLogOptions{SlowThreshold: -1})
	l2.Log(QueryLogRecord{Kind: "range", Duration: time.Hour})
	if r := h2.all()[0]; r.level != slog.LevelInfo {
		t.Errorf("promotion-disabled record level = %v, want INFO", r.level)
	}
}

// TestQueryLoggerRateLimit: MaxPerSec bounds records per wall-clock
// second; overflow lands in Dropped. Tolerant of a second boundary
// rolling mid-test (emitted may exceed the limit by one window).
func TestQueryLoggerRateLimit(t *testing.T) {
	h := &captureHandler{}
	l := NewQueryLogger(h, QueryLogOptions{MaxPerSec: 5, SlowThreshold: -1})
	for i := 0; i < 50; i++ {
		l.Log(QueryLogRecord{QueryID: uint64(i), Kind: "range"})
	}
	st := l.Stats()
	if st.Emitted+st.Dropped != 50 {
		t.Errorf("emitted %d + dropped %d != 50", st.Emitted, st.Dropped)
	}
	// 50 fast calls span at most 2 wall-clock seconds.
	if st.Emitted > 10 {
		t.Errorf("emitted %d records with MaxPerSec=5, want <= 10", st.Emitted)
	}
	if st.Dropped == 0 {
		t.Error("rate limit dropped nothing across 50 rapid records")
	}

	// Negative MaxPerSec means unlimited.
	l2 := NewQueryLogger(&captureHandler{}, QueryLogOptions{MaxPerSec: -1, SlowThreshold: -1})
	for i := 0; i < 500; i++ {
		l2.Log(QueryLogRecord{Kind: "range"})
	}
	if st := l2.Stats(); st.Emitted != 500 || st.Dropped != 0 {
		t.Errorf("unlimited logger stats = %+v", st)
	}
}

// TestQueryLoggerNilSafe: nil receivers no-op on every method.
func TestQueryLoggerNilSafe(t *testing.T) {
	var l *QueryLogger
	l.Log(QueryLogRecord{Kind: "range"})
	if st := l.Stats(); st != (QueryLogStats{}) {
		t.Errorf("nil logger stats = %+v", st)
	}
	if o := l.Options(); o != (QueryLogOptions{}) {
		t.Errorf("nil logger options = %+v", o)
	}
}

func containsAll(s string, needles ...string) bool {
	for _, n := range needles {
		if !strings.Contains(s, n) {
			return false
		}
	}
	return true
}
