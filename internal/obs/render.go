package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Render writes the trace as an EXPLAIN ANALYZE-style tree: one line per
// span with its wall time and set attributes, children indented under
// their parent with box-drawing connectors.
func (t *Trace) Render(w io.Writer) {
	if t == nil {
		return
	}
	spans := t.Spans()
	children := make(map[int32][]*Span)
	var roots []*Span
	for _, s := range spans {
		if s.parent < 0 {
			roots = append(roots, s)
		} else {
			children[s.parent] = append(children[s.parent], s)
		}
	}
	var render func(s *Span, prefix, childPrefix string)
	render = func(s *Span, prefix, childPrefix string) {
		fmt.Fprintf(w, "%s%s\n", prefix, s.line())
		kids := children[s.id]
		for i, c := range kids {
			connector, indent := "├─ ", "│  "
			if i == len(kids)-1 {
				connector, indent = "└─ ", "   "
			}
			render(c, childPrefix+connector, childPrefix+indent)
		}
	}
	for _, r := range roots {
		render(r, "", "")
	}
}

// String renders the trace to a string.
func (t *Trace) String() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// line formats one span: label, duration, attributes, error status.
func (s *Span) line() string {
	var b strings.Builder
	label := s.label
	if label == "" {
		label = s.kind.String()
	}
	b.WriteString(label)
	if s.done {
		fmt.Fprintf(&b, "  (%s)", formatDuration(s.dur))
	} else {
		b.WriteString("  (unfinished)")
	}
	if s.set != 0 {
		b.WriteString("  {")
		first := true
		for a := 0; a < numAttrs; a++ {
			if s.set&(1<<a) == 0 {
				continue
			}
			if !first {
				b.WriteString(" ")
			}
			first = false
			fmt.Fprintf(&b, "%s=%d", Attr(a), s.attrs[a])
		}
		b.WriteString("}")
	}
	if s.errMsg != "" {
		fmt.Fprintf(&b, "  ERROR: %s", s.errMsg)
	}
	return b.String()
}

// formatDuration rounds a duration to a readable precision.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}

// spanJSON is the JSON shape of one span.
type spanJSON struct {
	ID       int32            `json:"id"`
	Parent   int32            `json:"parent"` // -1 for roots
	Kind     string           `json:"kind"`
	Label    string           `json:"label,omitempty"`
	Duration int64            `json:"duration_ns"`
	Done     bool             `json:"done"`
	Error    string           `json:"error,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
}

// MarshalJSON encodes the trace as a span array.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	spans := t.Spans()
	out := make([]spanJSON, len(spans))
	for i, s := range spans {
		sj := spanJSON{
			ID:       s.id,
			Parent:   s.parent,
			Kind:     s.kind.String(),
			Label:    s.label,
			Duration: s.dur.Nanoseconds(),
			Done:     s.done,
			Error:    s.errMsg,
		}
		if s.set != 0 {
			sj.Attrs = make(map[string]int64)
			for a := 0; a < numAttrs; a++ {
				if s.set&(1<<a) != 0 {
					sj.Attrs[Attr(a).String()] = s.attrs[a]
				}
			}
		}
		out[i] = sj
	}
	return json.Marshal(out)
}

// WriteText writes the registry snapshot as aligned "name value" lines,
// histograms as count/sum plus per-bucket cumulative counts.
func (r *Registry) WriteText(w io.Writer) {
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		fmt.Fprintf(w, "%-40s %d\n", c.Name, c.Value)
	}
	for _, h := range snap.Histograms {
		fmt.Fprintf(w, "%-40s count=%d sum=%d p50=%s p95=%s p99=%s\n",
			h.Name, h.Count, h.Sum,
			time.Duration(h.P50).Round(time.Microsecond),
			time.Duration(h.P95).Round(time.Microsecond),
			time.Duration(h.P99).Round(time.Microsecond))
		cum := int64(0)
		for i, n := range h.Counts {
			cum += n
			bound := "+Inf"
			if i < len(h.Bounds) {
				bound = time.Duration(h.Bounds[i]).String()
			}
			if n > 0 {
				fmt.Fprintf(w, "%-40s   le=%-8s %d\n", h.Name, bound, cum)
			}
		}
	}
}

// WriteJSON writes the registry snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler returns an expvar-style HTTP handler serving the registry
// snapshot as JSON (text with ?format=text).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			r.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
}
