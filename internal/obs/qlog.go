package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// Structured query log: one log/slog record per completed query, with
// the query's shape, effort counters, I/O, latency, and (when resource
// attribution is on) process resource deltas. Volume is bounded two
// ways — sampling (log every Nth normal query) and a per-second rate
// limit — and a slow-query threshold promotes the record to Warn level
// with the full rendered trace attached, so the one line an operator
// greps for carries the whole picture.
//
// The logger is held behind an atomic pointer by the facade; with no
// logger installed the per-query hook is a single nil check and zero
// allocations (pinned by benchmark). An installed logger allocates
// only for the records it actually emits.

// QueryLogOptions configures a QueryLogger. Zero values pick defaults.
type QueryLogOptions struct {
	// SampleEvery logs every Nth query below the slow threshold
	// (default 1 — every query). Slow queries are always eligible.
	SampleEvery int
	// MaxPerSec bounds emitted records per wall-clock second across
	// slow and sampled records alike (default 100; negative means
	// unlimited). Records over the budget are counted in Dropped.
	MaxPerSec int
	// SlowThreshold promotes queries at or above this latency to Warn
	// level with the rendered trace attached (default 100ms; negative
	// disables promotion).
	SlowThreshold time.Duration
}

func (o QueryLogOptions) withDefaults() QueryLogOptions {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	if o.MaxPerSec == 0 {
		o.MaxPerSec = 100
	}
	if o.SlowThreshold == 0 {
		o.SlowThreshold = 100 * time.Millisecond
	}
	return o
}

// QueryLogRecord carries one completed query to the logger. The facade
// fills what it knows; zero-valued fields are still logged (they are
// real measurements, e.g. zero candidates).
type QueryLogRecord struct {
	QueryID    uint64
	Kind       string // "range", "nn", ...
	Label      string // algorithm name
	Transforms int
	Eps        float64 // range threshold (0 for NN)
	K          int     // NN k (0 for range)
	Duration   time.Duration
	Err        error

	Matches     int64
	Candidates  int64
	SkippedLB   int64
	SkippedLB0  int64
	SkippedLB1  int64
	SkippedLB2  int64
	Abandoned   int64
	Comparisons int64

	// PagesRead/PagesPrefetched/BufferHits are the storage-counter
	// deltas observed around the query; under concurrent queries they
	// include neighbors' I/O (the counters are shared). Exact per-query
	// attribution comes from a trace.
	PagesRead       int64
	PagesPrefetched int64
	BufferHits      int64

	// Resources is the attribution delta (zero when attribution is off).
	Resources Resources

	// Trace, when non-nil and the record is slow, is rendered into the
	// log record.
	Trace *Trace
}

// QueryLogStats reports what a QueryLogger did, for tests and bundles.
type QueryLogStats struct {
	Emitted    int64 `json:"emitted"`     // records written to the handler
	Slow       int64 `json:"slow"`        // of which were slow-promoted
	SampledOut int64 `json:"sampled_out"` // skipped by SampleEvery
	Dropped    int64 `json:"dropped"`     // skipped by MaxPerSec
}

// QueryLogger emits structured query records to a slog handler.
// Methods are safe for concurrent use; a nil *QueryLogger no-ops.
type QueryLogger struct {
	log  *slog.Logger
	opts QueryLogOptions

	seen       atomic.Uint64 // normal (non-slow) queries, for sampling
	emitted    atomic.Int64
	slow       atomic.Int64
	sampledOut atomic.Int64
	dropped    atomic.Int64

	// Fixed-window rate limit: windowSec is the unix second the count
	// belongs to. The window roll is racy by design (two goroutines may
	// both reset on a boundary); the limit is a volume bound for log
	// pipelines, not an exact quota.
	windowSec   atomic.Int64
	windowCount atomic.Int64
}

// NewQueryLogger returns a QueryLogger writing to h.
func NewQueryLogger(h slog.Handler, opts QueryLogOptions) *QueryLogger {
	return &QueryLogger{log: slog.New(h), opts: opts.withDefaults()}
}

// Stats returns the logger's emission counters.
func (l *QueryLogger) Stats() QueryLogStats {
	if l == nil {
		return QueryLogStats{}
	}
	return QueryLogStats{
		Emitted:    l.emitted.Load(),
		Slow:       l.slow.Load(),
		SampledOut: l.sampledOut.Load(),
		Dropped:    l.dropped.Load(),
	}
}

// Options returns the logger's resolved options.
func (l *QueryLogger) Options() QueryLogOptions {
	if l == nil {
		return QueryLogOptions{}
	}
	return l.opts
}

// allow consumes one rate-limit token; false means the record is over
// this second's budget.
func (l *QueryLogger) allow() bool {
	if l.opts.MaxPerSec < 0 {
		return true
	}
	sec := time.Now().Unix()
	if l.windowSec.Load() != sec {
		l.windowSec.Store(sec)
		l.windowCount.Store(0)
	}
	return l.windowCount.Add(1) <= int64(l.opts.MaxPerSec)
}

// Log emits one query record, subject to sampling and the rate limit.
// Nil-receiver safe.
func (l *QueryLogger) Log(rec QueryLogRecord) {
	if l == nil {
		return
	}
	slow := l.opts.SlowThreshold > 0 && rec.Duration >= l.opts.SlowThreshold
	if !slow && l.opts.SampleEvery > 1 {
		if l.seen.Add(1)%uint64(l.opts.SampleEvery) != 0 {
			l.sampledOut.Add(1)
			return
		}
	}
	if !l.allow() {
		l.dropped.Add(1)
		return
	}

	attrs := make([]slog.Attr, 0, 20)
	attrs = append(attrs,
		slog.Uint64("query_id", rec.QueryID),
		slog.String("kind", rec.Kind),
		slog.String("algo", rec.Label),
		slog.Int("transforms", rec.Transforms),
		slog.Duration("duration", rec.Duration),
		slog.Int64("matches", rec.Matches),
		slog.Int64("candidates", rec.Candidates),
		slog.Int64("skipped_lb", rec.SkippedLB),
		slog.Int64("skipped_lb_t0", rec.SkippedLB0),
		slog.Int64("skipped_lb_t1", rec.SkippedLB1),
		slog.Int64("skipped_lb_t2", rec.SkippedLB2),
		slog.Int64("abandoned", rec.Abandoned),
		slog.Int64("comparisons", rec.Comparisons),
		slog.Int64("pages_read", rec.PagesRead),
		slog.Int64("pages_prefetched", rec.PagesPrefetched),
		slog.Int64("buffer_hits", rec.BufferHits),
	)
	if rec.K > 0 {
		attrs = append(attrs, slog.Int("k", rec.K))
	} else {
		attrs = append(attrs, slog.Float64("eps", rec.Eps))
	}
	if rec.Resources != (Resources{}) {
		attrs = append(attrs,
			slog.Int64("alloc_bytes", rec.Resources.AllocBytes),
			slog.Int64("mallocs", rec.Resources.Mallocs),
			slog.Int64("gc_cycles", rec.Resources.GCCycles),
			slog.Int64("gc_pause_ns", rec.Resources.GCPauseNs))
	}
	if rec.Err != nil {
		attrs = append(attrs, slog.String("error", rec.Err.Error()))
	}
	level := slog.LevelInfo
	if slow {
		level = slog.LevelWarn
		attrs = append(attrs, slog.Bool("slow", true))
		if rec.Trace != nil {
			attrs = append(attrs, slog.String("trace", rec.Trace.String()))
		}
		l.slow.Add(1)
	}
	l.emitted.Add(1)
	l.log.LogAttrs(context.Background(), level, "query", attrs...)
}
