package obs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTraceZeroAlloc is the overhead contract: every instrumentation
// call on a nil trace/span — the disabled-tracing fast path threaded
// through the query engine — must allocate nothing.
func TestNilTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		root := tr.Start(KindQuery, "q")
		child := root.Child(KindProbe, "p")
		child.Add(ACandidates, 3)
		child.Set(ANodes, 7)
		_ = child.Get(ANodes)
		child.End()
		root.EndErr(nil)
		if FromContext(ctx) != nil || SpanFromContext(ctx) != nil {
			t.Fatal("background context carried a trace")
		}
		_ = tr.Sum(KindProbe, ACandidates)
		_ = tr.Spans()
	})
	if allocs != 0 {
		t.Fatalf("nil-trace instrumentation allocates %v times per op, want 0", allocs)
	}
}

// TestSpanTreeAndRender builds a small trace and checks structure,
// attribute sums and the rendered tree.
func TestSpanTreeAndRender(t *testing.T) {
	tr := New()
	root := tr.Start(KindQuery, "range MT-index")
	feat := root.Child(KindFeatures, "query features")
	feat.End()
	probe := root.Child(KindProbe, "probe 1/1")
	probe.Set(APagesRead, 21)
	filter := probe.Child(KindFilter, "filter")
	filter.Set(ANodes, 21)
	filter.Set(ALeaves, 15)
	filter.Set(ACandidates, 12)
	filter.End()
	verify := probe.Child(KindVerify, "verify")
	verify.Set(ACandidates, 12)
	verify.Set(AMatches, 9)
	verify.Set(AFalsePositives, 3)
	verify.End()
	probe.End()
	root.End()

	if got := tr.Sum(KindProbe, APagesRead); got != 21 {
		t.Errorf("Sum(probe, pages_read) = %d, want 21", got)
	}
	if got := tr.Sum(KindVerify, AMatches); got != 9 {
		t.Errorf("Sum(verify, matches) = %d, want 9", got)
	}
	if len(tr.Spans()) != 5 {
		t.Fatalf("%d spans, want 5", len(tr.Spans()))
	}

	text := tr.String()
	for _, needle := range []string{
		"range MT-index",
		"├─ query features",
		"└─ probe 1/1",
		"   ├─ filter",
		"   └─ verify",
		"pages_read=21",
		"matches=9 false_pos=3",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("render missing %q:\n%s", needle, text)
		}
	}
}

// TestSpanErrorStatus checks error close semantics: first close wins,
// error message is retained, Done reflects closure.
func TestSpanErrorStatus(t *testing.T) {
	tr := New()
	sp := tr.Start(KindQuery, "q")
	if sp.Done() {
		t.Error("span done before EndErr")
	}
	sp.EndErr(errors.New("context canceled"))
	if !sp.Done() || sp.Err() != "context canceled" {
		t.Errorf("done=%v err=%q", sp.Done(), sp.Err())
	}
	d := sp.Duration()
	sp.End() // second close must not clear the error or restart the clock
	if sp.Err() != "context canceled" || sp.Duration() != d {
		t.Error("second close mutated the span")
	}
	if !strings.Contains(tr.String(), "ERROR: context canceled") {
		t.Errorf("render missing error status:\n%s", tr.String())
	}
}

// TestConcurrentChildSpans creates children from many goroutines — the
// parallel MT-probe pattern — and checks none are lost (run under -race).
func TestConcurrentChildSpans(t *testing.T) {
	tr := New()
	root := tr.Start(KindQuery, "q")
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := root.Child(KindProbe, "probe")
			sp.Add(ACandidates, 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := tr.Sum(KindProbe, ACandidates); got != 16 {
		t.Errorf("Sum = %d, want 16", got)
	}
	if len(tr.Spans()) != 17 {
		t.Errorf("%d spans, want 17", len(tr.Spans()))
	}
}

// TestContextPropagation round-trips trace and span through a context.
func TestContextPropagation(t *testing.T) {
	tr := New()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	sp := tr.Start(KindQuery, "q")
	ctx = ContextWithSpan(ctx, sp)
	if SpanFromContext(ctx) != sp {
		t.Fatal("span lost in context")
	}
	if FromContext(nil) != nil || SpanFromContext(nil) != nil {
		t.Fatal("nil context must yield nil")
	}
}

// TestTraceJSON checks the JSON exporter shape.
func TestTraceJSON(t *testing.T) {
	tr := New()
	root := tr.Start(KindQuery, "q")
	c := root.Child(KindFilter, "f")
	c.Set(ANodes, 4)
	c.End()
	root.End()
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var spans []map[string]any
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("%d spans in JSON, want 2", len(spans))
	}
	if spans[1]["kind"] != "filter" {
		t.Errorf("kind = %v", spans[1]["kind"])
	}
	attrs := spans[1]["attrs"].(map[string]any)
	if attrs["nodes"] != float64(4) {
		t.Errorf("attrs = %v", attrs)
	}
}

// TestRegistryCountersAndHistograms exercises get-or-create, concurrent
// increments, and the snapshot (run under -race).
func TestRegistryCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency", DurationBuckets())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("queries").Inc()
				h.ObserveDuration(50 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("queries").Value(); got != 800 {
		t.Errorf("counter = %d, want 800", got)
	}
	if h.Count() != 800 {
		t.Errorf("histogram count = %d, want 800", h.Count())
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 800 {
		t.Errorf("snapshot counters = %+v", snap.Counters)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != 800 {
		t.Errorf("snapshot histograms = %+v", snap.Histograms)
	}
	// 50µs lands in the bucket bounded by 100µs (index 2 of the default
	// bounds: 1µs, 10µs, 100µs, ...).
	if snap.Histograms[0].Counts[2] != 800 {
		t.Errorf("bucket counts = %v", snap.Histograms[0].Counts)
	}
	// Same name returns the same instrument; different name differs.
	if r.Histogram("latency", nil) != h {
		t.Error("histogram get-or-create returned a new instance")
	}
}

// TestRegistryHandler serves a snapshot over HTTP in both formats.
func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("tsq_range_queries_total").Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Errorf("served snapshot = %+v", snap)
	}

	resp2, err := srv.Client().Get(srv.URL + "?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	text, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "tsq_range_queries_total") {
		t.Errorf("text format = %q", text)
	}
}
