package obs

import (
	"testing"
)

// TestQueryIDsAreUniqueAndOrdered: ids are nonzero, strictly increasing,
// and LastQueryID tracks the latest issue.
func TestQueryIDsAreUniqueAndOrdered(t *testing.T) {
	first := NextQueryID()
	if first == 0 {
		t.Fatal("NextQueryID returned the reserved id 0")
	}
	second := NextQueryID()
	if second <= first {
		t.Errorf("ids not increasing: %d then %d", first, second)
	}
	if last := LastQueryID(); last != second {
		t.Errorf("LastQueryID = %d, want %d", last, second)
	}
}

// TestReadResourcesDeltas: totals are cumulative, so a delta across a
// known allocation is positive and roughly sized to the work.
func TestReadResourcesDeltas(t *testing.T) {
	pre := ReadResources()
	if pre.AllocBytes <= 0 || pre.Mallocs <= 0 {
		t.Fatalf("cumulative totals not positive: %+v", pre)
	}
	const chunk = 1 << 20
	sink := make([][]byte, 8)
	for i := range sink {
		sink[i] = make([]byte, chunk)
		sink[i][0] = byte(i)
	}
	delta := ReadResources().Sub(pre)
	if delta.AllocBytes < 8*chunk {
		t.Errorf("delta.AllocBytes = %d after allocating %d", delta.AllocBytes, 8*chunk)
	}
	if delta.Mallocs < 8 {
		t.Errorf("delta.Mallocs = %d after 8 makes", delta.Mallocs)
	}
	if delta.GCCycles < 0 || delta.GCPauseNs < 0 {
		t.Errorf("GC deltas went backwards: %+v", delta)
	}
	_ = sink
}

// TestReadResourcesSteadyStateAllocs: the pooled reader makes the hot
// sample path allocation-free. GC clearing the pool mid-run can cost the
// occasional refill, so allow a small tolerance rather than exactly 0.
func TestReadResourcesSteadyStateAllocs(t *testing.T) {
	ReadResources() // warm the pool
	if n := testing.AllocsPerRun(200, func() { ReadResources() }); n > 0.1 {
		t.Errorf("ReadResources allocates %.2f/op in steady state, want ~0", n)
	}
}

// TestAttributionToggle: the global gate flips atomically and reads back.
func TestAttributionToggle(t *testing.T) {
	defer SetAttribution(false)
	SetAttribution(true)
	if !AttributionEnabled() {
		t.Error("attribution not enabled after SetAttribution(true)")
	}
	SetAttribution(false)
	if AttributionEnabled() {
		t.Error("attribution still enabled after SetAttribution(false)")
	}
}

// TestRegisterRuntimeMetrics: the runtime gauges land in the registry
// snapshot with live values.
func TestRegisterRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	vals := map[string]int64{}
	for _, c := range r.Snapshot().Counters {
		vals[c.Name] = c.Value
	}
	for _, name := range []string{
		"tsq_heap_bytes", "tsq_goroutines",
		"tsq_alloc_bytes_total", "tsq_gc_cycles_total", "tsq_gc_pause_total_ns",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
	if vals["tsq_heap_bytes"] <= 0 {
		t.Errorf("tsq_heap_bytes = %d, want > 0", vals["tsq_heap_bytes"])
	}
	if vals["tsq_goroutines"] <= 0 {
		t.Errorf("tsq_goroutines = %d, want > 0", vals["tsq_goroutines"])
	}
	if vals["tsq_alloc_bytes_total"] <= 0 {
		t.Errorf("tsq_alloc_bytes_total = %d, want > 0", vals["tsq_alloc_bytes_total"])
	}
}

// TestReadRuntimeInfo: the bundle's environment section is populated.
func TestReadRuntimeInfo(t *testing.T) {
	ri := ReadRuntimeInfo()
	if ri.GoVersion == "" || ri.GOOS == "" || ri.GOARCH == "" {
		t.Errorf("runtime info missing build identity: %+v", ri)
	}
	if ri.GOMAXPROCS <= 0 || ri.NumCPU <= 0 || ri.Goroutines <= 0 {
		t.Errorf("runtime info missing process stats: %+v", ri)
	}
	if ri.HeapBytes <= 0 || ri.Resources.AllocBytes <= 0 {
		t.Errorf("runtime info missing memory stats: %+v", ri)
	}
}

// TestUptime: monotonic and positive.
func TestUptime(t *testing.T) {
	u1 := Uptime()
	if u1 <= 0 {
		t.Fatalf("uptime = %v", u1)
	}
	if u2 := Uptime(); u2 < u1 {
		t.Errorf("uptime went backwards: %v then %v", u1, u2)
	}
}
