package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// RecorderOptions configures a Recorder. Zero values pick defaults.
type RecorderOptions struct {
	// SlowN is the ring capacity for slow queries (default 128).
	SlowN int
	// SampleN is the reservoir capacity for queries under the threshold
	// (default 64). Zero-capacity sampling is allowed with SampleN < 0.
	SampleN int
	// Threshold is the latency above which a query is recorded in the
	// slow ring (default 10ms).
	Threshold time.Duration
}

func (o RecorderOptions) withDefaults() RecorderOptions {
	if o.SlowN <= 0 {
		o.SlowN = 128
	}
	if o.SampleN == 0 {
		o.SampleN = 64
	}
	if o.SampleN < 0 {
		o.SampleN = 0
	}
	if o.Threshold <= 0 {
		o.Threshold = 10 * time.Millisecond
	}
	return o
}

// QueryRecord is one completed query as retained by the Recorder.
type QueryRecord struct {
	Seq uint64 `json:"seq"`
	// QueryID is the process-wide query id (see NextQueryID) linking
	// this record to histogram exemplars and query-log lines; 0 for
	// records from callers that don't mint ids.
	QueryID    uint64    `json:"query_id,omitempty"`
	Time       time.Time `json:"time"`
	Kind       string    `json:"kind"`
	Label      string    `json:"label,omitempty"`
	DurationNs int64     `json:"duration_ns"`
	Matches    int64     `json:"matches"`
	Candidates int64     `json:"candidates"`
	Transforms int64     `json:"transforms"`
	Err        string    `json:"error,omitempty"`
	Slow       bool      `json:"slow"`
	Trace      *Trace    `json:"trace,omitempty"`
}

// Recorder is a slow-query flight recorder: a fixed ring retaining the
// last SlowN completed queries whose latency exceeded Threshold, plus a
// reservoir sample (Algorithm R) of SampleN queries below it, so the
// drained snapshot shows both the pathological tail and a fair picture
// of normal traffic. Record takes one short mutex hold and at most one
// allocation; when no Recorder is installed the query path pays a single
// atomic pointer load (pinned by benchmark in the facade package).
type Recorder struct {
	mu      sync.Mutex
	opts    RecorderOptions
	seq     uint64
	slow    []QueryRecord // ring, len == cap once full
	slowPos int
	evicted uint64        // slow records overwritten by ring wrap
	sample  []QueryRecord // reservoir
	seen    uint64        // queries under threshold, for Algorithm R
	rng     uint64        // xorshift64 state; avoids the global rand lock
}

// NewRecorder returns a Recorder with the given options.
func NewRecorder(opts RecorderOptions) *Recorder {
	o := opts.withDefaults()
	return &Recorder{
		opts: o,
		slow: make([]QueryRecord, 0, o.SlowN),
		rng:  0x9e3779b97f4a7c15, // fixed non-zero seed; fairness, not crypto
	}
}

// nextRand returns the next xorshift64 value. Caller holds mu.
func (r *Recorder) nextRand() uint64 {
	x := r.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng = x
	return x
}

// Record retains one completed query. kind/label describe the query
// ("range", "nn", ...), dur its wall time; qid is the process-wide
// query id (0 when the caller has none); tr may be nil (attribute
// fields then stay zero). Nil-receiver safe: a nil Recorder drops the
// record, so call sites can hold an atomic pointer that is nil when
// recording is disabled.
func (r *Recorder) Record(kind, label string, qid uint64, dur time.Duration, err error, tr *Trace) {
	if r == nil {
		return
	}
	rec := QueryRecord{
		QueryID:    qid,
		Time:       time.Now(),
		Kind:       kind,
		Label:      label,
		DurationNs: dur.Nanoseconds(),
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if tr != nil {
		rec.Matches = tr.Sum(KindVerify, AMatches)
		rec.Candidates = tr.Sum(KindFilter, ACandidates)
		rec.Transforms = tr.Sum(KindProbe, ATransforms)
		rec.Trace = tr
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rec.Seq = r.seq
	if dur >= r.opts.Threshold {
		rec.Slow = true
		if len(r.slow) < cap(r.slow) {
			r.slow = append(r.slow, rec)
		} else {
			r.slow[r.slowPos] = rec
			r.slowPos = (r.slowPos + 1) % cap(r.slow)
			r.evicted++
		}
		return
	}
	// Reservoir sample of normal traffic (Algorithm R): the k-th
	// under-threshold query replaces a random slot with probability
	// SampleN/k, giving every query an equal chance of surviving.
	r.seen++
	if len(r.sample) < r.opts.SampleN {
		r.sample = append(r.sample, rec)
		return
	}
	if r.opts.SampleN == 0 {
		return
	}
	if j := r.nextRand() % r.seen; j < uint64(r.opts.SampleN) {
		r.sample[j] = rec
	}
}

// RecorderSnapshot is the drained state of a Recorder.
type RecorderSnapshot struct {
	ThresholdNs int64  `json:"threshold_ns"`
	Total       uint64 `json:"total"`   // queries recorded since start
	Sampled     uint64 `json:"sampled"` // under-threshold queries seen
	// Evicted counts slow records overwritten by the ring buffer wrap:
	// nonzero means the Slow list is a suffix of the slow queries seen,
	// and an operator reading it should widen SlowN or scrape /queries
	// more often. Total-Sampled always equals Evicted+len(Slow).
	Evicted uint64        `json:"evicted"`
	Slow    []QueryRecord `json:"slow"`   // oldest first
	Sample  []QueryRecord `json:"sample"` // reservoir, unordered
}

// Snapshot copies the recorder's current contents. The slow ring is
// returned oldest-first.
func (r *Recorder) Snapshot() RecorderSnapshot {
	if r == nil {
		return RecorderSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := RecorderSnapshot{
		ThresholdNs: r.opts.Threshold.Nanoseconds(),
		Total:       r.seq,
		Sampled:     r.seen,
		Evicted:     r.evicted,
		Slow:        make([]QueryRecord, 0, len(r.slow)),
		Sample:      append([]QueryRecord(nil), r.sample...),
	}
	// Ring order: slowPos is the oldest slot once the ring has wrapped.
	for i := 0; i < len(r.slow); i++ {
		snap.Slow = append(snap.Slow, r.slow[(r.slowPos+i)%len(r.slow)])
	}
	return snap
}

// Handler serves the recorder snapshot as JSON.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}
