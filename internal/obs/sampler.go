package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// SamplerOptions configures a Sampler. Zero values pick defaults.
type SamplerOptions struct {
	// Interval between registry snapshots (default 1s).
	Interval time.Duration
	// Window is the number of snapshots retained (default 300 — five
	// minutes at the default interval).
	Window int
}

func (o SamplerOptions) withDefaults() SamplerOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.Window <= 0 {
		o.Window = 300
	}
	return o
}

// timedSnap is one registry snapshot with its capture time.
type timedSnap struct {
	at   time.Time
	snap Snapshot
}

// Sampler periodically snapshots a Registry into a fixed ring and
// derives windowed rates from snapshot deltas: QPS from counter deltas,
// latency quantiles from histogram bucket deltas, ratios (e.g. buffer
// hits / page reads) left to the caller from the per-counter rates. The
// sampling goroutine runs only between Start and Stop; a stopped or
// never-started Sampler still answers Rates from whatever it holds.
// The query hot path never touches the Sampler — it reads the same
// lock-free instruments the registry already exposes — so enabling it
// adds no per-query allocations or contention.
type Sampler struct {
	reg  *Registry
	opts SamplerOptions

	mu   sync.Mutex
	ring []timedSnap // oldest first, len <= opts.Window
	stop chan struct{}
	done chan struct{}
}

// NewSampler returns a Sampler over reg. Call Start to begin sampling.
func NewSampler(reg *Registry, opts SamplerOptions) *Sampler {
	return &Sampler{reg: reg, opts: opts.withDefaults()}
}

// Start launches the background sampling goroutine. Starting a running
// sampler is a no-op.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	s.record(time.Now()) // immediate baseline snapshot
	go s.run(s.stop, s.done)
}

// Stop halts sampling and waits for the goroutine to exit. Retained
// snapshots stay queryable. Stopping a stopped sampler is a no-op.
func (s *Sampler) Stop() {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (s *Sampler) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-t.C:
			s.mu.Lock()
			s.record(now)
			s.mu.Unlock()
		}
	}
}

// record appends a snapshot to the ring. Caller holds mu.
func (s *Sampler) record(now time.Time) {
	s.ring = append(s.ring, timedSnap{at: now, snap: s.reg.Snapshot()})
	if len(s.ring) > s.opts.Window {
		s.ring = s.ring[len(s.ring)-s.opts.Window:]
	}
}

// Sample takes one snapshot immediately, outside the ticker schedule.
// Useful in tests and for on-demand refresh before Rates.
func (s *Sampler) Sample() {
	s.mu.Lock()
	s.record(time.Now())
	s.mu.Unlock()
}

// RateStat is one counter's movement over a window.
type RateStat struct {
	Delta  int64   `json:"delta"`
	PerSec float64 `json:"per_sec"`
}

// WindowHistogram is one histogram's movement over a window: the
// observation rate and quantiles estimated from bucket deltas — i.e.
// the latency distribution of only the queries inside the window.
type WindowHistogram struct {
	Count  int64   `json:"count"`
	PerSec float64 `json:"per_sec"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// WindowStats is the derived view over one sliding window.
type WindowStats struct {
	Window     string                     `json:"window"` // requested span, e.g. "1m0s"
	Seconds    float64                    `json:"seconds"`
	Samples    int                        `json:"samples"` // snapshots spanned
	Counters   map[string]RateStat        `json:"counters"`
	Histograms map[string]WindowHistogram `json:"histograms"`
}

// RatesSchemaVersion identifies the /rates response shape. Version 1
// was a bare []WindowStats array; version 2 wraps it in a RatesReport
// envelope with the schema version and process uptime.
const RatesSchemaVersion = 2

// RatesReport is the versioned envelope the /rates endpoint serves.
type RatesReport struct {
	SchemaVersion int     `json:"schema_version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Windows holds one derived view per requested span.
	Windows []WindowStats `json:"windows"`
}

// Report derives per-window statistics wrapped in the versioned
// envelope; see Rates for the derivation rules.
func (s *Sampler) Report(windows ...time.Duration) RatesReport {
	return RatesReport{
		SchemaVersion: RatesSchemaVersion,
		UptimeSeconds: Uptime().Seconds(),
		Windows:       s.Rates(windows...),
	}
}

// Rates derives per-window statistics for each requested span. A window
// spanning fewer than two snapshots yields zeroed stats (Samples
// reports how many it had). The newest snapshot is the window's end;
// the baseline is the oldest retained snapshot within the span.
func (s *Sampler) Rates(windows ...time.Duration) []WindowStats {
	s.mu.Lock()
	ring := make([]timedSnap, len(s.ring))
	copy(ring, s.ring)
	s.mu.Unlock()

	out := make([]WindowStats, 0, len(windows))
	for _, w := range windows {
		out = append(out, deriveWindow(ring, w))
	}
	return out
}

func deriveWindow(ring []timedSnap, window time.Duration) WindowStats {
	ws := WindowStats{
		Window:     window.String(),
		Counters:   map[string]RateStat{},
		Histograms: map[string]WindowHistogram{},
	}
	if len(ring) == 0 {
		return ws
	}
	newest := ring[len(ring)-1]
	cutoff := newest.at.Add(-window)
	// Oldest snapshot not older than the cutoff is the baseline.
	i := sort.Search(len(ring), func(i int) bool { return !ring[i].at.Before(cutoff) })
	ws.Samples = len(ring) - i
	if ws.Samples < 2 {
		return ws
	}
	base := ring[i]
	ws.Seconds = newest.at.Sub(base.at).Seconds()
	if ws.Seconds <= 0 {
		return ws
	}

	baseCounters := make(map[string]int64, len(base.snap.Counters))
	for _, c := range base.snap.Counters {
		baseCounters[c.Name] = c.Value
	}
	for _, c := range newest.snap.Counters {
		d := c.Value - baseCounters[c.Name] // absent in base → counted from 0
		ws.Counters[c.Name] = RateStat{Delta: d, PerSec: float64(d) / ws.Seconds}
	}

	baseHists := make(map[string]HistogramSnap, len(base.snap.Histograms))
	for _, h := range base.snap.Histograms {
		baseHists[h.Name] = h
	}
	for _, h := range newest.snap.Histograms {
		wh := WindowHistogram{}
		deltas := append([]int64(nil), h.Counts...)
		if bh, ok := baseHists[h.Name]; ok && len(bh.Counts) == len(deltas) {
			for i := range deltas {
				deltas[i] -= bh.Counts[i]
			}
		}
		for _, d := range deltas {
			wh.Count += d
		}
		wh.PerSec = float64(wh.Count) / ws.Seconds
		wh.P50 = quantileFromBuckets(h.Bounds, deltas, 0.50)
		wh.P95 = quantileFromBuckets(h.Bounds, deltas, 0.95)
		wh.P99 = quantileFromBuckets(h.Bounds, deltas, 0.99)
		ws.Histograms[h.Name] = wh
	}
	return ws
}

// Handler serves the versioned windowed-stats report as JSON for the
// given spans.
func (s *Sampler) Handler(windows ...time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.Report(windows...))
	})
}
