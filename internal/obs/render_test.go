package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildRenderTrace constructs a deterministic span tree exercising every
// JSON feature: nesting, labels, attributes, an error span, and an
// unfinished span. Only the durations are nondeterministic; tests zero
// them before comparing.
func buildRenderTrace() *Trace {
	tr := New()
	root := tr.Start(KindQuery, "range MT-index (16 transforms)")
	root.Set(AMatches, 3)
	root.Set(ACandidates, 8)
	root.Set(ATransforms, 16)
	probe := root.Child(KindProbe, "group 0")
	probe.Set(ANodes, 12)
	probe.Set(APagesRead, 5)
	probe.Set(ABufferHits, 2)
	filter := probe.Child(KindFilter, "rtree")
	filter.Set(ACandidates, 8)
	filter.Set(APruned, 40)
	filter.End()
	verify := probe.Child(KindVerify, "")
	verify.Set(AComparisons, 8)
	verify.Set(AMatches, 3)
	verify.Set(AFalsePositives, 5)
	verify.Set(AAllocBytes, 4096)
	verify.EndErr(errors.New("verification failed"))
	probe.End()
	root.End()
	// A second root left unfinished: done=false, zero duration.
	tr.Start(KindScan, "orphan scan")
	return tr
}

// decodedSpan mirrors the trace's JSON shape from the consumer side.
type decodedSpan struct {
	ID       int32            `json:"id"`
	Parent   int32            `json:"parent"`
	Kind     string           `json:"kind"`
	Label    string           `json:"label,omitempty"`
	Duration int64            `json:"duration_ns"`
	Done     bool             `json:"done"`
	Error    string           `json:"error,omitempty"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
}

// TestTraceJSONRoundTrip: the marshalled trace decodes into the
// documented shape with the tree structure, attributes and error status
// intact.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := buildRenderTrace()
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var spans []decodedSpan
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v\n%s", err, data)
	}
	if len(spans) != 5 {
		t.Fatalf("decoded %d spans, want 5", len(spans))
	}
	root := spans[0]
	if root.Parent != -1 || root.Kind != "query" || !root.Done {
		t.Errorf("root span: %+v", root)
	}
	if root.Attrs["matches"] != 3 || root.Attrs["candidates"] != 8 || root.Attrs["transforms"] != 16 {
		t.Errorf("root attrs: %v", root.Attrs)
	}
	if root.Duration <= 0 {
		t.Errorf("closed root has duration %d, want > 0", root.Duration)
	}
	probe := spans[1]
	if probe.Parent != root.ID || probe.Kind != "probe" || probe.Label != "group 0" {
		t.Errorf("probe span: %+v", probe)
	}
	verify := spans[3]
	if verify.Parent != probe.ID || verify.Error != "verification failed" {
		t.Errorf("verify span: %+v", verify)
	}
	if verify.Attrs["alloc_bytes"] != 4096 {
		t.Errorf("verify attrs: %v", verify.Attrs)
	}
	orphan := spans[4]
	if orphan.Done || orphan.Duration != 0 || orphan.Parent != -1 {
		t.Errorf("unfinished span: %+v", orphan)
	}

	// A nil trace marshals to JSON null.
	var nilTrace *Trace
	if data, err := json.Marshal(nilTrace); err != nil || string(data) != "null" {
		t.Errorf("nil trace marshals to %q, %v", data, err)
	}
}

// TestTraceJSONGolden pins the exact wire format against a golden file
// (durations zeroed — they are the only nondeterministic field).
// Refresh with: go test ./internal/obs -run TestTraceJSONGolden -update
func TestTraceJSONGolden(t *testing.T) {
	data, err := json.Marshal(buildRenderTrace())
	if err != nil {
		t.Fatal(err)
	}
	var spans []decodedSpan
	if err := json.Unmarshal(data, &spans); err != nil {
		t.Fatal(err)
	}
	for i := range spans {
		spans[i].Duration = 0
	}
	normalized, err := json.MarshalIndent(spans, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	normalized = append(normalized, '\n')

	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, normalized, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(normalized, want) {
		t.Errorf("trace JSON drifted from golden file.\ngot:\n%s\nwant:\n%s", normalized, want)
	}
}

// TestTraceRenderText spot-checks the EXPLAIN ANALYZE tree rendering:
// indentation connectors, attribute formatting, error and unfinished
// markers.
func TestTraceRenderText(t *testing.T) {
	text := buildRenderTrace().String()
	for _, needle := range []string{
		"range MT-index (16 transforms)",
		"└─ ", "├─ ",
		"{candidates=8 matches=3 transforms=16}",
		"pruned=40",
		"ERROR: verification failed",
		"(unfinished)",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("rendered trace missing %q:\n%s", needle, text)
		}
	}
	var nilTrace *Trace
	if nilTrace.String() != "" {
		t.Error("nil trace renders non-empty")
	}
}
