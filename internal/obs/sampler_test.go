package obs

import (
	"testing"
	"time"
)

// TestSamplerWindowedRates drives the derivation directly through the
// ring (no wall-clock sleeps): two synthetic snapshots a known span
// apart must yield exact deltas, rates, and windowed quantiles.
func TestSamplerWindowedRates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("tsq_range_queries_total")
	h := r.Histogram("tsq_range_latency_ns", []int64{1000, 2000, 4000})

	s := NewSampler(r, SamplerOptions{Window: 10})
	base := time.Now()
	c.Add(100)
	for i := 0; i < 100; i++ {
		h.Observe(500) // first bucket
	}
	s.mu.Lock()
	s.ring = append(s.ring, timedSnap{at: base, snap: r.Snapshot()})
	s.mu.Unlock()

	// Ten seconds later: 50 more queries, all in the (2000,4000] bucket.
	c.Add(50)
	for i := 0; i < 50; i++ {
		h.Observe(3000)
	}
	s.mu.Lock()
	s.ring = append(s.ring, timedSnap{at: base.Add(10 * time.Second), snap: r.Snapshot()})
	s.mu.Unlock()

	stats := s.Rates(time.Minute)
	if len(stats) != 1 {
		t.Fatalf("%d windows, want 1", len(stats))
	}
	ws := stats[0]
	if ws.Samples != 2 || ws.Seconds != 10 {
		t.Fatalf("samples=%d seconds=%v, want 2/10", ws.Samples, ws.Seconds)
	}
	cr := ws.Counters["tsq_range_queries_total"]
	if cr.Delta != 50 || cr.PerSec != 5 {
		t.Errorf("counter rate = %+v, want delta=50 per_sec=5", cr)
	}
	wh := ws.Histograms["tsq_range_latency_ns"]
	if wh.Count != 50 || wh.PerSec != 5 {
		t.Errorf("histogram window = %+v, want count=50 per_sec=5", wh)
	}
	// All 50 windowed observations sit in (2000,4000]: the cumulative
	// history would put p50 in the first bucket, but the window must not.
	if wh.P50 != 3000 {
		t.Errorf("windowed p50 = %v, want 3000", wh.P50)
	}
	if wh.P99 <= 2000 || wh.P99 > 4000 {
		t.Errorf("windowed p99 = %v, want in (2000,4000]", wh.P99)
	}
}

// TestSamplerWindowSelection checks that a short window picks a later
// baseline than a long one, and that a window with one snapshot zeroes.
func TestSamplerWindowSelection(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("q")
	s := NewSampler(r, SamplerOptions{Window: 10})
	base := time.Now()
	for i := 0; i < 4; i++ {
		c.Add(10)
		s.mu.Lock()
		s.ring = append(s.ring, timedSnap{at: base.Add(time.Duration(i) * time.Minute), snap: r.Snapshot()})
		s.mu.Unlock()
	}
	stats := s.Rates(time.Minute, time.Hour, time.Second)
	if d := stats[0].Counters["q"].Delta; d != 10 {
		t.Errorf("1m delta = %d, want 10 (last two snapshots)", d)
	}
	if d := stats[1].Counters["q"].Delta; d != 30 {
		t.Errorf("1h delta = %d, want 30 (full ring)", d)
	}
	if stats[2].Samples >= 2 || len(stats[2].Counters) != 0 {
		t.Errorf("1s window = %+v, want zeroed", stats[2])
	}
}

// TestSamplerRingEviction checks the ring honors its capacity.
func TestSamplerRingEviction(t *testing.T) {
	r := NewRegistry()
	s := NewSampler(r, SamplerOptions{Window: 3})
	for i := 0; i < 10; i++ {
		s.Sample()
	}
	s.mu.Lock()
	n := len(s.ring)
	s.mu.Unlock()
	if n != 3 {
		t.Errorf("ring holds %d snapshots, want 3", n)
	}
}

// TestSamplerStartStop exercises the background goroutine lifecycle:
// Start samples a baseline immediately, Stop blocks until the goroutine
// exits, and both are idempotent (run under -race).
func TestSamplerStartStop(t *testing.T) {
	r := NewRegistry()
	r.Counter("q").Add(5)
	s := NewSampler(r, SamplerOptions{Interval: time.Millisecond, Window: 100})
	s.Start()
	s.Start() // no-op
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.ring)
		s.mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampler took only %d snapshots in 2s", n)
		}
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	s.Stop() // no-op
	s.mu.Lock()
	n := len(s.ring)
	s.mu.Unlock()
	time.Sleep(5 * time.Millisecond)
	s.mu.Lock()
	after := len(s.ring)
	s.mu.Unlock()
	if after != n {
		t.Errorf("sampler kept sampling after Stop: %d -> %d", n, after)
	}
	// Restart works.
	s.Start()
	s.Stop()
}
