package obs

import (
	"math"
	"strings"
	"testing"
)

// TestHistogramQuantile checks the bucket-interpolated estimator on a
// known distribution: uniform counts across bounded buckets place the
// quantiles by exact linear interpolation.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{100, 200, 300})
	// 100 observations per bounded bucket: (0,100], (100,200], (200,300].
	for i := 0; i < 100; i++ {
		h.Observe(50)
		h.Observe(150)
		h.Observe(250)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.50, 150}, // rank 150 → middle of bucket (100,200]
		{0.25, 75},  // rank 75 → 3/4 into bucket (0,100]
		{0.95, 285}, // rank 285 → 85/100 into bucket (200,300]
		{1.00, 300},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestHistogramQuantileEdges covers the empty histogram, out-of-range q,
// and ranks that land in the unbounded last bucket.
func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]int64{100})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	h.Observe(50)
	h.Observe(500) // overflow bucket
	if got := h.Quantile(0); got != 0 {
		t.Errorf("Quantile(0) = %v, want 0", got)
	}
	// Rank 2 lands in the unbounded bucket: clamp to the highest bound.
	if got := h.Quantile(0.99); got != 100 {
		t.Errorf("overflow-bucket Quantile = %v, want 100 (highest bound)", got)
	}
	// q > 1 clamps to 1.
	if got := h.Quantile(2); got != 100 {
		t.Errorf("Quantile(2) = %v, want 100", got)
	}
	// A histogram with no bounds has a single unbounded bucket and
	// resolves nothing.
	h2 := NewHistogram(nil)
	h2.Observe(7)
	if got := h2.Quantile(0.5); got != 0 {
		t.Errorf("boundless Quantile = %v, want 0", got)
	}
}

// TestSnapshotQuantiles checks that Snapshot carries p50/p95/p99 and that
// the text rendering includes them.
func TestSnapshotQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("tsq_range_latency_ns", []int64{1000, 2000})
	for i := 0; i < 10; i++ {
		h.Observe(500)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("%d histograms, want 1", len(snap.Histograms))
	}
	hs := snap.Histograms[0]
	if hs.P50 != 500 || hs.P95 != 950 || hs.P99 != 990 {
		t.Errorf("quantiles = p50=%v p95=%v p99=%v, want 500/950/990", hs.P50, hs.P95, hs.P99)
	}
	var b strings.Builder
	r.WriteText(&b)
	if !strings.Contains(b.String(), "p50=") || !strings.Contains(b.String(), "p99=") {
		t.Errorf("text output missing quantiles:\n%s", b.String())
	}
}

// TestCounterFunc registers function-backed counters and checks sampling
// at snapshot time, name precedence, and first-registration-wins.
func TestCounterFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(41)
	r.CounterFunc("tsq_pages_read_total", func() int64 { return v })
	v = 42
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 42 {
		t.Fatalf("snapshot counters = %+v, want one sampled at 42", snap.Counters)
	}
	// Second registration under the same name is ignored.
	r.CounterFunc("tsq_pages_read_total", func() int64 { return -1 })
	if got := r.Snapshot().Counters[0].Value; got != 42 {
		t.Errorf("second CounterFunc overrode the first: %d", got)
	}
	// A regular counter under the same name takes precedence.
	r.Counter("dup").Add(7)
	r.CounterFunc("dup", func() int64 { return -1 })
	for _, c := range r.Snapshot().Counters {
		if c.Name == "dup" && c.Value != 7 {
			t.Errorf("func-backed counter shadowed regular counter: %d", c.Value)
		}
	}
}
