package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram of int64 observations (by
// convention nanoseconds for latencies). Bucket i counts observations
// <= bounds[i]; the last bucket is unbounded. Observations are atomic;
// a snapshot taken during concurrent observation is internally
// consistent per counter (each bucket/sum/count is individually exact,
// totals may trail by in-flight observations).
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram returns a histogram with the given ascending upper
// bounds. An empty bounds slice yields a single unbounded bucket.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// DurationBuckets returns the default latency bounds: 1µs to 10s,
// decade-spaced with a 1-2-5-style midpoint, in nanoseconds.
func DurationBuckets() []int64 {
	return []int64{
		1e3, 1e4, 1e5, 2.5e5, 1e6, 2.5e6, 1e7, 2.5e7, 1e8, 1e9, 1e10,
	}
}

// Registry is a named collection of counters and histograms. Get-or-
// create registration is mutex-protected; the returned instruments are
// lock-free. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the library's always-on query
// counters register with.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram in a Snapshot.
type HistogramSnap struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last bucket unbounded
}

// Snapshot is a point-in-time copy of a registry, sorted by name.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var snap Snapshot
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, h := range r.hists {
		hs := HistogramSnap{
			Name:   name,
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}
