package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket histogram of int64 observations (by
// convention nanoseconds for latencies). Bucket i counts observations
// <= bounds[i]; the last bucket is unbounded. Observations are atomic;
// a snapshot taken during concurrent observation is internally
// consistent per counter (each bucket/sum/count is individually exact,
// totals may trail by in-flight observations).
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	n      atomic.Int64
	// ex, when non-nil, holds one exemplar slot per bucket (see
	// exemplar.go); nil until EnableExemplars.
	ex atomic.Pointer[[]exemplarSlot]
}

// NewHistogram returns a histogram with the given ascending upper
// bounds. An empty bounds slice yields a single unbounded bucket.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("obs: histogram bounds must be ascending")
		}
	}
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) { h.observe(v) }

// observe records one value and returns the bucket it landed in.
func (h *Histogram) observe(v int64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
	return i
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) of the observations by
// linear interpolation within the bucket the target rank falls into —
// the same estimate Prometheus's histogram_quantile computes. The first
// bucket interpolates from zero; ranks landing in the unbounded last
// bucket return the highest bound (the estimate cannot exceed what the
// buckets resolve). An empty histogram returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return quantileFromBuckets(h.bounds, counts, q)
}

// quantileFromBuckets is the shared quantile estimator over one set of
// per-bucket (non-cumulative) counts; the sampler reuses it on windowed
// bucket deltas.
func quantileFromBuckets(bounds []int64, counts []int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next < target {
			cum = next
			continue
		}
		if i >= len(bounds) {
			// Unbounded last bucket: the bucket layout resolves nothing
			// beyond its highest bound.
			if len(bounds) == 0 {
				return 0
			}
			return float64(bounds[len(bounds)-1])
		}
		lo := 0.0
		if i > 0 {
			lo = float64(bounds[i-1])
		}
		hi := float64(bounds[i])
		return lo + (hi-lo)*(target-cum)/float64(c)
	}
	// Unreachable with total > 0; keep the compiler satisfied.
	return 0
}

// DurationBuckets returns the default latency bounds: 1µs to 10s,
// decade-spaced with a 1-2-5-style midpoint, in nanoseconds.
func DurationBuckets() []int64 {
	return []int64{
		1e3, 1e4, 1e5, 2.5e5, 1e6, 2.5e6, 1e7, 2.5e7, 1e8, 1e9, 1e10,
	}
}

// Registry is a named collection of counters and histograms. Get-or-
// create registration is mutex-protected; the returned instruments are
// lock-free. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		funcs:    make(map[string]func() int64),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the library's always-on query
// counters register with.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// CounterFunc registers a function-backed counter: fn is sampled at
// snapshot time and its value appears alongside regular counters. Use
// it to mirror counters maintained elsewhere (e.g. the storage
// manager's atomic I/O totals) into the registry so window samplers
// can rate them. The value must be monotonically non-decreasing for
// rate derivation to make sense. The first registration of a name
// wins; a name already taken by a regular counter is left alone.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.counters[name]; ok {
		return
	}
	if _, ok := r.funcs[name]; ok {
		return
	}
	r.funcs[name] = fn
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use (later bounds are ignored).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// CounterSnap is one counter in a Snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap is one histogram in a Snapshot. P50/P95/P99 are
// bucket-interpolated quantile estimates over the whole recorded
// history (see Histogram.Quantile); windowed quantiles come from the
// Sampler.
type HistogramSnap struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last bucket unbounded
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	// Exemplars are the per-bucket last-query observations of an
	// exemplar-enabled histogram (absent otherwise); see exemplar.go.
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot copies the registry's current values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var snap Snapshot
	for name, c := range r.counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, fn := range r.funcs {
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: fn()})
	}
	for name, h := range r.hists {
		hs := HistogramSnap{
			Name:   name,
			Count:  h.Count(),
			Sum:    h.Sum(),
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		hs.P50 = quantileFromBuckets(hs.Bounds, hs.Counts, 0.50)
		hs.P95 = quantileFromBuckets(hs.Bounds, hs.Counts, 0.95)
		hs.P99 = quantileFromBuckets(hs.Bounds, hs.Counts, 0.99)
		hs.Exemplars = h.exemplars()
		snap.Histograms = append(snap.Histograms, hs)
	}
	sort.Slice(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.Slice(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })
	return snap
}
