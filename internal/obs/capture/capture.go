// Package capture implements the workload journal: an always-on,
// low-overhead log of every completed query — full query specification,
// key effort counters, and an answer digest — framed so that a capture
// file is a first-class, replayable artifact. cmd/tsreplay re-runs a
// capture against a database and verifies every digest, turning "what
// production actually ran" into the regression workload every A/B is
// measured on.
//
// # File format (schema 1)
//
// A capture file is an 8-byte magic header ("TSQCAP01", the trailing
// two bytes the schema version) followed by a sequence of frames:
//
//	kind   u8     frameTransformSet (1) or frameQuery (2)
//	length u32le  payload length in bytes
//	payload
//	crc    u32le  CRC32C over kind, length and payload
//
// The CRC covers the header bytes too, so a frame whose length field
// was torn mid-write can never misparse as a shorter valid frame. A
// writer reopening a file for append scans it and truncates at the
// first incomplete or checksum-failing frame (the torn tail of a
// crash); a reader treats an incomplete tail as a clean, flagged end
// but a complete frame with a bad checksum as corruption — the
// distinction tsreplay's exit status reports.
//
// Query records do not embed their transformation set inline (a set of
// 24 transformations over length-128 series is ~100 KiB); instead the
// writer emits one frameTransformSet per distinct set per segment and
// queries reference it by content hash. Rotation clears the
// written-set memory, so every segment is self-contained.
package capture

import (
	"math"

	"tsq/internal/transform"
)

// SchemaVersion identifies the capture file format. It is baked into
// the file magic, so a reader never guesses.
const SchemaVersion = 1

// fileMagic opens every capture file; the last two bytes spell the
// schema version.
var fileMagic = [8]byte{'T', 'S', 'Q', 'C', 'A', 'P', '0', '1'}

// Kind is the captured query shape.
type Kind uint8

const (
	// KindRange is a similarity range query (Query 1).
	KindRange Kind = 1
	// KindNN is a k-nearest-neighbor query.
	KindNN Kind = 2
	// KindSubseq is a subsequence-matching search.
	KindSubseq Kind = 3
)

// String returns the kind's conventional name.
func (k Kind) String() string {
	switch k {
	case KindRange:
		return "range"
	case KindNN:
		return "nn"
	case KindSubseq:
		return "subseq"
	default:
		return "unknown"
	}
}

// OptionsRecord is the flattened QueryOptions of a captured query —
// everything replay needs to re-run it on the identical code path.
type OptionsRecord struct {
	Algorithm        uint8
	TransformsPerMBR int32
	Workers          int32
	ClusterPartition bool
	UseOrdering      bool
	PaperQueryRect   bool
	OneSided         bool
	NaiveVerify      bool
	FlatLB           bool
	// QueryTransform is recorded inline when set (it is one
	// transformation, not a set).
	QueryTransform *transform.Transform
}

// StatsRecord carries the captured query's key effort counters, the
// baseline the replay regression report diffs against.
type StatsRecord struct {
	DurationNs  int64
	Matches     int64
	Candidates  int64
	SkippedLB0  int64
	SkippedLB1  int64
	SkippedLB2  int64
	Abandoned   int64
	Comparisons int64
	// Page counters are process-global deltas observed around the
	// query; under concurrent load they include neighbors' I/O.
	PagesRead       int64
	PagesPrefetched int64
	BufferHits      int64
}

// SkippedLB returns the total lower-bound skips across cascade tiers.
func (s StatsRecord) SkippedLB() int64 {
	return s.SkippedLB0 + s.SkippedLB1 + s.SkippedLB2
}

// Record is one self-contained captured query.
type Record struct {
	QueryID  uint64
	Kind     Kind
	UnixNano int64

	// SeriesID names a stored series as the query point; -1 means the
	// query vector is inline in Query. QueryHash is the content hash of
	// the raw query values either way, so replay can verify that a
	// by-reference query still resolves to the same series.
	SeriesID  int64
	Query     []float64
	QueryHash uint64

	// SetHash references the transformation set (a frameTransformSet
	// earlier in the same segment); 0 means no set (subsequence search).
	SetHash uint64

	Eps    float64 // range/subseq threshold (resolved distance)
	K      int32   // NN k
	Window int32   // subseq window length

	Opts OptionsRecord

	// Digest is the answer digest; Err records a failed query (digest
	// is then empty and replay expects the same failure).
	Digest Digest
	Err    string

	Stats StatsRecord
}

// Digest is an order-insensitive checksum over a query's answer set:
// the result count plus the wrapping sum of one mixed hash per
// (id, transform, distance) answer tuple. Summation makes it
// independent of result order (parallel verification shards answers
// nondeterministically before the final sort) while distinct answer
// sets still collide with probability ~2^-64.
type Digest struct {
	Count uint32 `json:"count"`
	Sum   uint64 `json:"sum"`
}

// Add folds one answer tuple into the digest. Distances are compared
// bit-exactly: the engine's answer contract is bit-identical results
// across verification modes and worker counts, and the digest holds it
// to that.
func (d *Digest) Add(a, b int64, dist float64) {
	h := mix64(digestSeed ^ uint64(a))
	h = mix64(h ^ uint64(b))
	h = mix64(h ^ math.Float64bits(dist))
	d.Sum += h
	d.Count++
}

// digestSeed domain-separates answer-tuple hashes from the series and
// transform-set hashes built on the same mixer.
const digestSeed = 0x7473712d63617031 // "tsq-cap1"

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit
// mixer (Steele et al.), the building block of every hash here.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashFloats content-hashes a float vector (bit-exact, length-prefixed
// so a prefix never collides with its extension).
func HashFloats(vs []float64) uint64 {
	h := mix64(digestSeed ^ 0xf10a75 ^ uint64(len(vs)))
	for _, v := range vs {
		h = mix64(h ^ math.Float64bits(v))
	}
	return h
}

// hashString folds a string into a running hash 8 bytes at a time.
func hashString(h uint64, s string) uint64 {
	h = mix64(h ^ uint64(len(s)))
	var acc uint64
	var n uint
	for i := 0; i < len(s); i++ {
		acc |= uint64(s[i]) << (8 * n)
		if n++; n == 8 {
			h = mix64(h ^ acc)
			acc, n = 0, 0
		}
	}
	if n > 0 {
		h = mix64(h ^ acc)
	}
	return h
}

// HashTransform content-hashes one transformation (name and both
// coefficient vectors, bit-exact).
func HashTransform(h uint64, t *transform.Transform) uint64 {
	h = hashString(h, t.Name)
	h = mix64(h ^ uint64(len(t.A)))
	for _, v := range t.A {
		h = mix64(h ^ math.Float64bits(v))
	}
	for _, v := range t.B {
		h = mix64(h ^ math.Float64bits(v))
	}
	return h
}

// HashTransformSet content-hashes a transformation set. The writer
// uses it as the set's identity: queries reference the set by this
// hash and replay verifies it after decoding. Never returns 0 (0 is
// the "no set" sentinel in Record.SetHash).
func HashTransformSet(ts []transform.Transform) uint64 {
	h := mix64(digestSeed ^ 0x7e7a5e7 ^ uint64(len(ts)))
	for i := range ts {
		h = HashTransform(h, &ts[i])
	}
	if h == 0 {
		h = 1
	}
	return h
}
