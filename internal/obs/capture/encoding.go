package capture

import (
	"encoding/binary"
	"fmt"
	"math"

	"tsq/internal/transform"
)

// Binary payload encoding: fixed-width little-endian fields, strings
// and float vectors length-prefixed with u32 counts. Hand-rolled so
// the decoder can bounds-check every read (the fuzz target feeds it
// arbitrary bytes) and so the format is stable across Go versions —
// gob's type negotiation would make segment self-containment depend on
// stream position.

// Sanity caps for the decoder: a claimed count beyond these is
// corruption, not allocation advice.
const (
	maxFramePayload = 64 << 20 // bytes per frame
	maxVecLen       = 1 << 24  // elements per float vector
	maxSetLen       = 1 << 16  // transformations per set
)

// enc is an append-only payload builder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) floats(vs []float64) {
	e.u32(uint32(len(vs)))
	for _, v := range vs {
		e.f64(v)
	}
}

// dec is a bounds-checked payload reader; the first failed read sticks
// in err and zero-values every subsequent read.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("capture: truncated or corrupt payload reading %s at offset %d", what, d.off)
	}
}

func (d *dec) take(n int, what string) []byte {
	if d.err != nil || n < 0 || len(d.b)-d.off < n {
		d.fail(what)
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *dec) u8(what string) uint8 {
	s := d.take(1, what)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *dec) u32(what string) uint32 {
	s := d.take(4, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *dec) u64(what string) uint64 {
	s := d.take(8, what)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *dec) i64(what string) int64   { return int64(d.u64(what)) }
func (d *dec) f64(what string) float64 { return math.Float64frombits(d.u64(what)) }

func (d *dec) str(what string) string {
	n := d.u32(what)
	if n > maxFramePayload {
		d.fail(what)
		return ""
	}
	return string(d.take(int(n), what))
}

func (d *dec) floats(what string) []float64 {
	n := d.u32(what)
	if d.err != nil || n == 0 {
		return nil
	}
	if n > maxVecLen || len(d.b)-d.off < int(n)*8 {
		d.fail(what)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64(what)
	}
	return out
}

// remaining reports leftover bytes; a payload that decodes with bytes
// to spare was written by a future schema and is rejected.
func (d *dec) finish(what string) error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("capture: %d trailing bytes after %s payload", len(d.b)-d.off, what)
	}
	return nil
}

// Option flag bits in the query payload.
const (
	flagClusterPartition = 1 << iota
	flagUseOrdering
	flagPaperQueryRect
	flagOneSided
	flagNaiveVerify
	flagFlatLB
	flagQueryTransform
	flagErr
)

// appendQueryPayload encodes rec into b.
func appendQueryPayload(b []byte, rec *Record) []byte {
	e := enc{b: b}
	e.u64(rec.QueryID)
	e.u8(uint8(rec.Kind))
	e.i64(rec.UnixNano)
	e.i64(rec.SeriesID)
	e.floats(rec.Query)
	e.u64(rec.QueryHash)
	e.u64(rec.SetHash)
	e.f64(rec.Eps)
	e.u32(uint32(rec.K))
	e.u32(uint32(rec.Window))

	var flags uint16
	if rec.Opts.ClusterPartition {
		flags |= flagClusterPartition
	}
	if rec.Opts.UseOrdering {
		flags |= flagUseOrdering
	}
	if rec.Opts.PaperQueryRect {
		flags |= flagPaperQueryRect
	}
	if rec.Opts.OneSided {
		flags |= flagOneSided
	}
	if rec.Opts.NaiveVerify {
		flags |= flagNaiveVerify
	}
	if rec.Opts.FlatLB {
		flags |= flagFlatLB
	}
	if rec.Opts.QueryTransform != nil {
		flags |= flagQueryTransform
	}
	if rec.Err != "" {
		flags |= flagErr
	}
	e.u32(uint32(flags))
	e.u8(rec.Opts.Algorithm)
	e.u32(uint32(rec.Opts.TransformsPerMBR))
	e.u32(uint32(rec.Opts.Workers))
	if rec.Opts.QueryTransform != nil {
		appendTransform(&e, rec.Opts.QueryTransform)
	}
	if rec.Err != "" {
		e.str(rec.Err)
	}

	e.u32(rec.Digest.Count)
	e.u64(rec.Digest.Sum)

	st := &rec.Stats
	e.i64(st.DurationNs)
	e.i64(st.Matches)
	e.i64(st.Candidates)
	e.i64(st.SkippedLB0)
	e.i64(st.SkippedLB1)
	e.i64(st.SkippedLB2)
	e.i64(st.Abandoned)
	e.i64(st.Comparisons)
	e.i64(st.PagesRead)
	e.i64(st.PagesPrefetched)
	e.i64(st.BufferHits)
	return e.b
}

// decodeQueryPayload parses a query frame payload.
func decodeQueryPayload(b []byte) (*Record, error) {
	d := dec{b: b}
	rec := &Record{}
	rec.QueryID = d.u64("query_id")
	rec.Kind = Kind(d.u8("kind"))
	rec.UnixNano = d.i64("unix_nano")
	rec.SeriesID = d.i64("series_id")
	rec.Query = d.floats("query")
	rec.QueryHash = d.u64("query_hash")
	rec.SetHash = d.u64("set_hash")
	rec.Eps = d.f64("eps")
	rec.K = int32(d.u32("k"))
	rec.Window = int32(d.u32("window"))

	flags := uint16(d.u32("flags"))
	rec.Opts.Algorithm = d.u8("algorithm")
	rec.Opts.TransformsPerMBR = int32(d.u32("per_mbr"))
	rec.Opts.Workers = int32(d.u32("workers"))
	rec.Opts.ClusterPartition = flags&flagClusterPartition != 0
	rec.Opts.UseOrdering = flags&flagUseOrdering != 0
	rec.Opts.PaperQueryRect = flags&flagPaperQueryRect != 0
	rec.Opts.OneSided = flags&flagOneSided != 0
	rec.Opts.NaiveVerify = flags&flagNaiveVerify != 0
	rec.Opts.FlatLB = flags&flagFlatLB != 0
	if flags&flagQueryTransform != 0 {
		t := decodeTransform(&d)
		rec.Opts.QueryTransform = &t
	}
	if flags&flagErr != 0 {
		rec.Err = d.str("err")
	}

	rec.Digest.Count = d.u32("digest_count")
	rec.Digest.Sum = d.u64("digest_sum")

	st := &rec.Stats
	st.DurationNs = d.i64("duration_ns")
	st.Matches = d.i64("matches")
	st.Candidates = d.i64("candidates")
	st.SkippedLB0 = d.i64("skipped_lb0")
	st.SkippedLB1 = d.i64("skipped_lb1")
	st.SkippedLB2 = d.i64("skipped_lb2")
	st.Abandoned = d.i64("abandoned")
	st.Comparisons = d.i64("comparisons")
	st.PagesRead = d.i64("pages_read")
	st.PagesPrefetched = d.i64("pages_prefetched")
	st.BufferHits = d.i64("buffer_hits")
	if err := d.finish("query"); err != nil {
		return nil, err
	}
	if rec.Kind < KindRange || rec.Kind > KindSubseq {
		return nil, fmt.Errorf("capture: unknown query kind %d", rec.Kind)
	}
	return rec, nil
}

func appendTransform(e *enc, t *transform.Transform) {
	e.str(t.Name)
	e.floats(t.A)
	e.floats(t.B)
}

func decodeTransform(d *dec) transform.Transform {
	var t transform.Transform
	t.Name = d.str("transform_name")
	t.A = d.floats("transform_a")
	t.B = d.floats("transform_b")
	if d.err == nil && (len(t.A) != len(t.B) || len(t.A) == 0 || len(t.A)%2 != 0) {
		d.fail("transform_shape")
	}
	return t
}

// appendSetPayload encodes a transformation-set definition frame.
func appendSetPayload(b []byte, hash uint64, ts []transform.Transform) []byte {
	e := enc{b: b}
	e.u64(hash)
	e.u32(uint32(len(ts)))
	for i := range ts {
		appendTransform(&e, &ts[i])
	}
	return e.b
}

// decodeSetPayload parses a set definition and verifies the embedded
// hash against the decoded content, so a set can never silently
// diverge from the queries referencing it.
func decodeSetPayload(b []byte) (uint64, []transform.Transform, error) {
	d := dec{b: b}
	hash := d.u64("set_hash")
	n := d.u32("set_len")
	if n > maxSetLen {
		return 0, nil, fmt.Errorf("capture: transform set claims %d elements", n)
	}
	ts := make([]transform.Transform, 0, n)
	for i := uint32(0); i < n && d.err == nil; i++ {
		ts = append(ts, decodeTransform(&d))
	}
	if err := d.finish("transform_set"); err != nil {
		return 0, nil, err
	}
	if got := HashTransformSet(ts); got != hash {
		return 0, nil, fmt.Errorf("capture: transform set hash %#x does not match content hash %#x", hash, got)
	}
	return hash, ts, nil
}
