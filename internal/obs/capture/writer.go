package capture

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"tsq/internal/transform"
)

// castagnoli is the CRC32C table — the same polynomial as the storage
// layer's page trailers, hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame kinds.
const (
	frameTransformSet = 1
	frameQuery        = 2
)

// frameHeaderSize is kind (1) + payload length (4).
const frameHeaderSize = 5

// Options configures a Writer. Zero values pick defaults.
type Options struct {
	// SampleEvery journals every Nth query (default 1 — every query).
	// Sampled-out queries cost one atomic increment and no digest.
	SampleEvery int
	// MaxBytes rotates the file when it grows past this size (default
	// 256 MiB; negative disables rotation).
	MaxBytes int64
	// MaxFiles is how many rotated segments are kept as path.1 (newest)
	// through path.N (default 2).
	MaxFiles int
	// BufferBytes sizes the write buffer (default 64 KiB). Records are
	// flushed on rotation and Close, not per append: the journal is an
	// observability artifact, and a crash loses at most a buffer (the
	// torn tail truncates cleanly on the next open).
	BufferBytes int
}

func (o Options) withDefaults() Options {
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1
	}
	if o.MaxBytes == 0 {
		o.MaxBytes = 256 << 20
	}
	if o.MaxFiles <= 0 {
		o.MaxFiles = 2
	}
	if o.BufferBytes <= 0 {
		o.BufferBytes = 64 << 10
	}
	return o
}

// Stats reports what a Writer did. The invariant the support bundle
// audits: Seen == Written + SampledOut + Dropped.
type Stats struct {
	Seen          int64  `json:"seen"`           // queries offered to Admit
	Written       int64  `json:"written"`        // query records journaled
	SampledOut    int64  `json:"sampled_out"`    // skipped by SampleEvery
	Dropped       int64  `json:"dropped"`        // lost to write errors
	TransformSets int64  `json:"transform_sets"` // set definition frames written
	Bytes         int64  `json:"bytes"`          // bytes in the current segment
	Rotations     int64  `json:"rotations"`      // completed segment rotations
	TruncatedTail int64  `json:"truncated_tail"` // torn bytes dropped on open
	LastError     string `json:"last_error,omitempty"`
}

// setCacheEntry caches a transformation set's content hash keyed by
// slice identity (first-element pointer + length), so steady-state
// workloads reusing one set slice hash it once, not per query.
type setCacheEntry struct {
	ptr  *transform.Transform
	n    int
	hash uint64
}

// Writer appends query records to a rotating, CRC-framed capture file.
// Admit is lock-free; Append serializes on an internal mutex. Write
// errors are counted (Stats.Dropped), never surfaced to the query
// path.
type Writer struct {
	path string
	opts Options

	seen       atomic.Int64
	sampledOut atomic.Int64

	mu        sync.Mutex
	f         *os.File
	w         *bufio.Writer
	size      int64
	written   int64
	dropped   int64
	sets      int64
	rotations int64
	truncated int64
	lastErr   string
	knownSets map[uint64]bool
	setCache  [4]setCacheEntry
	scratch   []byte
	closed    bool
}

// NewWriter opens (or creates) a capture file for append. An existing
// file is scanned first: its transformation-set definitions are
// re-learned (so appended queries need not redefine them) and a torn
// tail — an incomplete or checksum-failing final write — is truncated
// away. A file with a foreign header is refused, never overwritten.
func NewWriter(path string, opts Options) (*Writer, error) {
	w := &Writer{path: path, opts: opts.withDefaults(), knownSets: make(map[uint64]bool)}
	if err := w.open(); err != nil {
		return nil, err
	}
	return w, nil
}

// open opens w.path for append, handling the fresh, existing and torn
// cases. Caller holds mu (or is the constructor).
func (w *Writer) open() error {
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return err
	}
	switch {
	case st.Size() < int64(len(fileMagic)):
		// Fresh (or a header torn mid-create): start over.
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return err
		}
		if _, err := f.WriteAt(fileMagic[:], 0); err != nil {
			_ = f.Close()
			return err
		}
		w.size = int64(len(fileMagic))
	default:
		var magic [8]byte
		if _, err := f.ReadAt(magic[:], 0); err != nil {
			_ = f.Close()
			return err
		}
		if magic != fileMagic {
			_ = f.Close()
			return fmt.Errorf("capture: %s is not a capture file (magic %q)", w.path, magic[:])
		}
		end, sets, err := scanFrames(f, st.Size())
		if err != nil {
			_ = f.Close()
			return err
		}
		if end < st.Size() {
			if err := f.Truncate(end); err != nil {
				_ = f.Close()
				return err
			}
			w.truncated += st.Size() - end
		}
		w.size = end
		for h := range sets {
			w.knownSets[h] = true
		}
	}
	if _, err := f.Seek(w.size, io.SeekStart); err != nil {
		_ = f.Close()
		return err
	}
	w.f = f
	if w.w == nil {
		w.w = bufio.NewWriterSize(f, w.opts.BufferBytes)
	} else {
		w.w.Reset(f)
	}
	return nil
}

// scanFrames walks the frames of f (which starts with a valid magic)
// and returns the offset of the first incomplete or checksum-failing
// frame — the truncation point — plus the set hashes defined before
// it. Scanning never misparses: a frame is only accepted when its
// whole extent and CRC check out.
func scanFrames(f *os.File, size int64) (end int64, sets map[uint64]bool, err error) {
	sets = make(map[uint64]bool)
	r := bufio.NewReaderSize(io.NewSectionReader(f, int64(len(fileMagic)), size-int64(len(fileMagic))), 256<<10)
	end = int64(len(fileMagic))
	var header [frameHeaderSize]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return end, sets, nil // clean EOF or torn header: truncate here
		}
		n := binary.LittleEndian.Uint32(header[1:])
		if n > maxFramePayload {
			return end, sets, nil // garbage length: torn tail
		}
		if cap(payload) < int(n)+4 {
			payload = make([]byte, 0, int(n)+4)
		}
		body := payload[:int(n)+4]
		if _, err := io.ReadFull(r, body); err != nil {
			return end, sets, nil // torn payload
		}
		crc := crc32.Update(crc32.Checksum(header[:], castagnoli), castagnoli, body[:n])
		if crc != binary.LittleEndian.Uint32(body[n:]) {
			return end, sets, nil // checksum failure: truncate
		}
		if header[0] == frameTransformSet {
			if hash, _, err := decodeSetPayload(body[:n]); err == nil {
				sets[hash] = true
			}
		}
		end += int64(frameHeaderSize) + int64(n) + 4
	}
}

// Admit reports whether this query should be journaled, consuming one
// sampling slot. Lock-free; the caller skips digest and record
// assembly entirely on false.
func (w *Writer) Admit() bool {
	n := w.seen.Add(1)
	if w.opts.SampleEvery > 1 && n%int64(w.opts.SampleEvery) != 0 {
		w.sampledOut.Add(1)
		return false
	}
	return true
}

// Append journals one admitted query record. ts is the query's
// transformation set (nil for subsequence searches); the writer
// interns it per segment and stamps rec.SetHash. Write failures are
// counted, not returned — capture must never fail a query.
func (w *Writer) Append(rec *Record, ts []transform.Transform) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		w.dropped++
		return
	}
	rec.SetHash = 0
	if len(ts) > 0 {
		hash := w.setHashLocked(ts)
		if !w.knownSets[hash] {
			if err := w.writeFrameLocked(frameTransformSet, appendSetPayload(w.scratch[:0], hash, ts)); err != nil {
				w.fail(err)
				return
			}
			w.knownSets[hash] = true
			w.sets++
		}
		rec.SetHash = hash
	}
	if err := w.writeFrameLocked(frameQuery, appendQueryPayload(w.scratch[:0], rec)); err != nil {
		w.fail(err)
		return
	}
	w.written++
	if w.opts.MaxBytes > 0 && w.size > w.opts.MaxBytes {
		if err := w.rotateLocked(); err != nil {
			// The segment failed to rotate but the record was written;
			// record the error and keep appending to the old segment.
			w.lastErr = err.Error()
		}
	}
}

// fail books a dropped record.
func (w *Writer) fail(err error) {
	w.dropped++
	w.lastErr = err.Error()
}

// setHashLocked resolves the content hash of ts through the identity
// cache.
func (w *Writer) setHashLocked(ts []transform.Transform) uint64 {
	ptr, n := &ts[0], len(ts)
	for i := range w.setCache {
		if w.setCache[i].ptr == ptr && w.setCache[i].n == n {
			return w.setCache[i].hash
		}
	}
	hash := HashTransformSet(ts)
	copy(w.setCache[1:], w.setCache[:len(w.setCache)-1])
	w.setCache[0] = setCacheEntry{ptr: ptr, n: n, hash: hash}
	return hash
}

// writeFrameLocked frames and writes one payload. w.scratch is the
// payload's backing array; it is retained for reuse.
func (w *Writer) writeFrameLocked(kind uint8, payload []byte) error {
	w.scratch = payload[:0]
	var header [frameHeaderSize]byte
	header[0] = kind
	binary.LittleEndian.PutUint32(header[1:], uint32(len(payload)))
	crc := crc32.Update(crc32.Checksum(header[:], castagnoli), castagnoli, payload)
	if _, err := w.w.Write(header[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(payload); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err := w.w.Write(tail[:]); err != nil {
		return err
	}
	w.size += int64(frameHeaderSize) + int64(len(payload)) + 4
	return nil
}

// rotateLocked closes the current segment, shifts path.i → path.i+1
// (dropping the oldest), renames the segment to path.1 and starts a
// fresh one. The set memory clears with the segment so every segment
// is self-contained.
func (w *Writer) rotateLocked() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	_ = os.Remove(fmt.Sprintf("%s.%d", w.path, w.opts.MaxFiles))
	for i := w.opts.MaxFiles - 1; i >= 1; i-- {
		from := fmt.Sprintf("%s.%d", w.path, i)
		if _, err := os.Stat(from); err == nil {
			_ = os.Rename(from, fmt.Sprintf("%s.%d", w.path, i+1))
		}
	}
	if err := os.Rename(w.path, w.path+".1"); err != nil {
		return err
	}
	w.rotations++
	clear(w.knownSets)
	return w.open()
}

// Sync flushes buffered records to the file and syncs it — for tests
// and operators who want the journal durable at a point in time.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.f == nil {
		return nil
	}
	if err := w.w.Flush(); err != nil {
		w.lastErr = err.Error()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.lastErr = err.Error()
		return err
	}
	return nil
}

// Close flushes, syncs and closes the capture file. Nil-receiver safe.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	var firstErr error
	if err := w.w.Flush(); err != nil {
		firstErr = err
	}
	if err := w.f.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := w.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	w.f = nil
	return firstErr
}

// Path returns the capture file path.
func (w *Writer) Path() string {
	if w == nil {
		return ""
	}
	return w.path
}

// Stats snapshots the writer's counters. Nil-receiver safe (the zero
// stats), matching the facade's disabled-path convention.
func (w *Writer) Stats() Stats {
	if w == nil {
		return Stats{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Seen:          w.seen.Load(),
		Written:       w.written,
		SampledOut:    w.sampledOut.Load(),
		Dropped:       w.dropped,
		TransformSets: w.sets,
		Bytes:         w.size,
		Rotations:     w.rotations,
		TruncatedTail: w.truncated,
		LastError:     w.lastErr,
	}
}
