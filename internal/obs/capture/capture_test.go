package capture

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"tsq/internal/transform"
)

// testSet builds a small distinct transformation set for length-n
// series; salt makes sets with different salts hash differently.
func testSet(n, count, salt int) []transform.Transform {
	ts := transform.MovingAverageSet(n, 2+salt, 2+salt+count-1)
	return ts
}

// fullRecord exercises every field of the query payload.
func fullRecord() *Record {
	qt := transform.MovingAverage(16, 3)
	return &Record{
		QueryID:   42,
		Kind:      KindRange,
		UnixNano:  1722800000123456789,
		SeriesID:  -1,
		Query:     []float64{1.5, -2.25, 0, 3.75e-9, 1e300},
		QueryHash: HashFloats([]float64{1.5, -2.25, 0, 3.75e-9, 1e300}),
		SetHash:   0xdeadbeefcafe,
		Eps:       0.3125,
		K:         7,
		Window:    16,
		Opts: OptionsRecord{
			Algorithm:        3,
			TransformsPerMBR: 8,
			Workers:          4,
			ClusterPartition: true,
			UseOrdering:      true,
			PaperQueryRect:   true,
			OneSided:         true,
			NaiveVerify:      true,
			FlatLB:           true,
			QueryTransform:   &qt,
		},
		Digest: Digest{Count: 3, Sum: 0x123456789abcdef0},
		Stats: StatsRecord{
			DurationNs: 12345, Matches: 3, Candidates: 19,
			SkippedLB0: 2, SkippedLB1: 5, SkippedLB2: 1,
			Abandoned: 4, Comparisons: 13,
			PagesRead: 9, PagesPrefetched: 2, BufferHits: 31,
		},
	}
}

func TestQueryPayloadRoundTrip(t *testing.T) {
	cases := map[string]*Record{
		"full": fullRecord(),
		"minimal": {
			QueryID: 1, Kind: KindRange, SeriesID: 10,
			QueryHash: 0x99, Eps: 1.25, Digest: Digest{Count: 1, Sum: 7},
		},
		"nn": {
			QueryID: 2, Kind: KindNN, SeriesID: -1,
			Query: []float64{0.5, 0.25}, QueryHash: 0x1, K: 5,
			Digest: Digest{Count: 5, Sum: 0xabc},
		},
		"subseq": {
			QueryID: 3, Kind: KindSubseq, SeriesID: -1,
			Query: []float64{1, 2, 3}, QueryHash: 0x2, Eps: 0.5, Window: 3,
			Digest: Digest{Count: 2, Sum: 0xdef},
		},
		"errored": {
			QueryID: 4, Kind: KindRange, SeriesID: 3,
			QueryHash: 0x3, Eps: 2, Err: "query length 31 != series length 32",
		},
	}
	for name, rec := range cases {
		t.Run(name, func(t *testing.T) {
			b := appendQueryPayload(nil, rec)
			got, err := decodeQueryPayload(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, rec) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
			}
		})
	}
}

func TestQueryPayloadRejectsMutations(t *testing.T) {
	b := appendQueryPayload(nil, fullRecord())
	if _, err := decodeQueryPayload(append(b[:len(b):len(b)], 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if _, err := decodeQueryPayload(b[:len(b)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	bad := fullRecord()
	bad.Kind = 9
	if _, err := decodeQueryPayload(appendQueryPayload(nil, bad)); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSetPayloadRoundTrip(t *testing.T) {
	ts := testSet(32, 4, 0)
	hash := HashTransformSet(ts)
	b := appendSetPayload(nil, hash, ts)
	gotHash, gotTS, err := decodeSetPayload(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotHash != hash || !reflect.DeepEqual(gotTS, ts) {
		t.Error("set round trip mismatch")
	}
	// A definition whose embedded hash disagrees with its content must
	// be rejected, not silently trusted.
	if _, _, err := decodeSetPayload(appendSetPayload(nil, hash^1, ts)); err == nil {
		t.Error("hash-mismatched set accepted")
	}
}

func TestDigestOrderInsensitiveNoCancel(t *testing.T) {
	var a, b Digest
	a.Add(1, 0, 0.5)
	a.Add(2, 3, 1.5)
	a.Add(7, 1, -1)
	b.Add(7, 1, -1)
	b.Add(1, 0, 0.5)
	b.Add(2, 3, 1.5)
	if a != b {
		t.Error("digest depends on answer order")
	}
	// Duplicates accumulate (wrapping sum, not XOR): a doubled answer
	// set must not digest equal to the original.
	var twice Digest
	for i := 0; i < 2; i++ {
		twice.Add(1, 0, 0.5)
		twice.Add(2, 3, 1.5)
		twice.Add(7, 1, -1)
	}
	if twice.Sum == a.Sum {
		t.Error("duplicated answers cancel out")
	}
	var c Digest
	c.Add(1, 0, 0.5000001)
	c.Add(2, 3, 1.5)
	c.Add(7, 1, -1)
	if a == c {
		t.Error("distance perturbation not detected")
	}
}

func TestHashTransformSetDistinct(t *testing.T) {
	h1 := HashTransformSet(testSet(32, 4, 0))
	h2 := HashTransformSet(testSet(32, 4, 1))
	h3 := HashTransformSet(testSet(32, 5, 0))
	if h1 == h2 || h1 == h3 || h2 == h3 {
		t.Errorf("set hash collision: %#x %#x %#x", h1, h2, h3)
	}
	if HashTransformSet(nil) == 0 {
		t.Error("set hash 0 collides with the no-set sentinel")
	}
}

// writeTestCapture writes records through a fresh writer and returns
// what Append stamped into them.
func writeTestCapture(t *testing.T, path string, opts Options, n int, ts []transform.Transform) []*Record {
	t.Helper()
	w, err := NewWriter(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*Record, 0, n)
	for i := 0; i < n; i++ {
		if !w.Admit() {
			continue
		}
		rec := &Record{
			QueryID: uint64(i + 1), Kind: KindRange, SeriesID: int64(i),
			QueryHash: mix64(uint64(i)), Eps: float64(i) + 0.5,
			Digest: Digest{Count: uint32(i), Sum: mix64(uint64(i) ^ 0xabc)},
			Stats:  StatsRecord{Matches: int64(i), Candidates: int64(2 * i)},
		}
		w.Append(rec, ts)
		recs = append(recs, rec)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

// readAll drains a capture file, failing the test on any corruption.
func readAll(t *testing.T, path string) ([]*Record, bool) {
	t.Helper()
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var recs []*Record
	for {
		rec, _, err := r.Next()
		if err == io.EOF {
			return recs, r.Truncated()
		}
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		recs = append(recs, rec)
	}
}

func TestWriterReaderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.tscap")
	ts := testSet(32, 4, 0)
	want := writeTestCapture(t, path, Options{}, 10, ts)

	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; ; i++ {
		rec, gotTS, err := r.Next()
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("read %d records, want %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(rec, want[i]) {
			t.Errorf("record %d mismatch:\n got %+v\nwant %+v", i, rec, want[i])
		}
		if !reflect.DeepEqual(gotTS, ts) {
			t.Errorf("record %d resolved wrong transform set", i)
		}
	}
	if r.Truncated() {
		t.Error("clean file reported truncated")
	}
	if len(r.Sets()) != 1 {
		t.Errorf("defined %d sets, want 1 (interning failed)", len(r.Sets()))
	}
}

func TestWriterInternsSetsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reopen.tscap")
	ts := testSet(32, 4, 0)
	writeTestCapture(t, path, Options{}, 3, ts)

	// A second writer must relearn the set from the existing file and
	// not redefine it for appended queries.
	w, err := NewWriter(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Admit()
	w.Append(&Record{QueryID: 100, Kind: KindRange, SeriesID: 1, Eps: 1}, ts)
	st := w.Stats()
	if st.TransformSets != 0 {
		t.Errorf("reopened writer redefined %d sets", st.TransformSets)
	}
	if st.TruncatedTail != 0 {
		t.Errorf("clean reopen truncated %d bytes", st.TruncatedTail)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, truncated := readAll(t, path)
	if len(recs) != 4 || truncated {
		t.Fatalf("got %d records (truncated=%v), want 4 clean", len(recs), truncated)
	}
	if recs[3].SetHash != recs[0].SetHash || recs[3].SetHash == 0 {
		t.Error("appended record lost its set reference")
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	ts := testSet(32, 4, 0)
	pristine := filepath.Join(dir, "pristine.tscap")
	writeTestCapture(t, pristine, Options{}, 5, ts)
	whole, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the last frame so cuts land strictly inside it.
	recs, _ := readAll(t, pristine)
	if len(recs) != 5 {
		t.Fatalf("setup: %d records", len(recs))
	}

	for _, cut := range []int{1, 3, 10} { // torn CRC, torn payload, deeper tear
		path := filepath.Join(dir, "torn.tscap")
		if err := os.WriteFile(path, whole[:len(whole)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w, err := NewWriter(path, Options{})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := w.Stats().TruncatedTail; got <= 0 {
			t.Errorf("cut %d: truncated %d bytes, want > 0", cut, got)
		}
		w.Admit()
		w.Append(&Record{QueryID: 999, Kind: KindRange, SeriesID: 0, Eps: 1}, ts)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, truncated := readAll(t, path)
		if truncated {
			t.Errorf("cut %d: repaired file still reads as truncated", cut)
		}
		if len(got) != 5 || got[4].QueryID != 999 {
			t.Fatalf("cut %d: got %d records (last qid %d), want 4 intact + 1 appended",
				cut, len(got), got[len(got)-1].QueryID)
		}
		if !reflect.DeepEqual(got[:4], recs[:4]) {
			t.Errorf("cut %d: surviving prefix corrupted", cut)
		}
	}
}

func TestReaderTornTailVsCorruption(t *testing.T) {
	dir := t.TempDir()
	ts := testSet(32, 4, 0)
	pristine := filepath.Join(dir, "p.tscap")
	writeTestCapture(t, pristine, Options{}, 4, ts)
	whole, err := os.ReadFile(pristine)
	if err != nil {
		t.Fatal(err)
	}

	// An incomplete final frame is a clean, flagged end.
	torn := filepath.Join(dir, "torn.tscap")
	if err := os.WriteFile(torn, whole[:len(whole)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, truncated := readAll(t, torn)
	if len(recs) != 3 || !truncated {
		t.Errorf("torn tail: %d records truncated=%v, want 3 records truncated=true", len(recs), truncated)
	}

	// A complete frame with a flipped byte is corruption.
	corrupt := filepath.Join(dir, "corrupt.tscap")
	mutated := append([]byte(nil), whole...)
	mutated[len(mutated)/2] ^= 0x40
	if err := os.WriteFile(corrupt, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for {
		_, _, err := r.Next()
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatal("mid-file corruption read as clean EOF")
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corruption error %v does not wrap ErrCorrupt", err)
		}
		break
	}
}

func TestWriterRefusesForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("not a capture file, do not clobber"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewWriter(path, Options{}); err == nil {
		t.Fatal("writer accepted a foreign file")
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "not a capture file, do not clobber" {
		t.Error("foreign file was modified")
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("reader accepted a foreign file")
	}
}

func TestRotationKeepsSegmentsSelfContained(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.tscap")
	ts := testSet(32, 4, 0)
	w, err := NewWriter(path, Options{MaxBytes: 2048, MaxFiles: 3})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		w.Admit()
		w.Append(&Record{QueryID: uint64(i), Kind: KindRange, SeriesID: int64(i), Eps: 1}, ts)
	}
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Rotations < 2 {
		t.Fatalf("only %d rotations over %d records at MaxBytes=2048", st.Rotations, n)
	}
	// Every surviving segment must resolve its own set references: the
	// reader sees one file at a time, so rotation must re-emit the set
	// definition at the head of each fresh segment.
	total := 0
	for _, p := range []string{path, path + ".1", path + ".2", path + ".3"} {
		if _, err := os.Stat(p); err != nil {
			continue
		}
		recs, truncated := readAll(t, p)
		if truncated {
			t.Errorf("%s: truncated", p)
		}
		for _, rec := range recs {
			if rec.SetHash == 0 {
				t.Errorf("%s: record %d lost its set", p, rec.QueryID)
			}
		}
		total += len(recs)
	}
	if _, err := os.Stat(path + ".4"); err == nil {
		t.Error("segment beyond MaxFiles retained")
	}
	if total == 0 || total > n {
		t.Errorf("segments hold %d records, want (0, %d]", total, n)
	}
}

func TestAdmitSampling(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.tscap")
	w, err := NewWriter(path, Options{SampleEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	admitted := 0
	for i := 0; i < 9; i++ {
		if w.Admit() {
			admitted++
			w.Append(&Record{QueryID: uint64(i), Kind: KindRange, Eps: 1}, nil)
		}
	}
	st := w.Stats()
	if admitted != 3 || st.Seen != 9 || st.SampledOut != 6 || st.Written != 3 {
		t.Errorf("admitted=%d seen=%d sampled_out=%d written=%d, want 3/9/6/3",
			admitted, st.Seen, st.SampledOut, st.Written)
	}
	if st.Seen != st.Written+st.SampledOut+st.Dropped {
		t.Errorf("accounting invariant broken: %+v", st)
	}
}

func TestAppendAfterCloseDrops(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.tscap")
	w, err := NewWriter(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Admit()
	w.Append(&Record{QueryID: 1, Kind: KindRange, Eps: 1}, nil)
	if st := w.Stats(); st.Dropped != 1 {
		t.Errorf("dropped=%d, want 1", st.Dropped)
	}
}

func TestConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.tscap")
	w, err := NewWriter(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := testSet(32, 4, 0)
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if !w.Admit() {
					continue
				}
				w.Append(&Record{
					QueryID: uint64(g*perWorker + i), Kind: KindRange,
					SeriesID: int64(i), Eps: 0.5,
					Digest: Digest{Count: 1, Sum: mix64(uint64(g*perWorker + i))},
				}, ts)
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Seen != workers*perWorker || st.Written != workers*perWorker || st.Dropped != 0 {
		t.Fatalf("seen=%d written=%d dropped=%d, want %d/%d/0",
			st.Seen, st.Written, st.Dropped, workers*perWorker, workers*perWorker)
	}
	recs, truncated := readAll(t, path)
	if len(recs) != workers*perWorker || truncated {
		t.Fatalf("read %d records truncated=%v, want %d clean", len(recs), truncated, workers*perWorker)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, rec := range recs {
		if seen[rec.QueryID] {
			t.Fatalf("query %d journaled twice", rec.QueryID)
		}
		seen[rec.QueryID] = true
	}
}

// FuzzReader feeds arbitrary file contents to the reader: it must never
// panic, and must terminate with EOF or a corruption error.
func FuzzReader(f *testing.F) {
	ts := testSet(16, 2, 0)
	dir := f.TempDir()
	valid := filepath.Join(dir, "seed.tscap")
	w, err := NewWriter(valid, Options{})
	if err != nil {
		f.Fatal(err)
	}
	w.Admit()
	w.Append(&Record{QueryID: 1, Kind: KindRange, SeriesID: 2, Eps: 1.5,
		Digest: Digest{Count: 2, Sum: 99}}, ts)
	w.Admit()
	w.Append(&Record{QueryID: 2, Kind: KindSubseq, SeriesID: -1,
		Query: []float64{1, 2, 3}, Window: 3, Eps: 0.5}, nil)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	whole, err := os.ReadFile(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(whole)
	f.Add(whole[:len(whole)-3])
	mutated := append([]byte(nil), whole...)
	mutated[len(mutated)/2] ^= 1
	f.Add(mutated)
	f.Add([]byte("TSQCAP01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		path := filepath.Join(t.TempDir(), "fuzz.tscap")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenFile(path)
		if err != nil {
			return // bad magic: rejected up front
		}
		defer r.Close()
		for {
			_, _, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("non-corruption mid-stream error: %v", err)
				}
				return
			}
		}
	})
}

// FuzzDecodeQueryPayload checks the payload decoder never panics and
// that anything it accepts re-encodes to an equivalent record.
func FuzzDecodeQueryPayload(f *testing.F) {
	f.Add(appendQueryPayload(nil, fullRecord()))
	f.Add(appendQueryPayload(nil, &Record{QueryID: 1, Kind: KindNN, SeriesID: -1, K: 3}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := decodeQueryPayload(data)
		if err != nil {
			return
		}
		again, err := decodeQueryPayload(appendQueryPayload(nil, rec))
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Errorf("decode/encode/decode not idempotent:\n %+v\n %+v", rec, again)
		}
	})
}
