package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"tsq/internal/transform"
)

// ErrCorrupt wraps every mid-stream integrity failure a Reader
// reports: a checksum-failing complete frame, an impossible length
// field followed by more data, or a query referencing an undefined
// transformation set. A torn tail — an incomplete final frame — is
// NOT corruption: the reader stops cleanly and flags it (Truncated).
var ErrCorrupt = errors.New("capture: corrupt frame")

// Reader iterates the query records of one capture segment, resolving
// each record's transformation-set reference against the definitions
// read so far.
type Reader struct {
	f         *os.File
	r         *bufio.Reader
	sets      map[uint64][]transform.Transform
	setOrder  []uint64
	truncated bool
	done      bool
	records   int64
	header    [frameHeaderSize]byte
	payload   []byte
}

// OpenFile opens a capture file for reading and validates its magic.
func OpenFile(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("capture: %s: missing file header: %w", path, err)
	}
	if magic != fileMagic {
		_ = f.Close()
		return nil, fmt.Errorf("capture: %s is not a capture file (magic %q)", path, magic[:])
	}
	return &Reader{
		f:    f,
		r:    bufio.NewReaderSize(f, 256<<10),
		sets: make(map[uint64][]transform.Transform),
	}, nil
}

// Next returns the next query record and its resolved transformation
// set (nil for subsequence records). io.EOF signals a clean end —
// check Truncated to learn whether the file ended in a torn tail.
// Any other error means corruption; iteration cannot continue.
func (r *Reader) Next() (*Record, []transform.Transform, error) {
	for {
		if r.done {
			return nil, nil, io.EOF
		}
		kind, payload, err := r.nextFrame()
		if err != nil {
			return nil, nil, err
		}
		switch kind {
		case frameTransformSet:
			hash, ts, err := decodeSetPayload(payload)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			if _, seen := r.sets[hash]; !seen {
				r.setOrder = append(r.setOrder, hash)
			}
			r.sets[hash] = ts
		case frameQuery:
			rec, err := decodeQueryPayload(payload)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			var ts []transform.Transform
			if rec.SetHash != 0 {
				var ok bool
				if ts, ok = r.sets[rec.SetHash]; !ok {
					return nil, nil, fmt.Errorf("%w: query %d references undefined transform set %#x",
						ErrCorrupt, rec.QueryID, rec.SetHash)
				}
			}
			r.records++
			return rec, ts, nil
		default:
			return nil, nil, fmt.Errorf("%w: unknown frame kind %d", ErrCorrupt, kind)
		}
	}
}

// nextFrame reads and checksums one frame. An incomplete frame at the
// end of the file marks the reader truncated and returns io.EOF.
func (r *Reader) nextFrame() (uint8, []byte, error) {
	if _, err := io.ReadFull(r.r, r.header[:]); err != nil {
		r.done = true
		if err == io.EOF {
			return 0, nil, io.EOF // clean end
		}
		r.truncated = true // torn header
		return 0, nil, io.EOF
	}
	n := binary.LittleEndian.Uint32(r.header[1:])
	if n > maxFramePayload {
		// A garbage length field: if nothing (or only a partial frame)
		// follows it is a torn tail, but distinguishing that from
		// mid-file corruption would require trusting the garbage. Treat
		// it as corruption; the writer's reopen path truncates it away.
		r.done = true
		return 0, nil, fmt.Errorf("%w: frame claims %d-byte payload", ErrCorrupt, n)
	}
	if cap(r.payload) < int(n)+4 {
		r.payload = make([]byte, int(n)+4)
	}
	body := r.payload[:int(n)+4]
	if _, err := io.ReadFull(r.r, body); err != nil {
		r.done = true
		r.truncated = true // torn payload
		return 0, nil, io.EOF
	}
	crc := crc32.Update(crc32.Checksum(r.header[:], castagnoli), castagnoli, body[:n])
	if crc != binary.LittleEndian.Uint32(body[n:]) {
		r.done = true
		return 0, nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	return r.header[0], body[:n], nil
}

// Truncated reports whether the file ended in a torn tail (only
// meaningful once Next has returned io.EOF).
func (r *Reader) Truncated() bool { return r.truncated }

// Records returns how many query records Next has yielded.
func (r *Reader) Records() int64 { return r.records }

// Sets returns the transformation sets defined so far, in definition
// order — for tools that inspect a capture without replaying it.
func (r *Reader) Sets() map[uint64][]transform.Transform { return r.sets }

// Close closes the underlying file.
func (r *Reader) Close() error { return r.f.Close() }
