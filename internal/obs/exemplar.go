package obs

import (
	"sync/atomic"
	"time"
)

// Histogram exemplars: each latency bucket of an exemplar-enabled
// histogram remembers the last query that landed in it — its query id,
// the observed value, and when. A /metrics reader staring at a p99
// spike can jump straight from the offending bucket to the matching
// flight-recorder entry (/queries) or query-log line by id, instead of
// guessing which query produced the tail.
//
// The slots are three independent atomics; a reader racing a writer
// can see the id of one observation next to the value of another.
// That skew is harmless for diagnostics (both observations landed in
// the same bucket) and keeps the write path at three atomic stores
// with zero allocations.

// exemplarSlot is the last observation retained for one bucket.
// id 0 means the slot has never been written.
type exemplarSlot struct {
	id  atomic.Uint64
	val atomic.Int64
	at  atomic.Int64 // unix nanoseconds
}

// Exemplar is one bucket's retained observation in a Snapshot.
type Exemplar struct {
	// Bucket indexes into the histogram's Counts (len(Bounds) is the
	// unbounded last bucket).
	Bucket int `json:"bucket"`
	// QueryID links to the query-log / flight-recorder entry.
	QueryID uint64 `json:"query_id"`
	// Value is the observed value (nanoseconds for latency histograms).
	Value int64 `json:"value"`
	// UnixNano is when the observation was recorded.
	UnixNano int64 `json:"unix_nano"`
}

// EnableExemplars allocates one exemplar slot per bucket. Safe to call
// concurrently with Observe; calling it again is a no-op. Observations
// carry ids only when made through ObserveExemplar.
func (h *Histogram) EnableExemplars() {
	if h.ex.Load() != nil {
		return
	}
	slots := make([]exemplarSlot, len(h.counts))
	h.ex.CompareAndSwap(nil, &slots)
}

// ObserveExemplar records one value tagged with the query id that
// produced it. With exemplars disabled (or id 0) it is exactly
// Observe plus one atomic load; it never allocates.
func (h *Histogram) ObserveExemplar(v int64, id uint64) {
	i := h.observe(v)
	slots := h.ex.Load()
	if slots == nil || id == 0 {
		return
	}
	s := &(*slots)[i]
	s.id.Store(id)
	s.val.Store(v)
	s.at.Store(time.Now().UnixNano())
}

// ObserveDurationExemplar records a duration tagged with a query id.
func (h *Histogram) ObserveDurationExemplar(d time.Duration, id uint64) {
	h.ObserveExemplar(d.Nanoseconds(), id)
}

// exemplars snapshots the written slots, ordered by bucket.
func (h *Histogram) exemplars() []Exemplar {
	slots := h.ex.Load()
	if slots == nil {
		return nil
	}
	var out []Exemplar
	for i := range *slots {
		s := &(*slots)[i]
		id := s.id.Load()
		if id == 0 {
			continue
		}
		out = append(out, Exemplar{Bucket: i, QueryID: id, Value: s.val.Load(), UnixNano: s.at.Load()})
	}
	return out
}
