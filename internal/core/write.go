package core

import (
	"errors"
	"fmt"

	"tsq/internal/geom"
	"tsq/internal/heapfile"
	"tsq/internal/series"
	"tsq/internal/storage"
	"tsq/internal/wal"
)

// DefaultCheckpointThreshold is the WAL size at which a successful
// write triggers an inline checkpoint (fold into the main file, then
// truncate the log). 4 MiB keeps recovery replay short without fsyncing
// the whole file on every operation.
const DefaultCheckpointThreshold = 4 << 20

// ErrReadOnly is returned by Insert/Delete on an index opened for
// scrubbing (the WAL was replayed into a memory overlay, not the file,
// so a write would fork history).
var ErrReadOnly = errors.New("core: index is read-only")

// AttachWAL arms the crash-consistent write path: every Insert/Delete
// is applied against the staging overlay, its page after-images are
// appended to w and fsynced (the acknowledgement point), and only then
// is the overlay flushed to the file. stage must be the StagedBackend
// inside the index's own backend stack — the one its manager writes
// through.
func (ix *Index) AttachWAL(w *wal.Log, stage *storage.StagedBackend) {
	ix.wal = w
	ix.stage = stage
	ix.walThreshold = DefaultCheckpointThreshold
}

// SetCheckpointThreshold overrides the WAL size that triggers an inline
// checkpoint; zero or negative disables automatic checkpointing.
func (ix *Index) SetCheckpointThreshold(bytes int64) { ix.walThreshold = bytes }

// SetReadOnly marks the index read-only: Insert and Delete return
// ErrReadOnly and Close folds nothing back.
func (ix *Index) SetReadOnly() { ix.readOnly = true }

// WAL returns the attached write-ahead log (nil without one).
func (ix *Index) WAL() *wal.Log { return ix.wal }

// FailErr returns the error that fail-stopped the index, or nil.
func (ix *Index) FailErr() error { return ix.failErr }

// failStop poisons the index: a mutation left memory or disk in a state
// the code cannot prove consistent, so all further writes are refused.
// Durable state stays recoverable — the WAL record of the failed
// operation (if it was acknowledged) replays on the next open.
func (ix *Index) failStop(err error) {
	if ix.failErr == nil {
		ix.failErr = err
	}
}

// checkWritable gates every mutation.
func (ix *Index) checkWritable() error {
	if ix.readOnly {
		return ErrReadOnly
	}
	if ix.failErr != nil {
		return fmt.Errorf("core: index fail-stopped: %w", ix.failErr)
	}
	return nil
}

// pageImages converts the staged after-images to WAL form (aliasing the
// overlay buffers; the WAL serialises them before the overlay is
// released).
func pageImages(staged []storage.StagedPage) []wal.PageImage {
	out := make([]wal.PageImage, len(staged))
	for i, p := range staged {
		out[i] = wal.PageImage{ID: p.ID, Data: p.Data}
	}
	return out
}

// abortStaged rolls back an open staged transaction: the overlay is
// discarded, stale buffer-pool copies of staged pages are evicted,
// every page grown during the transaction goes back to the allocator,
// and the heap bookkeeping and tree header are restored from their
// pre-transaction state. An abort that cannot restore the tree header
// fail-stops the index.
func (ix *Index) abortStaged(mem heapfile.MemState) {
	staged, grown := ix.stage.Abort()
	for _, id := range staged {
		ix.mgr.Evict(id)
	}
	for _, id := range grown {
		ix.mgr.Free(id)
	}
	if ix.heap != nil {
		ix.heap.RestoreMemState(mem)
	}
	if err := ix.tree.Reload(); err != nil {
		ix.failStop(fmt.Errorf("reloading tree after aborted write: %w", err))
	}
}

// insertStaged is the WAL-protected insert: stage, log, flush.
func (ix *Index) insertStaged(r *Record, name string, s series.Series) error {
	var mem heapfile.MemState
	if ix.heap != nil {
		mem = ix.heap.MemState()
	}
	ix.stage.Begin()
	if err := ix.insertDirect(r); err != nil {
		ix.abortStaged(mem)
		return err
	}
	rec := &wal.Record{Op: wal.OpInsert, ID: r.ID, Name: name, Series: s, Pages: pageImages(ix.stage.Staged())}
	if err := ix.wal.Append(rec); err != nil {
		ix.abortStaged(mem)
		return fmt.Errorf("core: logging insert of record %d: %w", r.ID, err)
	}
	// The record is durable: this is the acknowledgement point. A flush
	// failure past it leaves the file torn but the operation logged, so
	// the index fail-stops and recovery re-applies the images on the
	// next open.
	if err := ix.stage.Commit(); err != nil {
		ix.failStop(fmt.Errorf("flushing insert of record %d: %w", r.ID, err))
		return fmt.Errorf("core: flushing insert of record %d (operation is logged and will replay on reopen): %w", r.ID, err)
	}
	ix.maybeCheckpoint()
	return nil
}

// deleteStaged is the WAL-protected delete: stage, log, flush.
func (ix *Index) deleteStaged(r *Record) error {
	var mem heapfile.MemState
	if ix.heap != nil {
		mem = ix.heap.MemState()
	}
	ix.stage.Begin()
	if err := ix.tree.Delete(geom.PointRect(r.Feature(ix.opts.K)), r.ID); err != nil {
		ix.abortStaged(mem)
		return err
	}
	if ix.heap != nil {
		if err := ix.heap.Delete(r.ID); err != nil {
			ix.abortStaged(mem)
			return err
		}
	}
	rec := &wal.Record{Op: wal.OpDelete, ID: r.ID, Pages: pageImages(ix.stage.Staged())}
	if err := ix.wal.Append(rec); err != nil {
		ix.abortStaged(mem)
		return fmt.Errorf("core: logging delete of record %d: %w", r.ID, err)
	}
	if err := ix.stage.Commit(); err != nil {
		ix.failStop(fmt.Errorf("flushing delete of record %d: %w", r.ID, err))
		return fmt.Errorf("core: flushing delete of record %d (operation is logged and will replay on reopen): %w", r.ID, err)
	}
	ix.maybeCheckpoint()
	return nil
}

// maybeCheckpoint folds the WAL into the main file when it has grown
// past the threshold. Best effort: a failed checkpoint leaves the WAL
// in place (recovery still works, the log just stays long) and poisons
// nothing unless the main-file sync itself failed, in which case the
// next write path will surface it.
func (ix *Index) maybeCheckpoint() {
	if ix.walThreshold <= 0 || ix.wal.Size() < ix.walThreshold {
		return
	}
	if err := ix.Checkpoint(); err != nil {
		ix.failStop(fmt.Errorf("checkpointing: %w", err))
	}
}

// Checkpoint makes the main file durable and truncates the WAL: every
// logged operation is already applied to the file's pages (log-then-
// apply), so after one fsync of the file the log carries no information
// the file lacks. No-op without a WAL.
func (ix *Index) Checkpoint() error {
	if ix.wal == nil {
		return nil
	}
	if err := ix.checkWritable(); err != nil {
		return err
	}
	if err := ix.mgr.Sync(); err != nil {
		return fmt.Errorf("core: syncing before checkpoint: %w", err)
	}
	return ix.wal.Checkpoint()
}

// Close releases the index's storage, folding the WAL first when the
// index is healthy and writable (so a clean close leaves an empty log
// and the next open replays nothing). A fail-stopped index skips the
// checkpoint: the WAL is the authoritative copy of acknowledged writes
// the file may have torn.
func (ix *Index) Close() error {
	var firstErr error
	if ix.wal != nil && !ix.readOnly && ix.failErr == nil {
		if err := ix.Checkpoint(); err != nil {
			firstErr = err
		}
	}
	if ix.wal != nil {
		if err := ix.wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := ix.mgr.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
