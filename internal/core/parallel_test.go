package core

import (
	"reflect"
	"testing"

	"tsq/internal/series"
	"tsq/internal/transform"
)

// TestVerifyParallelEmptyCandidates is the regression test for the
// division-by-zero panic: verifyParallel used to compute the chunk size
// after clamping workers to len(candidates), so an empty candidate slice
// (or a non-positive worker count) divided by zero. Both now fall back to
// the serial path.
func TestVerifyParallelEmptyCandidates(t *testing.T) {
	ds, ix := buildFixture(t, 7, 50, 32, DefaultIndexOptions())
	ts := transform.MovingAverageSet(32, 3, 6)
	g := identityIndexes(len(ts))
	q := ds.Records[0]
	for _, tc := range []struct {
		name       string
		candidates []candidate
		workers    int
	}{
		{"empty-candidates", nil, 4},
		{"zero-workers", []candidate{{rec: 0}, {rec: 1}, {rec: 2}}, 0},
		{"negative-workers", []candidate{{rec: 0}, {rec: 1}}, -3},
		{"one-candidate", []candidate{{rec: 0}}, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			matches, st, fp, err := ix.verifyParallel(nil, tc.candidates, ts, g, q, 1.0, nil, RangeOptions{Workers: tc.workers})
			if err != nil {
				t.Fatal(err)
			}
			want, wantSt, wantFP, err := ix.verifySerial(nil, tc.candidates, ts, g, q, 1.0, nil, RangeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if fp != wantFP {
				t.Errorf("false positives = %d, want %d", fp, wantFP)
			}
			if !sameKeys(matchKeySet(matches), matchKeySet(want)) {
				t.Errorf("parallel answer diverged from serial")
			}
			if noTime(st) != noTime(wantSt) {
				t.Errorf("stats = %+v, want %+v", st, wantSt)
			}
		})
	}
}

// TestMTRangeParallelGroupsEqualsSerial checks that probing the
// transformation rectangles concurrently returns byte-identical matches
// and statistics to the serial group loop, across worker counts and
// partitions.
func TestMTRangeParallelGroupsEqualsSerial(t *testing.T) {
	ds, ix := buildFixture(t, 3, 300, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 28) // 24 transforms
	eps := series.DistanceForCorrelation(64, 0.92)
	for _, per := range []int{1, 4, 8} {
		groups := EqualPartition(len(ts), per)
		for trial := 0; trial < 5; trial++ {
			q := ds.Records[trial*31%len(ds.Records)]
			want, wantSt, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Groups: groups})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 16} {
				got, gotSt, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Groups: groups, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				SortMatches(got)
				SortMatches(want)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("per=%d workers=%d: parallel matches diverge from serial", per, workers)
				}
				if noTime(gotSt) != noTime(wantSt) {
					t.Fatalf("per=%d workers=%d: stats = %+v, want %+v", per, workers, gotSt, wantSt)
				}
			}
		}
	}
}

// TestMTRangeParallelBadGroupIndex checks that an out-of-range group
// index still surfaces as an error (not a panic) from the parallel path.
func TestMTRangeParallelBadGroupIndex(t *testing.T) {
	ds, ix := buildFixture(t, 5, 40, 32, DefaultIndexOptions())
	ts := transform.MovingAverageSet(32, 3, 8)
	groups := [][]int{{0, 1}, {len(ts) + 3}}
	_, _, err := ix.MTIndexRange(ds.Records[0], ts, 1.0, RangeOptions{Groups: groups, Workers: 4})
	if err == nil {
		t.Fatal("out-of-range group index did not error")
	}
}
