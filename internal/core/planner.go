package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"tsq/internal/obs"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// This file implements a small cost-based planner on top of the Eq. 18/20
// model: given a query and a transformation set, it estimates the cost of
// the sequential scan, the ST-index plan, and MT-index plans with a few
// candidate packings (one rectangle, fixed-size rectangles, cluster-aware
// rectangles), using filter-only index probes for the disk-access terms,
// and picks the cheapest.

// PlanKind identifies a plan family.
type PlanKind int

const (
	// PlanSeqScan scans the relation.
	PlanSeqScan PlanKind = iota
	// PlanSTIndex probes the index once per transformation.
	PlanSTIndex
	// PlanMTIndex probes the index once per transformation rectangle.
	PlanMTIndex
)

// String names the plan family.
func (k PlanKind) String() string {
	switch k {
	case PlanSeqScan:
		return "seqscan"
	case PlanSTIndex:
		return "st-index"
	case PlanMTIndex:
		return "mt-index"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// Plan is a planner decision.
type Plan struct {
	Kind PlanKind
	// Groups is the transformation packing for PlanMTIndex (nil for a
	// single rectangle).
	Groups [][]int
	// Cost is the estimated Eq. 18/20 cost of the chosen plan.
	Cost float64
	// Considered lists every estimated alternative, cheapest first.
	Considered []PlanCost
}

// PlanCost is one estimated alternative.
type PlanCost struct {
	Description string
	Cost        float64
}

// String renders the plan and its alternatives.
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chosen: %s (cost %.0f)", p.Kind, p.Cost)
	if p.Kind == PlanMTIndex && p.Groups != nil {
		fmt.Fprintf(&b, " with %d rectangles", len(p.Groups))
	}
	for _, alt := range p.Considered {
		fmt.Fprintf(&b, "\n  %-24s %12.0f", alt.Description, alt.Cost)
	}
	return b.String()
}

// PlanRange estimates the alternatives for a range query and returns the
// cheapest. Probing costs a handful of filter-only index traversals; a
// plan is worth it when the same transformation set is queried repeatedly
// or the relation is large.
func (ix *Index) PlanRange(q *Record, ts []transform.Transform, eps float64, mode QRectMode, params CostParams) (*Plan, error) {
	return ix.PlanRangeCtx(nil, q, ts, eps, mode, params)
}

// PlanRangeCtx is PlanRange under the trace carried in ctx: the probing
// traversals are recorded as one KindPlan span (node visits and page I/O
// attributed), so an EXPLAIN ANALYZE of an Auto query accounts for the
// planner's own disk accesses too.
func (ix *Index) PlanRangeCtx(ctx context.Context, q *Record, ts []transform.Transform, eps float64, mode QRectMode, params CostParams) (_ *Plan, retErr error) {
	nT := len(ts)
	nS := len(ix.ds.Records)
	if nT == 0 {
		return &Plan{Kind: PlanSeqScan}, nil
	}

	parent := obs.SpanFromContext(ctx)
	var psp *obs.Span
	var pst QueryStats
	if parent != nil {
		psp = parent.Child(obs.KindPlan, "plan")
		qio := &storage.QueryIO{}
		ctx = storage.WithQueryIO(ctx, qio)
		defer func() {
			psp.Set(obs.ANodes, int64(pst.DAAll))
			psp.Set(obs.ALeaves, int64(pst.DALeaf))
			psp.Set(obs.APagesRead, qio.Reads.Load())
			psp.Set(obs.ABufferHits, qio.Hits.Load())
			psp.EndErr(retErr)
		}()
	}

	var alts []PlanCost

	// Sequential scan: one retrieval per record plus |S|*|T| comparisons
	// (log |T| when the set is orderable).
	cmpPerRecord := float64(nT)
	if _, ok := transform.OrderableAsScales(ts); ok {
		cmpPerRecord = log2ceil(nT)
	}
	seqCost := params.CDA*float64(nS) + params.Ccmp*float64(nS)*cmpPerRecord
	alts = append(alts, PlanCost{Description: "seqscan", Cost: seqCost})

	// probe measures one rectangle's filter-only traversal.
	probe := func(sub []transform.Transform) (daAll int, candidates int, err error) {
		mult, add := ix.fullMBRs(sub)
		qrect := ix.queryRect(q, sub, eps, mode)
		var st QueryStats
		cands, err := ix.filterCtx(ctx, mult, add, qrect, nil, &st, nil)
		if err != nil {
			return 0, 0, err
		}
		pst.Add(st)
		return st.DAAll, len(cands), nil
	}

	// ST-index: sample three singleton probes and extrapolate.
	samples := []int{0, nT / 2, nT - 1}
	var stDA, stCand float64
	seen := map[int]bool{}
	count := 0
	for _, i := range samples {
		if seen[i] {
			continue
		}
		seen[i] = true
		da, cand, err := probe(ts[i : i+1])
		if err != nil {
			return nil, err
		}
		stDA += float64(da)
		stCand += float64(cand)
		count++
	}
	stDA /= float64(count)
	stCand /= float64(count)
	stCost := float64(nT) * (params.CDA*(stDA+stCand) + params.Ccmp*stCand)
	alts = append(alts, PlanCost{Description: fmt.Sprintf("st-index (%d probes)", nT), Cost: stCost})

	// MT-index packings: one rectangle, 8 per rectangle, cluster-aware.
	type packing struct {
		desc   string
		groups [][]int
	}
	packings := []packing{{desc: "mt-index one rectangle", groups: [][]int{identityIndexes(nT)}}}
	if nT > 8 {
		packings = append(packings, packing{desc: "mt-index 8 per rectangle", groups: EqualPartition(nT, 8)})
	}
	if clustered := ix.ClusterThenEqualPartition(ts, 8, 0); len(clustered) > 1 && nT > 8 {
		packings = append(packings, packing{desc: fmt.Sprintf("mt-index clustered (%d rects)", len(clustered)), groups: clustered})
	}
	bestMT := -1
	bestMTCost := 0.0
	for pi, p := range packings {
		total := 0.0
		for _, g := range p.groups {
			sub := make([]transform.Transform, len(g))
			for i, idx := range g {
				sub[i] = ts[idx]
			}
			da, cand, err := probe(sub)
			if err != nil {
				return nil, err
			}
			total += params.CDA*float64(da+cand) + params.Ccmp*float64(cand)*float64(len(g))
		}
		alts = append(alts, PlanCost{Description: p.desc, Cost: total})
		if bestMT == -1 || total < bestMTCost {
			bestMT, bestMTCost = pi, total
		}
	}

	sort.Slice(alts, func(i, j int) bool { return alts[i].Cost < alts[j].Cost })
	plan := &Plan{Considered: alts, Cost: alts[0].Cost}
	switch {
	case alts[0].Description == "seqscan":
		plan.Kind = PlanSeqScan
	case strings.HasPrefix(alts[0].Description, "st-index"):
		plan.Kind = PlanSTIndex
	default:
		plan.Kind = PlanMTIndex
		plan.Groups = packings[bestMT].groups
	}
	return plan, nil
}

func log2ceil(n int) float64 {
	c := 0.0
	for v := 1; v < n; v <<= 1 {
		c++
	}
	if c == 0 {
		c = 1
	}
	return c
}
