package core

import (
	"container/heap"
	"math"
	"sort"

	"tsq/internal/geom"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// This file implements the top-k closest-pairs query under a
// transformation set — the incremental flavour of Query 2 ("the k most
// correlated pairs of stocks under some moving average") — with a
// best-first synchronized traversal in the style of Hjaltason and Samet,
// pruned by a provable lower bound on transformed pair distances.

// pairItem is a priority-queue element: a pair of subtrees (or a resolved
// record pair) ordered by a lower bound of the transformed distance.
type pairItem struct {
	bound    float64
	a, b     storage.PageID
	resolved bool
	ra, rb   int64
}

type pairHeap []pairItem

func (h pairHeap) Len() int            { return len(h) }
func (h pairHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h pairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pairHeap) Push(x interface{}) { *h = append(*h, x.(pairItem)) }
func (h *pairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// SeqScanClosestPairs returns the k pairs with the smallest best
// transformed distance min_t D(t(a), t(b)), by exhaustive scan.
func SeqScanClosestPairs(ds *Dataset, ts []transform.Transform, k int) ([]JoinMatch, QueryStats) {
	var st QueryStats
	var all []JoinMatch
	for i := 0; i < len(ds.Records); i++ {
		for j := i + 1; j < len(ds.Records); j++ {
			a, b := ds.Records[i], ds.Records[j]
			if a == nil || b == nil {
				continue
			}
			st.Candidates++
			best := JoinMatch{IDA: a.ID, IDB: b.ID, Distance: math.Inf(1)}
			for ti, t := range ts {
				st.Comparisons++
				if d := t.DistancePolar(a.Mags, a.Phases, b.Mags, b.Phases); d < best.Distance {
					best.Distance, best.TransformIdx = d, ti
				}
			}
			all = append(all, best)
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Distance < all[j].Distance })
	if k < len(all) {
		all = all[:k]
	}
	return all, st
}

// MTIndexClosestPairs returns the k closest pairs under the
// transformation set through the index: subtree pairs are expanded in
// order of a lower bound built from the transformed magnitude intervals
// (phases carry no valid lower bound and are excluded), so the search is
// exact and stops as soon as k pairs beat every remaining bound.
func (ix *Index) MTIndexClosestPairs(ts []transform.Transform, k int) ([]JoinMatch, QueryStats, error) {
	var st QueryStats
	if k <= 0 || len(ts) == 0 {
		return nil, st, nil
	}
	mult, add := ix.fullMBRs(ts)
	st.IndexSearches++
	symFactor := 1.0
	if ix.opts.UseSymmetry {
		symFactor = math.Sqrt2
	}
	lowerBound := func(ya, yb geom.Rect) float64 {
		var ss float64
		for j := 1; j <= ix.opts.K; j++ {
			gap := intervalGap(ya.Lo[2*j], ya.Hi[2*j], yb.Lo[2*j], yb.Hi[2*j])
			ss += gap * gap
		}
		return symFactor * math.Sqrt(ss)
	}

	var results []JoinMatch
	worst := math.Inf(1)
	seen := make(map[[2]int64]bool)
	h := &pairHeap{{bound: 0, a: ix.tree.Root(), b: ix.tree.Root()}}
	loaded := make(map[storage.PageID]*nodeCache)
	load := func(id storage.PageID) (*nodeCache, error) {
		if n, ok := loaded[id]; ok {
			return n, nil
		}
		n, err := ix.tree.Load(id)
		if err != nil {
			return nil, err
		}
		st.DAAll++
		if n.Leaf {
			st.DALeaf++
		}
		nc := &nodeCache{leaf: n.Leaf, rects: make([]geom.Rect, len(n.Entries)), children: make([]storage.PageID, len(n.Entries)), recs: make([]int64, len(n.Entries))}
		for i, e := range n.Entries {
			nc.rects[i] = transform.ApplyMBRs(mult, add, e.Rect)
			nc.children[i] = e.Child
			nc.recs[i] = e.Rec
		}
		loaded[id] = nc
		return nc, nil
	}

	for h.Len() > 0 {
		it := heap.Pop(h).(pairItem)
		if len(results) == k && it.bound > worst {
			break
		}
		if it.resolved {
			key := [2]int64{it.ra, it.rb}
			if seen[key] {
				continue
			}
			seen[key] = true
			a, err := ix.fetch(it.ra)
			if err != nil {
				return nil, st, err
			}
			b, err := ix.fetch(it.rb)
			if err != nil {
				return nil, st, err
			}
			if a == nil || b == nil {
				continue
			}
			st.Candidates++
			best := JoinMatch{IDA: it.ra, IDB: it.rb, Distance: math.Inf(1)}
			for ti, t := range ts {
				st.Comparisons++
				if d := t.DistancePolar(a.Mags, a.Phases, b.Mags, b.Phases); d < best.Distance {
					best.Distance, best.TransformIdx = d, ti
				}
			}
			results = append(results, best)
			sort.Slice(results, func(x, y int) bool { return results[x].Distance < results[y].Distance })
			if len(results) > k {
				results = results[:k]
			}
			if len(results) == k {
				worst = results[k-1].Distance
			}
			continue
		}
		na, err := load(it.a)
		if err != nil {
			return nil, st, err
		}
		nb, err := load(it.b)
		if err != nil {
			return nil, st, err
		}
		expandPair(h, it, na, nb, lowerBound, worst, len(results) == k)
	}
	return results, st, nil
}

// nodeCache holds a node's transformed rectangles for repeated pair use.
type nodeCache struct {
	leaf     bool
	rects    []geom.Rect
	children []storage.PageID
	recs     []int64
}

// expandPair pushes the children pairs of (na, nb). Mixed depths (one
// leaf, one internal) expand only the internal side, bounding against the
// whole leaf node, so no pair is enqueued twice.
func expandPair(h *pairHeap, it pairItem, na, nb *nodeCache, lowerBound func(a, b geom.Rect) float64, worst float64, full bool) {
	push := func(lb float64, item pairItem) {
		if full && lb > worst {
			return
		}
		item.bound = lb
		heap.Push(h, item)
	}
	switch {
	case na.leaf && nb.leaf:
		same := it.a == it.b
		for i := range na.rects {
			jStart := 0
			if same {
				jStart = i + 1
			}
			for j := jStart; j < len(nb.rects); j++ {
				ra, rb := na.recs[i], nb.recs[j]
				if ra == rb {
					continue
				}
				if ra > rb {
					ra, rb = rb, ra
				}
				push(lowerBound(na.rects[i], nb.rects[j]), pairItem{resolved: true, ra: ra, rb: rb})
			}
		}
	case !na.leaf && !nb.leaf:
		same := it.a == it.b
		for i := range na.rects {
			jStart := 0
			if same {
				jStart = i // (i, i): pairs within one subtree
			}
			for j := jStart; j < len(nb.rects); j++ {
				push(lowerBound(na.rects[i], nb.rects[j]),
					pairItem{a: na.children[i], b: nb.children[j]})
			}
		}
	case na.leaf: // nb internal
		aMBR := geom.MBRRects(na.rects)
		for j := range nb.rects {
			push(lowerBound(aMBR, nb.rects[j]), pairItem{a: it.a, b: nb.children[j]})
		}
	default: // na internal, nb leaf
		bMBR := geom.MBRRects(nb.rects)
		for i := range na.rects {
			push(lowerBound(na.rects[i], bMBR), pairItem{a: na.children[i], b: it.b})
		}
	}
}
