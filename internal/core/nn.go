package core

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"

	"tsq/internal/geom"
	"tsq/internal/obs"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// NNMatch is one answer of a transformed nearest-neighbor query: the
// record, the transformation minimizing the distance to the query, and
// that distance.
type NNMatch struct {
	RecordID     int64
	TransformIdx int
	Distance     float64
}

// SeqScanNN returns the k records whose best transformed distance
// min_{t in ts} D(t(r), t(q)) (or D(t(r), q) when oneSided) is smallest,
// by exhaustive scan.
func SeqScanNN(ds *Dataset, q *Record, ts []transform.Transform, k int, oneSided bool) ([]NNMatch, QueryStats) {
	var st QueryStats
	best := make([]NNMatch, 0, len(ds.Records))
	for _, r := range ds.Records {
		if r == nil || r.ID == q.ID {
			continue
		}
		st.Candidates++
		m := NNMatch{RecordID: r.ID, Distance: math.Inf(1)}
		for i, t := range ts {
			st.Comparisons++
			// Abandon against the running minimum: an abandoned
			// evaluation proves d > m.Distance, which cannot update it.
			d, abandoned := distancePredAbandon(t, r, q, m.Distance, oneSided)
			if abandoned {
				st.Abandoned++
				continue
			}
			if d < m.Distance {
				m.Distance, m.TransformIdx = d, i
			}
		}
		best = append(best, m)
	}
	sort.Slice(best, func(i, j int) bool { return best[i].Distance < best[j].Distance })
	if k < len(best) {
		best = best[:k]
	}
	return best, st
}

// SeqScanNNCtx is SeqScanNN under the trace in ctx: a KindScan span
// records the records scanned and comparisons made.
func SeqScanNNCtx(ctx context.Context, ds *Dataset, q *Record, ts []transform.Transform, k int, oneSided bool) ([]NNMatch, QueryStats) {
	parent := obs.SpanFromContext(ctx)
	var sp *obs.Span
	if parent != nil {
		sp = parent.Child(obs.KindScan, fmt.Sprintf("nn seq scan (k=%d, %d records)", k, len(ds.Records)))
	}
	out, st := SeqScanNN(ds, q, ts, k, oneSided)
	if sp != nil {
		sp.Set(obs.ACandidates, int64(st.Candidates))
		sp.Set(obs.AComparisons, int64(st.Comparisons))
		sp.Set(obs.AMatches, int64(len(out)))
		sp.Set(obs.ATransforms, int64(len(ts)))
		sp.End()
	}
	return out, st
}

// nnEntry is a priority-queue element of the transformed NN search.
type nnEntry struct {
	bound float64
	page  storage.PageID
}

type nnHeap []nnEntry

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnEntry)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// MTIndexNN answers the transformed nearest-neighbor query (Sec. 4.1's
// sketch) with a best-first traversal: index rectangles are transformed by
// the MBR of ts on the fly, a provable lower bound on the transformed
// distance prunes subtrees (a MINDIST analogue restricted to the magnitude
// dimensions, which lower-bound the true distance; phase dimensions do not
// and are excluded from the bound), and leaf candidates are resolved
// exactly. Results are exact.
func (ix *Index) MTIndexNN(q *Record, ts []transform.Transform, k int, oneSided bool) ([]NNMatch, QueryStats, error) {
	return ix.MTIndexNNCtx(nil, q, ts, k, oneSided)
}

// MTIndexNNCtx is MTIndexNN under the trace carried in ctx: the
// best-first traversal is recorded as one KindProbe span (node visits,
// MINDIST-pruned subtrees, candidates resolved, page I/O) when ctx holds
// a parent span. A nil ctx takes the exact untraced path.
func (ix *Index) MTIndexNNCtx(ctx context.Context, q *Record, ts []transform.Transform, k int, oneSided bool) ([]NNMatch, QueryStats, error) {
	return ix.mtIndexNNShard(ctx, q, ts, k, oneSided, -1)
}

// mtIndexNNShard is MTIndexNNCtx with a shard tag: when shard >= 0 the
// probe span carries an AShard attribute so scatter-gather traces can be
// rolled up per shard. shard < 0 (the single-shard path) leaves the span
// exactly as before.
func (ix *Index) mtIndexNNShard(ctx context.Context, q *Record, ts []transform.Transform, k int, oneSided bool, shard int) (_ []NNMatch, _ QueryStats, retErr error) {
	var st QueryStats
	if k <= 0 || len(ts) == 0 {
		return nil, st, nil
	}
	parent := obs.SpanFromContext(ctx)
	var sp *obs.Span
	var pruned int64
	var nMatches int
	if parent != nil {
		sp = parent.Child(obs.KindProbe, fmt.Sprintf("nn best-first (k=%d)", k))
		sp.Set(obs.ATransforms, int64(len(ts)))
		if shard >= 0 {
			sp.Set(obs.AShard, int64(shard))
		}
		qio := &storage.QueryIO{}
		ctx = storage.WithQueryIO(ctx, qio)
		defer func() {
			sp.Set(obs.ANodes, int64(st.DAAll))
			sp.Set(obs.ALeaves, int64(st.DALeaf))
			sp.Set(obs.APruned, pruned)
			sp.Set(obs.ACandidates, int64(st.Candidates))
			sp.Set(obs.AComparisons, int64(st.Comparisons))
			sp.Set(obs.AMatches, int64(nMatches))
			sp.Set(obs.APagesRead, qio.Reads.Load())
			sp.Set(obs.ABufferHits, qio.Hits.Load())
			sp.Set(obs.APagesPrefetched, qio.Prefetched.Load())
			sp.Set(obs.AAbandoned, int64(st.Abandoned))
			sp.EndErr(retErr)
		}()
	}
	mult, add := ix.fullMBRs(ts)
	st.IndexSearches++
	// Transformed query magnitude intervals per coefficient.
	qMagLo := make([]float64, ix.opts.K+1)
	qMagHi := make([]float64, ix.opts.K+1)
	for j := 1; j <= ix.opts.K; j++ {
		if oneSided {
			// The query is compared untransformed.
			qMagLo[j], qMagHi[j] = q.Mags[j], q.Mags[j]
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, t := range ts {
			v := t.A[2*j]*q.Mags[j] + t.B[2*j]
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		qMagLo[j], qMagHi[j] = lo, hi
	}
	symFactor := 1.0
	if ix.opts.UseSymmetry {
		symFactor = math.Sqrt2
	}
	// lower bound for a transformed rectangle: sqrt(sum of squared gaps
	// between its magnitude intervals and the query magnitude intervals),
	// scaled by the symmetry factor.
	lowerBound := func(y geom.Rect) float64 {
		var ss float64
		for j := 1; j <= ix.opts.K; j++ {
			gap := intervalGap(y.Lo[2*j], y.Hi[2*j], qMagLo[j], qMagHi[j])
			ss += gap * gap
		}
		return symFactor * math.Sqrt(ss)
	}

	var results []NNMatch
	worst := math.Inf(1)
	// Per-leaf candidate buffer for the batched fetch, reused across
	// leaves.
	type nnCand struct {
		lb  float64
		rec int64
	}
	var leafCands []nnCand
	// Scratch rectangle reused for every entry the traversal inspects
	// (the bound only reads the transformed rectangle before the next
	// entry overwrites it).
	scratchLo := make(geom.Point, ix.dim)
	scratchHi := make(geom.Point, ix.dim)
	h := &nnHeap{{bound: 0, page: ix.tree.Root()}}
	for h.Len() > 0 {
		e := heap.Pop(h).(nnEntry)
		if len(results) == k && e.bound > worst {
			break
		}
		n, err := ix.tree.LoadCtx(ctx, e.page)
		if err != nil {
			return nil, st, err
		}
		st.DAAll++
		if !n.Leaf {
			for _, ent := range n.Entries {
				y := transform.ApplyMBRsInto(scratchLo, scratchHi, mult, add, ent.Rect)
				lb := lowerBound(y)
				if len(results) == k && lb > worst {
					pruned++
					continue
				}
				heap.Push(h, nnEntry{bound: lb, page: ent.Child})
			}
			continue
		}
		st.DALeaf++
		// Collect the leaf's surviving entries, fetch their records in
		// one page-ordered batch, then verify in entry order. The bound
		// is re-checked per entry as it tightens, so the candidates
		// actually verified — and every statistic derived from them —
		// are exactly those of record-at-a-time traversal; batching can
		// only prefetch a page for an entry the tightening bound later
		// rejects.
		leafCands = leafCands[:0]
		for _, ent := range n.Entries {
			y := transform.ApplyMBRsInto(scratchLo, scratchHi, mult, add, ent.Rect)
			lb := lowerBound(y)
			if len(results) == k && lb > worst {
				continue
			}
			leafCands = append(leafCands, nnCand{lb: lb, rec: ent.Rec})
		}
		var recs []*Record
		if ix.heap != nil && len(leafCands) > 1 {
			ids := make([]int64, len(leafCands))
			for i, c := range leafCands {
				ids[i] = c.rec
			}
			if recs, err = ix.fetchBatchCtx(ctx, ids); err != nil {
				return nil, st, err
			}
		}
		for ci, c := range leafCands {
			if len(results) == k && c.lb > worst {
				continue // bound tightened since the batch was formed
			}
			var r *Record
			if recs != nil {
				r = recs[ci]
			} else if r, err = ix.fetchCtx(ctx, c.rec); err != nil {
				return nil, st, err
			}
			if r == nil || r.ID == q.ID {
				continue
			}
			st.Candidates++
			m := NNMatch{RecordID: r.ID, Distance: math.Inf(1)}
			for i, t := range ts {
				st.Comparisons++
				// Abandon against the running minimum: an abandoned
				// evaluation proves d > m.Distance and cannot update it.
				d, abandoned := distancePredAbandon(t, r, q, m.Distance, oneSided)
				if abandoned {
					st.Abandoned++
					continue
				}
				if d < m.Distance {
					m.Distance, m.TransformIdx = d, i
				}
			}
			results = append(results, m)
			sort.Slice(results, func(a, b int) bool { return results[a].Distance < results[b].Distance })
			if len(results) > k {
				results = results[:k]
			}
			if len(results) == k {
				worst = results[k-1].Distance
			}
		}
	}
	nMatches = len(results)
	return results, st, nil
}
