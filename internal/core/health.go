package core

import (
	"context"
	"fmt"
	"io"
	"strings"

	"tsq/internal/geom"
	"tsq/internal/heapfile"
	"tsq/internal/obs"
	"tsq/internal/rtree"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// GroupHealth describes one MT-index transformation group: its static
// geometry (how many transformations it covers and how large the lifted
// mult-/add-MBRs are — bigger rectangles inflate every query rectangle
// built from the group, Sec. 4.1) and the cumulative filter quality
// observed for it, folded in from traced queries (FoldTrace). A group
// whose FalsePositiveRate drifts up is over-wide: its transformations
// should be repartitioned.
type GroupHealth struct {
	Group int `json:"group"`
	// Size is the number of transformations the group's MBR covers.
	Size int `json:"size"`
	// MultVolume and AddVolume are the volumes of the lifted mult- and
	// add-MBRs over the transform-sensitive (DFT) dimensions; the mean
	// and std dimensions are transformation-invariant and excluded, as
	// are zero-extent dimensions (see dftVolume). 0 means the part is a
	// single point — e.g. AddVolume for a purely multiplicative family.
	MultVolume float64 `json:"mult_volume"`
	AddVolume  float64 `json:"add_volume"`
	// Cumulative per-group counters from traced queries.
	Probes         int64 `json:"probes"`
	Candidates     int64 `json:"candidates"`
	Matches        int64 `json:"matches"`
	FalsePositives int64 `json:"false_positives"`
	// FalsePositiveRate is FalsePositives / Candidates: the fraction of
	// records the group's rectangle admitted that verification rejected.
	FalsePositiveRate float64 `json:"false_positive_rate"`
}

// HealthReport aggregates everything the index health analyzer can see:
// the R*-tree's per-level structure, the heap file's space accounting,
// the storage manager's lifetime I/O counters, and per-transformation-
// group filter quality.
type HealthReport struct {
	Series       int               `json:"series"`
	SeriesLength int               `json:"series_length"`
	K            int               `json:"k"`
	Dim          int               `json:"dim"`
	PageSize     int               `json:"page_size"`
	Tree         *rtree.TreeHealth `json:"tree,omitempty"` // nil on a multi-shard rollup (see Shards)
	Heap         *heapfile.Health  `json:"heap,omitempty"` // nil when not paged
	Storage      storage.Stats     `json:"storage"`
	Groups       []GroupHealth     `json:"groups,omitempty"`

	// ShardCount and Shards carry the per-shard breakdown of a sharded
	// DB: the top-level report then holds the combined rollup (summed
	// storage counters, shard-independent group geometry) and one full
	// report per shard. Both are zero/empty for a single-shard report,
	// whose JSON is unchanged.
	ShardCount int             `json:"shard_count,omitempty"`
	Shards     []*HealthReport `json:"shards,omitempty"`
}

// Health walks the index read-only and reports its structural health.
// ts/groups describe the MT-index transformation partition to profile
// (both may be nil to skip the group section; groups nil with ts
// non-nil profiles one group covering all of ts). The walk costs one
// page read per tree node and, when paged, one per heap record.
func (ix *Index) Health(ctx context.Context, ts []transform.Transform, groups [][]int) (*HealthReport, error) {
	hr := &HealthReport{
		Series:       len(ix.ds.Records),
		SeriesLength: ix.ds.N,
		K:            ix.opts.K,
		Dim:          ix.dim,
		PageSize:     ix.mgr.PageSize(),
	}
	th, err := ix.tree.Health()
	if err != nil {
		return nil, err
	}
	hr.Tree = th
	if ix.heap != nil {
		hh, err := ix.heap.ComputeHealth(ctx)
		if err != nil {
			return nil, err
		}
		hr.Heap = hh
	}
	hr.Storage = ix.mgr.Stats()

	gh, err := ix.groupHealth(ts, groups)
	if err != nil {
		return nil, err
	}
	hr.Groups = gh
	return hr, nil
}

// groupHealth computes the static geometry section of the report: one
// GroupHealth per transformation group with the lifted-MBR volumes. The
// result depends only on the transformation set and the index options,
// so any shard of a sharded DB computes the same values.
func (ix *Index) groupHealth(ts []transform.Transform, groups [][]int) ([]GroupHealth, error) {
	if len(ts) > 0 && groups == nil {
		groups = [][]int{identityIndexes(len(ts))}
	}
	var out []GroupHealth
	for gi, g := range groups {
		gh := GroupHealth{Group: gi, Size: len(g)}
		sub := make([]transform.Transform, 0, len(g))
		for _, idx := range g {
			if idx < 0 || idx >= len(ts) {
				return nil, fmt.Errorf("core: group %d index %d out of range", gi, idx)
			}
			sub = append(sub, ts[idx])
		}
		mult, add := ix.fullMBRs(sub)
		gh.MultVolume = dftVolume(mult)
		gh.AddVolume = dftVolume(add)
		out = append(out, gh)
	}
	return out, nil
}

// dftVolume is the volume of a lifted rectangle over the transform-
// sensitive dimensions only (index 2 onward; mean/std are identity).
// Dimensions with zero extent are excluded — transformation families
// are routinely degenerate somewhere (a purely multiplicative family
// has a point add-part, moving averages pin the mult-part's phase
// dims), and a strict product would collapse every volume to zero. The
// result is the volume of the rectangle's affine hull face; 0 when the
// rectangle is a single point.
func dftVolume(r geom.Rect) float64 {
	v, spread := 1.0, 0
	for d := 2; d < r.Dim(); d++ {
		if e := r.Hi[d] - r.Lo[d]; e > 0 {
			v *= e
			spread++
		}
	}
	if spread == 0 {
		return 0
	}
	return v
}

// FoldTrace accumulates one traced query's per-group probe counters
// into the report: every completed KindProbe span carrying AGroupIndex
// (set by the MT-index range pipeline) adds its candidates, matches,
// and false positives to its group. Probes without a group ordinal
// (e.g. the NN best-first span) are skipped. Call once per trace; rates
// are recomputed after each fold.
func (hr *HealthReport) FoldTrace(tr *obs.Trace) {
	for _, sp := range tr.Spans() {
		if sp.Kind() != obs.KindProbe || !sp.Has(obs.AGroupIndex) {
			continue
		}
		gi := int(sp.Get(obs.AGroupIndex))
		if gi < 0 || gi >= len(hr.Groups) {
			continue
		}
		g := &hr.Groups[gi]
		g.Probes++
		g.Candidates += sp.Get(obs.ACandidates)
		g.Matches += sp.Get(obs.AMatches)
		g.FalsePositives += sp.Get(obs.AFalsePositives)
		if g.Candidates > 0 {
			g.FalsePositiveRate = float64(g.FalsePositives) / float64(g.Candidates)
		}
	}
}

// WriteText renders the report as the `tsquery -inspect` page. A
// sharded report prints the combined rollup (storage, groups) followed
// by one structural section per shard.
func (hr *HealthReport) WriteText(w io.Writer) {
	fmt.Fprintf(w, "index health: %d series of length %d, k=%d (%d-dim), page %d B\n",
		hr.Series, hr.SeriesLength, hr.K, hr.Dim, hr.PageSize)
	if hr.ShardCount > 1 {
		fmt.Fprintf(w, "sharded: %d shards, hash-partitioned by series id, queried scatter-gather\n", hr.ShardCount)
		hr.writeStorage(w)
		hr.writeGroups(w)
		for i, sh := range hr.Shards {
			fmt.Fprintf(w, "\n--- shard %d: %d series ---\n", i, sh.Series)
			sh.writeStructure(w)
			sh.writeStorage(w)
		}
		return
	}
	hr.writeStructure(w)
	hr.writeStorage(w)
	hr.writeGroups(w)
}

// writeStructure renders the per-tree section: level table, leaf
// occupancy and heap accounting.
func (hr *HealthReport) writeStructure(w io.Writer) {
	t := hr.Tree
	if t == nil {
		return
	}
	fmt.Fprintf(w, "\nR*-tree: height=%d entries=%d nodes=%d fill=[%d..%d]\n",
		t.Height, t.Entries, t.Nodes, t.MinFill, t.MaxFill)
	fmt.Fprintf(w, "%-6s %7s %9s %9s %11s %11s %13s %13s\n",
		"level", "nodes", "entries", "avg_fill", "avg_margin", "overlap", "covered", "dead")
	for _, l := range t.Levels {
		name := fmt.Sprintf("%d", l.Level)
		if l.Level == 0 {
			name = "root"
		} else if l.Level == t.Height-1 {
			name = "leaf"
		}
		fmt.Fprintf(w, "%-6s %7d %9d %9.2f %11.3g %11.3g %13.3g %13.3g\n",
			name, l.Nodes, l.Entries, l.AvgFill, l.AvgMargin, l.Overlap, l.CoveredArea, l.DeadSpace)
	}
	fmt.Fprintf(w, "leaf occupancy (fill deciles 0-100%%): %s\n", occupancyBar(t.Levels[t.Height-1].Occupancy))

	if hr.Heap != nil {
		h := hr.Heap
		fmt.Fprintf(w, "\nheap: %d records (%d live, %d deleted) on %d pages + %d directory, %.1f%% utilized\n",
			h.Records, h.Live, h.Deleted, h.RecordPages, h.DirectoryPages, 100*h.Utilization)
	}
}

// writeStorage renders the storage counter line.
func (hr *HealthReport) writeStorage(w io.Writer) {
	s := hr.Storage
	fmt.Fprintf(w, "\nstorage: reads=%d hits=%d writes=%d allocs=%d frees=%d",
		s.Reads, s.Hits, s.Writes, s.Allocs, s.Frees)
	if tot := s.Reads + s.Hits; tot > 0 {
		fmt.Fprintf(w, " (hit ratio %.1f%%)", 100*float64(s.Hits)/float64(tot))
	}
	fmt.Fprintln(w)
}

// writeGroups renders the transformation-group table.
func (hr *HealthReport) writeGroups(w io.Writer) {
	if len(hr.Groups) == 0 {
		return
	}
	fmt.Fprintf(w, "\ntransformation groups:\n")
	fmt.Fprintf(w, "%-6s %5s %12s %12s %8s %11s %9s %10s %8s\n",
		"group", "size", "mult_vol", "add_vol", "probes", "candidates", "matches", "false_pos", "fp_rate")
	for _, g := range hr.Groups {
		fmt.Fprintf(w, "%-6d %5d %12.3g %12.3g %8d %11d %9d %10d %8.2f\n",
			g.Group, g.Size, g.MultVolume, g.AddVolume, g.Probes, g.Candidates, g.Matches, g.FalsePositives, g.FalsePositiveRate)
	}
}

// String renders the report to a string.
func (hr *HealthReport) String() string {
	var b strings.Builder
	hr.WriteText(&b)
	return b.String()
}

// occupancyBar renders an occupancy histogram as counts per decile.
func occupancyBar(occ [rtree.OccupancyBuckets]int) string {
	parts := make([]string, len(occ))
	for i, c := range occ {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, " ")
}
