package core

import (
	"context"
	"strings"
	"testing"

	"tsq/internal/obs"
	"tsq/internal/series"
	"tsq/internal/transform"
)

// TestIndexHealthGroundTruth cross-checks the health report header and
// tree section against the index's own metadata, and the group section
// against the transformation partition.
func TestIndexHealthGroundTruth(t *testing.T) {
	ds, ix := pagedFixture(t, 5, 300, 64)
	ts := transform.MovingAverageSet(64, 3, 14) // 12 transforms
	groups := EqualPartition(len(ts), 4)

	hr, err := ix.Health(context.Background(), ts, groups)
	if err != nil {
		t.Fatal(err)
	}
	if hr.Series != len(ds.Records) || hr.SeriesLength != 64 || hr.K != ix.Options().K {
		t.Errorf("header = %+v", hr)
	}
	if hr.Tree.Height != ix.Tree().Height() || hr.Tree.Size != ix.Tree().Len() {
		t.Errorf("tree = height=%d size=%d, want %d/%d",
			hr.Tree.Height, hr.Tree.Size, ix.Tree().Height(), ix.Tree().Len())
	}
	// One leaf entry per series.
	leaf := hr.Tree.Levels[hr.Tree.Height-1]
	if leaf.Entries != len(ds.Records) {
		t.Errorf("leaf entries = %d, want %d", leaf.Entries, len(ds.Records))
	}
	if hr.Heap == nil || hr.Heap.Live != len(ds.Records) || hr.Heap.Deleted != 0 {
		t.Errorf("heap = %+v", hr.Heap)
	}
	if len(hr.Groups) != len(groups) {
		t.Fatalf("%d groups, want %d", len(hr.Groups), len(groups))
	}
	for gi, g := range hr.Groups {
		if g.Size != len(groups[gi]) {
			t.Errorf("group %d size = %d, want %d", gi, g.Size, len(groups[gi]))
		}
		// Moving averages scale magnitudes (mult part) and shift phases
		// (add part), both varying across window lengths: each part must
		// have measurable spread over its non-degenerate dimensions.
		if g.MultVolume <= 0 || g.AddVolume <= 0 {
			t.Errorf("group %d volumes = %v/%v, want both > 0", gi, g.MultVolume, g.AddVolume)
		}
		if g.Probes != 0 || g.Candidates != 0 {
			t.Errorf("group %d has counters before any fold: %+v", gi, g)
		}
	}
}

// TestIndexHealthFoldTrace runs traced MT-index queries and folds their
// probe spans into the report; per-group counters must sum exactly to
// the trace totals, and the NN probe (no group ordinal) must not fold.
func TestIndexHealthFoldTrace(t *testing.T) {
	ds, ix := pagedFixture(t, 9, 200, 64)
	ts := transform.MovingAverageSet(64, 3, 14)
	groups := EqualPartition(len(ts), 4)
	eps := series.DistanceForCorrelation(64, 0.9)

	hr, err := ix.Health(context.Background(), ts, groups)
	if err != nil {
		t.Fatal(err)
	}

	var wantCand, wantFP, wantMatches int64
	for _, qi := range []int{3, 17, 42} {
		tr := obs.New()
		root := tr.Start(obs.KindQuery, "range")
		ctx := obs.ContextWithSpan(obs.WithTrace(context.Background(), tr), root)
		opts := RangeOptions{Mode: QRectSafe, Groups: groups}
		if _, _, err := ix.MTIndexRangeCtx(ctx, ds.Records[qi], ts, eps, opts); err != nil {
			t.Fatal(err)
		}
		// An NN query in the same trace must not disturb group folds.
		if _, _, err := ix.MTIndexNNCtx(ctx, ds.Records[qi], ts, 3, false); err != nil {
			t.Fatal(err)
		}
		root.End()
		wantCand += tr.Sum(obs.KindVerify, obs.ACandidates)
		wantFP += tr.Sum(obs.KindVerify, obs.AFalsePositives)
		wantMatches += tr.Sum(obs.KindVerify, obs.AMatches)
		hr.FoldTrace(tr)
	}

	var gotCand, gotFP, gotMatches, gotProbes int64
	for _, g := range hr.Groups {
		gotCand += g.Candidates
		gotFP += g.FalsePositives
		gotMatches += g.Matches
		gotProbes += g.Probes
		if g.Candidates > 0 {
			want := float64(g.FalsePositives) / float64(g.Candidates)
			if g.FalsePositiveRate != want {
				t.Errorf("group %d fp rate = %v, want %v", g.Group, g.FalsePositiveRate, want)
			}
		}
	}
	if gotCand != wantCand || gotFP != wantFP || gotMatches != wantMatches {
		t.Errorf("folded totals cand=%d fp=%d matches=%d, want %d/%d/%d",
			gotCand, gotFP, gotMatches, wantCand, wantFP, wantMatches)
	}
	if gotProbes != int64(3*len(groups)) {
		t.Errorf("folded probes = %d, want %d (3 queries x %d groups)", gotProbes, 3*len(groups), len(groups))
	}
}

// TestHealthReportText spot-checks the -inspect rendering.
func TestHealthReportText(t *testing.T) {
	_, ix := pagedFixture(t, 2, 150, 64)
	ts := transform.MovingAverageSet(64, 3, 6)
	hr, err := ix.Health(context.Background(), ts, EqualPartition(len(ts), 2))
	if err != nil {
		t.Fatal(err)
	}
	text := hr.String()
	for _, needle := range []string{
		"index health: 150 series",
		"R*-tree: height=",
		"leaf occupancy",
		"heap: 150 records (150 live, 0 deleted)",
		"storage: reads=",
		"transformation groups:",
	} {
		if !strings.Contains(text, needle) {
			t.Errorf("report missing %q:\n%s", needle, text)
		}
	}
}
