package core

import (
	"fmt"
	"math"
	"sort"

	"tsq/internal/geom"
	"tsq/internal/rtree"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// JoinMatch is one answer of a transformed spatial join (Query 2): a pair
// of records and a transformation bringing them within the threshold.
// IDA < IDB always.
type JoinMatch struct {
	IDA, IDB     int64
	TransformIdx int
	Distance     float64
}

// SeqScanJoin answers Query 2 by evaluating the predicate on every pair of
// records and every transformation.
func SeqScanJoin(ds *Dataset, ts []transform.Transform, eps float64) ([]JoinMatch, QueryStats) {
	var st QueryStats
	var out []JoinMatch
	for i := 0; i < len(ds.Records); i++ {
		for j := i + 1; j < len(ds.Records); j++ {
			a, b := ds.Records[i], ds.Records[j]
			if a == nil || b == nil { // deleted
				continue
			}
			st.Candidates++
			for ti, t := range ts {
				st.Comparisons++
				if d := t.DistancePolar(a.Mags, a.Phases, b.Mags, b.Phases); d <= eps {
					out = append(out, JoinMatch{IDA: a.ID, IDB: b.ID, TransformIdx: ti, Distance: d})
				}
			}
		}
	}
	return out, st
}

// STIndexJoin runs the index join once per transformation (singleton
// groups).
func (ix *Index) STIndexJoin(ts []transform.Transform, eps float64, opts RangeOptions) ([]JoinMatch, QueryStats, error) {
	groups := make([][]int, len(ts))
	for i := range ts {
		groups[i] = []int{i}
	}
	opts.Groups = groups
	return ix.MTIndexJoin(ts, eps, opts)
}

// MTIndexJoin answers Query 2 with a synchronized self-join of the R*-tree
// in which the transformation rectangle is applied to both data
// rectangles before the overlap test (Sec. 4.1). Candidate pairs are
// verified exactly against every transformation in the rectangle.
func (ix *Index) MTIndexJoin(ts []transform.Transform, eps float64, opts RangeOptions) ([]JoinMatch, QueryStats, error) {
	if len(ts) == 0 {
		return nil, QueryStats{}, nil
	}
	groups := opts.Groups
	if groups == nil {
		groups = [][]int{identityIndexes(len(ts))}
	}
	var st QueryStats
	var out []JoinMatch
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		sub := make([]transform.Transform, len(g))
		for i, idx := range g {
			if idx < 0 || idx >= len(ts) {
				return nil, st, fmt.Errorf("core: group index %d out of range", idx)
			}
			sub[i] = ts[idx]
		}
		mult, add := ix.fullMBRs(sub)
		bounds := ix.joinBounds(sub, eps, opts.Mode)
		st.IndexSearches++

		pairs := make(map[[2]int64]bool)
		if err := ix.joinWalk(ix.tree.Root(), ix.tree.Root(), mult, add, bounds, &st, pairs); err != nil {
			return nil, st, err
		}
		// Verify each candidate pair, deterministically ordered.
		keys := make([][2]int64, 0, len(pairs))
		for k := range pairs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			a, err := ix.fetch(k[0])
			if err != nil {
				return nil, st, err
			}
			b, err := ix.fetch(k[1])
			if err != nil {
				return nil, st, err
			}
			if a == nil || b == nil { // deleted
				continue
			}
			st.Candidates++
			for i, t := range sub {
				st.Comparisons++
				if d := t.DistancePolar(a.Mags, a.Phases, b.Mags, b.Phases); d <= eps {
					out = append(out, JoinMatch{IDA: a.ID, IDB: b.ID, TransformIdx: g[i], Distance: d})
				}
			}
		}
	}
	return out, st, nil
}

// joinBounds holds the per-dimension gap limits used by the join filter:
// two transformed rectangles can contain a qualifying pair only if, in
// every dimension, the gap between their intervals is at most the bound.
type joinBounds struct {
	perDim []float64
	epsC   float64
}

// joinBounds computes per-dimension gap limits for the transformed join:
// mean/std unconstrained; magnitudes within epsC; phases within epsC
// (paper mode) or within the safe angular bound (resolved per node pair
// with the magnitude information available there, so here only the mode
// and epsC are recorded via sentinel values).
func (ix *Index) joinBounds(ts []transform.Transform, eps float64, mode QRectMode) joinBounds {
	epsC := epsScale(eps, ix.opts.UseSymmetry)
	jb := joinBounds{perDim: make([]float64, ix.dim)}
	jb.perDim[0], jb.perDim[1] = math.Inf(1), math.Inf(1)
	for j := 1; j <= ix.opts.K; j++ {
		jb.perDim[2*j] = epsC
		if mode == QRectSafe {
			// Resolved per pair of rectangles in joinGapOK; the sentinel
			// NaN requests the magnitude-aware, wrap-aware bound.
			jb.perDim[2*j+1] = math.NaN()
		} else {
			jb.perDim[2*j+1] = epsC
		}
	}
	jb.epsC = epsC
	return jb
}

// joinGapOK reports whether two transformed rectangles may contain a
// qualifying pair.
func (ix *Index) joinGapOK(a, b geom.Rect, jb joinBounds) bool {
	for d := 0; d < ix.dim; d++ {
		bound := jb.perDim[d]
		if math.IsInf(bound, 1) {
			continue
		}
		gap := intervalGap(a.Lo[d], a.Hi[d], b.Lo[d], b.Hi[d])
		if math.IsNaN(bound) {
			// Safe phase bound from the corresponding magnitude dimension
			// (d-1): both sides' transformed magnitudes are at least their
			// interval lows.
			magLo := math.Min(a.Lo[d-1], b.Lo[d-1])
			bound = phaseBound(jb.epsC, magLo)
			if bound >= math.Pi {
				continue
			}
			// A qualifying pair has angular difference <= bound, which in
			// the unwrapped linear values means a difference <= bound or
			// >= 2*pi - bound (branch-cut wrap). Prune only when no pair
			// of interval values can land in either region: the closest
			// pair is farther than bound AND the farthest pair is closer
			// than 2*pi - bound.
			maxDiff := math.Max(a.Hi[d]-b.Lo[d], b.Hi[d]-a.Lo[d])
			if gap > bound && maxDiff < 2*math.Pi-bound {
				return false
			}
			continue
		}
		if gap > bound {
			return false
		}
	}
	return true
}

func intervalGap(alo, ahi, blo, bhi float64) float64 {
	switch {
	case ahi < blo:
		return blo - ahi
	case bhi < alo:
		return alo - bhi
	default:
		return 0
	}
}

// joinWalk synchronously traverses the tree against itself, applying the
// transformation rectangle to both sides before the gap test.
func (ix *Index) joinWalk(a, b storage.PageID, mult, add geom.Rect, jb joinBounds, st *QueryStats, pairs map[[2]int64]bool) error {
	na, err := ix.tree.Load(a)
	if err != nil {
		return err
	}
	st.DAAll++
	if na.Leaf {
		st.DALeaf++
	}
	nb := na
	if a != b {
		nb, err = ix.tree.Load(b)
		if err != nil {
			return err
		}
		st.DAAll++
		if nb.Leaf {
			st.DALeaf++
		}
	}
	ta := ix.transformEntries(na, mult, add)
	tb := ta
	if a != b {
		tb = ix.transformEntries(nb, mult, add)
	}
	switch {
	case na.Leaf && nb.Leaf:
		for i := range na.Entries {
			jStart := 0
			if a == b {
				jStart = i + 1
			}
			for j := jStart; j < len(nb.Entries); j++ {
				ra, rb := na.Entries[i].Rec, nb.Entries[j].Rec
				if ra == rb {
					continue
				}
				if ix.joinGapOK(ta[i], tb[j], jb) {
					if ra > rb {
						ra, rb = rb, ra
					}
					pairs[[2]int64{ra, rb}] = true
				}
			}
		}
	case !na.Leaf && !nb.Leaf:
		for i := range na.Entries {
			jStart := 0
			if a == b {
				jStart = i
			}
			for j := jStart; j < len(nb.Entries); j++ {
				if ix.joinGapOK(ta[i], tb[j], jb) {
					if err := ix.joinWalk(na.Entries[i].Child, nb.Entries[j].Child, mult, add, jb, st, pairs); err != nil {
						return err
					}
				}
			}
		}
	case na.Leaf: // internal b
		for j := range nb.Entries {
			if err := ix.joinWalk(a, nb.Entries[j].Child, mult, add, jb, st, pairs); err != nil {
				return err
			}
		}
	default: // internal a, leaf b
		for i := range na.Entries {
			if err := ix.joinWalk(na.Entries[i].Child, b, mult, add, jb, st, pairs); err != nil {
				return err
			}
		}
	}
	return nil
}

// transformEntries applies the transformation rectangle to every entry of
// a node.
func (ix *Index) transformEntries(n *rtree.Node, mult, add geom.Rect) []geom.Rect {
	out := make([]geom.Rect, len(n.Entries))
	for i, e := range n.Entries {
		out[i] = transform.ApplyMBRs(mult, add, e.Rect)
	}
	return out
}
