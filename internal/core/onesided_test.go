package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tsq/internal/datagen"
	"tsq/internal/series"
	"tsq/internal/transform"
)

// The one-sided semantics is the literal form of the paper's Algorithm 1:
// find s with D(t(s), q) <= eps. These tests establish exactness of the
// indexed evaluation against the sequential scan, including for shift
// sets whose phase offsets force the modular (wraparound) filtering.

func TestOneSidedMTEqualsSeqScan(t *testing.T) {
	ds, ix := buildFixture(t, 21, 300, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 20)
	eps := 6.0
	total := 0
	for trial := 0; trial < 5; trial++ {
		q := ds.Records[trial*31%len(ds.Records)]
		want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{OneSided: true})
		got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe, OneSided: true})
		if err != nil {
			t.Fatal(err)
		}
		if !sameKeys(matchKeySet(got), matchKeySet(want)) {
			t.Fatalf("trial %d: one-sided MT != seqscan (%d vs %d)", trial, len(got), len(want))
		}
		total += len(want)
	}
	if total == 0 {
		t.Fatal("degenerate one-sided test: no matches in any trial")
	}
}

func TestOneSidedShiftSetsWithWrap(t *testing.T) {
	// Shift sets carry large phase offsets; the one-sided filter must
	// compare phases modulo 2*pi or it silently drops matches.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		ds, err := NewDataset(datagen.RandomWalks(seed, 150, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := BuildIndex(ds, IndexOptions{K: 2, PageSize: 512, UseSymmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		ts := transform.TimeShiftSet(n, 0, 5+rng.Intn(20))
		eps := 2 + rng.Float64()*4
		q := ds.Records[rng.Intn(len(ds.Records))]
		want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{OneSided: true})
		got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe, OneSided: true})
		if err != nil {
			t.Fatal(err)
		}
		return sameKeys(matchKeySet(got), matchKeySet(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestOneSidedShiftNotVacuous(t *testing.T) {
	// Under the symmetric semantics every shift yields the same distance
	// (shifts are unitary); one-sided they differ. This is the reason the
	// one-sided mode exists.
	ds, _ := buildFixture(t, 22, 10, 64, DefaultIndexOptions())
	a, b := ds.Records[0], ds.Records[1]
	s0 := transform.TimeShift(64, 0)
	s3 := transform.TimeShift(64, 3)
	symmetric0 := s0.DistancePolar(a.Mags, a.Phases, b.Mags, b.Phases)
	symmetric3 := s3.DistancePolar(a.Mags, a.Phases, b.Mags, b.Phases)
	if math.Abs(symmetric0-symmetric3) > 1e-7 {
		t.Errorf("symmetric shift distances differ: %v vs %v", symmetric0, symmetric3)
	}
	one0 := s0.DistancePolarLeft(a.Mags, a.Phases, b.Mags, b.Phases)
	one3 := s3.DistancePolarLeft(a.Mags, a.Phases, b.Mags, b.Phases)
	if math.Abs(one0-one3) < 1e-7 {
		t.Error("one-sided shift distances unexpectedly equal")
	}
	if math.Abs(one0-symmetric0) > 1e-7 {
		t.Errorf("shift0 one-sided %v differs from symmetric %v", one0, symmetric0)
	}
}

func TestDistancePolarLeftMatchesSpectra(t *testing.T) {
	// The one-sided polar kernel agrees with the definition via complex
	// spectra.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		ds, err := NewDataset(datagen.RandomWalks(seed, 2, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		a, b := ds.Records[0], ds.Records[1]
		var tr transform.Transform
		switch rng.Intn(3) {
		case 0:
			tr = transform.MovingAverage(n, 1+rng.Intn(n))
		case 1:
			tr = transform.TimeShift(n, rng.Intn(2*n))
		default:
			tr = transform.Compose(transform.TimeShift(n, rng.Intn(8)), transform.Momentum(n))
		}
		got := tr.DistancePolarLeft(a.Mags, a.Phases, b.Mags, b.Phases)
		want := distanceSpectra(tr.ApplySpectrum(a.Spectrum()), b.Spectrum())
		return math.Abs(got-want) < 1e-7*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func distanceSpectra(x, y []complex128) float64 {
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(s)
}

func TestOneSidedNNEqualsSeqScan(t *testing.T) {
	ds, ix := buildFixture(t, 23, 300, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 3, 12)
	q := ds.Records[9]
	want, _ := SeqScanNN(ds, q, ts, 5, true)
	got, _, err := ix.MTIndexNN(q, ts, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d results", len(got))
	}
	for i := range got {
		if math.Abs(got[i].Distance-want[i].Distance) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, got[i].Distance, want[i].Distance)
		}
	}
}

func TestApplyTransformRecord(t *testing.T) {
	ds, _ := buildFixture(t, 24, 3, 64, DefaultIndexOptions())
	r := ds.Records[0]
	mom := transform.Momentum(64)
	derived := r.ApplyTransform(mom)
	// The derived record's spectrum is mom applied to the original's.
	want := mom.ApplySpectrum(r.Spectrum())
	got := derived.Spectrum()
	if d := distanceSpectra(got, want); d > 1e-9 {
		t.Errorf("derived spectrum off by %v", d)
	}
	if derived.ID != r.ID || derived.Name == r.Name {
		t.Errorf("derived identity: id=%d name=%q", derived.ID, derived.Name)
	}
	// Distance of t(s) to the derived query equals D(t(s), mom(q)).
	s := ds.Records[1]
	tr := transform.Compose(transform.TimeShift(64, 2), mom)
	got2 := tr.DistancePolarLeft(s.Mags, s.Phases, derived.Mags, derived.Phases)
	want2 := distanceSpectra(tr.ApplySpectrum(s.Spectrum()), mom.ApplySpectrum(r.Spectrum()))
	if math.Abs(got2-want2) > 1e-7 {
		t.Errorf("one-sided distance to derived record: %v vs %v", got2, want2)
	}
}

func TestOneSidedExample12EndToEnd(t *testing.T) {
	// The momentum/shift discovery of Example 1.2 through the core API:
	// the true offset wins the one-sided nearest-neighbor query.
	const n, offset = 128, 2
	pcg, pcl := datagen.SpikePair(5, n, offset)
	ds, err := NewDataset([]series.Series{pcg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(ds, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	mom := transform.Momentum(n)
	ts := transform.ComposeSets(transform.TimeShiftSet(n, 0, 5), []transform.Transform{mom})
	q, err := ds.QueryRecord(pcl)
	if err != nil {
		t.Fatal(err)
	}
	qm := q.ApplyTransform(mom)
	nn, _, err := ix.MTIndexNN(qm, ts, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 1 {
		t.Fatal("no result")
	}
	wantName := "shift2(momentum)"
	if got := ts[nn[0].TransformIdx].Name; got != wantName {
		t.Errorf("winning transform %q, want %q", got, wantName)
	}
}
