package core

import (
	"math"
	"testing"

	"tsq/internal/series"
	"tsq/internal/transform"
)

// cascadeFixtureTransforms returns a transformation group exercising all
// three phase paths of the cascade: pure phase offsets (moving
// averages, multiplier +1), time reversal (multiplier -1), and a
// general multiplier via composition with Reverse.
func cascadeFixtureTransforms(n int) []transform.Transform {
	ts := transform.MovingAverageSet(n, 4, 12)
	ts = append(ts, transform.Reverse(n))
	ts = append(ts, transform.Compose(transform.MovingAverage(n, 6), transform.Reverse(n)))
	return ts
}

// TestCascadeMatchesFlatDecisions: the cascade's skip/keep decision must
// equal the flat single-tier bound's on every stored feature point, for
// both sided-nesses and with and without the symmetry doubling — the
// tiers are successively tighter underestimates of the same quantity,
// so they can only dismiss what the full bound dismisses.
func TestCascadeMatchesFlatDecisions(t *testing.T) {
	for _, sym := range []bool{true, false} {
		opts := DefaultIndexOptions()
		opts.UseSymmetry = sym
		ds, ix := buildFixture(t, 5, 250, 64, opts)
		ts := cascadeFixtureTransforms(64)
		for trial := 0; trial < 4; trial++ {
			q := ds.Records[trial*29%len(ds.Records)]
			eps := series.DistanceForCorrelation(64, 0.85+0.04*float64(trial))
			for _, oneSided := range []bool{false, true} {
				casc := ix.newLBCascade(ts, q, eps, oneSided)
				for _, r := range ds.Records {
					feat := r.Feature(ix.opts.K)
					flat := ix.skipByPrefixLB(feat, ts, q, eps, oneSided)
					tier := casc.skip(feat)
					if (tier >= 0) != flat {
						t.Fatalf("sym=%v oneSided=%v trial=%d rec=%d: cascade tier %d, flat skip %v (prefixLB=%v eps=%v)",
							sym, oneSided, trial, r.ID, tier, flat, ix.prefixLB(feat, ts, q, oneSided), eps)
					}
				}
			}
		}
	}
}

// TestCascadeSkipIsSound: every candidate the cascade dismisses — at
// any tier — really is outside eps for every transformation of the
// group, per the exact verification kernels. This is the no-false-
// dismissal contract that keeps pipeline answers bit-identical.
func TestCascadeSkipIsSound(t *testing.T) {
	ds, ix := buildFixture(t, 11, 250, 64, DefaultIndexOptions())
	ts := cascadeFixtureTransforms(64)
	var skips int
	for trial := 0; trial < 4; trial++ {
		q := ds.Records[trial*31%len(ds.Records)]
		eps := series.DistanceForCorrelation(64, 0.8+0.05*float64(trial))
		for _, oneSided := range []bool{false, true} {
			casc := ix.newLBCascade(ts, q, eps, oneSided)
			for _, r := range ds.Records {
				if casc.skip(r.Feature(ix.opts.K)) < 0 {
					continue
				}
				skips++
				for _, tr := range ts {
					if d := distancePred(tr, r, q, oneSided); d <= eps {
						t.Fatalf("trial=%d oneSided=%v: cascade dismissed record %d but %s matches at d=%v <= eps=%v",
							trial, oneSided, r.ID, tr.Name, d, eps)
					}
				}
			}
		}
	}
	if skips == 0 {
		t.Fatal("degenerate workload: cascade never skipped — soundness untested")
	}
}

// TestCascadeBoundaryNeverSkips is the boundary contract of every tier:
// a candidate whose true distance equals eps exactly — and one within
// 1e-12 of it — must never be skipped, one-sided and two-sided, with
// and without the symmetry doubling. The true distance is taken from
// the exact verification kernel, so "equals eps exactly" is bitwise.
func TestCascadeBoundaryNeverSkips(t *testing.T) {
	for _, sym := range []bool{true, false} {
		opts := DefaultIndexOptions()
		opts.UseSymmetry = sym
		ds, ix := buildFixture(t, 17, 120, 64, opts)
		ts := cascadeFixtureTransforms(64)
		for _, oneSided := range []bool{false, true} {
			for ri := 0; ri < len(ds.Records); ri += 7 {
				r := ds.Records[ri]
				q := ds.Records[(ri*13+5)%len(ds.Records)]
				// The best (minimum) true distance over the group: the
				// candidate qualifies at eps = d, so no tier may skip.
				d := math.Inf(1)
				for _, tr := range ts {
					if v := distancePred(tr, r, q, oneSided); v < d {
						d = v
					}
				}
				feat := r.Feature(ix.opts.K)
				for _, eps := range []float64{d, d + 1e-12, d * (1 + 1e-12)} {
					casc := ix.newLBCascade(ts, q, eps, oneSided)
					if tier := casc.skip(feat); tier >= 0 {
						t.Fatalf("sym=%v oneSided=%v rec=%d: tier %d skipped a candidate with true distance %v at eps=%v",
							sym, oneSided, r.ID, tier, d, eps)
					}
					if ix.skipByPrefixLB(feat, ts, q, eps, oneSided) {
						t.Fatalf("sym=%v oneSided=%v rec=%d: flat bound skipped a candidate with true distance %v at eps=%v",
							sym, oneSided, r.ID, d, eps)
					}
				}
			}
		}
	}
}

// TestCascadeTiersEngage pins the engagement of the cascade on a
// realistic workload: across a spread of selectivities every tier must
// decide some skips (the cheap magnitude-gap tier the far-away
// candidates, tiers 1 and 2 the calls that need phase information),
// and the tier counters must partition the total.
func TestCascadeTiersEngage(t *testing.T) {
	ds, ix := buildFixture(t, 23, 400, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 4, 19)
	var total QueryStats
	for trial := 0; trial < 8; trial++ {
		q := ds.Records[trial*43%len(ds.Records)]
		eps := series.DistanceForCorrelation(64, 0.70+0.04*float64(trial))
		_, st, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		if st.SkippedLB0+st.SkippedLB1+st.SkippedLB2 != st.SkippedLB {
			t.Fatalf("trial %d: tier counters do not partition SkippedLB: %+v", trial, st)
		}
		total.Add(st)
	}
	if total.SkippedLB0 == 0 || total.SkippedLB1 == 0 || total.SkippedLB2 == 0 {
		t.Fatalf("degenerate workload: tiers engaged %d/%d/%d of %d skips",
			total.SkippedLB0, total.SkippedLB1, total.SkippedLB2, total.SkippedLB)
	}
}

// benchmarkLB measures the lower-bound phase alone over every stored
// feature point. flat is the original per-candidate form (cutoff and
// coefficient loads recomputed per entry, one cosine per
// transformation and coefficient); the cascade hoists those per
// verification call and answers most candidates from the cosine-free
// tier 0. The pair is the micro-benchmark for both the hoisting and
// the tiering deltas.
func benchmarkLB(b *testing.B, flat bool) {
	ds, ix := buildFixture(b, 23, 400, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 4, 11) // one 8-transform group
	q := ds.Records[7]
	eps := series.DistanceForCorrelation(64, 0.96)
	feats := make([][]float64, len(ds.Records))
	for i, r := range ds.Records {
		feats[i] = r.Feature(ix.opts.K)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if flat {
			for _, f := range feats {
				ix.skipByPrefixLB(f, ts, q, eps, false)
			}
		} else {
			casc := ix.newLBCascade(ts, q, eps, false)
			for _, f := range feats {
				casc.skip(f)
			}
		}
	}
}

// BenchmarkLBFlatPerEntry is the pre-cascade lower bound: per-entry
// cutoff and coefficient loads, full prefix for every candidate.
func BenchmarkLBFlatPerEntry(b *testing.B) { benchmarkLB(b, true) }

// BenchmarkLBCascadeHoisted is the tiered cascade with hoisted
// candidate-independent state.
func BenchmarkLBCascadeHoisted(b *testing.B) { benchmarkLB(b, false) }
