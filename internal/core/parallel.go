package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"tsq/internal/transform"
)

// verifySerial verifies one transformation rectangle's candidates on the
// calling goroutine. It is the fallback of verifyParallel and the body of
// the serial MT-index verification phase; both paths therefore produce
// identical matches and statistics. The extra falsePos return counts
// candidates that produced no match — the paper's false positives, the
// filter quality the trace reports.
//
// Unless opts.NaiveVerify, this is the I/O-aware pipeline: candidates
// whose DFT-prefix lower bound already exceeds eps are dropped without
// retrieval (SkippedLB, split per cascade tier into SkippedLB0/1/2),
// the survivors' record pages are fetched in one page-ordered batch,
// and the surviving distance evaluations run through the
// early-abandoning kernels. The bound is evaluated through a tiered
// cascade whose candidate-independent state is hoisted here, once per
// call — and therefore once per shard under verifyParallel, so shards
// never share scratch. Verification still happens in the caller's
// candidate order, so matches — values and order — are identical to
// the naive path.
func (ix *Index) verifySerial(ctx context.Context, candidates []candidate, sub []transform.Transform, g []int, q *Record, eps float64, ordered *orderedSet, opts RangeOptions) ([]Match, QueryStats, int, error) {
	var st QueryStats
	var falsePos int
	var out []Match
	if opts.NaiveVerify {
		for _, c := range candidates {
			r, err := ix.fetchCtx(ctx, c.rec)
			if err != nil {
				return nil, st, falsePos, err
			}
			if r == nil { // deleted since the entry was written
				continue
			}
			st.Candidates++
			before := len(out)
			if ordered != nil {
				out = appendOrderedMatches(out, ordered, r, q, eps, &st, g, true)
			} else {
				for i, t := range sub {
					st.Comparisons++
					d := distancePred(t, r, q, opts.OneSided)
					if d <= eps {
						out = append(out, Match{RecordID: r.ID, TransformIdx: g[i], Distance: d})
					}
				}
			}
			if len(out) == before {
				falsePos++
			}
		}
		return out, st, falsePos, nil
	}
	survivors := candidates
	if len(candidates) > 0 {
		lbStart := time.Now()
		survivors = make([]candidate, 0, len(candidates))
		if opts.FlatLB {
			// Original flat bound: per-candidate cutoff and coefficient
			// loads, kept for A/B benchmarks. Its dismissals all come
			// from the full prefix bound, i.e. tier 2.
			for _, c := range candidates {
				if c.feat != nil && ix.skipByPrefixLB(c.feat, sub, q, eps, opts.OneSided) {
					st.SkippedLB++
					st.SkippedLB2++
					continue
				}
				survivors = append(survivors, c)
			}
		} else {
			casc := ix.newLBCascade(sub, q, eps, opts.OneSided)
			for _, c := range candidates {
				if c.feat != nil {
					switch casc.skip(c.feat) {
					case 0:
						st.SkippedLB++
						st.SkippedLB0++
						continue
					case 1:
						st.SkippedLB++
						st.SkippedLB1++
						continue
					case 2:
						st.SkippedLB++
						st.SkippedLB2++
						continue
					}
				}
				survivors = append(survivors, c)
			}
		}
		st.LBTimeNs = time.Since(lbStart).Nanoseconds()
	}
	var recs []*Record
	if ix.heap != nil && len(survivors) > 1 {
		ids := make([]int64, len(survivors))
		for i, c := range survivors {
			ids[i] = c.rec
		}
		var err error
		recs, err = ix.fetchBatchCtx(ctx, ids)
		if err != nil {
			return nil, st, falsePos, err
		}
	}
	for i, c := range survivors {
		var r *Record
		if recs != nil {
			r = recs[i]
		} else {
			var err error
			r, err = ix.fetchCtx(ctx, c.rec)
			if err != nil {
				return nil, st, falsePos, err
			}
		}
		if r == nil { // deleted since the entry was written
			continue
		}
		st.Candidates++
		before := len(out)
		if ordered != nil {
			out = appendOrderedMatches(out, ordered, r, q, eps, &st, g, false)
		} else {
			for ti, t := range sub {
				st.Comparisons++
				d, abandoned := distancePredAbandon(t, r, q, eps, opts.OneSided)
				if abandoned {
					st.Abandoned++
					continue
				}
				if d <= eps {
					out = append(out, Match{RecordID: r.ID, TransformIdx: g[ti], Distance: d})
				}
			}
		}
		if len(out) == before {
			falsePos++
		}
	}
	return out, st, falsePos, nil
}

// verifyParallel shards the verification of one transformation
// rectangle's candidates across opts.Workers goroutines, each shard
// running verifySerial on its chunk (so every shard gets the same
// lower-bound skip and page-ordered batch fetch). Empty candidate sets
// and non-positive worker counts fall back to the serial path (a zero
// divisor would otherwise panic in the chunk computation).
func (ix *Index) verifyParallel(ctx context.Context, candidates []candidate, sub []transform.Transform, g []int, q *Record, eps float64, ordered *orderedSet, opts RangeOptions) ([]Match, QueryStats, int, error) {
	workers := opts.Workers
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers <= 1 {
		return ix.verifySerial(ctx, candidates, sub, g, q, eps, ordered, opts)
	}
	type shard struct {
		matches  []Match
		stats    QueryStats
		falsePos int
		err      error
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	chunk := (len(candidates) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(candidates))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sh := &shards[w]
			sh.matches, sh.stats, sh.falsePos, sh.err = ix.verifySerial(ctx, candidates[lo:hi], sub, g, q, eps, ordered, opts)
		}(w, lo, hi)
	}
	wg.Wait()
	var out []Match
	var st QueryStats
	var falsePos int
	for _, sh := range shards {
		if sh.err != nil {
			return nil, st, falsePos, sh.err
		}
		out = append(out, sh.matches...)
		st.Add(sh.stats)
		falsePos += sh.falsePos
	}
	return out, st, falsePos, nil
}

// mtRangeParallel probes the transformation rectangles of an MT-index
// range query concurrently: one goroutine per MBR, bounded by
// opts.Workers, each running the same filter-and-verify pipeline as the
// serial loop (including verifyParallel for its candidates). Results are
// merged in group order, so matches and aggregate statistics are
// identical to the serial evaluation. Each goroutine records its own
// KindProbe span when ctx carries a parent span; the trace's span list
// is mutex-protected, so concurrent probes trace safely.
func (ix *Index) mtRangeParallel(ctx context.Context, q *Record, ts []transform.Transform, groups [][]int, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	type groupResult struct {
		matches []Match
		st      QueryStats
		err     error
	}
	results := make([]groupResult, len(groups))
	sem := make(chan struct{}, opts.Workers)
	var wg sync.WaitGroup
	for gi := range groups {
		if len(groups[gi]) == 0 {
			continue
		}
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			m, st, err := ix.rangeGroup(ctx, q, ts, groups[gi], gi, len(groups), eps, opts)
			results[gi] = groupResult{matches: m, st: st, err: err}
		}(gi)
	}
	wg.Wait()
	var out []Match
	var st QueryStats
	for _, r := range results {
		st.Add(r.st)
		if r.err != nil {
			return nil, st, r.err
		}
		out = append(out, r.matches...)
	}
	return out, st, nil
}

// SeqScanRangeParallel evaluates the sequential scan across the given
// number of worker goroutines (0 or 1 means GOMAXPROCS). The answer and
// the aggregate statistics equal the serial SeqScanRange; matches are
// returned in record order. Sequential scans are embarrassingly parallel
// — each record's verification is independent — so this is the natural
// way to use a multicore machine when no index helps.
func SeqScanRangeParallel(ds *Dataset, q *Record, ts []transform.Transform, eps float64, opts RangeOptions, workers int) ([]Match, QueryStats) {
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(ds.Records)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return SeqScanRange(ds, q, ts, eps, opts)
	}
	ordered := orderedPrefix(ts, opts.UseOrdering && !opts.OneSided)

	type shard struct {
		matches []Match
		stats   QueryStats
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			sh := &shards[w]
			for _, r := range ds.Records[lo:hi] {
				if r == nil {
					continue
				}
				sh.stats.Candidates++
				if ordered != nil {
					sh.matches = appendOrderedMatches(sh.matches, ordered, r, q, eps, &sh.stats, identityIndexes(len(ts)), opts.NaiveVerify)
					continue
				}
				for i, t := range ts {
					sh.stats.Comparisons++
					if !opts.NaiveVerify {
						d, abandoned := distancePredAbandon(t, r, q, eps, opts.OneSided)
						if abandoned {
							sh.stats.Abandoned++
							continue
						}
						if d <= eps {
							sh.matches = append(sh.matches, Match{RecordID: r.ID, TransformIdx: i, Distance: d})
						}
						continue
					}
					d := distancePred(t, r, q, opts.OneSided)
					if d <= eps {
						sh.matches = append(sh.matches, Match{RecordID: r.ID, TransformIdx: i, Distance: d})
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	var out []Match
	var st QueryStats
	for _, sh := range shards {
		out = append(out, sh.matches...)
		st.Add(sh.stats)
	}
	return out, st
}
