package core

import (
	"tsq/internal/obs/capture"
)

// Answer digesting at the dispatch boundary: each query shape folds
// its result set into an order-insensitive capture.Digest so the
// workload journal can certify, on replay, that a query still returns
// the bit-identical answer set. The digest is computed over the same
// tuples SortMatches orders by, so it is invariant under the
// nondeterministic shard order of parallel verification.

// AnswerDigestRange digests a range answer: (record, transformation,
// distance) per match. Ordering-certified matches carry distance -1,
// which digests deterministically like any other value.
func AnswerDigestRange(ms []Match) capture.Digest {
	var d capture.Digest
	for i := range ms {
		d.Add(ms[i].RecordID, int64(ms[i].TransformIdx), ms[i].Distance)
	}
	return d
}

// AnswerDigestNN digests a nearest-neighbor answer.
func AnswerDigestNN(ms []NNMatch) capture.Digest {
	var d capture.Digest
	for i := range ms {
		d.Add(ms[i].RecordID, int64(ms[i].TransformIdx), ms[i].Distance)
	}
	return d
}
