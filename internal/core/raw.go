package core

import (
	"math"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// This file implements whole-matching range queries on the original
// (un-normalized) series — the Agrawal et al. query the paper's index
// layout supports through its first two dimensions. It is the reason
// Sec. 5 stores the mean and standard deviation of the original series in
// the index: for the raw Euclidean distance D(s, q) the decomposition
//
//	D^2 = n*(mean_s - mean_q)^2 + sum_t ((s_t - mean_s) - (q_t - mean_q))^2
//
// bounds the mean difference by D/sqrt(n), the sample-std difference by
// D/sqrt(n-1) (reverse triangle inequality on the centered parts), and
// each raw DFT coefficient difference by D/sqrt(2) (symmetry property).
// Raw coefficients are std_s times the stored normal-form coefficients,
// so the magnitude filter compares products of two indexed dimensions.

// RawMatch is one answer of a raw range query.
type RawMatch struct {
	RecordID int64
	Distance float64
}

// SeqScanRawRange finds every record whose original series is within eps
// of q's original series, by exhaustive scan.
func SeqScanRawRange(ds *Dataset, q *Record, eps float64) ([]RawMatch, QueryStats) {
	var st QueryStats
	var out []RawMatch
	for _, r := range ds.Records {
		if r == nil {
			continue
		}
		st.Candidates++
		st.Comparisons++
		if d := rawDistance(r, q); d <= eps {
			out = append(out, RawMatch{RecordID: r.ID, Distance: d})
		}
	}
	return out, st
}

func rawDistance(r, q *Record) float64 {
	var ss float64
	for i := range r.Raw {
		d := r.Raw[i] - q.Raw[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// RawRange answers the same query through the index: the mean and std
// dimensions filter directly, and the DFT magnitude dimensions filter via
// the product with the std dimension.
func (ix *Index) RawRange(q *Record, eps float64) ([]RawMatch, QueryStats, error) {
	var st QueryStats
	st.IndexSearches++
	n := float64(ix.ds.N)
	epsMean := eps / math.Sqrt(n)
	epsStd := eps / math.Sqrt(n-1)
	epsC := epsScale(eps, ix.opts.UseSymmetry)

	var out []RawMatch
	var walk func(id storage.PageID) error
	walk = func(id storage.PageID) error {
		node, err := ix.tree.Load(id)
		if err != nil {
			return err
		}
		st.DAAll++
		if node.Leaf {
			st.DALeaf++
		}
		for _, e := range node.Entries {
			if !ix.rawRectAdmits(e.Rect, q, epsMean, epsStd, epsC) {
				continue
			}
			if !node.Leaf {
				if err := walk(e.Child); err != nil {
					return err
				}
				continue
			}
			r, err := ix.fetch(e.Rec)
			if err != nil {
				return err
			}
			if r == nil {
				continue
			}
			st.Candidates++
			st.Comparisons++
			if d := rawDistance(r, q); d <= eps {
				out = append(out, RawMatch{RecordID: r.ID, Distance: d})
			}
		}
		return nil
	}
	if err := walk(ix.tree.Root()); err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// rawRectAdmits reports whether an index rectangle may contain a series
// within eps of q in raw distance.
func (ix *Index) rawRectAdmits(rect geom.Rect, q *Record, epsMean, epsStd, epsC float64) bool {
	// Mean dimension.
	if rect.Lo[0] > q.Mean+epsMean || rect.Hi[0] < q.Mean-epsMean {
		return false
	}
	// Std dimension.
	if rect.Lo[1] > q.Std+epsStd || rect.Hi[1] < q.Std-epsStd {
		return false
	}
	// Raw DFT magnitudes: |std_s * m_s - std_q * m_q| <= epsC. The
	// product of the std interval and the normal-form magnitude interval
	// bounds std_s * m_s (both are non-negative).
	stdLo := math.Max(0, rect.Lo[1])
	stdHi := rect.Hi[1]
	for j := 1; j <= ix.opts.K; j++ {
		mLo := math.Max(0, rect.Lo[2*j])
		mHi := rect.Hi[2*j]
		target := q.Std * q.Mags[j]
		if stdLo*mLo > target+epsC || stdHi*mHi < target-epsC {
			return false
		}
	}
	return true
}
