package core

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tsq/internal/obs"
	"tsq/internal/series"
	"tsq/internal/transform"
)

// pagedFixture builds a paged, buffered index so traced queries exercise
// the real I/O path: tree-node loads and heap-record fetches both go
// through the storage manager.
func pagedFixture(t testing.TB, seed int64, count, n int) (*Dataset, *Index) {
	t.Helper()
	opts := DefaultIndexOptions()
	opts.Paged = true
	opts.BufferPages = 16
	ds, ix := buildFixture(t, seed, count, n, opts)
	return ds, ix
}

// TestTracedRangeCrossCheck is the accounting contract of the trace: the
// span attributes of a traced MT-index range query must exactly equal the
// QueryStats it returns and the storage manager's counter deltas — the
// EXPLAIN ANALYZE numbers are the real numbers, not estimates.
func TestTracedRangeCrossCheck(t *testing.T) {
	ds, ix := pagedFixture(t, 11, 200, 64)
	ts := transform.MovingAverageSet(64, 3, 14) // 12 transforms
	eps := series.DistanceForCorrelation(64, 0.9)
	q := ds.Records[7]
	opts := RangeOptions{Mode: QRectSafe, Groups: EqualPartition(len(ts), 4)}

	want, wantSt, err := ix.MTIndexRange(q, ts, eps, opts)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		opts.Workers = workers
		tr := obs.New()
		root := tr.Start(obs.KindQuery, "range")
		ctx := obs.ContextWithSpan(obs.WithTrace(context.Background(), tr), root)
		before := ix.Manager().Stats()
		got, st, err := ix.MTIndexRangeCtx(ctx, q, ts, eps, opts)
		root.End()
		if err != nil {
			t.Fatal(err)
		}
		after := ix.Manager().Stats()

		if !sameKeys(matchKeySet(got), matchKeySet(want)) {
			t.Errorf("workers=%d: traced answer diverged from untraced", workers)
		}
		if noTime(st) != noTime(wantSt) {
			t.Errorf("workers=%d: stats = %+v, want %+v", workers, st, wantSt)
		}
		wantIO := (after.Reads - before.Reads) + (after.Hits - before.Hits) + (after.Prefetched - before.Prefetched)
		gotIO := tr.Sum(obs.KindProbe, obs.APagesRead) + tr.Sum(obs.KindProbe, obs.ABufferHits) + tr.Sum(obs.KindProbe, obs.APagesPrefetched)
		if gotIO != wantIO {
			t.Errorf("workers=%d: trace attributes %d page fetches, storage counted %d", workers, gotIO, wantIO)
		}
		if got, want := tr.Sum(obs.KindFilter, obs.ANodes), int64(st.DAAll); got != want {
			t.Errorf("workers=%d: trace nodes = %d, stats DAAll = %d", workers, got, want)
		}
		if got, want := tr.Sum(obs.KindFilter, obs.ALeaves), int64(st.DALeaf); got != want {
			t.Errorf("workers=%d: trace leaves = %d, stats DALeaf = %d", workers, got, want)
		}
		if got, want := tr.Sum(obs.KindVerify, obs.ACandidates), int64(st.Candidates); got != want {
			t.Errorf("workers=%d: trace candidates = %d, stats = %d", workers, got, want)
		}
		if got, want := tr.Sum(obs.KindVerify, obs.AComparisons), int64(st.Comparisons); got != want {
			t.Errorf("workers=%d: trace comparisons = %d, stats = %d", workers, got, want)
		}
		if gm := tr.Sum(obs.KindVerify, obs.AMatches); gm != int64(len(want)) {
			t.Errorf("workers=%d: trace matches = %d, want %d", workers, gm, len(want))
		}
		// One probe span per non-empty group, each with filter+verify child.
		if probes := tr.Sum(obs.KindProbe, obs.ATransforms); probes != int64(len(ts)) {
			t.Errorf("workers=%d: probe transforms sum = %d, want %d", workers, probes, len(ts))
		}
	}
}

// TestTracedNNCrossCheck does the same accounting check for the
// best-first nearest-neighbor traversal.
func TestTracedNNCrossCheck(t *testing.T) {
	ds, ix := pagedFixture(t, 5, 150, 32)
	ts := transform.MovingAverageSet(32, 2, 6)
	q := ds.Records[3]

	want, wantSt, err := ix.MTIndexNN(q, ts, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	root := tr.Start(obs.KindQuery, "nn")
	ctx := obs.ContextWithSpan(obs.WithTrace(context.Background(), tr), root)
	before := ix.Manager().Stats()
	got, st, err := ix.MTIndexNNCtx(ctx, q, ts, 5, false)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	after := ix.Manager().Stats()

	if len(got) != len(want) || st != wantSt {
		t.Errorf("traced NN diverged: %d results (want %d), stats %+v (want %+v)", len(got), len(want), st, wantSt)
	}
	wantIO := (after.Reads - before.Reads) + (after.Hits - before.Hits) + (after.Prefetched - before.Prefetched)
	gotIO := tr.Sum(obs.KindProbe, obs.APagesRead) + tr.Sum(obs.KindProbe, obs.ABufferHits) + tr.Sum(obs.KindProbe, obs.APagesPrefetched)
	if gotIO != wantIO {
		t.Errorf("trace attributes %d page fetches, storage counted %d", gotIO, wantIO)
	}
	if tr.Sum(obs.KindProbe, obs.ANodes) != int64(st.DAAll) {
		t.Errorf("trace nodes = %d, stats DAAll = %d", tr.Sum(obs.KindProbe, obs.ANodes), st.DAAll)
	}
}

// TestUntracedRangeAddsNoAllocs is the overhead contract on the hot
// path: evaluating a range query through the Ctx entry point without a
// trace must allocate exactly as much as the legacy entry point.
func TestUntracedRangeAddsNoAllocs(t *testing.T) {
	ds, ix := buildFixture(t, 2, 200, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 3, 10)
	eps := series.DistanceForCorrelation(64, 0.95)
	q := ds.Records[0]
	opts := RangeOptions{Mode: QRectSafe, Groups: EqualPartition(len(ts), 4)}
	ctx := context.Background()

	plain := testing.AllocsPerRun(20, func() {
		if _, _, err := ix.MTIndexRange(q, ts, eps, opts); err != nil {
			t.Fatal(err)
		}
	})
	withCtx := testing.AllocsPerRun(20, func() {
		if _, _, err := ix.MTIndexRangeCtx(ctx, q, ts, eps, opts); err != nil {
			t.Fatal(err)
		}
	})
	if withCtx > plain {
		t.Errorf("untraced Ctx path allocates %.0f/op, legacy path %.0f/op: instrumentation added %v allocs",
			withCtx, plain, withCtx-plain)
	}
}

// cancelAfter is a context whose Err() starts returning Canceled after a
// budget of successful polls — a deterministic way to cancel a batch
// mid-flight: the executor polls Err() exactly once per request, so
// exactly `budget` requests run regardless of scheduling.
type cancelAfter struct {
	context.Context
	mu     sync.Mutex
	budget int
}

func (c *cancelAfter) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 {
		return context.Canceled
	}
	c.budget--
	return nil
}

// TestExecutorCancellationSpans cancels a batch mid-flight and checks the
// trace accounts for every request: run queries close their spans clean,
// abandoned queries close theirs with the cancellation error — and the
// worker pool leaves no goroutines behind.
func TestExecutorCancellationSpans(t *testing.T) {
	ds, ix := buildFixture(t, 23, 100, 32, DefaultIndexOptions())
	ts := transform.MovingAverageSet(32, 3, 8)
	eps := series.DistanceForCorrelation(32, 0.9)
	reqs := make([]ExecRequest, 40)
	for i := range reqs {
		reqs[i] = ExecRequest{Record: ds.Records[i%len(ds.Records)], Transforms: ts, Eps: eps}
	}
	const budget = 10
	tr := obs.New()
	ctx := &cancelAfter{Context: obs.WithTrace(context.Background(), tr), budget: budget}

	goroutinesBefore := runtime.NumGoroutine()
	results := NewExecutor(ix, 4).Run(ctx, reqs)

	var ran, abandoned int
	for i, res := range results {
		if res.Err == nil {
			ran++
		} else if res.Err == context.Canceled {
			abandoned++
		} else {
			t.Fatalf("req %d: unexpected error %v", i, res.Err)
		}
	}
	if ran != budget || abandoned != len(reqs)-budget {
		t.Errorf("ran %d / abandoned %d, want %d / %d", ran, abandoned, budget, len(reqs)-budget)
	}

	spans := tr.Spans()
	var rootOK, rootErr int
	for _, sp := range spans {
		if sp.Kind() != obs.KindQuery {
			continue
		}
		if !sp.Done() {
			t.Errorf("span %q left open", sp.Label())
		}
		if sp.Err() == "" {
			rootOK++
		} else if strings.Contains(sp.Err(), "context canceled") {
			rootErr++
		} else {
			t.Errorf("span %q closed with unexpected error %q", sp.Label(), sp.Err())
		}
	}
	if rootOK != budget || rootErr != len(reqs)-budget {
		t.Errorf("trace shows %d clean / %d cancelled query spans, want %d / %d",
			rootOK, rootErr, budget, len(reqs)-budget)
	}

	// The worker pool must drain: poll until the goroutine count returns
	// to (at most) its pre-Run level.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, %d before Run", runtime.NumGoroutine(), goroutinesBefore)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// BenchmarkMTIndexRangeUntraced is the production fast path: the Ctx
// entry point with no trace in the context. Compare allocs/op against
// BenchmarkMTIndexRangeTraced to see the instrumentation cost.
func BenchmarkMTIndexRangeUntraced(b *testing.B) {
	ds, ix := buildFixture(b, 2, 400, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 3, 10)
	eps := series.DistanceForCorrelation(64, 0.95)
	q := ds.Records[0]
	opts := RangeOptions{Mode: QRectSafe, Groups: EqualPartition(len(ts), 4)}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.MTIndexRangeCtx(ctx, q, ts, eps, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMTIndexRangeTraced pays for span bookkeeping and per-probe
// I/O attribution (a fresh trace per query, as -explain uses it).
func BenchmarkMTIndexRangeTraced(b *testing.B) {
	ds, ix := buildFixture(b, 2, 400, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 3, 10)
	eps := series.DistanceForCorrelation(64, 0.95)
	q := ds.Records[0]
	opts := RangeOptions{Mode: QRectSafe, Groups: EqualPartition(len(ts), 4)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := obs.New()
		root := tr.Start(obs.KindQuery, "bench")
		ctx := obs.ContextWithSpan(obs.WithTrace(context.Background(), tr), root)
		if _, _, err := ix.MTIndexRangeCtx(ctx, q, ts, eps, opts); err != nil {
			b.Fatal(err)
		}
		root.End()
	}
}
