package core

import (
	"math"

	"tsq/internal/geom"
	"tsq/internal/transform"
)

// This file implements the DFT-prefix lower bound of the I/O-aware
// candidate pipeline: a distance bound computed from the indexed feature
// point alone, so a candidate whose bound already exceeds eps is
// rejected before its record page is fetched.
//
// Soundness is Parseval's theorem restricted to a coefficient subset.
// The predicate distance is D² = Σ_f |t(x)_f - t(y)_f|² over all n
// coefficients, every term non-negative, and the leaf entry stores
// exactly the inputs of terms 1..K (a point entry's Rect.Lo is the
// record's feature vector [mean, std, |F_1|, ∠F_1, ..., |F_K|, ∠F_K]).
// The partial sum over coefficients 1..K therefore lower-bounds D²; no
// qualifying record can be rejected. Under UseSymmetry the partial sum
// is doubled: for real series the mirror coefficient n-f conjugates
// coefficient f, and the built-in transformations act symmetrically on
// mirror pairs, so term n-f equals term f — the same Eq. 6 assumption
// the index's query rectangles already rely on. The comparison runs
// against transform.AbandonCutoff(eps), a hair above eps², so
// floating-point noise in the mirror coefficients can never turn the
// bound into a false dismissal.

// skipByPrefixLB reports whether the candidate at feature point feat is
// provably outside eps for every transformation of the group, using
// only the indexed coefficients. feat follows Record.Feature layout;
// the per-coefficient terms are the exact expressions of the
// DistancePolar / DistancePolarLeft kernels evaluated on coefficients
// 1..K.
func (ix *Index) skipByPrefixLB(feat geom.Point, sub []transform.Transform, q *Record, eps float64, oneSided bool) bool {
	cut := transform.AbandonCutoff(eps)
	sym := 1.0
	if ix.opts.UseSymmetry {
		sym = 2.0
	}
	for _, t := range sub {
		var s float64
		for j := 1; j <= ix.opts.K; j++ {
			mu := t.A[2*j]*feat[2*j] + t.B[2*j]
			var mv, dp float64
			if oneSided {
				mv = q.Mags[j]
				dp = t.A[2*j+1]*feat[2*j+1] + t.B[2*j+1] - q.Phases[j]
			} else {
				mv = t.A[2*j]*q.Mags[j] + t.B[2*j]
				dp = t.A[2*j+1] * (feat[2*j+1] - q.Phases[j])
			}
			s += mu*mu + mv*mv - 2*mu*mv*math.Cos(dp)
		}
		if sym*s <= cut {
			return false // this transformation may still qualify
		}
	}
	return true
}

// prefixLB returns the lower bound itself (min over the group) — the
// quantity skipByPrefixLB compares against eps. Exposed for tests: the
// pipeline only needs the boolean.
func (ix *Index) prefixLB(feat geom.Point, sub []transform.Transform, q *Record, oneSided bool) float64 {
	sym := 1.0
	if ix.opts.UseSymmetry {
		sym = 2.0
	}
	best := math.Inf(1)
	for _, t := range sub {
		var s float64
		for j := 1; j <= ix.opts.K; j++ {
			mu := t.A[2*j]*feat[2*j] + t.B[2*j]
			var mv, dp float64
			if oneSided {
				mv = q.Mags[j]
				dp = t.A[2*j+1]*feat[2*j+1] + t.B[2*j+1] - q.Phases[j]
			} else {
				mv = t.A[2*j]*q.Mags[j] + t.B[2*j]
				dp = t.A[2*j+1] * (feat[2*j+1] - q.Phases[j])
			}
			s += mu*mu + mv*mv - 2*mu*mv*math.Cos(dp)
		}
		if s < 0 {
			s = 0
		}
		if lb := math.Sqrt(sym * s); lb < best {
			best = lb
		}
	}
	return best
}
