package core

import (
	"math"

	"tsq/internal/geom"
	"tsq/internal/transform"
)

// This file implements the DFT-prefix lower bound of the I/O-aware
// candidate pipeline: a distance bound computed from the indexed feature
// point alone, so a candidate whose bound already exceeds eps is
// rejected before its record page is fetched.
//
// Soundness is Parseval's theorem restricted to a coefficient subset.
// The predicate distance is D² = Σ_f |t(x)_f - t(y)_f|² over all n
// coefficients, every term non-negative, and the leaf entry stores
// exactly the inputs of terms 1..K (a point entry's Rect.Lo is the
// record's feature vector [mean, std, |F_1|, ∠F_1, ..., |F_K|, ∠F_K]).
// The partial sum over coefficients 1..K therefore lower-bounds D²; no
// qualifying record can be rejected. Under UseSymmetry the partial sum
// is doubled: for real series the mirror coefficient n-f conjugates
// coefficient f, and the built-in transformations act symmetrically on
// mirror pairs, so term n-f equals term f — the same Eq. 6 assumption
// the index's query rectangles already rely on. The comparison runs
// against transform.AbandonCutoff(eps), a hair above eps², so
// floating-point noise in the mirror coefficients can never turn the
// bound into a false dismissal.
//
// The bound is evaluated as a three-tier cascade (lbCascade below):
// each tier is a weakening of the next, costs less to evaluate, and
// runs only on the survivors of the previous tier, so the common case
// — a candidate far from the query — is dismissed by a handful of
// multiplications with no trigonometry at all.
//
//	tier 0  magnitude-gap bound: per coefficient (|mu| - |mv|)², the
//	        reverse triangle inequality on the complex coefficients.
//	        Since cos ≤ 1, mu² + mv² - 2·mu·mv·cos(Δφ) ≥ (|mu|-|mv|)²,
//	        so the tier-0 sum never exceeds the exact prefix sum:
//	        anything it dismisses, the full bound would dismiss too.
//	        No cosine, no phase access. (The mean/std feature slots
//	        cannot contribute a tier: the predicate distance is over
//	        normal forms, which the query rectangle reflects by leaving
//	        those dimensions unconstrained.)
//	tier 1  exact first-coefficient term: the tier-0 gap for
//	        coefficient 1 is replaced by the exact polar term. The
//	        cosine is factored through the angle-addition identity —
//	        cos(±φ + c) = cos φ·cos c ∓ sin φ·sin c with c precomputed
//	        per transformation — so the whole transformation group
//	        shares one math.Sincos(φ₁) per candidate and the per-
//	        transformation work is multiply-add only. Every built-in
//	        transformation has phase multiplier ±1 (convolutions and
//	        shifts are pure offsets, Reverse negates); a general
//	        multiplier falls back to one direct math.Cos.
//	tier 2  exact full prefix: coefficients 2..K replaced the same
//	        way, yielding exactly the sum skipByPrefixLB computes.
//
// Each replacement only grows the sum (exact term ≥ gap term), so a
// transformation dismissed at a tier stays dismissed at every later
// tier and the cascade's final dismissals equal the flat bound's. A
// candidate is skipped when every transformation of the group is
// dismissed; the tier at which the last one fell is reported so the
// per-tier counters (SkippedLB0/1/2) show where pruning pays.

// lbTerm is the hoisted per-(transformation, coefficient) state of the
// cascade: the magnitude coefficients, the transformed query magnitude
// (candidate-independent), and the factored phase constants.
type lbTerm struct {
	aMag, bMag float64 // t.A[2j], t.B[2j]
	mv         float64 // transformed query magnitude for coefficient j
	absMv      float64 // |mv|, the tier-0 comparand
	aPh        float64 // t.A[2j+1], used only on the direct path
	cPh        float64 // constant phase offset c in cos(aPh·φ + c)
	cosC, sinC float64 // cos c, sin c for the factored fast path
	neg        bool    // phase multiplier -1 (Reverse): flip the sin sign
	direct     bool    // general multiplier: evaluate math.Cos directly
}

// lbCascade evaluates the tiered DFT-prefix lower bound for one
// verification call: one transformation group, one query, one eps. The
// constructor hoists everything candidate-independent — the abandon
// cutoff, the A/B coefficient loads, the transformed query magnitudes,
// and the factored phase constants — out of the per-candidate loop;
// skip then touches only the candidate's feature point. The scratch
// slices make a cascade single-goroutine; verifySerial builds one per
// call, so parallel verification shards never share one.
type lbCascade struct {
	k    int
	nt   int
	cut  float64
	sym  float64
	term []lbTerm // transformation-major: term[ti*k + (j-1)]

	// Per-candidate scratch. The candidate's (sin φ_j, cos φ_j) pairs
	// are computed lazily — only when some transformation survives its
	// tier-0 bound — and shared by the whole group through the factored
	// phase constants, so a candidate costs at most K Sincos calls no
	// matter how many transformations the group holds.
	sinPhi  []float64
	cosPhi  []float64
	havePhi []bool
}

// newLBCascade builds the cascade for one transformation group.
func (ix *Index) newLBCascade(sub []transform.Transform, q *Record, eps float64, oneSided bool) *lbCascade {
	k := ix.opts.K
	c := &lbCascade{
		k:       k,
		nt:      len(sub),
		cut:     transform.AbandonCutoff(eps),
		sym:     1,
		term:    make([]lbTerm, len(sub)*k),
		sinPhi:  make([]float64, k),
		cosPhi:  make([]float64, k),
		havePhi: make([]bool, k),
	}
	if ix.opts.UseSymmetry {
		c.sym = 2
	}
	for ti, t := range sub {
		for j := 1; j <= k; j++ {
			tm := &c.term[ti*k+j-1]
			tm.aMag = t.A[2*j]
			tm.bMag = t.B[2*j]
			aPh := t.A[2*j+1]
			if oneSided {
				// dp = aPh·φ + B[2j+1] - qPhase  =  aPh·φ + c
				tm.mv = q.Mags[j]
				tm.cPh = t.B[2*j+1] - q.Phases[j]
			} else {
				// dp = aPh·(φ - qPhase)  =  aPh·φ + c
				tm.mv = t.A[2*j]*q.Mags[j] + t.B[2*j]
				tm.cPh = -aPh * q.Phases[j]
			}
			tm.absMv = math.Abs(tm.mv)
			tm.aPh = aPh
			switch aPh {
			case 1:
				tm.sinC, tm.cosC = math.Sincos(tm.cPh)
			case -1:
				tm.neg = true
				tm.sinC, tm.cosC = math.Sincos(tm.cPh)
			default:
				tm.direct = true
			}
		}
	}
	return c
}

// cos evaluates cos(aPh·φ + c) from the candidate's shared
// (sin φ, cos φ) pair: cos(φ+c) = cosφ·cosc - sinφ·sinc and
// cos(-φ+c) = cosφ·cosc + sinφ·sinc. The direct path recomputes the
// cosine for a general phase multiplier.
func (tm *lbTerm) cos(phi, sinPhi, cosPhi float64) float64 {
	if tm.direct {
		return math.Cos(tm.aPh*phi + tm.cPh)
	}
	if tm.neg {
		return cosPhi*tm.cosC + sinPhi*tm.sinC
	}
	return cosPhi*tm.cosC - sinPhi*tm.sinC
}

// skip reports whether the candidate at feature point feat is provably
// outside eps for every transformation of the group. The return value
// is the deepest tier (0, 1 or 2) any dismissal needed, or -1 when some
// transformation may still qualify and the candidate must be verified.
//
// The walk is transformation-major so the keep decision exits as early
// as the flat bound does: the first transformation whose exact prefix
// bound fits under the cutoff returns immediately, without touching the
// rest of the group. The tiers order the work per transformation — the
// cosine-free magnitude-gap bound first, the exact coefficient terms
// only for transformations that survive it — and the trigonometry that
// tier 1/2 work does need is shared: one lazily computed Sincos per
// coefficient serves every transformation through the factored phase
// constants.
func (c *lbCascade) skip(feat geom.Point) int {
	for j := 0; j < c.k; j++ {
		c.havePhi[j] = false
	}
	maxTier := 0
	for ti := 0; ti < c.nt; ti++ {
		base := ti * c.k
		// Tier 0 for this transformation: magnitude gaps, no
		// trigonometry and no stores — most transformations die here,
		// and the few that survive recompute the two multiplies below.
		var s float64
		for j := 0; j < c.k; j++ {
			tm := &c.term[base+j]
			mu := tm.aMag*feat[2*(j+1)] + tm.bMag
			gap := math.Abs(mu) - tm.absMv
			s += gap * gap
		}
		if c.sym*s > c.cut {
			continue // dismissed at tier 0
		}
		// Tiers 1 and 2: replace gap terms by exact polar terms,
		// coefficient 1 first. Each replacement only grows the sum, so
		// crossing the cutoff mid-way proves the full prefix bound
		// would cross it too.
		dismissedAt := -1
		for j := 0; j < c.k; j++ {
			tm := &c.term[base+j]
			phi := feat[2*(j+1)+1]
			if !c.havePhi[j] {
				c.sinPhi[j], c.cosPhi[j] = math.Sincos(phi)
				c.havePhi[j] = true
			}
			cosd := tm.cos(phi, c.sinPhi[j], c.cosPhi[j])
			mu := tm.aMag*feat[2*(j+1)] + tm.bMag
			gap := math.Abs(mu) - tm.absMv
			s += -(gap * gap) + (mu*mu + tm.mv*tm.mv - 2*mu*tm.mv*cosd)
			if c.sym*s > c.cut {
				if j == 0 {
					dismissedAt = 1
				} else {
					dismissedAt = 2
				}
				break
			}
		}
		if dismissedAt < 0 {
			return -1 // survives the full prefix bound: verify
		}
		if dismissedAt > maxTier {
			maxTier = dismissedAt
		}
	}
	return maxTier
}

// skipByPrefixLB reports whether the candidate at feature point feat is
// provably outside eps for every transformation of the group, using
// only the indexed coefficients. feat follows Record.Feature layout;
// the per-coefficient terms are the exact expressions of the
// DistancePolar / DistancePolarLeft kernels evaluated on coefficients
// 1..K.
//
// This is the flat, single-tier form, recomputing the cutoff and the
// coefficient loads per call — the verification path of the original
// I/O-aware pipeline, kept verbatim as the RangeOptions.FlatLB mode so
// benchmarks can A/B the cascade against it, and as the reference the
// cascade's dismissals are tested against.
func (ix *Index) skipByPrefixLB(feat geom.Point, sub []transform.Transform, q *Record, eps float64, oneSided bool) bool {
	cut := transform.AbandonCutoff(eps)
	sym := 1.0
	if ix.opts.UseSymmetry {
		sym = 2.0
	}
	for _, t := range sub {
		var s float64
		for j := 1; j <= ix.opts.K; j++ {
			mu := t.A[2*j]*feat[2*j] + t.B[2*j]
			var mv, dp float64
			if oneSided {
				mv = q.Mags[j]
				dp = t.A[2*j+1]*feat[2*j+1] + t.B[2*j+1] - q.Phases[j]
			} else {
				mv = t.A[2*j]*q.Mags[j] + t.B[2*j]
				dp = t.A[2*j+1] * (feat[2*j+1] - q.Phases[j])
			}
			s += mu*mu + mv*mv - 2*mu*mv*math.Cos(dp)
		}
		if sym*s <= cut {
			return false // this transformation may still qualify
		}
	}
	return true
}

// prefixLB returns the lower bound itself (min over the group) — the
// quantity skipByPrefixLB compares against eps. Exposed for tests: the
// pipeline only needs the boolean.
func (ix *Index) prefixLB(feat geom.Point, sub []transform.Transform, q *Record, oneSided bool) float64 {
	sym := 1.0
	if ix.opts.UseSymmetry {
		sym = 2.0
	}
	best := math.Inf(1)
	for _, t := range sub {
		var s float64
		for j := 1; j <= ix.opts.K; j++ {
			mu := t.A[2*j]*feat[2*j] + t.B[2*j]
			var mv, dp float64
			if oneSided {
				mv = q.Mags[j]
				dp = t.A[2*j+1]*feat[2*j+1] + t.B[2*j+1] - q.Phases[j]
			} else {
				mv = t.A[2*j]*q.Mags[j] + t.B[2*j]
				dp = t.A[2*j+1] * (feat[2*j+1] - q.Phases[j])
			}
			s += mu*mu + mv*mv - 2*mu*mv*math.Cos(dp)
		}
		if s < 0 {
			s = 0
		}
		if lb := math.Sqrt(sym * s); lb < best {
			best = lb
		}
	}
	return best
}
