package core

// Shard parity: the sharded engine must return exactly the single-tree
// answer on every query shape. At one shard that identity is bitwise
// (same matches, same stats, same I/O accounting — the passthrough adds
// nothing); at N > 1 the answers must be identical after the
// deterministic merge, while the per-shard statistics are allowed to
// differ (N smaller trees do different amounts of work).

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"tsq/internal/datagen"
	"tsq/internal/series"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

func TestShardOfDeterministicAndUniform(t *testing.T) {
	// Same (g, n) must always land on the same shard, inside range.
	counts := make([]int, 4)
	for g := int64(0); g < 4000; g++ {
		s := ShardOf(g, 4)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%d, 4) = %d out of range", g, s)
		}
		if s2 := ShardOf(g, 4); s2 != s {
			t.Fatalf("ShardOf(%d, 4) unstable: %d then %d", g, s, s2)
		}
		counts[s]++
	}
	// The mix must spread sequential ids: no shard may be empty or hold
	// the vast majority (a modulo without mixing would stripe perfectly,
	// a broken mix can collapse).
	for s, c := range counts {
		if c < 500 || c > 1500 {
			t.Errorf("shard %d holds %d of 4000 sequential ids; partition is skewed", s, c)
		}
	}
	if ShardOf(123, 1) != 0 || ShardOf(123, 0) != 0 {
		t.Error("n <= 1 must map everything to shard 0")
	}
}

func TestShardLayoutRoundTrip(t *testing.T) {
	local, global := shardLayout(1000, 3)
	for g := int64(0); g < 1000; g++ {
		s := ShardOf(g, 3)
		if got := global[s][local[g]]; got != g {
			t.Fatalf("layout round trip broken at %d: got %d", g, got)
		}
	}
	// Local ids must ascend with global ids within each shard (the heap
	// files append positionally).
	for s := range global {
		for l := 1; l < len(global[s]); l++ {
			if global[s][l] <= global[s][l-1] {
				t.Fatalf("shard %d local order not ascending at %d", s, l)
			}
		}
	}
}

// sortNN orders NN matches by the sharded merge comparator so single-
// and multi-shard answers compare exactly (the single-tree search only
// orders by distance).
func sortNN(ms []NNMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		if ms[i].RecordID != ms[j].RecordID {
			return ms[i].RecordID < ms[j].RecordID
		}
		return ms[i].TransformIdx < ms[j].TransformIdx
	})
}

func sortJoin(ms []JoinMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].IDA != ms[j].IDA {
			return ms[i].IDA < ms[j].IDA
		}
		if ms[i].IDB != ms[j].IDB {
			return ms[i].IDB < ms[j].IDB
		}
		return ms[i].TransformIdx < ms[j].TransformIdx
	})
}

func sortClosest(ms []JoinMatch) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Distance != ms[j].Distance {
			return ms[i].Distance < ms[j].Distance
		}
		if ms[i].IDA != ms[j].IDA {
			return ms[i].IDA < ms[j].IDA
		}
		return ms[i].IDB < ms[j].IDB
	})
}

// TestWrapIndexBitIdentity pins the N=1 contract: BuildSharded at one
// shard and a bare BuildIndex over the same dataset return bit-identical
// answers AND bit-identical statistics on every query shape — the
// passthrough must add no spans, no merge, no accounting.
func TestWrapIndexBitIdentity(t *testing.T) {
	ds, ix := buildFixture(t, 7, 300, 64, DefaultIndexOptions())
	sh, err := BuildSharded(ds, 1, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sh.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", sh.ShardCount())
	}
	if sh.Dataset() != ds {
		t.Fatal("one-shard Sharded must share the dataset pointer")
	}
	ts := transform.MovingAverageSet(64, 5, 20)
	eps := series.DistanceForCorrelation(64, 0.90)
	q := ds.Records[13]

	wm, wst, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	gm, gst, err := sh.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gm, wm) {
		t.Errorf("range answers differ: %d vs %d", len(gm), len(wm))
	}
	if noTime(gst) != noTime(wst) {
		t.Errorf("range stats differ:\n got %+v\nwant %+v", noTime(gst), noTime(wst))
	}

	wn, wnst, err := ix.MTIndexNN(q, ts, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	gn, gnst, err := sh.MTIndexNN(q, ts, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gn, wn) {
		t.Errorf("NN answers differ:\n got %+v\nwant %+v", gn, wn)
	}
	if noTime(gnst) != noTime(wnst) {
		t.Errorf("NN stats differ:\n got %+v\nwant %+v", noTime(gnst), noTime(wnst))
	}

	wj, wjst, err := ix.MTIndexJoin(ts[:4], eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	gj, gjst, err := sh.MTIndexJoin(ts[:4], eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gj, wj) {
		t.Errorf("join answers differ: %d vs %d", len(gj), len(wj))
	}
	if noTime(gjst) != noTime(wjst) {
		t.Errorf("join stats differ:\n got %+v\nwant %+v", noTime(gjst), noTime(wjst))
	}

	wc, _, err := ix.MTIndexClosestPairs(ts[:3], 5)
	if err != nil {
		t.Fatal(err)
	}
	gc, _, err := sh.MTIndexClosestPairs(ts[:3], 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gc, wc) {
		t.Errorf("closest-pairs answers differ:\n got %+v\nwant %+v", gc, wc)
	}

	wr, wrst, err := ix.RawRange(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	gr, grst, err := sh.RawRange(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gr, wr) {
		t.Errorf("raw answers differ: %d vs %d", len(gr), len(wr))
	}
	if noTime(grst) != noTime(wrst) {
		t.Errorf("raw stats differ:\n got %+v\nwant %+v", noTime(grst), noTime(wrst))
	}
}

// TestShardedAnswerParity is the scatter-gather exactness claim: for any
// shard count the merged answers equal the single-tree answers on every
// query shape, in the deterministic merge order.
func TestShardedAnswerParity(t *testing.T) {
	ds, ix := buildFixture(t, 11, 260, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 16)
	eps := series.DistanceForCorrelation(64, 0.90)

	for _, nshards := range []int{2, 3, 4} {
		// Rebuild the dataset for each shard count: BuildSharded
		// partitions Records by shallow copy, and the baseline must stay
		// untouched.
		sh, err := BuildSharded(ds, nshards, DefaultIndexOptions())
		if err != nil {
			t.Fatal(err)
		}
		if sh.ShardCount() != nshards {
			t.Fatalf("ShardCount = %d, want %d", sh.ShardCount(), nshards)
		}
		if err := sh.Verify(); err != nil {
			t.Fatalf("%d shards: verify: %v", nshards, err)
		}

		for trial := 0; trial < 8; trial++ {
			q := ds.Records[(trial*31)%len(ds.Records)]

			want, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := sh.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
			if err != nil {
				t.Fatal(err)
			}
			SortMatches(want)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%d shards trial %d: range mismatch (%d vs %d matches)", nshards, trial, len(got), len(want))
			}

			wantST, _, err := ix.STIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
			if err != nil {
				t.Fatal(err)
			}
			gotST, _, err := sh.STIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
			if err != nil {
				t.Fatal(err)
			}
			SortMatches(wantST)
			if !reflect.DeepEqual(gotST, wantST) {
				t.Fatalf("%d shards trial %d: ST range mismatch", nshards, trial)
			}

			wantNN, _, err := ix.MTIndexNN(q, ts, 7, false)
			if err != nil {
				t.Fatal(err)
			}
			gotNN, _, err := sh.MTIndexNN(q, ts, 7, false)
			if err != nil {
				t.Fatal(err)
			}
			sortNN(wantNN)
			if !reflect.DeepEqual(gotNN, wantNN) {
				t.Fatalf("%d shards trial %d: NN mismatch\n got %+v\nwant %+v", nshards, trial, gotNN, wantNN)
			}

			wantRaw, _, err := ix.RawRange(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			gotRaw, _, err := sh.RawRange(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			sort.Slice(wantRaw, func(i, j int) bool { return wantRaw[i].RecordID < wantRaw[j].RecordID })
			if !reflect.DeepEqual(gotRaw, wantRaw) {
				t.Fatalf("%d shards trial %d: raw range mismatch", nshards, trial)
			}
		}

		wantJ, _, err := ix.MTIndexJoin(ts[:4], eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		gotJ, _, err := sh.MTIndexJoin(ts[:4], eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		sortJoin(wantJ)
		sortJoin(gotJ)
		if !reflect.DeepEqual(gotJ, wantJ) {
			t.Fatalf("%d shards: join mismatch (%d vs %d pairs)", nshards, len(gotJ), len(wantJ))
		}

		wantSJ, _, err := ix.STIndexJoin(ts[:4], eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		gotSJ, _, err := sh.STIndexJoin(ts[:4], eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		sortJoin(wantSJ)
		sortJoin(gotSJ)
		if !reflect.DeepEqual(gotSJ, wantSJ) {
			t.Fatalf("%d shards: ST join mismatch", nshards)
		}

		wantC, _, err := ix.MTIndexClosestPairs(ts[:3], 8)
		if err != nil {
			t.Fatal(err)
		}
		gotC, _, err := sh.MTIndexClosestPairs(ts[:3], 8)
		if err != nil {
			t.Fatal(err)
		}
		sortClosest(wantC)
		sortClosest(gotC)
		if !reflect.DeepEqual(gotC, wantC) {
			t.Fatalf("%d shards: closest pairs mismatch\n got %+v\nwant %+v", nshards, gotC, wantC)
		}
	}
}

// TestShardedNNSelfExclusion: the query record's owning shard sees it
// under its local id, so a stored query excludes itself exactly as the
// single tree does — on every shard count.
func TestShardedNNSelfExclusion(t *testing.T) {
	ds, _ := buildFixture(t, 3, 120, 32, DefaultIndexOptions())
	ts := transform.MovingAverageSet(32, 3, 6)
	for _, nshards := range []int{1, 2, 4} {
		sh, err := BuildSharded(ds, nshards, DefaultIndexOptions())
		if err != nil {
			t.Fatal(err)
		}
		for _, qid := range []int{0, 7, 63, 119} {
			nn, _, err := sh.MTIndexNN(ds.Records[qid], ts, 3, false)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range nn {
				if m.RecordID == int64(qid) {
					t.Fatalf("%d shards: query %d returned itself", nshards, qid)
				}
			}
			if len(nn) != 3 {
				t.Fatalf("%d shards: query %d returned %d of 3 neighbors", nshards, qid, len(nn))
			}
		}
	}
}

// TestShardedEmptyShards: more shards than records leaves some shards
// empty; every query shape must still answer exactly.
func TestShardedEmptyShards(t *testing.T) {
	ds, err := NewDataset(datagen.RandomWalks(5, 3, 32), nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildSharded(ds, 8, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Verify(); err != nil {
		t.Fatal(err)
	}
	ts := transform.MovingAverageSet(32, 3, 6)
	q := ds.Records[0]
	want, _ := SeqScanRange(ds, q, ts, 50, RangeOptions{})
	got, _, err := sh.MTIndexRange(q, ts, 50, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(matchKeySet(got), matchKeySet(want)) {
		t.Fatalf("empty-shard range mismatch: %d vs %d", len(got), len(want))
	}
	wantJ, _ := SeqScanJoin(ds, ts, 50)
	gotJ, _, err := sh.MTIndexJoin(ts, 50, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	if len(gotJ) != len(wantJ) {
		t.Fatalf("empty-shard join mismatch: %d vs %d", len(gotJ), len(wantJ))
	}
	if _, _, err := sh.MTIndexClosestPairs(ts, 2); err != nil {
		t.Fatal(err)
	}
}

// TestShardedInsertDelete: inserts route to the shard the partition
// function names, deletes tombstone through it, and queries stay exact
// against a fresh single-tree baseline afterwards.
func TestShardedInsertDelete(t *testing.T) {
	ss := datagen.RandomWalks(17, 80, 32)
	ds, err := NewDataset(ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := BuildSharded(ds, 3, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	extra := datagen.RandomWalks(99, 5, 32)
	for i, s := range extra {
		id, err := sh.Insert("", s)
		if err != nil {
			t.Fatal(err)
		}
		if id != int64(80+i) {
			t.Fatalf("insert %d got id %d, want %d", i, id, 80+i)
		}
	}
	if err := sh.Delete(40); err != nil {
		t.Fatal(err)
	}
	if err := sh.Delete(40); err == nil {
		t.Fatal("double delete must fail")
	}
	if err := sh.Verify(); err != nil {
		t.Fatal(err)
	}

	// Baseline: single tree over the same final state.
	all := append(append([]series.Series{}, ss...), extra...)
	ds2, err := NewDataset(all, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := BuildIndex(ds2, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ix2.Delete(40); err != nil {
		t.Fatal(err)
	}

	ts := transform.MovingAverageSet(32, 3, 6)
	eps := series.DistanceForCorrelation(32, 0.85)
	q := sh.Dataset().Records[81]
	want, _, err := ix2.MTIndexRange(ds2.Records[81], ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sh.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	SortMatches(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-insert/delete range mismatch: %d vs %d", len(got), len(want))
	}
	for _, m := range got {
		if m.RecordID == 40 {
			t.Fatal("deleted record still matches")
		}
	}
}

// TestShardedHealth: the combined report sums the shards and carries one
// sub-report per shard.
func TestShardedHealth(t *testing.T) {
	ds, _ := buildFixture(t, 23, 90, 32, DefaultIndexOptions())
	sh, err := BuildSharded(ds, 3, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := transform.MovingAverageSet(32, 3, 6)
	hr, err := sh.Health(context.Background(), ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hr.ShardCount != 3 || len(hr.Shards) != 3 {
		t.Fatalf("ShardCount=%d len(Shards)=%d, want 3/3", hr.ShardCount, len(hr.Shards))
	}
	total := 0
	for _, s := range hr.Shards {
		total += s.Series
		if s.Tree == nil {
			t.Error("per-shard report missing tree section")
		}
	}
	if total != 90 || hr.Series != 90 {
		t.Fatalf("shard series sum %d, combined %d, want 90", total, hr.Series)
	}
	if len(hr.Groups) == 0 {
		t.Error("combined report missing group section")
	}
	if hr.String() == "" {
		t.Error("text rendering empty")
	}

	// Single-shard report must stay exactly the classic report: no shard
	// fields.
	one, err := BuildSharded(ds, 1, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	hr1, err := one.Health(context.Background(), ts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hr1.ShardCount != 0 || hr1.Shards != nil {
		t.Fatalf("single-shard report grew shard fields: %+v", hr1)
	}
}

// TestShardedTreeStatsAndCapacity: estimator inputs stay well-formed
// under sharding.
func TestShardedTreeStats(t *testing.T) {
	ds, _ := buildFixture(t, 29, 150, 32, DefaultIndexOptions())
	sh, err := BuildSharded(ds, 4, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats, world, err := sh.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) == 0 || len(world.Lo) == 0 {
		t.Fatalf("degenerate tree stats: %d levels", len(stats))
	}
	nodes := 0
	for _, ls := range stats {
		nodes += ls.Nodes
	}
	if nodes == 0 {
		t.Fatal("no nodes counted")
	}
	cap0, err := sh.AvgLeafCapacity()
	if err != nil {
		t.Fatal(err)
	}
	if cap0 <= 0 {
		t.Fatalf("AvgLeafCapacity = %v", cap0)
	}
}

// TestAssembleShardsRejectsWrongCounts: a shard set whose record counts
// contradict the partition function must be rejected with the shard
// named — this is the open-path corruption check.
func TestAssembleShardsRejectsWrongCounts(t *testing.T) {
	ds, err := NewDataset(datagen.RandomWalks(31, 40, 32), nil)
	if err != nil {
		t.Fatal(err)
	}
	locals, err := PartitionDataset(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the shard datasets: totals match but the per-shard counts
	// contradict ShardOf (the two shards of 40 sequential ids are
	// essentially never the same size; pick a seed where they differ).
	if len(locals[0].Records) == len(locals[1].Records) {
		t.Skip("partition happened to be exactly even; corruption undetectable by count")
	}
	var ixs [2]*Index
	for i, l := range []*Dataset{locals[1], locals[0]} {
		ixs[i], err = BuildIndex(l, DefaultIndexOptions())
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := AssembleShards(ixs[:]); err == nil {
		t.Fatal("swapped shards assembled without error")
	}
}

// TestBuildShardedRejectsSharedManager: one manager cannot back N
// independent shards.
func TestBuildShardedRejectsSharedManager(t *testing.T) {
	ds, _ := buildFixture(t, 37, 20, 32, DefaultIndexOptions())
	mgr := storage.NewManager(storage.Options{PageSize: 4096})
	defer func() { _ = mgr.Close() }()
	_, err := BuildSharded(ds, 2, IndexOptions{K: 2, PageSize: 4096, Paged: true, Manager: mgr})
	if err == nil {
		t.Fatal("shared-manager multi-shard build must fail")
	}
}
