package core

import (
	"fmt"
	"sort"

	"tsq/internal/geom"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// Match is one answer of a similarity range query: record r and
// transformation index ti (into the query's transformation set) such that
// D(t(r), t(q)) <= eps.
type Match struct {
	RecordID     int64
	TransformIdx int
	// Distance is the exact distance, or -1 when the match was certified
	// by the ordering property (Sec. 4.4) without computing it.
	Distance float64
}

// QueryStats reports the work a query performed, in the units of the
// paper's cost model (Eq. 18/20).
type QueryStats struct {
	// DAAll counts index node accesses at all levels (DA_all).
	DAAll int
	// DALeaf counts leaf node accesses (DA_leaf).
	DALeaf int
	// Candidates counts candidate records retrieved for verification.
	Candidates int
	// Comparisons counts full-record distance evaluations.
	Comparisons int
	// IndexSearches counts index traversals (|T| for ST-index, the number
	// of transformation rectangles for MT-index).
	IndexSearches int
}

// Add accumulates other into s.
func (s *QueryStats) Add(other QueryStats) {
	s.DAAll += other.DAAll
	s.DALeaf += other.DALeaf
	s.Candidates += other.Candidates
	s.Comparisons += other.Comparisons
	s.IndexSearches += other.IndexSearches
}

// RangeOptions tunes the index-based range algorithms.
type RangeOptions struct {
	// Mode selects the query rectangle construction (safe or paper).
	Mode QRectMode
	// Groups partitions the transformation set (by index) into one MBR
	// per group, the Sec. 4.3 improvement. Nil means a single group
	// containing every transformation.
	Groups [][]int
	// UseOrdering enables the Sec. 4.4 binary search when a group is a
	// pure scale set orderable per Definition 1. Ignored in one-sided
	// mode (Definition 1 is a statement about the two-sided predicate).
	UseOrdering bool
	// Workers parallelizes candidate verification (and the sequential
	// scan, via SeqScanRangeParallel) across that many goroutines when
	// above 1. Answers are identical to serial evaluation.
	Workers int
	// OneSided switches the predicate from the symmetric Query-1 form
	// D(t(s), t(q)) to the literal Algorithm-1 form D(t(s), q): the
	// transformation is applied to the stored sequence only. This is the
	// useful semantics for alignment transformations such as time shifts,
	// which are unitary and cancel when applied to both sides. The query
	// is compared as given; pre-transform it (e.g. by a momentum) with
	// Record.ApplyTransform when the predicate calls for it.
	OneSided bool
}

// SeqScanRange answers Query 1 by scanning the whole relation: for every
// record and transformation, evaluate the distance predicate. With
// UseOrdering and an orderable set, each record costs O(log |T|)
// comparisons instead of |T|. Only the UseOrdering and OneSided options
// apply.
func SeqScanRange(ds *Dataset, q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats) {
	var st QueryStats
	var out []Match
	ordered := orderedPrefix(ts, opts.UseOrdering && !opts.OneSided)
	for _, r := range ds.Records {
		if r == nil { // deleted
			continue
		}
		st.Candidates++
		if ordered != nil {
			out = appendOrderedMatches(out, ordered, r, q, eps, &st, identityIndexes(len(ts)))
			continue
		}
		for i, t := range ts {
			st.Comparisons++
			d := distancePred(t, r, q, opts.OneSided)
			if d <= eps {
				out = append(out, Match{RecordID: r.ID, TransformIdx: i, Distance: d})
			}
		}
	}
	return out, st
}

// distancePred evaluates the query predicate distance for one record and
// transformation under either semantics.
func distancePred(t transform.Transform, r, q *Record, oneSided bool) float64 {
	if oneSided {
		return t.DistancePolarLeft(r.Mags, r.Phases, q.Mags, q.Phases)
	}
	return t.DistancePolar(r.Mags, r.Phases, q.Mags, q.Phases)
}

// STIndexRange answers Query 1 with one index traversal per transformation
// (the ST-index algorithm): equivalent to MT-index with singleton groups.
func (ix *Index) STIndexRange(q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	groups := make([][]int, len(ts))
	for i := range ts {
		groups[i] = []int{i}
	}
	opts.Groups = groups
	return ix.MTIndexRange(q, ts, eps, opts)
}

// MTIndexRange answers Query 1 with Algorithm 1: build the transformation
// MBR(s), traverse the index once per MBR applying Eq. 12 to every index
// rectangle, and verify candidates against every transformation in the
// rectangle (binary search when ordered). With opts.Workers > 1 and more
// than one transformation rectangle, the rectangles are probed
// concurrently (see mtRangeParallel); matches and statistics are
// identical to the serial evaluation either way.
func (ix *Index) MTIndexRange(q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	if len(ts) == 0 {
		return nil, QueryStats{}, nil
	}
	groups := opts.Groups
	if groups == nil {
		groups = [][]int{identityIndexes(len(ts))}
	}
	if opts.Workers > 1 && len(groups) > 1 {
		return ix.mtRangeParallel(q, ts, groups, eps, opts)
	}
	var st QueryStats
	var out []Match
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		matches, gst, err := ix.rangeGroup(q, ts, g, eps, opts)
		st.Add(gst)
		if err != nil {
			return nil, st, err
		}
		out = append(out, matches...)
	}
	return out, st, nil
}

// rangeGroup runs the filter-and-verify pipeline for one transformation
// rectangle: lift the group's MBR, build the query rectangle, traverse
// the index, and verify the candidates (in parallel when opts.Workers >
// 1). It is called from the serial group loop and from mtRangeParallel;
// it only reads index state, so any number of rangeGroup calls may run
// concurrently.
func (ix *Index) rangeGroup(q *Record, ts []transform.Transform, g []int, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	var st QueryStats
	sub := make([]transform.Transform, len(g))
	for i, idx := range g {
		if idx < 0 || idx >= len(ts) {
			return nil, st, fmt.Errorf("core: group index %d out of range", idx)
		}
		sub[i] = ts[idx]
	}
	mult, add := ix.fullMBRs(sub)
	var qrect geom.Rect
	var phaseDims []bool
	if opts.OneSided {
		qrect, phaseDims = ix.oneSidedQueryRect(q, eps, opts.Mode)
	} else {
		qrect = ix.queryRect(q, sub, eps, opts.Mode)
	}
	st.IndexSearches++

	candidates, err := ix.filter(mult, add, qrect, phaseDims, &st)
	if err != nil {
		return nil, st, err
	}
	ordered := orderedPrefix(sub, opts.UseOrdering && !opts.OneSided)
	var matches []Match
	var vst QueryStats
	if opts.Workers > 1 && len(candidates) > 1 {
		matches, vst, err = ix.verifyParallel(candidates, sub, g, q, eps, ordered, opts)
	} else {
		matches, vst, err = ix.verifySerial(candidates, sub, g, q, eps, ordered, opts)
	}
	st.Add(vst)
	if err != nil {
		return nil, st, err
	}
	return matches, st, nil
}

// filter runs the Algorithm 1 traversal for one transformation rectangle,
// returning candidate record ids. phaseDims, when non-nil, selects
// modulo-2*pi comparison for the marked dimensions (one-sided mode).
func (ix *Index) filter(mult, add, qrect geom.Rect, phaseDims []bool, st *QueryStats) ([]int64, error) {
	var out []int64
	var walk func(id storage.PageID) error
	walk = func(id storage.PageID) error {
		n, err := ix.tree.Load(id)
		if err != nil {
			return err
		}
		st.DAAll++
		if n.Leaf {
			st.DALeaf++
		}
		for _, e := range n.Entries {
			y := transform.ApplyMBRs(mult, add, e.Rect)
			if phaseDims != nil {
				if !intersectsModular(y, qrect, phaseDims) {
					continue
				}
			} else if !y.Intersects(qrect) {
				continue
			}
			if n.Leaf {
				out = append(out, e.Rec)
			} else if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(ix.tree.Root()); err != nil {
		return nil, err
	}
	return out, nil
}

// orderedPrefix returns an ordered set over ts when ordering is requested
// and ts is a pure positive scale set (Lemma 2); nil otherwise. The
// returned set's transforms are ts in ascending-factor order along with
// the permutation back into ts.
type orderedSet struct {
	set  transform.OrderedSet
	perm []int // perm[i] = index into the original slice
}

func orderedPrefix(ts []transform.Transform, useOrdering bool) *orderedSet {
	if !useOrdering {
		return nil
	}
	factors, ok := transform.OrderableAsScales(ts)
	if !ok {
		return nil
	}
	perm := identityIndexes(len(ts))
	sort.Slice(perm, func(a, b int) bool { return factors[perm[a]] < factors[perm[b]] })
	sorted := make([]transform.Transform, len(ts))
	for i, p := range perm {
		sorted[i] = ts[p]
	}
	return &orderedSet{set: transform.OrderedSet{Transforms: sorted}, perm: perm}
}

// appendOrderedMatches finds the largest qualifying scale by binary search
// (Definition 1 guarantees all smaller scales qualify) and appends one
// match per qualifying transformation. groupIdx maps local positions to
// the caller's transformation indices.
func appendOrderedMatches(out []Match, o *orderedSet, r, q *Record, eps float64, st *QueryStats, groupIdx []int) []Match {
	k := o.set.LargestQualifying(func(t transform.Transform) bool {
		st.Comparisons++
		return t.DistancePolar(r.Mags, r.Phases, q.Mags, q.Phases) <= eps
	})
	for i := 0; i <= k; i++ {
		out = append(out, Match{RecordID: r.ID, TransformIdx: groupIdx[o.perm[i]], Distance: -1})
	}
	return out
}

func identityIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// SortMatches orders matches by record id then transformation index, for
// deterministic comparison in tests and tools.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].RecordID != ms[j].RecordID {
			return ms[i].RecordID < ms[j].RecordID
		}
		return ms[i].TransformIdx < ms[j].TransformIdx
	})
}
