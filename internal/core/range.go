package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"tsq/internal/geom"
	"tsq/internal/obs"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// Match is one answer of a similarity range query: record r and
// transformation index ti (into the query's transformation set) such that
// D(t(r), t(q)) <= eps.
type Match struct {
	RecordID     int64
	TransformIdx int
	// Distance is the exact distance, or -1 when the match was certified
	// by the ordering property (Sec. 4.4) without computing it.
	Distance float64
}

// QueryStats reports the work a query performed, in the units of the
// paper's cost model (Eq. 18/20).
type QueryStats struct {
	// DAAll counts index node accesses at all levels (DA_all).
	DAAll int
	// DALeaf counts leaf node accesses (DA_leaf).
	DALeaf int
	// Candidates counts candidate records retrieved for verification.
	Candidates int
	// Comparisons counts full-record distance evaluations.
	Comparisons int
	// IndexSearches counts index traversals (|T| for ST-index, the number
	// of transformation rectangles for MT-index).
	IndexSearches int
	// SkippedLB counts candidates rejected by the DFT-prefix lower bound
	// before their record was retrieved; they are not counted in
	// Candidates (nothing was fetched) and save both the page read and
	// the full-record comparisons. It is always the sum of the per-tier
	// counters below (the flat FlatLB mode attributes everything to
	// tier 2, the full prefix bound).
	SkippedLB int
	// SkippedLB0 counts candidates dismissed by the tier-0 magnitude-gap
	// bound of the verification cascade: no cosine was evaluated.
	SkippedLB0 int
	// SkippedLB1 counts candidates that survived tier 0 but were
	// dismissed once the first coefficient's exact term replaced its gap
	// (one shared Sincos per candidate).
	SkippedLB1 int
	// SkippedLB2 counts candidates dismissed only by the full DFT-prefix
	// bound over all K indexed coefficients.
	SkippedLB2 int
	// Abandoned counts distance evaluations cut short by the
	// early-abandoning cutoff. Each is still counted in Comparisons (it
	// is one predicate evaluation); this reports how many of them
	// stopped before the full n coefficients.
	Abandoned int
	// LBTimeNs is the wall time, in nanoseconds, spent in the
	// lower-bound stage of verification — the loop that decides skip
	// or fetch for every filter-admitted candidate (cascade or flat,
	// including the cascade's per-call construction). It is zero under
	// NaiveVerify, which runs no lower bound. Dividing by
	// Candidates+SkippedLB gives the per-candidate decision cost the
	// tiered cascade optimizes; under parallel verification the shard
	// times sum, so it is CPU time, not elapsed time.
	LBTimeNs int64
	// AllocBytes/Mallocs/GCCycles/GCPauseNs are process-wide runtime
	// deltas sampled around the query when resource attribution is
	// enabled (zero otherwise). Under concurrent queries they include
	// neighbors' work — they attribute resource pressure to a query
	// shape, they do not meter it exactly.
	AllocBytes int64
	Mallocs    int64
	GCCycles   int64
	GCPauseNs  int64
}

// Add accumulates other into s.
func (s *QueryStats) Add(other QueryStats) {
	s.DAAll += other.DAAll
	s.DALeaf += other.DALeaf
	s.Candidates += other.Candidates
	s.Comparisons += other.Comparisons
	s.IndexSearches += other.IndexSearches
	s.SkippedLB += other.SkippedLB
	s.SkippedLB0 += other.SkippedLB0
	s.SkippedLB1 += other.SkippedLB1
	s.SkippedLB2 += other.SkippedLB2
	s.Abandoned += other.Abandoned
	s.LBTimeNs += other.LBTimeNs
	s.AllocBytes += other.AllocBytes
	s.Mallocs += other.Mallocs
	s.GCCycles += other.GCCycles
	s.GCPauseNs += other.GCPauseNs
}

// RangeOptions tunes the index-based range algorithms.
type RangeOptions struct {
	// Mode selects the query rectangle construction (safe or paper).
	Mode QRectMode
	// Groups partitions the transformation set (by index) into one MBR
	// per group, the Sec. 4.3 improvement. Nil means a single group
	// containing every transformation.
	Groups [][]int
	// UseOrdering enables the Sec. 4.4 binary search when a group is a
	// pure scale set orderable per Definition 1. Ignored in one-sided
	// mode (Definition 1 is a statement about the two-sided predicate).
	UseOrdering bool
	// Workers parallelizes candidate verification (and the sequential
	// scan, via SeqScanRangeParallel) across that many goroutines when
	// above 1. Answers are identical to serial evaluation.
	Workers int
	// OneSided switches the predicate from the symmetric Query-1 form
	// D(t(s), t(q)) to the literal Algorithm-1 form D(t(s), q): the
	// transformation is applied to the stored sequence only. This is the
	// useful semantics for alignment transformations such as time shifts,
	// which are unitary and cancel when applied to both sides. The query
	// is compared as given; pre-transform it (e.g. by a momentum) with
	// Record.ApplyTransform when the predicate calls for it.
	OneSided bool
	// NaiveVerify disables the I/O-aware candidate pipeline — the
	// DFT-prefix lower-bound skip, the page-ordered batched fetch, and
	// the early-abandoning distance kernels — and verifies candidates
	// record-at-a-time in index return order with full distance
	// computations. The answers are bit-identical either way; the flag
	// exists for parity tests and before/after benchmarks.
	NaiveVerify bool
	// FlatLB keeps the candidate pipeline but evaluates the DFT-prefix
	// lower bound in its original flat, single-tier form (per-candidate
	// cutoff and coefficient loads, one cosine per transformation and
	// coefficient) instead of the tiered cascade. Both forms dismiss
	// provably-out-of-range candidates only, so answers are identical;
	// the flag exists to A/B the cascade's per-candidate cost.
	FlatLB bool
	// ShardID and ShardTotal identify the shard a scatter-gather probe
	// runs in. When ShardTotal > 1 every probe span carries an AShard
	// attribute; the zero values leave single-shard traces untouched.
	ShardID    int
	ShardTotal int
}

// SeqScanRange answers Query 1 by scanning the whole relation: for every
// record and transformation, evaluate the distance predicate. With
// UseOrdering and an orderable set, each record costs O(log |T|)
// comparisons instead of |T|. Only the UseOrdering and OneSided options
// apply.
func SeqScanRange(ds *Dataset, q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats) {
	var st QueryStats
	var out []Match
	ordered := orderedPrefix(ts, opts.UseOrdering && !opts.OneSided)
	for _, r := range ds.Records {
		if r == nil { // deleted
			continue
		}
		st.Candidates++
		if ordered != nil {
			out = appendOrderedMatches(out, ordered, r, q, eps, &st, identityIndexes(len(ts)), opts.NaiveVerify)
			continue
		}
		for i, t := range ts {
			st.Comparisons++
			if !opts.NaiveVerify {
				d, abandoned := distancePredAbandon(t, r, q, eps, opts.OneSided)
				if abandoned {
					st.Abandoned++
					continue
				}
				if d <= eps {
					out = append(out, Match{RecordID: r.ID, TransformIdx: i, Distance: d})
				}
				continue
			}
			d := distancePred(t, r, q, opts.OneSided)
			if d <= eps {
				out = append(out, Match{RecordID: r.ID, TransformIdx: i, Distance: d})
			}
		}
	}
	return out, st
}

// SeqScanRangeCtx evaluates the sequential scan (parallel when
// opts.Workers > 1) under the trace in ctx: a KindScan span records the
// records scanned, comparisons made and matches found. With no span in
// ctx (or a nil ctx) it is exactly SeqScanRange / SeqScanRangeParallel.
func SeqScanRangeCtx(ctx context.Context, ds *Dataset, q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats) {
	parent := obs.SpanFromContext(ctx)
	var sp *obs.Span
	if parent != nil {
		sp = parent.Child(obs.KindScan, fmt.Sprintf("seq scan (%d records, %d transforms)", len(ds.Records), len(ts)))
	}
	var out []Match
	var st QueryStats
	if opts.Workers > 1 {
		out, st = SeqScanRangeParallel(ds, q, ts, eps, opts, opts.Workers)
	} else {
		out, st = SeqScanRange(ds, q, ts, eps, opts)
	}
	if sp != nil {
		sp.Set(obs.ACandidates, int64(st.Candidates))
		sp.Set(obs.AComparisons, int64(st.Comparisons))
		sp.Set(obs.AMatches, int64(len(out)))
		sp.Set(obs.ATransforms, int64(len(ts)))
		sp.End()
	}
	return out, st
}

// distancePred evaluates the query predicate distance for one record and
// transformation under either semantics.
func distancePred(t transform.Transform, r, q *Record, oneSided bool) float64 {
	if oneSided {
		return t.DistancePolarLeft(r.Mags, r.Phases, q.Mags, q.Phases)
	}
	return t.DistancePolar(r.Mags, r.Phases, q.Mags, q.Phases)
}

// distancePredAbandon is distancePred through the early-abandoning
// kernels: when the partial sum proves the distance exceeds eps, it
// stops and reports abandoned=true (the candidate is a non-match for
// this transformation). Non-abandoned evaluations return the
// bit-identical distancePred value.
func distancePredAbandon(t transform.Transform, r, q *Record, eps float64, oneSided bool) (float64, bool) {
	if oneSided {
		return t.DistancePolarLeftAbandon(r.Mags, r.Phases, q.Mags, q.Phases, eps)
	}
	return t.DistancePolarAbandon(r.Mags, r.Phases, q.Mags, q.Phases, eps)
}

// STIndexRange answers Query 1 with one index traversal per transformation
// (the ST-index algorithm): equivalent to MT-index with singleton groups.
func (ix *Index) STIndexRange(q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	return ix.STIndexRangeCtx(nil, q, ts, eps, opts)
}

// STIndexRangeCtx is STIndexRange under the trace and I/O attribution
// carried in ctx.
func (ix *Index) STIndexRangeCtx(ctx context.Context, q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	groups := make([][]int, len(ts))
	for i := range ts {
		groups[i] = []int{i}
	}
	opts.Groups = groups
	return ix.MTIndexRangeCtx(ctx, q, ts, eps, opts)
}

// MTIndexRange answers Query 1 with Algorithm 1: build the transformation
// MBR(s), traverse the index once per MBR applying Eq. 12 to every index
// rectangle, and verify candidates against every transformation in the
// rectangle (binary search when ordered). With opts.Workers > 1 and more
// than one transformation rectangle, the rectangles are probed
// concurrently (see mtRangeParallel); matches and statistics are
// identical to the serial evaluation either way.
func (ix *Index) MTIndexRange(q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	return ix.MTIndexRangeCtx(nil, q, ts, eps, opts)
}

// MTIndexRangeCtx is MTIndexRange under the trace carried in ctx: when
// ctx holds a parent span (obs.ContextWithSpan), every transformation
// rectangle contributes a KindProbe span with KindFilter and KindVerify
// children, and the probe's page I/O is attributed via storage.QueryIO.
// A nil ctx — or one without a span — takes the exact untraced path:
// the only added work is one context lookup per query, no allocations.
func (ix *Index) MTIndexRangeCtx(ctx context.Context, q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	if len(ts) == 0 {
		return nil, QueryStats{}, nil
	}
	groups := opts.Groups
	if groups == nil {
		groups = [][]int{identityIndexes(len(ts))}
	}
	if opts.Workers > 1 && len(groups) > 1 {
		return ix.mtRangeParallel(ctx, q, ts, groups, eps, opts)
	}
	var st QueryStats
	var out []Match
	for gi, g := range groups {
		if len(g) == 0 {
			continue
		}
		matches, gst, err := ix.rangeGroup(ctx, q, ts, g, gi, len(groups), eps, opts)
		st.Add(gst)
		if err != nil {
			return nil, st, err
		}
		out = append(out, matches...)
	}
	return out, st, nil
}

// rangeGroup runs the filter-and-verify pipeline for one transformation
// rectangle: lift the group's MBR, build the query rectangle, traverse
// the index, and verify the candidates (in parallel when opts.Workers >
// 1). It is called from the serial group loop and from mtRangeParallel;
// it only reads index state, so any number of rangeGroup calls may run
// concurrently. When ctx carries a parent span, the pipeline is recorded
// as a KindProbe span (one per transformation rectangle, owned by the
// goroutine running this call) with KindFilter and KindVerify children,
// and every page this probe touches is attributed to it.
func (ix *Index) rangeGroup(ctx context.Context, q *Record, ts []transform.Transform, g []int, gi, ngroups int, eps float64, opts RangeOptions) (_ []Match, _ QueryStats, retErr error) {
	var st QueryStats
	parent := obs.SpanFromContext(ctx)
	var probe *obs.Span
	var qio *storage.QueryIO
	if parent != nil {
		probe = parent.Child(obs.KindProbe, fmt.Sprintf("probe %d/%d", gi+1, ngroups))
		probe.Set(obs.ATransforms, int64(len(g)))
		probe.Set(obs.AGroupIndex, int64(gi))
		if opts.ShardTotal > 1 {
			probe.Set(obs.AShard, int64(opts.ShardID))
		}
		qio = &storage.QueryIO{}
		ctx = storage.WithQueryIO(ctx, qio)
		defer func() {
			probe.Set(obs.APagesRead, qio.Reads.Load())
			probe.Set(obs.ABufferHits, qio.Hits.Load())
			probe.Set(obs.APagesPrefetched, qio.Prefetched.Load())
			probe.EndErr(retErr)
		}()
	}
	sub := make([]transform.Transform, len(g))
	for i, idx := range g {
		if idx < 0 || idx >= len(ts) {
			return nil, st, fmt.Errorf("core: group index %d out of range", idx)
		}
		sub[i] = ts[idx]
	}
	mult, add := ix.fullMBRs(sub)
	var qrect geom.Rect
	var phaseDims []bool
	if opts.OneSided {
		qrect, phaseDims = ix.oneSidedQueryRect(q, eps, opts.Mode)
	} else {
		qrect = ix.queryRect(q, sub, eps, opts.Mode)
	}
	st.IndexSearches++

	var fsp *obs.Span
	if probe != nil {
		fsp = probe.Child(obs.KindFilter, "filter")
	}
	candidates, err := ix.filterCtx(ctx, mult, add, qrect, phaseDims, &st, fsp)
	fsp.EndErr(err)
	if err != nil {
		return nil, st, err
	}
	ordered := orderedPrefix(sub, opts.UseOrdering && !opts.OneSided)
	var vsp *obs.Span
	if probe != nil {
		vsp = probe.Child(obs.KindVerify, "verify")
	}
	var matches []Match
	var vst QueryStats
	var falsePos int
	if opts.Workers > 1 && len(candidates) > 1 {
		matches, vst, falsePos, err = ix.verifyParallel(ctx, candidates, sub, g, q, eps, ordered, opts)
	} else {
		matches, vst, falsePos, err = ix.verifySerial(ctx, candidates, sub, g, q, eps, ordered, opts)
	}
	if vsp != nil {
		vsp.Set(obs.ACandidates, int64(vst.Candidates))
		vsp.Set(obs.AComparisons, int64(vst.Comparisons))
		vsp.Set(obs.AMatches, int64(len(matches)))
		vsp.Set(obs.AFalsePositives, int64(falsePos))
		vsp.Set(obs.ASkippedLB, int64(vst.SkippedLB))
		vsp.Set(obs.ASkippedLB0, int64(vst.SkippedLB0))
		vsp.Set(obs.ASkippedLB1, int64(vst.SkippedLB1))
		vsp.Set(obs.ASkippedLB2, int64(vst.SkippedLB2))
		vsp.Set(obs.ALBNanos, vst.LBTimeNs)
		vsp.Set(obs.AAbandoned, int64(vst.Abandoned))
		vsp.EndErr(err)
		// Rolled up on the probe so per-group health folds read one span.
		probe.Set(obs.ACandidates, int64(vst.Candidates))
		probe.Set(obs.AMatches, int64(len(matches)))
		probe.Set(obs.AFalsePositives, int64(falsePos))
	}
	st.Add(vst)
	if err != nil {
		return nil, st, err
	}
	return matches, st, nil
}

// candidate is one record admitted by the index filter: its id plus the
// feature point stored in the leaf entry (the rectangle of a point entry
// is degenerate, so Rect.Lo is the record's indexed feature vector).
// Carrying the point out of the traversal lets verification apply the
// DFT-prefix lower bound before fetching the record page; nodes are
// decoded fresh per load, so the slice reference stays valid.
type candidate struct {
	rec  int64
	feat geom.Point
}

// filter runs the Algorithm 1 traversal for one transformation rectangle,
// returning the candidates. phaseDims, when non-nil, selects
// modulo-2*pi comparison for the marked dimensions (one-sided mode).
func (ix *Index) filter(mult, add, qrect geom.Rect, phaseDims []bool, st *QueryStats) ([]candidate, error) {
	return ix.filterCtx(nil, mult, add, qrect, phaseDims, st, nil)
}

// filterCtx is filter with observability: node loads go through
// rtree.LoadCtx so a storage.QueryIO in ctx sees them, and when sp is
// non-nil the traversal counters (nodes, leaves, pruned subtrees,
// candidates) are recorded on it. The caller closes sp.
func (ix *Index) filterCtx(ctx context.Context, mult, add, qrect geom.Rect, phaseDims []bool, st *QueryStats, sp *obs.Span) ([]candidate, error) {
	da0, dl0 := st.DAAll, st.DALeaf
	var pruned int64
	var out []candidate
	// One scratch rectangle serves every internal entry of the walk
	// (ApplyMBRs would allocate two points per entry inspected); leaf
	// entries take the fused point path below and need no rectangle.
	dim := ix.dim
	scratchLo := make(geom.Point, dim)
	scratchHi := make(geom.Point, dim)
	var walk func(id storage.PageID) error
	walk = func(id storage.PageID) error {
		n, err := ix.tree.LoadCtx(ctx, id)
		if err != nil {
			return err
		}
		st.DAAll++
		if n.Leaf {
			st.DALeaf++
			// Leaf-major fast path: every leaf entry of the feature
			// index is a point (Rect.Lo == Rect.Hi == the record's
			// feature vector), and decoded nodes store all low corners
			// in one contiguous block, so the admission test scans flat
			// float64 data — the transformed-interval intersection test
			// fused per dimension with early exit, no rectangle built.
			if flat := n.FlatLo(); flat != nil {
				for i := range n.Entries {
					feat := geom.Point(flat[i*dim : (i+1)*dim : (i+1)*dim])
					if leafPointAdmit(feat, mult, add, qrect, phaseDims) {
						out = append(out, candidate{rec: n.Entries[i].Rec, feat: feat})
					}
				}
				return nil
			}
		}
		for _, e := range n.Entries {
			y := transform.ApplyMBRsInto(scratchLo, scratchHi, mult, add, e.Rect)
			if phaseDims != nil {
				if !intersectsModular(y, qrect, phaseDims) {
					if !n.Leaf {
						pruned++
					}
					continue
				}
			} else if !y.Intersects(qrect) {
				if !n.Leaf {
					pruned++
				}
				continue
			}
			if n.Leaf {
				out = append(out, candidate{rec: e.Rec, feat: e.Rect.Lo})
			} else if err := walk(e.Child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(ix.tree.Root()); err != nil {
		return nil, err
	}
	if sp != nil {
		sp.Set(obs.ANodes, int64(st.DAAll-da0))
		sp.Set(obs.ALeaves, int64(st.DALeaf-dl0))
		sp.Set(obs.APruned, pruned)
		sp.Set(obs.ACandidates, int64(len(out)))
	}
	return out, nil
}

// leafPointAdmit is the leaf-entry admission test of the Algorithm 1
// traversal, specialized to point entries: it computes, per dimension,
// the transformed interval of ApplyMBRs on the degenerate rectangle
// [feat, feat] and tests it against the query rectangle immediately,
// with early exit on the first separating dimension. For a point the
// four corner products collapse to two, so the result is identical to
// ApplyMBRs + Intersects (or intersectsModular for the marked phase
// dimensions) without building a rectangle.
func leafPointAdmit(feat geom.Point, mult, add geom.Rect, qrect geom.Rect, phaseDims []bool) bool {
	const twoPi = 2 * math.Pi
	for i, v := range feat {
		p1 := mult.Lo[i] * v
		p3 := mult.Hi[i] * v
		lo, hi := p1, p3
		if p3 < p1 {
			lo, hi = p3, p1
		}
		lo += add.Lo[i]
		hi += add.Hi[i]
		if phaseDims != nil && phaseDims[i] {
			ok := false
			for k := -2.0; k <= 2.0; k++ {
				shift := k * twoPi
				if lo+shift <= qrect.Hi[i] && qrect.Lo[i] <= hi+shift {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
			continue
		}
		if lo > qrect.Hi[i] || qrect.Lo[i] > hi {
			return false
		}
	}
	return true
}

// orderedPrefix returns an ordered set over ts when ordering is requested
// and ts is a pure positive scale set (Lemma 2); nil otherwise. The
// returned set's transforms are ts in ascending-factor order along with
// the permutation back into ts.
type orderedSet struct {
	set  transform.OrderedSet
	perm []int // perm[i] = index into the original slice
}

func orderedPrefix(ts []transform.Transform, useOrdering bool) *orderedSet {
	if !useOrdering {
		return nil
	}
	factors, ok := transform.OrderableAsScales(ts)
	if !ok {
		return nil
	}
	perm := identityIndexes(len(ts))
	sort.Slice(perm, func(a, b int) bool { return factors[perm[a]] < factors[perm[b]] })
	sorted := make([]transform.Transform, len(ts))
	for i, p := range perm {
		sorted[i] = ts[p]
	}
	return &orderedSet{set: transform.OrderedSet{Transforms: sorted}, perm: perm}
}

// appendOrderedMatches finds the largest qualifying scale by binary search
// (Definition 1 guarantees all smaller scales qualify) and appends one
// match per qualifying transformation. groupIdx maps local positions to
// the caller's transformation indices. Unless naive, the predicate runs
// through the early-abandoning kernel; the qualify/fail decisions (and
// hence the binary search path) are identical either way.
func appendOrderedMatches(out []Match, o *orderedSet, r, q *Record, eps float64, st *QueryStats, groupIdx []int, naive bool) []Match {
	k := o.set.LargestQualifying(func(t transform.Transform) bool {
		st.Comparisons++
		if naive {
			return t.DistancePolar(r.Mags, r.Phases, q.Mags, q.Phases) <= eps
		}
		d, abandoned := t.DistancePolarAbandon(r.Mags, r.Phases, q.Mags, q.Phases, eps)
		if abandoned {
			st.Abandoned++
			return false
		}
		return d <= eps
	})
	for i := 0; i <= k; i++ {
		out = append(out, Match{RecordID: r.ID, TransformIdx: groupIdx[o.perm[i]], Distance: -1})
	}
	return out
}

func identityIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// SortMatches orders matches by record id then transformation index, for
// deterministic comparison in tests and tools.
func SortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].RecordID != ms[j].RecordID {
			return ms[i].RecordID < ms[j].RecordID
		}
		return ms[i].TransformIdx < ms[j].TransformIdx
	})
}
