package core

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"tsq/internal/geom"
	"tsq/internal/rtree"
	"tsq/internal/series"
	"tsq/internal/storage"
	"tsq/internal/transform"
)

// This file implements the sharded index: the dataset is partitioned
// into N independent shards by a deterministic hash of the global
// series id, each shard owning its own R*-tree, heap file, buffer pool
// and storage counters. Shards are built in parallel and queried
// scatter-gather with a deterministic merge (range: id-ordered union;
// NN: per-shard top-k merged by (distance, id); join/closest-pairs:
// intra-shard walks plus pairwise cross-shard walks). With one shard
// every method is a direct passthrough to the underlying Index — no
// extra spans, no merge, no id translation — so the single-shard
// engine is bit-identical to the pre-shard one.

// ShardOf is the partition function: the shard owning global series id
// g in an n-shard layout. It is a fixed (splitmix64-style) integer mix
// reduced mod n, so the assignment is deterministic across processes,
// uniform even for the sequential ids the loaders produce, and depends
// only on (g, n) — the layout of a file set can always be re-derived.
func ShardOf(g int64, n int) int {
	if n <= 1 {
		return 0
	}
	x := uint64(g)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// shardLayout derives the global<->local id mapping of an n-shard
// layout over ids 0..total-1: local[g] is g's id within its shard, and
// global[s][l] is the global id of shard s's l-th record. Local ids are
// assigned in ascending global-id order, which the per-shard heap files
// rely on (records append positionally).
func shardLayout(total int64, n int) (local []int64, global [][]int64) {
	local = make([]int64, total)
	global = make([][]int64, n)
	for g := int64(0); g < total; g++ {
		s := ShardOf(g, n)
		local[g] = int64(len(global[s]))
		global[s] = append(global[s], g)
	}
	return local, global
}

// PartitionDataset splits a dataset into n per-shard datasets following
// ShardOf. Each local record is a shallow copy of the global one with
// its ID rewritten to the local ordinal (the series, spectra and name
// are shared, not duplicated). The dataset must be tombstone-free —
// partitioning happens at build time, before any delete.
func PartitionDataset(ds *Dataset, n int) ([]*Dataset, error) {
	local, _ := shardLayout(int64(len(ds.Records)), n)
	out := make([]*Dataset, n)
	for s := 0; s < n; s++ {
		out[s] = &Dataset{N: ds.N}
	}
	for g, r := range ds.Records {
		if r == nil {
			return nil, fmt.Errorf("core: cannot partition dataset with deleted record %d", g)
		}
		r2 := *r
		r2.ID = local[g]
		out[ShardOf(int64(g), n)].Records = append(out[ShardOf(int64(g), n)].Records, &r2)
	}
	return out, nil
}

// Sharded is N independent feature indexes queried scatter-gather. It
// exposes the same query surface as Index; the tsq facade always talks
// to a Sharded, which at one shard is a zero-cost passthrough.
type Sharded struct {
	ds     *Dataset // global dataset; at one shard, identical to shards[0].Dataset()
	shards []*Index
	// local[g] is global id g's id within shard ShardOf(g, n); nil at
	// one shard, where local and global ids coincide.
	local []int64
	// global[s][l] is the global id of shard s's record l.
	global [][]int64
}

// WrapIndex presents a single Index as a one-shard Sharded. Every
// method passes straight through.
func WrapIndex(ix *Index) *Sharded {
	return &Sharded{ds: ix.Dataset(), shards: []*Index{ix}}
}

// BuildSharded partitions the dataset into nshards shards and builds
// their indexes in parallel, one goroutine per shard. nshards <= 1
// builds a single Index over ds itself — exactly the unsharded build.
// opts applies to every shard; opts.Manager must be nil for a
// multi-shard build (each shard owns its own manager and buffer pool).
func BuildSharded(ds *Dataset, nshards int, opts IndexOptions) (*Sharded, error) {
	if nshards <= 1 {
		ix, err := BuildIndex(ds, opts)
		if err != nil {
			return nil, err
		}
		return WrapIndex(ix), nil
	}
	if opts.Manager != nil {
		return nil, fmt.Errorf("core: multi-shard build cannot share one storage manager")
	}
	locals, err := PartitionDataset(ds, nshards)
	if err != nil {
		return nil, err
	}
	shards := make([]*Index, nshards)
	errs := make([]error, nshards)
	var wg sync.WaitGroup
	for s := 0; s < nshards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			o := opts
			if len(locals[s].Records) == 0 {
				// STR bulk loading needs at least one item; an empty
				// shard gets an empty insert-built tree.
				o.BulkLoad = false
			}
			shards[s], errs[s] = BuildIndex(locals[s], o)
		}(s)
	}
	wg.Wait()
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: build shard %d: %w", s, err)
		}
	}
	return assemble(ds, shards)
}

// AssembleShards reassembles a Sharded from independently opened
// per-shard indexes (the persistence layer's open path). The global
// dataset and id mapping are re-derived from the shard record counts;
// a count that contradicts the partition function is a corruption and
// names the offending shard.
func AssembleShards(shards []*Index) (*Sharded, error) {
	if len(shards) == 1 {
		return WrapIndex(shards[0]), nil
	}
	var total int64
	for _, ix := range shards {
		total += int64(len(ix.Dataset().Records))
	}
	n := len(shards)
	local, global := shardLayout(total, n)
	ds := &Dataset{N: shards[0].Dataset().N, Records: make([]*Record, total)}
	for s, ix := range shards {
		sd := ix.Dataset()
		if sd.N != ds.N {
			return nil, fmt.Errorf("core: shard %d: series length %d, shard 0 has %d", s, sd.N, ds.N)
		}
		if ix.Options().K != shards[0].Options().K {
			return nil, fmt.Errorf("core: shard %d: k=%d, shard 0 has k=%d", s, ix.Options().K, shards[0].Options().K)
		}
		if len(sd.Records) != len(global[s]) {
			return nil, fmt.Errorf("core: shard %d: %d records, partition of %d ids expects %d",
				s, len(sd.Records), total, len(global[s]))
		}
		for l, r := range sd.Records {
			if r == nil { // tombstone
				continue
			}
			r2 := *r
			r2.ID = global[s][l]
			ds.Records[r2.ID] = &r2
		}
	}
	return &Sharded{ds: ds, shards: shards, local: local, global: global}, nil
}

// assemble wires an already-partitioned build (global dataset known)
// without rebuilding records.
func assemble(ds *Dataset, shards []*Index) (*Sharded, error) {
	local, global := shardLayout(int64(len(ds.Records)), len(shards))
	return &Sharded{ds: ds, shards: shards, local: local, global: global}, nil
}

func (s *Sharded) single() bool { return len(s.shards) == 1 }

// ShardCount returns the number of shards (1 for an unsharded DB).
func (s *Sharded) ShardCount() int { return len(s.shards) }

// Shard returns shard i's index.
func (s *Sharded) Shard(i int) *Index { return s.shards[i] }

// Dataset returns the global dataset (ids are global).
func (s *Sharded) Dataset() *Dataset { return s.ds }

// Options returns the index options (identical across shards).
func (s *Sharded) Options() IndexOptions { return s.shards[0].Options() }

// Paged reports whether the shards are disk-backed.
func (s *Sharded) Paged() bool { return s.shards[0].Heap() != nil }

// PageSize returns the storage page size (identical across shards).
func (s *Sharded) PageSize() int { return s.shards[0].Manager().PageSize() }

// NumPages sums the allocated pages across shards.
func (s *Sharded) NumPages() int {
	total := 0
	for _, ix := range s.shards {
		total += ix.Manager().NumPages()
	}
	return total
}

// Height returns the maximum tree height across shards.
func (s *Sharded) Height() int {
	h := 0
	for _, ix := range s.shards {
		if th := ix.Tree().Height(); th > h {
			h = th
		}
	}
	return h
}

// Close closes every shard — folding each shard's WAL first when one
// is attached and healthy — returning the first error but closing all.
func (s *Sharded) Close() error {
	var first error
	for _, ix := range s.shards {
		if err := ix.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Checkpoint folds every shard's WAL into its main file (no-op for
// shards without one), returning the first error but attempting all.
func (s *Sharded) Checkpoint() error {
	var first error
	for _, ix := range s.shards {
		if err := ix.Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DiskStats sums the storage counters across shards.
func (s *Sharded) DiskStats() storage.Stats {
	if s.single() {
		return s.shards[0].DiskStats()
	}
	var total storage.Stats
	for _, ix := range s.shards {
		total = addStats(total, ix.DiskStats())
	}
	return total
}

// ResetDiskStats resets every shard's storage counters.
func (s *Sharded) ResetDiskStats() {
	for _, ix := range s.shards {
		ix.ResetDiskStats()
	}
}

// DropBuffer empties every shard's buffer pool.
func (s *Sharded) DropBuffer() {
	for _, ix := range s.shards {
		ix.DropBuffer()
	}
}

func addStats(a, b storage.Stats) storage.Stats {
	a.Reads += b.Reads
	a.Writes += b.Writes
	a.Allocs += b.Allocs
	a.Frees += b.Frees
	a.Hits += b.Hits
	a.Prefetched += b.Prefetched
	a.IOErrors += b.IOErrors
	a.ChecksumFailures += b.ChecksumFailures
	return a
}

// locate maps a global id to its (shard, local id).
func (s *Sharded) locate(g int64) (int, int64) {
	if s.single() {
		return 0, g
	}
	return ShardOf(g, len(s.shards)), s.local[g]
}

// globalID maps shard sh's local id l back to the global id.
func (s *Sharded) globalID(sh int, l int64) int64 {
	if s.single() {
		return l
	}
	return s.global[sh][l]
}

// fetchGlobal retrieves the record with global id g through its owning
// shard (counting that shard's page I/O), with the ID translated back
// to global. nil, nil marks a deleted record.
func (s *Sharded) fetchGlobal(g int64) (*Record, error) {
	sh, l := s.locate(g)
	r, err := s.shards[sh].fetch(l)
	if r == nil || err != nil {
		return nil, err
	}
	r2 := *r
	r2.ID = g
	return &r2, nil
}

// scatter runs fn once per shard, concurrently, and returns the first
// error in shard order (so error reporting is deterministic).
func (s *Sharded) scatter(fn func(sh int, ix *Index) error) error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for sh := range s.shards {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			errs[sh] = fn(sh, s.shards[sh])
		}(sh)
	}
	wg.Wait()
	for sh, err := range errs {
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
	}
	return nil
}

// shardQuery returns the query record as shard sh should see it: the
// owning shard receives the query under its local id (NN self-
// exclusion keeps working), every other shard under id -1.
func (s *Sharded) shardQuery(q *Record, sh int) *Record {
	if q.ID < 0 || q.ID >= int64(len(s.local)) {
		return q
	}
	q2 := *q
	if ShardOf(q.ID, len(s.shards)) == sh {
		q2.ID = s.local[q.ID]
	} else {
		q2.ID = -1
	}
	return &q2
}

// MTIndexRange is MTIndexRangeCtx without a trace context.
func (s *Sharded) MTIndexRange(q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	return s.MTIndexRangeCtx(nil, q, ts, eps, opts)
}

// MTIndexRangeCtx answers a range query scatter-gather: every shard
// runs the unchanged MT-index pipeline (filter, LB cascade, batched
// fetch, early abandoning) over its own tree, concurrently; the
// per-shard answers are translated to global ids and merged into the
// deterministic (RecordID, TransformIdx) order. Statistics sum in
// shard order. With one shard this is a passthrough.
func (s *Sharded) MTIndexRangeCtx(ctx context.Context, q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	if s.single() {
		return s.shards[0].MTIndexRangeCtx(ctx, q, ts, eps, opts)
	}
	n := len(s.shards)
	matches := make([][]Match, n)
	stats := make([]QueryStats, n)
	err := s.scatter(func(sh int, ix *Index) error {
		o := opts
		o.ShardID, o.ShardTotal = sh, n
		m, st, err := ix.MTIndexRangeCtx(ctx, q, ts, eps, o)
		if err != nil {
			return err
		}
		for i := range m {
			m[i].RecordID = s.globalID(sh, m[i].RecordID)
		}
		matches[sh], stats[sh] = m, st
		return nil
	})
	var st QueryStats
	for _, s := range stats {
		st.Add(s)
	}
	if err != nil {
		return nil, st, err
	}
	var out []Match
	for _, m := range matches {
		out = append(out, m...)
	}
	SortMatches(out)
	return out, st, nil
}

// STIndexRange is STIndexRangeCtx without a trace context.
func (s *Sharded) STIndexRange(q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	return s.STIndexRangeCtx(nil, q, ts, eps, opts)
}

// STIndexRangeCtx runs the range query with singleton groups (one
// index probe per transformation) on every shard.
func (s *Sharded) STIndexRangeCtx(ctx context.Context, q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error) {
	if s.single() {
		return s.shards[0].STIndexRangeCtx(ctx, q, ts, eps, opts)
	}
	groups := make([][]int, len(ts))
	for i := range ts {
		groups[i] = []int{i}
	}
	opts.Groups = groups
	return s.MTIndexRangeCtx(ctx, q, ts, eps, opts)
}

// MTIndexNN is MTIndexNNCtx without a trace context.
func (s *Sharded) MTIndexNN(q *Record, ts []transform.Transform, k int, oneSided bool) ([]NNMatch, QueryStats, error) {
	return s.MTIndexNNCtx(nil, q, ts, k, oneSided)
}

// MTIndexNNCtx answers a k-NN query scatter-gather: every shard runs
// the unchanged best-first search for its own top k, concurrently; the
// per-shard candidate lists are translated to global ids, merged by
// (distance, id, transform) and truncated to k. The query record is
// handed to its owning shard under its local id so self-exclusion
// matches the single-tree semantics, and as an anonymous query (-1)
// elsewhere. With one shard this is a passthrough.
func (s *Sharded) MTIndexNNCtx(ctx context.Context, q *Record, ts []transform.Transform, k int, oneSided bool) ([]NNMatch, QueryStats, error) {
	if s.single() {
		return s.shards[0].MTIndexNNCtx(ctx, q, ts, k, oneSided)
	}
	n := len(s.shards)
	matches := make([][]NNMatch, n)
	stats := make([]QueryStats, n)
	err := s.scatter(func(sh int, ix *Index) error {
		m, st, err := ix.mtIndexNNShard(ctx, s.shardQuery(q, sh), ts, k, oneSided, sh)
		if err != nil {
			return err
		}
		for i := range m {
			m[i].RecordID = s.globalID(sh, m[i].RecordID)
		}
		matches[sh], stats[sh] = m, st
		return nil
	})
	var st QueryStats
	for _, s := range stats {
		st.Add(s)
	}
	if err != nil {
		return nil, st, err
	}
	var out []NNMatch
	for _, m := range matches {
		out = append(out, m...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		if out[i].RecordID != out[j].RecordID {
			return out[i].RecordID < out[j].RecordID
		}
		return out[i].TransformIdx < out[j].TransformIdx
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, st, nil
}

// PlanRange is PlanRangeCtx without a trace context.
func (s *Sharded) PlanRange(q *Record, ts []transform.Transform, eps float64, mode QRectMode, params CostParams) (*Plan, error) {
	return s.PlanRangeCtx(nil, q, ts, eps, mode, params)
}

// PlanRangeCtx plans on shard 0 — a plan is a transformation grouping
// plus an algorithm choice, both shard-independent, so one shard's
// sampled probes stand in for all. (At N>1 the absolute cost figures
// describe one shard, i.e. ~1/N of the data; the *relative* ranking of
// the candidate plans, which is all the planner uses, is unaffected.)
func (s *Sharded) PlanRangeCtx(ctx context.Context, q *Record, ts []transform.Transform, eps float64, mode QRectMode, params CostParams) (*Plan, error) {
	return s.shards[0].PlanRangeCtx(ctx, q, ts, eps, mode, params)
}

// STIndexJoin runs the index join with singleton groups on the sharded
// index.
func (s *Sharded) STIndexJoin(ts []transform.Transform, eps float64, opts RangeOptions) ([]JoinMatch, QueryStats, error) {
	if s.single() {
		return s.shards[0].STIndexJoin(ts, eps, opts)
	}
	groups := make([][]int, len(ts))
	for i := range ts {
		groups[i] = []int{i}
	}
	opts.Groups = groups
	return s.MTIndexJoin(ts, eps, opts)
}

// MTIndexJoin answers the transformed join over the sharded index: per
// transformation group, each shard self-joins its own tree and every
// shard pair (s < t) runs a synchronized cross-tree walk, all feeding
// one global candidate-pair set that is verified in deterministic
// (IDA, IDB) order. With one shard this is a passthrough.
func (s *Sharded) MTIndexJoin(ts []transform.Transform, eps float64, opts RangeOptions) ([]JoinMatch, QueryStats, error) {
	if s.single() {
		return s.shards[0].MTIndexJoin(ts, eps, opts)
	}
	if len(ts) == 0 {
		return nil, QueryStats{}, nil
	}
	groups := opts.Groups
	if groups == nil {
		groups = [][]int{identityIndexes(len(ts))}
	}
	n := len(s.shards)
	ix0 := s.shards[0]
	var st QueryStats
	var out []JoinMatch
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		sub := make([]transform.Transform, len(g))
		for i, idx := range g {
			if idx < 0 || idx >= len(ts) {
				return nil, st, fmt.Errorf("core: group index %d out of range", idx)
			}
			sub[i] = ts[idx]
		}
		// The lifted MBRs and gap bounds depend only on the transform
		// set and index options, which are identical across shards.
		mult, add := ix0.fullMBRs(sub)
		bounds := ix0.joinBounds(sub, eps, opts.Mode)

		pairs := make(map[[2]int64]bool) // global id pairs, a < b
		addPair := func(shA int, ra int64, shB int, rb int64) {
			ga, gb := s.globalID(shA, ra), s.globalID(shB, rb)
			if ga > gb {
				ga, gb = gb, ga
			}
			pairs[[2]int64{ga, gb}] = true
		}
		for a := 0; a < n; a++ {
			ixa := s.shards[a]
			st.IndexSearches++
			localPairs := make(map[[2]int64]bool)
			if err := ixa.joinWalk(ixa.Tree().Root(), ixa.Tree().Root(), mult, add, bounds, &st, localPairs); err != nil {
				return nil, st, fmt.Errorf("shard %d: %w", a, err)
			}
			for k := range localPairs {
				addPair(a, k[0], a, k[1])
			}
			for b := a + 1; b < n; b++ {
				ixb := s.shards[b]
				st.IndexSearches++
				err := crossJoinWalk(ixa, ixb, ixa.Tree().Root(), ixb.Tree().Root(), mult, add, bounds, &st,
					func(ra, rb int64) { addPair(a, ra, b, rb) })
				if err != nil {
					return nil, st, fmt.Errorf("shards %d x %d: %w", a, b, err)
				}
			}
		}

		keys := make([][2]int64, 0, len(pairs))
		for k := range pairs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			a, err := s.fetchGlobal(k[0])
			if err != nil {
				return nil, st, err
			}
			b, err := s.fetchGlobal(k[1])
			if err != nil {
				return nil, st, err
			}
			if a == nil || b == nil { // deleted
				continue
			}
			st.Candidates++
			for i, t := range sub {
				st.Comparisons++
				if d := t.DistancePolar(a.Mags, a.Phases, b.Mags, b.Phases); d <= eps {
					out = append(out, JoinMatch{IDA: a.ID, IDB: b.ID, TransformIdx: g[i], Distance: d})
				}
			}
		}
	}
	return out, st, nil
}

// crossJoinWalk synchronously traverses two distinct shards' trees,
// applying the transformation rectangle to both sides before the gap
// test — joinWalk without the self-pair bookkeeping, since records on
// different shards are always distinct. Qualifying leaf pairs are
// emitted as (local id in A, local id in B).
func crossJoinWalk(ixA, ixB *Index, a, b storage.PageID, mult, add geom.Rect, jb joinBounds, st *QueryStats, emit func(ra, rb int64)) error {
	na, err := ixA.Tree().Load(a)
	if err != nil {
		return err
	}
	st.DAAll++
	if na.Leaf {
		st.DALeaf++
	}
	nb, err := ixB.Tree().Load(b)
	if err != nil {
		return err
	}
	st.DAAll++
	if nb.Leaf {
		st.DALeaf++
	}
	if len(na.Entries) == 0 || len(nb.Entries) == 0 {
		return nil // an empty shard joins nothing
	}
	ta := ixA.transformEntries(na, mult, add)
	tb := ixB.transformEntries(nb, mult, add)
	switch {
	case na.Leaf && nb.Leaf:
		for i := range na.Entries {
			for j := range nb.Entries {
				if ixA.joinGapOK(ta[i], tb[j], jb) {
					emit(na.Entries[i].Rec, nb.Entries[j].Rec)
				}
			}
		}
	case !na.Leaf && !nb.Leaf:
		for i := range na.Entries {
			for j := range nb.Entries {
				if ixA.joinGapOK(ta[i], tb[j], jb) {
					if err := crossJoinWalk(ixA, ixB, na.Entries[i].Child, nb.Entries[j].Child, mult, add, jb, st, emit); err != nil {
						return err
					}
				}
			}
		}
	case na.Leaf: // internal b
		for j := range nb.Entries {
			if err := crossJoinWalk(ixA, ixB, a, nb.Entries[j].Child, mult, add, jb, st, emit); err != nil {
				return err
			}
		}
	default: // internal a, leaf b
		for i := range na.Entries {
			if err := crossJoinWalk(ixA, ixB, na.Entries[i].Child, b, mult, add, jb, st, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// shardPairItem is the sharded analogue of pairItem: each side carries
// its owning shard; resolved record ids are global.
type shardPairItem struct {
	bound    float64
	sa, sb   int
	a, b     storage.PageID
	resolved bool
	ra, rb   int64
}

type shardPairHeap []shardPairItem

func (h shardPairHeap) Len() int            { return len(h) }
func (h shardPairHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h shardPairHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *shardPairHeap) Push(x interface{}) { *h = append(*h, x.(shardPairItem)) }
func (h *shardPairHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MTIndexClosestPairs answers the top-k closest-pairs query over the
// sharded index with one global best-first search: the priority queue
// is seeded with every shard root pair (s <= t) and expands subtree
// pairs — same-shard or cross-shard — in lower-bound order, so the
// search is exact and stops as soon as k pairs beat every remaining
// bound, exactly like the single-tree traversal. With one shard this
// is a passthrough.
func (s *Sharded) MTIndexClosestPairs(ts []transform.Transform, k int) ([]JoinMatch, QueryStats, error) {
	if s.single() {
		return s.shards[0].MTIndexClosestPairs(ts, k)
	}
	var st QueryStats
	if k <= 0 || len(ts) == 0 {
		return nil, st, nil
	}
	ix0 := s.shards[0]
	opts := ix0.Options()
	mult, add := ix0.fullMBRs(ts)
	symFactor := 1.0
	if opts.UseSymmetry {
		symFactor = math.Sqrt2
	}
	lowerBound := func(ya, yb geom.Rect) float64 {
		var ss float64
		for j := 1; j <= opts.K; j++ {
			gap := intervalGap(ya.Lo[2*j], ya.Hi[2*j], yb.Lo[2*j], yb.Hi[2*j])
			ss += gap * gap
		}
		return symFactor * math.Sqrt(ss)
	}

	var results []JoinMatch
	worst := math.Inf(1)
	seen := make(map[[2]int64]bool)
	h := &shardPairHeap{}
	for sa := 0; sa < len(s.shards); sa++ {
		for sb := sa; sb < len(s.shards); sb++ {
			st.IndexSearches++
			heap.Push(h, shardPairItem{sa: sa, sb: sb, a: s.shards[sa].Tree().Root(), b: s.shards[sb].Tree().Root()})
		}
	}
	type cacheKey struct {
		shard int
		page  storage.PageID
	}
	loaded := make(map[cacheKey]*nodeCache)
	// load caches a shard node with its entry rectangles transformed
	// and its record ids already translated to global, so expansion and
	// dedup work in the global id space throughout.
	load := func(sh int, id storage.PageID) (*nodeCache, error) {
		key := cacheKey{sh, id}
		if n, ok := loaded[key]; ok {
			return n, nil
		}
		n, err := s.shards[sh].Tree().Load(id)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
		st.DAAll++
		if n.Leaf {
			st.DALeaf++
		}
		nc := &nodeCache{leaf: n.Leaf, rects: make([]geom.Rect, len(n.Entries)), children: make([]storage.PageID, len(n.Entries)), recs: make([]int64, len(n.Entries))}
		for i, e := range n.Entries {
			nc.rects[i] = transform.ApplyMBRs(mult, add, e.Rect)
			nc.children[i] = e.Child
			if n.Leaf {
				nc.recs[i] = s.globalID(sh, e.Rec)
			}
		}
		loaded[key] = nc
		return nc, nil
	}

	for h.Len() > 0 {
		it := heap.Pop(h).(shardPairItem)
		if len(results) == k && it.bound > worst {
			break
		}
		if it.resolved {
			key := [2]int64{it.ra, it.rb}
			if seen[key] {
				continue
			}
			seen[key] = true
			a, err := s.fetchGlobal(it.ra)
			if err != nil {
				return nil, st, err
			}
			b, err := s.fetchGlobal(it.rb)
			if err != nil {
				return nil, st, err
			}
			if a == nil || b == nil {
				continue
			}
			st.Candidates++
			best := JoinMatch{IDA: it.ra, IDB: it.rb, Distance: math.Inf(1)}
			for ti, t := range ts {
				st.Comparisons++
				if d := t.DistancePolar(a.Mags, a.Phases, b.Mags, b.Phases); d < best.Distance {
					best.Distance, best.TransformIdx = d, ti
				}
			}
			results = append(results, best)
			sort.Slice(results, func(x, y int) bool {
				if results[x].Distance != results[y].Distance {
					return results[x].Distance < results[y].Distance
				}
				if results[x].IDA != results[y].IDA {
					return results[x].IDA < results[y].IDA
				}
				return results[x].IDB < results[y].IDB
			})
			if len(results) > k {
				results = results[:k]
			}
			if len(results) == k {
				worst = results[k-1].Distance
			}
			continue
		}
		na, err := load(it.sa, it.a)
		if err != nil {
			return nil, st, err
		}
		nb, err := load(it.sb, it.b)
		if err != nil {
			return nil, st, err
		}
		expandShardPair(h, it, na, nb, lowerBound, worst, len(results) == k)
	}
	return results, st, nil
}

// expandShardPair pushes the children pairs of (na, nb), each side
// tagged with its shard. The self-pair bookkeeping applies only when
// both sides are the same node of the same shard; record ids are
// already global (see load above), so the dedup ordering is global.
func expandShardPair(h *shardPairHeap, it shardPairItem, na, nb *nodeCache, lowerBound func(a, b geom.Rect) float64, worst float64, full bool) {
	if len(na.rects) == 0 || len(nb.rects) == 0 {
		return // an empty shard pairs with nothing
	}
	push := func(lb float64, item shardPairItem) {
		if full && lb > worst {
			return
		}
		item.bound = lb
		heap.Push(h, item)
	}
	same := it.sa == it.sb && it.a == it.b
	switch {
	case na.leaf && nb.leaf:
		for i := range na.rects {
			jStart := 0
			if same {
				jStart = i + 1
			}
			for j := jStart; j < len(nb.rects); j++ {
				ra, rb := na.recs[i], nb.recs[j]
				if ra == rb {
					continue
				}
				if ra > rb {
					ra, rb = rb, ra
				}
				push(lowerBound(na.rects[i], nb.rects[j]), shardPairItem{resolved: true, ra: ra, rb: rb})
			}
		}
	case !na.leaf && !nb.leaf:
		for i := range na.rects {
			jStart := 0
			if same {
				jStart = i // (i, i): pairs within one subtree
			}
			for j := jStart; j < len(nb.rects); j++ {
				push(lowerBound(na.rects[i], nb.rects[j]),
					shardPairItem{sa: it.sa, sb: it.sb, a: na.children[i], b: nb.children[j]})
			}
		}
	case na.leaf: // nb internal
		aMBR := geom.MBRRects(na.rects)
		for j := range nb.rects {
			push(lowerBound(aMBR, nb.rects[j]), shardPairItem{sa: it.sa, sb: it.sb, a: it.a, b: nb.children[j]})
		}
	default: // na internal, nb leaf
		bMBR := geom.MBRRects(nb.rects)
		for i := range na.rects {
			push(lowerBound(na.rects[i], bMBR), shardPairItem{sa: it.sa, sb: it.sb, a: na.children[i], b: it.b})
		}
	}
}

// RawRange answers the raw-distance range query scatter-gather,
// merged into ascending global id order.
func (s *Sharded) RawRange(q *Record, eps float64) ([]RawMatch, QueryStats, error) {
	if s.single() {
		return s.shards[0].RawRange(q, eps)
	}
	n := len(s.shards)
	matches := make([][]RawMatch, n)
	stats := make([]QueryStats, n)
	err := s.scatter(func(sh int, ix *Index) error {
		m, st, err := ix.RawRange(q, eps)
		if err != nil {
			return err
		}
		for i := range m {
			m[i].RecordID = s.globalID(sh, m[i].RecordID)
		}
		matches[sh], stats[sh] = m, st
		return nil
	})
	var st QueryStats
	for _, s := range stats {
		st.Add(s)
	}
	if err != nil {
		return nil, st, err
	}
	var out []RawMatch
	for _, m := range matches {
		out = append(out, m...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RecordID < out[j].RecordID })
	return out, st, nil
}

// Insert routes a new series to its shard. New ids are assigned
// globally ascending, so the positional (ascending global order)
// invariant of the per-shard layouts is preserved: the new global id is
// the maximum, hence also the last local id of its shard.
func (s *Sharded) Insert(name string, ser series.Series) (int64, error) {
	if s.single() {
		return s.shards[0].Insert(name, ser)
	}
	g := int64(len(s.ds.Records))
	sh := ShardOf(g, len(s.shards))
	l, err := s.shards[sh].Insert(name, ser)
	if err != nil {
		return 0, fmt.Errorf("shard %d: %w", sh, err)
	}
	if l != int64(len(s.global[sh])) {
		return 0, fmt.Errorf("core: shard %d assigned local id %d, layout expects %d", sh, l, len(s.global[sh]))
	}
	s.local = append(s.local, l)
	s.global[sh] = append(s.global[sh], g)
	r := *s.shards[sh].Dataset().Records[l]
	r.ID = g
	s.ds.Records = append(s.ds.Records, &r)
	return g, nil
}

// Delete removes global id g from its shard and tombstones the global
// record (ids are never reused, so the layout stays intact).
func (s *Sharded) Delete(g int64) error {
	if s.single() {
		return s.shards[0].Delete(g)
	}
	if g < 0 || g >= int64(len(s.ds.Records)) || s.ds.Records[g] == nil {
		return fmt.Errorf("core: no record %d", g)
	}
	sh, l := s.locate(g)
	if err := s.shards[sh].Delete(l); err != nil {
		return fmt.Errorf("shard %d: %w", sh, err)
	}
	s.ds.Records[g] = nil
	return nil
}

// Verify checks every shard's structural invariants plus the shard
// layout itself: per-shard record counts must match the partition
// function's assignment and the global dataset must agree with the
// shard-local records.
func (s *Sharded) Verify() error {
	if s.single() {
		return s.shards[0].Verify()
	}
	_, global := shardLayout(int64(len(s.ds.Records)), len(s.shards))
	for sh, ix := range s.shards {
		if err := ix.Verify(); err != nil {
			return fmt.Errorf("shard %d: %w", sh, err)
		}
		if got, want := len(ix.Dataset().Records), len(global[sh]); got != want {
			return fmt.Errorf("core: shard %d holds %d records, partition expects %d", sh, got, want)
		}
		for l, g := range global[sh] {
			lr := ix.Dataset().Records[l]
			gr := s.ds.Records[g]
			if (lr == nil) != (gr == nil) {
				return fmt.Errorf("core: shard %d record %d and global record %d disagree on deletion", sh, l, g)
			}
			if gr != nil && gr.ID != g {
				return fmt.Errorf("core: global record %d carries id %d", g, gr.ID)
			}
		}
	}
	return nil
}

// AvgLeafCapacity returns records per leaf across all shards.
func (s *Sharded) AvgLeafCapacity() (float64, error) {
	if s.single() {
		return s.shards[0].AvgLeafCapacity()
	}
	leaves, records := 0, 0
	for sh, ix := range s.shards {
		err := ix.Tree().Visit(func(n *rtree.Node, level int) error {
			if level == 1 {
				leaves++
			}
			return nil
		})
		if err != nil {
			return 0, fmt.Errorf("shard %d: %w", sh, err)
		}
		records += len(ix.Dataset().Records)
	}
	if leaves == 0 {
		return 0, nil
	}
	return float64(records) / float64(leaves), nil
}

// TreeStats merges the per-shard level statistics leaf-aligned (level
// 1 is the leaf level in every shard): node counts sum, average
// extents combine weighted by node count, and the world rectangle is
// the union. The result feeds the same analytical estimator as the
// single-tree stats.
func (s *Sharded) TreeStats() ([]LevelStats, geom.Rect, error) {
	if s.single() {
		return s.shards[0].TreeStats()
	}
	byLevel := make(map[int]*LevelStats)
	var world geom.Rect
	first := true
	maxLevel := 0
	for sh, ix := range s.shards {
		stats, w, err := ix.TreeStats()
		if err != nil {
			return nil, geom.Rect{}, fmt.Errorf("shard %d: %w", sh, err)
		}
		if len(w.Lo) > 0 {
			if first {
				world = w.Clone()
				first = false
			} else {
				world = world.Union(w)
			}
		}
		for _, ls := range stats {
			m := byLevel[ls.Level]
			if m == nil {
				m = &LevelStats{Level: ls.Level, AvgSide: make([]float64, len(ls.AvgSide))}
				byLevel[ls.Level] = m
			}
			if ls.Level > maxLevel {
				maxLevel = ls.Level
			}
			for d := range ls.AvgSide {
				m.AvgSide[d] += ls.AvgSide[d] * float64(ls.Nodes)
			}
			m.Nodes += ls.Nodes
		}
	}
	out := make([]LevelStats, 0, maxLevel)
	for lvl := maxLevel; lvl >= 1; lvl-- {
		m := byLevel[lvl]
		if m == nil {
			continue
		}
		if m.Nodes > 0 {
			for d := range m.AvgSide {
				m.AvgSide[d] /= float64(m.Nodes)
			}
		}
		out = append(out, *m)
	}
	return out, world, nil
}

// ClusterPartition groups the transformation set by parameter
// clustering; the grouping depends only on the transformations and the
// index options, so shard 0 answers for all.
func (s *Sharded) ClusterPartition(ts []transform.Transform, jumpFactor float64) [][]int {
	return s.shards[0].ClusterPartition(ts, jumpFactor)
}

// ClusterThenEqualPartition is ClusterPartition followed by equal
// splitting, delegated to shard 0 (shard-independent).
func (s *Sharded) ClusterThenEqualPartition(ts []transform.Transform, perGroup int, jumpFactor float64) [][]int {
	return s.shards[0].ClusterThenEqualPartition(ts, perGroup, jumpFactor)
}

// OptimalPartition runs the DP partitioner against shard 0's tree: the
// probe costs it samples describe one shard, but the chosen grouping —
// the only output a caller applies — ranks identically.
func (s *Sharded) OptimalPartition(q *Record, ts []transform.Transform, eps float64, mode QRectMode, params CostParams) ([][]int, float64, error) {
	return s.shards[0].OptimalPartition(q, ts, eps, mode, params)
}

// Health reports the combined and per-shard structural health. With one
// shard the report is exactly the single-index report; with more, the
// top level carries the summed storage counters, the group geometry
// (shard-independent) and a per-shard report in Shards.
func (s *Sharded) Health(ctx context.Context, ts []transform.Transform, groups [][]int) (*HealthReport, error) {
	if s.single() {
		return s.shards[0].Health(ctx, ts, groups)
	}
	opts := s.Options()
	hr := &HealthReport{
		Series:       len(s.ds.Records),
		SeriesLength: s.ds.N,
		K:            opts.K,
		Dim:          2 + 2*opts.K,
		PageSize:     s.PageSize(),
		ShardCount:   len(s.shards),
	}
	for sh, ix := range s.shards {
		shr, err := ix.Health(ctx, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", sh, err)
		}
		hr.Shards = append(hr.Shards, shr)
		hr.Storage = addStats(hr.Storage, shr.Storage)
	}
	gh, err := s.shards[0].groupHealth(ts, groups)
	if err != nil {
		return nil, err
	}
	hr.Groups = gh
	return hr, nil
}
