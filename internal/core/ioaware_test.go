package core

import (
	"math/rand"
	"reflect"
	"testing"

	"tsq/internal/series"
	"tsq/internal/transform"
)

// TestPipelineMatchesNaiveAllPaths is the bit-identity contract of the
// I/O-aware candidate pipeline: on randomized datasets, every query path
// (sequential scan, ST-index, MT-index), sided-ness, and worker count
// returns exactly the matches of the naive record-at-a-time verifier —
// same records, same transformation indices, same distance bits, same
// order after SortMatches. The pipeline may only change how much I/O and
// arithmetic the answer costs, never the answer.
func TestPipelineMatchesNaiveAllPaths(t *testing.T) {
	for _, paged := range []bool{false, true} {
		opts := DefaultIndexOptions()
		if paged {
			opts.Paged = true
			opts.BufferPages = 8
		}
		ds, ix := buildFixture(t, 21, 300, 64, opts)
		ts := transform.MovingAverageSet(64, 4, 19) // 16 transforms
		var totalSkipped, totalAbandoned int
		for trial := 0; trial < 6; trial++ {
			q := ds.Records[trial*37%len(ds.Records)]
			eps := series.DistanceForCorrelation(64, 0.88+0.02*float64(trial%3))
			for _, variant := range []RangeOptions{
				{Mode: QRectSafe},
				{Mode: QRectSafe, OneSided: true},
				{Mode: QRectSafe, Workers: 4},
				{Mode: QRectSafe, Groups: EqualPartition(len(ts), 4)},
				{Mode: QRectSafe, FlatLB: true},
				{Mode: QRectSafe, FlatLB: true, OneSided: true},
			} {
				naive := variant
				naive.NaiveVerify = true

				wantSeq, seqNaiveSt := SeqScanRange(ds, q, ts, eps, naive)
				gotSeq, seqSt := SeqScanRange(ds, q, ts, eps, variant)
				if !reflect.DeepEqual(gotSeq, wantSeq) {
					t.Fatalf("paged=%v trial=%d %+v: seqscan pipeline diverged", paged, trial, variant)
				}
				if seqSt.Candidates != seqNaiveSt.Candidates || seqSt.Comparisons != seqNaiveSt.Comparisons {
					t.Fatalf("paged=%v trial=%d: seqscan effort accounting changed: %+v vs %+v", paged, trial, seqSt, seqNaiveSt)
				}

				wantST, stNaiveSt, err := ix.STIndexRange(q, ts, eps, naive)
				if err != nil {
					t.Fatal(err)
				}
				gotST, stSt, err := ix.STIndexRange(q, ts, eps, variant)
				if err != nil {
					t.Fatal(err)
				}
				SortMatches(wantST)
				SortMatches(gotST)
				if !reflect.DeepEqual(gotST, wantST) {
					t.Fatalf("paged=%v trial=%d %+v: ST pipeline diverged", paged, trial, variant)
				}
				if stSt.Candidates+stSt.SkippedLB != stNaiveSt.Candidates {
					t.Fatalf("paged=%v trial=%d: ST candidates %d + skipped %d != naive %d",
						paged, trial, stSt.Candidates, stSt.SkippedLB, stNaiveSt.Candidates)
				}

				wantMT, mtNaiveSt, err := ix.MTIndexRange(q, ts, eps, naive)
				if err != nil {
					t.Fatal(err)
				}
				gotMT, mtSt, err := ix.MTIndexRange(q, ts, eps, variant)
				if err != nil {
					t.Fatal(err)
				}
				SortMatches(wantMT)
				SortMatches(gotMT)
				if !reflect.DeepEqual(gotMT, wantMT) {
					t.Fatalf("paged=%v trial=%d %+v: MT pipeline diverged", paged, trial, variant)
				}
				if mtSt.Candidates+mtSt.SkippedLB != mtNaiveSt.Candidates {
					t.Fatalf("paged=%v trial=%d: MT candidates %d + skipped %d != naive %d",
						paged, trial, mtSt.Candidates, mtSt.SkippedLB, mtNaiveSt.Candidates)
				}
				// The per-tier invariant: the cascade attributes every
				// skip to exactly one tier, so the tier counters
				// partition SkippedLB (and the flat mode books all of
				// its skips as full-prefix, i.e. tier 2).
				for _, st := range []QueryStats{stSt, mtSt} {
					if st.SkippedLB0+st.SkippedLB1+st.SkippedLB2 != st.SkippedLB {
						t.Fatalf("paged=%v trial=%d %+v: tier counters %d+%d+%d do not partition SkippedLB %d",
							paged, trial, variant, st.SkippedLB0, st.SkippedLB1, st.SkippedLB2, st.SkippedLB)
					}
					if variant.FlatLB && (st.SkippedLB0 != 0 || st.SkippedLB1 != 0) {
						t.Fatalf("paged=%v trial=%d: flat mode reported cascade tiers: %+v", paged, trial, st)
					}
				}
				if mtNaiveSt.SkippedLB != 0 || mtNaiveSt.Abandoned != 0 ||
					mtNaiveSt.SkippedLB0 != 0 || mtNaiveSt.SkippedLB1 != 0 || mtNaiveSt.SkippedLB2 != 0 {
					t.Fatalf("naive path reported pipeline work: %+v", mtNaiveSt)
				}
				totalSkipped += mtSt.SkippedLB
				totalAbandoned += mtSt.Abandoned
			}
		}
		if totalSkipped == 0 || totalAbandoned == 0 {
			t.Fatalf("paged=%v: degenerate workload: skipped=%d abandoned=%d — pipeline never engaged",
				paged, totalSkipped, totalAbandoned)
		}
	}
}

// TestPipelineMatchesNaiveOrdered covers the Sec. 4.4 binary-search path
// (orderable scale sets): the pipeline's abandoning predicate must leave
// the bisection's qualifying prefix — and therefore the answer — intact.
func TestPipelineMatchesNaiveOrdered(t *testing.T) {
	opts := DefaultIndexOptions()
	opts.Paged = true
	ds, ix := buildFixture(t, 9, 200, 64, opts)
	ts := transform.ScaleSet(64, []float64{1, 2, 3, 5, 8, 13, 21, 34})
	for trial := 0; trial < 5; trial++ {
		q := ds.Records[trial*41%len(ds.Records)]
		eps := 10.0 + 15.0*float64(trial)
		naive := RangeOptions{UseOrdering: true, NaiveVerify: true}
		pipe := RangeOptions{UseOrdering: true}
		want, _ := SeqScanRange(ds, q, ts, eps, naive)
		got, _ := SeqScanRange(ds, q, ts, eps, pipe)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: ordered seqscan pipeline diverged", trial)
		}
		wantMT, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe, UseOrdering: true, NaiveVerify: true})
		if err != nil {
			t.Fatal(err)
		}
		gotMT, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe, UseOrdering: true})
		if err != nil {
			t.Fatal(err)
		}
		SortMatches(wantMT)
		SortMatches(gotMT)
		if !reflect.DeepEqual(gotMT, wantMT) {
			t.Fatalf("trial %d: ordered MT pipeline diverged", trial)
		}
	}
}

// TestOrderedBatchFetchFewerReads is the acceptance criterion of the
// page-ordered fetch: on a paged index without a buffer pool, MT-index
// range queries through the pipeline reach the backend strictly fewer
// times than naive record-at-a-time verification, while returning the
// identical result set.
func TestOrderedBatchFetchFewerReads(t *testing.T) {
	opts := DefaultIndexOptions()
	opts.Paged = true // BufferPages 0: every fetch reaches the backend
	ds, ix := buildFixture(t, 31, 400, 64, opts)
	ts := transform.MovingAverageSet(64, 5, 20)
	eps := series.DistanceForCorrelation(64, 0.9)
	var naiveReads, pipeReads int64
	for trial := 0; trial < 8; trial++ {
		q := ds.Records[trial*53%len(ds.Records)]

		ix.ResetDiskStats()
		want, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe, NaiveVerify: true})
		if err != nil {
			t.Fatal(err)
		}
		naiveReads += ix.DiskStats().Reads

		ix.ResetDiskStats()
		got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		st := ix.DiskStats()
		pipeReads += st.Reads

		SortMatches(want)
		SortMatches(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: result sets differ between fetch strategies", trial)
		}
	}
	if pipeReads >= naiveReads {
		t.Errorf("page-ordered pipeline reads = %d, naive = %d: no I/O win", pipeReads, naiveReads)
	}
}

// verifyBenchCandidates builds a candidate list over the whole record
// range, optionally shuffled, with nil features so the lower bound does
// not thin the set (the benchmark isolates fetch order).
func verifyBenchCandidates(n int, shuffled bool) []candidate {
	cands := make([]candidate, n)
	for i := range cands {
		cands[i] = candidate{rec: int64(i)}
	}
	if shuffled {
		rng := rand.New(rand.NewSource(77))
		rng.Shuffle(n, func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
	return cands
}

func benchmarkVerifyFetch(b *testing.B, shuffled bool) {
	opts := DefaultIndexOptions()
	opts.Paged = true
	ds, ix := buildFixture(b, 13, 512, 64, opts)
	ts := transform.MovingAverageSet(64, 5, 12)
	g := identityIndexes(len(ts))
	q := ds.Records[0]
	eps := series.DistanceForCorrelation(64, 0.95)
	cands := verifyBenchCandidates(512, shuffled)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := ix.verifySerial(nil, cands, ts, g, q, eps, nil, RangeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyFetchOrdered measures the batched verification pipeline
// over candidates already in heap-page order (the common case: BuildIndex
// appends records before tree construction, so candidate runs are
// consecutive pages).
func BenchmarkVerifyFetchOrdered(b *testing.B) { benchmarkVerifyFetch(b, false) }

// BenchmarkVerifyFetchUnordered is the same workload with the candidate
// list shuffled: FetchBatch must sort by page to recover the run structure.
func BenchmarkVerifyFetchUnordered(b *testing.B) { benchmarkVerifyFetch(b, true) }

// TestBatchVerifyAllocsPerCandidate pins the allocation contract of the
// batched verification path: adding a candidate costs only its record
// decode (heapfile Rec + arrays + name, wrapped into a Record) — no
// per-candidate bookkeeping in the batching layer.
func TestBatchVerifyAllocsPerCandidate(t *testing.T) {
	opts := DefaultIndexOptions()
	opts.Paged = true
	ds, ix := buildFixture(t, 13, 512, 64, opts)
	ts := transform.MovingAverageSet(64, 5, 12)
	g := identityIndexes(len(ts))
	q := ds.Records[0]
	eps := series.DistanceForCorrelation(64, 0.95)
	measure := func(n int) float64 {
		cands := verifyBenchCandidates(n, false)
		return testing.AllocsPerRun(10, func() {
			if _, _, _, err := ix.verifySerial(nil, cands, ts, g, q, eps, nil, RangeOptions{}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(64), measure(256)
	perCandidate := (large - small) / 192
	// Decode allocates 5 (Rec, Raw, Mags, Phases, name); the Record
	// wrapper adds 2 (the struct and the renormalized series). Anything
	// above that is batching overhead.
	if perCandidate > 7.5 {
		t.Errorf("%.2f allocations per candidate, want <= 7.5 (decode + Record wrap only)", perCandidate)
	}
}
