package core

import (
	"testing"

	"tsq/internal/series"
	"tsq/internal/transform"
)

// TestPrefixLBUnderestimatesDistance is the Parseval soundness of the
// DFT-prefix lower bound: for every record and transformation group, the
// bound computed from the indexed feature point alone never exceeds the
// group's true minimum polar distance (up to the abandon-cutoff slack),
// so skipByPrefixLB can never reject a qualifying candidate.
func TestPrefixLBUnderestimatesDistance(t *testing.T) {
	for _, sym := range []bool{true, false} {
		opts := DefaultIndexOptions()
		opts.UseSymmetry = sym
		ds, ix := buildFixture(t, 17, 250, 64, opts)
		ts := transform.MovingAverageSet(64, 3, 18)
		for trial := 0; trial < 4; trial++ {
			q := ds.Records[trial*29%len(ds.Records)]
			for _, oneSided := range []bool{false, true} {
				for _, r := range ds.Records {
					feat := r.Feature(ix.opts.K)
					lb := ix.prefixLB(feat, ts, q, oneSided)
					best := -1.0
					for _, tr := range ts {
						var d float64
						if oneSided {
							d = tr.DistancePolarLeft(r.Mags, r.Phases, q.Mags, q.Phases)
						} else {
							d = tr.DistancePolar(r.Mags, r.Phases, q.Mags, q.Phases)
						}
						if best < 0 || d < best {
							best = d
						}
					}
					// The slack mirrors transform.AbandonCutoff: the skip
					// compares lb² against a cutoff a hair above eps².
					if lb*lb > best*best*(1+1e-9)+1e-9 {
						t.Fatalf("sym=%v oneSided=%v rec=%d: lower bound %v exceeds true distance %v",
							sym, oneSided, r.ID, lb, best)
					}
					// And the skip predicate agrees: if it skips at eps equal
					// to the true distance, a match would be lost.
					if ix.skipByPrefixLB(feat, ts, q, best, oneSided) {
						t.Fatalf("sym=%v oneSided=%v rec=%d: skipByPrefixLB rejects at eps == true distance %v",
							sym, oneSided, r.ID, best)
					}
				}
			}
		}
	}
}

// TestSkipByPrefixLBThinsCandidates: the bound must actually fire on a
// workload with false positives (small eps, many candidates), otherwise
// the pipeline silently degrades to fetch-everything.
func TestSkipByPrefixLBThinsCandidates(t *testing.T) {
	ds, ix := buildFixture(t, 23, 400, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 20)
	eps := series.DistanceForCorrelation(64, 0.97)
	var skipped, kept int
	for trial := 0; trial < 5; trial++ {
		q := ds.Records[trial*61%len(ds.Records)]
		for _, r := range ds.Records {
			if ix.skipByPrefixLB(r.Feature(ix.opts.K), ts, q, eps, false) {
				skipped++
			} else {
				kept++
			}
		}
	}
	if skipped == 0 {
		t.Fatalf("lower bound never fired (%d kept)", kept)
	}
}
