package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"tsq/internal/obs"
	"tsq/internal/series"
	"tsq/internal/transform"
)

// ExecRequest is one query of a batch. Exactly one of Record or Query
// identifies the query point: a pre-resolved record (e.g. a stored series
// for query-by-id workloads), or a raw series whose normal form and DFT
// features the executor computes — once per distinct series, memoized
// across the batch, so subqueries sharing a query point share the
// spectral work.
type ExecRequest struct {
	// Record is the query point when non-nil.
	Record *Record
	// Query is the raw query series, featurized (and memoized) when
	// Record is nil.
	Query series.Series
	// Transforms is the transformation set of the query.
	Transforms []transform.Transform
	// QueryTransform, when non-nil, is applied to the query point before
	// comparison (the one-sided D(t(s), f(q)) semantics); it implies
	// Opts.OneSided.
	QueryTransform *transform.Transform
	// Eps is the distance threshold of a range query.
	Eps float64
	// K, when positive, makes this a k-nearest-neighbor query instead of
	// a range query (Eps is then ignored).
	K int
	// SeqScan evaluates by scanning the relation instead of the MT-index.
	SeqScan bool
	// Opts tunes the range algorithms (groups, ordering, verification
	// workers, one-sided mode...).
	Opts RangeOptions
}

// ExecResult is the outcome of one batch query: Matches for range
// queries, NN for nearest-neighbor queries.
type ExecResult struct {
	Matches []Match
	NN      []NNMatch
	Stats   QueryStats
	Err     error
}

// QueryEngine is the query surface the executor dispatches on. Both the
// single-tree Index and the sharded engine implement it, so a batch
// runs unchanged over either.
type QueryEngine interface {
	Dataset() *Dataset
	MTIndexRangeCtx(ctx context.Context, q *Record, ts []transform.Transform, eps float64, opts RangeOptions) ([]Match, QueryStats, error)
	MTIndexNNCtx(ctx context.Context, q *Record, ts []transform.Transform, k int, oneSided bool) ([]NNMatch, QueryStats, error)
}

// Executor runs many queries concurrently over one shared index with a
// fixed-size worker pool. The index and its storage manager are only read
// during query evaluation, so all workers share them without locking;
// each query's result is identical to running it alone. Construction is
// cheap — an Executor holds no goroutines between Run calls.
//
// The executor must not run concurrently with Insert or Delete on the
// same index; the tsq.DB wrapper enforces that with its reader-writer
// lock.
type Executor struct {
	ix      QueryEngine
	workers int

	memoMu sync.Mutex
	memo   map[uint64][]*Record
}

// NewExecutor returns an executor over ix with the given worker-pool
// size; workers <= 0 means GOMAXPROCS.
func NewExecutor(ix QueryEngine, workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{ix: ix, workers: workers, memo: make(map[uint64][]*Record)}
}

// Workers returns the worker-pool size.
func (e *Executor) Workers() int { return e.workers }

// Index returns the shared engine queries run against.
func (e *Executor) Index() QueryEngine { return e.ix }

// Run evaluates every request and returns one result per request, in
// order. Requests are distributed over the worker pool; when ctx is
// cancelled, queries not yet started complete immediately with ctx.Err()
// (queries already running finish normally).
//
// When ctx carries an *obs.Trace (obs.WithTrace), every request — run or
// abandoned — gets a root KindQuery span; abandoned queries close theirs
// with the cancellation error, so a trace always accounts for the whole
// batch. Without a trace the loop is the untraced fast path.
func (e *Executor) Run(ctx context.Context, reqs []ExecRequest) []ExecResult {
	results := make([]ExecResult, len(reqs))
	tr := obs.FromContext(ctx)
	workers := e.workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 {
		for i := range reqs {
			results[i] = e.execOne(ctx, tr, i, &reqs[i])
		}
		return results
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = e.execOne(ctx, tr, i, &reqs[i])
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// execOne wraps one batch request in its root span (when tracing),
// honoring cancellation: an abandoned query's span is opened and closed
// with the error so the trace shows it was scheduled but not run.
func (e *Executor) execOne(ctx context.Context, tr *obs.Trace, i int, req *ExecRequest) ExecResult {
	var sp *obs.Span
	if tr != nil {
		sp = tr.Start(obs.KindQuery, fmt.Sprintf("batch[%d]", i))
	}
	if err := ctx.Err(); err != nil {
		sp.EndErr(err)
		return ExecResult{Err: err}
	}
	qctx := ctx
	if sp != nil {
		qctx = obs.ContextWithSpan(ctx, sp)
	}
	res := e.runOne(qctx, req)
	if sp != nil {
		sp.Set(obs.AMatches, int64(len(res.Matches)+len(res.NN)))
		sp.Set(obs.ACandidates, int64(res.Stats.Candidates))
	}
	sp.EndErr(res.Err)
	return res
}

// runOne evaluates a single request on the calling goroutine.
func (e *Executor) runOne(ctx context.Context, req *ExecRequest) ExecResult {
	sp := obs.SpanFromContext(ctx)
	qr := req.Record
	if qr == nil {
		var fsp *obs.Span
		if sp != nil {
			fsp = sp.Child(obs.KindFeatures, "query features")
		}
		var err error
		qr, err = e.queryRecord(req.Query)
		fsp.EndErr(err)
		if err != nil {
			return ExecResult{Err: err}
		}
	}
	opts := req.Opts
	if req.QueryTransform != nil {
		qr = qr.ApplyTransform(*req.QueryTransform)
		opts.OneSided = true
	}
	if req.K > 0 {
		if req.SeqScan {
			nn, st := SeqScanNNCtx(ctx, e.ix.Dataset(), qr, req.Transforms, req.K, opts.OneSided)
			return ExecResult{NN: nn, Stats: st}
		}
		nn, st, err := e.ix.MTIndexNNCtx(ctx, qr, req.Transforms, req.K, opts.OneSided)
		return ExecResult{NN: nn, Stats: st, Err: err}
	}
	if req.SeqScan {
		m, st := SeqScanRangeCtx(ctx, e.ix.Dataset(), qr, req.Transforms, req.Eps, opts)
		return ExecResult{Matches: m, Stats: st}
	}
	m, st, err := e.ix.MTIndexRangeCtx(ctx, qr, req.Transforms, req.Eps, opts)
	return ExecResult{Matches: m, Stats: st, Err: err}
}

// queryRecord featurizes a raw query series, memoizing by content so the
// normal form and DFT of a series shared by several subqueries are
// computed once per batch. Entries are compared by value after the hash,
// so colliding series still resolve correctly.
func (e *Executor) queryRecord(s series.Series) (*Record, error) {
	if len(s) != e.ix.Dataset().N {
		return e.ix.Dataset().QueryRecord(s) // let the dataset report the error
	}
	h := hashSeries(s)
	e.memoMu.Lock()
	for _, r := range e.memo[h] {
		if seriesEqual(r.Raw, s) {
			e.memoMu.Unlock()
			return r, nil
		}
	}
	e.memoMu.Unlock()
	// Featurize outside the lock: the DFT is the expensive part and
	// independent queries should not serialize on it.
	r, err := e.ix.Dataset().QueryRecord(s)
	if err != nil {
		return nil, err
	}
	e.memoMu.Lock()
	defer e.memoMu.Unlock()
	for _, prev := range e.memo[h] {
		if seriesEqual(prev.Raw, s) {
			return prev, nil // another worker won the race; reuse its record
		}
	}
	e.memo[h] = append(e.memo[h], r)
	return r, nil
}

// hashSeries is FNV-1a over the IEEE-754 bits of the samples.
func hashSeries(s series.Series) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range s {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= bits & 0xff
			h *= prime64
			bits >>= 8
		}
	}
	return h
}

func seriesEqual(a, b series.Series) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
