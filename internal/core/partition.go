package core

import (
	"fmt"
	"math"

	"tsq/internal/cluster"
	"tsq/internal/geom"
	"tsq/internal/rtree"
	"tsq/internal/transform"
)

// This file implements the Sec. 4.3 performance improvement: grouping the
// transformation set into several bounding rectangles, trading index
// traversals (first term of Eq. 20) against postprocessing comparisons
// (second term).

// CostParams are the constants of the paper's cost model. The paper's
// Sec. 5.2 experiment uses CDA = 1 and Ccmp = 0.4 (a sequence comparison
// costs 40% of a disk access).
type CostParams struct {
	// CDA is the cost of one disk access.
	CDA float64
	// Ccmp is the cost of one full-sequence comparison.
	Ccmp float64
	// CALeaf is the average capacity of a leaf node; when zero it is taken
	// from the index.
	CALeaf float64
}

// DefaultCostParams returns the constants used in the paper's Fig. 8/9.
func DefaultCostParams() CostParams {
	return CostParams{CDA: 1, Ccmp: 0.4}
}

// Cost evaluates Eq. 20 for one transformation rectangle from measured
// statistics: CDA*DA_all + CALeaf*Ccmp*DA_leaf*NT.
func (p CostParams) Cost(daAll, daLeaf, nt int, caLeaf float64) float64 {
	ca := p.CALeaf
	if ca == 0 {
		ca = caLeaf
	}
	return p.CDA*float64(daAll) + ca*p.Ccmp*float64(daLeaf)*float64(nt)
}

// CostOfStats evaluates Eq. 18 from a query's aggregate statistics, using
// the actual candidate count in place of the DA_leaf*CA_leaf estimate:
// CDA*DA_all + Ccmp*Comparisons.
func (p CostParams) CostOfStats(st QueryStats) float64 {
	return p.CDA*float64(st.DAAll) + p.Ccmp*float64(st.Comparisons)
}

// AvgLeafCapacity estimates CA_leaf for the index: records divided by the
// number of leaves (measured by one full traversal; not counted in query
// statistics).
func (ix *Index) AvgLeafCapacity() (float64, error) {
	leaves := 0
	err := ix.tree.Visit(func(n *rtree.Node, level int) error {
		if level == 1 {
			leaves++
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	if leaves == 0 {
		return 0, nil
	}
	return float64(len(ix.ds.Records)) / float64(leaves), nil
}

// EqualPartition splits indices 0..n-1 into contiguous groups of size
// perGroup (the last group may be smaller) — the paper's Sec. 5.2
// "equally partitioned subsequent transformations".
func EqualPartition(n, perGroup int) [][]int {
	if perGroup < 1 {
		panic(fmt.Sprintf("core: perGroup %d < 1", perGroup))
	}
	var out [][]int
	for start := 0; start < n; start += perGroup {
		end := start + perGroup
		if end > n {
			end = n
		}
		g := make([]int, end-start)
		for i := range g {
			g[i] = start + i
		}
		out = append(out, g)
	}
	return out
}

// ClusterPartition groups transformations by CURE clustering of their
// parameter points over the index's transform-sensitive components (the
// Sec. 4.3/5.2 remedy for multi-cluster transformation sets: never pack
// two clusters into one rectangle). jumpFactor is the cluster.Detect
// merge-stop factor; <= 1 selects the default.
func (ix *Index) ClusterPartition(ts []transform.Transform, jumpFactor float64) [][]int {
	pts := make([]geom.Point, len(ts))
	for i, t := range ts {
		p := make(geom.Point, 0, 2*len(ix.comps))
		for _, c := range ix.comps {
			p = append(p, t.A[c], t.B[c])
		}
		pts[i] = p
	}
	return cluster.Detect(pts, jumpFactor, cluster.Options{})
}

// ClusterThenEqualPartition first separates the transformation set into
// clusters, then splits each cluster into contiguous groups of at most
// perGroup members. It combines the two Sec. 4.3 observations: rectangles
// should not span clusters, and within a cluster six-to-eight
// transformations per rectangle is the sweet spot.
func (ix *Index) ClusterThenEqualPartition(ts []transform.Transform, perGroup int, jumpFactor float64) [][]int {
	var out [][]int
	for _, c := range ix.ClusterPartition(ts, jumpFactor) {
		for start := 0; start < len(c); start += perGroup {
			end := start + perGroup
			if end > len(c) {
				end = len(c)
			}
			out = append(out, append([]int(nil), c[start:end]...))
		}
	}
	return out
}

// OptimalPartition chooses a contiguous partition of the transformation
// set minimizing the Eq. 20 cost, estimated by probing the index with a
// filter-only traversal for every candidate segment (O(|T|^2) probes, each
// a search without verification). The probe accesses are not charged to
// any query statistics; this is an offline optimizer. It returns the
// partition and its estimated cost.
func (ix *Index) OptimalPartition(q *Record, ts []transform.Transform, eps float64, mode QRectMode, params CostParams) ([][]int, float64, error) {
	n := len(ts)
	if n == 0 {
		return nil, 0, nil
	}
	caLeaf, err := ix.AvgLeafCapacity()
	if err != nil {
		return nil, 0, err
	}
	// segCost[i][j] = cost of one rectangle covering ts[i..j].
	segCost := make([][]float64, n)
	for i := 0; i < n; i++ {
		segCost[i] = make([]float64, n)
		for j := i; j < n; j++ {
			sub := ts[i : j+1]
			mult, add := ix.fullMBRs(sub)
			qrect := ix.queryRect(q, sub, eps, mode)
			var probe QueryStats
			if _, err := ix.filter(mult, add, qrect, nil, &probe); err != nil {
				return nil, 0, err
			}
			segCost[i][j] = params.Cost(probe.DAAll, probe.DALeaf, len(sub), caLeaf)
		}
	}
	// DP over split points: best[j] = min cost covering ts[0..j].
	best := make([]float64, n)
	prev := make([]int, n)
	for j := 0; j < n; j++ {
		best[j] = math.Inf(1)
		for i := 0; i <= j; i++ {
			c := segCost[i][j]
			if i > 0 {
				c += best[i-1]
			}
			if c < best[j] {
				best[j] = c
				prev[j] = i
			}
		}
	}
	var groups [][]int
	for j := n - 1; j >= 0; {
		i := prev[j]
		g := make([]int, j-i+1)
		for k := range g {
			g[k] = i + k
		}
		groups = append([][]int{g}, groups...)
		j = i - 1
	}
	return groups, best[n-1], nil
}
