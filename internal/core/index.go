package core

import (
	"context"
	"fmt"
	"math"

	"tsq/internal/geom"
	"tsq/internal/heapfile"
	"tsq/internal/rtree"
	"tsq/internal/series"
	"tsq/internal/storage"
	"tsq/internal/transform"
	"tsq/internal/wal"
)

// QRectMode selects how the MT-index query rectangle is built.
type QRectMode int

const (
	// QRectSafe (the default) widens phase dimensions by a provable bound
	// on the angular difference of two complex numbers within the
	// per-coefficient distance, falling back to the full phase range when
	// the interval would wrap across +-pi. With it, the index filter
	// provably admits every qualifying sequence (no false dismissals).
	QRectSafe QRectMode = iota
	// QRectPaper is the paper's construction: a plain eps-width box in
	// every indexed dimension. Phases are not true coordinates of an
	// isometric embedding, so in adversarial cases (coefficients with
	// near-zero magnitude) this can miss matches; on the evaluation
	// workloads it behaves identically and filters slightly better.
	QRectPaper
)

// IndexOptions configures BuildIndex.
type IndexOptions struct {
	// K is the number of DFT coefficients indexed (coefficients 1..K of
	// the normal form). The paper uses 2, giving a 6-dimensional index
	// with the mean and std dimensions. Default 2.
	K int
	// PageSize is the storage page size; storage.DefaultPageSize if zero.
	PageSize int
	// BufferPages enables an LRU buffer pool of that many pages. Zero
	// (default) counts every node fetch as a disk access, the paper's
	// convention.
	BufferPages int
	// UseSymmetry applies the DFT symmetry property (Eq. 6): the mirror
	// coefficient n-f duplicates the energy of coefficient f, shrinking
	// the per-coefficient search bound by sqrt(2). Default true (set by
	// BuildIndex when the zero value is passed through DefaultIndexOptions).
	// Sound for the built-in transformations, which act symmetrically on
	// mirror coefficients.
	UseSymmetry bool
	// Paged stores full records in a heap file on the same storage
	// manager, so candidate verification retrieves pages — the Eq. 18
	// "find and retrieve" accounting becomes a real I/O path. Required
	// for persistence.
	Paged bool
	// Manager, when non-nil, supplies the storage manager (e.g. a
	// file-backed one for persistence) instead of a fresh in-memory one.
	Manager *storage.Manager
	// BulkLoad builds the R*-tree with Sort-Tile-Recursive packing
	// instead of repeated insertion: faster to build and near-full nodes
	// (fewer disk accesses per query). The tree remains fully updatable.
	BulkLoad bool
}

// DefaultIndexOptions returns the paper's configuration.
func DefaultIndexOptions() IndexOptions {
	return IndexOptions{K: 2, PageSize: storage.DefaultPageSize, UseSymmetry: true}
}

// Index is the multidimensional feature index of Sec. 5: an R*-tree over
// [mean, std, |F_1|, angle(F_1), ..., |F_k|, angle(F_k)].
type Index struct {
	ds    *Dataset
	opts  IndexOptions
	mgr   *storage.Manager
	tree  *rtree.Tree
	heap  *heapfile.File // non-nil when Paged
	comps []int          // polar component ids of the transform-sensitive dims
	dim   int

	// Online-write state (see write.go). wal and stage are nil for
	// purely in-memory indexes, which mutate directly with in-memory
	// unwind instead of log-then-apply.
	wal          *wal.Log
	stage        *storage.StagedBackend
	walThreshold int64
	readOnly     bool
	failErr      error
}

// BuildIndex constructs the feature index over the dataset.
func BuildIndex(ds *Dataset, opts IndexOptions) (*Index, error) {
	if opts.K == 0 {
		opts.K = 2
	}
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.K < 1 || 2*opts.K >= ds.N {
		return nil, fmt.Errorf("core: k=%d out of range for series length %d", opts.K, ds.N)
	}
	mgr := opts.Manager
	if mgr == nil {
		mgr = storage.NewManager(storage.Options{PageSize: opts.PageSize, BufferPages: opts.BufferPages})
	}
	ix := &Index{ds: ds, opts: opts, mgr: mgr, dim: 2 + 2*opts.K}
	for f := 1; f <= opts.K; f++ {
		ix.comps = append(ix.comps, 2*f, 2*f+1)
	}
	if opts.Paged {
		heap, err := heapfile.Create(mgr, ds.N)
		if err != nil {
			return nil, err
		}
		ix.heap = heap
		for _, r := range ds.Records {
			rec, err := heap.Append(recordToHeap(r))
			if err != nil {
				return nil, err
			}
			if rec != r.ID {
				return nil, fmt.Errorf("core: heap record %d for id %d", rec, r.ID)
			}
		}
		if err := heap.Sync(); err != nil {
			return nil, err
		}
	}
	if opts.BulkLoad {
		items := make([]rtree.BulkItem, len(ds.Records))
		for i, r := range ds.Records {
			items[i] = rtree.BulkItem{Rect: geom.PointRect(r.Feature(opts.K)), Rec: r.ID}
		}
		tree, err := rtree.BulkLoad(mgr, ix.dim, items)
		if err != nil {
			return nil, err
		}
		ix.tree = tree
		return ix, nil
	}
	tree, err := rtree.New(mgr, ix.dim)
	if err != nil {
		return nil, err
	}
	ix.tree = tree
	for _, r := range ds.Records {
		if err := tree.InsertPoint(r.Feature(opts.K), r.ID); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// OpenIndex attaches to an existing paged index: the R*-tree rooted at
// treeMeta and the record heap at heapDir, both on mgr. The dataset is
// reconstructed from the heap.
func OpenIndex(mgr *storage.Manager, treeMeta, heapDir storage.PageID, n int, opts IndexOptions) (*Index, error) {
	if opts.K == 0 {
		opts.K = 2
	}
	opts.Paged = true
	opts.Manager = mgr
	heap, err := heapfile.Open(mgr, heapDir, n)
	if err != nil {
		return nil, err
	}
	tree, err := rtree.Open(mgr, treeMeta)
	if err != nil {
		return nil, err
	}
	if tree.Dim() != 2+2*opts.K {
		return nil, fmt.Errorf("core: tree dimension %d does not match k=%d", tree.Dim(), opts.K)
	}
	ds := &Dataset{N: n}
	for i := 0; i < heap.Len(); i++ {
		hr, err := heap.Read(int64(i))
		if err != nil {
			return nil, err
		}
		if hr == nil { // tombstoned record; keep ids aligned
			ds.Records = append(ds.Records, nil)
			continue
		}
		ds.Records = append(ds.Records, heapToRecord(int64(i), hr))
	}
	ix := &Index{ds: ds, opts: opts, mgr: mgr, tree: tree, heap: heap, dim: 2 + 2*opts.K}
	for f := 1; f <= opts.K; f++ {
		ix.comps = append(ix.comps, 2*f, 2*f+1)
	}
	return ix, nil
}

// recordToHeap converts a Record for heap storage.
func recordToHeap(r *Record) *heapfile.Rec {
	return &heapfile.Rec{
		Name: r.Name,
		Mean: r.Mean,
		Std:  r.Std,
		Raw:  r.Raw, Mags: r.Mags, Phases: r.Phases,
	}
}

// heapToRecord rebuilds a Record from heap storage (the normal form is
// recomputed from the raw series and statistics).
func heapToRecord(id int64, hr *heapfile.Rec) *Record {
	norm := make(series.Series, len(hr.Raw))
	if hr.Std != 0 {
		for i, v := range hr.Raw {
			norm[i] = (v - hr.Mean) / hr.Std
		}
	}
	return &Record{
		ID:   id,
		Name: hr.Name,
		Raw:  series.Series(hr.Raw),
		Norm: norm,
		Mean: hr.Mean,
		Std:  hr.Std,
		Mags: hr.Mags, Phases: hr.Phases,
	}
}

// fetch retrieves the full record for verification. In paged mode this
// reads (and counts) one record page, the Eq. 18 retrieval; otherwise it
// returns the in-memory record. A nil result with nil error marks a
// deleted record.
func (ix *Index) fetch(id int64) (*Record, error) {
	return ix.fetchCtx(nil, id)
}

// fetchCtx is fetch with per-query I/O attribution: a storage.QueryIO in
// ctx is credited with the record-page read. A nil ctx behaves like
// fetch.
func (ix *Index) fetchCtx(ctx context.Context, id int64) (*Record, error) {
	if ix.heap == nil {
		return ix.ds.Record(id), nil
	}
	if r := ix.ds.Record(id); r == nil {
		return nil, nil // deleted
	}
	hr, err := ix.heap.ReadCtx(ctx, id)
	if err != nil {
		return nil, err
	}
	if hr == nil {
		return nil, nil
	}
	return heapToRecord(id, hr), nil
}

// fetchBatchCtx retrieves several records at once. In paged mode the
// heap page I/O is serviced in ascending page order with run batching
// (heapfile.FetchBatch), so a candidate set clustered on consecutive
// heap pages costs one backend call per run instead of one random read
// per record. The result is parallel to ids; nil entries are deleted
// records. Records already known deleted in the in-memory dataset are
// never fetched (mirroring fetchCtx).
func (ix *Index) fetchBatchCtx(ctx context.Context, ids []int64) ([]*Record, error) {
	out := make([]*Record, len(ids))
	if ix.heap == nil {
		for i, id := range ids {
			out[i] = ix.ds.Record(id)
		}
		return out, nil
	}
	fetchIdx := make([]int, 0, len(ids))
	fetchIDs := make([]int64, 0, len(ids))
	for i, id := range ids {
		if ix.ds.Record(id) == nil {
			continue // deleted: no page read, out[i] stays nil
		}
		fetchIdx = append(fetchIdx, i)
		fetchIDs = append(fetchIDs, id)
	}
	hrs, err := ix.heap.FetchBatch(ctx, fetchIDs)
	if err != nil {
		return nil, err
	}
	for j, hr := range hrs {
		if hr == nil {
			continue // tombstoned on disk
		}
		out[fetchIdx[j]] = heapToRecord(fetchIDs[j], hr)
	}
	return out, nil
}

// Insert adds a new series to the dataset, the heap (when paged) and the
// tree, returning its id. With a WAL attached the mutation is staged,
// logged, and only then applied to the file (write.go); without one it
// mutates in place but unwinds on partial failure, so a failed insert
// never leaves an orphaned heap record.
func (ix *Index) Insert(name string, s series.Series) (int64, error) {
	if err := ix.checkWritable(); err != nil {
		return 0, err
	}
	if len(s) != ix.ds.N {
		return 0, fmt.Errorf("core: inserting series of length %d into dataset of length %d", len(s), ix.ds.N)
	}
	id := int64(len(ix.ds.Records))
	r := NewRecord(id, name, s)
	if ix.wal != nil && ix.stage != nil {
		if err := ix.insertStaged(r, name, s); err != nil {
			return 0, err
		}
	} else if err := ix.insertDirect(r); err != nil {
		return 0, err
	}
	ix.ds.Records = append(ix.ds.Records, r)
	return id, nil
}

// insertDirect applies an insert straight to the heap and tree (no WAL).
// The tree insertion runs between the heap append and the directory
// sync: if it fails, the append is unwound before anything references
// the new page, and only an unwind failure — in-memory state now
// unknown — fail-stops the index.
func (ix *Index) insertDirect(r *Record) error {
	if ix.heap != nil {
		rec, err := ix.heap.Append(recordToHeap(r))
		if err != nil {
			return err
		}
		if rec != r.ID {
			return fmt.Errorf("core: heap record %d for id %d", rec, r.ID)
		}
		if err := ix.tree.InsertPoint(r.Feature(ix.opts.K), r.ID); err != nil {
			if uerr := ix.heap.Unappend(rec); uerr != nil {
				ix.failStop(fmt.Errorf("unwinding insert of record %d: %v (after %w)", r.ID, uerr, err))
			}
			return err
		}
		if err := ix.heap.Sync(); err != nil {
			if uerr := ix.tree.Delete(geom.PointRect(r.Feature(ix.opts.K)), r.ID); uerr != nil {
				ix.failStop(fmt.Errorf("unwinding insert of record %d: %v (after %w)", r.ID, uerr, err))
			} else if uerr := ix.heap.Unappend(rec); uerr != nil {
				ix.failStop(fmt.Errorf("unwinding insert of record %d: %v (after %w)", r.ID, uerr, err))
			}
			return err
		}
		return nil
	}
	return ix.tree.InsertPoint(r.Feature(ix.opts.K), r.ID)
}

// Delete removes series id from the index and marks its record deleted
// (the heap page, if any, is left in place). With a WAL attached the
// mutation is staged and logged first (write.go); without one, a heap
// tombstone failure restores the just-removed tree entry so the record
// never becomes unreachable-but-live.
func (ix *Index) Delete(id int64) error {
	if err := ix.checkWritable(); err != nil {
		return err
	}
	r := ix.ds.Record(id)
	if r == nil {
		return fmt.Errorf("core: no record %d", id)
	}
	if ix.wal != nil && ix.stage != nil {
		if err := ix.deleteStaged(r); err != nil {
			return err
		}
	} else if err := ix.deleteDirect(r); err != nil {
		return err
	}
	ix.ds.Records[id] = nil
	return nil
}

// deleteDirect applies a delete straight to the tree and heap (no WAL),
// re-inserting the tree entry if the heap tombstone fails.
func (ix *Index) deleteDirect(r *Record) error {
	feat := r.Feature(ix.opts.K)
	if err := ix.tree.Delete(geom.PointRect(feat), r.ID); err != nil {
		return err
	}
	if ix.heap != nil {
		if err := ix.heap.Delete(r.ID); err != nil {
			if rerr := ix.tree.InsertPoint(feat, r.ID); rerr != nil {
				ix.failStop(fmt.Errorf("restoring index entry %d: %v (after %w)", r.ID, rerr, err))
			}
			return err
		}
	}
	return nil
}

// Manager returns the storage manager backing the index.
func (ix *Index) Manager() *storage.Manager { return ix.mgr }

// Heap returns the record heap (nil unless paged).
func (ix *Index) Heap() *heapfile.File { return ix.heap }

// Dataset returns the indexed dataset.
func (ix *Index) Dataset() *Dataset { return ix.ds }

// Options returns the build options.
func (ix *Index) Options() IndexOptions { return ix.opts }

// Tree exposes the underlying R*-tree (read-only use).
func (ix *Index) Tree() *rtree.Tree { return ix.tree }

// DiskStats returns the storage counters accumulated so far.
func (ix *Index) DiskStats() storage.Stats { return ix.mgr.Stats() }

// ResetDiskStats zeroes the storage counters.
func (ix *Index) ResetDiskStats() { ix.mgr.ResetStats() }

// DropBuffer empties the buffer pool (no-op without one).
func (ix *Index) DropBuffer() { ix.mgr.DropBuffer() }

// fullMBRs lifts the transformation MBRs of the given transforms to index
// dimensionality: the mean and std dimensions are untouched by
// transformations (identity), the DFT dimensions carry the mult-/add-MBR
// of Sec. 4.1.
func (ix *Index) fullMBRs(ts []transform.Transform) (mult, add geom.Rect) {
	m, a := transform.MBRs(ts, ix.comps)
	mult = geom.Rect{Lo: make(geom.Point, ix.dim), Hi: make(geom.Point, ix.dim)}
	add = geom.Rect{Lo: make(geom.Point, ix.dim), Hi: make(geom.Point, ix.dim)}
	mult.Lo[0], mult.Hi[0] = 1, 1
	mult.Lo[1], mult.Hi[1] = 1, 1
	for d := 0; d < 2*ix.opts.K; d++ {
		mult.Lo[2+d], mult.Hi[2+d] = m.Lo[d], m.Hi[d]
		add.Lo[2+d], add.Hi[2+d] = a.Lo[d], a.Hi[d]
	}
	return mult, add
}

// queryRect builds the search region for one transformation group: the
// bounding box of the transformed query features {t(q)}, expanded per
// dimension by the per-coefficient distance bound — eps/sqrt(2) on
// magnitudes (symmetry), and either the same (QRectPaper) or the provable
// angular bound (QRectSafe) on phases. The mean and std dimensions are
// unconstrained: the predicate is on normal forms (Sec. 3.2), so the
// originals' statistics must not filter.
func (ix *Index) queryRect(q *Record, ts []transform.Transform, eps float64, mode QRectMode) geom.Rect {
	epsC := epsScale(eps, ix.opts.UseSymmetry)
	lo := make(geom.Point, ix.dim)
	hi := make(geom.Point, ix.dim)
	lo[0], hi[0] = math.Inf(-1), math.Inf(1)
	lo[1], hi[1] = math.Inf(-1), math.Inf(1)
	for j := 1; j <= ix.opts.K; j++ {
		magDim, phDim := 2*j, 2*j+1
		qm, qp := q.Mags[j], q.Phases[j]
		// Transformed query magnitude and phase spans over the group.
		mLo, mHi := math.Inf(1), math.Inf(-1)
		pLo, pHi := math.Inf(1), math.Inf(-1)
		bLo, bHi := math.Inf(1), math.Inf(-1)
		for _, t := range ts {
			mv := t.A[2*j]*qm + t.B[2*j]
			pv := t.A[2*j+1]*qp + t.B[2*j+1]
			mLo, mHi = math.Min(mLo, mv), math.Max(mHi, mv)
			pLo, pHi = math.Min(pLo, pv), math.Max(pHi, pv)
			bLo, bHi = math.Min(bLo, t.B[2*j+1]), math.Max(bHi, t.B[2*j+1])
		}
		lo[magDim], hi[magDim] = mLo-epsC, mHi+epsC

		g := epsC // paper mode: plain box
		if mode == QRectSafe {
			g = phaseBound(epsC, mLo)
		}
		if mode == QRectSafe && (g >= math.Pi || qp+g > math.Pi || qp-g < -math.Pi) {
			// The acceptance interval wraps across the branch cut; admit
			// the full phase range shifted by the group's additive span.
			lo[phDim], hi[phDim] = bLo-math.Pi, bHi+math.Pi
		} else {
			lo[phDim], hi[phDim] = pLo-g, pHi+g
		}
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// oneSidedQueryRect builds the search region for the one-sided semantics
// (the literal Algorithm 1: find s with D(t(s), q) <= eps for some t in
// the rectangle): a box around the query's own features — the paper's
// "search rectangle of width eps around q" — with the per-coefficient
// bounds on magnitudes and phases. It also reports which dimensions are
// phases, because the transformed data-side phase values are unwrapped
// and must be compared modulo 2*pi (see intersectsModular).
func (ix *Index) oneSidedQueryRect(q *Record, eps float64, mode QRectMode) (qrect geom.Rect, phaseDims []bool) {
	epsC := epsScale(eps, ix.opts.UseSymmetry)
	lo := make(geom.Point, ix.dim)
	hi := make(geom.Point, ix.dim)
	phaseDims = make([]bool, ix.dim)
	lo[0], hi[0] = math.Inf(-1), math.Inf(1)
	lo[1], hi[1] = math.Inf(-1), math.Inf(1)
	for j := 1; j <= ix.opts.K; j++ {
		qm, qp := q.Mags[j], q.Phases[j]
		lo[2*j], hi[2*j] = qm-epsC, qm+epsC
		g := epsC
		if mode == QRectSafe {
			g = phaseBound(epsC, qm)
		}
		lo[2*j+1], hi[2*j+1] = qp-g, qp+g
		phaseDims[2*j+1] = true
	}
	return geom.Rect{Lo: lo, Hi: hi}, phaseDims
}

// intersectsModular reports whether the rectangles intersect when phase
// dimensions are interpreted modulo 2*pi: transformed data phases are
// unwrapped linear values (raw phase plus the additive span of the
// transformation rectangle), so a data interval may match the query
// interval only after a +-2*pi (or +-4*pi) translation.
func intersectsModular(data, query geom.Rect, phaseDims []bool) bool {
	const twoPi = 2 * math.Pi
	for d := range data.Lo {
		if !phaseDims[d] {
			if data.Lo[d] > query.Hi[d] || query.Lo[d] > data.Hi[d] {
				return false
			}
			continue
		}
		ok := false
		for k := -2.0; k <= 2.0; k++ {
			shift := k * twoPi
			if data.Lo[d]+shift <= query.Hi[d] && query.Lo[d] <= data.Hi[d]+shift {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// phaseBound returns a bound on the angular difference between two complex
// numbers u, v with |u - v| <= epsC and |v| >= magLo: both magnitudes are
// then at least m = magLo - epsC, and for fixed angle delta the chord is
// at least 2*m*sin(delta/2), so delta <= 2*asin(epsC/(2m)). Returns pi
// (no information) when m <= epsC/2... i.e. whenever the asin argument
// reaches 1 or the magnitudes may vanish.
func phaseBound(epsC, magLo float64) float64 {
	m := magLo - epsC
	if m <= 0 {
		return math.Pi
	}
	arg := epsC / (2 * m)
	if arg >= 1 {
		return math.Pi
	}
	return 2 * math.Asin(arg)
}

// Verify performs a full integrity check of the index and record store:
// R*-tree structural invariants, agreement between the tree's leaf
// entries and the records (every live record indexed exactly once, at
// exactly its feature point, and no entry referencing a missing record),
// and — in paged mode — that every live heap record decodes and matches
// the in-memory dataset. It returns the first problem found.
func (ix *Index) Verify() error {
	if err := ix.tree.CheckInvariants(); err != nil {
		return err
	}
	// Collect every leaf entry.
	type entryInfo struct {
		count int
		pt    geom.Point
	}
	indexed := make(map[int64]entryInfo)
	err := ix.tree.Visit(func(n *rtree.Node, level int) error {
		if level != 1 {
			return nil
		}
		for _, e := range n.Entries {
			info := indexed[e.Rec]
			info.count++
			info.pt = e.Rect.Lo
			indexed[e.Rec] = info
		}
		return nil
	})
	if err != nil {
		return err
	}
	live := 0
	for _, r := range ix.ds.Records {
		if r == nil {
			continue
		}
		live++
		info, ok := indexed[r.ID]
		if !ok {
			return fmt.Errorf("core: record %d missing from the index", r.ID)
		}
		if info.count != 1 {
			return fmt.Errorf("core: record %d indexed %d times", r.ID, info.count)
		}
		feat := r.Feature(ix.opts.K)
		for d := range feat {
			if feat[d] != info.pt[d] {
				return fmt.Errorf("core: record %d feature dim %d: index has %v, record computes %v", r.ID, d, info.pt[d], feat[d])
			}
		}
	}
	if len(indexed) != live {
		return fmt.Errorf("core: index holds %d entries for %d live records", len(indexed), live)
	}
	if ix.heap != nil {
		// Orphan detection: a heap record past the end of the dataset is
		// the signature of an insert that appended to the heap and then
		// failed before reaching the index; a live (untombstoned) heap
		// record the dataset marks deleted is a delete that removed the
		// tree entry but never tombstoned the page.
		if ix.heap.Len() != len(ix.ds.Records) {
			return fmt.Errorf("core: heap holds %d records but the dataset %d — orphaned append", ix.heap.Len(), len(ix.ds.Records))
		}
		for id, r := range ix.ds.Records {
			if r != nil {
				continue
			}
			hr, err := ix.heap.Read(int64(id))
			if err != nil {
				return fmt.Errorf("core: heap record %d: %w", id, err)
			}
			if hr != nil {
				return fmt.Errorf("core: record %d deleted from the index but live in the heap — orphaned delete", id)
			}
		}
		for _, r := range ix.ds.Records {
			if r == nil {
				continue
			}
			hr, err := ix.heap.Read(r.ID)
			if err != nil {
				return fmt.Errorf("core: heap record %d: %w", r.ID, err)
			}
			if hr == nil {
				return fmt.Errorf("core: live record %d tombstoned in the heap", r.ID)
			}
			if hr.Name != r.Name || hr.Mean != r.Mean || hr.Std != r.Std || len(hr.Raw) != len(r.Raw) {
				return fmt.Errorf("core: heap record %d diverges from the dataset", r.ID)
			}
			for i := range hr.Raw {
				if hr.Raw[i] != r.Raw[i] || hr.Mags[i] != r.Mags[i] || hr.Phases[i] != r.Phases[i] {
					return fmt.Errorf("core: heap record %d corrupted at sample %d", r.ID, i)
				}
			}
		}
	}
	return nil
}
