package core

import "testing"

func TestAnswerDigestOrderInsensitive(t *testing.T) {
	ms := []Match{
		{RecordID: 3, TransformIdx: 1, Distance: 0.5},
		{RecordID: 1, TransformIdx: 0, Distance: -1}, // ordering-certified
		{RecordID: 2, TransformIdx: 4, Distance: 1.25},
	}
	perm := []Match{ms[2], ms[0], ms[1]}
	if AnswerDigestRange(ms) != AnswerDigestRange(perm) {
		t.Error("range digest depends on match order")
	}
	if AnswerDigestRange(ms) == AnswerDigestRange(ms[:2]) {
		t.Error("range digest blind to a dropped match")
	}
	changed := append([]Match(nil), ms...)
	changed[0].TransformIdx = 2
	if AnswerDigestRange(ms) == AnswerDigestRange(changed) {
		t.Error("range digest blind to a transform index change")
	}

	ns := []NNMatch{
		{RecordID: 3, TransformIdx: 1, Distance: 0.5},
		{RecordID: 1, TransformIdx: 0, Distance: 2},
	}
	if AnswerDigestNN(ns) != AnswerDigestNN([]NNMatch{ns[1], ns[0]}) {
		t.Error("nn digest depends on match order")
	}
	// The same tuples digest identically across answer shapes by
	// construction (both fold (id, transform, distance)): replay relies
	// only on like-for-like comparison, but pin the empty case.
	if (AnswerDigestRange(nil) != AnswerDigestRange([]Match{})) || AnswerDigestRange(nil).Count != 0 {
		t.Error("empty digest not canonical")
	}
}
