package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tsq/internal/datagen"
	"tsq/internal/series"
	"tsq/internal/transform"
)

// buildFixture builds a dataset of count synthetic walks of length n plus
// its index.
func buildFixture(t testing.TB, seed int64, count, n int, opts IndexOptions) (*Dataset, *Index) {
	t.Helper()
	ds, err := NewDataset(datagen.RandomWalks(seed, count, n), nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ds, ix
}

// noTime returns st with the wall-time field zeroed, for tests that
// assert deterministic stats equality: every counter must match
// exactly, but LBTimeNs is a clock reading.
func noTime(st QueryStats) QueryStats {
	st.LBTimeNs = 0
	return st
}

// matchKeySet reduces matches to a comparable set of (record, transform)
// keys.
func matchKeySet(ms []Match) map[[2]int64]bool {
	out := make(map[[2]int64]bool, len(ms))
	for _, m := range ms {
		out[[2]int64{m.RecordID, int64(m.TransformIdx)}] = true
	}
	return out
}

func sameKeys(a, b map[[2]int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestMTEqualsSeqScanRange(t *testing.T) {
	// The central exactness claim (Lemma 1 + exact verification):
	// MT-index returns exactly the sequential-scan answer.
	ds, ix := buildFixture(t, 1, 400, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 20)
	eps := series.DistanceForCorrelation(64, 0.90)
	for trial := 0; trial < 10; trial++ {
		q := ds.Records[trial*17%len(ds.Records)]
		want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{})
		got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		if !sameKeys(matchKeySet(got), matchKeySet(want)) {
			t.Fatalf("trial %d: MT != seqscan (%d vs %d matches)", trial, len(got), len(want))
		}
		if len(want) == 0 {
			t.Fatalf("trial %d: degenerate test, no matches at all", trial)
		}
	}
}

func TestSTEqualsSeqScanRange(t *testing.T) {
	ds, ix := buildFixture(t, 2, 300, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 8, 15)
	eps := series.DistanceForCorrelation(64, 0.90)
	q := ds.Records[42]
	want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{})
	got, st, err := ix.STIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(matchKeySet(got), matchKeySet(want)) {
		t.Fatalf("ST != seqscan (%d vs %d matches)", len(got), len(want))
	}
	if st.IndexSearches != len(ts) {
		t.Errorf("ST ran %d index searches, want %d", st.IndexSearches, len(ts))
	}
}

func TestMTRangePropertyAcrossSeeds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		ds, err := NewDataset(datagen.RandomWalks(seed, 120, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := BuildIndex(ds, IndexOptions{K: 2, PageSize: 512, UseSymmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		// Mixed transformation set: moving averages, shifts, momentum.
		ts := []transform.Transform{
			transform.MovingAverage(n, 1+rng.Intn(n/2)),
			transform.MovingAverage(n, 1+rng.Intn(n/2)),
			transform.TimeShift(n, rng.Intn(8)),
			transform.Momentum(n),
			transform.Inverted(transform.MovingAverage(n, 1+rng.Intn(n/2))),
		}
		eps := 1 + rng.Float64()*6
		q := ds.Records[rng.Intn(len(ds.Records))]
		want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{})
		got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		return sameKeys(matchKeySet(got), matchKeySet(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestGroupedMTRangeSameAnswer(t *testing.T) {
	// Any partition of the transformation set yields the same answer.
	ds, ix := buildFixture(t, 3, 250, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 6, 29)
	eps := series.DistanceForCorrelation(64, 0.92)
	q := ds.Records[7]
	want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{})
	for _, per := range []int{1, 2, 5, 7, 24} {
		got, st, err := ix.MTIndexRange(q, ts, eps, RangeOptions{
			Mode:   QRectSafe,
			Groups: EqualPartition(len(ts), per),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !sameKeys(matchKeySet(got), matchKeySet(want)) {
			t.Fatalf("per=%d: grouped MT != seqscan", per)
		}
		wantSearches := (len(ts) + per - 1) / per
		if st.IndexSearches != wantSearches {
			t.Errorf("per=%d: %d searches, want %d", per, st.IndexSearches, wantSearches)
		}
	}
}

func TestPaperModeIsSubsetAndUsuallyExact(t *testing.T) {
	// QRectPaper can in principle dismiss matches but never fabricates
	// them (verification is exact). On this workload it is exact.
	ds, ix := buildFixture(t, 4, 300, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 10, 25)
	eps := series.DistanceForCorrelation(64, 0.92)
	q := ds.Records[11]
	want := matchKeySet(first(SeqScanRange(ds, q, ts, eps, RangeOptions{})))
	got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectPaper})
	if err != nil {
		t.Fatal(err)
	}
	for k := range matchKeySet(got) {
		if !want[k] {
			t.Fatalf("paper mode fabricated match %v", k)
		}
	}
	if !sameKeys(matchKeySet(got), want) {
		t.Log("paper mode dismissed some matches on this workload (allowed but unexpected)")
	}
}

func first(ms []Match, _ QueryStats) []Match { return ms }

func TestMTFiltersBetterThanST(t *testing.T) {
	// The headline effect: one traversal with an MBR costs far fewer disk
	// accesses than |T| traversals.
	ds, ix := buildFixture(t, 5, 2000, 128, DefaultIndexOptions())
	ts := transform.MovingAverageSet(128, 10, 25) // 16 transforms as in Fig. 5
	eps := series.DistanceForCorrelation(128, 0.96)
	q := ds.Records[123]
	_, stMT, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	_, stST, err := ix.STIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	if stMT.DAAll >= stST.DAAll {
		t.Errorf("MT disk accesses %d not below ST %d", stMT.DAAll, stST.DAAll)
	}
	if stMT.IndexSearches != 1 || stST.IndexSearches != 16 {
		t.Errorf("searches: MT=%d ST=%d", stMT.IndexSearches, stST.IndexSearches)
	}
	// And both beat reading every leaf |T| times, which is what seqscan's
	// comparisons correspond to.
	seqComparisons := len(ds.Records) * len(ts)
	if stMT.Comparisons >= seqComparisons {
		t.Errorf("MT comparisons %d not below seqscan %d", stMT.Comparisons, seqComparisons)
	}
}

func TestOrderedScaleRangeBinarySearch(t *testing.T) {
	// Sec. 4.4 end to end: a scale-factor set qualifies via binary search
	// with the same answer set and far fewer comparisons.
	ds, ix := buildFixture(t, 6, 300, 64, DefaultIndexOptions())
	factors := make([]float64, 32)
	for i := range factors {
		factors[i] = 1 + float64(i)*0.5
	}
	ts := transform.ScaleSet(64, factors)
	q := ds.Records[3]
	// Pick eps so a mid prefix of scales qualifies for close records.
	eps := 20.0
	wantMatches, stLinear := SeqScanRange(ds, q, ts, eps, RangeOptions{})
	gotMatches, stOrdered := SeqScanRange(ds, q, ts, eps, RangeOptions{UseOrdering: true})
	if !sameKeys(matchKeySet(gotMatches), matchKeySet(wantMatches)) {
		t.Fatal("ordered seqscan changed the answer")
	}
	if stOrdered.Comparisons >= stLinear.Comparisons/2 {
		t.Errorf("ordered comparisons %d vs linear %d: no win", stOrdered.Comparisons, stLinear.Comparisons)
	}
	// Same through the MT index.
	gotMT, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe, UseOrdering: true})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(matchKeySet(gotMT), matchKeySet(wantMatches)) {
		t.Fatal("ordered MT changed the answer")
	}
}

func TestJoinMTEqualsSeqScan(t *testing.T) {
	ds, ix := buildFixture(t, 7, 120, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 12)
	eps := series.DistanceForCorrelation(64, 0.85)
	want, _ := SeqScanJoin(ds, ts, eps)
	got, st, err := ix.MTIndexJoin(ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		a, b int64
		t    int
	}
	toSet := func(ms []JoinMatch) map[key]bool {
		s := make(map[key]bool)
		for _, m := range ms {
			if m.IDA >= m.IDB {
				t.Fatalf("unsorted pair %+v", m)
			}
			s[key{m.IDA, m.IDB, m.TransformIdx}] = true
		}
		return s
	}
	ws, gs := toSet(want), toSet(got)
	if len(ws) == 0 {
		t.Fatal("degenerate join test: no pairs")
	}
	if len(ws) != len(gs) {
		t.Fatalf("join sizes differ: MT %d vs seqscan %d", len(gs), len(ws))
	}
	for k := range ws {
		if !gs[k] {
			t.Fatalf("missing join match %+v", k)
		}
	}
	if st.DAAll == 0 {
		t.Error("join reported no disk accesses")
	}
}

func TestJoinSTEqualsMT(t *testing.T) {
	ds, ix := buildFixture(t, 8, 100, 64, DefaultIndexOptions())
	_ = ds
	ts := transform.MovingAverageSet(64, 5, 10)
	eps := series.DistanceForCorrelation(64, 0.85)
	mt, stMT, err := ix.MTIndexJoin(ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	st, stST, err := ix.STIndexJoin(ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	if len(mt) != len(st) {
		t.Fatalf("MT join %d matches, ST join %d", len(mt), len(st))
	}
	if stMT.DAAll >= stST.DAAll {
		t.Errorf("MT join accesses %d not below ST %d", stMT.DAAll, stST.DAAll)
	}
}

func TestNNMTEqualsSeqScan(t *testing.T) {
	ds, ix := buildFixture(t, 9, 400, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 20)
	q := ds.Records[17]
	for _, k := range []int{1, 5, 10} {
		want, _ := SeqScanNN(ds, q, ts, k, false)
		got, st, err := ix.MTIndexNN(q, ts, k, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("k=%d: got %d results", k, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Distance-want[i].Distance) > 1e-9 {
				t.Fatalf("k=%d rank %d: distance %v vs %v", k, i, got[i].Distance, want[i].Distance)
			}
		}
		if st.Candidates >= len(ds.Records) {
			t.Errorf("k=%d: NN visited every record (%d); no pruning", k, st.Candidates)
		}
	}
}

func TestEqualPartition(t *testing.T) {
	got := EqualPartition(7, 3)
	want := [][]int{{0, 1, 2}, {3, 4, 5}, {6}}
	if len(got) != len(want) {
		t.Fatalf("groups = %v", got)
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("groups = %v", got)
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("groups = %v", got)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for perGroup=0")
		}
	}()
	EqualPartition(5, 0)
}

func TestClusterPartitionSeparatesInvertedSet(t *testing.T) {
	// The Sec. 5.2 two-cluster set: moving averages plus their inversions.
	// The cluster partitioner must not span the gap.
	_, ix := buildFixture(t, 10, 100, 64, DefaultIndexOptions())
	base := transform.MovingAverageSet(64, 6, 17)
	ts := transform.WithInverted(base)
	groups := ix.ClusterPartition(ts, 3)
	if len(groups) != 2 {
		t.Fatalf("found %d clusters, want 2 (groups %v)", len(groups), groups)
	}
	for _, g := range groups {
		inverted := g[0] >= len(base)
		for _, m := range g {
			if (m >= len(base)) != inverted {
				t.Fatalf("group %v mixes original and inverted transforms", g)
			}
		}
	}
}

func TestOptimalPartitionValidAndNoWorse(t *testing.T) {
	ds, ix := buildFixture(t, 11, 600, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 6, 21)
	eps := series.DistanceForCorrelation(64, 0.92)
	q := ds.Records[5]
	groups, cost, err := ix.OptimalPartition(q, ts, eps, QRectSafe, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	// Valid partition: covers 0..n-1 exactly once, contiguous.
	seen := make(map[int]bool)
	for _, g := range groups {
		for i, idx := range g {
			if seen[idx] {
				t.Fatalf("index %d in two groups", idx)
			}
			seen[idx] = true
			if i > 0 && g[i] != g[i-1]+1 {
				t.Fatalf("group %v not contiguous", g)
			}
		}
	}
	if len(seen) != len(ts) {
		t.Fatalf("partition covers %d of %d transforms", len(seen), len(ts))
	}
	// Its estimated cost is no worse than the single-rectangle and the
	// all-singletons baselines (it considered both).
	caLeaf, _ := ix.AvgLeafCapacity()
	costOf := func(groups [][]int) float64 {
		total := 0.0
		for _, g := range groups {
			sub := make([]transform.Transform, len(g))
			for i, idx := range g {
				sub[i] = ts[idx]
			}
			mult, add := ix.fullMBRs(sub)
			qrect := ix.queryRect(q, sub, eps, QRectPaper)
			var probe QueryStats
			if _, err := ix.filter(mult, add, qrect, nil, &probe); err != nil {
				t.Fatal(err)
			}
			total += DefaultCostParams().Cost(probe.DAAll, probe.DALeaf, len(sub), caLeaf)
		}
		return total
	}
	if single := costOf(EqualPartition(len(ts), len(ts))); cost > single+1e-9 {
		t.Errorf("optimal cost %v worse than single rectangle %v", cost, single)
	}
	if singletons := costOf(EqualPartition(len(ts), 1)); cost > singletons+1e-9 {
		t.Errorf("optimal cost %v worse than singletons %v", cost, singletons)
	}
	// The answer with the optimal partition is still exact.
	want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{})
	got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe, Groups: groups})
	if err != nil {
		t.Fatal(err)
	}
	if !sameKeys(matchKeySet(got), matchKeySet(want)) {
		t.Error("optimal partition changed the answer")
	}
}

func TestCostParams(t *testing.T) {
	p := DefaultCostParams()
	if got := p.Cost(100, 10, 16, 20); math.Abs(got-(100+20*0.4*10*16)) > 1e-9 {
		t.Errorf("Cost = %v", got)
	}
	p.CALeaf = 5
	if got := p.Cost(100, 10, 16, 20); math.Abs(got-(100+5*0.4*10*16)) > 1e-9 {
		t.Errorf("Cost with explicit CALeaf = %v", got)
	}
	if got := p.CostOfStats(QueryStats{DAAll: 7, Comparisons: 10}); math.Abs(got-(7+4)) > 1e-9 {
		t.Errorf("CostOfStats = %v", got)
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewDataset([]series.Series{{1, 2}, {1, 2, 3}}, nil); err == nil {
		t.Error("ragged dataset accepted")
	}
	if _, err := NewDataset([]series.Series{{1, 2}}, []string{"a", "b"}); err == nil {
		t.Error("mismatched names accepted")
	}
	ds, err := NewDataset([]series.Series{{1, 2, 3, 4}}, []string{"abc"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Record(0).Name != "abc" {
		t.Error("name not propagated")
	}
	if ds.Record(99) != nil || ds.Record(-1) != nil {
		t.Error("out-of-range Record lookup returned a record")
	}
	if _, err := ds.QueryRecord(series.Series{1, 2}); err == nil {
		t.Error("short query accepted")
	}
	q, err := ds.QueryRecord(series.Series{4, 3, 2, 1})
	if err != nil || q.ID != -1 {
		t.Errorf("QueryRecord: %v %v", q, err)
	}
}

func TestBuildIndexValidation(t *testing.T) {
	ds, _ := NewDataset(datagen.RandomWalks(1, 10, 8), nil)
	if _, err := BuildIndex(ds, IndexOptions{K: 4}); err == nil {
		t.Error("k too large for n=8 accepted")
	}
	ix, err := BuildIndex(ds, IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Options().K != 2 {
		t.Errorf("default K = %d", ix.Options().K)
	}
	if ix.Tree().Len() != 10 {
		t.Errorf("tree holds %d records", ix.Tree().Len())
	}
}

func TestRecordRoundTrip(t *testing.T) {
	s := series.Series{3, 1, 4, 1, 5, 9, 2, 6}
	r := NewRecord(5, "pi", s)
	// Raw preserved, normal form has zero mean / unit std.
	if series.EuclideanDistance(r.Raw, s) != 0 {
		t.Error("Raw mutated")
	}
	if math.Abs(r.Norm.Mean()) > 1e-9 || math.Abs(r.Norm.Std()-1) > 1e-9 {
		t.Error("Norm not normalized")
	}
	// Spectrum round-trips through polar storage.
	X := r.Spectrum()
	if len(X) != 8 {
		t.Fatalf("spectrum length %d", len(X))
	}
	// First coefficient of a normal form is zero.
	if r.Mags[0] > 1e-9 {
		t.Errorf("|F_0| = %v, want 0", r.Mags[0])
	}
	// Feature layout.
	f := r.Feature(2)
	if len(f) != 6 || f[0] != r.Mean || f[1] != r.Std || f[2] != r.Mags[1] || f[5] != r.Phases[2] {
		t.Errorf("feature = %v", f)
	}
}

func TestEmptyTransformSet(t *testing.T) {
	ds, ix := buildFixture(t, 12, 20, 32, DefaultIndexOptions())
	q := ds.Records[0]
	got, st, err := ix.MTIndexRange(q, nil, 1, RangeOptions{})
	if err != nil || len(got) != 0 || st.DAAll != 0 {
		t.Errorf("empty set: %v %v %v", got, st, err)
	}
	j, _, err := ix.MTIndexJoin(nil, 1, RangeOptions{})
	if err != nil || len(j) != 0 {
		t.Errorf("empty join: %v %v", j, err)
	}
}

func TestBadGroupIndexRejected(t *testing.T) {
	ds, ix := buildFixture(t, 13, 20, 32, DefaultIndexOptions())
	ts := transform.MovingAverageSet(32, 2, 4)
	_, _, err := ix.MTIndexRange(ds.Records[0], ts, 1, RangeOptions{Groups: [][]int{{0, 9}}})
	if err == nil {
		t.Error("out-of-range group index accepted")
	}
}

func TestJoinWrapStressEqualsSeqScan(t *testing.T) {
	// Inverted transformations add pi to every phase, pushing values
	// across the branch cut — a stress test for the join filter's modular
	// phase reasoning (a regression test for the wrap-window prune).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		ds, err := NewDataset(datagen.RandomWalks(seed, 60, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := BuildIndex(ds, IndexOptions{K: 2, PageSize: 512, UseSymmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		ts := transform.WithInverted(transform.MovingAverageSet(n, 2, 3+rng.Intn(4)))
		eps := 2 + rng.Float64()*5
		want, _ := SeqScanJoin(ds, ts, eps)
		got, _, err := ix.MTIndexJoin(ts, eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Logf("seed %d: MT join %d vs seqscan %d", seed, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestRangeWrapStressEqualsSeqScan(t *testing.T) {
	// Same stress for the range path: inverted transformations plus
	// queries whose phases sit anywhere on the circle.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
		n := 32
		ds, err := NewDataset(datagen.RandomWalks(seed, 100, n), nil)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := BuildIndex(ds, IndexOptions{K: 2, PageSize: 512, UseSymmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		ts := transform.WithInverted(transform.MovingAverageSet(n, 1, 2+rng.Intn(6)))
		eps := 1 + rng.Float64()*6
		q := ds.Records[rng.Intn(len(ds.Records))]
		want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{})
		got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
		if err != nil {
			t.Fatal(err)
		}
		return sameKeys(matchKeySet(got), matchKeySet(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMTExactWithGeneralTransforms(t *testing.T) {
	// Reverse (phase multiplier -1), EMA and WMA through the full MT path.
	ds, ix := buildFixture(t, 60, 200, 64, DefaultIndexOptions())
	ts := []transform.Transform{
		transform.Reverse(64),
		transform.EMA(64, 0.25),
		transform.WeightedMovingAverage(64, []float64{4, 3, 2, 1}),
		transform.MovingAverage(64, 7),
	}
	for _, eps := range []float64{2, 5, 9} {
		for _, qid := range []int{3, 77, 150} {
			q := ds.Records[qid]
			want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{})
			got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(matchKeySet(got), matchKeySet(want)) {
				t.Fatalf("eps=%v q=%d: MT %d vs seqscan %d", eps, qid, len(got), len(want))
			}
		}
	}
}

func TestPlannerPicksReasonably(t *testing.T) {
	ds, ix := buildFixture(t, 70, 800, 128, IndexOptions{K: 2, PageSize: 1024, UseSymmetry: true})
	q := ds.Records[13]
	eps := 3.0
	params := DefaultCostParams()

	// One transformation: ST and MT coincide; either index plan must beat
	// the scan and be chosen.
	one := transform.MovingAverageSet(128, 10, 10)
	plan, err := ix.PlanRange(q, one, eps, QRectSafe, params)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind == PlanSeqScan {
		t.Errorf("planner chose seqscan for |T|=1: %s", plan)
	}

	// Many transformations: MT should win, and the plan must be
	// executable with the same answer as the scan.
	many := transform.MovingAverageSet(128, 5, 34)
	plan, err = ix.PlanRange(q, many, eps, QRectSafe, params)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != PlanMTIndex {
		t.Errorf("planner chose %v for |T|=30", plan.Kind)
	}
	got, _, err := ix.MTIndexRange(q, many, eps, RangeOptions{Mode: QRectSafe, Groups: plan.Groups})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := SeqScanRange(ds, q, many, eps, RangeOptions{})
	if !sameKeys(matchKeySet(got), matchKeySet(want)) {
		t.Error("planned MT query changed the answer")
	}
	if len(plan.Considered) < 3 {
		t.Errorf("planner considered only %d alternatives", len(plan.Considered))
	}

	// Empty set degenerates gracefully.
	empty, err := ix.PlanRange(q, nil, eps, QRectSafe, params)
	if err != nil || empty.Kind != PlanSeqScan {
		t.Errorf("empty set: %v %v", empty, err)
	}
}

func TestPlannerClusterAwareOnTwoClusterSet(t *testing.T) {
	ds, ix := buildFixture(t, 71, 800, 128, IndexOptions{K: 2, PageSize: 1024, UseSymmetry: true})
	ts := transform.WithInverted(transform.MovingAverageSet(128, 6, 29))
	plan, err := ix.PlanRange(ds.Records[5], ts, 3.0, QRectSafe, DefaultCostParams())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Kind != PlanMTIndex {
		t.Fatalf("planner chose %v", plan.Kind)
	}
	// The chosen packing must not put original and inverted transforms in
	// one rectangle (the planner saw the clustered alternative).
	half := len(ts) / 2
	for _, g := range plan.Groups {
		inverted := g[0] >= half
		for _, idx := range g {
			if (idx >= half) != inverted {
				t.Fatalf("chosen packing spans the cluster gap: %v", g)
			}
		}
	}
}

func TestRawRangeEqualsSeqScan(t *testing.T) {
	// Whole-matching on originals: the mean/std dimensions do the
	// filtering (the reason Sec. 5 stores them).
	f := func(seed int64) bool {
		ds, err := NewDataset(datagen.StockMarket(seed, 200, 64, datagen.DefaultMarketOptions()), nil)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := BuildIndex(ds, IndexOptions{K: 2, PageSize: 1024, UseSymmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		q := ds.Records[rng.Intn(len(ds.Records))]
		eps := 1 + rng.Float64()*40
		want, _ := SeqScanRawRange(ds, q, eps)
		got, st, err := ix.RawRange(q, eps)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Logf("seed %d eps %.1f: raw range %d vs scan %d", seed, eps, len(got), len(want))
			return false
		}
		gs := map[int64]bool{}
		for _, m := range got {
			gs[m.RecordID] = true
		}
		for _, m := range want {
			if !gs[m.RecordID] {
				return false
			}
		}
		// The filter must actually filter: with wildly varying price
		// levels, most records are dismissed before verification.
		return st.Candidates < len(ds.Records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestRawRangeSelfMatch(t *testing.T) {
	ds, ix := buildFixture(t, 80, 100, 32, DefaultIndexOptions())
	q := ds.Records[42]
	got, _, err := ix.RawRange(q, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].RecordID != 42 || got[0].Distance > 1e-9 {
		t.Errorf("self raw match: %v", got)
	}
}

func TestQueryWithTinyCoefficientsStaysExact(t *testing.T) {
	// A query whose indexed coefficients are nearly zero (energy in high
	// frequencies only) drives the safe phase bound to the full range;
	// the search must degrade gracefully, not dismiss.
	n := 64
	ss := datagen.RandomWalks(81, 150, n)
	// Replace a few series with high-frequency signals: coefficient 1 and
	// 2 nearly vanish.
	for i := 0; i < 10; i++ {
		s := make(series.Series, n)
		for j := range s {
			s[j] = math.Cos(2*math.Pi*float64(j)*float64(n/2-i)/float64(n)) * 5
		}
		ss[i] = s
	}
	ds, err := NewDataset(ss, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(ds, DefaultIndexOptions())
	if err != nil {
		t.Fatal(err)
	}
	ts := transform.MovingAverageSet(n, 2, 12)
	for _, qid := range []int{0, 3, 9} { // the high-frequency queries
		q := ds.Records[qid]
		if q.Mags[1] > 0.5 {
			t.Fatalf("test setup: query %d has |F1| = %v, want tiny", qid, q.Mags[1])
		}
		for _, eps := range []float64{1, 4, 8} {
			want, _ := SeqScanRange(ds, q, ts, eps, RangeOptions{})
			got, _, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
			if err != nil {
				t.Fatal(err)
			}
			if !sameKeys(matchKeySet(got), matchKeySet(want)) {
				t.Fatalf("q=%d eps=%v: MT %d vs seqscan %d", qid, eps, len(got), len(want))
			}
		}
	}
}

func TestPhaseBoundProperties(t *testing.T) {
	// The safe angular bound must actually bound: for complex u, v with
	// |u - v| <= epsC and |v| >= magLo, the angular difference is at most
	// phaseBound(epsC, magLo).
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 2000; trial++ {
		magLo := rng.Float64() * 5
		epsC := rng.Float64() * 3
		g := phaseBound(epsC, magLo)
		if g > math.Pi {
			t.Fatalf("bound %v exceeds pi", g)
		}
		// Sample v with |v| >= magLo and u within epsC of v.
		vMag := magLo + rng.Float64()*2
		vArg := (rng.Float64()*2 - 1) * math.Pi
		v := complex(vMag*math.Cos(vArg), vMag*math.Sin(vArg))
		r := rng.Float64() * epsC
		a := (rng.Float64()*2 - 1) * math.Pi
		u := v + complex(r*math.Cos(a), r*math.Sin(a))
		du := math.Atan2(imag(u), real(u))
		delta := math.Abs(du - vArg)
		if delta > math.Pi {
			delta = 2*math.Pi - delta
		}
		if delta > g+1e-9 {
			t.Fatalf("angular difference %v exceeds bound %v (epsC=%v magLo=%v)", delta, g, epsC, magLo)
		}
	}
}

func TestParallelSeqScanEqualsSerial(t *testing.T) {
	ds, _ := buildFixture(t, 90, 500, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 20)
	eps := series.DistanceForCorrelation(64, 0.9)
	q := ds.Records[7]
	for _, opts := range []RangeOptions{{}, {OneSided: true}} {
		want, wantSt := SeqScanRange(ds, q, ts, eps, opts)
		for _, workers := range []int{0, 1, 2, 7, 64, 1000} {
			got, gotSt := SeqScanRangeParallel(ds, q, ts, eps, opts, workers)
			if !sameKeys(matchKeySet(got), matchKeySet(want)) {
				t.Fatalf("workers=%d opts=%+v: parallel scan diverged", workers, opts)
			}
			if gotSt.Comparisons != wantSt.Comparisons || gotSt.Candidates != wantSt.Candidates {
				t.Fatalf("workers=%d: stats %+v vs %+v", workers, gotSt, wantSt)
			}
		}
	}
	// Ordered (scale) sets too.
	scales := transform.ScaleSet(64, []float64{1, 2, 4, 8, 16})
	want, _ := SeqScanRange(ds, q, scales, 30, RangeOptions{UseOrdering: true})
	got, _ := SeqScanRangeParallel(ds, q, scales, 30, RangeOptions{UseOrdering: true}, 4)
	if !sameKeys(matchKeySet(got), matchKeySet(want)) {
		t.Fatal("parallel ordered scan diverged")
	}
}

func TestClosestPairsMTEqualsSeqScan(t *testing.T) {
	ds, ix := buildFixture(t, 95, 250, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 14)
	for _, k := range []int{1, 5, 12} {
		want, _ := SeqScanClosestPairs(ds, ts, k)
		got, st, err := ix.MTIndexClosestPairs(ts, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("k=%d: got %d pairs", k, len(got))
		}
		for i := range got {
			if math.Abs(got[i].Distance-want[i].Distance) > 1e-9 {
				t.Fatalf("k=%d rank %d: %v vs %v", k, i, got[i].Distance, want[i].Distance)
			}
		}
		// The whole point: nowhere near the quadratic pair count.
		total := len(ds.Records) * (len(ds.Records) - 1) / 2
		if st.Candidates >= total/2 {
			t.Errorf("k=%d: resolved %d of %d pairs; no pruning", k, st.Candidates, total)
		}
	}
	// Degenerate inputs.
	if got, _, err := ix.MTIndexClosestPairs(ts, 0); err != nil || len(got) != 0 {
		t.Errorf("k=0: %v %v", got, err)
	}
	if got, _, err := ix.MTIndexClosestPairs(nil, 3); err != nil || len(got) != 0 {
		t.Errorf("empty set: %v %v", got, err)
	}
}

func TestClosestPairsStockWorkload(t *testing.T) {
	ds, err := NewDataset(datagen.StockMarket(96, 300, 128, datagen.DefaultMarketOptions()), nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndex(ds, IndexOptions{K: 2, PageSize: 1024, UseSymmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	ts := transform.MovingAverageSet(128, 5, 20)
	want, _ := SeqScanClosestPairs(ds, ts, 5)
	got, _, err := ix.MTIndexClosestPairs(ts, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(got[i].Distance-want[i].Distance) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestAnalyticalEstimatorIsPositionBlind(t *testing.T) {
	// The Sec. 4.3 argument, reproduced: an extent-only access model
	// assigns the same cost to equal-sized query rectangles regardless of
	// where they sit in the data distribution, while measured accesses
	// depend heavily on position (dense vs sparse feature regions) —
	// which is why the paper (and our planner) rely on measured probes.
	ds, ix := buildFixture(t, 97, 1000, 64, IndexOptions{K: 2, PageSize: 1024, UseSymmetry: true})
	// Pick a query in the densest region (median |F1|) and one at the
	// sparse extreme (max |F1|).
	ids := make([]int, len(ds.Records))
	for i := range ids {
		ids[i] = i
	}
	sortByMag := func(a, b int) bool { return ds.Records[a].Mags[1] < ds.Records[b].Mags[1] }
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && sortByMag(ids[j], ids[j-1]); j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	dense := ds.Records[ids[len(ids)/2]]
	sparse := ds.Records[ids[0]] // the |F1| distribution is left-skewed: the sparse tail is at the bottom
	sub := transform.MovingAverageSet(64, 10, 10)
	eps := 1.2

	estimate := func(q *Record) float64 {
		qrect := ix.queryRect(q, sub, eps, QRectPaper)
		est, err := ix.AnalyticalAccessEstimate(qrect)
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	measure := func(q *Record) int {
		mult, add := ix.fullMBRs(sub)
		qrect := ix.queryRect(q, sub, eps, QRectPaper)
		var st QueryStats
		if _, err := ix.filter(mult, add, qrect, nil, &st); err != nil {
			t.Fatal(err)
		}
		return st.DAAll
	}
	eDense, eSparse := estimate(dense), estimate(sparse)
	mDense, mSparse := measure(dense), measure(sparse)
	// The model sees no difference (the paper-box extents are identical)...
	if relDiff := math.Abs(eDense-eSparse) / math.Max(eDense, eSparse); relDiff > 0.05 {
		t.Fatalf("analytical estimates unexpectedly position-sensitive: %v vs %v", eDense, eSparse)
	}
	// ...while the measured accesses differ substantially.
	if float64(mDense) < 1.5*float64(mSparse) {
		t.Fatalf("measured accesses too similar to demonstrate the point: dense=%d sparse=%d", mDense, mSparse)
	}
	t.Logf("analytical: dense=%.1f sparse=%.1f; measured: dense=%d sparse=%d", eDense, eSparse, mDense, mSparse)
}

func TestAnalyticalEstimatorSanity(t *testing.T) {
	ds, ix := buildFixture(t, 98, 600, 64, IndexOptions{K: 2, PageSize: 1024, UseSymmetry: true})
	q := ds.Records[0]
	small := ix.queryRect(q, transform.MovingAverageSet(64, 10, 10), 0.5, QRectSafe)
	large := ix.queryRect(q, transform.MovingAverageSet(64, 10, 10), 8, QRectSafe)
	eSmall, err := ix.AnalyticalAccessEstimate(small)
	if err != nil {
		t.Fatal(err)
	}
	eLarge, err := ix.AnalyticalAccessEstimate(large)
	if err != nil {
		t.Fatal(err)
	}
	if eSmall >= eLarge {
		t.Errorf("estimate not monotone in query size: %v vs %v", eSmall, eLarge)
	}
	if eSmall < 1 {
		t.Errorf("estimate below 1 (the root read): %v", eSmall)
	}
	// Statistics cover all levels and count all records' leaves.
	stats, world, err := ix.TreeStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != ix.tree.Height() {
		t.Errorf("stats for %d levels, height %d", len(stats), ix.tree.Height())
	}
	if world.Dim() != 6 {
		t.Errorf("world dim %d", world.Dim())
	}
}

func TestParallelMTVerificationEqualsSerial(t *testing.T) {
	ds, ix := buildFixture(t, 99, 600, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 20)
	eps := series.DistanceForCorrelation(64, 0.9)
	q := ds.Records[11]
	want, wantSt, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 1000} {
		got, gotSt, err := ix.MTIndexRange(q, ts, eps, RangeOptions{Mode: QRectSafe, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !sameKeys(matchKeySet(got), matchKeySet(want)) {
			t.Fatalf("workers=%d: parallel verification diverged", workers)
		}
		if gotSt.Comparisons != wantSt.Comparisons || gotSt.Candidates != wantSt.Candidates {
			t.Fatalf("workers=%d: stats %+v vs %+v", workers, gotSt, wantSt)
		}
	}
}
