package core

import (
	"context"
	"reflect"
	"testing"

	"tsq/internal/series"
	"tsq/internal/transform"
)

// TestExecutorMatchesSerial runs a batch of range and NN queries through
// the executor at several worker counts and checks every result equals
// the query run alone.
func TestExecutorMatchesSerial(t *testing.T) {
	ds, ix := buildFixture(t, 11, 200, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 16)
	eps := series.DistanceForCorrelation(64, 0.92)

	var reqs []ExecRequest
	for i := 0; i < 24; i++ {
		r := ds.Records[(i*13)%len(ds.Records)]
		req := ExecRequest{Record: r, Transforms: ts, Eps: eps}
		switch i % 4 {
		case 1:
			req.SeqScan = true
		case 2:
			req.K = 3
		case 3:
			req.Opts.Groups = EqualPartition(len(ts), 4)
		}
		reqs = append(reqs, req)
	}

	serial := NewExecutor(ix, 1).Run(context.Background(), reqs)
	for _, workers := range []int{2, 4, 8} {
		got := NewExecutor(ix, workers).Run(context.Background(), reqs)
		if len(got) != len(reqs) {
			t.Fatalf("workers=%d: %d results for %d requests", workers, len(got), len(reqs))
		}
		for i := range got {
			if got[i].Err != nil || serial[i].Err != nil {
				t.Fatalf("workers=%d req=%d: err=%v serial-err=%v", workers, i, got[i].Err, serial[i].Err)
			}
			gm, sm := got[i].Matches, serial[i].Matches
			SortMatches(gm)
			SortMatches(sm)
			if !reflect.DeepEqual(gm, sm) {
				t.Fatalf("workers=%d req=%d: matches diverge from serial", workers, i)
			}
			if !reflect.DeepEqual(got[i].NN, serial[i].NN) {
				t.Fatalf("workers=%d req=%d: NN answers diverge", workers, i)
			}
			if noTime(got[i].Stats) != noTime(serial[i].Stats) {
				t.Fatalf("workers=%d req=%d: stats %+v, want %+v", workers, i, got[i].Stats, serial[i].Stats)
			}
		}
	}
}

// TestExecutorMemoizesQueryFeatures checks that distinct requests sharing
// a query series resolve to the same featurized record (one DFT for the
// whole batch) and that different series do not collide.
func TestExecutorMemoizesQueryFeatures(t *testing.T) {
	ds, ix := buildFixture(t, 13, 50, 32, DefaultIndexOptions())
	e := NewExecutor(ix, 4)
	q1 := ds.Records[1].Raw.Clone()
	q2 := ds.Records[2].Raw.Clone()
	r1a, err := e.queryRecord(q1)
	if err != nil {
		t.Fatal(err)
	}
	r1b, err := e.queryRecord(append(series.Series(nil), q1...)) // equal content, different backing array
	if err != nil {
		t.Fatal(err)
	}
	if r1a != r1b {
		t.Error("equal query series were featurized twice")
	}
	r2, err := e.queryRecord(q2)
	if err != nil {
		t.Fatal(err)
	}
	if r2 == r1a {
		t.Error("distinct query series shared a record")
	}
	if _, err := e.queryRecord(q1[:8]); err == nil {
		t.Error("length mismatch not rejected")
	}
}

// TestExecutorBatchBySeries exercises the raw-series path end to end:
// ad-hoc query series, concurrent workers, answers identical to the
// record-based queries.
func TestExecutorBatchBySeries(t *testing.T) {
	ds, ix := buildFixture(t, 17, 150, 64, DefaultIndexOptions())
	ts := transform.MovingAverageSet(64, 5, 12)
	eps := series.DistanceForCorrelation(64, 0.9)
	var reqs []ExecRequest
	for i := 0; i < 16; i++ {
		// Half the batch shares one query series to exercise the memo.
		id := (i % 2) * 7
		reqs = append(reqs, ExecRequest{Query: ds.Records[id].Raw.Clone(), Transforms: ts, Eps: eps})
	}
	results := NewExecutor(ix, 8).Run(context.Background(), reqs)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("req %d: %v", i, res.Err)
		}
		id := int64((i % 2) * 7)
		want, _, err := ix.MTIndexRange(ds.Records[id], ts, eps, RangeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got := res.Matches
		SortMatches(got)
		SortMatches(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("req %d: batch answer diverges", i)
		}
	}
}

// TestExecutorCancellation checks that cancelling the context fails the
// not-yet-started remainder of a batch with ctx.Err() while leaving
// completed results intact.
func TestExecutorCancellation(t *testing.T) {
	ds, ix := buildFixture(t, 19, 100, 32, DefaultIndexOptions())
	ts := transform.MovingAverageSet(32, 3, 10)
	eps := series.DistanceForCorrelation(32, 0.9)
	reqs := make([]ExecRequest, 64)
	for i := range reqs {
		reqs[i] = ExecRequest{Record: ds.Records[i%len(ds.Records)], Transforms: ts, Eps: eps}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before Run: every query must fail fast
	results := NewExecutor(ix, 4).Run(ctx, reqs)
	for i, res := range results {
		if res.Err != context.Canceled {
			t.Fatalf("req %d: err = %v, want context.Canceled", i, res.Err)
		}
	}
}
