// Package core implements the paper's contribution: the DFT feature index
// over time series and the three algorithms for similarity range queries
// under transformation sets — sequential scan, ST-index (one index
// traversal per transformation) and MT-index (Algorithm 1: one traversal
// applying the transformation MBR to index rectangles on the fly) — plus
// the transformed spatial join (Query 2), transformed nearest-neighbor
// search, the multi-rectangle partitioners of Sec. 4.3 and the cost model
// of Eq. 18/20.
package core

import (
	"fmt"
	"math"

	"tsq/internal/dft"
	"tsq/internal/geom"
	"tsq/internal/series"
	"tsq/internal/transform"
)

// Record is one stored time series: the original values, the normal form
// it is compared in, and the polar spectrum of the normal form that the
// distance kernel and the feature index consume.
type Record struct {
	ID   int64
	Name string
	// Raw is the original series.
	Raw series.Series
	// Norm is the normal form (mean 0, sample std 1); all similarity
	// predicates are evaluated on it (Sec. 3.2).
	Norm series.Series
	// Mean and Std reconstruct Raw from Norm.
	Mean, Std float64
	// Mags and Phases are the polar DFT spectrum of Norm.
	Mags, Phases []float64
}

// NewRecord normalizes s and precomputes its spectrum.
func NewRecord(id int64, name string, s series.Series) *Record {
	norm, mean, std := s.NormalForm()
	X := dft.TransformReal(norm)
	polar := dft.ToPolar(X)
	mags := make([]float64, len(polar))
	phases := make([]float64, len(polar))
	for i, p := range polar {
		mags[i] = p.Mag
		phases[i] = p.Phase
	}
	return &Record{
		ID:     id,
		Name:   name,
		Raw:    s.Clone(),
		Norm:   norm,
		Mean:   mean,
		Std:    std,
		Mags:   mags,
		Phases: phases,
	}
}

// Spectrum reconstructs the complex spectrum of the normal form.
func (r *Record) Spectrum() []complex128 {
	polar := make([]dft.Polar, len(r.Mags))
	for i := range polar {
		polar[i] = dft.Polar{Mag: r.Mags[i], Phase: r.Phases[i]}
	}
	return dft.FromPolar(polar)
}

// N returns the series length.
func (r *Record) N() int { return len(r.Raw) }

// ApplyTransform returns a derived record whose spectrum is t applied to
// r's spectrum. It is how the one-sided query semantics pre-transforms
// the query point (e.g. by a momentum) before data-side transformations
// are compared to it.
func (r *Record) ApplyTransform(t transform.Transform) *Record {
	m, p := t.ApplyPolarSpectrum(r.Mags, r.Phases)
	return &Record{
		ID:     r.ID,
		Name:   r.Name + "|" + t.Name,
		Raw:    r.Raw.Clone(),
		Norm:   r.Norm.Clone(),
		Mean:   r.Mean,
		Std:    r.Std,
		Mags:   m,
		Phases: p,
	}
}

// Feature returns the record's feature point for an index with k DFT
// coefficients: [mean, std, |F_1|, angle(F_1), ..., |F_k|, angle(F_k)],
// the Sec. 5 layout (coefficient 0 of a normal form is zero and skipped).
func (r *Record) Feature(k int) geom.Point {
	p := make(geom.Point, 2+2*k)
	p[0] = r.Mean
	p[1] = r.Std
	for j := 1; j <= k; j++ {
		p[2*j] = r.Mags[j]
		p[2*j+1] = r.Phases[j]
	}
	return p
}

// Dataset is the stored relation: a collection of equal-length records.
type Dataset struct {
	// N is the common series length.
	N       int
	Records []*Record
}

// NewDataset builds a dataset from the given series, assigning ids
// 0..len-1. Names may be nil or must match the series count. All series
// must have equal, nonzero length.
func NewDataset(ss []series.Series, names []string) (*Dataset, error) {
	if len(ss) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if names != nil && len(names) != len(ss) {
		return nil, fmt.Errorf("core: %d names for %d series", len(names), len(ss))
	}
	n := len(ss[0])
	if n == 0 {
		return nil, fmt.Errorf("core: zero-length series")
	}
	ds := &Dataset{N: n, Records: make([]*Record, len(ss))}
	for i, s := range ss {
		if len(s) != n {
			return nil, fmt.Errorf("core: series %d has length %d, want %d", i, len(s), n)
		}
		name := fmt.Sprintf("s%d", i)
		if names != nil {
			name = names[i]
		}
		ds.Records[i] = NewRecord(int64(i), name, s)
	}
	return ds, nil
}

// Record returns the record with the given id, or nil.
func (d *Dataset) Record(id int64) *Record {
	if id < 0 || id >= int64(len(d.Records)) {
		return nil
	}
	return d.Records[id]
}

// QueryRecord wraps an ad-hoc query series (not stored in the dataset) as
// a record with id -1.
func (d *Dataset) QueryRecord(s series.Series) (*Record, error) {
	if len(s) != d.N {
		return nil, fmt.Errorf("core: query length %d, dataset length %d", len(s), d.N)
	}
	return NewRecord(-1, "query", s), nil
}

// epsScale returns the per-coefficient distance bound implied by a total
// distance bound eps: with the DFT symmetry property (Eq. 6) coefficient f
// and its mirror n-f contribute equally to the energy, so
// |X_f - Y_f| <= eps/sqrt(2); without it the plain eps is the bound.
func epsScale(eps float64, useSymmetry bool) float64 {
	if useSymmetry {
		return eps / math.Sqrt2
	}
	return eps
}
