package core

import (
	"math"

	"tsq/internal/geom"
	"tsq/internal/rtree"
)

// This file implements an analytical disk-access estimator of the
// Theodoridis-Sellis family that the paper's Sec. 4.3 discusses: the
// expected number of nodes a range query touches is modeled per level as
//
//	N_l * prod_d min(1, (s_{l,d} + q_d) / W_d)
//
// where N_l is the node count at level l, s_{l,d} the average node extent
// in dimension d, q_d the query extent, and W_d the data-space extent.
// The model uses only *extents* — it is blind to where the query and the
// node rectangles actually sit. That blindness is precisely the paper's
// point: with it, DA(q, r_i) is (nearly) independent of which
// transformations rectangle r_i holds, the first term of Eq. 20 grows
// linearly in the number of rectangles, and the model concludes a single
// rectangle is always best — which measurement refutes (Fig. 8). The
// estimator is kept here to reproduce that argument; the planner uses
// measured probes instead.

// LevelStats summarizes one tree level for the analytical model.
type LevelStats struct {
	Level   int // 1 = leaf
	Nodes   int
	AvgSide []float64 // average node-rectangle extent per dimension
}

// TreeStats collects per-level statistics and the data-space extent.
func (ix *Index) TreeStats() ([]LevelStats, geom.Rect, error) {
	height := ix.tree.Height()
	stats := make([]LevelStats, height)
	for i := range stats {
		stats[i] = LevelStats{Level: height - i, AvgSide: make([]float64, ix.dim)}
	}
	var world geom.Rect
	first := true
	err := ix.tree.Visit(func(n *rtree.Node, level int) error {
		s := &stats[height-level]
		s.Nodes++
		var mbr geom.Rect
		if len(n.Entries) > 0 {
			rects := make([]geom.Rect, len(n.Entries))
			for i, e := range n.Entries {
				rects[i] = e.Rect
			}
			mbr = geom.MBRRects(rects)
			for d := 0; d < ix.dim; d++ {
				s.AvgSide[d] += mbr.Hi[d] - mbr.Lo[d]
			}
			if first {
				world = mbr.Clone()
				first = false
			} else {
				world = world.Union(mbr)
			}
		}
		return nil
	})
	if err != nil {
		return nil, geom.Rect{}, err
	}
	for i := range stats {
		if stats[i].Nodes > 0 {
			for d := range stats[i].AvgSide {
				stats[i].AvgSide[d] /= float64(stats[i].Nodes)
			}
		}
	}
	return stats, world, nil
}

// AnalyticalAccessEstimate returns the model's expected node accesses for
// a query rectangle. Only the query's per-dimension extents enter the
// formula; its position is deliberately ignored (see the file comment).
// Unbounded query dimensions count as covering the whole data space.
func (ix *Index) AnalyticalAccessEstimate(qrect geom.Rect) (float64, error) {
	stats, world, err := ix.TreeStats()
	if err != nil {
		return 0, err
	}
	total := 1.0 // the root is always read
	for li, s := range stats {
		if li == 0 || s.Nodes == 0 {
			continue // root handled above
		}
		p := 1.0
		for d := 0; d < ix.dim; d++ {
			w := world.Hi[d] - world.Lo[d]
			if w <= 0 {
				continue
			}
			qd := qrect.Hi[d] - qrect.Lo[d]
			if math.IsInf(qd, 1) || math.IsNaN(qd) {
				continue // unconstrained dimension: probability 1
			}
			p *= math.Min(1, (s.AvgSide[d]+qd)/w)
		}
		total += float64(s.Nodes) * p
	}
	return total, nil
}
