// Package cluster implements the CURE-style agglomerative clustering the
// paper suggests (Sec. 4.3, citing Guha et al.) for grouping
// transformations into bounding rectangles: hierarchical merging by
// closest representative pair, with each cluster summarized by a handful
// of well-scattered representatives shrunk toward the centroid. The
// full CURE system includes sampling and partitioning for large inputs;
// transformation sets hold at most a few dozen points, so the in-memory
// hierarchical core is the relevant part and is what is built here.
package cluster

import (
	"math"

	"tsq/internal/geom"
)

// Options configures the clustering.
type Options struct {
	// NumRepresentatives is the number of scattered points that summarize
	// a cluster (CURE's c). Default 4.
	NumRepresentatives int
	// Shrink is the fraction by which representatives move toward the
	// centroid (CURE's alpha). Default 0.3.
	Shrink float64
}

func (o Options) withDefaults() Options {
	if o.NumRepresentatives == 0 {
		o.NumRepresentatives = 4
	}
	if o.Shrink == 0 {
		o.Shrink = 0.3
	}
	return o
}

type clusterState struct {
	members []int
	reps    []geom.Point
}

// Agglomerative clusters points into exactly k clusters and returns the
// member indices of each cluster, ordered by smallest member index.
// It panics if k < 1 or k > len(points).
func Agglomerative(points []geom.Point, k int, opts Options) [][]int {
	if k < 1 || k > len(points) {
		panic("cluster: k out of range")
	}
	clusters, _ := run(points, k, math.Inf(1), opts.withDefaults())
	return membersOf(clusters)
}

// Detect clusters points without a preset k: it keeps merging while the
// closest pair of clusters is within jumpFactor times the largest merge
// distance seen so far, and stops at the first distance jump (or at one
// cluster). A jumpFactor around 3 separates the paper's Sec. 5.2 setting
// (moving averages plus their inversions) into its two natural clusters.
func Detect(points []geom.Point, jumpFactor float64, opts Options) [][]int {
	if len(points) == 0 {
		return nil
	}
	if jumpFactor <= 1 {
		jumpFactor = 3
	}
	clusters, _ := run(points, 1, jumpFactor, opts.withDefaults())
	return membersOf(clusters)
}

// run merges until k clusters remain or a merge would jump by more than
// jumpFactor relative to the largest merge so far.
func run(points []geom.Point, k int, jumpFactor float64, opts Options) ([]clusterState, []float64) {
	clusters := make([]clusterState, len(points))
	for i, p := range points {
		clusters[i] = clusterState{members: []int{i}, reps: []geom.Point{p.Clone()}}
	}
	var mergeDists []float64
	maxMerge := 0.0
	for len(clusters) > k {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := repDist(clusters[i], clusters[j]); d < best {
					bi, bj, best = i, j, d
				}
			}
		}
		if maxMerge > 0 && best > jumpFactor*maxMerge {
			break
		}
		if best > maxMerge {
			maxMerge = best
		}
		mergeDists = append(mergeDists, best)
		merged := merge(points, clusters[bi], clusters[bj], opts)
		clusters[bi] = merged
		clusters = append(clusters[:bj], clusters[bj+1:]...)
	}
	return clusters, mergeDists
}

// repDist is the CURE inter-cluster distance: the minimum distance over
// representative pairs.
func repDist(a, b clusterState) float64 {
	best := math.Inf(1)
	for _, p := range a.reps {
		for _, q := range b.reps {
			if d := geom.Dist(p, q); d < best {
				best = d
			}
		}
	}
	return best
}

// merge combines two clusters and rebuilds the representative set: pick
// the c most scattered members (farthest-point heuristic starting from the
// point farthest from the centroid), then shrink them toward the centroid.
func merge(points []geom.Point, a, b clusterState, opts Options) clusterState {
	members := append(append([]int{}, a.members...), b.members...)
	dim := len(points[0])
	centroid := make(geom.Point, dim)
	for _, m := range members {
		for d := range centroid {
			centroid[d] += points[m][d]
		}
	}
	for d := range centroid {
		centroid[d] /= float64(len(members))
	}

	c := opts.NumRepresentatives
	if c > len(members) {
		c = len(members)
	}
	var scattered []geom.Point
	chosen := make(map[int]bool)
	for len(scattered) < c {
		bestIdx, bestDist := -1, -1.0
		for _, m := range members {
			if chosen[m] {
				continue
			}
			// Distance to the nearest already-chosen representative, or to
			// the centroid for the first pick.
			d := math.Inf(1)
			if len(scattered) == 0 {
				d = geom.Dist(points[m], centroid)
			} else {
				for _, s := range scattered {
					if dd := geom.Dist(points[m], s); dd < d {
						d = dd
					}
				}
			}
			if d > bestDist {
				bestIdx, bestDist = m, d
			}
		}
		chosen[bestIdx] = true
		scattered = append(scattered, points[bestIdx].Clone())
	}
	// Shrink toward the centroid.
	for _, p := range scattered {
		for d := range p {
			p[d] += opts.Shrink * (centroid[d] - p[d])
		}
	}
	return clusterState{members: members, reps: scattered}
}

// membersOf extracts sorted member groups ordered by first member.
func membersOf(clusters []clusterState) [][]int {
	out := make([][]int, len(clusters))
	for i, c := range clusters {
		g := append([]int(nil), c.members...)
		// Insertion sort: groups are tiny.
		for a := 1; a < len(g); a++ {
			for b := a; b > 0 && g[b] < g[b-1]; b-- {
				g[b], g[b-1] = g[b-1], g[b]
			}
		}
		out[i] = g
	}
	// Order groups by first member for deterministic output.
	for a := 1; a < len(out); a++ {
		for b := a; b > 0 && out[b][0] < out[b-1][0]; b-- {
			out[b], out[b-1] = out[b-1], out[b]
		}
	}
	return out
}
