package cluster

import (
	"math/rand"
	"testing"

	"tsq/internal/geom"
)

// twoBlobs returns points forming two well-separated clusters: indices
// 0..n1-1 around (0,0), n1..n1+n2-1 around (100,100).
func twoBlobs(rng *rand.Rand, n1, n2 int) []geom.Point {
	pts := make([]geom.Point, 0, n1+n2)
	for i := 0; i < n1; i++ {
		pts = append(pts, geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < n2; i++ {
		pts = append(pts, geom.Point{100 + rng.NormFloat64(), 100 + rng.NormFloat64()})
	}
	return pts
}

func TestAgglomerativeTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := twoBlobs(rng, 12, 12)
	groups := Agglomerative(pts, 2, Options{})
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	for _, g := range groups {
		blob := g[0] < 12
		for _, m := range g {
			if (m < 12) != blob {
				t.Fatalf("group %v mixes the two blobs", g)
			}
		}
	}
	// All points assigned exactly once.
	seen := make(map[int]bool)
	for _, g := range groups {
		for _, m := range g {
			if seen[m] {
				t.Fatalf("point %d assigned twice", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != 24 {
		t.Fatalf("assigned %d of 24 points", len(seen))
	}
}

func TestAgglomerativeKExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := twoBlobs(rng, 5, 5)
	one := Agglomerative(pts, 1, Options{})
	if len(one) != 1 || len(one[0]) != 10 {
		t.Errorf("k=1: %v", one)
	}
	all := Agglomerative(pts, 10, Options{})
	if len(all) != 10 {
		t.Errorf("k=n returned %d groups", len(all))
	}
}

func TestDetectFindsTwoClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := twoBlobs(rng, 10, 14)
	groups := Detect(pts, 3, Options{})
	if len(groups) != 2 {
		t.Fatalf("Detect found %d clusters, want 2", len(groups))
	}
}

func TestDetectSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := make([]geom.Point, 20)
	for i := range pts {
		pts[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
	}
	groups := Detect(pts, 3, Options{})
	if len(groups) != 1 {
		t.Errorf("Detect split a single blob into %d clusters", len(groups))
	}
}

func TestDetectEmptyAndSingleton(t *testing.T) {
	if got := Detect(nil, 3, Options{}); got != nil {
		t.Errorf("Detect(nil) = %v", got)
	}
	got := Detect([]geom.Point{{1, 2}}, 3, Options{})
	if len(got) != 1 || len(got[0]) != 1 {
		t.Errorf("Detect(singleton) = %v", got)
	}
}

func TestAgglomerativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k=0")
		}
	}()
	Agglomerative([]geom.Point{{1}}, 0, Options{})
}

func TestOutliersDoNotBridgeClusters(t *testing.T) {
	// The shrink step should keep a midpoint outlier from chaining the
	// two blobs together before the blobs themselves merge.
	rng := rand.New(rand.NewSource(5))
	pts := twoBlobs(rng, 10, 10)
	pts = append(pts, geom.Point{50, 50}) // lone outlier halfway
	groups := Agglomerative(pts, 3, Options{})
	if len(groups) != 3 {
		t.Fatalf("got %d groups", len(groups))
	}
	// One group should be exactly the outlier.
	foundLone := false
	for _, g := range groups {
		if len(g) == 1 && g[0] == 20 {
			foundLone = true
		}
	}
	if !foundLone {
		t.Errorf("outlier was absorbed: %v", groups)
	}
}

func TestCustomOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := twoBlobs(rng, 15, 15)
	// More representatives and stronger shrink still separate the blobs.
	groups := Agglomerative(pts, 2, Options{NumRepresentatives: 8, Shrink: 0.6})
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	for _, g := range groups {
		blob := g[0] < 15
		for _, m := range g {
			if (m < 15) != blob {
				t.Fatalf("group %v mixes blobs", g)
			}
		}
	}
	// A single representative degenerates to centroid-ish linkage but
	// must still produce a valid partition.
	groups = Agglomerative(pts, 3, Options{NumRepresentatives: 1, Shrink: 0.01})
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 30 {
		t.Fatalf("partition covers %d of 30", total)
	}
}
