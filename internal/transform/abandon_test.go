package transform

import (
	"math/rand"
	"testing"
)

func randPolar(rng *rand.Rand, k int) (mags, phases []float64) {
	mags = make([]float64, k)
	phases = make([]float64, k)
	for i := range mags {
		mags[i] = rng.Float64() * 10
		phases[i] = (rng.Float64() - 0.5) * 6
	}
	return mags, phases
}

// TestDistancePolarAbandonAgreesWithExact is the contract of the
// early-abandoning kernels against the exact ones, over random
// transformations and feature vectors:
//   - not abandoned => the returned distance is bit-identical to the
//     exact kernel (same summation order, no reordering);
//   - abandoned => the exact distance genuinely exceeds eps, so skipping
//     the candidate can never lose a match.
func TestDistancePolarAbandonAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts := MovingAverageSet(64, 3, 30)
	const k = 64 // the kernels require full-length (n) polar spectra
	var abandons, passes int
	for trial := 0; trial < 4000; trial++ {
		tr := ts[rng.Intn(len(ts))]
		xm, xp := randPolar(rng, k)
		ym, yp := randPolar(rng, k)
		if rng.Intn(4) == 0 {
			copy(ym, xm) // near-identical pair: exercises the boundary
			copy(yp, xp)
			ym[rng.Intn(k)] += rng.Float64() * 1e-3
		}
		exact := tr.DistancePolar(xm, xp, ym, yp)
		eps := exact * (0.5 + rng.Float64()) // straddle the true distance
		d, abandoned := tr.DistancePolarAbandon(xm, xp, ym, yp, eps)
		if abandoned {
			abandons++
			if exact <= eps {
				t.Fatalf("trial %d: abandoned at eps=%v but exact distance %v qualifies", trial, eps, exact)
			}
		} else {
			passes++
			if d != exact {
				t.Fatalf("trial %d: non-abandoned distance %v != exact %v", trial, d, exact)
			}
		}

		exactL := tr.DistancePolarLeft(xm, xp, ym, yp)
		epsL := exactL * (0.5 + rng.Float64())
		dL, abandonedL := tr.DistancePolarLeftAbandon(xm, xp, ym, yp, epsL)
		if abandonedL {
			if exactL <= epsL {
				t.Fatalf("trial %d: one-sided abandoned at eps=%v but exact %v qualifies", trial, epsL, exactL)
			}
		} else if dL != exactL {
			t.Fatalf("trial %d: one-sided non-abandoned %v != exact %v", trial, dL, exactL)
		}
	}
	if abandons == 0 || passes == 0 {
		t.Fatalf("degenerate trial mix: %d abandons, %d passes", abandons, passes)
	}
}

// TestAbandonCutoffAtBoundary: an eps exactly equal to the true distance
// must never abandon — the cutoff slack absorbs the sqrt/summation
// rounding at the boundary.
func TestAbandonCutoffAtBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := MovingAverageSet(64, 3, 30)
	for trial := 0; trial < 2000; trial++ {
		tr := ts[rng.Intn(len(ts))]
		xm, xp := randPolar(rng, 64)
		ym, yp := randPolar(rng, 64)
		exact := tr.DistancePolar(xm, xp, ym, yp)
		if d, abandoned := tr.DistancePolarAbandon(xm, xp, ym, yp, exact); abandoned || d != exact {
			t.Fatalf("trial %d: eps=exact distance abandoned=%v d=%v exact=%v", trial, abandoned, d, exact)
		}
	}
}
