package transform

import (
	"sort"

	"tsq/internal/dft"
)

// This file implements the ordering notion of Sec. 4.4 (Definition 1):
// an ordering t_l <= t_k of a transformation set such that for all values
// v_i, v_j in the domain, D(t_l(v_i), t_l(v_j)) <= D(t_k(v_i), t_k(v_j)).
// When such an ordering exists the largest qualifying transformation can
// be found by binary search and everything below it qualifies for free.

// OrderedSet is a transformation set together with a certified ordering:
// Transforms[i] precedes Transforms[j] (never yields larger distances)
// whenever i < j.
type OrderedSet struct {
	Transforms []Transform
}

// NewScaleOrderedSet returns the canonical ordered set of Lemma 2: scaling
// factors sorted ascending. Scaling by a smaller positive factor never
// yields a larger distance, so "<" on factors is an ordering per
// Definition 1.
func NewScaleOrderedSet(n int, factors []float64) OrderedSet {
	sorted := append([]float64(nil), factors...)
	sort.Float64s(sorted)
	return OrderedSet{Transforms: ScaleSet(n, sorted)}
}

// LargestQualifying returns the index of the largest transformation in the
// ordered set for which pred holds, or -1 if none does. pred must be
// monotone along the ordering (true for a distance-threshold predicate, by
// Definition 1: if t_k qualifies then so does every t_l <= t_k).
// It evaluates pred O(log |T|) times.
func (o OrderedSet) LargestQualifying(pred func(Transform) bool) int {
	// Invariant: everything at or below lo-1 qualifies, everything at or
	// above hi+1 does not.
	lo, hi := 0, len(o.Transforms)-1
	ans := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if pred(o.Transforms[mid]) {
			ans = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return ans
}

// QualifyingByDistance returns every transformation in the ordered set
// that brings X within distance eps of Y, using binary search: by
// Definition 1 the qualifying transformations form a prefix of the order.
// The number of distance evaluations is O(log |T|) instead of |T|.
func (o OrderedSet) QualifyingByDistance(X, Y []complex128, eps float64) []Transform {
	k := o.LargestQualifying(func(t Transform) bool {
		return t.Distance(X, Y) <= eps
	})
	return o.Transforms[:k+1]
}

// CheckOrdering verifies Definition 1 empirically: it reports whether, for
// every consecutive pair (t_i, t_{i+1}) in ts and every pair of sample
// spectra, D(t_i(x), t_i(y)) <= D(t_{i+1}(x), t_{i+1}(y)) + tol. It is the
// tool the tests use to certify Lemma 2 and to refute orderings of moving
// averages (Lemmas 3-4). A true result over samples is evidence, not
// proof; a false result is a definite counterexample.
func CheckOrdering(ts []Transform, samples [][]complex128, tol float64) bool {
	for i := 0; i+1 < len(ts); i++ {
		for a := 0; a < len(samples); a++ {
			for b := a + 1; b < len(samples); b++ {
				dl := ts[i].Distance(samples[a], samples[b])
				dk := ts[i+1].Distance(samples[a], samples[b])
				if dl > dk+tol {
					return false
				}
			}
		}
	}
	return true
}

// OrderableAsScales reports whether every transformation in ts is a pure
// positive scaling (A constant on magnitudes, identity on phases, zero B),
// in which case NewScaleOrderedSet applies. It returns the scale factors
// when orderable.
func OrderableAsScales(ts []Transform) ([]float64, bool) {
	factors := make([]float64, len(ts))
	for i, t := range ts {
		t.validate()
		n := t.N()
		c := t.A[0]
		if c <= 0 {
			return nil, false
		}
		for f := 0; f < n; f++ {
			if t.A[2*f] != c || t.B[2*f] != 0 || t.A[2*f+1] != 1 || t.B[2*f+1] != 0 {
				return nil, false
			}
		}
		factors[i] = c
	}
	return factors, true
}

// spectra is a convenience for tests and callers: transform a batch of
// real series to spectra.
func Spectra(seriesList [][]float64) [][]complex128 {
	out := make([][]complex128, len(seriesList))
	for i, s := range seriesList {
		out[i] = dft.TransformReal(s)
	}
	return out
}
