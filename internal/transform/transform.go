// Package transform implements the paper's transformation algebra: linear
// transformations t = (a, b) over the polar Fourier representation of a
// time series (Sec. 3), constructors for the operations the paper builds
// on them (moving average, momentum, time shift, scaling, inversion),
// composition of transformations and transformation sets (Sec. 3.3,
// Eqs. 10-11), and the ordering notion of Sec. 4.4 (Definition 1).
//
// # Representation
//
// A series of length n has n complex DFT coefficients. Following
// Sec. 3.1.1, each coefficient X_f is mapped to the real pair
// (|X_f|, angle(X_f)), so the whole spectrum becomes a real vector of
// length 2n with magnitudes at even positions and phases at odd positions.
// A transformation is a pair of real 2n-vectors (A, B); applying it maps
// component i of that vector to A[i]*v + B[i]. Convolution-style
// operations (moving average, momentum, shift) multiply magnitudes and add
// to phases, so for them A[2f] = sqrt(n)*|M_f|, B[2f] = 0, A[2f+1] = 1,
// B[2f+1] = angle(M_f) — the sqrt(n) comes from the unitary DFT
// convention (see dft.Convolve).
package transform

import (
	"fmt"
	"math"
	"math/cmplx"

	"tsq/internal/dft"
	"tsq/internal/series"
)

// Transform is a linear transformation over the polar Fourier
// representation of a length-n series. A and B have length 2n; component
// 2f acts on the magnitude of coefficient f and component 2f+1 on its
// phase.
type Transform struct {
	// Name identifies the transformation in query plans and test output,
	// e.g. "mv12" or "shift3".
	Name string
	A, B []float64
}

// N returns the series length the transformation was built for.
func (t Transform) N() int { return len(t.A) / 2 }

// validate panics if the transformation is malformed.
func (t Transform) validate() {
	if len(t.A) != len(t.B) || len(t.A)%2 != 0 || len(t.A) == 0 {
		panic(fmt.Sprintf("transform: malformed transform %q: |A|=%d |B|=%d", t.Name, len(t.A), len(t.B)))
	}
}

// Identity returns the identity transformation for length-n series.
func Identity(n int) Transform {
	t := Transform{Name: "id", A: make([]float64, 2*n), B: make([]float64, 2*n)}
	for i := range t.A {
		if i%2 == 0 {
			t.A[i] = 1 // magnitude multiplier
		} else {
			t.A[i] = 1 // phase multiplier
		}
	}
	return t
}

// FromKernel returns the transformation corresponding to circular
// convolution with the given time-domain kernel (Sec. 3.1: momentum and
// moving average are instances). The kernel must have length n.
func FromKernel(name string, kernel series.Series) Transform {
	n := len(kernel)
	M := dft.TransformReal(kernel)
	scale := math.Sqrt(float64(n)) // unitary-DFT convolution factor
	t := Transform{Name: name, A: make([]float64, 2*n), B: make([]float64, 2*n)}
	for f := 0; f < n; f++ {
		t.A[2*f] = scale * cmplx.Abs(M[f])
		t.B[2*f] = 0
		t.A[2*f+1] = 1
		t.B[2*f+1] = cmplx.Phase(M[f])
	}
	return t
}

// MovingAverage returns the circular m-day moving-average transformation
// for length-n series. It matches series.CircularMovingAverage exactly:
// output i is the mean of the trailing window i-m+1..i (indices mod n).
// With this convention the phase offsets at low coefficients are the small
// negative angles of the paper's Fig. 3.
func MovingAverage(n, m int) Transform {
	if m < 1 || m > n {
		panic(fmt.Sprintf("transform: MovingAverage window %d out of range for length %d", m, n))
	}
	kernel := make(series.Series, n)
	for j := 0; j < m; j++ {
		kernel[j] = 1 / float64(m)
	}
	return FromKernel(fmt.Sprintf("mv%d", m), kernel)
}

// Momentum returns the circular momentum transformation of Sec. 3.1.1 for
// length-n series: convolution with [1, -1, 0, ..., 0], i.e. output i is
// input i minus input i-1 (mod n). It matches series.CircularMomentum.
func Momentum(n int) Transform {
	kernel := make(series.Series, n)
	kernel[0] = 1
	if n > 1 {
		kernel[1] = -1
	}
	return FromKernel("momentum", kernel)
}

// MomentumLag returns the circular lag-k momentum (Example 1.2's "in
// general, t+n for some n"): output i is input i minus input i-k (mod n).
func MomentumLag(n, k int) Transform {
	if k < 1 || k >= n {
		panic(fmt.Sprintf("transform: momentum lag %d out of range for length %d", k, n))
	}
	kernel := make(series.Series, n)
	kernel[0] = 1
	kernel[k] = -1
	return FromKernel(fmt.Sprintf("momentum%d", k), kernel)
}

// TimeShift returns the exact circular s-day right-shift transformation
// for length-n series: coefficient f is multiplied by exp(-j*2*pi*f*s/n).
// If the series carries at least s trailing zeros of padding (the
// Sec. 3.1.2 trick) the circular shift coincides with the linear shift.
// Negative s shifts left.
func TimeShift(n, s int) Transform {
	t := Identity(n)
	t.Name = fmt.Sprintf("shift%d", s)
	for f := 0; f < n; f++ {
		t.B[2*f+1] = normalizeAngle(-2 * math.Pi * float64(f) * float64(s) / float64(n))
	}
	return t
}

// normalizeAngle reduces an angle to (-pi, pi]. Phase offsets are
// equivalence classes modulo 2*pi; keeping them reduced makes the
// transformation MBRs of shift sets as tight as possible.
func normalizeAngle(x float64) float64 {
	x = math.Mod(x, 2*math.Pi)
	if x <= -math.Pi {
		x += 2 * math.Pi
	} else if x > math.Pi {
		x -= 2 * math.Pi
	}
	return x
}

// TimeShiftApprox returns the paper's approximate s-day shift (Sec. 3.1.2),
// which keeps the original length but uses denominator n+s in the phase
// ramp: coefficient f is multiplied by exp(-j*2*pi*f*s/(n+s)). It converges
// to the exact shift for long series.
func TimeShiftApprox(n, s int) Transform {
	t := Identity(n)
	t.Name = fmt.Sprintf("shift~%d", s)
	for f := 0; f < n; f++ {
		t.B[2*f+1] = normalizeAngle(-2 * math.Pi * float64(f) * float64(s) / float64(n+s))
	}
	return t
}

// WeightedMovingAverage returns the circular weighted moving average with
// the given trailing weights: output i is
// sum_j weights[j] * input[i-j] / sum(weights). Weights[0] applies to the
// current sample. A uniform weight vector reduces to MovingAverage.
func WeightedMovingAverage(n int, weights []float64) Transform {
	if len(weights) == 0 || len(weights) > n {
		panic(fmt.Sprintf("transform: %d weights out of range for length %d", len(weights), n))
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum == 0 {
		panic("transform: weighted moving average with zero total weight")
	}
	kernel := make(series.Series, n)
	for j, w := range weights {
		kernel[j] = w / sum
	}
	return FromKernel(fmt.Sprintf("wma%d", len(weights)), kernel)
}

// EMA returns the circular exponential moving average with smoothing
// factor alpha in (0, 1]: the IIR filter y_t = alpha*x_t + (1-alpha)*
// y_{t-1}, realized circularly as convolution with the kernel
// alpha*(1-alpha)^j normalized over one period. Like every convolution it
// is a linear transformation over the Fourier representation.
func EMA(n int, alpha float64) Transform {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("transform: EMA alpha %v out of (0, 1]", alpha))
	}
	kernel := make(series.Series, n)
	var sum float64
	w := alpha
	for j := 0; j < n; j++ {
		kernel[j] = w
		sum += w
		w *= 1 - alpha
	}
	for j := range kernel {
		kernel[j] /= sum
	}
	return FromKernel(fmt.Sprintf("ema%g", alpha), kernel)
}

// Reverse returns the time-reversal transformation x'_t = x_{-t mod n}.
// For a real series the spectrum conjugates, so in polar form the phase
// multiplier is -1 — the one built-in transformation whose phase action
// is not a pure offset, exercising the general (a, b) machinery.
func Reverse(n int) Transform {
	t := Identity(n)
	t.Name = "reverse"
	for f := 0; f < n; f++ {
		t.A[2*f+1] = -1
	}
	return t
}

// Scale returns the transformation multiplying a series by the scalar
// c > 0 (magnitudes scale, phases unchanged). For negative scalars compose
// with Invert; Scale panics on c <= 0 because a negative magnitude
// multiplier would leave the polar domain.
func Scale(n int, c float64) Transform {
	if c <= 0 {
		panic(fmt.Sprintf("transform: Scale factor %v must be positive (compose with Invert for sign flips)", c))
	}
	t := Identity(n)
	t.Name = fmt.Sprintf("scale%g", c)
	for f := 0; f < n; f++ {
		t.A[2*f] = c
	}
	return t
}

// Invert returns the transformation multiplying a series by -1, expressed
// in polar form as adding pi to every phase (Sec. 5.2 uses inverted
// moving averages to create a second cluster).
func Invert(n int) Transform {
	t := Identity(n)
	t.Name = "invert"
	for f := 0; f < n; f++ {
		t.B[2*f+1] = math.Pi
	}
	return t
}

// Inverted returns t composed with a sign flip (equivalent to multiplying
// every complex coefficient of the result by -1).
func Inverted(t Transform) Transform {
	out := Compose(Invert(t.N()), t)
	out.Name = t.Name + "-inv"
	return out
}

// Compose returns the transformation "first t1, then t2" (Eq. 10):
// a3 = a2*a1 and b3 = a2*b1 + b2, componentwise over the 2n polar
// components.
func Compose(t2, t1 Transform) Transform {
	t1.validate()
	t2.validate()
	if len(t1.A) != len(t2.A) {
		panic(fmt.Sprintf("transform: composing %q (n=%d) with %q (n=%d)", t2.Name, t2.N(), t1.Name, t1.N()))
	}
	out := Transform{
		Name: t2.Name + "(" + t1.Name + ")",
		A:    make([]float64, len(t1.A)),
		B:    make([]float64, len(t1.B)),
	}
	for i := range out.A {
		out.A[i] = t2.A[i] * t1.A[i]
		out.B[i] = t2.A[i]*t1.B[i] + t2.B[i]
	}
	return out
}

// ComposeSets returns T2(T1) = {t2(t1) : t1 in T1, t2 in T2} (Eq. 11),
// the set form used to rewrite a sequence of transformation sets into a
// single set (Sec. 3.3).
func ComposeSets(t2s, t1s []Transform) []Transform {
	out := make([]Transform, 0, len(t1s)*len(t2s))
	for _, t1 := range t1s {
		for _, t2 := range t2s {
			out = append(out, Compose(t2, t1))
		}
	}
	return out
}

// ApplySpectrum applies t to a complex spectrum X (length n) and returns
// the transformed spectrum: coefficient f becomes
// (A[2f]*|X_f| + B[2f]) * exp(j*(A[2f+1]*angle(X_f) + B[2f+1])).
func (t Transform) ApplySpectrum(X []complex128) []complex128 {
	t.validate()
	if len(X) != t.N() {
		panic(fmt.Sprintf("transform: %q built for n=%d applied to spectrum of length %d", t.Name, t.N(), len(X)))
	}
	out := make([]complex128, len(X))
	for f := range X {
		mag := t.A[2*f]*cmplx.Abs(X[f]) + t.B[2*f]
		phase := t.A[2*f+1]*cmplx.Phase(X[f]) + t.B[2*f+1]
		out[f] = cmplx.Rect(mag, phase)
	}
	return out
}

// ApplySeries applies t to a time-domain series by a round trip through
// the frequency domain.
func (t Transform) ApplySeries(s series.Series) series.Series {
	return dft.InverseReal(t.ApplySpectrum(dft.TransformReal(s)))
}

// ApplyPolar applies t to one polar component pair in place of the full
// spectrum: given (mag, phase) of coefficient f it returns the
// transformed pair.
func (t Transform) ApplyPolar(f int, mag, phase float64) (float64, float64) {
	return t.A[2*f]*mag + t.B[2*f], t.A[2*f+1]*phase + t.B[2*f+1]
}

// Distance returns the Euclidean distance between t(x) and t(y), where x
// and y are given as complex spectra. By Parseval this equals the
// time-domain distance between the transformed series.
func (t Transform) Distance(X, Y []complex128) float64 {
	return dft.Distance(t.ApplySpectrum(X), t.ApplySpectrum(Y))
}

// polarTerm is the per-coefficient squared-difference term of the
// two-sided polar kernels: a and b act on the magnitudes, ap on the
// phases (the phase offsets cancel in the two-sided difference).
// Factoring the term into one function keeps the plain and
// early-abandoning kernels bit-identical by construction.
func polarTerm(a, b, ap, xm, xp, ym, yp float64) float64 {
	mu := a*xm + b
	mv := a*ym + b
	return mu*mu + mv*mv - 2*mu*mv*math.Cos(ap*(xp-yp))
}

// polarTermLeft is the one-sided counterpart of polarTerm: the
// transformation applies to the left spectrum only, so the phase offset
// bp survives into the difference.
func polarTermLeft(a, b, ap, bp, xm, xp, ym, yp float64) float64 {
	mu := a*xm + b
	mv := ym
	dp := ap*xp + bp - yp
	return mu*mu + mv*mv - 2*mu*mv*math.Cos(dp)
}

// DistancePolar returns the same value as Distance but takes the two
// spectra in precomputed polar form (magnitude and phase arrays of length
// n). It is the hot path of query verification: per coefficient it costs
// one cosine instead of several trigonometric round trips. The phase
// multipliers cancel in the difference, so
//
//	|t(x)_f - t(y)_f|^2 = mu^2 + mv^2 - 2*mu*mv*cos(a_phase*(px - py))
//
// with mu, mv the transformed magnitudes.
//
// The loop is blocked four coefficients wide over four independent
// accumulators, which breaks the loop-carried dependency on the running
// sum; the blocked shape and the final combine order
// ((s0+s1)+(s2+s3)) are shared exactly with DistancePolarAbandon so the
// two stay bit-identical on completed sums.
func (t Transform) DistancePolar(xm, xp, ym, yp []float64) float64 {
	n := t.N()
	if len(xm) != n || len(xp) != n || len(ym) != n || len(yp) != n {
		panic(fmt.Sprintf("transform: DistancePolar on %q (n=%d) with lengths %d/%d/%d/%d",
			t.Name, n, len(xm), len(xp), len(ym), len(yp)))
	}
	A, B := t.A, t.B
	var s0, s1, s2, s3 float64
	f := 0
	for ; f+4 <= n; f += 4 {
		s0 += polarTerm(A[2*f], B[2*f], A[2*f+1], xm[f], xp[f], ym[f], yp[f])
		s1 += polarTerm(A[2*f+2], B[2*f+2], A[2*f+3], xm[f+1], xp[f+1], ym[f+1], yp[f+1])
		s2 += polarTerm(A[2*f+4], B[2*f+4], A[2*f+5], xm[f+2], xp[f+2], ym[f+2], yp[f+2])
		s3 += polarTerm(A[2*f+6], B[2*f+6], A[2*f+7], xm[f+3], xp[f+3], ym[f+3], yp[f+3])
	}
	for ; f < n; f++ {
		s0 += polarTerm(A[2*f], B[2*f], A[2*f+1], xm[f], xp[f], ym[f], yp[f])
	}
	s := (s0 + s1) + (s2 + s3)
	if s < 0 {
		s = 0 // rounding noise on identical inputs
	}
	return math.Sqrt(s)
}

// DistancePolarLeft returns D(t(x), y) — the transformation applied to
// the left spectrum only — for polar spectra. This is the verification
// kernel of the one-sided query semantics (the literal form of the
// paper's Algorithm 1: "sequences that become within distance eps of q
// after being transformed"), which is the useful form for alignment
// transformations like time shifts: applied to both sides a shift is
// unitary and cancels.
func (t Transform) DistancePolarLeft(xm, xp, ym, yp []float64) float64 {
	n := t.N()
	if len(xm) != n || len(xp) != n || len(ym) != n || len(yp) != n {
		panic(fmt.Sprintf("transform: DistancePolarLeft on %q (n=%d) with lengths %d/%d/%d/%d",
			t.Name, n, len(xm), len(xp), len(ym), len(yp)))
	}
	A, B := t.A, t.B
	var s0, s1, s2, s3 float64
	f := 0
	for ; f+4 <= n; f += 4 {
		s0 += polarTermLeft(A[2*f], B[2*f], A[2*f+1], B[2*f+1], xm[f], xp[f], ym[f], yp[f])
		s1 += polarTermLeft(A[2*f+2], B[2*f+2], A[2*f+3], B[2*f+3], xm[f+1], xp[f+1], ym[f+1], yp[f+1])
		s2 += polarTermLeft(A[2*f+4], B[2*f+4], A[2*f+5], B[2*f+5], xm[f+2], xp[f+2], ym[f+2], yp[f+2])
		s3 += polarTermLeft(A[2*f+6], B[2*f+6], A[2*f+7], B[2*f+7], xm[f+3], xp[f+3], ym[f+3], yp[f+3])
	}
	for ; f < n; f++ {
		s0 += polarTermLeft(A[2*f], B[2*f], A[2*f+1], B[2*f+1], xm[f], xp[f], ym[f], yp[f])
	}
	s := (s0 + s1) + (s2 + s3)
	if s < 0 {
		s = 0
	}
	return math.Sqrt(s)
}

// AbandonCutoff returns the squared-distance threshold an
// early-abandoning kernel may compare its partial sums against to prove
// d > eps. It sits a hair above eps² so that the conclusion holds even
// though individual polar terms can carry rounding noise of either
// sign: a partial sum above the cutoff exceeds the full sum's possible
// downward drift, hence the exact kernel would also report d > eps.
// Non-abandoned computations are unaffected — they produce bit-identical
// distances — so abandonment can never disagree with the full
// computation about a match.
func AbandonCutoff(eps float64) float64 { return eps*eps*(1+1e-9) + 1e-9 }

// DistancePolarAbandon is DistancePolar with an early-abandoning
// cutoff: the per-coefficient terms are non-negative, so the partial
// sums are non-decreasing and the loop can stop as soon as they prove
// the distance exceeds eps. When it abandons it returns (lb, true)
// with lb a lower bound on the true distance; otherwise it returns the
// bit-identical DistancePolar value and false. The loop is blocked
// exactly like DistancePolar (same accumulators, same combine order),
// with the cutoff checked once per four-coefficient block, so the
// abandon decision is equivalent to "the full blocked sum exceeds the
// cutoff" and completed sums match DistancePolar bit for bit.
func (t Transform) DistancePolarAbandon(xm, xp, ym, yp []float64, eps float64) (float64, bool) {
	n := t.N()
	if len(xm) != n || len(xp) != n || len(ym) != n || len(yp) != n {
		panic(fmt.Sprintf("transform: DistancePolarAbandon on %q (n=%d) with lengths %d/%d/%d/%d",
			t.Name, n, len(xm), len(xp), len(ym), len(yp)))
	}
	cut := AbandonCutoff(eps)
	A, B := t.A, t.B
	var s0, s1, s2, s3 float64
	f := 0
	for ; f+4 <= n; f += 4 {
		s0 += polarTerm(A[2*f], B[2*f], A[2*f+1], xm[f], xp[f], ym[f], yp[f])
		s1 += polarTerm(A[2*f+2], B[2*f+2], A[2*f+3], xm[f+1], xp[f+1], ym[f+1], yp[f+1])
		s2 += polarTerm(A[2*f+4], B[2*f+4], A[2*f+5], xm[f+2], xp[f+2], ym[f+2], yp[f+2])
		s3 += polarTerm(A[2*f+6], B[2*f+6], A[2*f+7], xm[f+3], xp[f+3], ym[f+3], yp[f+3])
		if s := (s0 + s1) + (s2 + s3); s > cut {
			return math.Sqrt(s), true
		}
	}
	for ; f < n; f++ {
		s0 += polarTerm(A[2*f], B[2*f], A[2*f+1], xm[f], xp[f], ym[f], yp[f])
		if s := (s0 + s1) + (s2 + s3); s > cut {
			return math.Sqrt(s), true
		}
	}
	s := (s0 + s1) + (s2 + s3)
	if s < 0 {
		s = 0 // rounding noise on identical inputs
	}
	return math.Sqrt(s), false
}

// DistancePolarLeftAbandon is DistancePolarLeft with the same
// early-abandoning contract as DistancePolarAbandon.
func (t Transform) DistancePolarLeftAbandon(xm, xp, ym, yp []float64, eps float64) (float64, bool) {
	n := t.N()
	if len(xm) != n || len(xp) != n || len(ym) != n || len(yp) != n {
		panic(fmt.Sprintf("transform: DistancePolarLeftAbandon on %q (n=%d) with lengths %d/%d/%d/%d",
			t.Name, n, len(xm), len(xp), len(ym), len(yp)))
	}
	cut := AbandonCutoff(eps)
	A, B := t.A, t.B
	var s0, s1, s2, s3 float64
	f := 0
	for ; f+4 <= n; f += 4 {
		s0 += polarTermLeft(A[2*f], B[2*f], A[2*f+1], B[2*f+1], xm[f], xp[f], ym[f], yp[f])
		s1 += polarTermLeft(A[2*f+2], B[2*f+2], A[2*f+3], B[2*f+3], xm[f+1], xp[f+1], ym[f+1], yp[f+1])
		s2 += polarTermLeft(A[2*f+4], B[2*f+4], A[2*f+5], B[2*f+5], xm[f+2], xp[f+2], ym[f+2], yp[f+2])
		s3 += polarTermLeft(A[2*f+6], B[2*f+6], A[2*f+7], B[2*f+7], xm[f+3], xp[f+3], ym[f+3], yp[f+3])
		if s := (s0 + s1) + (s2 + s3); s > cut {
			return math.Sqrt(s), true
		}
	}
	for ; f < n; f++ {
		s0 += polarTermLeft(A[2*f], B[2*f], A[2*f+1], B[2*f+1], xm[f], xp[f], ym[f], yp[f])
		if s := (s0 + s1) + (s2 + s3); s > cut {
			return math.Sqrt(s), true
		}
	}
	s := (s0 + s1) + (s2 + s3)
	if s < 0 {
		s = 0
	}
	return math.Sqrt(s), false
}

// ApplyPolarSpectrum applies t to a polar spectrum, returning new
// magnitude and phase arrays.
func (t Transform) ApplyPolarSpectrum(mags, phases []float64) (outM, outP []float64) {
	n := t.N()
	if len(mags) != n || len(phases) != n {
		panic(fmt.Sprintf("transform: ApplyPolarSpectrum on %q (n=%d) with lengths %d/%d",
			t.Name, n, len(mags), len(phases)))
	}
	outM = make([]float64, n)
	outP = make([]float64, n)
	for f := 0; f < n; f++ {
		outM[f] = t.A[2*f]*mags[f] + t.B[2*f]
		outP[f] = t.A[2*f+1]*phases[f] + t.B[2*f+1]
	}
	return outM, outP
}

// MovingAverageSet returns the moving-average transformations for windows
// from..to inclusive, the workhorse transformation set of the paper's
// experiments.
func MovingAverageSet(n, from, to int) []Transform {
	if from < 1 || to < from {
		panic(fmt.Sprintf("transform: bad moving-average range [%d, %d]", from, to))
	}
	out := make([]Transform, 0, to-from+1)
	for m := from; m <= to; m++ {
		out = append(out, MovingAverage(n, m))
	}
	return out
}

// TimeShiftSet returns exact shift transformations for shifts from..to
// inclusive.
func TimeShiftSet(n, from, to int) []Transform {
	if to < from {
		panic(fmt.Sprintf("transform: bad shift range [%d, %d]", from, to))
	}
	out := make([]Transform, 0, to-from+1)
	for s := from; s <= to; s++ {
		out = append(out, TimeShift(n, s))
	}
	return out
}

// ScaleSet returns scaling transformations for the given factors.
func ScaleSet(n int, factors []float64) []Transform {
	out := make([]Transform, 0, len(factors))
	for _, c := range factors {
		out = append(out, Scale(n, c))
	}
	return out
}

// WithInverted returns ts followed by the inverted version of each element
// (the two-cluster set of Sec. 5.2).
func WithInverted(ts []Transform) []Transform {
	out := make([]Transform, 0, 2*len(ts))
	out = append(out, ts...)
	for _, t := range ts {
		out = append(out, Inverted(t))
	}
	return out
}
