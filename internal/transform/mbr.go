package transform

import (
	"fmt"

	"tsq/internal/geom"
)

// MBRs builds the minimum bounding rectangles of a transformation set over
// the chosen polar components (Sec. 4.1). comps lists indices into the
// 2n-component polar vector (component 2f = magnitude of coefficient f,
// component 2f+1 = its phase); the result is the decomposition of the
// 2·len(comps)-dimensional transformation MBR into a mult-MBR (over the A
// parts) and an add-MBR (over the B parts), each of dimension len(comps).
func MBRs(ts []Transform, comps []int) (mult, add geom.Rect) {
	if len(ts) == 0 {
		panic("transform: MBRs of an empty transformation set")
	}
	aPts := make([]geom.Point, len(ts))
	bPts := make([]geom.Point, len(ts))
	for i, t := range ts {
		t.validate()
		ap := make(geom.Point, len(comps))
		bp := make(geom.Point, len(comps))
		for d, c := range comps {
			if c < 0 || c >= len(t.A) {
				panic(fmt.Sprintf("transform: component %d out of range for transform %q (2n=%d)", c, t.Name, len(t.A)))
			}
			ap[d] = t.A[c]
			bp[d] = t.B[c]
		}
		aPts[i] = ap
		bPts[i] = bp
	}
	return geom.MBR(aPts), geom.MBR(bPts)
}

// ApplyMBRs applies a transformation rectangle (mult, add) to a data
// rectangle x, all of the same dimension, per the paper's Eq. 12: in each
// dimension i the result interval is
//
//	[ add.Lo[i] + min(products), add.Hi[i] + max(products) ]
//
// where products ranges over the four corner products of the mult interval
// and the data interval. The returned rectangle contains t(p) for every
// transformation t inside (mult, add) and every point p inside x (Lemma 1).
func ApplyMBRs(mult, add, x geom.Rect) geom.Rect {
	d := x.Dim()
	if mult.Dim() != d || add.Dim() != d {
		panic(fmt.Sprintf("transform: ApplyMBRs dimension mismatch: mult=%d add=%d x=%d", mult.Dim(), add.Dim(), d))
	}
	lo := make(geom.Point, d)
	hi := make(geom.Point, d)
	for i := 0; i < d; i++ {
		p1 := mult.Lo[i] * x.Lo[i]
		p2 := mult.Lo[i] * x.Hi[i]
		p3 := mult.Hi[i] * x.Lo[i]
		p4 := mult.Hi[i] * x.Hi[i]
		lo[i] = add.Lo[i] + min4(p1, p2, p3, p4)
		hi[i] = add.Hi[i] + max4(p1, p2, p3, p4)
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// ApplyMBRsInto is ApplyMBRs writing into caller-provided corner
// slices, so a traversal can reuse one scratch rectangle for every
// entry it inspects instead of allocating two points per entry. lo and
// hi must have the common dimension; the returned rectangle aliases
// them.
func ApplyMBRsInto(lo, hi geom.Point, mult, add, x geom.Rect) geom.Rect {
	d := x.Dim()
	if mult.Dim() != d || add.Dim() != d || len(lo) != d || len(hi) != d {
		panic(fmt.Sprintf("transform: ApplyMBRsInto dimension mismatch: mult=%d add=%d x=%d lo=%d hi=%d",
			mult.Dim(), add.Dim(), d, len(lo), len(hi)))
	}
	for i := 0; i < d; i++ {
		p1 := mult.Lo[i] * x.Lo[i]
		p2 := mult.Lo[i] * x.Hi[i]
		p3 := mult.Hi[i] * x.Lo[i]
		p4 := mult.Hi[i] * x.Hi[i]
		lo[i] = add.Lo[i] + min4(p1, p2, p3, p4)
		hi[i] = add.Hi[i] + max4(p1, p2, p3, p4)
	}
	return geom.Rect{Lo: lo, Hi: hi}
}

// ApplyToPoint applies a single transformation, restricted to the chosen
// components, to a feature point: out[d] = A[comps[d]]*p[d] + B[comps[d]].
func (t Transform) ApplyToPoint(comps []int, p geom.Point) geom.Point {
	out := make(geom.Point, len(p))
	for d, c := range comps {
		out[d] = t.A[c]*p[d] + t.B[c]
	}
	return out
}

func min4(a, b, c, d float64) float64 {
	m := a
	if b < m {
		m = b
	}
	if c < m {
		m = c
	}
	if d < m {
		m = d
	}
	return m
}

func max4(a, b, c, d float64) float64 {
	m := a
	if b > m {
		m = b
	}
	if c > m {
		m = c
	}
	if d > m {
		m = d
	}
	return m
}
