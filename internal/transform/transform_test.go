package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tsq/internal/dft"
	"tsq/internal/geom"
	"tsq/internal/series"
)

func randSeries(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64() * 10
	}
	return s
}

func seriesClose(a, b series.Series, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := randSeries(rng, 32)
	got := Identity(32).ApplySeries(s)
	if !seriesClose(got, s, 1e-9) {
		t.Errorf("identity transform changed the series")
	}
}

func TestMovingAverageMatchesTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{8, 32, 128} {
		s := randSeries(rng, n)
		for _, m := range []int{1, 2, 5, n / 2, n} {
			got := MovingAverage(n, m).ApplySeries(s)
			want := series.CircularMovingAverage(s, m)
			if !seriesClose(got, want, 1e-7) {
				t.Errorf("n=%d m=%d: frequency-domain MA disagrees with time domain", n, m)
			}
		}
	}
}

func TestMomentumMatchesTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{4, 17, 128} {
		s := randSeries(rng, n)
		got := Momentum(n).ApplySeries(s)
		want := series.CircularMomentum(s)
		if !seriesClose(got, want, 1e-7) {
			t.Errorf("n=%d: frequency-domain momentum disagrees with time domain", n)
		}
	}
}

func TestTimeShiftExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 64
	s := randSeries(rng, n)
	for _, k := range []int{0, 1, 5, -3, n / 2} {
		got := TimeShift(n, k).ApplySeries(s)
		want := make(series.Series, n)
		for i := 0; i < n; i++ {
			want[i] = s[((i-k)%n+n)%n]
		}
		if !seriesClose(got, want, 1e-7) {
			t.Errorf("shift %d: frequency-domain shift disagrees with circular shift", k)
		}
	}
}

func TestTimeShiftWithPaddingIsLinearShift(t *testing.T) {
	// The Sec. 3.1.2 trick: pad s trailing zeros, then the circular shift
	// equals the linear (non-wrapping) shift.
	rng := rand.New(rand.NewSource(5))
	base := randSeries(rng, 60)
	k := 4
	padded := series.PadZeros(base, k)
	n := len(padded)
	got := TimeShift(n, k).ApplySeries(padded)
	want := series.Shift(padded, k)
	if !seriesClose(got, want, 1e-7) {
		t.Error("padded circular shift disagrees with linear shift")
	}
}

func TestTimeShiftApproxConverges(t *testing.T) {
	// The paper's approximate shift should approach the exact shift as n
	// grows: compare the distance between the two results relative to the
	// signal norm for n=64 vs n=1024.
	rng := rand.New(rand.NewSource(6))
	relErr := func(n int) float64 {
		s := randSeries(rng, n)
		exact := TimeShift(n, 1).ApplySeries(s)
		approx := TimeShiftApprox(n, 1).ApplySeries(s)
		return series.EuclideanDistance(exact, approx) / math.Sqrt(dft.EnergyReal(s))
	}
	small, large := relErr(64), relErr(1024)
	if large >= small {
		t.Errorf("approximate shift did not improve with length: err(64)=%v err(1024)=%v", small, large)
	}
}

func TestScaleAndInvert(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := randSeries(rng, 32)
	got := Scale(32, 2.5).ApplySeries(s)
	if !seriesClose(got, series.Scale(s, 2.5), 1e-8) {
		t.Error("Scale transform disagrees with time-domain scaling")
	}
	inv := Invert(32).ApplySeries(s)
	if !seriesClose(inv, series.Scale(s, -1), 1e-8) {
		t.Error("Invert transform disagrees with negation")
	}
	invMv := Inverted(MovingAverage(32, 4)).ApplySeries(s)
	want := series.Scale(series.CircularMovingAverage(s, 4), -1)
	if !seriesClose(invMv, want, 1e-7) {
		t.Error("Inverted moving average disagrees with negated moving average")
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	for _, c := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scale(%v) did not panic", c)
				}
			}()
			Scale(8, c)
		}()
	}
}

func TestComposeProperty(t *testing.T) {
	// Eq. 10: Compose(t2, t1) applied to x equals t2(t1(x)).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		s := randSeries(rng, n)
		t1 := MovingAverage(n, 1+rng.Intn(n/2))
		t2 := TimeShift(n, rng.Intn(10))
		X := dft.TransformReal(s)
		composed := Compose(t2, t1).ApplySpectrum(X)
		sequential := t2.ApplySpectrum(t1.ApplySpectrum(X))
		return dft.Distance(composed, sequential) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComposeShiftThenMA(t *testing.T) {
	// The Sec. 3.3 example: a shift followed by a moving average, checked
	// against doing the two time-domain operations in order.
	rng := rand.New(rand.NewSource(8))
	n := 128
	s := randSeries(rng, n)
	tc := Compose(MovingAverage(n, 10), TimeShift(n, 2))
	got := tc.ApplySeries(s)
	shifted := make(series.Series, n)
	for i := range shifted {
		shifted[i] = s[((i-2)%n+n)%n]
	}
	want := series.CircularMovingAverage(shifted, 10)
	if !seriesClose(got, want, 1e-6) {
		t.Error("composed shift+MA disagrees with sequential time-domain application")
	}
}

func TestComposeSets(t *testing.T) {
	n := 32
	shifts := TimeShiftSet(n, 0, 3)
	mas := MovingAverageSet(n, 1, 5)
	composed := ComposeSets(mas, shifts)
	if len(composed) != len(shifts)*len(mas) {
		t.Fatalf("|T3| = %d, want %d", len(composed), len(shifts)*len(mas))
	}
	// Spot-check one element against direct composition.
	rng := rand.New(rand.NewSource(9))
	s := randSeries(rng, n)
	X := dft.TransformReal(s)
	found := false
	for _, tc := range composed {
		if tc.Name == "mv3(shift2)" {
			found = true
			want := MovingAverage(n, 3).ApplySpectrum(TimeShift(n, 2).ApplySpectrum(X))
			if dft.Distance(tc.ApplySpectrum(X), want) > 1e-7 {
				t.Error("composed set element disagrees with direct composition")
			}
		}
	}
	if !found {
		t.Error("expected composed transform mv3(shift2) not found")
	}
}

func TestDistanceInvariantUnderShift(t *testing.T) {
	// Shifts are unitary: they preserve pairwise distances.
	rng := rand.New(rand.NewSource(10))
	n := 64
	x := dft.TransformReal(randSeries(rng, n))
	y := dft.TransformReal(randSeries(rng, n))
	base := dft.Distance(x, y)
	for _, k := range []int{1, 7, 30} {
		if got := TimeShift(n, k).Distance(x, y); math.Abs(got-base) > 1e-7 {
			t.Errorf("shift %d changed the distance: %v vs %v", k, got, base)
		}
	}
}

func TestMovingAverageSetAndFig3Ranges(t *testing.T) {
	// Fig. 3: at the second DFT coefficient, the MV(1..40) transformations
	// have magnitude multipliers in roughly [0.84, 1] with zero additive
	// part, and phase additive parts in (-1, 0] with multiplier exactly 1.
	n := 128
	ts := MovingAverageSet(n, 1, 40)
	if len(ts) != 40 {
		t.Fatalf("|MV(1..40)| = %d", len(ts))
	}
	comps := []int{2, 3} // magnitude and phase of coefficient 1
	mult, add := MBRs(ts, comps)
	// Magnitude multiplier (Dirichlet kernel at f=1).
	if mult.Lo[0] < 0.8 || mult.Hi[0] > 1+1e-9 || mult.Hi[0] < 1-1e-9 {
		t.Errorf("mult magnitude range = [%v, %v], want ~[0.84, 1]", mult.Lo[0], mult.Hi[0])
	}
	// Phase multiplier is the horizontal line at 1.
	if mult.Lo[1] != 1 || mult.Hi[1] != 1 {
		t.Errorf("mult phase range = [%v, %v], want [1, 1]", mult.Lo[1], mult.Hi[1])
	}
	// Magnitude additive part is the vertical line at 0.
	if add.Lo[0] != 0 || add.Hi[0] != 0 {
		t.Errorf("add magnitude range = [%v, %v], want [0, 0]", add.Lo[0], add.Hi[0])
	}
	// Phase additive part lies in (-1, 0].
	if add.Lo[1] < -1 || add.Hi[1] > 1e-9 {
		t.Errorf("add phase range = [%v, %v], want within (-1, 0]", add.Lo[1], add.Hi[1])
	}
}

func TestApplyMBRsContainment(t *testing.T) {
	// The heart of Lemma 1: for every transformation t in the set and
	// every point p in the data rectangle, t(p) lies inside
	// ApplyMBRs(mult, add, rect).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 32
		var ts []Transform
		for i := 0; i < 5; i++ {
			switch rng.Intn(3) {
			case 0:
				ts = append(ts, MovingAverage(n, 1+rng.Intn(n)))
			case 1:
				ts = append(ts, TimeShift(n, rng.Intn(20)))
			default:
				ts = append(ts, Scale(n, 0.5+rng.Float64()*3))
			}
		}
		comps := []int{2, 3, 4, 5}
		mult, add := MBRs(ts, comps)
		// Random data rectangle, including negative coordinates (phases).
		lo := make([]float64, len(comps))
		hi := make([]float64, len(comps))
		for i := range lo {
			a, b := rng.NormFloat64()*3, rng.NormFloat64()*3
			lo[i], hi[i] = math.Min(a, b), math.Max(a, b)
		}
		rect := applyRect(lo, hi)
		out := ApplyMBRs(mult, add, rect)
		for trial := 0; trial < 30; trial++ {
			p := make([]float64, len(comps))
			for i := range p {
				p[i] = lo[i] + rng.Float64()*(hi[i]-lo[i])
			}
			tr := ts[rng.Intn(len(ts))]
			q := tr.ApplyToPoint(comps, p)
			for i := range q {
				if q[i] < out.Lo[i]-1e-9 || q[i] > out.Hi[i]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestApplyMBRsWorkedExample(t *testing.T) {
	// A Fig. 4-style worked example: mult interval [0.85, 1] x {1},
	// add interval {0} x [-0.96, 0], data rect [3, 7] x [1, 3].
	mult := applyRect([]float64{0.85, 1}, []float64{1, 1})
	add := applyRect([]float64{0, -0.96}, []float64{0, 0})
	data := applyRect([]float64{3, 1}, []float64{7, 3})
	out := ApplyMBRs(mult, add, data)
	if math.Abs(out.Lo[0]-0.85*3) > 1e-12 || math.Abs(out.Hi[0]-1*7) > 1e-12 {
		t.Errorf("magnitude interval = [%v, %v], want [2.55, 7]", out.Lo[0], out.Hi[0])
	}
	if math.Abs(out.Lo[1]-(1*1-0.96)) > 1e-12 || math.Abs(out.Hi[1]-3) > 1e-12 {
		t.Errorf("phase interval = [%v, %v], want [0.04, 3]", out.Lo[1], out.Hi[1])
	}
}

func TestLemma2ScaleOrdering(t *testing.T) {
	// Lemma 2: positive scale factors sorted ascending form an ordering
	// per Definition 1.
	rng := rand.New(rand.NewSource(11))
	n := 32
	factors := []float64{2, 3, 5, 10, 50, 100}
	o := NewScaleOrderedSet(n, factors)
	var samples [][]complex128
	for i := 0; i < 6; i++ {
		samples = append(samples, dft.TransformReal(randSeries(rng, n)))
	}
	if !CheckOrdering(o.Transforms, samples, 1e-9) {
		t.Error("scale factors violated Definition 1 on random samples")
	}
	if fs, ok := OrderableAsScales(o.Transforms); !ok || len(fs) != len(factors) {
		t.Error("OrderableAsScales rejected a pure scale set")
	}
	if _, ok := OrderableAsScales([]Transform{MovingAverage(n, 3)}); ok {
		t.Error("OrderableAsScales accepted a moving average")
	}
}

// appendixSeries are s1, s2, s3 from Appendix A.
func appendixSeries() [][]float64 {
	return [][]float64{
		{10, 12, 10, 12},
		{10, 11, 12, 11},
		{11, 11, 11, 11},
	}
}

func TestLemma3CircularMACounterexample(t *testing.T) {
	// Lemma 3: circular moving averages admit no ordering. The appendix
	// counterexample: both candidate orderings between mv2 and mv3 fail.
	n := 4
	mv2 := MovingAverage(n, 2)
	mv3 := MovingAverage(n, 3)
	samples := Spectra(appendixSeries())
	if CheckOrdering([]Transform{mv2, mv3}, samples, 1e-9) {
		t.Error("mv2 <= mv3 unexpectedly held on the appendix counterexample")
	}
	if CheckOrdering([]Transform{mv3, mv2}, samples, 1e-9) {
		t.Error("mv3 <= mv2 unexpectedly held on the appendix counterexample")
	}
	// The concrete distances driving the contradiction. Note: the appendix
	// prints D(mv3(s2), mv3(s3)) = 0.75; the exact value for these series
	// is sqrt(2)/3 ~= 0.4714 (two components off by 1/3), which still
	// contradicts mv2 <= mv3 since D(mv2(s2), mv2(s3)) = 1.
	d22 := mv2.Distance(samples[1], samples[2])
	d32 := mv3.Distance(samples[1], samples[2])
	if math.Abs(d22-1) > 1e-7 {
		t.Errorf("D(mv2(s2), mv2(s3)) = %v, want 1", d22)
	}
	if math.Abs(d32-math.Sqrt(2)/3) > 1e-7 {
		t.Errorf("D(mv3(s2), mv3(s3)) = %v, want %v", d32, math.Sqrt(2)/3)
	}
	d21 := mv2.Distance(samples[0], samples[2])
	d31 := mv3.Distance(samples[0], samples[2])
	if d21 > 1e-7 {
		t.Errorf("D(mv2(s1), mv2(s3)) = %v, want 0", d21)
	}
	if math.Abs(d31-2.0/3.0) > 1e-7 {
		t.Errorf("D(mv3(s1), mv3(s3)) = %v, want 2/3", d31)
	}
}

func TestLemma4NonCircularMACounterexample(t *testing.T) {
	// Lemma 4: plain (non-circular) moving averages admit no ordering
	// either; verified in the time domain with the appendix numbers.
	ss := appendixSeries()
	mv := func(s []float64, m int) series.Series { return series.MovingAverage(series.Series(s), m) }
	d := series.EuclideanDistance
	// Case 1 violation: D(mv2(s2), mv2(s3)) = 0.87 > D(mv3(s2), mv3(s3)) = 0.33.
	if got := d(mv(ss[1], 2), mv(ss[2], 2)); math.Abs(got-math.Sqrt(0.75)) > 1e-7 {
		t.Errorf("D(mv2(s2), mv2(s3)) = %v, want %v", got, math.Sqrt(0.75))
	}
	if got := d(mv(ss[1], 3), mv(ss[2], 3)); math.Abs(got-1.0/3.0) > 1e-7 {
		t.Errorf("D(mv3(s2), mv3(s3)) = %v, want 1/3", got)
	}
	// Case 2 violation: D(mv3(s1), mv3(s3)) = 0.47 > D(mv2(s1), mv2(s3)) = 0.
	if got := d(mv(ss[0], 3), mv(ss[2], 3)); math.Abs(got-math.Sqrt(2)/3) > 1e-7 {
		t.Errorf("D(mv3(s1), mv3(s3)) = %v, want %v", got, math.Sqrt(2)/3)
	}
	if got := d(mv(ss[0], 2), mv(ss[2], 2)); got > 1e-12 {
		t.Errorf("D(mv2(s1), mv2(s3)) = %v, want 0", got)
	}
}

func TestOrderedBinarySearch(t *testing.T) {
	// Sec. 4.4: with an ordered set, the qualifying transformations form a
	// prefix found with O(log |T|) distance evaluations.
	rng := rand.New(rand.NewSource(12))
	n := 32
	factors := make([]float64, 64)
	for i := range factors {
		factors[i] = float64(i + 2)
	}
	o := NewScaleOrderedSet(n, factors)
	x := dft.TransformReal(randSeries(rng, n))
	y := dft.TransformReal(randSeries(rng, n))
	base := dft.Distance(x, y)
	// Choose eps so roughly half the scales qualify.
	eps := base * 33
	var evals int
	k := o.LargestQualifying(func(tr Transform) bool {
		evals++
		return tr.Distance(x, y) <= eps
	})
	// Verify against linear scan.
	want := -1
	for i, tr := range o.Transforms {
		if tr.Distance(x, y) <= eps {
			want = i
		}
	}
	if k != want {
		t.Errorf("binary search found index %d, linear scan %d", k, want)
	}
	if maxEvals := 7; evals > maxEvals { // ceil(log2(64))+1
		t.Errorf("binary search used %d evaluations, want <= %d", evals, maxEvals)
	}
	qual := o.QualifyingByDistance(x, y, eps)
	if len(qual) != want+1 {
		t.Errorf("QualifyingByDistance returned %d transforms, want %d", len(qual), want+1)
	}
}

func TestLargestQualifyingEdges(t *testing.T) {
	o := NewScaleOrderedSet(8, []float64{1, 2, 3})
	if got := o.LargestQualifying(func(Transform) bool { return false }); got != -1 {
		t.Errorf("none qualifying: got %d, want -1", got)
	}
	if got := o.LargestQualifying(func(Transform) bool { return true }); got != 2 {
		t.Errorf("all qualifying: got %d, want 2", got)
	}
}

func TestWithInverted(t *testing.T) {
	n := 16
	ts := WithInverted(MovingAverageSet(n, 2, 4))
	if len(ts) != 6 {
		t.Fatalf("len = %d, want 6", len(ts))
	}
	rng := rand.New(rand.NewSource(13))
	s := randSeries(rng, n)
	a := ts[0].ApplySeries(s) // mv2
	b := ts[3].ApplySeries(s) // mv2 inverted
	if !seriesClose(b, series.Scale(a, -1), 1e-7) {
		t.Error("inverted half is not the negation of the original half")
	}
}

func TestMBRsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty set")
		}
	}()
	MBRs(nil, []int{0})
}

func applyRect(lo, hi []float64) geom.Rect {
	return geom.NewRect(geom.Point(lo), geom.Point(hi))
}

func TestWeightedMovingAverageMatchesTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 64
	s := randSeries(rng, n)
	weights := []float64{3, 2, 1}
	got := WeightedMovingAverage(n, weights).ApplySeries(s)
	want := make(series.Series, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j, w := range weights {
			acc += w * s[((i-j)%n+n)%n]
		}
		want[i] = acc / 6
	}
	if !seriesClose(got, want, 1e-7) {
		t.Error("weighted moving average disagrees with time domain")
	}
	// Uniform weights reduce to the plain moving average.
	uniform := WeightedMovingAverage(n, []float64{1, 1, 1, 1}).ApplySeries(s)
	plain := series.CircularMovingAverage(s, 4)
	if !seriesClose(uniform, plain, 1e-7) {
		t.Error("uniform WMA differs from MovingAverage")
	}
}

func TestWeightedMovingAveragePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty", func() { WeightedMovingAverage(8, nil) }},
		{"too many", func() { WeightedMovingAverage(2, []float64{1, 1, 1}) }},
		{"zero sum", func() { WeightedMovingAverage(8, []float64{1, -1}) }},
		{"ema low", func() { EMA(8, 0) }},
		{"ema high", func() { EMA(8, 1.5) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestEMAMatchesTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := 64
	s := randSeries(rng, n)
	alpha := 0.3
	got := EMA(n, alpha).ApplySeries(s)
	// Direct circular convolution with the normalized geometric kernel.
	kernel := make(series.Series, n)
	var sum float64
	w := alpha
	for j := 0; j < n; j++ {
		kernel[j] = w
		sum += w
		w *= 1 - alpha
	}
	want := make(series.Series, n)
	for i := 0; i < n; i++ {
		var acc float64
		for j := 0; j < n; j++ {
			acc += kernel[j] * s[((i-j)%n+n)%n]
		}
		want[i] = acc / sum
	}
	if !seriesClose(got, want, 1e-7) {
		t.Error("EMA disagrees with direct circular convolution")
	}
	// EMA smooths: the result's variance is below the input's.
	if got.Std() >= s.Std() {
		t.Error("EMA did not smooth")
	}
}

func TestReverseMatchesTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 32
	s := randSeries(rng, n)
	got := Reverse(n).ApplySeries(s)
	want := make(series.Series, n)
	for i := range want {
		want[i] = s[((-i)%n+n)%n]
	}
	if !seriesClose(got, want, 1e-7) {
		t.Error("Reverse disagrees with time-domain reversal")
	}
	// Reversal is an involution.
	back := Reverse(n).ApplySeries(got)
	if !seriesClose(back, s, 1e-7) {
		t.Error("double reversal is not the identity")
	}
	// And an isometry.
	x := dft.TransformReal(randSeries(rng, n))
	y := dft.TransformReal(randSeries(rng, n))
	if math.Abs(Reverse(n).Distance(x, y)-dft.Distance(x, y)) > 1e-7 {
		t.Error("reversal changed pairwise distance")
	}
}

func TestReverseThroughIndexPath(t *testing.T) {
	// Reverse has phase multiplier -1: check DistancePolar and the MBR
	// machinery handle a non-unit phase multiplier.
	rng := rand.New(rand.NewSource(17))
	n := 32
	a := randSeries(rng, n)
	b := randSeries(rng, n)
	X, Y := dft.TransformReal(a), dft.TransformReal(b)
	rev := Reverse(n)
	polarOf := func(Z []complex128) (m, p []float64) {
		pol := dft.ToPolar(Z)
		m = make([]float64, len(pol))
		p = make([]float64, len(pol))
		for i, v := range pol {
			m[i], p[i] = v.Mag, v.Phase
		}
		return m, p
	}
	xm, xp := polarOf(X)
	ym, yp := polarOf(Y)
	got := rev.DistancePolar(xm, xp, ym, yp)
	want := rev.Distance(X, Y)
	if math.Abs(got-want) > 1e-7 {
		t.Errorf("DistancePolar %v vs Distance %v under reversal", got, want)
	}
	// MBR containment with a mixed set including Reverse.
	ts := []Transform{rev, MovingAverage(n, 3), Identity(n)}
	comps := []int{2, 3, 4, 5}
	mult, add := MBRs(ts, comps)
	p := geom.Point{1.5, 0.7, 2.2, -2.9}
	rect := geom.PointRect(p)
	out := ApplyMBRs(mult, add, rect)
	for _, tr := range ts {
		q := tr.ApplyToPoint(comps, p)
		for d := range q {
			if q[d] < out.Lo[d]-1e-9 || q[d] > out.Hi[d]+1e-9 {
				t.Fatalf("%s(p) dim %d = %v outside %v", tr.Name, d, q[d], out)
			}
		}
	}
}

func TestMomentumLagMatchesTimeDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n := 48
	s := randSeries(rng, n)
	for _, k := range []int{1, 2, 5, 20} {
		got := MomentumLag(n, k).ApplySeries(s)
		want := make(series.Series, n)
		for i := 0; i < n; i++ {
			want[i] = s[i] - s[((i-k)%n+n)%n]
		}
		if !seriesClose(got, want, 1e-7) {
			t.Errorf("lag %d momentum disagrees with time domain", k)
		}
	}
	// Lag 1 equals the classic momentum.
	a := MomentumLag(n, 1).ApplySeries(s)
	b := Momentum(n).ApplySeries(s)
	if !seriesClose(a, b, 1e-9) {
		t.Error("MomentumLag(1) differs from Momentum")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for lag 0")
		}
	}()
	MomentumLag(n, 0)
}
