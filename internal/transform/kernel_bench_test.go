package transform

import (
	"math/rand"
	"testing"
)

// Benchmarks for the blocked polar-distance kernels. Unlike the pure
// Euclidean kernel these are cosine-dominated (one math.Cos per
// coefficient), so no speedup assertion is attached — the blocked shape
// exists so the subtract/multiply traffic around the Cos calls
// pipelines, and so the plain and abandoning kernels stay structurally
// identical (the bit-identity contract lives in abandon_test.go).
func benchPolar(b *testing.B, left, abandon, early bool) {
	rng := rand.New(rand.NewSource(3))
	tr := MovingAverage(64, 7)
	xm, xp := randPolar(rng, 64)
	ym, yp := randPolar(rng, 64)
	eps := tr.DistancePolar(xm, xp, ym, yp) + 1
	if early {
		eps = 1e-3
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		switch {
		case left && abandon:
			d, _ := tr.DistancePolarLeftAbandon(xm, xp, ym, yp, eps)
			sink += d
		case left:
			sink += tr.DistancePolarLeft(xm, xp, ym, yp)
		case abandon:
			d, _ := tr.DistancePolarAbandon(xm, xp, ym, yp, eps)
			sink += d
		default:
			sink += tr.DistancePolar(xm, xp, ym, yp)
		}
	}
	if sink == 0 {
		b.Fatal("kernel returned zero on random input")
	}
}

func BenchmarkKernelPolar(b *testing.B)               { benchPolar(b, false, false, false) }
func BenchmarkKernelPolarAbandonSurvive(b *testing.B) { benchPolar(b, false, true, false) }
func BenchmarkKernelPolarAbandonEarly(b *testing.B)   { benchPolar(b, false, true, true) }
func BenchmarkKernelPolarLeft(b *testing.B)           { benchPolar(b, true, false, false) }
func BenchmarkKernelPolarLeftAbandon(b *testing.B)    { benchPolar(b, true, true, false) }
