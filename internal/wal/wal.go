// Package wal implements the write-ahead log that makes Insert/Delete
// crash-consistent: every mutation is recorded — as a logical operation
// plus the full after-images of every page it modifies — and fsynced
// before any page of the tree or heap is touched in place. A crash at
// any point therefore leaves either (a) no trace of an unacknowledged
// write, or (b) a durable WAL record from which reopen reconstructs the
// acknowledged state exactly, healing torn pages by rewriting their
// logged images (physical redo, which a logical-only log could not do:
// a tree split or heap-directory rewrite overwrites live pages, and a
// torn directory page destroys state no operation record can rebuild).
//
// The file format mirrors the capture journal's framing discipline:
// an 8-byte magic ("TSQWAL01") followed by frames of
//
//	kind (1 byte) | payload length (4 bytes LE) | payload | CRC32C (4 bytes)
//
// where the CRC covers header and payload. A torn tail — an incomplete
// or checksum-failing final frame — is truncated away on open; replay
// is idempotent (rewriting a page image it already holds is a no-op in
// effect), so recovery can itself crash and re-run.
//
// Checkpointing folds the log into the main file: the caller syncs the
// page file first, then Checkpoint truncates the WAL back to its magic.
// Group commit: concurrent appenders share fsyncs — an append whose
// bytes were covered by another appender's in-flight fsync returns
// without issuing its own.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"tsq/internal/storage"
)

// Magic identifies a WAL segment file.
var Magic = [8]byte{'T', 'S', 'Q', 'W', 'A', 'L', '0', '1'}

// castagnoli is the CRC32C table, the same polynomial as the storage
// layer's page trailers and the capture journal.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is kind (1) + payload length (4).
const frameHeaderSize = 5

// frameRecord is the only frame kind so far; the byte exists so the
// format can grow (e.g. checkpoint markers) without a magic bump.
const frameRecord = 1

// maxFramePayload bounds a frame so a torn length field cannot drive a
// multi-gigabyte allocation during the open scan.
const maxFramePayload = 1 << 28

// Op is the logical operation a record describes.
type Op uint8

const (
	// OpInsert appends one series to the index.
	OpInsert Op = 1
	// OpDelete tombstones one series.
	OpDelete Op = 2
)

func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// PageImage is the full logical after-image of one page an operation
// modified. Replay rewrites these through the normal write path (so
// checksum trailers are recomputed), healing any torn in-place write.
type PageImage struct {
	ID   storage.PageID
	Data []byte
}

// Record is one logged operation: what happened logically (for
// diagnostics and scrubbing) and which pages it produced physically
// (for redo).
type Record struct {
	LSN    uint64
	Op     Op
	ID     int64     // record id, shard-local
	Name   string    // OpInsert only
	Series []float64 // OpInsert only
	Pages  []PageImage
}

// Device is the byte store under a Log. The indirection exists for the
// fault-injection tests; production logs sit on an *os.File via
// OpenDevice.
type Device interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
	Size() (int64, error)
}

// fileDevice adapts *os.File to Device.
type fileDevice struct{ f *os.File }

func (d fileDevice) ReadAt(p []byte, off int64) (int, error)  { return d.f.ReadAt(p, off) }
func (d fileDevice) WriteAt(p []byte, off int64) (int, error) { return d.f.WriteAt(p, off) }
func (d fileDevice) Truncate(size int64) error                { return d.f.Truncate(size) }
func (d fileDevice) Sync() error                              { return d.f.Sync() }
func (d fileDevice) Close() error                             { return d.f.Close() }
func (d fileDevice) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// OpenDevice opens (creating if needed) the WAL file at path as a
// Device.
func OpenDevice(path string) (Device, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return fileDevice{f: f}, nil
}

// Stats snapshots what a Log has done this session plus what its file
// holds now.
type Stats struct {
	Records      int64  `json:"records"`       // records appended this session
	Pending      int64  `json:"pending"`       // records in the file awaiting checkpoint
	Bytes        int64  `json:"bytes"`         // current segment size
	Fsyncs       int64  `json:"fsyncs"`        // fsyncs issued
	GroupCommits int64  `json:"group_commits"` // appends that rode another append's fsync
	Checkpoints  int64  `json:"checkpoints"`   // truncations after a fold
	TornBytes    int64  `json:"torn_bytes"`    // torn tail dropped at open
	LastLSN      uint64 `json:"last_lsn"`
}

// globalCounters tallies WAL activity across every Log in the process,
// monotonic, for the metrics registry (the same pattern as the storage
// layer's process-global counters).
var globalCounters struct {
	records      atomic.Int64
	replayed     atomic.Int64
	fsyncs       atomic.Int64
	groupCommits atomic.Int64
	checkpoints  atomic.Int64
	fsyncNanos   atomic.Int64
}

// GlobalStats returns the process-wide monotonic WAL counters.
// Replayed is reported via GlobalReplayed.
func GlobalStats() Stats {
	return Stats{
		Records:      globalCounters.records.Load(),
		Fsyncs:       globalCounters.fsyncs.Load(),
		GroupCommits: globalCounters.groupCommits.Load(),
		Checkpoints:  globalCounters.checkpoints.Load(),
	}
}

// GlobalReplayed returns how many WAL records recovery has re-applied
// process-wide.
func GlobalReplayed() int64 { return globalCounters.replayed.Load() }

// GlobalFsyncNanos returns the cumulative time spent in WAL fsyncs.
func GlobalFsyncNanos() int64 { return globalCounters.fsyncNanos.Load() }

// NoteReplayed books n replayed records (called by the recovery path in
// the persistence layer, which is where replay actually runs).
func NoteReplayed(n int64) { globalCounters.replayed.Add(n) }

// Log is an open write-ahead log. Append is safe for concurrent use;
// Checkpoint and Close serialize against appenders.
type Log struct {
	mu      sync.Mutex // ordering state: end offset, LSN, scratch
	dev     Device
	end     int64
	lastLSN uint64
	pending int64
	closed  bool
	scratch []byte

	syncMu       sync.Mutex // group-commit state
	synced       int64      // bytes known durable
	fsyncs       int64
	groupCommits int64

	records     int64
	checkpoints int64
	tornBytes   int64

	// OnFsync, when set (before the first Append), observes each fsync's
	// latency — the facade feeds it into the metrics histogram.
	OnFsync func(time.Duration)
}

var errClosed = errors.New("wal: log is closed")

// Open attaches to the WAL on dev: a fresh (or sub-magic) device is
// initialized and synced; an existing one is scanned, its torn tail
// truncated away, and every intact record returned for replay. The
// caller folds the returned records into the main file and then calls
// Checkpoint.
func Open(dev Device) (*Log, []Record, error) {
	size, err := dev.Size()
	if err != nil {
		return nil, nil, fmt.Errorf("wal: sizing log: %w", err)
	}
	l := &Log{dev: dev}
	if size < int64(len(Magic)) {
		// Fresh, or a header torn mid-create: nothing acknowledged can be
		// in here, start over.
		if err := dev.Truncate(0); err != nil {
			return nil, nil, fmt.Errorf("wal: initializing log: %w", err)
		}
		if _, err := dev.WriteAt(Magic[:], 0); err != nil {
			return nil, nil, fmt.Errorf("wal: writing log magic: %w", err)
		}
		if err := dev.Sync(); err != nil {
			return nil, nil, fmt.Errorf("wal: syncing log magic: %w", err)
		}
		l.end = int64(len(Magic))
		l.synced = l.end
		return l, nil, nil
	}
	var magic [8]byte
	if _, err := dev.ReadAt(magic[:], 0); err != nil {
		return nil, nil, fmt.Errorf("wal: reading log magic: %w", err)
	}
	if magic != Magic {
		return nil, nil, fmt.Errorf("wal: not a WAL segment (magic %q)", magic[:])
	}
	recs, end, err := scan(dev, size)
	if err != nil {
		return nil, nil, err
	}
	if end < size {
		if err := dev.Truncate(end); err != nil {
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if err := dev.Sync(); err != nil {
			return nil, nil, fmt.Errorf("wal: syncing after tail truncation: %w", err)
		}
		l.tornBytes = size - end
	}
	l.end = end
	l.synced = end
	l.pending = int64(len(recs))
	for i := range recs {
		if recs[i].LSN > l.lastLSN {
			l.lastLSN = recs[i].LSN
		}
	}
	return l, recs, nil
}

// OpenFile is Open over the file at path.
func OpenFile(path string) (*Log, []Record, error) {
	dev, err := OpenDevice(path)
	if err != nil {
		return nil, nil, err
	}
	l, recs, err := Open(dev)
	if err != nil {
		_ = dev.Close()
		return nil, nil, err
	}
	return l, recs, nil
}

// scan walks the frames after the magic, returning every intact record
// and the offset of the first incomplete or checksum-failing frame —
// the truncation point. A frame is only accepted when its whole extent
// and CRC check out, so the scan never misparses a torn write.
func scan(dev io.ReaderAt, size int64) ([]Record, int64, error) {
	var recs []Record
	end := int64(len(Magic))
	var header [frameHeaderSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(io.NewSectionReader(dev, end, size-end), header[:]); err != nil {
			return recs, end, nil // clean EOF or torn header
		}
		n := binary.LittleEndian.Uint32(header[1:])
		if n > maxFramePayload {
			return recs, end, nil // garbage length: torn tail
		}
		if cap(payload) < int(n)+4 {
			payload = make([]byte, int(n)+4)
		}
		body := payload[:int(n)+4]
		if _, err := io.ReadFull(io.NewSectionReader(dev, end+frameHeaderSize, size-end-frameHeaderSize), body); err != nil {
			return recs, end, nil // torn payload
		}
		crc := crc32.Update(crc32.Checksum(header[:], castagnoli), castagnoli, body[:n])
		if crc != binary.LittleEndian.Uint32(body[n:]) {
			return recs, end, nil // checksum failure: truncate here
		}
		if header[0] == frameRecord {
			rec, err := decodeRecord(body[:n])
			if err != nil {
				// The CRC passed but the payload does not decode: that is
				// corruption of a durable record, not a torn tail.
				return recs, end, fmt.Errorf("wal: corrupt record at offset %d: %w", end, err)
			}
			recs = append(recs, rec)
		}
		end += int64(frameHeaderSize) + int64(n) + 4
	}
}

// Append logs one record and returns once it is durable (fsynced). The
// LSN is assigned here, continuing the sequence found at open. This is
// the acknowledgement point of the write path: after Append returns
// nil, the operation survives any crash.
func (l *Log) Append(rec *Record) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return errClosed
	}
	rec.LSN = l.lastLSN + 1
	l.scratch = appendFrame(l.scratch[:0], rec)
	if _, err := l.dev.WriteAt(l.scratch, l.end); err != nil {
		// Nothing is acknowledged; whatever bytes landed sit past l.end
		// where the next open's scan truncates them.
		l.mu.Unlock()
		return fmt.Errorf("wal: appending %s record %d: %w", rec.Op, rec.ID, err)
	}
	l.lastLSN = rec.LSN
	l.end += int64(len(l.scratch))
	l.pending++
	l.records++
	target := l.end
	l.mu.Unlock()

	if err := l.syncTo(target); err != nil {
		return fmt.Errorf("wal: fsync of %s record %d: %w", rec.Op, rec.ID, err)
	}
	globalCounters.records.Add(1)
	return nil
}

// syncTo makes everything up to target durable, sharing fsyncs between
// concurrent appenders: whoever holds syncMu syncs up to the log's
// current end, and any appender whose target that covered returns
// without a syscall of its own (a group commit).
func (l *Log) syncTo(target int64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced >= target {
		l.groupCommits++
		globalCounters.groupCommits.Add(1)
		return nil
	}
	l.mu.Lock()
	end := l.end
	l.mu.Unlock()
	start := time.Now()
	err := l.dev.Sync()
	d := time.Since(start)
	l.fsyncs++
	globalCounters.fsyncs.Add(1)
	globalCounters.fsyncNanos.Add(int64(d))
	if l.OnFsync != nil {
		l.OnFsync(d)
	}
	if err != nil {
		return err
	}
	l.synced = end
	return nil
}

// Checkpoint truncates the log back to its magic. The caller must have
// made the logged operations durable in the main file (mgr.Sync) first
// — that ordering is the whole protocol. LSNs keep counting up in
// memory, so records appended after a checkpoint never reuse a
// sequence number within the session.
func (l *Log) Checkpoint() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errClosed
	}
	if err := l.dev.Truncate(int64(len(Magic))); err != nil {
		return fmt.Errorf("wal: checkpoint truncate: %w", err)
	}
	if err := l.dev.Sync(); err != nil {
		return fmt.Errorf("wal: checkpoint sync: %w", err)
	}
	l.end = int64(len(Magic))
	l.synced = l.end
	l.pending = 0
	l.checkpoints++
	globalCounters.checkpoints.Add(1)
	return nil
}

// Size returns the current segment size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.end
}

// Pending returns how many records the segment holds awaiting a
// checkpoint.
func (l *Log) Pending() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.pending
}

// Stats snapshots the log's counters. Nil-receiver safe (the zero
// stats), matching the facade convention for disabled subsystems.
func (l *Log) Stats() Stats {
	if l == nil {
		return Stats{}
	}
	l.syncMu.Lock()
	fsyncs, groups := l.fsyncs, l.groupCommits
	l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Records:      l.records,
		Pending:      l.pending,
		Bytes:        l.end,
		Fsyncs:       fsyncs,
		GroupCommits: groups,
		Checkpoints:  l.checkpoints,
		TornBytes:    l.tornBytes,
		LastLSN:      l.lastLSN,
	}
}

// Close syncs and closes the device. Nil-receiver safe.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var firstErr error
	if err := l.dev.Sync(); err != nil {
		firstErr = err
	}
	if err := l.dev.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ScanInfo is what a read-only scan of a WAL file found — the
// scrubber's view.
type ScanInfo struct {
	Present   bool   // the file exists
	Records   int    // intact records awaiting fold
	Bytes     int64  // file size
	TornBytes int64  // torn tail a recovery would discard (expected after a crash)
	FirstLSN  uint64 // of the pending records; 0 when none
	LastLSN   uint64
}

// ReadPending scans the WAL at path without modifying it, returning the
// pending records and what the scan saw. A missing file is a valid
// empty WAL (Present false); a present file with a foreign magic or an
// undecodable durable record is an error — that is corruption, not a
// crash artifact.
func ReadPending(path string) ([]Record, ScanInfo, error) {
	var info ScanInfo
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, info, nil
		}
		return nil, info, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	info.Present = true
	st, err := f.Stat()
	if err != nil {
		return nil, info, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	info.Bytes = st.Size()
	if st.Size() < int64(len(Magic)) {
		// Torn mid-create: nothing acknowledged can be inside.
		info.TornBytes = st.Size()
		return nil, info, nil
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, info, fmt.Errorf("wal: reading magic of %s: %w", path, err)
	}
	if magic != Magic {
		return nil, info, fmt.Errorf("wal: %s is not a WAL segment (magic %q)", path, magic[:])
	}
	recs, end, err := scan(f, st.Size())
	if err != nil {
		return nil, info, err
	}
	info.Records = len(recs)
	info.TornBytes = st.Size() - end
	if len(recs) > 0 {
		info.FirstLSN = recs[0].LSN
		info.LastLSN = recs[len(recs)-1].LSN
	}
	return recs, info, nil
}

// Record payload layout (little endian):
//
//	offset 0:  LSN (uint64)
//	offset 8:  op (uint8)
//	offset 9:  record id (int64)
//	offset 17: name length (uint16), name bytes
//	then: series length (uint32), series samples (float64 each)
//	then: page count (uint32); per page: id (uint32), data length
//	      (uint32), data bytes
func appendFrame(buf []byte, rec *Record) []byte {
	start := len(buf)
	buf = append(buf, frameRecord, 0, 0, 0, 0) // header; length patched below
	payloadStart := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, rec.LSN)
	buf = append(buf, byte(rec.Op))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.ID))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Name)))
	buf = append(buf, rec.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Series)))
	for _, v := range rec.Series {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Pages)))
	for _, p := range rec.Pages {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p.ID))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(p.Data)))
		buf = append(buf, p.Data...)
	}
	n := len(buf) - payloadStart
	binary.LittleEndian.PutUint32(buf[start+1:], uint32(n))
	crc := crc32.Update(crc32.Checksum(buf[start:start+frameHeaderSize], castagnoli), castagnoli, buf[payloadStart:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// decodeRecord parses one frame payload. Every length is validated
// against the remaining bytes so a corrupt-but-CRC-passing payload
// (which only a software bug could produce) fails cleanly.
func decodeRecord(p []byte) (Record, error) {
	var rec Record
	need := func(n int) error {
		if len(p) < n {
			return fmt.Errorf("wal: record payload truncated (need %d bytes, have %d)", n, len(p))
		}
		return nil
	}
	if err := need(19); err != nil {
		return rec, err
	}
	rec.LSN = binary.LittleEndian.Uint64(p)
	rec.Op = Op(p[8])
	rec.ID = int64(binary.LittleEndian.Uint64(p[9:]))
	nameLen := int(binary.LittleEndian.Uint16(p[17:]))
	p = p[19:]
	if rec.Op != OpInsert && rec.Op != OpDelete {
		return rec, fmt.Errorf("wal: unknown op %d", uint8(rec.Op))
	}
	if err := need(nameLen); err != nil {
		return rec, err
	}
	rec.Name = string(p[:nameLen])
	p = p[nameLen:]
	if err := need(4); err != nil {
		return rec, err
	}
	seriesLen := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if err := need(8 * seriesLen); err != nil {
		return rec, err
	}
	if seriesLen > 0 {
		rec.Series = make([]float64, seriesLen)
		for i := range rec.Series {
			rec.Series[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
		}
		p = p[8*seriesLen:]
	}
	if err := need(4); err != nil {
		return rec, err
	}
	npages := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	rec.Pages = make([]PageImage, 0, npages)
	for i := 0; i < npages; i++ {
		if err := need(8); err != nil {
			return rec, err
		}
		id := storage.PageID(binary.LittleEndian.Uint32(p))
		dataLen := int(binary.LittleEndian.Uint32(p[4:]))
		p = p[8:]
		if err := need(dataLen); err != nil {
			return rec, err
		}
		data := make([]byte, dataLen)
		copy(data, p[:dataLen])
		p = p[dataLen:]
		if id == storage.NilPage {
			return rec, errors.New("wal: page image for the nil page")
		}
		rec.Pages = append(rec.Pages, PageImage{ID: id, Data: data})
	}
	if len(p) != 0 {
		return rec, fmt.Errorf("wal: %d trailing bytes after record", len(p))
	}
	return rec, nil
}
