package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"tsq/internal/storage"
)

// testRecord builds a distinguishable record.
func testRecord(i int) *Record {
	return &Record{
		Op:     OpInsert,
		ID:     int64(i),
		Name:   fmt.Sprintf("series-%04d", i),
		Series: []float64{float64(i), float64(i) * 0.5, -float64(i)},
		Pages: []PageImage{
			{ID: storage.PageID(2 + i), Data: []byte{byte(i), 1, 2, 3}},
			{ID: storage.PageID(100 + i), Data: make([]byte, 64)},
		},
	}
}

func openTestLog(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile(%s): %v", path, err)
	}
	return l, recs
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, recs := openTestLog(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log returned %d records", len(recs))
	}
	var want []Record
	for i := 0; i < 5; i++ {
		rec := testRecord(i)
		if i == 3 {
			rec = &Record{Op: OpDelete, ID: 3, Pages: []PageImage{{ID: 7, Data: []byte{9}}}}
		}
		if err := l.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want = append(want, *rec)
	}
	if got := l.Pending(); got != 5 {
		t.Fatalf("Pending = %d, want 5", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, got := openTestLog(t, path)
	defer func() { _ = l2.Close() }()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopen returned %+v, want %+v", got, want)
	}
	// LSNs continue past the recovered tail.
	rec := testRecord(9)
	if err := l2.Append(rec); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if rec.LSN != want[len(want)-1].LSN+1 {
		t.Fatalf("post-reopen LSN = %d, want %d", rec.LSN, want[len(want)-1].LSN+1)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, _ := openTestLog(t, path)
	for i := 0; i < 3; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	goodSize := l.Size()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: garbage past the last durable frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{frameRecord, 0xff, 0xff, 0xff, 0x7f, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs := openTestLog(t, path)
	defer func() { _ = l2.Close() }()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3", len(recs))
	}
	if st := l2.Stats(); st.TornBytes != 8 {
		t.Fatalf("TornBytes = %d, want 8", st.TornBytes)
	}
	if l2.Size() != goodSize {
		t.Fatalf("size after truncation = %d, want %d", l2.Size(), goodSize)
	}
}

func TestCheckpointEmptiesLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, _ := openTestLog(t, path)
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := l.Size(); got != int64(len(Magic)) {
		t.Fatalf("size after checkpoint = %d, want %d", got, len(Magic))
	}
	// Records appended after the checkpoint keep ascending LSNs.
	rec := testRecord(1)
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}
	if rec.LSN != 2 {
		t.Fatalf("post-checkpoint LSN = %d, want 2", rec.LSN)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openTestLog(t, path)
	if len(recs) != 1 || recs[0].LSN != 2 {
		t.Fatalf("reopen found %d records (LSNs %v), want the one post-checkpoint record", len(recs), recs)
	}
}

func TestForeignMagicRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL0 trailing"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile accepted a foreign file")
	}
	if _, _, err := ReadPending(path); err == nil {
		t.Fatal("ReadPending accepted a foreign file")
	}
}

func TestReadPendingIsReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, _ := openTestLog(t, path)
	if err := l.Append(testRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail; ReadPending must report it but not repair it.
	if err := os.WriteFile(path+".tmp", nil, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, info, err := ReadPending(path)
	if err != nil {
		t.Fatalf("ReadPending: %v", err)
	}
	if len(recs) != 1 || !info.Present || info.TornBytes != 3 {
		t.Fatalf("ReadPending = %d records, info %+v; want 1 record, 3 torn bytes", len(recs), info)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if before.Size() != after.Size() {
		t.Fatalf("ReadPending changed the file size: %d -> %d", before.Size(), after.Size())
	}
	// A missing file is an empty WAL, not an error.
	recs, info, err = ReadPending(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil || len(recs) != 0 || info.Present {
		t.Fatalf("ReadPending on a missing file: %d recs, %+v, %v", len(recs), info, err)
	}
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, _ := openTestLog(t, path)
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := l.Append(testRecord(w*perWriter + i)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := openTestLog(t, path)
	if len(recs) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(recs), writers*perWriter)
	}
	// Every LSN distinct and ascending in file order.
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("LSNs not ascending: %d then %d", recs[i-1].LSN, recs[i].LSN)
		}
	}
}

// TestFaultSweepAppend injects a crash or torn write at every WAL op of
// a fixed append workload, then reopens: every acknowledged append must
// be recovered, and the recovered set must be a prefix of the workload
// (the op in flight at the fault may or may not have become durable).
func TestFaultSweepAppend(t *testing.T) {
	const appends = 6
	// Baseline: count the ops of a clean run.
	base := filepath.Join(t.TempDir(), "base.wal")
	dev, err := OpenDevice(base)
	if err != nil {
		t.Fatal(err)
	}
	fd := NewFaultDevice(dev, 1)
	l, _, err := Open(fd)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < appends; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	totalOps := fd.Ops()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if totalOps < appends {
		t.Fatalf("baseline ran only %d ops", totalOps)
	}

	for _, kind := range []storage.FaultKind{storage.FaultCrash, storage.FaultTornWrite} {
		for op := int64(1); op <= totalOps; op++ {
			name := fmt.Sprintf("%v-op%d", kind, op)
			path := filepath.Join(t.TempDir(), name+".wal")
			dev, err := OpenDevice(path)
			if err != nil {
				t.Fatal(err)
			}
			fd := NewFaultDevice(dev, op)
			l, _, err := Open(fd)
			if err != nil {
				t.Fatalf("%s: open: %v", name, err)
			}
			fd.FailAt(op, kind)
			acked := 0
			for i := 0; i < appends; i++ {
				if err := l.Append(testRecord(i)); err != nil {
					break
				}
				acked++
			}
			_ = l.Close()

			recs, _, err := ReadPending(path)
			if err != nil {
				t.Fatalf("%s: ReadPending after fault: %v", name, err)
			}
			if len(recs) < acked {
				t.Fatalf("%s: %d acknowledged appends but only %d recovered", name, acked, len(recs))
			}
			if len(recs) > acked+1 {
				t.Fatalf("%s: recovered %d records for %d acked (+1 in flight max)", name, len(recs), acked)
			}
			for i, rec := range recs {
				want := testRecord(i)
				want.LSN = rec.LSN
				if !reflect.DeepEqual(rec, *want) {
					t.Fatalf("%s: recovered record %d diverges", name, i)
				}
			}
		}
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, _ := openTestLog(t, path)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testRecord(0)); !errors.Is(err, errClosed) {
		t.Fatalf("Append after Close = %v, want errClosed", err)
	}
	if err := l.Checkpoint(); !errors.Is(err, errClosed) {
		t.Fatalf("Checkpoint after Close = %v, want errClosed", err)
	}
}
