package wal

import (
	"fmt"
	"math/rand"
	"sync"

	"tsq/internal/storage"
)

// FaultDevice wraps a Device and injects deterministic failures into
// the WAL's own I/O, mirroring storage.FaultBackend for page I/O (same
// kinds, same sentinel errors, same counting discipline) so one sweep
// harness covers both halves of the write path. Write-path operations —
// WriteAt, Sync, Truncate — are counted from 1 in arrival order; ReadAt
// and Size pass through uncounted (they happen during recovery, which
// the sweep drives separately) but are frozen after a crash point like
// everything else.
type FaultDevice struct {
	mu    sync.Mutex
	inner Device
	rng   *rand.Rand
	ops   int64

	failOp  int64
	kind    storage.FaultKind
	crashed bool
}

// NewFaultDevice wraps inner; seed fixes the torn-write prefix lengths.
func NewFaultDevice(inner Device, seed int64) *FaultDevice {
	return &FaultDevice{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// FailAt arms the device to inject kind at the op-th write-path
// operation from now, counting from 1, clearing any crash state and
// resetting the counter (so sweeps re-arm one device).
func (d *FaultDevice) FailAt(op int64, kind storage.FaultKind) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failOp = op
	d.kind = kind
	d.ops = 0
	d.crashed = false
}

// Ops returns the write-path operations served (or failed) since the
// last FailAt.
func (d *FaultDevice) Ops() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// Crashed reports whether a FaultCrash point has fired.
func (d *FaultDevice) Crashed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.crashed
}

// step advances the op counter; caller holds d.mu.
func (d *FaultDevice) step() (storage.FaultKind, error) {
	if d.crashed {
		return storage.FaultNone, storage.ErrCrashed
	}
	d.ops++
	if d.failOp != 0 && d.ops == d.failOp {
		if d.kind == storage.FaultCrash {
			d.crashed = true
			return storage.FaultNone, storage.ErrCrashed
		}
		return d.kind, nil
	}
	return storage.FaultNone, nil
}

// WriteAt implements Device. A torn write applies a random prefix
// before failing — exactly the tail the open-time scan must truncate.
func (d *FaultDevice) WriteAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kind, err := d.step()
	if err != nil {
		return 0, fmt.Errorf("wal: fault: write at %d: %w", off, err)
	}
	switch kind {
	case storage.FaultNone:
		return d.inner.WriteAt(p, off)
	case storage.FaultTornWrite:
		cut := d.rng.Intn(len(p) + 1)
		if cut > 0 {
			if _, werr := d.inner.WriteAt(p[:cut], off); werr != nil {
				return 0, fmt.Errorf("wal: fault: torn write at %d: %w", off, werr)
			}
		}
		return 0, fmt.Errorf("wal: fault: torn write at %d (%d of %d bytes applied): %w",
			off, cut, len(p), storage.ErrInjected)
	default:
		return 0, fmt.Errorf("wal: fault: write at %d: %w", off, storage.ErrInjected)
	}
}

// Sync implements Device (counted: a lost fsync is the canonical
// crash-consistency bug).
func (d *FaultDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	kind, err := d.step()
	if err != nil {
		return fmt.Errorf("wal: fault: sync: %w", err)
	}
	if kind != storage.FaultNone {
		return fmt.Errorf("wal: fault: sync: %w", storage.ErrInjected)
	}
	return d.inner.Sync()
}

// Truncate implements Device (counted: checkpoints truncate).
func (d *FaultDevice) Truncate(size int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	kind, err := d.step()
	if err != nil {
		return fmt.Errorf("wal: fault: truncate to %d: %w", size, err)
	}
	if kind != storage.FaultNone {
		return fmt.Errorf("wal: fault: truncate to %d: %w", size, storage.ErrInjected)
	}
	return d.inner.Truncate(size)
}

// ReadAt implements Device (uncounted; frozen after a crash).
func (d *FaultDevice) ReadAt(p []byte, off int64) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, fmt.Errorf("wal: fault: read at %d: %w", off, storage.ErrCrashed)
	}
	return d.inner.ReadAt(p, off)
}

// Size implements Device (uncounted; frozen after a crash).
func (d *FaultDevice) Size() (int64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.crashed {
		return 0, fmt.Errorf("wal: fault: size: %w", storage.ErrCrashed)
	}
	return d.inner.Size()
}

// Close always reaches the inner device so tests do not leak handles.
func (d *FaultDevice) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Close()
}
