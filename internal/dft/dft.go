// Package dft implements the discrete Fourier transform machinery the
// similarity engine is built on: a unitary DFT/IDFT pair, fast transforms
// for arbitrary lengths (radix-2 Cooley-Tukey plus Bluestein's algorithm),
// circular convolution, signal energy, and helpers for the polar
// (magnitude/phase) representation used by the transformation algebra.
//
// The transform follows the convention of the paper's Eq. (1):
//
//	X_f = 1/sqrt(n) * sum_t x_t * exp(-j*2*pi*t*f/n)
//
// With the 1/sqrt(n) factor the transform is unitary, so Parseval's
// relation holds exactly: E(x) = E(X), and the Euclidean distance between
// two signals is identical in the time and frequency domains (Eq. 8).
package dft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Transform returns the unitary DFT of x. The input is not modified.
// Any length is accepted; powers of two use the radix-2 FFT directly and
// other lengths go through Bluestein's algorithm, so the cost is
// O(n log n) in all cases. Per-length tables (twiddles, permutations,
// chirp kernels) come from the memoized Plan cache, so repeated lengths
// recompute nothing.
func Transform(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	PlanFor(len(x)).TransformInto(out, x)
	return out
}

// Inverse returns the unitary inverse DFT of X.
func Inverse(X []complex128) []complex128 {
	out := make([]complex128, len(X))
	PlanFor(len(X)).InverseInto(out, X)
	return out
}

// TransformReal returns the unitary DFT of a real-valued signal. For
// even power-of-two lengths it uses the packed real-input algorithm — one
// complex FFT of half the length plus an O(n) unpacking pass — which
// roughly halves the work; other lengths fall back to the general path.
func TransformReal(x []float64) []complex128 {
	out := make([]complex128, len(x))
	PlanFor(len(x)).TransformRealInto(out, x)
	return out
}

// InverseReal inverts a spectrum known to come from a real signal and
// returns the real part of the reconstruction. Tiny imaginary residue from
// rounding is discarded.
func InverseReal(X []complex128) []float64 {
	t := Inverse(X)
	out := make([]float64, len(t))
	for i, v := range t {
		out[i] = real(v)
	}
	return out
}

// Energy returns the energy of the signal per the paper's Eq. (2):
// sum of squared magnitudes.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// EnergyReal returns the energy of a real-valued signal.
func EnergyReal(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// Distance returns the Euclidean distance between two equal-length complex
// vectors. By Parseval (Eq. 8) this is the same number whether the vectors
// are time-domain signals or their unitary spectra.
func Distance(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dft: distance of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(s)
}

// Convolve returns the circular convolution of two equal-length real
// signals (the paper's Eq. 3), computed through the frequency domain.
// Because the DFT here is unitary, the convolution-multiplication rule
// picks up a sqrt(n) factor: conv(x,y) <-> sqrt(n) * X.Y. Convolve accounts
// for it and returns the plain time-domain circular convolution.
func Convolve(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dft: convolution of mismatched lengths %d and %d", len(x), len(y)))
	}
	n := len(x)
	X := TransformReal(x)
	Y := TransformReal(y)
	scale := complex(math.Sqrt(float64(n)), 0)
	for i := range X {
		X[i] *= Y[i] * scale
	}
	return InverseReal(X)
}

// ConvolveDirect returns the circular convolution computed by the O(n^2)
// definition. It exists as an oracle for testing Convolve.
func ConvolveDirect(x, y []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < n; k++ {
			s += x[k] * y[((i-k)%n+n)%n]
		}
		out[i] = s
	}
	return out
}

// Polar holds one DFT coefficient in polar form. Phase is in radians in
// (-pi, pi].
type Polar struct {
	Mag   float64
	Phase float64
}

// ToPolar converts a spectrum to its polar representation.
func ToPolar(X []complex128) []Polar {
	out := make([]Polar, len(X))
	for i, v := range X {
		out[i] = Polar{Mag: cmplx.Abs(v), Phase: cmplx.Phase(v)}
	}
	return out
}

// FromPolar converts a polar representation back to complex form.
func FromPolar(p []Polar) []complex128 {
	out := make([]complex128, len(p))
	for i, v := range p {
		out[i] = cmplx.Rect(v.Mag, v.Phase)
	}
	return out
}

// SymmetryHolds reports whether the spectrum satisfies the real-signal
// symmetry property |X_{n-f}| = |X_f| (Eq. 6) within tolerance tol.
func SymmetryHolds(X []complex128, tol float64) bool {
	n := len(X)
	for f := 1; f < n; f++ {
		if math.Abs(cmplx.Abs(X[n-f])-cmplx.Abs(X[f])) > tol {
			return false
		}
	}
	return true
}
