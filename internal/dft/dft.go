// Package dft implements the discrete Fourier transform machinery the
// similarity engine is built on: a unitary DFT/IDFT pair, fast transforms
// for arbitrary lengths (radix-2 Cooley-Tukey plus Bluestein's algorithm),
// circular convolution, signal energy, and helpers for the polar
// (magnitude/phase) representation used by the transformation algebra.
//
// The transform follows the convention of the paper's Eq. (1):
//
//	X_f = 1/sqrt(n) * sum_t x_t * exp(-j*2*pi*t*f/n)
//
// With the 1/sqrt(n) factor the transform is unitary, so Parseval's
// relation holds exactly: E(x) = E(X), and the Euclidean distance between
// two signals is identical in the time and frequency domains (Eq. 8).
package dft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Transform returns the unitary DFT of x. The input is not modified.
// Any length is accepted; powers of two use the radix-2 FFT directly and
// other lengths go through Bluestein's algorithm, so the cost is
// O(n log n) in all cases.
func Transform(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	scale := complex(1/math.Sqrt(float64(len(x))), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// Inverse returns the unitary inverse DFT of X.
func Inverse(X []complex128) []complex128 {
	out := make([]complex128, len(X))
	copy(out, X)
	fftInPlace(out, true)
	scale := complex(1/math.Sqrt(float64(len(X))), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// TransformReal returns the unitary DFT of a real-valued signal. For
// even power-of-two lengths it uses the packed real-input algorithm — one
// complex FFT of half the length plus an O(n) unpacking pass — which
// roughly halves the work; other lengths fall back to the general path.
func TransformReal(x []float64) []complex128 {
	n := len(x)
	if n >= 4 && n%2 == 0 && (n/2)&(n/2-1) == 0 {
		return realFFT(x)
	}
	cx := make([]complex128, n)
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	fftInPlace(cx, false)
	scale := complex(1/math.Sqrt(float64(n)), 0)
	for i := range cx {
		cx[i] *= scale
	}
	return cx
}

// realFFT computes the unitary DFT of a real signal of even power-of-two
// length n by packing even samples into the real parts and odd samples
// into the imaginary parts of a length-n/2 complex signal, running one
// half-length FFT, and disentangling with the split/twiddle identities:
//
//	E_f = (Z_f + conj(Z_{m-f}))/2, O_f = -i*(Z_f - conj(Z_{m-f}))/2
//	X_f = E_f + e^{-2*pi*i*f/n} * O_f, X_{f+m} = E_f - e^{-2*pi*i*f/n} * O_f
func realFFT(x []float64) []complex128 {
	n := len(x)
	m := n / 2
	z := make([]complex128, m)
	for i := 0; i < m; i++ {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	radix2(z, false)
	out := make([]complex128, n)
	scale := complex(1/math.Sqrt(float64(n)), 0)
	step := cmplx.Exp(complex(0, -2*math.Pi/float64(n)))
	w := complex(1, 0)
	for f := 0; f < m; f++ {
		zf := z[f]
		zc := cmplx.Conj(z[(m-f)%m])
		e := (zf + zc) / 2
		o := (zf - zc) / complex(0, 2)
		out[f] = (e + w*o) * scale
		out[f+m] = (e - w*o) * scale
		w *= step
	}
	return out
}

// InverseReal inverts a spectrum known to come from a real signal and
// returns the real part of the reconstruction. Tiny imaginary residue from
// rounding is discarded.
func InverseReal(X []complex128) []float64 {
	t := Inverse(X)
	out := make([]float64, len(t))
	for i, v := range t {
		out[i] = real(v)
	}
	return out
}

// Energy returns the energy of the signal per the paper's Eq. (2):
// sum of squared magnitudes.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// EnergyReal returns the energy of a real-valued signal.
func EnergyReal(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// Distance returns the Euclidean distance between two equal-length complex
// vectors. By Parseval (Eq. 8) this is the same number whether the vectors
// are time-domain signals or their unitary spectra.
func Distance(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("dft: distance of mismatched lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += real(d)*real(d) + imag(d)*imag(d)
	}
	return math.Sqrt(s)
}

// Convolve returns the circular convolution of two equal-length real
// signals (the paper's Eq. 3), computed through the frequency domain.
// Because the DFT here is unitary, the convolution-multiplication rule
// picks up a sqrt(n) factor: conv(x,y) <-> sqrt(n) * X.Y. Convolve accounts
// for it and returns the plain time-domain circular convolution.
func Convolve(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("dft: convolution of mismatched lengths %d and %d", len(x), len(y)))
	}
	n := len(x)
	X := TransformReal(x)
	Y := TransformReal(y)
	scale := complex(math.Sqrt(float64(n)), 0)
	for i := range X {
		X[i] *= Y[i] * scale
	}
	return InverseReal(X)
}

// ConvolveDirect returns the circular convolution computed by the O(n^2)
// definition. It exists as an oracle for testing Convolve.
func ConvolveDirect(x, y []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for k := 0; k < n; k++ {
			s += x[k] * y[((i-k)%n+n)%n]
		}
		out[i] = s
	}
	return out
}

// Polar holds one DFT coefficient in polar form. Phase is in radians in
// (-pi, pi].
type Polar struct {
	Mag   float64
	Phase float64
}

// ToPolar converts a spectrum to its polar representation.
func ToPolar(X []complex128) []Polar {
	out := make([]Polar, len(X))
	for i, v := range X {
		out[i] = Polar{Mag: cmplx.Abs(v), Phase: cmplx.Phase(v)}
	}
	return out
}

// FromPolar converts a polar representation back to complex form.
func FromPolar(p []Polar) []complex128 {
	out := make([]complex128, len(p))
	for i, v := range p {
		out[i] = cmplx.Rect(v.Mag, v.Phase)
	}
	return out
}

// SymmetryHolds reports whether the spectrum satisfies the real-signal
// symmetry property |X_{n-f}| = |X_f| (Eq. 6) within tolerance tol.
func SymmetryHolds(X []complex128, tol float64) bool {
	n := len(X)
	for f := 1; f < n; f++ {
		if math.Abs(cmplx.Abs(X[n-f])-cmplx.Abs(X[f])) > tol {
			return false
		}
	}
	return true
}

// fftInPlace computes an unnormalized DFT (or inverse DFT when inverse is
// true) of x in place.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is the iterative Cooley-Tukey FFT for power-of-two lengths.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
		mask := n >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := cmplx.Exp(complex(0, sign*2*math.Pi/float64(size)))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= step
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length as a convolution of
// power-of-two length (Bluestein's chirp-z algorithm).
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp factors w_k = exp(sign * j*pi*k^2/n).
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for huge n if done in int; use float math mod 2n.
		kk := float64(k) * float64(k)
		angle := sign * math.Pi * math.Mod(kk, 2*float64(n)) / float64(n)
		chirp[k] = cmplx.Exp(complex(0, angle))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	b[0] = cmplx.Conj(chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(chirp[k])
		b[k] = c
		b[m-k] = c
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	invM := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		x[k] = a[k] * invM * chirp[k]
	}
}
