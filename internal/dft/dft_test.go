package dft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func randSignal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	return x
}

func TestTransformKnownValues(t *testing.T) {
	// DFT of a constant signal concentrates all energy in coefficient 0.
	x := []float64{3, 3, 3, 3}
	X := TransformReal(x)
	if got, want := real(X[0]), 6.0; math.Abs(got-want) > tol {
		t.Errorf("X[0] = %v, want %v", got, want)
	}
	for f := 1; f < 4; f++ {
		if cmplx.Abs(X[f]) > tol {
			t.Errorf("X[%d] = %v, want 0", f, X[f])
		}
	}
}

func TestTransformSingleFrequency(t *testing.T) {
	// cos(2*pi*t*2/8) has spikes at coefficients 2 and 6 only.
	n := 8
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(i) * 2 / float64(n))
	}
	X := TransformReal(x)
	for f := 0; f < n; f++ {
		mag := cmplx.Abs(X[f])
		if f == 2 || f == 6 {
			if math.Abs(mag-math.Sqrt(float64(n))/2) > tol {
				t.Errorf("|X[%d]| = %v, want %v", f, mag, math.Sqrt(float64(n))/2)
			}
		} else if mag > tol {
			t.Errorf("|X[%d]| = %v, want 0", f, mag)
		}
	}
}

func TestRoundTripPowerOfTwo(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 64, 128, 1024} {
		x := randSignal(rng, n)
		y := InverseReal(TransformReal(x))
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-8 {
				t.Fatalf("n=%d: roundtrip mismatch at %d: %v vs %v", n, i, x[i], y[i])
			}
		}
	}
}

func TestRoundTripArbitraryLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{3, 5, 6, 7, 12, 100, 127, 129, 365, 1000} {
		x := randSignal(rng, n)
		y := InverseReal(TransformReal(x))
		for i := range x {
			if math.Abs(x[i]-y[i]) > 1e-7 {
				t.Fatalf("n=%d: roundtrip mismatch at %d: %v vs %v", n, i, x[i], y[i])
			}
		}
	}
}

func TestBluesteinMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{3, 5, 7, 11, 13, 31, 97} {
		x := randSignal(rng, n)
		got := TransformReal(x)
		want := naiveDFT(x)
		for f := range got {
			if cmplx.Abs(got[f]-want[f]) > 1e-7 {
				t.Fatalf("n=%d f=%d: %v vs naive %v", n, f, got[f], want[f])
			}
		}
	}
}

func naiveDFT(x []float64) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for f := 0; f < n; f++ {
		var s complex128
		for tt := 0; tt < n; tt++ {
			angle := -2 * math.Pi * float64(tt) * float64(f) / float64(n)
			s += complex(x[tt], 0) * cmplx.Exp(complex(0, angle))
		}
		out[f] = s / complex(math.Sqrt(float64(n)), 0)
	}
	return out
}

func TestParsevalProperty(t *testing.T) {
	// Parseval's relation (Eq. 7): unitary DFT preserves energy.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 1
		x := randSignal(rand.New(rand.NewSource(seed)), n)
		X := TransformReal(x)
		return math.Abs(EnergyReal(x)-Energy(X)) < 1e-6*(1+EnergyReal(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDistancePreservedProperty(t *testing.T) {
	// Eq. 8: Euclidean distance identical in both domains.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 2
		rng := rand.New(rand.NewSource(seed))
		x := randSignal(rng, n)
		y := randSignal(rng, n)
		cx := make([]complex128, n)
		cy := make([]complex128, n)
		for i := range x {
			cx[i], cy[i] = complex(x[i], 0), complex(y[i], 0)
		}
		dt := Distance(cx, cy)
		df := Distance(TransformReal(x), TransformReal(y))
		return math.Abs(dt-df) < 1e-6*(1+dt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	// Eq. 4: DFT(a*x + b*y) = a*X + b*Y.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 64
		x := randSignal(rng, n)
		y := randSignal(rng, n)
		a := rng.NormFloat64()
		b := rng.NormFloat64()
		comb := make([]float64, n)
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		lhs := TransformReal(comb)
		X := TransformReal(x)
		Y := TransformReal(y)
		for f := range lhs {
			rhs := complex(a, 0)*X[f] + complex(b, 0)*Y[f]
			if cmplx.Abs(lhs[f]-rhs) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSymmetryProperty(t *testing.T) {
	// Eq. 6: real signals have |X_{n-f}| = |X_f|.
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 13, 128, 100} {
		x := randSignal(rng, n)
		if !SymmetryHolds(TransformReal(x), 1e-8) {
			t.Errorf("n=%d: symmetry violated for real signal", n)
		}
	}
	// A genuinely complex signal should not satisfy it in general.
	cx := []complex128{1 + 2i, 3 - 1i, 0 + 5i, 2 + 0i, -1 - 1i}
	if SymmetryHolds(Transform(cx), 1e-8) {
		t.Error("symmetry unexpectedly held for a complex signal")
	}
}

func TestConvolutionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{4, 7, 16, 30, 128} {
		x := randSignal(rng, n)
		y := randSignal(rng, n)
		got := Convolve(x, y)
		want := ConvolveDirect(x, y)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d i=%d: %v vs direct %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestConvolutionCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randSignal(rng, 32)
	y := randSignal(rng, 32)
	a := Convolve(x, y)
	b := Convolve(y, x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-8 {
			t.Fatalf("conv not commutative at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPolarRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X := Transform([]complex128{
		complex(rng.NormFloat64(), rng.NormFloat64()),
		complex(rng.NormFloat64(), rng.NormFloat64()),
		complex(rng.NormFloat64(), rng.NormFloat64()),
		complex(rng.NormFloat64(), rng.NormFloat64()),
	})
	back := FromPolar(ToPolar(X))
	for i := range X {
		if cmplx.Abs(X[i]-back[i]) > 1e-12 {
			t.Fatalf("polar roundtrip mismatch at %d", i)
		}
	}
}

func TestDistanceMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched lengths")
		}
	}()
	Distance(make([]complex128, 3), make([]complex128, 4))
}

func TestConvolveMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched lengths")
		}
	}()
	Convolve(make([]float64, 3), make([]float64, 4))
}

func TestEmptyAndSingleton(t *testing.T) {
	if got := TransformReal(nil); len(got) != 0 {
		t.Errorf("empty transform returned %d values", len(got))
	}
	one := TransformReal([]float64{5})
	if len(one) != 1 || math.Abs(real(one[0])-5) > tol {
		t.Errorf("singleton transform = %v, want [5]", one)
	}
}

func BenchmarkTransform128(b *testing.B) {
	x := randSignal(rand.New(rand.NewSource(8)), 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TransformReal(x)
	}
}

func BenchmarkTransform1000Bluestein(b *testing.B) {
	x := randSignal(rand.New(rand.NewSource(9)), 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TransformReal(x)
	}
}

func TestRealFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{4, 8, 16, 64, 128, 256} {
		x := randSignal(rng, n)
		got := TransformReal(x) // real-input fast path
		want := naiveDFT(x)
		for f := range got {
			if cmplx.Abs(got[f]-want[f]) > 1e-7*(1+cmplx.Abs(want[f])) {
				t.Fatalf("n=%d f=%d: %v vs naive %v", n, f, got[f], want[f])
			}
		}
	}
}

func TestRealFFTFallbackLengths(t *testing.T) {
	// Lengths that do not qualify for the packed path still work.
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{2, 3, 6, 10, 12, 100} {
		x := randSignal(rng, n)
		got := TransformReal(x)
		want := naiveDFT(x)
		for f := range got {
			if cmplx.Abs(got[f]-want[f]) > 1e-7*(1+cmplx.Abs(want[f])) {
				t.Fatalf("n=%d f=%d: %v vs naive %v", n, f, got[f], want[f])
			}
		}
	}
}

func BenchmarkTransformReal128(b *testing.B) {
	x := randSignal(rand.New(rand.NewSource(12)), 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TransformReal(x)
	}
}

func BenchmarkTransformComplex128(b *testing.B) {
	x := randSignal(rand.New(rand.NewSource(13)), 128)
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transform(cx)
	}
}
