package heapfile

import (
	"context"
	"encoding/binary"
	"fmt"
)

// Health is a heap file's storage report: record liveness and how much
// of the allocated page space the records actually use. One record per
// page (the paper's "one disk access per retrieved sequence") means
// utilization is bounded by the record size over the page size; low
// utilization with many deleted records signals the heap should be
// rebuilt.
type Health struct {
	Records        int   `json:"records"` // allocated record slots
	Live           int   `json:"live"`
	Deleted        int   `json:"deleted"`
	RecordPages    int   `json:"record_pages"`
	DirectoryPages int   `json:"directory_pages"`
	BytesUsed      int64 `json:"bytes_used"` // live record bytes
	BytesAllocated int64 `json:"bytes_allocated"`
	// Utilization is BytesUsed / BytesAllocated over record pages.
	Utilization float64 `json:"utilization"`
}

// ComputeHealth scans every record page once (header bytes only are
// decoded, so the cost is the page reads — buffered pages count as
// hits) and tallies liveness and space usage. When ctx carries a
// storage.QueryIO the reads are attributed to it.
func (f *File) ComputeHealth(ctx context.Context) (*Health, error) {
	pageSize := f.mgr.PageSize()
	h := &Health{
		Records:        len(f.pages),
		RecordPages:    len(f.pages),
		DirectoryPages: len(f.dirPages),
		BytesAllocated: int64(len(f.pages)) * int64(pageSize),
	}
	buf := make([]byte, pageSize)
	for rec, id := range f.pages {
		if err := f.mgr.ReadCtx(ctx, id, buf); err != nil {
			return nil, err
		}
		switch buf[0] {
		case 'D':
			h.Deleted++
		case 'R':
			h.Live++
			nameLen := int(binary.LittleEndian.Uint16(buf[2:]))
			n := int(binary.LittleEndian.Uint32(buf[4:]))
			sz := recSize(n, nameLen)
			if n != f.n || sz > pageSize {
				return nil, fmt.Errorf("heapfile: record %d header corrupt (n=%d nameLen=%d)", rec, n, nameLen)
			}
			h.BytesUsed += int64(sz)
		default:
			return nil, fmt.Errorf("heapfile: page %d is not a record page", id)
		}
	}
	if h.BytesAllocated > 0 {
		h.Utilization = float64(h.BytesUsed) / float64(h.BytesAllocated)
	}
	return h, nil
}
