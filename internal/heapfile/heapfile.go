// Package heapfile implements the paged record store that holds the full
// database records (name, statistics, raw series, and the polar spectrum
// used by distance verification). One record occupies one page, so
// retrieving a candidate during query postprocessing costs exactly one
// page access — the "find and retrieve all candidate data items"
// accounting of the paper's Eq. 18 — and goes through the same storage
// manager (and optional buffer pool) as the index.
//
// The file keeps a directory of record pages as a chain of directory
// pages, so a heap written to a file-backed manager can be reopened.
package heapfile

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"tsq/internal/storage"
)

// Rec is one stored record.
type Rec struct {
	Name      string
	Mean, Std float64
	Raw       []float64
	Mags      []float64
	Phases    []float64
}

// File is a heap of fixed-length records.
type File struct {
	mgr      *storage.Manager
	n        int              // series length
	dirPages []storage.PageID // directory chain, head first
	pages    []storage.PageID // record pages, record i on pages[i]
	dirDirty bool
}

// Record page layout (little endian):
//
//	offset 0: magic 'R' (1 byte), reserved (1 byte)
//	offset 2: name length (uint16)
//	offset 4: series length n (uint32)
//	offset 8: CRC32 (IEEE) of the page with this field zeroed (uint32)
//	offset 12: reserved (uint32)
//	offset 16: mean, std (2 float64)
//	offset 32: raw[n], mags[n], phases[n] (3n float64)
//	then: name bytes
const recHeaderSize = 32

// recSize returns the encoded size of a record.
func recSize(n, nameLen int) int { return recHeaderSize + 24*n + nameLen }

// MaxSeriesLength returns the longest series a record page can hold given
// a name length budget.
func MaxSeriesLength(pageSize, nameLen int) int {
	return (pageSize - recHeaderSize - nameLen) / 24
}

// Directory page layout:
//
//	offset 0: magic "HDIR" (4 bytes)
//	offset 4: entry count in this page (uint32)
//	offset 8: next directory page (uint32, NilPage terminates)
//	offset 12: record page ids (uint32 each)
var dirMagic = [4]byte{'H', 'D', 'I', 'R'}

const dirHeaderSize = 12

// Create allocates an empty heap on mgr for series of length n.
// Records must fit in one page: 24 bytes of header, 24 bytes per sample
// and the name.
func Create(mgr *storage.Manager, n int) (*File, error) {
	if recSize(n, 0) > mgr.PageSize() {
		return nil, fmt.Errorf("heapfile: series length %d does not fit a %d-byte page", n, mgr.PageSize())
	}
	head, err := mgr.Alloc()
	if err != nil {
		return nil, err
	}
	f := &File{mgr: mgr, n: n, dirPages: []storage.PageID{head}}
	if err := f.writeDirectory(); err != nil {
		return nil, err
	}
	return f, nil
}

// Open loads an existing heap whose directory starts at dirHead.
func Open(mgr *storage.Manager, dirHead storage.PageID, n int) (*File, error) {
	f := &File{mgr: mgr, n: n}
	buf := make([]byte, mgr.PageSize())
	id := dirHead
	perPage := (mgr.PageSize() - dirHeaderSize) / 4
	seen := make(map[storage.PageID]bool)
	for id != storage.NilPage {
		if seen[id] {
			return nil, fmt.Errorf("heapfile: corrupt directory: page %d linked twice (cycle)", id)
		}
		seen[id] = true
		if err := mgr.Read(id, buf); err != nil {
			return nil, fmt.Errorf("heapfile: reading directory page %d: %w", id, err)
		}
		if [4]byte(buf[:4]) != dirMagic {
			return nil, fmt.Errorf("heapfile: bad directory magic on page %d", id)
		}
		f.dirPages = append(f.dirPages, id)
		count := int(binary.LittleEndian.Uint32(buf[4:]))
		if count > perPage {
			return nil, fmt.Errorf("heapfile: corrupt directory page %d: count %d", id, count)
		}
		next := storage.PageID(binary.LittleEndian.Uint32(buf[8:]))
		for i := 0; i < count; i++ {
			rec := storage.PageID(binary.LittleEndian.Uint32(buf[dirHeaderSize+4*i:]))
			if rec == storage.NilPage {
				return nil, fmt.Errorf("heapfile: corrupt directory page %d: entry %d is the nil page", id, i)
			}
			f.pages = append(f.pages, rec)
		}
		id = next
	}
	return f, nil
}

// DirHead returns the first directory page (needed to Open the heap).
func (f *File) DirHead() storage.PageID { return f.dirPages[0] }

// Len returns the number of stored records.
func (f *File) Len() int { return len(f.pages) }

// SeriesLength returns the series length.
func (f *File) SeriesLength() int { return f.n }

// Append stores a record and returns its record number.
func (f *File) Append(r *Rec) (int64, error) {
	if len(r.Raw) != f.n || len(r.Mags) != f.n || len(r.Phases) != f.n {
		return 0, fmt.Errorf("heapfile: record arrays %d/%d/%d, want %d", len(r.Raw), len(r.Mags), len(r.Phases), f.n)
	}
	if recSize(f.n, len(r.Name)) > f.mgr.PageSize() {
		return 0, fmt.Errorf("heapfile: record %q does not fit a page", r.Name)
	}
	id, err := f.mgr.Alloc()
	if err != nil {
		return 0, err
	}
	buf := make([]byte, f.mgr.PageSize())
	buf[0] = 'R'
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(r.Name)))
	binary.LittleEndian.PutUint32(buf[4:], uint32(f.n))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(r.Mean))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(r.Std))
	off := recHeaderSize
	for _, arr := range [][]float64{r.Raw, r.Mags, r.Phases} {
		for _, v := range arr {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	copy(buf[off:], r.Name)
	binary.LittleEndian.PutUint32(buf[8:], crc32.ChecksumIEEE(buf))
	if err := f.mgr.Write(id, buf); err != nil {
		return 0, err
	}
	f.pages = append(f.pages, id)
	f.dirDirty = true
	return int64(len(f.pages) - 1), nil
}

// Read fetches record rec. Each call costs one page access (plus none
// for the in-memory directory). A deleted record returns (nil, nil).
func (f *File) Read(rec int64) (*Rec, error) {
	return f.ReadCtx(nil, rec)
}

// ReadCtx is Read with per-query attribution: when ctx carries a
// storage.QueryIO, the record-page fetch is credited to it — the Eq. 18
// "retrieve" term becomes observable per query. A nil ctx behaves
// exactly like Read.
func (f *File) ReadCtx(ctx context.Context, rec int64) (*Rec, error) {
	if rec < 0 || rec >= int64(len(f.pages)) {
		return nil, fmt.Errorf("heapfile: record %d out of range [0, %d)", rec, len(f.pages))
	}
	buf := make([]byte, f.mgr.PageSize())
	if err := f.mgr.ReadCtx(ctx, f.pages[rec], buf); err != nil {
		return nil, fmt.Errorf("heapfile: reading record %d: %w", rec, err)
	}
	return f.decodeRec(buf, rec)
}

// decodeRec decodes the record page image in buf into a Rec. The CRC
// field is zeroed for the checksum and restored afterwards, so the same
// image can be decoded more than once (duplicate ids in a batch).
func (f *File) decodeRec(buf []byte, rec int64) (*Rec, error) {
	if buf[0] == 'D' {
		return nil, nil // tombstone
	}
	if buf[0] != 'R' {
		return nil, fmt.Errorf("heapfile: page %d is not a record page", f.pages[rec])
	}
	stored := binary.LittleEndian.Uint32(buf[8:])
	binary.LittleEndian.PutUint32(buf[8:], 0)
	sum := crc32.ChecksumIEEE(buf)
	binary.LittleEndian.PutUint32(buf[8:], stored)
	if sum != stored {
		return nil, fmt.Errorf("heapfile: record %d fails its checksum (page %d)", rec, f.pages[rec])
	}
	nameLen := int(binary.LittleEndian.Uint16(buf[2:]))
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if n != f.n {
		return nil, fmt.Errorf("heapfile: record %d has length %d, heap expects %d", rec, n, f.n)
	}
	if recSize(n, nameLen) > len(buf) {
		return nil, fmt.Errorf("heapfile: record %d overflows its page (name length %d)", rec, nameLen)
	}
	out := &Rec{
		Mean:   math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
		Std:    math.Float64frombits(binary.LittleEndian.Uint64(buf[24:])),
		Raw:    make([]float64, n),
		Mags:   make([]float64, n),
		Phases: make([]float64, n),
	}
	off := recHeaderSize
	for _, arr := range [][]float64{out.Raw, out.Mags, out.Phases} {
		for i := range arr {
			arr[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
	}
	out.Name = string(buf[off : off+nameLen])
	return out, nil
}

// FetchBatch fetches the given records, servicing the page I/O in
// ascending page order: the ids are sorted by record page, maximal runs
// of consecutive pages are read with one storage.ReadRunCtx call each
// (one backend access plus readahead on run-capable backends), and each
// page is fetched at most once per call even when ids repeat. The
// result is parallel to ids — out[i] is the record for ids[i], nil if
// tombstoned — so callers keep their own candidate order while the
// underlying I/O happens in file order. Allocation per record is the
// decode itself (the Rec and its arrays); the run buffer and the sort
// order are shared across the whole batch.
func (f *File) FetchBatch(ctx context.Context, ids []int64) ([]*Rec, error) {
	out := make([]*Rec, len(ids))
	for _, rec := range ids {
		if rec < 0 || rec >= int64(len(f.pages)) {
			return nil, fmt.Errorf("heapfile: record %d out of range [0, %d)", rec, len(f.pages))
		}
	}
	order := make([]int32, len(ids))
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := f.pages[ids[order[a]]], f.pages[ids[order[b]]]
		if pa != pb {
			return pa < pb
		}
		return order[a] < order[b]
	})
	ps := f.mgr.PageSize()
	var runBuf []byte
	for start := 0; start < len(order); {
		// Extend the run while page ids stay consecutive (or repeat).
		end, distinct := start+1, 1
		for end < len(order) {
			prev, cur := f.pages[ids[order[end-1]]], f.pages[ids[order[end]]]
			if cur == prev {
				end++
				continue
			}
			if cur == prev+1 {
				end++
				distinct++
				continue
			}
			break
		}
		first := f.pages[ids[order[start]]]
		if need := distinct * ps; cap(runBuf) < need {
			grow := 2 * cap(runBuf)
			if grow < need {
				grow = need
			}
			runBuf = make([]byte, grow)
		}
		buf := runBuf[:distinct*ps]
		if err := f.mgr.ReadRunCtx(ctx, first, distinct, buf); err != nil {
			return nil, fmt.Errorf("heapfile: batch-fetching records: %w", err)
		}
		for j := start; j < end; j++ {
			idx := order[j]
			rec := ids[idx]
			off := int(f.pages[rec]-first) * ps
			r, err := f.decodeRec(buf[off:off+ps], rec)
			if err != nil {
				return nil, err
			}
			out[idx] = r
		}
		start = end
	}
	return out, nil
}

// Delete tombstones record rec: subsequent reads return (nil, nil). The
// page stays allocated so record numbers remain stable.
func (f *File) Delete(rec int64) error {
	if rec < 0 || rec >= int64(len(f.pages)) {
		return fmt.Errorf("heapfile: record %d out of range [0, %d)", rec, len(f.pages))
	}
	buf := make([]byte, f.mgr.PageSize())
	if err := f.mgr.Read(f.pages[rec], buf); err != nil {
		return err
	}
	buf[0] = 'D'
	return f.mgr.Write(f.pages[rec], buf)
}

// MemState is a snapshot of the heap's in-memory bookkeeping, taken
// before a mutation so a failed mutation can be unwound without
// touching the pages it may have written (see RestoreMemState).
type MemState struct {
	pages    int
	dirPages int
	dirDirty bool
}

// MemState snapshots the current bookkeeping.
func (f *File) MemState() MemState {
	return MemState{pages: len(f.pages), dirPages: len(f.dirPages), dirDirty: f.dirDirty}
}

// RestoreMemState rolls the in-memory bookkeeping back to a snapshot
// taken by MemState. It neither rewrites nor frees any page: callers
// pair it with a storage-level rollback (an aborted staged transaction)
// that discards the page writes and returns every page grown during the
// transaction — including the ones dropped here — to the allocator.
func (f *File) RestoreMemState(s MemState) {
	f.pages = f.pages[:s.pages]
	f.dirPages = f.dirPages[:s.dirPages]
	f.dirDirty = s.dirDirty
}

// Unappend removes record rec, which must be the most recent append,
// from the heap and returns its page to the allocator. It is the
// unwind path for a failed insert on an unstaged (in-memory) backend,
// where the appended page is already durable but nothing references it
// yet. The directory is left dirty so the next Sync drops the entry.
func (f *File) Unappend(rec int64) error {
	if rec != int64(len(f.pages))-1 {
		return fmt.Errorf("heapfile: unappend of record %d, last is %d", rec, len(f.pages)-1)
	}
	id := f.pages[rec]
	f.pages = f.pages[:rec]
	f.dirDirty = true
	f.mgr.Free(id)
	return nil
}

// Sync writes the page directory; call after appends when the heap must
// be reopenable.
func (f *File) Sync() error {
	if !f.dirDirty {
		return nil
	}
	if err := f.writeDirectory(); err != nil {
		return err
	}
	f.dirDirty = false
	return nil
}

// writeDirectory rewrites the directory chain from f.pages, extending the
// chain with fresh pages as it grows (the heap is append-only, so the
// chain never shrinks).
func (f *File) writeDirectory() error {
	perPage := (f.mgr.PageSize() - dirHeaderSize) / 4
	buf := make([]byte, f.mgr.PageSize())
	remaining := f.pages
	for slot := 0; ; slot++ {
		count := len(remaining)
		if count > perPage {
			count = perPage
		}
		var next storage.PageID
		if count < len(remaining) {
			if slot+1 < len(f.dirPages) {
				next = f.dirPages[slot+1]
			} else {
				var err error
				next, err = f.mgr.Alloc()
				if err != nil {
					return err
				}
				f.dirPages = append(f.dirPages, next)
			}
		}
		for i := range buf {
			buf[i] = 0
		}
		copy(buf, dirMagic[:])
		binary.LittleEndian.PutUint32(buf[4:], uint32(count))
		binary.LittleEndian.PutUint32(buf[8:], uint32(next))
		for i := 0; i < count; i++ {
			binary.LittleEndian.PutUint32(buf[dirHeaderSize+4*i:], uint32(remaining[i]))
		}
		if err := f.mgr.Write(f.dirPages[slot], buf); err != nil {
			return err
		}
		remaining = remaining[count:]
		if next == storage.NilPage {
			return nil
		}
	}
}
