package heapfile

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"tsq/internal/storage"
)

func randRec(rng *rand.Rand, n int, name string) *Rec {
	mk := func() []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64() * 100
		}
		return out
	}
	return &Rec{
		Name: name,
		Mean: rng.NormFloat64(),
		Std:  rng.Float64() + 0.1,
		Raw:  mk(), Mags: mk(), Phases: mk(),
	}
}

func recsEqual(a, b *Rec) bool {
	if a.Name != b.Name || a.Mean != b.Mean || a.Std != b.Std {
		return false
	}
	for _, pair := range [][2][]float64{{a.Raw, b.Raw}, {a.Mags, b.Mags}, {a.Phases, b.Phases}} {
		if len(pair[0]) != len(pair[1]) {
			return false
		}
		for i := range pair[0] {
			if pair[0][i] != pair[1][i] {
				return false
			}
		}
	}
	return true
}

func TestAppendReadRoundTrip(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 4096})
	f, err := Create(mgr, 128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var want []*Rec
	for i := 0; i < 200; i++ {
		r := randRec(rng, 128, fmt.Sprintf("record-%03d", i))
		rec, err := f.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if rec != int64(i) {
			t.Fatalf("record number %d, want %d", rec, i)
		}
		want = append(want, r)
	}
	if f.Len() != 200 {
		t.Fatalf("Len = %d", f.Len())
	}
	for i, w := range want {
		got, err := f.Read(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !recsEqual(got, w) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestReadCostsOnePage(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 4096})
	f, _ := Create(mgr, 64)
	rng := rand.New(rand.NewSource(2))
	f.Append(randRec(rng, 64, "a"))
	mgr.ResetStats()
	if _, err := f.Read(0); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Stats().Reads; got != 1 {
		t.Errorf("Read cost %d page accesses, want 1", got)
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.db")
	fb, err := storage.NewFileBackend(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	mgr := storage.NewManager(storage.Options{PageSize: 1024, Backend: fb})
	f, err := Create(mgr, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var want []*Rec
	// Enough records to force a multi-page directory (1024-byte pages
	// hold (1024-12)/4 = 253 entries; use 600).
	for i := 0; i < 600; i++ {
		r := randRec(rng, 30, fmt.Sprintf("r%d", i))
		if _, err := f.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	head := f.DirHead()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := storage.NewFileBackend(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := storage.NewManager(storage.Options{PageSize: 1024, Backend: fb2})
	defer mgr2.Close()
	re, err := Open(mgr2, head, 30)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 600 {
		t.Fatalf("reopened Len = %d", re.Len())
	}
	for _, i := range []int64{0, 1, 252, 253, 599} {
		got, err := re.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if !recsEqual(got, want[i]) {
			t.Fatalf("record %d corrupted after reopen", i)
		}
	}
	// The reopened heap can keep appending.
	if _, err := re.Append(randRec(rng, 30, "late")); err != nil {
		t.Fatal(err)
	}
	if err := re.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestSyncIdempotent(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 1024})
	f, _ := Create(mgr, 8)
	rng := rand.New(rand.NewSource(4))
	f.Append(randRec(rng, 8, "x"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	writes := mgr.Stats().Writes
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if mgr.Stats().Writes != writes {
		t.Error("second Sync wrote pages")
	}
}

func TestValidation(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 256})
	if _, err := Create(mgr, 100); err == nil {
		t.Error("oversized series accepted")
	}
	f, err := Create(mgr, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	short := randRec(rng, 4, "short")
	if _, err := f.Append(short); err == nil {
		t.Error("wrong-length record accepted")
	}
	long := randRec(rng, 8, strings.Repeat("n", 300))
	if _, err := f.Append(long); err == nil {
		t.Error("oversized name accepted")
	}
	if _, err := f.Read(0); err == nil {
		t.Error("read of empty heap succeeded")
	}
	if _, err := f.Read(-1); err == nil {
		t.Error("negative record accepted")
	}
}

func TestMaxSeriesLength(t *testing.T) {
	if got := MaxSeriesLength(4096, 0); got != (4096-24)/24 {
		t.Errorf("MaxSeriesLength = %d", got)
	}
	// A record at exactly the bound fits.
	mgr := storage.NewManager(storage.Options{PageSize: 4096})
	n := MaxSeriesLength(4096, 4)
	f, err := Create(mgr, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	if _, err := f.Append(randRec(rng, n, "abcd")); err != nil {
		t.Errorf("bound-sized record rejected: %v", err)
	}
}

func TestSpecialFloatValues(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 1024})
	f, _ := Create(mgr, 4)
	r := &Rec{
		Name:   "special",
		Mean:   math.Inf(1),
		Std:    math.SmallestNonzeroFloat64,
		Raw:    []float64{0, -0.0, math.MaxFloat64, -math.MaxFloat64},
		Mags:   []float64{1, 2, 3, 4},
		Phases: []float64{-math.Pi, math.Pi, 0, 1e-300},
	}
	if _, err := f.Append(r); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.Mean, 1) || got.Raw[2] != math.MaxFloat64 || got.Phases[3] != 1e-300 {
		t.Error("special values corrupted")
	}
}

func TestOpenRejectsNonDirectory(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 512})
	f, err := Create(mgr, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	rec, err := f.Append(randRec(rng, 8, "x"))
	if err != nil {
		t.Fatal(err)
	}
	// Opening with a record page as the directory head must fail loudly.
	recPage := f.pages[rec]
	if _, err := Open(mgr, recPage, 8); err == nil {
		t.Error("record page accepted as directory head")
	}
}

func TestDeleteTombstone(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 512})
	f, _ := Create(mgr, 8)
	rng := rand.New(rand.NewSource(8))
	a, _ := f.Append(randRec(rng, 8, "a"))
	b, _ := f.Append(randRec(rng, 8, "b"))
	if err := f.Delete(a); err != nil {
		t.Fatal(err)
	}
	got, err := f.Read(a)
	if err != nil || got != nil {
		t.Errorf("tombstoned read = %v, %v", got, err)
	}
	live, err := f.Read(b)
	if err != nil || live == nil || live.Name != "b" {
		t.Errorf("live record after delete: %v, %v", live, err)
	}
	if err := f.Delete(99); err == nil {
		t.Error("out-of-range delete accepted")
	}
}
