package heapfile

import (
	"fmt"
	"math/rand"
	"testing"

	"tsq/internal/storage"
)

// TestComputeHealth checks liveness tallies and space accounting
// against a heap with known appends and deletions.
func TestComputeHealth(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 4096})
	f, err := Create(mgr, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	const n = 50
	var wantBytes int64
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%02d", i)
		if _, err := f.Append(randRec(rng, 64, name)); err != nil {
			t.Fatal(err)
		}
		wantBytes += int64(recSize(64, len(name)))
	}
	for _, rec := range []int64{3, 17, 41} {
		name := fmt.Sprintf("s%02d", rec)
		if err := f.Delete(rec); err != nil {
			t.Fatal(err)
		}
		wantBytes -= int64(recSize(64, len(name)))
	}

	h, err := f.ComputeHealth(nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Records != n || h.Live != n-3 || h.Deleted != 3 {
		t.Errorf("liveness = %+v, want records=%d live=%d deleted=3", h, n, n-3)
	}
	if h.RecordPages != n || h.DirectoryPages != len(f.dirPages) {
		t.Errorf("pages = %+v", h)
	}
	if h.BytesUsed != wantBytes {
		t.Errorf("bytes used = %d, want %d", h.BytesUsed, wantBytes)
	}
	if h.BytesAllocated != int64(n)*4096 {
		t.Errorf("bytes allocated = %d", h.BytesAllocated)
	}
	want := float64(wantBytes) / float64(int64(n)*4096)
	if h.Utilization != want {
		t.Errorf("utilization = %v, want %v", h.Utilization, want)
	}
}

// TestComputeHealthEmpty checks the fresh heap.
func TestComputeHealthEmpty(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 1024})
	f, err := Create(mgr, 16)
	if err != nil {
		t.Fatal(err)
	}
	h, err := f.ComputeHealth(nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Records != 0 || h.Live != 0 || h.Utilization != 0 || h.DirectoryPages != 1 {
		t.Errorf("empty heap health = %+v", h)
	}
}
