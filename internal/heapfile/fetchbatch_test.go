package heapfile

import (
	"fmt"
	"math/rand"
	"testing"

	"tsq/internal/storage"
)

func buildHeap(t testing.TB, count, n int) (*storage.Manager, *File) {
	t.Helper()
	mgr := storage.NewManager(storage.Options{PageSize: 1024})
	f, err := Create(mgr, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < count; i++ {
		if _, err := f.Append(randRec(rng, n, fmt.Sprintf("r%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	return mgr, f
}

// TestFetchBatchParity: FetchBatch returns exactly what record-at-a-time
// Read returns, parallel to the requested ids — including duplicates,
// reversed order, and tombstoned records (nil).
func TestFetchBatchParity(t *testing.T) {
	mgr, f := buildHeap(t, 60, 16)
	defer mgr.Close()
	for _, rec := range []int64{3, 17, 44} {
		if err := f.Delete(rec); err != nil {
			t.Fatal(err)
		}
	}
	ids := []int64{59, 3, 0, 17, 17, 58, 1, 44, 0, 30, 29, 28, 31}
	got, err := f.FetchBatch(nil, ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("batch returned %d records for %d ids", len(got), len(ids))
	}
	for i, id := range ids {
		want, err := f.Read(id)
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case want == nil && got[i] == nil:
		case want == nil || got[i] == nil:
			t.Errorf("ids[%d]=%d: batch nil=%v, read nil=%v", i, id, got[i] == nil, want == nil)
		case !recsEqual(got[i], want):
			t.Errorf("ids[%d]=%d: batch record differs from Read", i, id)
		}
	}
	// Empty batch.
	if out, err := f.FetchBatch(nil, nil); err != nil || len(out) != 0 {
		t.Errorf("empty batch: out=%v err=%v", out, err)
	}
}

// TestFetchBatchOutOfRange: any invalid id fails the whole batch before
// any I/O.
func TestFetchBatchOutOfRange(t *testing.T) {
	mgr, f := buildHeap(t, 5, 8)
	defer mgr.Close()
	for _, ids := range [][]int64{{-1}, {5}, {0, 99, 1}} {
		if _, err := f.FetchBatch(nil, ids); err == nil {
			t.Errorf("FetchBatch(%v) succeeded", ids)
		}
	}
}

// TestFetchBatchRunIO: a batch over consecutively appended records is one
// page run — one backend Read, the rest Prefetched — while the same ids
// fetched one at a time cost one Read each.
func TestFetchBatchRunIO(t *testing.T) {
	mgr, f := buildHeap(t, 32, 16)
	defer mgr.Close()
	ids := make([]int64, 32)
	for i := range ids {
		ids[i] = int64(31 - i) // descending: the batch must still sort into one run
	}
	mgr.ResetStats()
	if _, err := f.FetchBatch(nil, ids); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Reads != 1 || st.Prefetched != 31 {
		t.Errorf("batch: reads=%d prefetched=%d, want 1/31", st.Reads, st.Prefetched)
	}
	mgr.ResetStats()
	for _, id := range ids {
		if _, err := f.Read(id); err != nil {
			t.Fatal(err)
		}
	}
	st = mgr.Stats()
	if st.Reads != 32 || st.Prefetched != 0 {
		t.Errorf("record-at-a-time: reads=%d prefetched=%d, want 32/0", st.Reads, st.Prefetched)
	}
}

// TestFetchBatchDuplicatePagesReadOnce: repeated ids do not re-read their
// page within a batch.
func TestFetchBatchDuplicatePagesReadOnce(t *testing.T) {
	mgr, f := buildHeap(t, 4, 8)
	defer mgr.Close()
	mgr.ResetStats()
	out, err := f.FetchBatch(nil, []int64{2, 2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if got := st.Reads + st.Prefetched; got != 1 {
		t.Errorf("4 duplicate ids cost %d page fetches, want 1", got)
	}
	for i := 1; i < len(out); i++ {
		if !recsEqual(out[i], out[0]) {
			t.Errorf("duplicate id decode %d differs from first", i)
		}
	}
}

// TestFetchBatchAllocsPerCandidate pins the allocation contract: growing
// the batch costs only the decode allocations per added record (the Rec,
// its three arrays, and the name — no per-candidate bookkeeping).
func TestFetchBatchAllocsPerCandidate(t *testing.T) {
	mgr, f := buildHeap(t, 128, 16)
	defer mgr.Close()
	idsFor := func(n int) []int64 {
		ids := make([]int64, n)
		for i := range ids {
			ids[i] = int64(i)
		}
		return ids
	}
	measure := func(ids []int64) float64 {
		return testing.AllocsPerRun(20, func() {
			if _, err := f.FetchBatch(nil, ids); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := measure(idsFor(32)), measure(idsFor(128))
	perCandidate := (large - small) / 96
	// Decode allocates the Rec, Raw, Mags, Phases, and the name string: 5.
	if perCandidate > 5.5 {
		t.Errorf("%.2f allocations per candidate, want <= 5.5 (decode only)", perCandidate)
	}
}

// FuzzFetchBatch drives random append/delete/sync interleavings and
// random id multisets (duplicates, boundary ids, arbitrary order) and
// asserts FetchBatch parity with record-at-a-time Read.
func FuzzFetchBatch(f *testing.F) {
	f.Add(int64(1), uint8(20), uint16(8))
	f.Add(int64(7), uint8(1), uint16(32))
	f.Add(int64(99), uint8(200), uint16(64))
	f.Fuzz(func(t *testing.T, seed int64, opCount uint8, idCount uint16) {
		rng := rand.New(rand.NewSource(seed))
		mgr := storage.NewManager(storage.Options{PageSize: 512})
		defer mgr.Close()
		hf, err := Create(mgr, 8)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave appends, deletes, and directory syncs; syncs can
		// allocate directory pages mid-stream, breaking up the
		// otherwise-consecutive record page runs.
		for op := 0; op < int(opCount); op++ {
			switch {
			case hf.Len() == 0 || rng.Intn(3) != 0:
				name := fmt.Sprintf("n%d", op)
				if _, err := hf.Append(randRec(rng, 8, name)); err != nil {
					t.Fatal(err)
				}
			case rng.Intn(2) == 0:
				if err := hf.Delete(int64(rng.Intn(hf.Len()))); err != nil {
					t.Fatal(err)
				}
			default:
				if err := hf.Sync(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if hf.Len() == 0 {
			return
		}
		ids := make([]int64, int(idCount)%128)
		for i := range ids {
			ids[i] = int64(rng.Intn(hf.Len()))
		}
		got, err := hf.FetchBatch(nil, ids)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			want, err := hf.Read(id)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case want == nil && got[i] == nil:
			case want == nil || got[i] == nil:
				t.Fatalf("seed=%d ids[%d]=%d: batch nil=%v, read nil=%v", seed, i, id, got[i] == nil, want == nil)
			case !recsEqual(got[i], want):
				t.Fatalf("seed=%d ids[%d]=%d: batch record differs from Read", seed, i, id)
			}
		}
	})
}
