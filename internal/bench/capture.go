package bench

// Workload-capture sweep: measures the per-query cost of the always-on
// query journal (capture off vs on over the identical seeded workload),
// then replays the resulting file — verbatim and under the FlatLB
// override — to pin the capture→replay round trip and the PR 6 A/B
// (identical answers, shifted tier counters) as recorded benchmark rows.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"tsq"
	"tsq/internal/datagen"
	"tsq/internal/obs"
)

// CaptureRow is one measured point of the capture sweep. The capture/*
// rows report journal overhead; the replay/* rows report the replayed
// run (Replayed, Mismatches, and its per-query lower-bound tier skips —
// the flatlb arm books everything in tier 2).
type CaptureRow struct {
	Name        string // capture/off, capture/on, replay/verbatim, replay/flatlb
	Backend     string // "mem" or "disk"
	Queries     int
	SecPerQuery float64
	// Heap-allocation deltas per query over the first (cold) repetition.
	AllocPerQuery   float64
	MallocsPerQuery float64
	// Replay rows only.
	Replayed   int64
	Mismatches int64
	SkippedLB0 float64
	SkippedLB2 float64
}

// captureArm times the seeded range workload and samples its allocation
// delta, minimum-of-reps like VerifySweep.
func captureArm(db *tsq.DB, cfg Config, ts []tsq.Transform, thr tsq.Threshold, opts tsq.QueryOptions, reps int) (sec float64, res obs.Resources, err error) {
	for rep := 0; rep < reps; rep++ {
		runtime.GC()
		pre := obs.ReadResources()
		s, _, _, rerr := runRange(db, cfg, ts, thr, opts)
		if rerr != nil {
			return 0, res, rerr
		}
		if rep == 0 {
			sec = s
			res = obs.ReadResources().Sub(pre)
			continue
		}
		if s < sec {
			sec = s
		}
	}
	return sec, res, nil
}

// CaptureSweep measures capture overhead and replay determinism on the
// given backend ("mem", or "disk" for a temp page file). It enables the
// process-wide capture writer for its middle arm and disables it again
// before returning.
func CaptureSweep(cfg Config, backend string) ([]CaptureRow, error) {
	cfg = cfg.WithDefaults()
	if backend == "" {
		backend = "mem"
	}
	ss := datagen.StockMarket(cfg.Seed, cfg.StockCount, cfg.Length, datagen.DefaultMarketOptions())
	dir, err := os.MkdirTemp("", "tsq-capture-bench-")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	var db *tsq.DB
	switch backend {
	case "mem":
		db, err = openDB(ss)
	case "disk":
		db, err = tsq.CreateFile(filepath.Join(dir, "bench.tsq"), ss, nil, tsq.Options{PageSize: 4096, BufferPages: 32})
		if err == nil {
			defer func() { _ = db.Close() }()
		}
	default:
		return nil, fmt.Errorf("bench: unknown backend %q", backend)
	}
	if err != nil {
		return nil, err
	}
	ts := tsq.MovingAverages(cfg.Length, 6, 29)
	thr := tsq.Correlation(0.96)
	opts := tsq.QueryOptions{Algorithm: tsq.MTIndex, TransformsPerMBR: 8, PaperQueryRect: cfg.PaperQueryRect}
	const reps = 3
	nq := float64(cfg.Queries)

	offSec, offRes, err := captureArm(db, cfg, ts, thr, opts, reps)
	if err != nil {
		return nil, err
	}
	capPath := filepath.Join(dir, "bench.tscap")
	if _, err := tsq.EnableCapture(capPath, tsq.CaptureOptions{}); err != nil {
		return nil, err
	}
	onSec, onRes, err := captureArm(db, cfg, ts, thr, opts, reps)
	capStats := tsq.CaptureSnapshot()
	if cerr := tsq.DisableCapture(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if capStats.Written != int64(cfg.Queries*reps) {
		return nil, fmt.Errorf("bench: journaled %d of %d queries (dropped %d, last error %q)",
			capStats.Written, cfg.Queries*reps, capStats.Dropped, capStats.LastError)
	}
	rows := []CaptureRow{
		{Name: "capture/off", Backend: backend, Queries: cfg.Queries, SecPerQuery: offSec,
			AllocPerQuery: float64(offRes.AllocBytes) / nq, MallocsPerQuery: float64(offRes.Mallocs) / nq},
		{Name: "capture/on", Backend: backend, Queries: cfg.Queries, SecPerQuery: onSec,
			AllocPerQuery: float64(onRes.AllocBytes) / nq, MallocsPerQuery: float64(onRes.Mallocs) / nq},
	}

	for _, arm := range []struct {
		name     string
		override func(*tsq.QueryOptions)
	}{
		{"replay/verbatim", nil},
		{"replay/flatlb", func(q *tsq.QueryOptions) { q.FlatLB = true }},
	} {
		start := time.Now()
		rep, err := tsq.ReplayFile(context.Background(), db, capPath, tsq.ReplayOptions{Override: arm.override})
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", arm.name, err)
		}
		elapsed := time.Since(start).Seconds()
		if rep.Errors > 0 || rep.Skipped > 0 {
			return nil, fmt.Errorf("bench: %s: %d errors, %d skipped of %d records",
				arm.name, rep.Errors, rep.Skipped, rep.Records)
		}
		rows = append(rows, CaptureRow{
			Name:        arm.name,
			Backend:     backend,
			Queries:     int(rep.Replayed),
			SecPerQuery: elapsed / float64(rep.Replayed),
			Replayed:    rep.Replayed,
			Mismatches:  rep.Mismatches,
			SkippedLB0:  float64(rep.ReplayedTotals.SkippedLB0) / float64(rep.Replayed),
			SkippedLB2:  float64(rep.ReplayedTotals.SkippedLB2) / float64(rep.Replayed),
		})
	}
	return rows, nil
}
