package bench

// Shard sweep: builds the same dataset at several shard counts and
// measures build time and per-query effort of the scatter-gather path
// against the single-tree baseline. The answer set is deterministic and
// shard-layout independent, so the sweep asserts that every shard count
// returns the same output volume before reporting a single number.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tsq"
	"tsq/internal/datagen"
)

// ShardRow is one measured point of the shard sweep.
type ShardRow struct {
	Shards  int
	Backend string // "mem" or "disk"
	// BuildSec is the wall time of partitioning + building all shard
	// trees (and, on disk, committing shard files + manifest).
	BuildSec float64
	// SecPerQuery / PagesPerQuery are means over the seeded MT-index
	// range workload (MV(6..29), 8 per MBR — the verify-sweep workload).
	SecPerQuery   float64
	PagesPerQuery float64
	AvgOutput     float64
}

// ShardSweep builds the stock dataset at each shard count on the given
// backend and runs the seeded range workload against it.
func ShardSweep(cfg Config, backend string, shardCounts []int) ([]ShardRow, error) {
	cfg = cfg.WithDefaults()
	if backend == "" {
		backend = "mem"
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4}
	}
	ss := datagen.StockMarket(cfg.Seed, cfg.StockCount, cfg.Length, datagen.DefaultMarketOptions())
	dir, err := os.MkdirTemp("", "tsq-shard-bench-")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	ts := tsq.MovingAverages(cfg.Length, 6, 29)
	thr := tsq.Correlation(0.96)
	opts := tsq.QueryOptions{Algorithm: tsq.MTIndex, TransformsPerMBR: 8, PaperQueryRect: cfg.PaperQueryRect}

	var rows []ShardRow
	for _, n := range shardCounts {
		if n < 1 {
			return nil, fmt.Errorf("bench: shard count %d", n)
		}
		var db *tsq.DB
		start := time.Now()
		switch backend {
		case "mem":
			db, err = tsq.Open(ss, nil, tsq.Options{PageSize: 1024, Shards: n})
		case "disk":
			db, err = tsq.CreateFile(filepath.Join(dir, fmt.Sprintf("bench%d.tsq", n)), ss, nil,
				tsq.Options{PageSize: 4096, BufferPages: 32, Shards: n})
		default:
			return nil, fmt.Errorf("bench: unknown backend %q", backend)
		}
		buildSec := time.Since(start).Seconds()
		if err != nil {
			return nil, err
		}
		pre := db.DiskStats()
		sec, avgOut, _, err := runRange(db, cfg, ts, thr, opts)
		if err != nil {
			_ = db.Close()
			return nil, err
		}
		post := db.DiskStats()
		if backend == "disk" {
			if err := db.Close(); err != nil {
				return nil, err
			}
		}
		rows = append(rows, ShardRow{
			Shards:        n,
			Backend:       backend,
			BuildSec:      buildSec,
			SecPerQuery:   sec,
			PagesPerQuery: float64((post.Reads-pre.Reads)+(post.Hits-pre.Hits)+(post.Prefetched-pre.Prefetched)) / float64(cfg.Queries),
			AvgOutput:     avgOut,
		})
	}
	// The workload is seeded and the answer set shard-layout
	// independent: any drift in output volume across shard counts is an
	// engine bug, not a measurement.
	for _, r := range rows[1:] {
		if r.AvgOutput != rows[0].AvgOutput {
			return nil, fmt.Errorf("bench: %d shards returned %.2f matches/query, %d shards %.2f — scatter-gather answer drift",
				r.Shards, r.AvgOutput, rows[0].Shards, rows[0].AvgOutput)
		}
	}
	return rows, nil
}
