package bench

import (
	"strings"
	"testing"
)

// Small configurations keep the test suite fast; the full sweeps run via
// cmd/tsbench and the root-level testing.B benchmarks.
func tinyConfig() Config {
	return Config{Queries: 3, Seed: 7, StockCount: 300, Length: 128}
}

func TestFig5ShapeTiny(t *testing.T) {
	rows, err := Fig5(tinyConfig(), []int{200, 600})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SeqScanSec <= 0 || r.STSec <= 0 || r.MTSec <= 0 {
			t.Errorf("non-positive timing in %+v", r)
		}
		if r.MTDiskAccesses >= r.STDiskAccesses {
			t.Errorf("MT accesses %.1f not below ST %.1f", r.MTDiskAccesses, r.STDiskAccesses)
		}
		if r.AvgOutput < 1 {
			t.Errorf("average output %.2f < 1 (self-match must appear)", r.AvgOutput)
		}
	}
	if rows[1].SeqScanSec < rows[0].SeqScanSec {
		t.Logf("note: seqscan did not grow with N on tiny sizes (%.4fs vs %.4fs)", rows[0].SeqScanSec, rows[1].SeqScanSec)
	}
}

func TestFig6ShapeTiny(t *testing.T) {
	rows, err := Fig6(tinyConfig(), []int{4, 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MTDiskAccesses >= r.STDiskAccesses {
			t.Errorf("nt=%d: MT accesses %.1f not below ST %.1f", r.X, r.MTDiskAccesses, r.STDiskAccesses)
		}
	}
	// ST disk accesses grow roughly linearly with |T|; MT's stay flat.
	stGrowth := rows[1].STDiskAccesses / rows[0].STDiskAccesses
	mtGrowth := rows[1].MTDiskAccesses / rows[0].MTDiskAccesses
	if stGrowth < 2 {
		t.Errorf("ST accesses grew only %.2fx from 4 to 16 transforms", stGrowth)
	}
	if mtGrowth > stGrowth {
		t.Errorf("MT accesses grew faster (%.2fx) than ST (%.2fx)", mtGrowth, stGrowth)
	}
	t.Logf("fig6 tiny: %+v", rows)
}

func TestFig7ShapeTiny(t *testing.T) {
	cfg := tinyConfig()
	cfg.StockCount = 150
	rows, err := Fig7(cfg, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SeqScanSec <= 0 || r.MTSec <= 0 {
			t.Errorf("non-positive join timing: %+v", r)
		}
	}
	if rows[1].OutputSize < rows[0].OutputSize {
		t.Errorf("join output shrank with more transforms: %+v", rows)
	}
}

func TestFig8ShapeTiny(t *testing.T) {
	rows, err := Fig8(tinyConfig(), []int{1, 8, 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Pure disk accesses are minimized by the single rectangle (last row)
	// and maximized by singletons (first row).
	if rows[2].DiskAccesses > rows[0].DiskAccesses {
		t.Errorf("all-in-one rectangle cost more accesses than singletons: %+v", rows)
	}
	for _, r := range rows {
		if r.CostFn <= 0 {
			t.Errorf("non-positive cost: %+v", r)
		}
	}
	// The big Eq. 20 win comes from packing: the middle packing beats
	// singletons by a wide margin and is within a few percent of the
	// best. (The strict interior minimum appears at full 1068-stock
	// scale — see EXPERIMENTS.md — but is within noise at this tiny one.)
	if rows[1].CostFn >= rows[0].CostFn {
		t.Errorf("packing did not beat singletons: %+v", rows)
	}
	minCost := rows[0].CostFn
	for _, r := range rows {
		if r.CostFn < minCost {
			minCost = r.CostFn
		}
	}
	if rows[1].CostFn > 1.1*minCost {
		t.Errorf("middle packing %0.f not within 10%% of best %0.f", rows[1].CostFn, minCost)
	}
	t.Logf("fig8 tiny: %+v", rows)
}

func TestFig9TwoClusterBump(t *testing.T) {
	cfg := tinyConfig()
	cfg.StockCount = 1068 // the bump needs a tree deep enough to prune
	rows, err := Fig9(cfg, []int{12, 16, 24, 48})
	if err != nil {
		t.Fatal(err)
	}
	byPer := map[int]MBRRow{}
	for _, r := range rows {
		byPer[r.PerMBR] = r
	}
	// Packing one third (16) of the 48 transformations per rectangle makes
	// the middle rectangle span the inter-cluster gap: disk accesses and
	// the cost function bump above the cluster-aligned 12-per-rectangle
	// packing despite using fewer rectangles. Same for all-in-one (48)
	// versus the cluster-aligned 24.
	// The raw access counts can go either way depending on the query (the
	// spanning packing uses fewer traversals); the robust signal — and
	// what drives the paper's running-time bumps — is the cost function.
	if byPer[16].CostFn <= byPer[12].CostFn {
		t.Errorf("no one-third cost bump: %.1f vs %.1f", byPer[16].CostFn, byPer[12].CostFn)
	}
	// The all-in-one packing also spans the gap; its index accesses are
	// minimal by construction, but the verification work (and hence the
	// cost function and running time) bumps above the cluster-aligned
	// 24-per-rectangle packing.
	if byPer[48].CostFn <= byPer[24].CostFn {
		t.Errorf("no all-in-one cost bump: %.1f vs %.1f", byPer[48].CostFn, byPer[24].CostFn)
	}
	t.Logf("fig9 tiny: %+v", rows)
}

func TestFig3And4Printouts(t *testing.T) {
	f3 := Fig3(128)
	if !strings.Contains(f3, "mult-MBR") || !strings.Contains(f3, "add-MBR") {
		t.Errorf("Fig3 output missing MBR summary:\n%s", f3)
	}
	// The phase offsets of MV(1..40) at f=1 lie in (-1, 0].
	if !strings.Contains(f3, "phase multiplier = 1") {
		t.Error("Fig3 missing the horizontal-line observation")
	}
	f4 := Fig4(128)
	if !strings.Contains(f4, "transformed rectangle") {
		t.Errorf("Fig4 output malformed:\n%s", f4)
	}
}
