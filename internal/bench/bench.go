// Package bench regenerates every figure of the paper's evaluation
// (Sec. 5): running time of the three range-query algorithms as the
// number of sequences grows (Fig. 5) and as the number of transformations
// grows (Fig. 6), the spatial join (Fig. 7), and the
// transformations-per-rectangle sweeps with measured disk accesses and
// the Eq. 20 cost function (Figs. 8 and 9). Figs. 3 and 4 are worked
// illustrations of the MBR decomposition and are printed as values.
//
// Timings are wall-clock averages over Config.Queries random query
// sequences drawn from the data set, the paper's methodology (it used
// 100 repetitions). Absolute numbers reflect this machine, not the
// paper's 168 MHz UltraSPARC; the comparisons of interest are the
// relative ones, plus the machine-independent disk-access counts.
package bench

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"tsq"
	"tsq/internal/datagen"
	"tsq/internal/obs"
	"tsq/internal/series"
	"tsq/internal/storage"
)

// Config controls the harness.
type Config struct {
	// Queries is the number of random query repetitions per point
	// (the paper uses 100).
	Queries int
	// Seed makes data and query choices reproducible.
	Seed int64
	// StockCount is the size of the synthetic stock data set standing in
	// for the paper's 1068 stocks.
	StockCount int
	// Length is the series length (the paper uses 128).
	Length int
	// PaperQueryRect switches the index filter to the paper's plain
	// eps-box (see tsq.QueryOptions).
	PaperQueryRect bool
}

// WithDefaults fills unset fields with the paper's values (except
// Queries, which defaults to 20 to keep full runs affordable).
func (c Config) WithDefaults() Config {
	if c.Queries == 0 {
		c.Queries = 20
	}
	if c.Seed == 0 {
		c.Seed = 1999
	}
	if c.StockCount == 0 {
		c.StockCount = 1068
	}
	if c.Length == 0 {
		c.Length = 128
	}
	return c
}

// openDB indexes a series list with the paper's index configuration,
// except for 1 KiB pages: the paper's Beckmann R*-tree held fewer entries
// per node than a 4 KiB page fits, and the multi-rectangle effects of
// Figs. 8/9 need a tree deep enough for tight rectangles to prune.
func openDB(ss []series.Series) (*tsq.DB, error) {
	return tsq.Open(ss, nil, tsq.Options{PageSize: 1024})
}

// runRange runs one algorithm over cfg.Queries random query records and
// returns mean seconds per query, mean output size, and summed stats.
func runRange(db *tsq.DB, cfg Config, ts []tsq.Transform, thr tsq.Threshold, opts tsq.QueryOptions) (secs, avgOut float64, stats tsq.Stats, err error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	var totalOut int
	start := time.Now()
	for i := 0; i < cfg.Queries; i++ {
		id := int64(rng.Intn(db.Len()))
		matches, st, err := db.RangeByID(id, ts, thr, opts)
		if err != nil {
			return 0, 0, stats, err
		}
		totalOut += len(matches)
		stats.Add(st)
	}
	elapsed := time.Since(start).Seconds()
	return elapsed / float64(cfg.Queries), float64(totalOut) / float64(cfg.Queries), stats, nil
}

// RangeRow is one point of a Fig. 5/6-style sweep.
type RangeRow struct {
	X          int // sequences (Fig. 5) or transformations (Fig. 6)
	SeqScanSec float64
	STSec      float64
	MTSec      float64
	AvgOutput  float64
	// Disk accesses per query for the two index algorithms, in the
	// paper's Eq. 18 accounting: index node fetches plus candidate record
	// retrievals.
	STDiskAccesses float64
	MTDiskAccesses float64
}

// Fig5 regenerates Figure 5: time per range query (Query 1) varying the
// number of synthetic sequences, with 16 moving averages (10..25-day).
func Fig5(cfg Config, counts []int) ([]RangeRow, error) {
	cfg = cfg.WithDefaults()
	if counts == nil {
		counts = []int{500, 1000, 2000, 4000, 8000, 12000}
	}
	thr := tsq.Correlation(0.96)
	var rows []RangeRow
	for _, count := range counts {
		ss := datagen.RandomWalks(cfg.Seed, count, cfg.Length)
		db, err := openDB(ss)
		if err != nil {
			return nil, err
		}
		ts := tsq.MovingAverages(cfg.Length, 10, 25)
		row, err := rangePoint(db, cfg, ts, thr, count)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig6 regenerates Figure 6: time per range query over the stock data set
// varying the number of transformations (m-day moving averages starting
// at 5 days).
func Fig6(cfg Config, numTransforms []int) ([]RangeRow, error) {
	cfg = cfg.WithDefaults()
	if numTransforms == nil {
		numTransforms = []int{1, 5, 10, 15, 20, 25, 30}
	}
	ss := datagen.StockMarket(cfg.Seed, cfg.StockCount, cfg.Length, datagen.DefaultMarketOptions())
	db, err := openDB(ss)
	if err != nil {
		return nil, err
	}
	thr := tsq.Correlation(0.96)
	var rows []RangeRow
	for _, nt := range numTransforms {
		ts := tsq.MovingAverages(cfg.Length, 5, 5+nt-1)
		row, err := rangePoint(db, cfg, ts, thr, nt)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func rangePoint(db *tsq.DB, cfg Config, ts []tsq.Transform, thr tsq.Threshold, x int) (RangeRow, error) {
	// NaiveVerify: the figures replicate the paper's Eq. 18 accounting,
	// which retrieves and compares every candidate; the I/O-aware
	// pipeline (which skips and abandons some) is measured by
	// VerifySweep instead.
	base := tsq.QueryOptions{PaperQueryRect: cfg.PaperQueryRect, NaiveVerify: true}
	seqOpts := base
	seqOpts.Algorithm = tsq.SeqScan
	stOpts := base
	stOpts.Algorithm = tsq.STIndex
	mtOpts := base
	mtOpts.Algorithm = tsq.MTIndex

	seqSec, avgOut, _, err := runRange(db, cfg, ts, thr, seqOpts)
	if err != nil {
		return RangeRow{}, err
	}
	stSec, _, stStats, err := runRange(db, cfg, ts, thr, stOpts)
	if err != nil {
		return RangeRow{}, err
	}
	mtSec, _, mtStats, err := runRange(db, cfg, ts, thr, mtOpts)
	if err != nil {
		return RangeRow{}, err
	}
	return RangeRow{
		X:              x,
		SeqScanSec:     seqSec,
		STSec:          stSec,
		MTSec:          mtSec,
		AvgOutput:      avgOut,
		STDiskAccesses: float64(stStats.DAAll+stStats.Candidates) / float64(cfg.Queries),
		MTDiskAccesses: float64(mtStats.DAAll+mtStats.Candidates) / float64(cfg.Queries),
	}, nil
}

// JoinRow is one point of the Fig. 7 sweep.
type JoinRow struct {
	NumTransforms int
	SeqScanSec    float64
	STSec         float64
	MTSec         float64
	OutputSize    int
}

// Fig7 regenerates Figure 7: time of the spatial join (Query 2, pairs
// with correlation >= 0.99 under some moving average) varying the number
// of transformations. Join queries run once per point (they are
// deterministic), matching the paper's single-workload measurement.
func Fig7(cfg Config, numTransforms []int) ([]JoinRow, error) {
	cfg = cfg.WithDefaults()
	if numTransforms == nil {
		numTransforms = []int{1, 5, 10, 15, 20, 25, 30}
	}
	ss := datagen.StockMarket(cfg.Seed, cfg.StockCount, cfg.Length, datagen.DefaultMarketOptions())
	db, err := openDB(ss)
	if err != nil {
		return nil, err
	}
	thr := tsq.Correlation(0.99)
	base := tsq.QueryOptions{PaperQueryRect: cfg.PaperQueryRect, NaiveVerify: true}
	var rows []JoinRow
	for _, nt := range numTransforms {
		ts := tsq.MovingAverages(cfg.Length, 5, 5+nt-1)
		row := JoinRow{NumTransforms: nt}

		opts := base
		opts.Algorithm = tsq.SeqScan
		start := time.Now()
		out, _, err := db.Join(ts, thr, opts)
		if err != nil {
			return nil, err
		}
		row.SeqScanSec = time.Since(start).Seconds()
		row.OutputSize = len(out)

		opts.Algorithm = tsq.STIndex
		start = time.Now()
		if _, _, err := db.Join(ts, thr, opts); err != nil {
			return nil, err
		}
		row.STSec = time.Since(start).Seconds()

		opts.Algorithm = tsq.MTIndex
		start = time.Now()
		if _, _, err := db.Join(ts, thr, opts); err != nil {
			return nil, err
		}
		row.MTSec = time.Since(start).Seconds()

		rows = append(rows, row)
	}
	return rows, nil
}

// MBRRow is one point of the Fig. 8/9 sweeps.
type MBRRow struct {
	PerMBR       int
	Sec          float64
	DiskAccesses float64
	CostFn       float64
}

// Fig8 regenerates Figure 8: MT-index running time, pure disk accesses,
// and the Eq. 20 cost function (CDA=1, Ccmp=0.4*CDA) as the number of
// transformations per MBR varies, over the 24 moving averages 6..29-day.
func Fig8(cfg Config, perMBRs []int) ([]MBRRow, error) {
	cfg = cfg.WithDefaults()
	ts := func(n int) []tsq.Transform { return tsq.MovingAverages(n, 6, 29) }
	if perMBRs == nil {
		perMBRs = []int{1, 2, 3, 4, 6, 8, 12, 16, 20, 24}
	}
	return mbrSweep(cfg, ts, perMBRs)
}

// Fig9 regenerates Figure 9: the same sweep after adding the inverted
// version of every transformation (two clusters, 48 transformations);
// the running time and disk accesses bump when a rectangle spans the
// inter-cluster gap (at one third and at all-in-one packings).
func Fig9(cfg Config, perMBRs []int) ([]MBRRow, error) {
	cfg = cfg.WithDefaults()
	ts := func(n int) []tsq.Transform {
		return tsq.WithInverted(tsq.MovingAverages(n, 6, 29))
	}
	if perMBRs == nil {
		perMBRs = []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48}
	}
	return mbrSweep(cfg, ts, perMBRs)
}

func mbrSweep(cfg Config, makeTs func(n int) []tsq.Transform, perMBRs []int) ([]MBRRow, error) {
	ss := datagen.StockMarket(cfg.Seed, cfg.StockCount, cfg.Length, datagen.DefaultMarketOptions())
	db, err := openDB(ss)
	if err != nil {
		return nil, err
	}
	ts := makeTs(cfg.Length)
	thr := tsq.Correlation(0.96)
	var rows []MBRRow
	for _, per := range perMBRs {
		opts := tsq.QueryOptions{
			Algorithm:        tsq.MTIndex,
			TransformsPerMBR: per,
			PaperQueryRect:   cfg.PaperQueryRect,
			NaiveVerify:      true, // Eq. 18/20 cost model, see rangePoint
		}
		sec, _, stats, err := runRange(db, cfg, ts, thr, opts)
		if err != nil {
			return nil, err
		}
		// Eq. 18/20 accounting: disk accesses include candidate record
		// retrievals ("find and retrieve all candidate data items");
		// CDA=1, Ccmp=0.4, comparisons measured directly.
		da := float64(stats.DAAll+stats.Candidates) / float64(cfg.Queries)
		cost := da + 0.4*float64(stats.Comparisons)/float64(cfg.Queries)
		rows = append(rows, MBRRow{
			PerMBR:       per,
			Sec:          sec,
			DiskAccesses: da,
			CostFn:       cost,
		})
	}
	return rows, nil
}

// Fig3 returns the printable reproduction of Figure 3: the second-DFT-
// coefficient parameters of the MV(1..40) transformations and their
// mult-MBR / add-MBR decomposition.
func Fig3(length int) string {
	if length == 0 {
		length = 128
	}
	ts := tsq.MovingAverages(length, 1, 40)
	out := "m-day moving averages MV(1..40), second DFT coefficient (f=1):\n"
	out += fmt.Sprintf("%4s  %12s  %12s  %12s  %12s\n", "m", "a(mag)", "b(mag)", "a(phase)", "b(phase)")
	magLo, magHi := ts[0].A[2], ts[0].A[2]
	phLo, phHi := ts[0].B[3], ts[0].B[3]
	for i, t := range ts {
		out += fmt.Sprintf("%4d  %12.6f  %12.6f  %12.6f  %12.6f\n", i+1, t.A[2], t.B[2], t.A[3], t.B[3])
		if t.A[2] < magLo {
			magLo = t.A[2]
		}
		if t.A[2] > magHi {
			magHi = t.A[2]
		}
		if t.B[3] < phLo {
			phLo = t.B[3]
		}
		if t.B[3] > phHi {
			phHi = t.B[3]
		}
	}
	out += fmt.Sprintf("\nmult-MBR at f=1: mag in [%.4f, %.4f], phase multiplier = 1 (the horizontal line at 1)\n", magLo, magHi)
	out += fmt.Sprintf("add-MBR  at f=1: mag offset = 0 (the vertical line at 0), phase in [%.4f, %.4f]\n", phLo, phHi)
	return out
}

// Fig4 returns the printable reproduction of Figure 4: a data rectangle
// before and after the MV(1..40) transformation rectangle is applied
// (Eq. 12).
func Fig4(length int) string {
	if length == 0 {
		length = 128
	}
	ts := tsq.MovingAverages(length, 1, 40)
	// Recreate the figure's data rectangle in (|F2|, angle(F2)) space.
	magLo, magHi := 3.0, 7.0
	phLo, phHi := 1.0, 3.0
	aLo, aHi := ts[0].A[2], ts[0].A[2]
	bLo, bHi := ts[0].B[3], ts[0].B[3]
	for _, t := range ts {
		if t.A[2] < aLo {
			aLo = t.A[2]
		}
		if t.A[2] > aHi {
			aHi = t.A[2]
		}
		if t.B[3] < bLo {
			bLo = t.B[3]
		}
		if t.B[3] > bHi {
			bHi = t.B[3]
		}
	}
	outMagLo := aLo * magLo
	outMagHi := aHi * magHi
	outPhLo := phLo + bLo
	outPhHi := phHi + bHi
	return fmt.Sprintf(
		"data rectangle:        |F2| in [%g, %g], angle(F2) in [%g, %g]\n"+
			"transformation MBR:    mult mag [%.4f, %.4f], add phase [%.4f, %.4f]\n"+
			"transformed rectangle: |F2| in [%.4f, %.4f], angle(F2) in [%.4f, %.4f]\n"+
			"(Eq. 12: lower mag %.4f*%g, upper mag %.4f*%g; phases shifted by the add interval)\n",
		magLo, magHi, phLo, phHi,
		aLo, aHi, bLo, bHi,
		outMagLo, outMagHi, outPhLo, outPhHi,
		aLo, magLo, aHi, magHi)
}

// ThroughputRow is one point of the concurrent-throughput sweep: the
// Fig. 5 workload (synthetic walks, 16 moving averages, correlation
// 0.96) driven through the batch executor at a fixed worker-pool size.
type ThroughputRow struct {
	Workers       int
	Queries       int
	QueriesPerSec float64
	SecPerQuery   float64
	// DiskPerQuery is the Eq. 18 accounting (index node fetches plus
	// candidate retrievals) per query; identical at every worker count.
	DiskPerQuery float64
	// AllocPerQuery/MallocsPerQuery are the process heap-allocation
	// deltas over the batch divided by its query count — bytes and
	// objects the execution layer costs per query at this worker count.
	AllocPerQuery   float64
	MallocsPerQuery float64
}

// Throughput measures batch query throughput over the Fig. 5 workload at
// each of the given worker counts (default 1, 4, GOMAXPROCS). count is
// the dataset size (default 8000) and queries the batch size (default
// 256). Every query runs the MT-index algorithm; answers and per-query
// disk-access counts are identical across worker counts, so the sweep
// isolates the scaling of the execution layer.
func Throughput(cfg Config, count, queries int, workerCounts []int) ([]ThroughputRow, error) {
	cfg = cfg.WithDefaults()
	if count == 0 {
		count = 8000
	}
	if queries == 0 {
		queries = 256
	}
	if workerCounts == nil {
		workerCounts = DefaultWorkerCounts()
	}
	ss := datagen.RandomWalks(cfg.Seed, count, cfg.Length)
	db, err := openDB(ss)
	if err != nil {
		return nil, err
	}
	ts := tsq.MovingAverages(cfg.Length, 10, 25)
	thr := tsq.Correlation(0.96)
	opts := tsq.QueryOptions{NaiveVerify: true} // Eq. 18 accounting, see rangePoint
	if cfg.PaperQueryRect {
		opts.PaperQueryRect = true
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	reqs := make([]tsq.BatchRequest, queries)
	for i := range reqs {
		reqs[i] = tsq.BatchRequest{
			ID: int64(rng.Intn(db.Len())), ByID: true,
			Transforms: ts, Threshold: thr, Opts: opts,
		}
	}
	// One warm-up batch so plan caches and the page map are hot for
	// every worker count alike.
	for _, res := range db.Batch(context.Background(), reqs[:min(16, len(reqs))], 1) {
		if res.Err != nil {
			return nil, res.Err
		}
	}
	rows := make([]ThroughputRow, 0, len(workerCounts))
	for _, workers := range workerCounts {
		pre := obs.ReadResources()
		start := time.Now()
		results := db.Batch(context.Background(), reqs, workers)
		elapsed := time.Since(start).Seconds()
		res := obs.ReadResources().Sub(pre)
		var stats tsq.Stats
		for _, r := range results {
			if r.Err != nil {
				return nil, r.Err
			}
			stats.Add(r.Stats)
		}
		rows = append(rows, ThroughputRow{
			Workers:         workers,
			Queries:         queries,
			QueriesPerSec:   float64(queries) / elapsed,
			SecPerQuery:     elapsed / float64(queries),
			DiskPerQuery:    float64(stats.DAAll+stats.Candidates) / float64(queries),
			AllocPerQuery:   float64(res.AllocBytes) / float64(queries),
			MallocsPerQuery: float64(res.Mallocs) / float64(queries),
		})
	}
	return rows, nil
}

// VerifyRow is one arm of the I/O-aware verification A/B: the same
// MT-index range workload evaluated with the naive record-at-a-time
// verifier (the paper's cost-model baseline), the flat single-tier
// lower bound (the pre-cascade pipeline, kept behind QueryOptions.FlatLB),
// or the full pipeline (tiered lower-bound cascade, page-ordered batched
// fetch, early abandoning).
type VerifyRow struct {
	Mode        string // "naive", "flat" or "pipeline"
	Backend     string // "mem" or "disk"
	Queries     int
	SecPerQuery float64
	AvgOutput   float64
	// Per-query verification effort.
	Candidates  float64 // records actually retrieved and verified
	SkippedLB   float64 // candidates rejected by the lower bound, never fetched
	SkippedLB0  float64 // ... decided by the cos-free magnitude-gap tier
	SkippedLB1  float64 // ... decided by the first-coefficient tier
	SkippedLB2  float64 // ... decided by the full DFT-prefix tier
	Abandoned   float64 // distance evaluations cut short by the eps cutoff
	Comparisons float64
	// NsPerCandidate is the verification phase's wall time divided by the
	// candidates it inspected (skipped + verified): the sum of the traced
	// KindVerify span durations over candidates + skipped. It isolates
	// the per-candidate CPU cost of the verification hot path from the
	// R-tree filter, which is identical across modes. The phase includes
	// the exact-distance evaluation of the survivors, which the answer
	// contract fixes bit-identically across modes, so mode-to-mode
	// deltas here understate the pruning-stage win; LBNsPerCandidate is
	// the isolated metric.
	NsPerCandidate float64
	// LBNsPerCandidate is the lower-bound stage's time (Stats.LBTimeNs:
	// the skip-or-fetch decision loop, including cascade construction)
	// per inspected candidate — the cost the tiered cascade attacks.
	// Zero in naive mode, which runs no lower bound.
	LBNsPerCandidate float64
	// Per-query page traffic of the index's storage manager.
	PagesRead  float64 // backend reads (one per ordered run with readahead)
	Prefetched float64 // pages delivered by the tail of a batched run read
	BufferHits float64
	// AllocPerQuery/MallocsPerQuery are the process heap-allocation
	// deltas over the first (cold) repetition divided by the query
	// count — the memory cost each verification mode charges per query.
	AllocPerQuery   float64
	MallocsPerQuery float64
}

// runRangeVerify is runRange with a trace attached to every query: it
// additionally returns the summed duration of the KindVerify spans —
// the verification phase alone — for the NsPerCandidate accounting.
func runRangeVerify(db *tsq.DB, cfg Config, ts []tsq.Transform, thr tsq.Threshold, opts tsq.QueryOptions) (secs, avgOut float64, stats tsq.Stats, verifyNs float64, err error) {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	var totalOut int
	start := time.Now()
	for i := 0; i < cfg.Queries; i++ {
		id := int64(rng.Intn(db.Len()))
		tr := tsq.NewTrace()
		ctx := tsq.WithTrace(context.Background(), tr)
		matches, st, qerr := db.RangeByIDCtx(ctx, id, ts, thr, opts)
		if qerr != nil {
			return 0, 0, stats, 0, qerr
		}
		for _, sp := range tr.Spans() {
			if sp.Kind() == obs.KindVerify {
				verifyNs += float64(sp.Duration().Nanoseconds())
			}
		}
		totalOut += len(matches)
		stats.Add(st)
	}
	elapsed := time.Since(start).Seconds()
	return elapsed / float64(cfg.Queries), float64(totalOut) / float64(cfg.Queries), stats, verifyNs, nil
}

// VerifySweep measures both verification modes over the stock data set
// on the given backend ("mem", or "disk" for a temp page file that
// exercises the heap-file fetch path). Matches are identical across
// modes; the sweep isolates I/O and comparison savings.
func VerifySweep(cfg Config, backend string) ([]VerifyRow, error) {
	cfg = cfg.WithDefaults()
	if backend == "" {
		backend = "mem"
	}
	ss := datagen.StockMarket(cfg.Seed, cfg.StockCount, cfg.Length, datagen.DefaultMarketOptions())
	var db *tsq.DB
	var err error
	var cleanup func()
	switch backend {
	case "mem":
		db, err = openDB(ss)
	case "disk":
		// 4 KiB pages so a full record fits in one heap page, and a small
		// buffer pool so candidate fetches actually reach the backend.
		dir, derr := os.MkdirTemp("", "tsq-bench-")
		if derr != nil {
			return nil, derr
		}
		path := filepath.Join(dir, "bench.tsq")
		db, err = tsq.CreateFile(path, ss, nil, tsq.Options{PageSize: 4096, BufferPages: 32})
		cleanup = func() {
			_ = db.Close()
			_ = os.RemoveAll(dir)
		}
	default:
		return nil, fmt.Errorf("bench: unknown backend %q", backend)
	}
	if err != nil {
		if cleanup != nil {
			cleanup()
		}
		return nil, err
	}
	if cleanup != nil {
		defer cleanup()
	}
	ts := tsq.MovingAverages(cfg.Length, 6, 29)
	thr := tsq.Correlation(0.96)
	var rows []VerifyRow
	for _, mode := range []string{"naive", "flat", "pipeline"} {
		opts := tsq.QueryOptions{
			Algorithm:        tsq.MTIndex,
			TransformsPerMBR: 8,
			PaperQueryRect:   cfg.PaperQueryRect,
			NaiveVerify:      mode == "naive",
			FlatLB:           mode == "flat",
		}
		// Timing metrics are the minimum over a few repetitions: the
		// query sequence is seeded, so every rep inspects the identical
		// candidate population (the counters cannot differ) and the
		// minimum discards reps a GC pause or scheduler hiccup landed
		// in. Disk statistics come from the first rep only — later reps
		// hit a warm buffer pool.
		const reps = 3
		var sec, avgOut, verifyNs float64
		var stats tsq.Stats
		var disk storage.Stats
		var res obs.Resources
		for rep := 0; rep < reps; rep++ {
			runtime.GC()
			db.ResetDiskStats()
			pre := obs.ReadResources()
			s, a, st, vns, err := runRangeVerify(db, cfg, ts, thr, opts)
			if err != nil {
				return nil, err
			}
			if rep == 0 {
				disk = db.DiskStats()
				res = obs.ReadResources().Sub(pre)
				sec, avgOut, stats, verifyNs = s, a, st, vns
				continue
			}
			avgOut = a
			if s < sec {
				sec = s
			}
			if vns < verifyNs {
				verifyNs = vns
			}
			if st.LBTimeNs < stats.LBTimeNs {
				stats.LBTimeNs = st.LBTimeNs
			}
		}
		nq := float64(cfg.Queries)
		// The naive verifier fetches and verifies every candidate; the
		// pipelines inspect the same population but skip most of it at
		// the lower bound. Either way the per-candidate denominator is
		// the inspected population.
		inspected := float64(stats.Candidates + stats.SkippedLB)
		var nsPerCand, lbNsPerCand float64
		if inspected > 0 {
			nsPerCand = verifyNs / inspected
			lbNsPerCand = float64(stats.LBTimeNs) / inspected
		}
		rows = append(rows, VerifyRow{
			Mode:             mode,
			Backend:          backend,
			Queries:          cfg.Queries,
			SecPerQuery:      sec,
			AvgOutput:        avgOut,
			Candidates:       float64(stats.Candidates) / nq,
			SkippedLB:        float64(stats.SkippedLB) / nq,
			SkippedLB0:       float64(stats.SkippedLB0) / nq,
			SkippedLB1:       float64(stats.SkippedLB1) / nq,
			SkippedLB2:       float64(stats.SkippedLB2) / nq,
			Abandoned:        float64(stats.Abandoned) / nq,
			Comparisons:      float64(stats.Comparisons) / nq,
			NsPerCandidate:   nsPerCand,
			LBNsPerCandidate: lbNsPerCand,
			PagesRead:        float64(disk.Reads) / nq,
			Prefetched:       float64(disk.Prefetched) / nq,
			BufferHits:       float64(disk.Hits) / nq,
			AllocPerQuery:    float64(res.AllocBytes) / nq,
			MallocsPerQuery:  float64(res.Mallocs) / nq,
		})
	}
	return rows, nil
}

// DefaultWorkerCounts returns the sweep 1, 4, GOMAXPROCS (deduplicated,
// ascending).
func DefaultWorkerCounts() []int {
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	sort.Ints(counts)
	out := counts[:1]
	for _, c := range counts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}
