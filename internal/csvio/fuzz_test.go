package csvio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the reader and that
// anything it accepts survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("a,1,2\nb,3,4\n")
	f.Add("x,1\n")
	f.Add("")
	f.Add("a,1,2\nb,3\n")
	f.Add("q,NaN,Inf\n")
	f.Add("\"quoted,name\",5,6\n")
	f.Fuzz(func(t *testing.T, input string) {
		names, ss, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, names, ss); err != nil {
			t.Fatalf("accepted input failed to re-serialize: %v", err)
		}
		names2, ss2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(names2) != len(names) || len(ss2) != len(ss) {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", len(names2), len(ss2), len(names), len(ss))
		}
		for i := range ss {
			if len(ss2[i]) != len(ss[i]) {
				t.Fatalf("series %d length changed", i)
			}
			for j := range ss[i] {
				a, b := ss[i][j], ss2[i][j]
				if a != b && !(a != a && b != b) { // NaN-tolerant equality
					t.Fatalf("series %d[%d] changed: %v vs %v", i, j, a, b)
				}
			}
		}
	})
}
