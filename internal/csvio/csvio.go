// Package csvio reads and writes time-series datasets as CSV, the
// interchange format of the command-line tools: one row per series, the
// first column a name, the remaining columns the values.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"tsq/internal/series"
)

// Write emits one row per series: name followed by values.
func Write(w io.Writer, names []string, ss []series.Series) error {
	if len(names) != len(ss) {
		return fmt.Errorf("csvio: %d names for %d series", len(names), len(ss))
	}
	cw := csv.NewWriter(w)
	row := make([]string, 0, 64)
	for i, s := range ss {
		row = row[:0]
		row = append(row, names[i])
		for _, v := range s {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csvio: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Read parses rows written by Write. All series must have the same length.
func Read(r io.Reader) (names []string, ss []series.Series, err error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	rowLen := -1
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("csvio: row %d: %w", i, err)
		}
		if len(rec) < 2 {
			return nil, nil, fmt.Errorf("csvio: row %d has %d fields, want a name and at least one value", i, len(rec))
		}
		if rowLen == -1 {
			rowLen = len(rec)
		} else if len(rec) != rowLen {
			return nil, nil, fmt.Errorf("csvio: row %d has %d fields, want %d", i, len(rec), rowLen)
		}
		s := make(series.Series, len(rec)-1)
		for j, f := range rec[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("csvio: row %d field %d: %w", i, j+1, err)
			}
			s[j] = v
		}
		names = append(names, rec[0])
		ss = append(ss, s)
	}
	if len(ss) == 0 {
		return nil, nil, fmt.Errorf("csvio: empty input")
	}
	return names, ss, nil
}

// WriteFile writes the dataset to path.
func WriteFile(path string, names []string, ss []series.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("csvio: %w", err)
	}
	if err := Write(f, names, ss); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a dataset from path.
func ReadFile(path string) (names []string, ss []series.Series, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("csvio: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only; close errors carry no data loss
	return Read(f)
}
