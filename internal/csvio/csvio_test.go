package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"tsq/internal/series"
)

func TestRoundTrip(t *testing.T) {
	names := []string{"alpha", "beta"}
	ss := []series.Series{{1, 2.5, -3e9}, {0.0001, 7, 42}}
	var buf bytes.Buffer
	if err := Write(&buf, names, ss); err != nil {
		t.Fatal(err)
	}
	gotNames, gotSeries, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 2 || gotNames[0] != "alpha" || gotNames[1] != "beta" {
		t.Errorf("names = %v", gotNames)
	}
	for i := range ss {
		if series.EuclideanDistance(ss[i], gotSeries[i]) != 0 {
			t.Errorf("series %d corrupted: %v vs %v", i, ss[i], gotSeries[i])
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.csv")
	names := []string{"x"}
	ss := []series.Series{{3, 1, 4, 1, 5}}
	if err := WriteFile(path, names, ss); err != nil {
		t.Fatal(err)
	}
	gotNames, gotSeries, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if gotNames[0] != "x" || series.EuclideanDistance(gotSeries[0], ss[0]) != 0 {
		t.Error("file roundtrip corrupted the data")
	}
}

func TestWriteValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []string{"a"}, nil); err == nil {
		t.Error("mismatched names accepted")
	}
}

func TestReadErrors(t *testing.T) {
	for name, text := range map[string]string{
		"empty":     "",
		"no values": "lonely\n",
		"ragged":    "a,1,2\nb,1\n",
		"bad float": "a,1,zap\n",
	} {
		if _, _, err := Read(strings.NewReader(text)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, _, err := ReadFile(filepath.Join(t.TempDir(), "nope.csv")); err == nil {
		t.Error("missing file accepted")
	}
}
