// Package plot renders simple line charts as standalone SVG documents —
// enough to regenerate the paper's figures (multiple series over a
// numeric x-axis, log or linear y, markers, a legend and axis ticks)
// without any dependency.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name   string
	X, Y   []float64
	Dashed bool
}

// Chart is a plot specification.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// LogY plots the y axis on a log10 scale (all y values must be > 0).
	LogY   bool
	Series []Series
	// Width and Height in pixels; defaults 640x420.
	Width, Height int
}

// palette cycles through line colors.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"}

const (
	marginLeft   = 70.0
	marginRight  = 20.0
	marginTop    = 40.0
	marginBottom = 55.0
)

// SVG renders the chart. It returns an error for empty or inconsistent
// input (no series, length mismatches, non-positive values on a log axis).
func (c Chart) SVG() (string, error) {
	if len(c.Series) == 0 {
		return "", fmt.Errorf("plot: no series")
	}
	if c.Width == 0 {
		c.Width = 640
	}
	if c.Height == 0 {
		c.Height = 420
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) || len(s.X) == 0 {
			return "", fmt.Errorf("plot: series %q has %d x and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					return "", fmt.Errorf("plot: series %q has non-positive value %v on a log axis", s.Name, y)
				}
				y = math.Log10(y)
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// A little headroom on y.
	pad := (ymax - ymin) * 0.05
	ymin -= pad
	ymax += pad

	plotW := float64(c.Width) - marginLeft - marginRight
	plotH := float64(c.Height) - marginTop - marginBottom
	px := func(x float64) float64 { return marginLeft + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 {
		if c.LogY {
			y = math.Log10(y)
		}
		return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		c.Width, c.Height, c.Width, c.Height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", c.Width, c.Height)
	fmt.Fprintf(&b, `<text x="%g" y="20" font-family="sans-serif" font-size="15" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)

	// Ticks.
	for _, x := range ticks(xmin, xmax, 6) {
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			px(x), marginTop+plotH, px(x), marginTop+plotH+5)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(x), marginTop+plotH+18, formatTick(x))
	}
	for _, yv := range ticks(ymin, ymax, 6) {
		display := yv
		if c.LogY {
			display = math.Pow(10, yv)
		}
		yPix := marginTop + plotH - (yv-ymin)/(ymax-ymin)*plotH
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
			marginLeft-5, yPix, marginLeft, yPix)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#dddddd"/>`+"\n",
			marginLeft, yPix, marginLeft+plotW, yPix)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginLeft-8, yPix+4, formatTick(display))
	}

	// Axis labels.
	fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, float64(c.Height)-12, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%g" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="6,4"`
		}
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%g,%g", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.8"%s points="%s"/>`+"\n",
			color, dash, strings.Join(pts, " "))
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%g" cy="%g" r="3" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		lx := marginLeft + plotW - 150
		ly := marginTop + 10 + float64(si)*18
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"%s/>`+"\n",
			lx, ly, lx+24, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			lx+30, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String(), nil
}

// ticks returns ~n round tick positions covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	span := hi - lo
	if span <= 0 || n < 2 {
		return []float64{lo}
	}
	raw := span / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	start := math.Ceil(lo/step) * step
	var out []float64
	for x := start; x <= hi+1e-9*span; x += step {
		out = append(out, x)
	}
	sort.Float64s(out)
	return out
}

// formatTick renders a tick value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 100000:
		return fmt.Sprintf("%.0fk", v/1000)
	case av >= 1000 && v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	case av >= 1 || v == 0:
		return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", v), "0"), ".")
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// escape protects text nodes.
func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
