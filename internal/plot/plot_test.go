package plot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func sample() Chart {
	return Chart{
		Title:  "time per query",
		XLabel: "number of sequences",
		YLabel: "seconds",
		Series: []Series{
			{Name: "seqscan", X: []float64{500, 1000, 2000}, Y: []float64{0.01, 0.02, 0.05}},
			{Name: "MT-index", X: []float64{500, 1000, 2000}, Y: []float64{0.004, 0.008, 0.015}, Dashed: true},
		},
	}
}

func TestSVGWellFormed(t *testing.T) {
	svg, err := sample().SVG()
	if err != nil {
		t.Fatal(err)
	}
	// Must parse as XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
	for _, needle := range []string{"<svg", "polyline", "seqscan", "MT-index", "number of sequences", "stroke-dasharray"} {
		if !strings.Contains(svg, needle) {
			t.Errorf("SVG missing %q", needle)
		}
	}
	// Two series -> two polylines.
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
}

func TestSVGErrors(t *testing.T) {
	if _, err := (Chart{}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	bad := Chart{Series: []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	if _, err := bad.SVG(); err == nil {
		t.Error("length mismatch accepted")
	}
	logNeg := Chart{LogY: true, Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{0}}}}
	if _, err := logNeg.SVG(); err == nil {
		t.Error("non-positive value on log axis accepted")
	}
}

func TestLogAxis(t *testing.T) {
	c := sample()
	c.LogY = true
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<svg") {
		t.Error("log chart did not render")
	}
}

func TestDegenerateRanges(t *testing.T) {
	// Single point and constant series must not divide by zero.
	c := Chart{Series: []Series{{Name: "p", X: []float64{5}, Y: []float64{3}}}}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("degenerate chart produced NaN/Inf coordinates")
	}
	flat := Chart{Series: []Series{{Name: "f", X: []float64{1, 2, 3}, Y: []float64{7, 7, 7}}}}
	svg, err = flat.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "NaN") {
		t.Error("flat series produced NaN")
	}
}

func TestTicks(t *testing.T) {
	got := ticks(0, 10, 6)
	if len(got) < 4 || got[0] < 0 || got[len(got)-1] > 10+1e-9 {
		t.Errorf("ticks(0,10) = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ticks not increasing: %v", got)
		}
	}
	// Tiny and huge ranges.
	if got := ticks(0.0001, 0.0005, 5); len(got) == 0 {
		t.Error("no ticks for tiny range")
	}
	if got := ticks(0, 1e6, 5); len(got) == 0 {
		t.Error("no ticks for huge range")
	}
	if got := ticks(3, 3, 5); len(got) != 1 {
		t.Errorf("zero-span ticks = %v", got)
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		1500000: "1500k",
		2.5:     "2.5",
		0.004:   "0.004",
	}
	for v, want := range cases {
		if got := formatTick(v); got != want {
			t.Errorf("formatTick(%v) = %q, want %q", v, got, want)
		}
	}
	if math.IsNaN(3) { // keep math imported
		t.Fatal("unreachable")
	}
}

func TestEscape(t *testing.T) {
	if got := escape("a<b&c>d"); got != "a&lt;b&amp;c&gt;d" {
		t.Errorf("escape = %q", got)
	}
}
