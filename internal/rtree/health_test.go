package rtree

import (
	"math/rand"
	"testing"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// TestTreeHealthGroundTruth cross-checks the health walker against an
// independent Visit pass and the tree's own metadata.
func TestTreeHealthGroundTruth(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 512})
	tr, err := New(mgr, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 800
	for i := 0; i < n; i++ {
		p := geom.Point{rng.Float64() * 100, rng.Float64() * 100}
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}

	h, err := tr.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Height != tr.Height() || h.Size != tr.Len() || h.Dim != 2 {
		t.Errorf("header = height=%d size=%d dim=%d, want %d/%d/2", h.Height, h.Size, h.Dim, tr.Height(), tr.Len())
	}
	if len(h.Levels) != h.Height {
		t.Fatalf("%d levels, want %d", len(h.Levels), h.Height)
	}

	// Independent tally via Visit.
	nodes, entries := 0, 0
	leafEntries := 0
	if err := tr.Visit(func(n *Node, level int) error {
		nodes++
		entries += len(n.Entries)
		if n.Leaf {
			leafEntries += len(n.Entries)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if h.Nodes != nodes || h.Entries != entries {
		t.Errorf("totals = nodes=%d entries=%d, want %d/%d", h.Nodes, h.Entries, nodes, entries)
	}
	// Every record is exactly one leaf entry.
	leaf := h.Levels[h.Height-1]
	if int64(leaf.Entries) != tr.Len() || leafEntries != leaf.Entries {
		t.Errorf("leaf entries = %d, want %d", leaf.Entries, tr.Len())
	}
	// Root level holds exactly one node.
	if h.Levels[0].Nodes != 1 {
		t.Errorf("root level nodes = %d, want 1", h.Levels[0].Nodes)
	}
	// Internal-level entries equal the node count one level down (one
	// entry per child).
	for i := 0; i+1 < len(h.Levels); i++ {
		if h.Levels[i].Entries != h.Levels[i+1].Nodes {
			t.Errorf("level %d entries = %d, want %d (children)", i, h.Levels[i].Entries, h.Levels[i+1].Nodes)
		}
	}

	for i, lh := range h.Levels {
		// Occupancy histogram sums to the node count.
		sum := 0
		for _, c := range lh.Occupancy {
			sum += c
		}
		if sum != lh.Nodes {
			t.Errorf("level %d occupancy sums to %d, want %d", i, sum, lh.Nodes)
		}
		if lh.AvgFill <= 0 || lh.AvgFill > 1 {
			t.Errorf("level %d avg fill = %v", i, lh.AvgFill)
		}
		// Non-root nodes respect the minimum fill, so average fill must
		// be at least m/M on levels with more than one node.
		if lh.Nodes > 1 && lh.AvgFill < float64(h.MinFill)/float64(h.MaxFill) {
			t.Errorf("level %d avg fill %v below m/M", i, lh.AvgFill)
		}
		if lh.MarginSum <= 0 || lh.CoveredArea <= 0 {
			t.Errorf("level %d margin=%v covered=%v, want > 0", i, lh.MarginSum, lh.CoveredArea)
		}
		if lh.DeadSpace < 0 || lh.Overlap < 0 {
			t.Errorf("level %d dead=%v overlap=%v, want >= 0", i, lh.DeadSpace, lh.Overlap)
		}
	}
	// Point data: leaf entries have zero area, so leaf dead space equals
	// covered area.
	if leaf.EntryArea != 0 || leaf.DeadSpace != leaf.CoveredArea {
		t.Errorf("leaf entry_area=%v dead=%v covered=%v", leaf.EntryArea, leaf.DeadSpace, leaf.CoveredArea)
	}
}

// TestTreeHealthEmpty checks the degenerate single-empty-root tree.
func TestTreeHealthEmpty(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 512})
	tr, err := New(mgr, 2)
	if err != nil {
		t.Fatal(err)
	}
	h, err := tr.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Height != 1 || h.Nodes != 1 || h.Entries != 0 || h.Size != 0 {
		t.Errorf("empty tree health = %+v", h)
	}
	if h.Levels[0].Occupancy[0] != 1 {
		t.Errorf("empty root not in the lowest occupancy bucket: %v", h.Levels[0].Occupancy)
	}
}

// TestTreeHealthBulkVsIncremental: STR bulk loading packs nodes full, so
// its average fill must beat incremental insertion's — the discriminating
// signal the report exists to surface.
func TestTreeHealthBulkVsIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 1500
	items := bulkItems(rng, n, 2)

	inc, err := New(storage.NewManager(storage.Options{PageSize: 512}), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := inc.Insert(it.Rect, it.Rec); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := BulkLoad(storage.NewManager(storage.Options{PageSize: 512}), 2, items)
	if err != nil {
		t.Fatal(err)
	}

	hInc, err := inc.Health()
	if err != nil {
		t.Fatal(err)
	}
	hBulk, err := bulk.Health()
	if err != nil {
		t.Fatal(err)
	}
	leafInc := hInc.Levels[hInc.Height-1]
	leafBulk := hBulk.Levels[hBulk.Height-1]
	if leafBulk.AvgFill <= leafInc.AvgFill {
		t.Errorf("bulk leaf fill %v not above incremental %v", leafBulk.AvgFill, leafInc.AvgFill)
	}
	if leafBulk.Nodes >= leafInc.Nodes {
		t.Errorf("bulk uses %d leaves, incremental %d — packing should use fewer", leafBulk.Nodes, leafInc.Nodes)
	}
}
