package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

func bulkItems(rng *rand.Rand, n, dim int) []BulkItem {
	items := make([]BulkItem, n)
	for i := range items {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 10
		}
		items[i] = BulkItem{Rect: geom.PointRect(p), Rec: int64(i)}
	}
	return items
}

func TestBulkLoadInvariantsAndSearch(t *testing.T) {
	f := func(seed int64, sizeRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(sizeRaw)%3000 + 1
		mgr := storage.NewManager(storage.Options{PageSize: 512})
		items := bulkItems(rng, n, 3)
		tr, err := BulkLoad(mgr, 3, items)
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("seed %d n %d: %v", seed, n, err)
			return false
		}
		if tr.Len() != int64(n) {
			return false
		}
		// Random range query equals brute force.
		center := items[rng.Intn(n)].Rect.Lo
		query := geom.PointRect(center).Expand(3)
		got, _, err := tr.Search(query)
		if err != nil {
			t.Fatal(err)
		}
		var want []int64
		for _, it := range items {
			if query.Contains(it.Rect.Lo) {
				want = append(want, it.Rec)
			}
		}
		return equalInt64(sortedInt64(got), sortedInt64(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 512})
	tr, err := BulkLoad(mgr, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty bulk load: len=%d h=%d", tr.Len(), tr.Height())
	}
	// Still usable for inserts.
	if err := tr.InsertPoint(geom.Point{1, 2}, 7); err != nil {
		t.Fatal(err)
	}
	got, _, _ := tr.Search(geom.PointRect(geom.Point{1, 2}))
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("search after insert: %v", got)
	}
}

func TestBulkLoadPacksTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := bulkItems(rng, 2000, 4)
	mgrA := storage.NewManager(storage.Options{PageSize: 512})
	packed, err := BulkLoad(mgrA, 4, items)
	if err != nil {
		t.Fatal(err)
	}
	mgrB := storage.NewManager(storage.Options{PageSize: 512})
	grown, err := New(mgrB, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		if err := grown.Insert(it.Rect, it.Rec); err != nil {
			t.Fatal(err)
		}
	}
	countNodes := func(tr *Tree) int {
		n := 0
		tr.Visit(func(*Node, int) error { n++; return nil })
		return n
	}
	np, ng := countNodes(packed), countNodes(grown)
	if np >= ng {
		t.Errorf("packed tree has %d nodes, grown tree %d; packing saved nothing", np, ng)
	}
}

func TestBulkLoadSupportsUpdates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	items := bulkItems(rng, 500, 2)
	mgr := storage.NewManager(storage.Options{PageSize: 512})
	tr, err := BulkLoad(mgr, 2, items)
	if err != nil {
		t.Fatal(err)
	}
	// Delete half, insert new ones, invariants hold.
	for i := 0; i < 250; i++ {
		if err := tr.Delete(items[i].Rect, items[i].Rec); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := tr.InsertPoint(geom.Point{float64(i), -float64(i)}, int64(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 350 {
		t.Errorf("Len = %d, want 350", tr.Len())
	}
}

func TestBulkLoadRejectsMismatchedDims(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 512})
	_, err := BulkLoad(mgr, 3, []BulkItem{{Rect: geom.PointRect(geom.Point{1, 2})}})
	if err == nil {
		t.Error("mismatched dimension accepted")
	}
}

func BenchmarkBulkLoadVsInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	items := bulkItems(rng, 10000, 6)
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mgr := storage.NewManager(storage.Options{PageSize: 4096})
			if _, err := BulkLoad(mgr, 6, items); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mgr := storage.NewManager(storage.Options{PageSize: 4096})
			tr, _ := New(mgr, 6)
			for _, it := range items {
				if err := tr.Insert(it.Rect, it.Rec); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
