package rtree

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// flakyBackend wraps a MemBackend and fails every operation once the
// budget is exhausted.
type flakyBackend struct {
	inner  storage.Backend
	budget int
}

var errInjected = errors.New("injected I/O failure")

func (f *flakyBackend) step() error {
	if f.budget <= 0 {
		return errInjected
	}
	f.budget--
	return nil
}

func (f *flakyBackend) ReadPage(id storage.PageID, buf []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.ReadPage(id, buf)
}

func (f *flakyBackend) WritePage(id storage.PageID, buf []byte) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.WritePage(id, buf)
}

func (f *flakyBackend) Grow(id storage.PageID) error {
	if err := f.step(); err != nil {
		return err
	}
	return f.inner.Grow(id)
}

func (f *flakyBackend) Close() error { return f.inner.Close() }

// TestOperationsSurfaceIOErrors drives the tree until the backend starts
// failing at many different points; every operation must return an error
// (never panic), and with an exhausted budget reads must fail loudly.
func TestOperationsSurfaceIOErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, budget := range []int{3, 10, 30, 100, 300, 1000} {
		t.Run(fmt.Sprintf("budget=%d", budget), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic with budget %d: %v", budget, r)
				}
			}()
			fb := &flakyBackend{inner: storage.NewMemBackend(512), budget: budget}
			mgr := storage.NewManager(storage.Options{PageSize: 512, Backend: fb})
			tr, err := New(mgr, 3)
			if err != nil {
				return // failed during creation: acceptable
			}
			sawError := false
			for i := 0; i < 500; i++ {
				p := geom.Point{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
				if err := tr.InsertPoint(p, int64(i)); err != nil {
					sawError = true
					break
				}
			}
			if !sawError {
				t.Fatalf("budget %d never exhausted by 500 inserts", budget)
			}
			// Subsequent operations keep failing cleanly.
			if _, _, err := tr.Search(geom.NewRect(geom.Point{-1, -1, -1}, geom.Point{1, 1, 1})); err == nil {
				t.Error("search succeeded on a dead backend")
			}
			if _, _, err := tr.NearestNeighbors(geom.Point{0, 0, 0}, 3); err == nil {
				t.Error("NN succeeded on a dead backend")
			}
			if _, _, err := tr.SelfJoin(1); err == nil {
				t.Error("join succeeded on a dead backend")
			}
		})
	}
}

// TestReadsBeforeFailureAreCorrect checks that everything inserted before
// the failure point is still readable once the backend recovers (the
// in-memory pages were written through).
func TestReadsBeforeFailureAreCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fb := &flakyBackend{inner: storage.NewMemBackend(512), budget: 1 << 30}
	mgr := storage.NewManager(storage.Options{PageSize: 512, Backend: fb})
	tr, err := New(mgr, 2)
	if err != nil {
		t.Fatal(err)
	}
	var pts []geom.Point
	for i := 0; i < 300; i++ {
		p := geom.Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p)
	}
	// Kill, then revive the backend: reads must reflect all inserts.
	fb.budget = 0
	if _, _, err := tr.Search(geom.PointRect(pts[0])); err == nil {
		t.Fatal("search succeeded while dead")
	}
	fb.budget = 1 << 30
	all, _, err := tr.Search(geom.NewRect(geom.Point{-1e9, -1e9}, geom.Point{1e9, 1e9}))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 300 {
		t.Fatalf("recovered search found %d of 300 records", len(all))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
