package rtree

import (
	"testing"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// FuzzDecodeNode checks the node codec never panics on corrupt pages and
// that every node produced by encodeNode decodes back identically.
func FuzzDecodeNode(f *testing.F) {
	// Seed with a valid encoded node.
	dim := 3
	n := &Node{ID: 7, Leaf: true, Entries: []Entry{
		{Rect: geom.NewRect(geom.Point{1, 2, 3}, geom.Point{4, 5, 6}), Rec: 42},
		{Rect: geom.NewRect(geom.Point{-1, -2, -3}, geom.Point{0, 0, 0}), Rec: -9},
	}}
	buf := make([]byte, 512)
	encodeNode(n, dim, buf)
	f.Add(buf, dim)
	f.Add(make([]byte, 512), 2)
	f.Add([]byte{1, 0, 255, 255}, 6)
	f.Fuzz(func(t *testing.T, page []byte, d int) {
		if d < 1 || d > 16 || len(page) < nodeHeaderSize {
			return
		}
		node, err := decodeNode(storage.PageID(1), d, page)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode into a page of the same size
		// without panicking, and round-trip.
		out := make([]byte, len(page))
		if nodeHeaderSize+len(node.Entries)*entrySize(d) > len(out) {
			t.Fatalf("decoder accepted %d entries that cannot fit the page", len(node.Entries))
		}
		encodeNode(node, d, out)
		back, err := decodeNode(storage.PageID(1), d, out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Leaf != node.Leaf || len(back.Entries) != len(node.Entries) {
			t.Fatal("round trip changed node shape")
		}
	})
}

// FuzzMetaCodec checks the metadata page codec.
func FuzzMetaCodec(f *testing.F) {
	valid := make([]byte, 64)
	encodeMeta(valid, 6, 3, 2, 1068)
	f.Add(valid)
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, page []byte) {
		if len(page) < 24 {
			return
		}
		dim, root, height, size, err := decodeMeta(page)
		if err != nil {
			return
		}
		out := make([]byte, len(page))
		encodeMeta(out, dim, root, height, size)
		d2, r2, h2, s2, err := decodeMeta(out)
		if err != nil || d2 != dim || r2 != root || h2 != height || s2 != size {
			t.Fatalf("meta round trip: %v %v %v %v %v", d2, r2, h2, s2, err)
		}
	})
}
