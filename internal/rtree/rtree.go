package rtree

import (
	"context"
	"fmt"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// reinsertFraction is the R*-tree forced-reinsertion parameter p: on the
// first overflow at a level, the 30% of entries farthest from the node
// center are removed and reinserted.
const reinsertFraction = 0.3

// minFillFraction is the minimum node fill m as a fraction of capacity M
// (the R*-tree paper recommends 40%).
const minFillFraction = 0.4

// Tree is a disk-resident R*-tree. It is not safe for concurrent use.
type Tree struct {
	mgr    *storage.Manager
	dim    int
	maxE   int // M: node capacity
	minE   int // m: minimum fill
	metaID storage.PageID
	root   storage.PageID
	height int // 1 = root is a leaf
	size   int64
	buf    []byte // scratch page buffer for writes
}

// New creates an empty tree of the given dimensionality on mgr.
func New(mgr *storage.Manager, dim int) (*Tree, error) {
	maxE := MaxEntries(mgr.PageSize(), dim)
	if maxE < 4 {
		return nil, fmt.Errorf("rtree: page size %d too small for dimension %d (capacity %d)", mgr.PageSize(), dim, maxE)
	}
	t := &Tree{
		mgr:  mgr,
		dim:  dim,
		maxE: maxE,
		minE: max(2, int(minFillFraction*float64(maxE))),
		buf:  make([]byte, mgr.PageSize()),
	}
	metaID, err := mgr.Alloc()
	if err != nil {
		return nil, err
	}
	t.metaID = metaID
	rootID, err := mgr.Alloc()
	if err != nil {
		return nil, err
	}
	t.root = rootID
	t.height = 1
	if err := t.store(&Node{ID: rootID, Leaf: true}); err != nil {
		return nil, err
	}
	if err := t.writeMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// Open loads an existing tree whose meta page is metaID.
func Open(mgr *storage.Manager, metaID storage.PageID) (*Tree, error) {
	buf := make([]byte, mgr.PageSize())
	if err := mgr.Read(metaID, buf); err != nil {
		return nil, fmt.Errorf("rtree: reading meta page %d: %w", metaID, err)
	}
	dim, root, height, size, err := decodeMeta(buf)
	if err != nil {
		return nil, fmt.Errorf("rtree: meta page %d: %w", metaID, err)
	}
	maxE := MaxEntries(mgr.PageSize(), dim)
	if maxE < 4 {
		return nil, fmt.Errorf("rtree: meta page %d: dimension %d leaves capacity %d in a %d-byte page",
			metaID, dim, maxE, mgr.PageSize())
	}
	t := &Tree{
		mgr:    mgr,
		dim:    dim,
		maxE:   maxE,
		metaID: metaID,
		root:   root,
		height: height,
		size:   size,
		buf:    make([]byte, mgr.PageSize()),
	}
	t.minE = max(2, int(minFillFraction*float64(t.maxE)))
	return t, nil
}

// MetaID returns the id of the tree's metadata page (needed to Open it).
func (t *Tree) MetaID() storage.PageID { return t.metaID }

// Dim returns the dimensionality of the indexed rectangles.
func (t *Tree) Dim() int { return t.dim }

// Root returns the root page id.
func (t *Tree) Root() storage.PageID { return t.root }

// Height returns the tree height; 1 means the root is a leaf.
func (t *Tree) Height() int { return t.height }

// Len returns the number of stored records.
func (t *Tree) Len() int64 { return t.size }

// Capacity returns (m, M): the minimum and maximum entries per node.
func (t *Tree) Capacity() (int, int) { return t.minE, t.maxE }

// Load reads and decodes one node. Each call costs one page access, which
// is how the experiments count disk accesses; callers driving their own
// traversals (ST-index, MT-index) go through Load.
func (t *Tree) Load(id storage.PageID) (*Node, error) {
	return t.LoadCtx(nil, id)
}

// LoadCtx is Load with per-query read attribution: when ctx carries a
// storage.QueryIO, the page fetch is credited to it. A nil ctx behaves
// exactly like Load.
func (t *Tree) LoadCtx(ctx context.Context, id storage.PageID) (*Node, error) {
	buf := make([]byte, t.mgr.PageSize())
	if err := t.mgr.ReadCtx(ctx, id, buf); err != nil {
		return nil, err
	}
	return decodeNode(id, t.dim, buf)
}

func (t *Tree) store(n *Node) error {
	if len(n.Entries) > t.maxE {
		return fmt.Errorf("rtree: storing overfull node %d (%d > %d)", n.ID, len(n.Entries), t.maxE)
	}
	encodeNode(n, t.dim, t.buf)
	return t.mgr.Write(n.ID, t.buf)
}

func (t *Tree) writeMeta() error {
	for i := range t.buf {
		t.buf[i] = 0
	}
	encodeMeta(t.buf, t.dim, t.root, t.height, t.size)
	return t.mgr.Write(t.metaID, t.buf)
}

// Reload re-reads the meta page and restores the in-memory root,
// height, and size from it. Callers use it after rolling back the
// backing store underneath an open tree (an aborted staged mutation):
// the durable meta page is the pre-mutation state, and Reload discards
// whatever the failed operation left in the struct.
func (t *Tree) Reload() error {
	buf := make([]byte, t.mgr.PageSize())
	if err := t.mgr.Read(t.metaID, buf); err != nil {
		return fmt.Errorf("rtree: reloading meta page %d: %w", t.metaID, err)
	}
	dim, root, height, size, err := decodeMeta(buf)
	if err != nil {
		return fmt.Errorf("rtree: reloading meta page %d: %w", t.metaID, err)
	}
	if dim != t.dim {
		return fmt.Errorf("rtree: reloading meta page %d: dimension changed from %d to %d", t.metaID, t.dim, dim)
	}
	t.root, t.height, t.size = root, height, size
	return nil
}

// Insert adds a rectangle with the given record id.
func (t *Tree) Insert(r geom.Rect, rec int64) error {
	if r.Dim() != t.dim {
		return fmt.Errorf("rtree: inserting %d-dimensional rect into %d-dimensional tree", r.Dim(), t.dim)
	}
	// overflowed tracks, per level, whether forced reinsertion already ran
	// during this insertion (the R* rule: reinsert only once per level). A
	// map because a root split during reinsertion can grow the height
	// mid-insert.
	overflowed := make(map[int]bool)
	if err := t.insertAtLevel(Entry{Rect: r.Clone(), Rec: rec}, 1, overflowed); err != nil {
		return err
	}
	t.size++
	return t.writeMeta()
}

// InsertPoint adds a point with the given record id.
func (t *Tree) InsertPoint(p geom.Point, rec int64) error {
	return t.Insert(geom.PointRect(p), rec)
}

// insertAtLevel inserts entry e at the given level (1 = leaf). The entry's
// Child must be set when level > 1.
func (t *Tree) insertAtLevel(e Entry, level int, overflowed map[int]bool) error {
	path, err := t.choosePath(e.Rect, level)
	if err != nil {
		return err
	}
	n := path[len(path)-1].node
	n.Entries = append(n.Entries, e)
	return t.handleOverflowAndAdjust(path, level, overflowed)
}

// pathElem is one step of a root-to-target path.
type pathElem struct {
	node     *Node
	entryIdx int // index within the parent's entries (undefined for root)
}

// choosePath descends from the root to a node at the target level (1 =
// leaf) using the R* ChooseSubtree criteria, returning the full path.
func (t *Tree) choosePath(r geom.Rect, targetLevel int) ([]pathElem, error) {
	id := t.root
	level := t.height
	path := []pathElem{}
	entryIdx := -1
	for {
		n, err := t.Load(id)
		if err != nil {
			return nil, err
		}
		path = append(path, pathElem{node: n, entryIdx: entryIdx})
		if level == targetLevel {
			return path, nil
		}
		if n.Leaf {
			return nil, fmt.Errorf("rtree: reached leaf above target level %d", targetLevel)
		}
		if level-1 == 1 {
			entryIdx = chooseLeastOverlap(n.Entries, r)
		} else {
			entryIdx = chooseLeastEnlargement(n.Entries, r)
		}
		id = n.Entries[entryIdx].Child
		level--
	}
}

// chooseLeastOverlap implements the R* leaf-level choice: the child whose
// overlap with its siblings grows least; ties broken by least area
// enlargement, then least area.
func chooseLeastOverlap(entries []Entry, r geom.Rect) int {
	best := -1
	bestOverlap, bestEnlarge, bestArea := 0.0, 0.0, 0.0
	for i, e := range entries {
		grown := e.Rect.Union(r)
		var overlapDelta float64
		for j, other := range entries {
			if j == i {
				continue
			}
			overlapDelta += grown.OverlapArea(other.Rect) - e.Rect.OverlapArea(other.Rect)
		}
		enlarge := e.Rect.Enlargement(r)
		area := e.Rect.Area()
		if best == -1 || overlapDelta < bestOverlap ||
			(overlapDelta == bestOverlap && (enlarge < bestEnlarge ||
				(enlarge == bestEnlarge && area < bestArea))) {
			best, bestOverlap, bestEnlarge, bestArea = i, overlapDelta, enlarge, area
		}
	}
	return best
}

// chooseLeastEnlargement implements the internal-level choice: least area
// enlargement, ties broken by least area.
func chooseLeastEnlargement(entries []Entry, r geom.Rect) int {
	best := -1
	bestEnlarge, bestArea := 0.0, 0.0
	for i, e := range entries {
		enlarge := e.Rect.Enlargement(r)
		area := e.Rect.Area()
		if best == -1 || enlarge < bestEnlarge || (enlarge == bestEnlarge && area < bestArea) {
			best, bestEnlarge, bestArea = i, enlarge, area
		}
	}
	return best
}

// handleOverflowAndAdjust stores the modified tail node of path, resolving
// overflow by forced reinsertion or split, and adjusts bounding rectangles
// up to the root.
func (t *Tree) handleOverflowAndAdjust(path []pathElem, level int, overflowed map[int]bool) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i].node
		curLevel := t.height - i // level of this node before any root split
		if len(n.Entries) > t.maxE {
			isRoot := i == 0
			if !isRoot && !overflowed[curLevel] {
				overflowed[curLevel] = true
				if err := t.reinsert(path, i, curLevel, overflowed); err != nil {
					return err
				}
				return nil
			}
			if err := t.split(path, i, curLevel, overflowed); err != nil {
				return err
			}
			return nil
		}
		if err := t.store(n); err != nil {
			return err
		}
		if i > 0 {
			parent := path[i-1].node
			parent.Entries[path[i].entryIdx].Rect = n.mbr()
		}
	}
	return nil
}

// reinsert implements R* forced reinsertion at path[i]: remove the
// reinsertFraction of entries whose centers are farthest from the node's
// center, tighten the node, then re-insert them at the same level.
func (t *Tree) reinsert(path []pathElem, i, level int, overflowed map[int]bool) error {
	n := path[i].node
	center := n.mbr().Center()
	type distEntry struct {
		d float64
		e Entry
	}
	des := make([]distEntry, len(n.Entries))
	for j, e := range n.Entries {
		des[j] = distEntry{d: geom.Dist(e.Rect.Center(), center), e: e}
	}
	// Sort by distance descending (simple insertion sort keeps this
	// dependency-free; nodes hold at most a few dozen entries).
	for a := 1; a < len(des); a++ {
		for b := a; b > 0 && des[b].d > des[b-1].d; b-- {
			des[b], des[b-1] = des[b-1], des[b]
		}
	}
	p := int(reinsertFraction * float64(len(des)))
	if p < 1 {
		p = 1
	}
	removed := make([]Entry, p)
	for j := 0; j < p; j++ {
		removed[j] = des[j].e
	}
	n.Entries = n.Entries[:0]
	for j := p; j < len(des); j++ {
		n.Entries = append(n.Entries, des[j].e)
	}
	if err := t.store(n); err != nil {
		return err
	}
	// Tighten ancestors before reinserting.
	for j := i; j > 0; j-- {
		parent := path[j-1].node
		parent.Entries[path[j].entryIdx].Rect = path[j].node.mbr()
		if err := t.store(parent); err != nil {
			return err
		}
	}
	// Reinsert far entries first (the "close reinsert" variant reinserts
	// entries ordered by distance, maximizing the chance they land in
	// other nodes).
	for _, e := range removed {
		if err := t.insertAtLevel(e, level, overflowed); err != nil {
			return err
		}
	}
	return nil
}

// split implements the R* split of the overfull node path[i] at the given
// level, propagating the new entry upward (splitting ancestors as needed).
func (t *Tree) split(path []pathElem, i, level int, overflowed map[int]bool) error {
	n := path[i].node
	left, right := splitEntries(n.Entries, t.minE, t.dim)
	n.Entries = left
	if err := t.store(n); err != nil {
		return err
	}
	newID, err := t.mgr.Alloc()
	if err != nil {
		return err
	}
	sibling := &Node{ID: newID, Leaf: n.Leaf, Entries: right}
	if err := t.store(sibling); err != nil {
		return err
	}
	newEntry := Entry{Rect: sibling.mbr(), Child: newID}

	if i == 0 {
		// Root split: grow the tree.
		newRootID, err := t.mgr.Alloc()
		if err != nil {
			return err
		}
		newRoot := &Node{ID: newRootID, Leaf: false, Entries: []Entry{
			{Rect: n.mbr(), Child: n.ID},
			newEntry,
		}}
		if err := t.store(newRoot); err != nil {
			return err
		}
		t.root = newRootID
		t.height++
		return t.writeMeta()
	}

	// Update the parent: tighten the split node's rect and add the sibling.
	parent := path[i-1].node
	parent.Entries[path[i].entryIdx].Rect = n.mbr()
	parent.Entries = append(parent.Entries, newEntry)
	return t.handleOverflowAndAdjust(path[:i], level+1, overflowed)
}
