package rtree

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

func newTestTree(t testing.TB, dim, pageSize int) *Tree {
	t.Helper()
	mgr := storage.NewManager(storage.Options{PageSize: pageSize})
	tr, err := New(mgr, dim)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randPoints(rng *rand.Rand, n, dim int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := range p {
			p[d] = rng.NormFloat64() * 10
		}
		pts[i] = p
	}
	return pts
}

func sortedInt64(xs []int64) []int64 {
	out := append([]int64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertSearchSmall(t *testing.T) {
	tr := newTestTree(t, 2, 512)
	pts := []geom.Point{{0, 0}, {1, 1}, {5, 5}, {-3, 2}}
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.Search(geom.NewRect(geom.Point{-1, -1}, geom.Point{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInt64(sortedInt64(got), []int64{0, 1}) {
		t.Errorf("Search = %v, want [0 1]", got)
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want 4", tr.Len())
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTestTree(t, 3, 512) // small pages force deep trees
		n := 300 + rng.Intn(200)
		pts := randPoints(rng, n, 3)
		for i, p := range pts {
			if err := tr.InsertPoint(p, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 5; trial++ {
			center := randPoints(rng, 1, 3)[0]
			query := geom.PointRect(center).Expand(2 + rng.Float64()*10)
			got, _, err := tr.Search(query)
			if err != nil {
				t.Fatal(err)
			}
			var want []int64
			for i, p := range pts {
				if query.Contains(p) {
					want = append(want, int64(i))
				}
			}
			if !equalInt64(sortedInt64(got), sortedInt64(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestInvariantsAfterBulkInsert(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newTestTree(t, 4, 512)
	for i, p := range randPoints(rng, 1500, 4) {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Errorf("height = %d, expected a multi-level tree", tr.Height())
	}
}

func TestRectangleEntries(t *testing.T) {
	// The tree stores true rectangles, not just points.
	tr := newTestTree(t, 2, 512)
	rects := []geom.Rect{
		geom.NewRect(geom.Point{0, 0}, geom.Point{2, 2}),
		geom.NewRect(geom.Point{5, 5}, geom.Point{7, 9}),
		geom.NewRect(geom.Point{-4, -4}, geom.Point{-1, -1}),
	}
	for i, r := range rects {
		if err := tr.Insert(r, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.Search(geom.NewRect(geom.Point{1, 1}, geom.Point{6, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if !equalInt64(sortedInt64(got), []int64{0, 1}) {
		t.Errorf("Search = %v, want [0 1]", got)
	}
}

func TestDeleteAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	tr := newTestTree(t, 3, 512)
	pts := randPoints(rng, 800, 3)
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a random 60%.
	perm := rng.Perm(len(pts))
	deleted := make(map[int64]bool)
	for _, i := range perm[:480] {
		if err := tr.Delete(geom.PointRect(pts[i]), int64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		deleted[int64(i)] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 320 {
		t.Errorf("Len = %d, want 320", tr.Len())
	}
	// Survivors still findable, deleted gone.
	all, _, err := tr.Search(geom.NewRect(
		geom.Point{-1e9, -1e9, -1e9}, geom.Point{1e9, 1e9, 1e9}))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 320 {
		t.Fatalf("full search returned %d records, want 320", len(all))
	}
	for _, rec := range all {
		if deleted[rec] {
			t.Fatalf("deleted record %d still present", rec)
		}
	}
}

func TestDeleteToEmptyAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := newTestTree(t, 2, 512)
	pts := randPoints(rng, 300, 2)
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pts {
		if err := tr.Delete(geom.PointRect(p), int64(i)); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree remains usable.
	for i, p := range pts[:50] {
		if err := tr.InsertPoint(p, int64(1000+i)); err != nil {
			t.Fatal(err)
		}
	}
	all, _, _ := tr.Search(geom.NewRect(geom.Point{-1e9, -1e9}, geom.Point{1e9, 1e9}))
	if len(all) != 50 {
		t.Errorf("search after refill returned %d, want 50", len(all))
	}
}

func TestDeleteNotFound(t *testing.T) {
	tr := newTestTree(t, 2, 512)
	if err := tr.InsertPoint(geom.Point{1, 1}, 1); err != nil {
		t.Fatal(err)
	}
	err := tr.Delete(geom.PointRect(geom.Point{9, 9}), 1)
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	err = tr.Delete(geom.PointRect(geom.Point{1, 1}), 2)
	if !errors.Is(err, ErrNotFound) {
		t.Errorf("wrong-rec err = %v, want ErrNotFound", err)
	}
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTestTree(t, 3, 512)
		pts := randPoints(rng, 400, 3)
		for i, p := range pts {
			if err := tr.InsertPoint(p, int64(i)); err != nil {
				t.Fatal(err)
			}
		}
		q := randPoints(rng, 1, 3)[0]
		k := 1 + rng.Intn(10)
		got, _, err := tr.NearestNeighbors(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			return false
		}
		// Brute force.
		type nd struct {
			rec int64
			d   float64
		}
		all := make([]nd, len(pts))
		for i, p := range pts {
			all[i] = nd{int64(i), geom.Dist(p, q)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := 0; i < k; i++ {
			if math.Abs(got[i].Dist-all[i].d) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestNearestNeighborsEdgeCases(t *testing.T) {
	tr := newTestTree(t, 2, 512)
	if nn, _, err := tr.NearestNeighbors(geom.Point{0, 0}, 3); err != nil || len(nn) != 0 {
		t.Errorf("empty tree NN = %v, %v", nn, err)
	}
	tr.InsertPoint(geom.Point{1, 0}, 7)
	nn, _, err := tr.NearestNeighbors(geom.Point{0, 0}, 5)
	if err != nil || len(nn) != 1 || nn[0].Rec != 7 || math.Abs(nn[0].Dist-1) > 1e-12 {
		t.Errorf("NN = %v, %v", nn, err)
	}
	if nn, _, _ := tr.NearestNeighbors(geom.Point{0, 0}, 0); len(nn) != 0 {
		t.Error("k=0 returned results")
	}
}

func TestSelfJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tr := newTestTree(t, 2, 512)
	pts := randPoints(rng, 250, 2)
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	eps := 2.0
	got, _, err := tr.SelfJoin(eps)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[[2]int64]bool)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if geom.Dist(pts[i], pts[j]) <= eps {
				want[[2]int64{int64(i), int64(j)}] = true
			}
		}
	}
	gotSet := make(map[[2]int64]bool)
	for _, p := range got {
		key := [2]int64{p.RecA, p.RecB}
		if gotSet[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		gotSet[key] = true
	}
	if len(gotSet) != len(want) {
		t.Fatalf("join returned %d pairs, want %d", len(gotSet), len(want))
	}
	for k := range want {
		if !gotSet[k] {
			t.Fatalf("missing pair %v", k)
		}
	}
}

func TestSearchStatsCounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newTestTree(t, 2, 512)
	for i, p := range randPoints(rng, 1000, 2) {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	_, st, err := tr.Search(geom.NewRect(geom.Point{-2, -2}, geom.Point{2, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if st.NodeAccesses == 0 || st.LeafAccesses == 0 || st.LeafAccesses > st.NodeAccesses {
		t.Errorf("stats = %+v", st)
	}
	// A tiny query should touch far fewer nodes than a full scan.
	_, full, _ := tr.Search(geom.NewRect(geom.Point{-1e9, -1e9}, geom.Point{1e9, 1e9}))
	if st.NodeAccesses >= full.NodeAccesses {
		t.Errorf("selective query accessed %d nodes, full scan %d", st.NodeAccesses, full.NodeAccesses)
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	mgr := storage.NewManager(storage.Options{PageSize: 512})
	tr, err := New(mgr, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	pts := randPoints(rng, 300, 2)
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	meta := tr.MetaID()

	re, err := Open(mgr, meta)
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != 300 || re.Dim() != 2 || re.Height() != tr.Height() {
		t.Fatalf("reopened tree: len=%d dim=%d h=%d", re.Len(), re.Dim(), re.Height())
	}
	got, _, err := re.Search(geom.PointRect(pts[0]).Expand(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, rec := range got {
		if rec == 0 {
			found = true
		}
	}
	if !found {
		t.Error("reopened tree lost record 0")
	}
	if err := re.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	tr := newTestTree(t, 3, 512)
	if err := tr.InsertPoint(geom.Point{1, 2}, 1); err == nil {
		t.Error("2-dim insert into 3-dim tree succeeded")
	}
}

func TestMaxEntriesSizing(t *testing.T) {
	// 512-byte pages, 2 dims: entry = 40 bytes, header 8 -> 12 entries.
	if got := MaxEntries(512, 2); got != 12 {
		t.Errorf("MaxEntries(512, 2) = %d, want 12", got)
	}
	// 4096-byte pages, 6 dims: entry = 104 -> 39 entries.
	if got := MaxEntries(4096, 6); got != 39 {
		t.Errorf("MaxEntries(4096, 6) = %d, want 39", got)
	}
	mgr := storage.NewManager(storage.Options{PageSize: 64})
	if _, err := New(mgr, 6); err == nil {
		t.Error("tiny page accepted for 6-dim tree")
	}
}

func TestDuplicatePointsSupported(t *testing.T) {
	tr := newTestTree(t, 2, 512)
	p := geom.Point{1, 1}
	for i := 0; i < 50; i++ {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := tr.Search(geom.PointRect(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Errorf("found %d duplicates, want 50", len(got))
	}
	// Deleting one specific record leaves the other 49.
	if err := tr.Delete(geom.PointRect(p), 25); err != nil {
		t.Fatal(err)
	}
	got, _, _ = tr.Search(geom.PointRect(p))
	if len(got) != 49 {
		t.Errorf("found %d after delete, want 49", len(got))
	}
	for _, r := range got {
		if r == 25 {
			t.Error("record 25 still present")
		}
	}
}

func TestInterleavedInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := newTestTree(t, 2, 512)
	live := make(map[int64]geom.Point)
	next := int64(0)
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p := randPoints(rng, 1, 2)[0]
			if err := tr.InsertPoint(p, next); err != nil {
				t.Fatal(err)
			}
			live[next] = p
			next++
		} else {
			// Delete a random live record.
			var rec int64
			for r := range live {
				rec = r
				break
			}
			if err := tr.Delete(geom.PointRect(live[rec]), rec); err != nil {
				t.Fatalf("step %d: delete %d: %v", step, rec, err)
			}
			delete(live, rec)
		}
	}
	if int(tr.Len()) != len(live) {
		t.Fatalf("Len = %d, live = %d", tr.Len(), len(live))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	all, _, _ := tr.Search(geom.NewRect(geom.Point{-1e9, -1e9}, geom.Point{1e9, 1e9}))
	if len(all) != len(live) {
		t.Fatalf("search returned %d, want %d", len(all), len(live))
	}
}

func BenchmarkInsert6D(b *testing.B) {
	mgr := storage.NewManager(storage.Options{PageSize: 4096})
	tr, err := New(mgr, 6)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := randPoints(rng, b.N, 6)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tr.InsertPoint(pts[i], int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch6D(b *testing.B) {
	mgr := storage.NewManager(storage.Options{PageSize: 4096})
	tr, _ := New(mgr, 6)
	rng := rand.New(rand.NewSource(2))
	for i, p := range randPoints(rng, 10000, 6) {
		tr.InsertPoint(p, int64(i))
	}
	queries := randPoints(rng, 64, 6)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := geom.PointRect(queries[i%len(queries)]).Expand(2)
		if _, _, err := tr.Search(q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNN1MinMaxDistPruning(t *testing.T) {
	// k=1 uses MINMAXDIST upper bounds; answers stay exact and the search
	// touches no more nodes than a full traversal.
	rng := rand.New(rand.NewSource(21))
	tr := newTestTree(t, 3, 512)
	pts := randPoints(rng, 2000, 3)
	for i, p := range pts {
		if err := tr.InsertPoint(p, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 20; trial++ {
		q := randPoints(rng, 1, 3)[0]
		got, st, err := tr.NearestNeighbors(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		best, bestD := int64(-1), math.Inf(1)
		for i, p := range pts {
			if d := geom.Dist(p, q); d < bestD {
				best, bestD = int64(i), d
			}
		}
		if len(got) != 1 || math.Abs(got[0].Dist-bestD) > 1e-9 {
			t.Fatalf("trial %d: NN %v, want rec %d dist %v", trial, got, best, bestD)
		}
		_, full, _ := tr.Search(geom.NewRect(
			geom.Point{-1e9, -1e9, -1e9}, geom.Point{1e9, 1e9, 1e9}))
		if st.NodeAccesses > full.NodeAccesses/2 {
			t.Errorf("trial %d: NN visited %d of %d nodes; no pruning", trial, st.NodeAccesses, full.NodeAccesses)
		}
	}
}
