package rtree

// OccupancyBuckets is the number of fill-fraction buckets in a level's
// occupancy histogram: bucket i counts nodes with fill in
// [i/10, (i+1)/10), the last bucket including exactly-full nodes.
const OccupancyBuckets = 10

// LevelHealth aggregates the quantities the R*-tree split heuristics
// optimize (Beckmann et al., SIGMOD '90 §4.1) over one tree level.
// Margin, overlap, and dead space are the criteria ChooseSubtree and
// the split algorithm minimize; reading them back per level shows how
// well the tree realized them — and hence predicts Fig. 5-style disk
// accesses, since every overlapping sibling rectangle is an extra
// subtree a range search must descend.
type LevelHealth struct {
	// Level counts from the root: 0 = root, Height-1 = leaves.
	Level int `json:"level"`
	// Nodes and Entries are the node and entry totals on this level.
	Nodes   int `json:"nodes"`
	Entries int `json:"entries"`
	// Occupancy is a histogram of node fill fraction (entries / M) in
	// OccupancyBuckets equal buckets; underfilled nodes (legal only for
	// the root) land in the low buckets.
	Occupancy [OccupancyBuckets]int `json:"occupancy"`
	// AvgFill is Entries / (Nodes * M): the level's mean fill fraction.
	AvgFill float64 `json:"avg_fill"`
	// MarginSum and AvgMargin total/average the node MBR margins
	// (perimeter sums) — the split-axis selection criterion.
	MarginSum float64 `json:"margin_sum"`
	AvgMargin float64 `json:"avg_margin"`
	// Overlap sums the pairwise overlap area between sibling entries
	// within each node — the split-distribution criterion. Zero means
	// a point query descends exactly one path through this level.
	Overlap float64 `json:"overlap"`
	// CoveredArea sums the node MBR areas; EntryArea sums the areas of
	// the entries inside them. CoveredArea - EntryArea is dead space:
	// volume a search must visit that can contain no answers.
	CoveredArea float64 `json:"covered_area"`
	EntryArea   float64 `json:"entry_area"`
	DeadSpace   float64 `json:"dead_space"`
}

// TreeHealth is the read-only health report of a whole tree.
type TreeHealth struct {
	Dim     int           `json:"dim"`
	Height  int           `json:"height"`
	Size    int64         `json:"size"` // record count (leaf entries)
	MinFill int           `json:"min_fill"`
	MaxFill int           `json:"max_fill"`
	Nodes   int           `json:"nodes"`
	Entries int           `json:"entries"`
	Levels  []LevelHealth `json:"levels"` // root first
}

// Health walks the tree read-only and computes per-level statistics.
// It costs one page read per node (buffered reads count as hits), so on
// a warm pool it is cheap enough to run on demand.
func (t *Tree) Health() (*TreeHealth, error) {
	h := &TreeHealth{
		Dim:     t.dim,
		Height:  t.height,
		Size:    t.size,
		MinFill: t.minE,
		MaxFill: t.maxE,
		Levels:  make([]LevelHealth, t.height),
	}
	for i := range h.Levels {
		h.Levels[i].Level = i
	}
	err := t.Visit(func(n *Node, level int) error {
		// Visit levels count 1 = leaf upward; reports read root-down.
		lh := &h.Levels[t.height-level]
		lh.Nodes++
		lh.Entries += len(n.Entries)
		fill := float64(len(n.Entries)) / float64(t.maxE)
		b := int(fill * OccupancyBuckets)
		if b >= OccupancyBuckets {
			b = OccupancyBuckets - 1
		}
		lh.Occupancy[b]++
		if len(n.Entries) == 0 {
			return nil // empty root
		}
		mbr := n.mbr()
		lh.MarginSum += mbr.Margin()
		lh.CoveredArea += mbr.Area()
		for i, e := range n.Entries {
			lh.EntryArea += e.Rect.Area()
			for j := i + 1; j < len(n.Entries); j++ {
				lh.Overlap += e.Rect.OverlapArea(n.Entries[j].Rect)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range h.Levels {
		lh := &h.Levels[i]
		h.Nodes += lh.Nodes
		h.Entries += lh.Entries
		if lh.Nodes > 0 {
			lh.AvgFill = float64(lh.Entries) / float64(lh.Nodes*t.maxE)
			lh.AvgMargin = lh.MarginSum / float64(lh.Nodes)
		}
		if lh.DeadSpace = lh.CoveredArea - lh.EntryArea; lh.DeadSpace < 0 {
			// Overlapping entries can sum past the node MBR; dead space
			// is a lower-bound diagnostic, clamp at zero.
			lh.DeadSpace = 0
		}
	}
	return h, nil
}
