package rtree

import (
	"fmt"
	"math"
	"sort"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// BulkItem is one record for bulk loading.
type BulkItem struct {
	Rect geom.Rect
	Rec  int64
}

// BulkLoad builds a tree from all items at once with Sort-Tile-Recursive
// packing (Leutenegger et al.): items are recursively sliced along each
// dimension by the center of their rectangles so every leaf holds ~M
// entries, then upper levels are packed the same way. The resulting tree
// has near-full nodes — fewer pages and fewer disk accesses per query
// than one grown by repeated insertion — and supports the same searches,
// inserts and deletes afterwards.
func BulkLoad(mgr *storage.Manager, dim int, items []BulkItem) (*Tree, error) {
	maxE := MaxEntries(mgr.PageSize(), dim)
	if maxE < 4 {
		return nil, fmt.Errorf("rtree: page size %d too small for dimension %d (capacity %d)", mgr.PageSize(), dim, maxE)
	}
	t := &Tree{
		mgr:  mgr,
		dim:  dim,
		maxE: maxE,
		minE: max(2, int(minFillFraction*float64(maxE))),
		buf:  make([]byte, mgr.PageSize()),
	}
	metaID, err := mgr.Alloc()
	if err != nil {
		return nil, err
	}
	t.metaID = metaID

	if len(items) == 0 {
		rootID, err := mgr.Alloc()
		if err != nil {
			return nil, err
		}
		t.root = rootID
		t.height = 1
		if err := t.store(&Node{ID: rootID, Leaf: true}); err != nil {
			return nil, err
		}
		return t, t.writeMeta()
	}

	for _, it := range items {
		if it.Rect.Dim() != dim {
			return nil, fmt.Errorf("rtree: bulk item of dimension %d in %d-dimensional tree", it.Rect.Dim(), dim)
		}
	}

	// Pack the leaf level.
	entries := make([]Entry, len(items))
	for i, it := range items {
		entries[i] = Entry{Rect: it.Rect.Clone(), Rec: it.Rec}
	}
	level, err := t.packLevel(entries, true)
	if err != nil {
		return nil, err
	}
	t.height = 1
	// Pack upper levels until one node remains.
	for len(level) > 1 {
		level, err = t.packLevel(level, false)
		if err != nil {
			return nil, err
		}
		t.height++
	}
	t.root = level[0].Child
	t.size = int64(len(items))
	return t, t.writeMeta()
}

// packLevel groups entries into nodes with STR tiling and returns the
// parent entries (MBR + child page) for the next level.
func (t *Tree) packLevel(entries []Entry, leaf bool) ([]Entry, error) {
	groups := strTile(entries, t.maxE, t.dim, 0)
	parents := make([]Entry, 0, len(groups))
	for _, g := range groups {
		id, err := t.mgr.Alloc()
		if err != nil {
			return nil, err
		}
		n := &Node{ID: id, Leaf: leaf, Entries: g}
		if err := t.store(n); err != nil {
			return nil, err
		}
		parents = append(parents, Entry{Rect: n.mbr(), Child: id})
	}
	return parents, nil
}

// strTile recursively slices entries into groups of at most capacity,
// sorting by rectangle centers one dimension at a time.
func strTile(entries []Entry, capacity, dims, d int) [][]Entry {
	if len(entries) <= capacity {
		return [][]Entry{entries}
	}
	if d == dims-1 {
		// Final dimension: sort and chop into evenly-sized runs (even
		// distribution keeps every node above the minimum fill, which a
		// plain capacity-sized chop would violate with a small remainder).
		sortByCenter(entries, d)
		groups := int(math.Ceil(float64(len(entries)) / float64(capacity)))
		per := int(math.Ceil(float64(len(entries)) / float64(groups)))
		var out [][]Entry
		for start := 0; start < len(entries); start += per {
			end := start + per
			if end > len(entries) {
				end = len(entries)
			}
			out = append(out, entries[start:end])
		}
		return out
	}
	// Number of leaves still needed and slabs along this dimension.
	leaves := int(math.Ceil(float64(len(entries)) / float64(capacity)))
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(dims-d))))
	if slabs < 1 {
		slabs = 1
	}
	sortByCenter(entries, d)
	per := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	var out [][]Entry
	for start := 0; start < len(entries); start += per {
		end := start + per
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, strTile(entries[start:end], capacity, dims, d+1)...)
	}
	return out
}

func sortByCenter(entries []Entry, d int) {
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].Rect.Lo[d]+entries[i].Rect.Hi[d] < entries[j].Rect.Lo[d]+entries[j].Rect.Hi[d]
	})
}
