// Package rtree implements an R*-tree (Beckmann, Kriegel, Schneider,
// Seeger, SIGMOD '90) over the paged storage manager: ChooseSubtree with
// overlap-minimizing leaf choice, margin-driven split-axis selection,
// overlap-driven split-distribution selection, and forced reinsertion.
// Every node occupies exactly one storage page, so storage-level read
// counts are the paper's "number of disk accesses".
//
// The tree stores axis-aligned rectangles (points are degenerate
// rectangles) with an int64 record id per leaf entry. It is the substrate
// of the ST-index and MT-index algorithms, which drive their own
// traversals via Root, Load, and Node; plain range, nearest-neighbor, and
// spatial self-join searches are provided here.
package rtree

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// Entry is one slot of a node: a bounding rectangle plus either a child
// page (internal nodes) or a record id (leaves).
type Entry struct {
	Rect  geom.Rect
	Child storage.PageID // internal nodes only
	Rec   int64          // leaf nodes only
}

// Node is the decoded form of one tree page.
type Node struct {
	ID      storage.PageID
	Leaf    bool
	Entries []Entry

	// flatLo is the leaf-major layout of decoded nodes: every entry's
	// Rect.Lo is a subslice of this one contiguous block
	// (flatLo[i*dim : (i+1)*dim] is entry i's low corner). For the point
	// entries of a feature index the low corner IS the feature vector,
	// so a scan over the node's candidates walks one flat []float64
	// instead of chasing per-entry slice headers. Nil for nodes built in
	// memory (insert/split paths), non-nil after decodeNode.
	flatLo []float64
}

// FlatLo returns the node's contiguous low-corner block (leaf-major
// layout), or nil when the node was not produced by decoding a page.
// Entry i's low corner is FlatLo()[i*dim : (i+1)*dim].
func (n *Node) FlatLo() []float64 { return n.flatLo }

// mbr returns the minimum bounding rectangle of all entries of the node.
func (n *Node) mbr() geom.Rect {
	rects := make([]geom.Rect, len(n.Entries))
	for i, e := range n.Entries {
		rects[i] = e.Rect
	}
	return geom.MBRRects(rects)
}

// Page layout (little endian):
//
//	offset 0: leaf flag (1 byte)
//	offset 1: reserved (1 byte)
//	offset 2: entry count (uint16)
//	offset 4: CRC32 (IEEE) of the used page region with this field zeroed
//	offset 8: entries, each 16*dim + 8 bytes:
//	    dim float64 lows, dim float64 highs, uint64 ref
//	    (ref is the child page id for internal nodes, the record id for
//	    leaves)
const nodeHeaderSize = 8

// entrySize returns the encoded size of one entry for the given
// dimensionality.
func entrySize(dim int) int { return 16*dim + 8 }

// MaxEntries returns the node capacity for the given page size and
// dimensionality.
func MaxEntries(pageSize, dim int) int {
	return (pageSize - nodeHeaderSize) / entrySize(dim)
}

// encodeNode serializes n into buf (one page).
func encodeNode(n *Node, dim int, buf []byte) {
	if n.Leaf {
		buf[0] = 1
	} else {
		buf[0] = 0
	}
	buf[1] = 0
	binary.LittleEndian.PutUint16(buf[2:], uint16(len(n.Entries)))
	binary.LittleEndian.PutUint32(buf[4:], 0)
	off := nodeHeaderSize
	for _, e := range n.Entries {
		for i := 0; i < dim; i++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Lo[i]))
			off += 8
		}
		for i := 0; i < dim; i++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Hi[i]))
			off += 8
		}
		var ref uint64
		if n.Leaf {
			ref = uint64(e.Rec)
		} else {
			ref = uint64(e.Child)
		}
		binary.LittleEndian.PutUint64(buf[off:], ref)
		off += 8
	}
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[:off]))
}

// decodeNode deserializes a page into a Node.
func decodeNode(id storage.PageID, dim int, buf []byte) (*Node, error) {
	n := &Node{ID: id, Leaf: buf[0] == 1}
	count := int(binary.LittleEndian.Uint16(buf[2:]))
	used := nodeHeaderSize + count*entrySize(dim)
	if used > len(buf) {
		return nil, fmt.Errorf("rtree: corrupt node %d: count %d exceeds page", id, count)
	}
	stored := binary.LittleEndian.Uint32(buf[4:])
	binary.LittleEndian.PutUint32(buf[4:], 0)
	sum := crc32.ChecksumIEEE(buf[:used])
	binary.LittleEndian.PutUint32(buf[4:], stored)
	if sum != stored {
		return nil, fmt.Errorf("rtree: node %d fails its checksum", id)
	}
	n.Entries = make([]Entry, count)
	// Leaf-major layout: all low corners share one contiguous backing
	// array (likewise the highs), so the node decodes with two float
	// allocations instead of two per entry and a scan over the entries'
	// feature vectors is a linear walk of one block.
	los := make([]float64, count*dim)
	his := make([]float64, count*dim)
	n.flatLo = los
	off := nodeHeaderSize
	for j := 0; j < count; j++ {
		lo := geom.Point(los[j*dim : (j+1)*dim : (j+1)*dim])
		hi := geom.Point(his[j*dim : (j+1)*dim : (j+1)*dim])
		for i := 0; i < dim; i++ {
			lo[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for i := 0; i < dim; i++ {
			hi[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		ref := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		e := Entry{Rect: geom.Rect{Lo: lo, Hi: hi}}
		if n.Leaf {
			e.Rec = int64(ref)
		} else {
			e.Child = storage.PageID(ref)
		}
		n.Entries[j] = e
	}
	return n, nil
}

// Meta page layout (page allocated first, id recorded by the caller):
//
//	offset 0: magic (4 bytes "RST1")
//	offset 4: dim (uint32)
//	offset 8: root page (uint32)
//	offset 12: height (uint32)
//	offset 16: size (uint64)
var metaMagic = [4]byte{'R', 'S', 'T', '1'}

func encodeMeta(buf []byte, dim int, root storage.PageID, height int, size int64) {
	copy(buf, metaMagic[:])
	binary.LittleEndian.PutUint32(buf[4:], uint32(dim))
	binary.LittleEndian.PutUint32(buf[8:], uint32(root))
	binary.LittleEndian.PutUint32(buf[12:], uint32(height))
	binary.LittleEndian.PutUint64(buf[16:], uint64(size))
}

func decodeMeta(buf []byte) (dim int, root storage.PageID, height int, size int64, err error) {
	if [4]byte(buf[:4]) != metaMagic {
		return 0, 0, 0, 0, fmt.Errorf("rtree: bad meta page magic %q", buf[:4])
	}
	dim = int(binary.LittleEndian.Uint32(buf[4:]))
	root = storage.PageID(binary.LittleEndian.Uint32(buf[8:]))
	height = int(binary.LittleEndian.Uint32(buf[12:]))
	size = int64(binary.LittleEndian.Uint64(buf[16:]))
	// A corrupt meta page must be rejected here with a descriptive
	// error, not surface as a panic (or an absurd allocation) in the
	// first traversal that trusts the fields.
	if dim < 1 || dim > 1024 {
		return 0, 0, 0, 0, fmt.Errorf("rtree: corrupt meta page: implausible dimension %d", dim)
	}
	if root == storage.NilPage {
		return 0, 0, 0, 0, fmt.Errorf("rtree: corrupt meta page: nil root page")
	}
	if height < 1 || height > 64 {
		return 0, 0, 0, 0, fmt.Errorf("rtree: corrupt meta page: implausible height %d", height)
	}
	if size < 0 {
		return 0, 0, 0, 0, fmt.Errorf("rtree: corrupt meta page: negative size %d", size)
	}
	return dim, root, height, size, nil
}
