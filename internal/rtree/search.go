package rtree

import (
	"container/heap"
	"math"
	"sort"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// SearchStats reports the work done by one traversal.
type SearchStats struct {
	// NodeAccesses counts every node fetched, all levels (the paper's
	// DA_all).
	NodeAccesses int
	// LeafAccesses counts leaf nodes fetched (the paper's DA_leaf).
	LeafAccesses int
	// Pruned counts internal entries not descended into: rejected by the
	// query-rectangle intersection in Search, or by the MINDIST lower
	// bound in NearestNeighbors. It measures the filtering power the
	// paper's disk-access figures come from.
	Pruned int
}

// Search returns the record ids of all entries whose rectangles intersect
// query, plus traversal statistics.
func (t *Tree) Search(query geom.Rect) ([]int64, SearchStats, error) {
	var out []int64
	var st SearchStats
	err := t.walk(t.root, &st, func(n *Node) (bool, error) { return true, nil }, func(e Entry) error {
		if e.Rect.Intersects(query) {
			out = append(out, e.Rec)
		}
		return nil
	}, func(e Entry) bool { return e.Rect.Intersects(query) })
	return out, st, err
}

// walk traverses the subtree at id. descend decides whether to expand an
// internal entry; emit is called for each leaf entry (after its own check
// in the caller-supplied closure).
func (t *Tree) walk(id storage.PageID, st *SearchStats, visit func(*Node) (bool, error), emit func(Entry) error, descend func(Entry) bool) error {
	n, err := t.Load(id)
	if err != nil {
		return err
	}
	st.NodeAccesses++
	if n.Leaf {
		st.LeafAccesses++
	}
	if ok, err := visit(n); err != nil || !ok {
		return err
	}
	for _, e := range n.Entries {
		if n.Leaf {
			if err := emit(e); err != nil {
				return err
			}
		} else if descend(e) {
			if err := t.walk(e.Child, st, visit, emit, descend); err != nil {
				return err
			}
		} else {
			st.Pruned++
		}
	}
	return nil
}

// Neighbor is one nearest-neighbor result.
type Neighbor struct {
	Rec  int64
	Dist float64
}

// nnItem is a priority-queue element for best-first NN search.
type nnItem struct {
	dist  float64
	isRec bool
	rec   int64
	child storage.PageID
	rect  geom.Rect
}

type nnQueue []nnItem

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnItem)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// NearestNeighbors returns the k entries nearest to p by MINDIST-ordered
// best-first search (Roussopoulos et al. refined to the standard
// priority-queue formulation; MINDIST is an exact lower bound, so results
// are exact). For k = 1, MINMAXDIST supplies an early upper bound on the
// answer — every non-empty rectangle guarantees an object within that
// distance — pruning siblings before any leaf is resolved.
func (t *Tree) NearestNeighbors(p geom.Point, k int) ([]Neighbor, SearchStats, error) {
	var st SearchStats
	if k <= 0 {
		return nil, st, nil
	}
	q := &nnQueue{{dist: 0, child: t.root}}
	var out []Neighbor
	// upper bounds the k-th nearest distance. MINMAXDIST guarantees one
	// object per rectangle, so it can only tighten the k = 1 search.
	upper := math.Inf(1)
	worst := func() float64 {
		if len(out) == k {
			return math.Min(out[len(out)-1].Dist, upper)
		}
		return upper
	}
	for q.Len() > 0 {
		it := heap.Pop(q).(nnItem)
		if len(out) == k && it.dist > worst() {
			break
		}
		if it.isRec {
			if len(out) < k {
				out = append(out, Neighbor{Rec: it.rec, Dist: it.dist})
				sort.Slice(out, func(i, j int) bool { return out[i].Dist < out[j].Dist })
			}
			continue
		}
		n, err := t.Load(it.child)
		if err != nil {
			return nil, st, err
		}
		st.NodeAccesses++
		if n.Leaf {
			st.LeafAccesses++
		}
		for _, e := range n.Entries {
			d := e.Rect.MinDist(p)
			if (len(out) == k && d > worst()) || d > upper {
				if !n.Leaf {
					st.Pruned++
				}
				continue
			}
			if n.Leaf {
				if k == 1 && d < upper {
					upper = d // a point entry IS an object at distance d
				}
				heap.Push(q, nnItem{dist: d, isRec: true, rec: e.Rec})
			} else {
				if k == 1 {
					if mm := e.Rect.MinMaxDist(p); mm < upper {
						upper = mm
					}
				}
				heap.Push(q, nnItem{dist: d, child: e.Child})
			}
		}
	}
	return out, st, nil
}

// JoinPair is one result of a spatial self-join.
type JoinPair struct {
	RecA, RecB int64
}

// SelfJoin returns all pairs of records whose rectangles come within eps of
// each other (RectMinDist <= eps), using a synchronized depth-first
// traversal of the tree against itself. Pairs are reported once with
// RecA < RecB; the pair (r, r) is not reported.
func (t *Tree) SelfJoin(eps float64) ([]JoinPair, SearchStats, error) {
	var st SearchStats
	var out []JoinPair
	err := t.joinNodes(t.root, t.root, eps, &st, &out, func(a, b Entry) bool {
		return geom.RectMinDist(a.Rect, b.Rect) <= eps
	})
	return out, st, err
}

// joinNodes joins the subtrees rooted at a and b. Loading is counted per
// visit; when a == b the node is loaded once.
func (t *Tree) joinNodes(a, b storage.PageID, eps float64, st *SearchStats, out *[]JoinPair, match func(a, b Entry) bool) error {
	na, err := t.Load(a)
	if err != nil {
		return err
	}
	st.NodeAccesses++
	if na.Leaf {
		st.LeafAccesses++
	}
	var nb *Node
	if a == b {
		nb = na
	} else {
		nb, err = t.Load(b)
		if err != nil {
			return err
		}
		st.NodeAccesses++
		if nb.Leaf {
			st.LeafAccesses++
		}
	}
	switch {
	case na.Leaf && nb.Leaf:
		for i, ea := range na.Entries {
			jStart := 0
			if a == b {
				jStart = i + 1
			}
			for _, eb := range nb.Entries[jStart:] {
				if ea.Rec == eb.Rec {
					continue
				}
				if match(ea, eb) {
					ra, rb := ea.Rec, eb.Rec
					if ra > rb {
						ra, rb = rb, ra
					}
					*out = append(*out, JoinPair{RecA: ra, RecB: rb})
				}
			}
		}
	case !na.Leaf && !nb.Leaf:
		for i, ea := range na.Entries {
			jStart := 0
			if a == b {
				jStart = i // include (i, i): records inside one subtree join among themselves
			}
			for _, eb := range nb.Entries[jStart:] {
				if geom.RectMinDist(ea.Rect, eb.Rect) <= eps {
					if err := t.joinNodes(ea.Child, eb.Child, eps, st, out, match); err != nil {
						return err
					}
				}
			}
		}
	case na.Leaf && !nb.Leaf:
		for _, eb := range nb.Entries {
			if err := t.joinNodes(a, eb.Child, eps, st, out, match); err != nil {
				return err
			}
		}
	default: // !na.Leaf && nb.Leaf
		for _, ea := range na.Entries {
			if err := t.joinNodes(ea.Child, b, eps, st, out, match); err != nil {
				return err
			}
		}
	}
	return nil
}

// Visit walks the whole tree in depth-first order, calling fn for every
// node. It is used by integrity checks and debugging tools.
func (t *Tree) Visit(fn func(n *Node, level int) error) error {
	return t.visit(t.root, t.height, fn)
}

func (t *Tree) visit(id storage.PageID, level int, fn func(n *Node, level int) error) error {
	n, err := t.Load(id)
	if err != nil {
		return err
	}
	if err := fn(n, level); err != nil {
		return err
	}
	if n.Leaf {
		return nil
	}
	for _, e := range n.Entries {
		if err := t.visit(e.Child, level-1, fn); err != nil {
			return err
		}
	}
	return nil
}

// CheckInvariants verifies structural invariants of the tree: every
// internal entry's rectangle equals the MBR of its child, nodes respect
// capacity bounds (root exempt from the minimum), all leaves are at the
// same level, and the record count matches Len. It returns a descriptive
// error on the first violation.
func (t *Tree) CheckInvariants() error {
	var records int64
	var problem error
	err := t.Visit(func(n *Node, level int) error {
		if problem != nil {
			return problem
		}
		if n.Leaf && level != 1 {
			problem = errLeafLevel(n.ID, level)
			return problem
		}
		if !n.Leaf && level == 1 {
			problem = errLeafLevel(n.ID, level)
			return problem
		}
		if n.ID != t.root {
			if len(n.Entries) < t.minE || len(n.Entries) > t.maxE {
				problem = errCapacity(n.ID, len(n.Entries), t.minE, t.maxE)
				return problem
			}
		} else if len(n.Entries) > t.maxE {
			problem = errCapacity(n.ID, len(n.Entries), 0, t.maxE)
			return problem
		}
		if n.Leaf {
			records += int64(len(n.Entries))
			return nil
		}
		for _, e := range n.Entries {
			child, err := t.Load(e.Child)
			if err != nil {
				return err
			}
			cm := child.mbr()
			if !rectsEqual(e.Rect, cm) {
				problem = errMBR(n.ID, e.Child)
				return problem
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if records != t.size {
		return errCount(records, t.size)
	}
	return nil
}

func rectsEqual(a, b geom.Rect) bool {
	for i := range a.Lo {
		if a.Lo[i] != b.Lo[i] || a.Hi[i] != b.Hi[i] {
			return false
		}
	}
	return true
}
