package rtree

import (
	"errors"
	"fmt"

	"tsq/internal/geom"
	"tsq/internal/storage"
)

// ErrNotFound is returned by Delete when no matching entry exists.
var ErrNotFound = errors.New("rtree: entry not found")

func errLeafLevel(id storage.PageID, level int) error {
	return fmt.Errorf("rtree: node %d is a leaf iff level==1, got level %d", id, level)
}

func errCapacity(id storage.PageID, n, lo, hi int) error {
	return fmt.Errorf("rtree: node %d has %d entries, want [%d, %d]", id, n, lo, hi)
}

func errMBR(parent, child storage.PageID) error {
	return fmt.Errorf("rtree: entry for child %d in node %d is not the child's MBR", child, parent)
}

func errCount(got, want int64) error {
	return fmt.Errorf("rtree: tree holds %d records, meta says %d", got, want)
}

// Delete removes the entry with the given rectangle and record id. It
// returns ErrNotFound if no such entry exists.
func (t *Tree) Delete(r geom.Rect, rec int64) error {
	path, idx, err := t.findLeaf(t.root, t.height, r, rec)
	if err != nil {
		return err
	}
	leaf := path[len(path)-1].node
	leaf.Entries = append(leaf.Entries[:idx], leaf.Entries[idx+1:]...)

	// Condense: walk the path bottom-up; underfull non-root nodes are
	// removed and their entries queued for reinsertion at their level.
	type orphan struct {
		entries []Entry
		level   int
	}
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i].node
		level := t.height - i
		parent := path[i-1].node
		if len(n.Entries) < t.minE {
			orphans = append(orphans, orphan{entries: n.Entries, level: level})
			parent.Entries = append(parent.Entries[:path[i].entryIdx], parent.Entries[path[i].entryIdx+1:]...)
			// Re-index siblings' stored positions in the remaining path is
			// unnecessary: only this branch of the path is walked.
			t.mgr.Free(n.ID)
		} else {
			if err := t.store(n); err != nil {
				return err
			}
			parent.Entries[path[i].entryIdx].Rect = n.mbr()
		}
	}
	if err := t.store(path[0].node); err != nil {
		return err
	}

	// Shrink the root while it is an internal node with a single child.
	for {
		root, err := t.Load(t.root)
		if err != nil {
			return err
		}
		if root.Leaf || len(root.Entries) != 1 {
			break
		}
		old := t.root
		t.root = root.Entries[0].Child
		t.height--
		t.mgr.Free(old)
	}

	// Reinsert orphaned entries at their original levels.
	for _, o := range orphans {
		for _, e := range o.entries {
			level := o.level
			if level > t.height {
				// The tree shrank below the orphan's level; reinsert the
				// subtree's records instead.
				if err := t.reinsertSubtree(e, level); err != nil {
					return err
				}
				continue
			}
			overflowed := make(map[int]bool)
			if err := t.insertAtLevel(e, level, overflowed); err != nil {
				return err
			}
		}
	}

	t.size--
	return t.writeMeta()
}

// reinsertSubtree reinserts every leaf record under entry e (which lived at
// the given level) one by one. Used only in the rare case where root
// shrinkage removed the level an orphan belonged to.
func (t *Tree) reinsertSubtree(e Entry, level int) error {
	if level == 1 {
		overflowed := make(map[int]bool)
		return t.insertAtLevel(e, 1, overflowed)
	}
	n, err := t.Load(e.Child)
	if err != nil {
		return err
	}
	t.mgr.Free(n.ID)
	for _, child := range n.Entries {
		if err := t.reinsertSubtree(child, level-1); err != nil {
			return err
		}
	}
	return nil
}

// findLeaf locates the leaf containing (r, rec), returning the path to it
// and the entry index inside the leaf.
func (t *Tree) findLeaf(id storage.PageID, level int, r geom.Rect, rec int64) ([]pathElem, int, error) {
	n, err := t.Load(id)
	if err != nil {
		return nil, 0, err
	}
	if n.Leaf {
		for i, e := range n.Entries {
			if e.Rec == rec && rectsEqual(e.Rect, r) {
				return []pathElem{{node: n, entryIdx: -1}}, i, nil
			}
		}
		return nil, 0, ErrNotFound
	}
	for i, e := range n.Entries {
		if !e.Rect.ContainsRect(r) {
			continue
		}
		sub, idx, err := t.findLeaf(e.Child, level-1, r, rec)
		if err == nil {
			path := append([]pathElem{{node: n, entryIdx: -1}}, sub...)
			path[1].entryIdx = i
			return path, idx, nil
		}
		if !errors.Is(err, ErrNotFound) {
			return nil, 0, err
		}
	}
	return nil, 0, ErrNotFound
}
