package rtree

import (
	"math"
	"sort"

	"tsq/internal/geom"
)

// splitEntries partitions an overfull entry slice into two groups using the
// R*-tree split algorithm: ChooseSplitAxis picks the axis minimizing the
// total margin over all distributions; ChooseSplitIndex picks the
// distribution on that axis with minimum overlap, ties broken by minimum
// combined area. Each group receives at least minE entries.
func splitEntries(entries []Entry, minE, dim int) (left, right []Entry) {
	n := len(entries)
	bestAxis, bestByLo := chooseSplitAxis(entries, minE, dim)

	// Sort along the chosen axis, by lower then by upper bound; the R*
	// algorithm considers both sortings, but evaluating distributions on
	// the winning sort order is the standard simplification: we consider
	// both and pick the better distribution overall.
	sorted := make([]Entry, n)
	copy(sorted, entries)
	sortEntries(sorted, bestAxis, bestByLo)

	splitAt := chooseSplitIndex(sorted, minE)
	left = append([]Entry(nil), sorted[:splitAt]...)
	right = append([]Entry(nil), sorted[splitAt:]...)
	return left, right
}

// chooseSplitAxis returns the axis (and whether to sort by lower bound)
// with the minimum sum of margins over all legal distributions.
func chooseSplitAxis(entries []Entry, minE, dim int) (axis int, byLo bool) {
	bestMargin := math.Inf(1)
	axis, byLo = 0, true
	work := make([]Entry, len(entries))
	for a := 0; a < dim; a++ {
		for _, lo := range []bool{true, false} {
			copy(work, entries)
			sortEntries(work, a, lo)
			m := marginSum(work, minE)
			if m < bestMargin {
				bestMargin = m
				axis, byLo = a, lo
			}
		}
	}
	return axis, byLo
}

// marginSum sums the margins of both groups over every legal distribution
// of the sorted entries.
func marginSum(sorted []Entry, minE int) float64 {
	n := len(sorted)
	prefix, suffix := groupMBRs(sorted)
	var sum float64
	for k := minE; k <= n-minE; k++ {
		sum += prefix[k-1].Margin() + suffix[k].Margin()
	}
	return sum
}

// chooseSplitIndex returns the split position (entries before it go left)
// minimizing group overlap, ties broken by total area.
func chooseSplitIndex(sorted []Entry, minE int) int {
	n := len(sorted)
	prefix, suffix := groupMBRs(sorted)
	best := minE
	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	for k := minE; k <= n-minE; k++ {
		l, r := prefix[k-1], suffix[k]
		overlap := l.OverlapArea(r)
		area := l.Area() + r.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			best, bestOverlap, bestArea = k, overlap, area
		}
	}
	return best
}

// groupMBRs returns prefix[i] = MBR(sorted[0..i]) and
// suffix[i] = MBR(sorted[i..n-1]).
func groupMBRs(sorted []Entry) (prefix, suffix []geom.Rect) {
	n := len(sorted)
	prefix = make([]geom.Rect, n)
	suffix = make([]geom.Rect, n)
	prefix[0] = sorted[0].Rect.Clone()
	for i := 1; i < n; i++ {
		prefix[i] = prefix[i-1].Union(sorted[i].Rect)
	}
	suffix[n-1] = sorted[n-1].Rect.Clone()
	for i := n - 2; i >= 0; i-- {
		suffix[i] = suffix[i+1].Union(sorted[i].Rect)
	}
	return prefix, suffix
}

// sortEntries sorts entries along the axis by lower (byLo) or upper bound,
// with the other bound as tie-breaker.
func sortEntries(entries []Entry, axis int, byLo bool) {
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i].Rect, entries[j].Rect
		if byLo {
			if a.Lo[axis] != b.Lo[axis] {
				return a.Lo[axis] < b.Lo[axis]
			}
			return a.Hi[axis] < b.Hi[axis]
		}
		if a.Hi[axis] != b.Hi[axis] {
			return a.Hi[axis] < b.Hi[axis]
		}
		return a.Lo[axis] < b.Lo[axis]
	})
}
