package query

import "testing"

// FuzzParsePipeline checks the pipeline parser never panics and that any
// accepted pipeline can be flattened into a consistent transformation set.
func FuzzParsePipeline(f *testing.F) {
	f.Add("shift(0..10) | mv(1..40)")
	f.Add("mv(5)")
	f.Add("inverted(mv(2..4)) | momentum")
	f.Add("scale(1.5, 2)")
	f.Add("id|id|id")
	f.Add("mv(..)")
	f.Add("mv((3))")
	f.Add("inverted(inverted(shift(1)))")
	f.Fuzz(func(t *testing.T, input string) {
		const n = 32
		p, err := ParsePipeline(input, n)
		if err != nil {
			return
		}
		flat := p.Flatten()
		if len(flat) != p.Size() {
			t.Fatalf("Flatten produced %d transforms, Size says %d", len(flat), p.Size())
		}
		for _, tr := range flat {
			if tr.N() != n {
				t.Fatalf("transform %q built for n=%d, want %d", tr.Name, tr.N(), n)
			}
		}
	})
}
