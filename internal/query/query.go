// Package query implements the query-expression layer of Sec. 3.3:
// pipelines of transformation sets ("an s-day shift followed by an m-day
// moving average, for s = 0..10 and m = 1..40"), their rewriting into a
// single transformation set via composition (Eqs. 10-11), threshold
// translation between cross-correlation and Euclidean distance (Eq. 9),
// and a small text syntax for describing pipelines on the command line.
package query

import (
	"fmt"
	"strconv"
	"strings"

	"tsq/internal/series"
	"tsq/internal/transform"
)

// Step is one stage of a pipeline: a set of alternative transformations.
type Step []transform.Transform

// Pipeline is a sequence of steps applied left to right: the first step
// is applied to the series first.
type Pipeline []Step

// Flatten rewrites the pipeline into a single transformation set by
// composing every combination across steps (Eq. 11). An empty pipeline
// flattens to nil; the result size is the product of the step sizes.
func (p Pipeline) Flatten() []transform.Transform {
	if len(p) == 0 {
		return nil
	}
	acc := []transform.Transform(p[0])
	for _, step := range p[1:] {
		acc = transform.ComposeSets(step, acc)
	}
	return acc
}

// Size returns the number of transformations Flatten would produce.
func (p Pipeline) Size() int {
	if len(p) == 0 {
		return 0
	}
	n := 1
	for _, s := range p {
		n *= len(s)
	}
	return n
}

// Threshold is a similarity threshold given either as a Euclidean
// distance on normal forms or as a cross-correlation; the two are
// interchangeable through Eq. 9.
type Threshold struct {
	distance    float64
	correlation float64
	isCorr      bool
}

// DistanceThreshold returns a threshold fixed in distance units.
func DistanceThreshold(d float64) Threshold { return Threshold{distance: d} }

// CorrelationThreshold returns a threshold fixed as a minimum
// cross-correlation in [-1, 1].
func CorrelationThreshold(rho float64) Threshold {
	return Threshold{correlation: rho, isCorr: true}
}

// Epsilon resolves the threshold to a Euclidean distance for series of
// length n.
func (t Threshold) Epsilon(n int) float64 {
	if t.isCorr {
		return series.DistanceForCorrelation(n, t.correlation)
	}
	return t.distance
}

// Correlation resolves the threshold to a correlation for series of
// length n.
func (t Threshold) Correlation(n int) float64 {
	if t.isCorr {
		return t.correlation
	}
	return series.CorrelationForDistance(n, t.distance)
}

// String renders the threshold.
func (t Threshold) String() string {
	if t.isCorr {
		return fmt.Sprintf("rho >= %g", t.correlation)
	}
	return fmt.Sprintf("dist <= %g", t.distance)
}

// ParsePipeline parses the text syntax for pipelines. Steps are separated
// by '|' and applied left to right. Each step is one of:
//
//	id                 identity
//	mv(m)              m-day moving average
//	mv(a..b)           moving averages for windows a..b
//	shift(s)           s-day time shift (exact, circular)
//	shift(a..b)        shifts a..b
//	momentum           lag-1 momentum
//	momentum(a..b)     momenta with lags a..b
//	invert             multiply by -1
//	reverse            time reversal
//	ema(a)             exponential moving average, 0 < a <= 1
//	wma(w1,w2,...)     weighted moving average with trailing weights
//	scale(x)           scale by factor x > 0
//	scale(x,y,...)     scales by each listed factor
//	inverted(STEP)     STEP plus the inverted version of each member
//
// Example: "shift(0..10) | mv(1..40)" is the Sec. 3.3 example and
// flattens to 11*40 = 440 transformations.
func ParsePipeline(text string, n int) (Pipeline, error) {
	var p Pipeline
	for _, part := range strings.Split(text, "|") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("query: empty step in %q", text)
		}
		step, err := parseStep(part, n)
		if err != nil {
			return nil, err
		}
		p = append(p, step)
	}
	return p, nil
}

func parseStep(s string, n int) (Step, error) {
	name, args, err := splitCall(s)
	if err != nil {
		return nil, err
	}
	switch name {
	case "id":
		if args != "" {
			return nil, fmt.Errorf("query: id takes no arguments")
		}
		return Step{transform.Identity(n)}, nil
	case "momentum":
		if args == "" {
			return Step{transform.Momentum(n)}, nil
		}
		lo, hi, err := parseRange(args)
		if err != nil {
			return nil, fmt.Errorf("query: momentum: %v", err)
		}
		if lo < 1 || hi >= n {
			return nil, fmt.Errorf("query: momentum lag range [%d, %d] out of [1, %d)", lo, hi, n)
		}
		var step Step
		for k := lo; k <= hi; k++ {
			step = append(step, transform.MomentumLag(n, k))
		}
		return step, nil
	case "invert":
		if args != "" {
			return nil, fmt.Errorf("query: invert takes no arguments")
		}
		return Step{transform.Invert(n)}, nil
	case "reverse":
		if args != "" {
			return nil, fmt.Errorf("query: reverse takes no arguments")
		}
		return Step{transform.Reverse(n)}, nil
	case "ema":
		a, err := strconv.ParseFloat(strings.TrimSpace(args), 64)
		if err != nil {
			return nil, fmt.Errorf("query: ema: %v", err)
		}
		if a <= 0 || a > 1 {
			return nil, fmt.Errorf("query: ema alpha %v out of (0, 1]", a)
		}
		return Step{transform.EMA(n, a)}, nil
	case "wma":
		if args == "" {
			return nil, fmt.Errorf("query: wma needs weights")
		}
		var weights []float64
		var sum float64
		for _, a := range strings.Split(args, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
			if err != nil {
				return nil, fmt.Errorf("query: wma weight %q: %v", a, err)
			}
			weights = append(weights, w)
			sum += w
		}
		if len(weights) > n || sum == 0 {
			return nil, fmt.Errorf("query: wma with %d weights summing to %v", len(weights), sum)
		}
		return Step{transform.WeightedMovingAverage(n, weights)}, nil
	case "mv":
		lo, hi, err := parseRange(args)
		if err != nil {
			return nil, fmt.Errorf("query: mv: %v", err)
		}
		if lo < 1 || hi > n {
			return nil, fmt.Errorf("query: mv window range [%d, %d] out of [1, %d]", lo, hi, n)
		}
		return Step(transform.MovingAverageSet(n, lo, hi)), nil
	case "shift":
		lo, hi, err := parseRange(args)
		if err != nil {
			return nil, fmt.Errorf("query: shift: %v", err)
		}
		return Step(transform.TimeShiftSet(n, lo, hi)), nil
	case "scale":
		if args == "" {
			return nil, fmt.Errorf("query: scale needs at least one factor")
		}
		var factors []float64
		for _, a := range strings.Split(args, ",") {
			f, err := strconv.ParseFloat(strings.TrimSpace(a), 64)
			if err != nil {
				return nil, fmt.Errorf("query: scale factor %q: %v", a, err)
			}
			if f <= 0 {
				return nil, fmt.Errorf("query: scale factor %v must be positive", f)
			}
			factors = append(factors, f)
		}
		return Step(transform.ScaleSet(n, factors)), nil
	case "inverted":
		inner, err := parseStep(args, n)
		if err != nil {
			return nil, err
		}
		return Step(transform.WithInverted(inner)), nil
	default:
		return nil, fmt.Errorf("query: unknown step %q", name)
	}
}

// splitCall splits "name(args)" or bare "name" into its parts.
func splitCall(s string) (name, args string, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 {
		return s, "", nil
	}
	if !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("query: unbalanced parentheses in %q", s)
	}
	return strings.TrimSpace(s[:open]), strings.TrimSpace(s[open+1 : len(s)-1]), nil
}

// parseRange parses "a..b" or a single "a" (meaning a..a).
func parseRange(s string) (lo, hi int, err error) {
	if s == "" {
		return 0, 0, fmt.Errorf("missing argument")
	}
	if idx := strings.Index(s, ".."); idx >= 0 {
		lo, err = strconv.Atoi(strings.TrimSpace(s[:idx]))
		if err != nil {
			return 0, 0, err
		}
		hi, err = strconv.Atoi(strings.TrimSpace(s[idx+2:]))
		if err != nil {
			return 0, 0, err
		}
		if hi < lo {
			return 0, 0, fmt.Errorf("empty range %d..%d", lo, hi)
		}
		return lo, hi, nil
	}
	lo, err = strconv.Atoi(strings.TrimSpace(s))
	return lo, lo, err
}
