package query

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"tsq/internal/dft"
	"tsq/internal/series"
	"tsq/internal/transform"
)

func TestFlattenSizesAndSemantics(t *testing.T) {
	n := 64
	p := Pipeline{
		Step(transform.TimeShiftSet(n, 0, 2)),
		Step(transform.MovingAverageSet(n, 1, 4)),
	}
	if p.Size() != 12 {
		t.Fatalf("Size = %d, want 12", p.Size())
	}
	flat := p.Flatten()
	if len(flat) != 12 {
		t.Fatalf("|Flatten| = %d, want 12", len(flat))
	}
	// Semantics: an element equals the sequential application.
	rng := rand.New(rand.NewSource(1))
	s := make(series.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	X := dft.TransformReal(s)
	shift1 := transform.TimeShift(n, 1)
	mv3 := transform.MovingAverage(n, 3)
	want := mv3.ApplySpectrum(shift1.ApplySpectrum(X))
	found := false
	for _, tr := range flat {
		if tr.Name == "mv3(shift1)" {
			found = true
			if dft.Distance(tr.ApplySpectrum(X), want) > 1e-8 {
				t.Error("flattened transform diverges from sequential application")
			}
		}
	}
	if !found {
		t.Error("mv3(shift1) not present in flattened set")
	}
}

func TestFlattenEmpty(t *testing.T) {
	if got := (Pipeline{}).Flatten(); got != nil {
		t.Errorf("empty pipeline flattened to %v", got)
	}
	if got := (Pipeline{}).Size(); got != 0 {
		t.Errorf("empty pipeline size %d", got)
	}
}

func TestThresholds(t *testing.T) {
	d := DistanceThreshold(3)
	if d.Epsilon(128) != 3 {
		t.Errorf("distance epsilon = %v", d.Epsilon(128))
	}
	c := CorrelationThreshold(0.96)
	if got := c.Epsilon(128); math.Abs(got-series.DistanceForCorrelation(128, 0.96)) > 1e-12 {
		t.Errorf("correlation epsilon = %v", got)
	}
	// Round trip both directions.
	if got := c.Correlation(128); got != 0.96 {
		t.Errorf("correlation = %v", got)
	}
	if got := d.Correlation(128); math.Abs(got-series.CorrelationForDistance(128, 3)) > 1e-12 {
		t.Errorf("distance->correlation = %v", got)
	}
	if !strings.Contains(c.String(), "0.96") || !strings.Contains(d.String(), "3") {
		t.Errorf("String: %q %q", c.String(), d.String())
	}
}

func TestParsePipelineSec33Example(t *testing.T) {
	p, err := ParsePipeline("shift(0..10) | mv(1..40)", 128)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 11*40 {
		t.Errorf("Size = %d, want 440", p.Size())
	}
}

func TestParsePipelineAtoms(t *testing.T) {
	n := 64
	cases := []struct {
		text string
		size int
	}{
		{"id", 1},
		{"momentum", 1},
		{"invert", 1},
		{"mv(5)", 1},
		{"mv(3..7)", 5},
		{"shift(2)", 1},
		{"shift(-1..1)", 3},
		{"scale(2)", 1},
		{"scale(2, 3.5, 10)", 3},
		{"inverted(mv(4..6))", 6},
		{"momentum | shift(0..2)", 3},
	}
	for _, tc := range cases {
		p, err := ParsePipeline(tc.text, n)
		if err != nil {
			t.Errorf("%q: %v", tc.text, err)
			continue
		}
		if p.Size() != tc.size {
			t.Errorf("%q: size %d, want %d", tc.text, p.Size(), tc.size)
		}
		if got := len(p.Flatten()); got != tc.size {
			t.Errorf("%q: flatten size %d, want %d", tc.text, got, tc.size)
		}
	}
}

func TestParsePipelineErrors(t *testing.T) {
	n := 32
	for _, text := range []string{
		"",
		"| mv(3)",
		"unknown",
		"mv",
		"mv()",
		"mv(0)",
		"mv(1..99)",
		"mv(5..3)",
		"mv(a..b)",
		"shift(1..x)",
		"scale()",
		"scale(0)",
		"scale(-1)",
		"scale(abc)",
		"id(3)",
		"invert(2)",
		"mv(3",
		"inverted(nope)",
	} {
		if _, err := ParsePipeline(text, n); err == nil {
			t.Errorf("%q: expected error", text)
		}
	}
}

func TestParsedMomentumMatchesTimeDomain(t *testing.T) {
	n := 32
	p, err := ParsePipeline("momentum", n)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	s := make(series.Series, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	got := p.Flatten()[0].ApplySeries(s)
	want := series.CircularMomentum(s)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("parsed momentum diverges at %d", i)
		}
	}
}

func TestParseNewAtoms(t *testing.T) {
	n := 64
	for _, tc := range []struct {
		text string
		size int
	}{
		{"reverse", 1},
		{"ema(0.3)", 1},
		{"wma(3, 2, 1)", 1},
		{"reverse | mv(2..4)", 3},
		{"ema(0.5) | shift(0..1)", 2},
	} {
		p, err := ParsePipeline(tc.text, n)
		if err != nil {
			t.Errorf("%q: %v", tc.text, err)
			continue
		}
		if p.Size() != tc.size {
			t.Errorf("%q: size %d, want %d", tc.text, p.Size(), tc.size)
		}
	}
	for _, text := range []string{
		"reverse(1)", "ema()", "ema(0)", "ema(2)", "ema(x)",
		"wma()", "wma(1,-1)", "wma(a)",
	} {
		if _, err := ParsePipeline(text, n); err == nil {
			t.Errorf("%q: expected error", text)
		}
	}
}

func TestParseMomentumLag(t *testing.T) {
	p, err := ParsePipeline("momentum(1..5)", 64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 5 {
		t.Errorf("size %d", p.Size())
	}
	if _, err := ParsePipeline("momentum(0)", 64); err == nil {
		t.Error("lag 0 accepted")
	}
	if _, err := ParsePipeline("momentum(64)", 64); err == nil {
		t.Error("lag n accepted")
	}
}
