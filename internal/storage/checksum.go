package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// ChecksumTrailerSize is the number of bytes ChecksumBackend reserves at
// the physical end of every page for its trailer.
const ChecksumTrailerSize = 8

// checksumMarker tags a page trailer as written by ChecksumBackend. It
// distinguishes "checksum mismatch" (bit rot, torn write) from "no
// checksum was ever written here" (a page from before the format gained
// trailers, or a never-written page) in error reports.
var checksumMarker = [4]byte{'T', 'S', 'Q', 'C'}

// castagnoli is the CRC32C polynomial table. CRC32C has hardware support
// on amd64/arm64, so the per-page cost is a few ns.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumError reports a page whose contents failed checksum
// verification on read. It unwraps to nothing: a checksum failure is a
// terminal diagnosis, not a transport error.
type ChecksumError struct {
	Page PageID
	// Missing is true when the trailer marker is absent entirely — the
	// page was never written through a ChecksumBackend — as opposed to
	// present but mismatched (corruption of a once-valid page).
	Missing bool
}

func (e *ChecksumError) Error() string {
	if e.Missing {
		return fmt.Sprintf("storage: page %d has no checksum trailer (torn or never-written page)", e.Page)
	}
	return fmt.Sprintf("storage: page %d failed checksum verification", e.Page)
}

// ChecksumBackend wraps a Backend, storing a CRC32C trailer in the last
// ChecksumTrailerSize bytes of every physical page and verifying it on
// every read. Callers see a logical page that is trailer-sized smaller
// than the physical page: LogicalPageSize() = physical − 8. The checksum
// covers the logical payload plus the page id, so a structurally valid
// page read back from the wrong offset (a misdirected write) also fails
// verification.
//
// Trailer layout (little endian): marker "TSQC" at offset L, CRC32C at
// offset L+4, where L is the logical page size.
type ChecksumBackend struct {
	inner    Backend
	physSize int
	logSize  int
	scratch  sync.Pool // *[]byte of physSize, reused across reads/writes
}

// NewChecksumBackend wraps inner, whose pages are physPageSize bytes.
// The wrapper exposes pages of physPageSize − ChecksumTrailerSize bytes.
func NewChecksumBackend(inner Backend, physPageSize int) *ChecksumBackend {
	b := &ChecksumBackend{
		inner:    inner,
		physSize: physPageSize,
		logSize:  physPageSize - ChecksumTrailerSize,
	}
	b.scratch.New = func() any {
		s := make([]byte, physPageSize)
		return &s
	}
	return b
}

// LogicalPageSize returns the page size callers of this backend see.
func (b *ChecksumBackend) LogicalPageSize() int { return b.logSize }

// pageCRC computes the trailer checksum for page id with payload data.
func pageCRC(id PageID, data []byte) uint32 {
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], uint32(id))
	return crc32.Update(crc32.Checksum(data, castagnoli), castagnoli, idb[:])
}

// verify checks the trailer of the physical page image phys for page id.
func (b *ChecksumBackend) verify(id PageID, phys []byte) error {
	trailer := phys[b.logSize:b.physSize]
	if [4]byte(trailer[:4]) != checksumMarker {
		return &ChecksumError{Page: id, Missing: true}
	}
	if binary.LittleEndian.Uint32(trailer[4:]) != pageCRC(id, phys[:b.logSize]) {
		return &ChecksumError{Page: id}
	}
	return nil
}

// ReadPage implements Backend: the physical page is read, its trailer
// verified, and the logical payload copied into buf.
func (b *ChecksumBackend) ReadPage(id PageID, buf []byte) error {
	sp := b.scratch.Get().(*[]byte)
	phys := *sp
	defer b.scratch.Put(sp)
	if err := b.inner.ReadPage(id, phys); err != nil {
		return err
	}
	if err := b.verify(id, phys); err != nil {
		return err
	}
	copy(buf[:b.logSize], phys)
	return nil
}

// ReadRun implements RunReader when the inner backend does: one inner
// run read, then per-page verification and payload extraction. When the
// inner backend lacks RunReader the manager never calls this (the
// interface assertion on the manager side sees through to this wrapper,
// so ReadRun falls back to page-at-a-time inner reads).
func (b *ChecksumBackend) ReadRun(first PageID, n int, buf []byte) error {
	rr, ok := b.inner.(RunReader)
	if !ok {
		for i := 0; i < n; i++ {
			if err := b.ReadPage(first+PageID(i), buf[i*b.logSize:(i+1)*b.logSize]); err != nil {
				return err
			}
		}
		return nil
	}
	phys := make([]byte, n*b.physSize)
	if err := rr.ReadRun(first, n, phys); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		page := phys[i*b.physSize : (i+1)*b.physSize]
		if err := b.verify(first+PageID(i), page); err != nil {
			return err
		}
		copy(buf[i*b.logSize:(i+1)*b.logSize], page)
	}
	return nil
}

// WritePage implements Backend: the logical payload is framed with its
// trailer and written as one physical page.
func (b *ChecksumBackend) WritePage(id PageID, buf []byte) error {
	sp := b.scratch.Get().(*[]byte)
	phys := *sp
	defer b.scratch.Put(sp)
	copy(phys, buf[:b.logSize])
	copy(phys[b.logSize:], checksumMarker[:])
	binary.LittleEndian.PutUint32(phys[b.logSize+4:], pageCRC(id, phys[:b.logSize]))
	return b.inner.WritePage(id, phys)
}

// Grow implements Backend.
func (b *ChecksumBackend) Grow(id PageID) error { return b.inner.Grow(id) }

// Sync implements Syncer by delegating when the inner backend supports it.
func (b *ChecksumBackend) Sync() error {
	if s, ok := b.inner.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Close implements Backend.
func (b *ChecksumBackend) Close() error { return b.inner.Close() }
