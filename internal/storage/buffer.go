package storage

import "container/list"

// bufferPool is a simple LRU page cache. It is not safe for concurrent use
// on its own; the Manager serializes access to it.
type bufferPool struct {
	capacity int
	pageSize int
	lru      *list.List // front = most recently used; values are *frame
	frames   map[PageID]*list.Element
}

type frame struct {
	id   PageID
	data []byte
}

func newBufferPool(capacity, pageSize int) *bufferPool {
	return &bufferPool{
		capacity: capacity,
		pageSize: pageSize,
		lru:      list.New(),
		frames:   make(map[PageID]*list.Element, capacity),
	}
}

// get returns the cached contents of id, if present, and marks it recently
// used. The returned slice must not be retained.
func (b *bufferPool) get(id PageID) ([]byte, bool) {
	el, ok := b.frames[id]
	if !ok {
		return nil, false
	}
	b.lru.MoveToFront(el)
	return el.Value.(*frame).data, true
}

// put caches the contents of id, evicting the least recently used page if
// the pool is full.
func (b *bufferPool) put(id PageID, data []byte) {
	if el, ok := b.frames[id]; ok {
		copy(el.Value.(*frame).data, data)
		b.lru.MoveToFront(el)
		return
	}
	if b.lru.Len() >= b.capacity {
		oldest := b.lru.Back()
		if oldest != nil {
			b.lru.Remove(oldest)
			delete(b.frames, oldest.Value.(*frame).id)
		}
	}
	f := &frame{id: id, data: make([]byte, b.pageSize)}
	copy(f.data, data)
	b.frames[id] = b.lru.PushFront(f)
}

// evict drops page id from the pool if present.
func (b *bufferPool) evict(id PageID) {
	if el, ok := b.frames[id]; ok {
		b.lru.Remove(el)
		delete(b.frames, id)
	}
}

// reset empties the pool.
func (b *bufferPool) reset() {
	b.lru.Init()
	b.frames = make(map[PageID]*list.Element, b.capacity)
}
