package storage

import (
	"container/list"
	"sync"
)

// maxPoolShards bounds the lock striping of the buffer pool. The actual
// shard count never exceeds the pool capacity, so every shard owns at
// least one frame.
const maxPoolShards = 16

// bufferPool is a simple LRU page cache — one shard of the striped pool.
// It is not safe for concurrent use on its own; the owning poolShard's
// mutex serializes access to it.
type bufferPool struct {
	capacity int
	pageSize int
	lru      *list.List // front = most recently used; values are *frame
	frames   map[PageID]*list.Element
}

type frame struct {
	id   PageID
	data []byte
}

func newBufferPool(capacity, pageSize int) *bufferPool {
	return &bufferPool{
		capacity: capacity,
		pageSize: pageSize,
		lru:      list.New(),
		frames:   make(map[PageID]*list.Element, capacity),
	}
}

// get returns the cached contents of id, if present, and marks it recently
// used. The returned slice must not be retained.
func (b *bufferPool) get(id PageID) ([]byte, bool) {
	el, ok := b.frames[id]
	if !ok {
		return nil, false
	}
	b.lru.MoveToFront(el)
	return el.Value.(*frame).data, true
}

// put caches the contents of id, evicting the least recently used page if
// the pool is full.
func (b *bufferPool) put(id PageID, data []byte) {
	if el, ok := b.frames[id]; ok {
		copy(el.Value.(*frame).data, data)
		b.lru.MoveToFront(el)
		return
	}
	if b.lru.Len() >= b.capacity {
		oldest := b.lru.Back()
		if oldest != nil {
			b.lru.Remove(oldest)
			delete(b.frames, oldest.Value.(*frame).id)
		}
	}
	f := &frame{id: id, data: make([]byte, b.pageSize)}
	copy(f.data, data)
	b.frames[id] = b.lru.PushFront(f)
}

// evict drops page id from the pool if present.
func (b *bufferPool) evict(id PageID) {
	if el, ok := b.frames[id]; ok {
		b.lru.Remove(el)
		delete(b.frames, id)
	}
}

// reset empties the pool.
func (b *bufferPool) reset() {
	b.lru.Init()
	b.frames = make(map[PageID]*list.Element, b.capacity)
}

// shardedPool is the Manager's buffer pool, lock-striped by PageID: shard
// i owns every page with id % shards == i, under its own mutex and its own
// LRU list, so concurrent readers of distinct pages rarely contend. The
// shard of a page is a pure function of its id and each shard's LRU is
// deterministic, so a serial access sequence produces the same hit/miss
// (and therefore disk-access) counts on every run.
type shardedPool struct {
	shards []poolShard
}

type poolShard struct {
	mu   sync.Mutex
	pool *bufferPool
	_    [40]byte // pad to keep hot shard locks off one cache line
}

// newShardedPool distributes capacity pages over min(maxPoolShards,
// capacity) shards; the first capacity%shards shards hold one extra frame.
func newShardedPool(capacity, pageSize int) *shardedPool {
	n := maxPoolShards
	if n > capacity {
		n = capacity
	}
	s := &shardedPool{shards: make([]poolShard, n)}
	base, extra := capacity/n, capacity%n
	for i := range s.shards {
		c := base
		if i < extra {
			c++
		}
		s.shards[i].pool = newBufferPool(c, pageSize)
	}
	return s
}

func (s *shardedPool) shard(id PageID) *poolShard {
	return &s.shards[uint(id)%uint(len(s.shards))]
}

// get copies the cached contents of id into dst and reports whether the
// page was present. The copy happens under the shard lock so a concurrent
// put of the same page cannot tear it.
func (s *shardedPool) get(id PageID, dst []byte) bool {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	data, ok := sh.pool.get(id)
	if ok {
		copy(dst, data)
	}
	return ok
}

// put caches the contents of id.
func (s *shardedPool) put(id PageID, data []byte) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.pool.put(id, data)
}

// evict drops page id from its shard if present.
func (s *shardedPool) evict(id PageID) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.pool.evict(id)
}

// reset empties every shard.
func (s *shardedPool) reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.pool.reset()
		sh.mu.Unlock()
	}
}
