package storage

import (
	"bytes"
	"testing"
)

func TestStagedBackendCommitAndAbort(t *testing.T) {
	const ps = 64
	inner := NewMemBackend(ps)
	sb := NewStagedBackend(inner)
	m := NewManager(Options{PageSize: ps, Backend: sb})

	a, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	base := bytes.Repeat([]byte{1}, ps)
	if err := m.Write(a, base); err != nil {
		t.Fatal(err)
	}

	// Staged write: visible through the manager, invisible to inner.
	sb.Begin()
	staged := bytes.Repeat([]byte{2}, ps)
	if err := m.Write(a, staged); err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc() // grown inside the transaction
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(b, staged); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ps)
	if err := m.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, staged) {
		t.Fatal("manager read does not see the staged write")
	}
	if err := inner.ReadPage(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, base) {
		t.Fatal("staged write leaked to the inner backend before commit")
	}
	images := sb.Staged()
	if len(images) != 2 || images[0].ID != a || images[1].ID != b {
		t.Fatalf("Staged() = %v pages, want [%d %d]", len(images), a, b)
	}
	if err := sb.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := inner.ReadPage(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, staged) {
		t.Fatal("commit did not flush the overlay")
	}

	// Aborted write: inner keeps the committed contents; the caller
	// gets the staged and grown ids back for eviction and freeing.
	sb.Begin()
	if err := m.Write(a, base); err != nil {
		t.Fatal(err)
	}
	c, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	ids, grown := sb.Abort()
	if len(ids) != 1 || ids[0] != a {
		t.Fatalf("Abort staged ids = %v, want [%d]", ids, a)
	}
	if len(grown) != 1 || grown[0] != c {
		t.Fatalf("Abort grown ids = %v, want [%d]", grown, c)
	}
	m.Evict(a)
	m.Free(c)
	if err := m.Read(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, staged) {
		t.Fatal("abort did not preserve the committed contents")
	}

	// Outside a transaction writes pass straight through.
	if err := m.Write(a, base); err != nil {
		t.Fatal(err)
	}
	if err := inner.ReadPage(a, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, base) {
		t.Fatal("pass-through write did not reach the inner backend")
	}
}

func TestStagedBackendRunReadSeesOverlay(t *testing.T) {
	const ps = 64
	inner := NewMemBackend(ps)
	sb := NewStagedBackend(inner)
	m := NewManager(Options{PageSize: ps, Backend: sb})
	var ids []PageID
	for i := 0; i < 4; i++ {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if err := m.Write(id, bytes.Repeat([]byte{byte(i)}, ps)); err != nil {
			t.Fatal(err)
		}
	}
	sb.Begin()
	if err := m.Write(ids[2], bytes.Repeat([]byte{0xAA}, ps)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4*ps)
	if err := m.ReadRunCtx(nil, ids[0], 4, buf); err != nil {
		t.Fatal(err)
	}
	if buf[2*ps] != 0xAA {
		t.Fatal("run read did not serve the staged image")
	}
	if buf[ps] != 1 || buf[3*ps] != 3 {
		t.Fatal("run read corrupted unstaged pages")
	}
	if _, _ = sb.Abort(); sb.Active() {
		t.Fatal("Abort left the transaction active")
	}
}
