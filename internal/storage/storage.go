// Package storage implements the paged storage manager underneath the
// R*-tree: fixed-size pages allocated from a memory- or file-backed page
// file, a pin-counted LRU buffer pool, and the disk-access counters the
// paper's evaluation reports. One index node occupies exactly one page, so
// "number of disk accesses" in the experiments is the number of page
// fetches that miss the buffer (with the default zero-capacity pool, every
// fetch — the convention the paper's numbers use).
package storage

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// PageID identifies a page within a page file. The zero value is never a
// valid page, so it can be used as a nil reference.
type PageID uint32

// NilPage is the invalid page id.
const NilPage PageID = 0

// DefaultPageSize is the page size used when none is specified.
const DefaultPageSize = 4096

// Stats counts the physical operations performed by a Manager.
type Stats struct {
	Reads      int64 // page reads that reached the backend
	Writes     int64 // page writes that reached the backend
	Allocs     int64 // pages allocated
	Frees      int64 // pages freed
	Hits       int64 // buffer pool hits (reads served without backend access)
	Prefetched int64 // pages delivered by the tail of a batched run read

	// IOErrors counts backend page operations that failed; the error is
	// always surfaced to the caller, never hidden. ChecksumFailures is
	// the subset of those rejected by the per-page checksum.
	IOErrors         int64
	ChecksumFailures int64
}

// Backend is the raw page store under the manager.
type Backend interface {
	// ReadPage fills buf with the contents of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf as the contents of page id.
	WritePage(id PageID, buf []byte) error
	// Grow ensures the backend can hold page id.
	Grow(id PageID) error
	// Close releases backend resources.
	Close() error
}

// Syncer is an optional Backend capability: flushing buffered writes to
// stable storage. Backends without it (MemBackend) have nothing to sync.
type Syncer interface {
	// Sync flushes all completed writes to durable storage.
	Sync() error
}

// RunReader is an optional Backend capability: fetching a run of n
// consecutive pages with one call. On a file this is a single
// sequential pread — one seek plus streaming — which is why the
// manager counts a run as one Read plus n-1 Prefetched rather than n
// random Reads. Backends without it are served page-at-a-time.
type RunReader interface {
	// ReadRun fills buf (at least n pages long) with the contents of
	// pages first..first+n-1.
	ReadRun(first PageID, n int, buf []byte) error
}

// MemBackend keeps pages in memory. It is the default backend; it gives
// the experiments a deterministic, I/O-noise-free substrate while the
// manager still counts every page access. Reads share an RWMutex so any
// number of readers proceed in parallel; writes and growth are exclusive.
type MemBackend struct {
	mu       sync.RWMutex
	pageSize int
	pages    map[PageID][]byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend(pageSize int) *MemBackend {
	return &MemBackend{pageSize: pageSize, pages: make(map[PageID][]byte)}
}

// ReadPage implements Backend.
func (m *MemBackend) ReadPage(id PageID, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("storage: read of unallocated page %d", id)
	}
	copy(buf, p)
	return nil
}

// WritePage implements Backend.
func (m *MemBackend) WritePage(id PageID, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pages[id]
	if !ok {
		return fmt.Errorf("storage: write to unallocated page %d", id)
	}
	copy(p, buf)
	return nil
}

// ReadRun implements RunReader: the whole run is copied under one
// shared-lock acquisition.
func (m *MemBackend) ReadRun(first PageID, n int, buf []byte) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	for i := 0; i < n; i++ {
		p, ok := m.pages[first+PageID(i)]
		if !ok {
			return fmt.Errorf("storage: read of unallocated page %d", first+PageID(i))
		}
		copy(buf[i*m.pageSize:(i+1)*m.pageSize], p)
	}
	return nil
}

// Grow implements Backend.
func (m *MemBackend) Grow(id PageID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pages[id]; !ok {
		m.pages[id] = make([]byte, m.pageSize)
	}
	return nil
}

// Close implements Backend.
func (m *MemBackend) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = nil
	return nil
}

// FileBackend stores pages in an operating-system file, page i at offset
// i*pageSize.
type FileBackend struct {
	pageSize int
	f        *os.File
}

// NewFileBackend opens (creating if needed) the page file at path.
func NewFileBackend(path string, pageSize int) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open page file: %w", err)
	}
	return &FileBackend{pageSize: pageSize, f: f}, nil
}

// ReadPage implements Backend. A read past the end of the file — or one
// that returns fewer than pageSize bytes — is an error, not a zero page:
// a truncated or torn file must surface as corruption, never as silently
// zero-filled data.
func (b *FileBackend) ReadPage(id PageID, buf []byte) error {
	n, err := b.f.ReadAt(buf[:b.pageSize], int64(id)*int64(b.pageSize))
	if n == b.pageSize {
		return nil
	}
	if err == nil || errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("storage: read page %d: got %d of %d bytes: %w", id, n, b.pageSize, err)
}

// ReadRun implements RunReader: one positional read covering the whole
// run, so consecutive pages cost one system call and one disk seek. Like
// ReadPage, the run must be complete: a short read is an error.
func (b *FileBackend) ReadRun(first PageID, n int, buf []byte) error {
	want := n * b.pageSize
	got, err := b.f.ReadAt(buf[:want], int64(first)*int64(b.pageSize))
	if got == want {
		return nil
	}
	if err == nil || errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("storage: read run of pages [%d,%d): got %d of %d bytes: %w",
		first, first+PageID(n), got, want, err)
}

// WritePage implements Backend.
func (b *FileBackend) WritePage(id PageID, buf []byte) error {
	if _, err := b.f.WriteAt(buf[:b.pageSize], int64(id)*int64(b.pageSize)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Grow implements Backend.
func (b *FileBackend) Grow(id PageID) error {
	return b.f.Truncate((int64(id) + 1) * int64(b.pageSize))
}

// Sync implements Syncer: it flushes completed writes to stable storage.
func (b *FileBackend) Sync() error {
	if err := b.f.Sync(); err != nil {
		return fmt.Errorf("storage: sync page file: %w", err)
	}
	return nil
}

// Close implements Backend. Buffered writes are flushed to stable
// storage first, so a database closed cleanly survives a crash that
// follows immediately.
func (b *FileBackend) Close() error {
	syncErr := b.Sync()
	if err := b.f.Close(); err != nil {
		return fmt.Errorf("storage: close page file: %w", err)
	}
	return syncErr
}

// Manager allocates pages and mediates reads and writes through an
// optional buffer pool, counting every backend access.
//
// A Manager is safe for concurrent use: Read and Write touch only a
// lock-striped pool shard, an atomic counter, and the backend (MemBackend
// reads take a shared lock; FileBackend reads are positional pread calls),
// so parallel readers of distinct pages do not serialize. Alloc and Free
// share one allocator mutex. The counters tally exactly the backend
// operations performed — under a serial workload they are deterministic
// and identical to the former single-mutex implementation.
type Manager struct {
	mu       sync.Mutex // allocator state (next, freeList) only
	backend  Backend
	pageSize int
	next     PageID
	freeList []PageID
	pool     *shardedPool
	stats    managerStats
}

// managerStats is the Manager's live counter block; Stats() snapshots it.
type managerStats struct {
	reads            atomic.Int64
	writes           atomic.Int64
	allocs           atomic.Int64
	frees            atomic.Int64
	hits             atomic.Int64
	prefetched       atomic.Int64
	ioErrors         atomic.Int64
	checksumFailures atomic.Int64
}

// global tallies the same operations across every Manager in the
// process. Unlike per-manager stats it is never reset by ResetStats, so
// it stays monotonic — the property registry samplers need to derive
// windowed rates (QPS of page reads, buffer hit ratio) without holding
// a reference to each open manager. The cost is one extra atomic add
// per already-atomic counter bump.
var global managerStats

// GlobalStats snapshots the process-wide counters.
func GlobalStats() Stats {
	return Stats{
		Reads:            global.reads.Load(),
		Writes:           global.writes.Load(),
		Allocs:           global.allocs.Load(),
		Frees:            global.frees.Load(),
		Hits:             global.hits.Load(),
		Prefetched:       global.prefetched.Load(),
		IOErrors:         global.ioErrors.Load(),
		ChecksumFailures: global.checksumFailures.Load(),
	}
}

// Options configures a Manager.
type Options struct {
	// PageSize is the page size in bytes; DefaultPageSize if zero.
	PageSize int
	// BufferPages is the buffer pool capacity in pages. Zero disables
	// buffering: every fetch is counted as (and performed by) a backend
	// read, which is the convention the paper's disk-access counts use.
	BufferPages int
	// Backend overrides the default in-memory backend.
	Backend Backend
	// FirstUnallocated sets the next page id the allocator hands out.
	// Required when attaching to an existing page file, or freshly
	// allocated ids would collide with (and overwrite) live pages.
	// Zero means a fresh file (allocation starts at page 1).
	FirstUnallocated PageID
}

// NewManager returns a manager with the given options.
func NewManager(opts Options) *Manager {
	if opts.PageSize == 0 {
		opts.PageSize = DefaultPageSize
	}
	if opts.Backend == nil {
		opts.Backend = NewMemBackend(opts.PageSize)
	}
	m := &Manager{
		backend:  opts.Backend,
		pageSize: opts.PageSize,
		next:     1, // page 0 is NilPage
	}
	if opts.FirstUnallocated > m.next {
		m.next = opts.FirstUnallocated
	}
	if opts.BufferPages > 0 {
		m.pool = newShardedPool(opts.BufferPages, opts.PageSize)
	}
	return m
}

// PageSize returns the page size in bytes.
func (m *Manager) PageSize() int { return m.pageSize }

// Alloc returns a fresh (or recycled) page id.
func (m *Manager) Alloc() (PageID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var id PageID
	if n := len(m.freeList); n > 0 {
		id = m.freeList[n-1]
		m.freeList = m.freeList[:n-1]
	} else {
		id = m.next
		m.next++
	}
	if err := m.backend.Grow(id); err != nil {
		return NilPage, err
	}
	m.stats.allocs.Add(1)
	global.allocs.Add(1)
	return id, nil
}

// Free returns a page to the allocator. The page's contents become
// undefined. The caller must guarantee no concurrent reader still uses
// the page (the index holds no reference to a page before freeing it).
// Freeing NilPage is a no-op: page 0 is never a valid allocation, and
// putting it on the free list would make a later Alloc hand out NilPage
// as a live page.
func (m *Manager) Free(id PageID) {
	if id == NilPage {
		return
	}
	if m.pool != nil {
		m.pool.evict(id)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.freeList = append(m.freeList, id)
	m.stats.frees.Add(1)
	global.frees.Add(1)
}

// Evict drops page id from the buffer pool, if one is configured,
// without freeing the page. Callers use it when the backing store was
// rolled back underneath the manager (an aborted staged transaction)
// and a cached copy would otherwise serve the discarded contents.
func (m *Manager) Evict(id PageID) {
	if m.pool != nil {
		m.pool.evict(id)
	}
}

// QueryIO attributes page traffic to one logical query. A pointer is
// carried in a context.Context (WithQueryIO) past the R*-tree and heap
// file down to the manager, which adds every read it serves for that
// context to the struct as well as to its global counters. Counters are
// atomic so one QueryIO may be shared by the parallel probes of a
// single query.
type QueryIO struct {
	Reads      atomic.Int64 // page reads that reached the backend
	Hits       atomic.Int64 // reads served by the buffer pool
	Prefetched atomic.Int64 // pages delivered by the tail of a run read
}

// Total returns all page fetches attributed so far
// (reads + hits + prefetched).
func (q *QueryIO) Total() int64 { return q.Reads.Load() + q.Hits.Load() + q.Prefetched.Load() }

type queryIOKey struct{}

// WithQueryIO attaches qio to ctx for per-query read attribution.
func WithQueryIO(ctx context.Context, qio *QueryIO) context.Context {
	return context.WithValue(ctx, queryIOKey{}, qio)
}

// QueryIOFrom returns the QueryIO in ctx, or nil. A nil ctx is allowed
// (hot paths with attribution disabled pass nil rather than building a
// context).
func QueryIOFrom(ctx context.Context) *QueryIO {
	if ctx == nil {
		return nil
	}
	qio, _ := ctx.Value(queryIOKey{}).(*QueryIO)
	return qio
}

// Read copies the contents of page id into buf (which must be at least one
// page long), going through the buffer pool when one is configured.
func (m *Manager) Read(id PageID, buf []byte) error {
	return m.ReadCtx(nil, id, buf)
}

// ReadCtx is Read with per-query attribution: when ctx carries a
// QueryIO, the fetch is counted there as well as in the global stats.
// The lookup is one context value access per page read and allocates
// nothing, so the path is identical to Read when attribution is off.
func (m *Manager) ReadCtx(ctx context.Context, id PageID, buf []byte) error {
	if id == NilPage {
		return errors.New("storage: read of nil page")
	}
	qio := QueryIOFrom(ctx)
	if m.pool != nil {
		if m.pool.get(id, buf[:m.pageSize]) {
			m.stats.hits.Add(1)
			global.hits.Add(1)
			if qio != nil {
				qio.Hits.Add(1)
			}
			return nil
		}
	}
	if err := m.backend.ReadPage(id, buf[:m.pageSize]); err != nil {
		return m.countIOError(err)
	}
	m.stats.reads.Add(1)
	global.reads.Add(1)
	if qio != nil {
		qio.Reads.Add(1)
	}
	if m.pool != nil {
		m.pool.put(id, buf[:m.pageSize])
	}
	return nil
}

// ReadRunCtx copies pages first..first+n-1 into buf (which must be at
// least n pages long), servicing the run with as few backend calls as
// possible: pages resident in the buffer pool are copied out as hits,
// and each maximal segment of consecutive misses goes to the backend in
// one RunReader call when the backend supports it. A segment of k pages
// fetched in one call is counted as one Read plus k-1 Prefetched — the
// first page pays the seek, the rest stream behind it — in the
// manager's stats, the process-wide stats, and any QueryIO carried by
// ctx. Backends without RunReader are read page-at-a-time (k Reads).
func (m *Manager) ReadRunCtx(ctx context.Context, first PageID, n int, buf []byte) error {
	if first == NilPage {
		return errors.New("storage: read of nil page")
	}
	if n <= 0 {
		return nil
	}
	qio := QueryIOFrom(ctx)
	ps := m.pageSize

	// Pull what the pool already holds; remember the misses.
	missFrom := -1 // start of the current miss segment, -1 when none open
	flush := func(end int) error {
		if missFrom < 0 {
			return nil
		}
		segFirst, segN := first+PageID(missFrom), end-missFrom
		segBuf := buf[missFrom*ps : end*ps]
		rr, ok := m.backend.(RunReader)
		if ok && segN > 1 {
			if err := rr.ReadRun(segFirst, segN, segBuf); err != nil {
				return m.countIOError(err)
			}
			m.stats.reads.Add(1)
			global.reads.Add(1)
			m.stats.prefetched.Add(int64(segN - 1))
			global.prefetched.Add(int64(segN - 1))
			if qio != nil {
				qio.Reads.Add(1)
				qio.Prefetched.Add(int64(segN - 1))
			}
		} else {
			for i := 0; i < segN; i++ {
				if err := m.backend.ReadPage(segFirst+PageID(i), segBuf[i*ps:(i+1)*ps]); err != nil {
					return m.countIOError(err)
				}
			}
			m.stats.reads.Add(int64(segN))
			global.reads.Add(int64(segN))
			if qio != nil {
				qio.Reads.Add(int64(segN))
			}
		}
		if m.pool != nil {
			for i := 0; i < segN; i++ {
				m.pool.put(segFirst+PageID(i), segBuf[i*ps:(i+1)*ps])
			}
		}
		missFrom = -1
		return nil
	}
	for i := 0; i < n; i++ {
		if m.pool != nil && m.pool.get(first+PageID(i), buf[i*ps:(i+1)*ps]) {
			if err := flush(i); err != nil {
				return err
			}
			m.stats.hits.Add(1)
			global.hits.Add(1)
			if qio != nil {
				qio.Hits.Add(1)
			}
			continue
		}
		if missFrom < 0 {
			missFrom = i
		}
	}
	return flush(n)
}

// countIOError tallies a failed backend operation in the error counters
// (classifying checksum rejections separately) and returns err unchanged
// so callers can use it inline on error-return paths.
func (m *Manager) countIOError(err error) error {
	m.stats.ioErrors.Add(1)
	global.ioErrors.Add(1)
	var ce *ChecksumError
	if errors.As(err, &ce) {
		m.stats.checksumFailures.Add(1)
		global.checksumFailures.Add(1)
	}
	return err
}

// Write stores buf as the contents of page id (write-through).
func (m *Manager) Write(id PageID, buf []byte) error {
	if id == NilPage {
		return errors.New("storage: write to nil page")
	}
	if err := m.backend.WritePage(id, buf[:m.pageSize]); err != nil {
		return m.countIOError(err)
	}
	m.stats.writes.Add(1)
	global.writes.Add(1)
	if m.pool != nil {
		m.pool.put(id, buf[:m.pageSize])
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Reads:            m.stats.reads.Load(),
		Writes:           m.stats.writes.Load(),
		Allocs:           m.stats.allocs.Load(),
		Frees:            m.stats.frees.Load(),
		Hits:             m.stats.hits.Load(),
		Prefetched:       m.stats.prefetched.Load(),
		IOErrors:         m.stats.ioErrors.Load(),
		ChecksumFailures: m.stats.checksumFailures.Load(),
	}
}

// ResetStats zeroes the counters (buffer contents are kept).
func (m *Manager) ResetStats() {
	m.stats.reads.Store(0)
	m.stats.writes.Store(0)
	m.stats.allocs.Store(0)
	m.stats.frees.Store(0)
	m.stats.hits.Store(0)
	m.stats.prefetched.Store(0)
	m.stats.ioErrors.Store(0)
	m.stats.checksumFailures.Store(0)
}

// DropBuffer empties the buffer pool so subsequent reads are cold.
func (m *Manager) DropBuffer() {
	if m.pool != nil {
		m.pool.reset()
	}
}

// Sync flushes the backend's completed writes to stable storage when the
// backend supports it (a no-op otherwise).
func (m *Manager) Sync() error {
	if s, ok := m.backend.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Close releases the backend.
func (m *Manager) Close() error { return m.backend.Close() }

// NumPages returns the number of pages ever allocated (including freed).
func (m *Manager) NumPages() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.next - 1)
}
