package storage

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
)

func TestAllocReadWriteRoundTrip(t *testing.T) {
	m := NewManager(Options{PageSize: 128})
	defer m.Close()
	id, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id == NilPage {
		t.Fatal("Alloc returned NilPage")
	}
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i)
	}
	if err := m.Write(id, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := m.Read(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read back different data")
	}
}

func TestNilPageRejected(t *testing.T) {
	m := NewManager(Options{PageSize: 64})
	defer m.Close()
	buf := make([]byte, 64)
	if err := m.Read(NilPage, buf); err == nil {
		t.Error("Read(NilPage) succeeded")
	}
	if err := m.Write(NilPage, buf); err == nil {
		t.Error("Write(NilPage) succeeded")
	}
}

func TestReadUnallocatedFails(t *testing.T) {
	m := NewManager(Options{PageSize: 64})
	defer m.Close()
	buf := make([]byte, 64)
	if err := m.Read(PageID(42), buf); err == nil {
		t.Error("read of unallocated page succeeded")
	}
}

func TestFreeListRecycles(t *testing.T) {
	m := NewManager(Options{PageSize: 64})
	defer m.Close()
	a, _ := m.Alloc()
	b, _ := m.Alloc()
	m.Free(a)
	c, _ := m.Alloc()
	if c != a {
		t.Errorf("expected freed page %d to be recycled, got %d", a, c)
	}
	if b == c {
		t.Error("two live pages share an id")
	}
	if got := m.Stats(); got.Allocs != 3 || got.Frees != 1 {
		t.Errorf("stats = %+v", got)
	}
}

func TestStatsCountBackendAccesses(t *testing.T) {
	m := NewManager(Options{PageSize: 64}) // no buffer pool
	defer m.Close()
	id, _ := m.Alloc()
	buf := make([]byte, 64)
	for i := 0; i < 5; i++ {
		if err := m.Read(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Reads != 5 || st.Hits != 0 {
		t.Errorf("unbuffered: reads=%d hits=%d, want 5/0", st.Reads, st.Hits)
	}
	m.ResetStats()
	if got := m.Stats(); got.Reads != 0 {
		t.Error("ResetStats did not reset")
	}
}

func TestBufferPoolHitAccounting(t *testing.T) {
	m := NewManager(Options{PageSize: 64, BufferPages: 2})
	defer m.Close()
	a, _ := m.Alloc()
	b, _ := m.Alloc()
	c, _ := m.Alloc()
	buf := make([]byte, 64)
	m.ResetStats() // Alloc/Grow don't count as reads anyway, but be explicit
	// First reads are cold.
	m.Read(a, buf)
	m.Read(b, buf)
	// Now both are cached.
	m.Read(a, buf)
	m.Read(b, buf)
	st := m.Stats()
	if st.Reads != 2 || st.Hits != 2 {
		t.Fatalf("reads=%d hits=%d, want 2/2", st.Reads, st.Hits)
	}
	// Reading c evicts the LRU page (a, since b was touched last).
	m.Read(c, buf)
	m.Read(b, buf) // hit
	m.Read(a, buf) // miss: was evicted
	st = m.Stats()
	if st.Reads != 4 || st.Hits != 3 {
		t.Fatalf("after eviction: reads=%d hits=%d, want 4/3", st.Reads, st.Hits)
	}
}

func TestWritePopulatesBuffer(t *testing.T) {
	m := NewManager(Options{PageSize: 64, BufferPages: 4})
	defer m.Close()
	id, _ := m.Alloc()
	data := bytes.Repeat([]byte{7}, 64)
	m.Write(id, data)
	buf := make([]byte, 64)
	m.Read(id, buf)
	st := m.Stats()
	if st.Hits != 1 || st.Reads != 0 {
		t.Errorf("write-through caching: reads=%d hits=%d, want 0/1", st.Reads, st.Hits)
	}
	if !bytes.Equal(buf, data) {
		t.Error("buffered read returned wrong data")
	}
}

func TestDropBuffer(t *testing.T) {
	m := NewManager(Options{PageSize: 64, BufferPages: 4})
	defer m.Close()
	id, _ := m.Alloc()
	buf := make([]byte, 64)
	m.Read(id, buf)
	m.DropBuffer()
	m.Read(id, buf)
	if st := m.Stats(); st.Reads != 2 {
		t.Errorf("reads=%d, want 2 after DropBuffer", st.Reads)
	}
}

func TestFreeEvictsFromBuffer(t *testing.T) {
	m := NewManager(Options{PageSize: 64, BufferPages: 4})
	defer m.Close()
	id, _ := m.Alloc()
	data := bytes.Repeat([]byte{9}, 64)
	m.Write(id, data)
	m.Free(id)
	id2, _ := m.Alloc() // recycles id
	if id2 != id {
		t.Fatalf("expected recycled id")
	}
	fresh := bytes.Repeat([]byte{1}, 64)
	if err := m.Write(id2, fresh); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	m.Read(id2, buf)
	if !bytes.Equal(buf, fresh) {
		t.Error("stale buffered contents survived Free")
	}
}

func TestFileBackendPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fb, err := NewFileBackend(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{PageSize: 256, Backend: fb})
	id, _ := m.Alloc()
	data := bytes.Repeat([]byte{0xAB}, 256)
	if err := m.Write(id, data); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	fb2, err := NewFileBackend(path, 256)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(Options{PageSize: 256, Backend: fb2})
	defer m2.Close()
	// Re-allocate the same id space; contents should persist on disk.
	buf := make([]byte, 256)
	if err := fb2.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("page contents did not persist across reopen")
	}
}

func TestManyPagesStress(t *testing.T) {
	m := NewManager(Options{PageSize: 64, BufferPages: 8})
	defer m.Close()
	rng := rand.New(rand.NewSource(1))
	const n = 200
	ids := make([]PageID, n)
	want := make([][]byte, n)
	for i := 0; i < n; i++ {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		data := make([]byte, 64)
		rng.Read(data)
		want[i] = data
		if err := m.Write(id, data); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 64)
	for trial := 0; trial < 1000; trial++ {
		i := rng.Intn(n)
		if err := m.Read(ids[i], buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want[i]) {
			t.Fatalf("page %d corrupted", ids[i])
		}
	}
	if m.NumPages() != n {
		t.Errorf("NumPages = %d, want %d", m.NumPages(), n)
	}
}

func TestConcurrentManagerAccess(t *testing.T) {
	m := NewManager(Options{PageSize: 128, BufferPages: 4})
	defer m.Close()
	const pages = 16
	ids := make([]PageID, pages)
	for i := range ids {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		data := bytes.Repeat([]byte{byte(i)}, 128)
		if err := m.Write(id, data); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			buf := make([]byte, 128)
			for i := 0; i < 500; i++ {
				idx := (w*31 + i) % pages
				if err := m.Read(ids[idx], buf); err != nil {
					done <- err
					return
				}
				if buf[0] != byte(idx) {
					done <- fmt.Errorf("page %d returned %d", idx, buf[0])
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestManagerConcurrentMixed hammers one Manager from many goroutines with
// a mix of buffered reads, write-through writes, allocations, frees, stat
// snapshots and buffer drops. Run under -race this is the regression test
// for the lock-striped pool and the atomic counters; it also checks that
// every page a goroutine owns exclusively reads back what it last wrote.
func TestManagerConcurrentMixed(t *testing.T) {
	m := NewManager(Options{PageSize: 128, BufferPages: 8})
	defer m.Close()
	const workers = 8
	const iters = 300

	// A shared, read-only region every worker reads.
	shared := make([]PageID, 16)
	for i := range shared {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		shared[i] = id
		if err := m.Write(id, bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}

	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, 128)
			// One private page per worker, rewritten and re-read.
			private, err := m.Alloc()
			if err != nil {
				done <- err
				return
			}
			val := byte(0)
			for i := 0; i < iters; i++ {
				switch rng.Intn(10) {
				case 0: // churn the allocator
					id, err := m.Alloc()
					if err != nil {
						done <- err
						return
					}
					m.Free(id)
				case 1:
					m.Stats()
				case 2:
					m.DropBuffer()
				case 3, 4: // rewrite the private page, then read it back
					val++
					if err := m.Write(private, bytes.Repeat([]byte{val}, 128)); err != nil {
						done <- err
						return
					}
					if err := m.Read(private, buf); err != nil {
						done <- err
						return
					}
					if buf[0] != val {
						done <- fmt.Errorf("private page read back %d, want %d", buf[0], val)
						return
					}
				default: // read a shared page
					idx := rng.Intn(len(shared))
					if err := m.Read(shared[idx], buf); err != nil {
						done <- err
						return
					}
					if buf[0] != byte(idx) {
						done <- fmt.Errorf("shared page %d read back %d", idx, buf[0])
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// Counter sanity: every backend read/write performed was counted.
	st := m.Stats()
	if st.Reads == 0 || st.Writes == 0 || st.Allocs == 0 {
		t.Errorf("implausible counters after hammering: %+v", st)
	}
}

// TestStatsResetRaceSafety hammers Stats and ResetStats from concurrent
// goroutines while readers are in flight. Under -race this is the
// regression test that snapshotting and zeroing the counters are safe
// against the hot read path (all fields are individually atomic).
func TestStatsResetRaceSafety(t *testing.T) {
	m := NewManager(Options{PageSize: 128, BufferPages: 4})
	defer m.Close()
	ids := make([]PageID, 8)
	for i := range ids {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := m.Write(id, bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			qio := &QueryIO{}
			ctx := WithQueryIO(context.Background(), qio)
			buf := make([]byte, 128)
			for i := 0; i < 500; i++ {
				if err := m.ReadCtx(ctx, ids[(w+i)%len(ids)], buf); err != nil {
					errs <- err
					return
				}
			}
			if qio.Total() != 500 {
				errs <- fmt.Errorf("worker %d: QueryIO attributed %d fetches, want 500", w, qio.Total())
			}
		}(w)
	}
	wg.Add(1)
	go func() { // resetter
		defer wg.Done()
		for i := 0; i < 100; i++ {
			m.ResetStats()
			runtime.Gosched()
		}
	}()
	// The snapshotter runs until the readers and the resetter finish; it
	// waits on its own WaitGroup so stopping it cannot deadlock with wg.
	var snap sync.WaitGroup
	snap.Add(1)
	go func() {
		defer snap.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := m.Stats()
				if st.Reads < 0 || st.Hits < 0 {
					errs <- fmt.Errorf("negative counters in snapshot: %+v", st)
					return
				}
				runtime.Gosched() // keep the readers scheduled on small GOMAXPROCS
			}
		}
	}()
	wg.Wait()
	close(stop)
	snap.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

// TestStatsSnapshotConsistency checks the accounting identity the
// EXPLAIN ANALYZE cross-check relies on: with no resets in flight,
// counters only grow, and the sum of every query's attributed I/O
// (QueryIO) equals the manager's global counter deltas exactly — even
// when the queries run as a concurrent batch.
func TestStatsSnapshotConsistency(t *testing.T) {
	m := NewManager(Options{PageSize: 128, BufferPages: 4})
	defer m.Close()
	ids := make([]PageID, 12)
	for i := range ids {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if err := m.Write(id, bytes.Repeat([]byte{byte(i)}, 128)); err != nil {
			t.Fatal(err)
		}
	}

	const queries = 8
	const readsPerQuery = 400
	before := m.Stats()
	qios := make([]QueryIO, queries)
	var wg sync.WaitGroup
	errs := make(chan error, queries+1)
	for w := 0; w < queries; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := WithQueryIO(context.Background(), &qios[w])
			buf := make([]byte, 128)
			for i := 0; i < readsPerQuery; i++ {
				if err := m.ReadCtx(ctx, ids[(w*7+i)%len(ids)], buf); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Monitor: every snapshot taken mid-batch must be internally
	// consistent — monotonically non-decreasing, never past the total
	// the batch will reach.
	stop := make(chan struct{})
	var monitor sync.WaitGroup
	monitor.Add(1)
	go func() {
		defer monitor.Done()
		prev := before
		for {
			st := m.Stats()
			if st.Reads < prev.Reads || st.Hits < prev.Hits || st.Writes < prev.Writes {
				errs <- fmt.Errorf("counters went backwards: %+v then %+v", prev, st)
				return
			}
			fetched := (st.Reads - before.Reads) + (st.Hits - before.Hits)
			if fetched > queries*readsPerQuery {
				errs <- fmt.Errorf("snapshot shows %d fetches, batch only issues %d", fetched, queries*readsPerQuery)
				return
			}
			prev = st
			select {
			case <-stop:
				return
			default:
				runtime.Gosched() // keep the batch scheduled on small GOMAXPROCS
			}
		}
	}()
	wg.Wait()
	close(stop)
	monitor.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	after := m.Stats()
	var qReads, qHits int64
	for i := range qios {
		qReads += qios[i].Reads.Load()
		qHits += qios[i].Hits.Load()
	}
	if qReads != after.Reads-before.Reads {
		t.Errorf("queries attribute %d backend reads, manager counted %d", qReads, after.Reads-before.Reads)
	}
	if qHits != after.Hits-before.Hits {
		t.Errorf("queries attribute %d buffer hits, manager counted %d", qHits, after.Hits-before.Hits)
	}
	if got := qReads + qHits; got != queries*readsPerQuery {
		t.Errorf("attributed %d fetches in total, want %d", got, queries*readsPerQuery)
	}
}

// TestGlobalStats checks that the process-wide counters mirror manager
// operations and, unlike per-manager stats, survive ResetStats. Deltas
// are compared (other managers in the process may also count).
func TestGlobalStats(t *testing.T) {
	before := GlobalStats()
	m := NewManager(Options{PageSize: 128, BufferPages: 4})
	id, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := m.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	m.DropBuffer()
	if err := m.Read(id, buf); err != nil { // backend read
		t.Fatal(err)
	}
	if err := m.Read(id, buf); err != nil { // buffered hit
		t.Fatal(err)
	}
	m.Free(id)
	m.ResetStats()

	after := GlobalStats()
	if d := after.Allocs - before.Allocs; d < 1 {
		t.Errorf("global allocs delta = %d, want >= 1", d)
	}
	if d := after.Writes - before.Writes; d < 1 {
		t.Errorf("global writes delta = %d, want >= 1", d)
	}
	if d := after.Reads - before.Reads; d < 1 {
		t.Errorf("global reads delta = %d, want >= 1", d)
	}
	if d := after.Hits - before.Hits; d < 1 {
		t.Errorf("global hits delta = %d, want >= 1", d)
	}
	if d := after.Frees - before.Frees; d < 1 {
		t.Errorf("global frees delta = %d, want >= 1", d)
	}
	if s := m.Stats(); s != (Stats{}) {
		t.Errorf("manager stats not reset: %+v", s)
	}
}
