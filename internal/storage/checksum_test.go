package storage

import (
	"errors"
	"path/filepath"
	"testing"
)

func TestChecksumRoundTrip(t *testing.T) {
	const phys = 512
	cb := NewChecksumBackend(NewMemBackend(phys), phys)
	if got := cb.LogicalPageSize(); got != phys-ChecksumTrailerSize {
		t.Fatalf("logical page size = %d, want %d", got, phys-ChecksumTrailerSize)
	}
	ls := cb.LogicalPageSize()
	in := make([]byte, ls)
	stampPage(in, 3)
	if err := cb.Grow(3); err != nil {
		t.Fatal(err)
	}
	if err := cb.WritePage(3, in); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, ls)
	if err := cb.ReadPage(3, out); err != nil {
		t.Fatal(err)
	}
	if string(in) != string(out) {
		t.Fatal("payload corrupted across checksum framing")
	}
}

func TestChecksumDetectsBitRot(t *testing.T) {
	const phys = 512
	mem := NewMemBackend(phys)
	cb := NewChecksumBackend(mem, phys)
	ls := cb.LogicalPageSize()
	in := make([]byte, ls)
	stampPage(in, 5)
	if err := cb.Grow(5); err != nil {
		t.Fatal(err)
	}
	if err := cb.WritePage(5, in); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte beneath the checksum layer.
	raw := make([]byte, phys)
	if err := mem.ReadPage(5, raw); err != nil {
		t.Fatal(err)
	}
	raw[100] ^= 0x01
	if err := mem.WritePage(5, raw); err != nil {
		t.Fatal(err)
	}
	err := cb.ReadPage(5, make([]byte, ls))
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("bit rot not detected: %v", err)
	}
	if ce.Page != 5 || ce.Missing {
		t.Errorf("ChecksumError = %+v, want page 5, not missing", ce)
	}
}

func TestChecksumDetectsMisdirectedWrite(t *testing.T) {
	// A structurally intact page read back from the wrong offset must
	// fail: the CRC covers the page id.
	const phys = 512
	mem := NewMemBackend(phys)
	cb := NewChecksumBackend(mem, phys)
	ls := cb.LogicalPageSize()
	in := make([]byte, ls)
	stampPage(in, 1)
	for _, id := range []PageID{1, 2} {
		if err := cb.Grow(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := cb.WritePage(1, in); err != nil {
		t.Fatal(err)
	}
	// Copy page 1's physical image over page 2 (the misdirected write).
	raw := make([]byte, phys)
	if err := mem.ReadPage(1, raw); err != nil {
		t.Fatal(err)
	}
	if err := mem.WritePage(2, raw); err != nil {
		t.Fatal(err)
	}
	err := cb.ReadPage(2, make([]byte, ls))
	var ce *ChecksumError
	if !errors.As(err, &ce) || ce.Page != 2 {
		t.Fatalf("misdirected write not detected: %v", err)
	}
}

func TestChecksumDetectsMissingTrailer(t *testing.T) {
	const phys = 512
	mem := NewMemBackend(phys)
	cb := NewChecksumBackend(mem, phys)
	if err := cb.Grow(4); err != nil {
		t.Fatal(err)
	}
	// Page 4 exists but was never written through the checksum layer:
	// an all-zero page, as a crash mid-extend would leave.
	err := cb.ReadPage(4, make([]byte, cb.LogicalPageSize()))
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("trailer-less page accepted: %v", err)
	}
	if !ce.Missing {
		t.Errorf("ChecksumError.Missing = false for a never-written page")
	}
}

func TestChecksumRunRead(t *testing.T) {
	const phys = 256
	for _, inner := range []struct {
		name string
		b    Backend
	}{
		{"mem-runreader", NewMemBackend(phys)},
		{"no-runreader", pageOnlyBackend{NewMemBackend(phys)}},
	} {
		t.Run(inner.name, func(t *testing.T) {
			cb := NewChecksumBackend(inner.b, phys)
			ls := cb.LogicalPageSize()
			want := make([]byte, 4*ls)
			for i := 0; i < 4; i++ {
				id := PageID(i + 1)
				if err := cb.Grow(id); err != nil {
					t.Fatal(err)
				}
				stampPage(want[i*ls:(i+1)*ls], id)
				if err := cb.WritePage(id, want[i*ls:(i+1)*ls]); err != nil {
					t.Fatal(err)
				}
			}
			got := make([]byte, 4*ls)
			if err := cb.ReadRun(1, 4, got); err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatal("run payload corrupted across checksum framing")
			}
		})
	}
}

func TestChecksumUnderManagerCountsFailures(t *testing.T) {
	const phys = 512
	mem := NewMemBackend(phys)
	cb := NewChecksumBackend(mem, phys)
	m := NewManager(Options{PageSize: cb.LogicalPageSize(), Backend: cb})
	id, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, cb.LogicalPageSize())
	stampPage(buf, id)
	if err := m.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt beneath the checksum layer.
	raw := make([]byte, phys)
	if err := mem.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	raw[7] ^= 0xFF
	if err := mem.WritePage(id, raw); err != nil {
		t.Fatal(err)
	}
	before := GlobalStats()
	err = m.Read(id, buf)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("corruption not detected through manager: %v", err)
	}
	st := m.Stats()
	if st.IOErrors != 1 || st.ChecksumFailures != 1 {
		t.Errorf("IOErrors=%d ChecksumFailures=%d, want 1/1", st.IOErrors, st.ChecksumFailures)
	}
	after := GlobalStats()
	if after.ChecksumFailures-before.ChecksumFailures != 1 {
		t.Errorf("global ChecksumFailures delta = %d, want 1", after.ChecksumFailures-before.ChecksumFailures)
	}
}

func TestChecksumOverFileBackend(t *testing.T) {
	const phys = 512
	path := filepath.Join(t.TempDir(), "ck.pages")
	fb, err := NewFileBackend(path, phys)
	if err != nil {
		t.Fatal(err)
	}
	cb := NewChecksumBackend(fb, phys)
	ls := cb.LogicalPageSize()
	in := make([]byte, ls)
	stampPage(in, 2)
	if err := cb.Grow(2); err != nil {
		t.Fatal(err)
	}
	if err := cb.WritePage(2, in); err != nil {
		t.Fatal(err)
	}
	if err := cb.Sync(); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, ls)
	if err := cb.ReadPage(2, out); err != nil {
		t.Fatal(err)
	}
	if string(in) != string(out) {
		t.Fatal("payload corrupted on disk round trip")
	}
	if err := cb.Close(); err != nil {
		t.Fatal(err)
	}
}

// pageOnlyBackend hides RunReader from a backend.
type pageOnlyBackend struct{ inner Backend }

func (p pageOnlyBackend) ReadPage(id PageID, buf []byte) error  { return p.inner.ReadPage(id, buf) }
func (p pageOnlyBackend) WritePage(id PageID, buf []byte) error { return p.inner.WritePage(id, buf) }
func (p pageOnlyBackend) Grow(id PageID) error                  { return p.inner.Grow(id) }
func (p pageOnlyBackend) Close() error                          { return p.inner.Close() }
