package storage

import (
	"fmt"
	"sort"
	"sync"
)

// StagedPage is one page buffered by a StagedBackend transaction: the
// logical page id and its full after-image.
type StagedPage struct {
	ID   PageID
	Data []byte
}

// StagedBackend interposes between the Manager and the durable page
// stack and buffers every page write of an open transaction in memory
// instead of letting it reach the file. It is the mechanism behind the
// WAL's write-ahead ordering: the index applies a whole Insert/Delete
// against the overlay, hands the set of after-images to the log, and
// only after the log record is durable flushes the overlay below
// (Commit). Until then the file is untouched, so an abort (Abort) or a
// crash before the log fsync leaves no trace of the operation on disk,
// and a crash after it is healed by replaying the logged images.
//
// Reads during a transaction see the overlay first, so the index
// observes its own uncommitted writes (required: an insert reads the
// tree nodes it just split). Writes outside a transaction pass straight
// through, preserving the bulk-load/create path unchanged.
//
// The backend itself is safe for concurrent use, but a transaction is
// single-writer by construction: callers serialise Begin..Commit/Abort
// externally (the DB facade holds its write lock across the whole
// operation).
type StagedBackend struct {
	mu      sync.RWMutex
	inner   Backend
	overlay map[PageID][]byte
	grown   []PageID
	active  bool
}

// NewStagedBackend wraps inner.
func NewStagedBackend(inner Backend) *StagedBackend {
	return &StagedBackend{inner: inner}
}

// Begin opens a transaction: subsequent writes are buffered until
// Commit or Abort. Begin with a transaction already open panics — it
// would silently merge two operations' images.
func (b *StagedBackend) Begin() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.active {
		panic("storage: StagedBackend.Begin with a transaction already open")
	}
	b.active = true
	b.overlay = make(map[PageID][]byte)
	b.grown = b.grown[:0]
}

// Active reports whether a transaction is open.
func (b *StagedBackend) Active() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.active
}

// Staged returns the transaction's page after-images in ascending page
// order. The data slices alias the overlay buffers and are valid until
// Commit or Abort.
func (b *StagedBackend) Staged() []StagedPage {
	b.mu.RLock()
	defer b.mu.RUnlock()
	pages := make([]StagedPage, 0, len(b.overlay))
	for id, data := range b.overlay {
		pages = append(pages, StagedPage{ID: id, Data: data})
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].ID < pages[j].ID })
	return pages
}

// Commit flushes the overlay to the inner backend in ascending page
// order and closes the transaction. On error the transaction is still
// closed and the flush may be torn mid-page-set; the caller is expected
// to have made the operation durable in the WAL first, so recovery
// rewrites every image on the next open.
func (b *StagedBackend) Commit() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.active {
		return fmt.Errorf("storage: StagedBackend.Commit without a transaction")
	}
	pages := make([]PageID, 0, len(b.overlay))
	for id := range b.overlay {
		pages = append(pages, id)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	var firstErr error
	for _, id := range pages {
		if err := b.inner.WritePage(id, b.overlay[id]); err != nil {
			firstErr = err
			break
		}
	}
	b.active = false
	b.overlay = nil
	b.grown = b.grown[:0]
	return firstErr
}

// Abort discards the overlay without touching the inner backend and
// returns the staged page ids plus the pages grown during the
// transaction, so the caller can evict stale buffer-pool entries and
// return grown pages to the allocator.
func (b *StagedBackend) Abort() (staged, grown []PageID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.active {
		return nil, nil
	}
	staged = make([]PageID, 0, len(b.overlay))
	for id := range b.overlay {
		staged = append(staged, id)
	}
	sort.Slice(staged, func(i, j int) bool { return staged[i] < staged[j] })
	grown = append([]PageID(nil), b.grown...)
	b.active = false
	b.overlay = nil
	b.grown = b.grown[:0]
	return staged, grown
}

// ReadPage implements Backend: overlay first, then the inner backend.
func (b *StagedBackend) ReadPage(id PageID, buf []byte) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.readLocked(id, buf)
}

func (b *StagedBackend) readLocked(id PageID, buf []byte) error {
	if b.active {
		if data, ok := b.overlay[id]; ok {
			copy(buf, data)
			return nil
		}
	}
	return b.inner.ReadPage(id, buf)
}

// WritePage implements Backend: buffered while a transaction is open,
// pass-through otherwise.
func (b *StagedBackend) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.active {
		return b.inner.WritePage(id, buf)
	}
	data, ok := b.overlay[id]
	if !ok || len(data) != len(buf) {
		data = make([]byte, len(buf))
		b.overlay[id] = data
	}
	copy(data, buf)
	return nil
}

// Grow implements Backend. Growth always reaches the inner backend —
// extending the file early is harmless (a crash leaves unreferenced
// tail pages, which recovery overwrites or the scrubber reports as
// tail bytes) and it keeps backends that demand Grow-before-write
// working under the overlay. Pages grown inside a transaction are
// recorded for Abort.
func (b *StagedBackend) Grow(id PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.inner.Grow(id); err != nil {
		return err
	}
	if b.active {
		b.grown = append(b.grown, id)
	}
	return nil
}

// ReadRun implements RunReader. A run overlapping the overlay is served
// page by page so staged images win; otherwise it delegates to the
// inner backend's run read (or a page loop when it has none).
func (b *StagedBackend) ReadRun(first PageID, n int, buf []byte) error {
	if n <= 0 {
		return nil
	}
	ps := len(buf) / n
	b.mu.RLock()
	defer b.mu.RUnlock()
	overlap := false
	if b.active {
		for i := 0; i < n; i++ {
			if _, ok := b.overlay[first+PageID(i)]; ok {
				overlap = true
				break
			}
		}
	}
	if !overlap {
		if rr, ok := b.inner.(RunReader); ok {
			return rr.ReadRun(first, n, buf)
		}
	}
	for i := 0; i < n; i++ {
		if err := b.readLocked(first+PageID(i), buf[i*ps:(i+1)*ps]); err != nil {
			return err
		}
	}
	return nil
}

// Sync implements Syncer when the inner backend does.
func (b *StagedBackend) Sync() error {
	if s, ok := b.inner.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Close implements Backend. Closing with a transaction open discards
// the overlay (the operation was never acknowledged unless its WAL
// record is durable, in which case recovery re-applies it).
func (b *StagedBackend) Close() error {
	b.mu.Lock()
	b.active = false
	b.overlay = nil
	b.grown = nil
	b.mu.Unlock()
	return b.inner.Close()
}
