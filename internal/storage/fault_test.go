package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stampPage writes a recognizable pattern for page id.
func stampPage(buf []byte, id PageID) {
	for i := range buf {
		buf[i] = byte(int(id) + i)
	}
}

func TestFaultBackendErrorOnNthOp(t *testing.T) {
	const ps = 256
	fb := NewFaultBackend(NewMemBackend(ps), 1)
	buf := make([]byte, ps)
	for id := PageID(1); id <= 3; id++ {
		if err := fb.Grow(id); err != nil {
			t.Fatal(err)
		}
		stampPage(buf, id)
		if err := fb.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	fb.FailAt(2, FaultError)
	if err := fb.ReadPage(1, buf); err != nil {
		t.Fatalf("op 1 should succeed: %v", err)
	}
	err := fb.ReadPage(2, buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 should fail with ErrInjected, got %v", err)
	}
	if want := "page 2"; err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("error %q does not name the page", err)
	}
	if err := fb.ReadPage(3, buf); err != nil {
		t.Fatalf("op 3 should succeed again: %v", err)
	}
	if fb.Ops() != 3 {
		t.Errorf("ops = %d, want 3", fb.Ops())
	}
}

func TestFaultBackendCrashFreezes(t *testing.T) {
	const ps = 128
	fb := NewFaultBackend(NewMemBackend(ps), 7)
	buf := make([]byte, ps)
	if err := fb.Grow(1); err != nil {
		t.Fatal(err)
	}
	stampPage(buf, 1)
	if err := fb.WritePage(1, buf); err != nil {
		t.Fatal(err)
	}
	fb.FailAt(1, FaultCrash)
	// The crash-point write fails before applying anything...
	zero := make([]byte, ps)
	if err := fb.WritePage(1, zero); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point write: %v", err)
	}
	// ...and every later operation stays dead.
	if err := fb.ReadPage(1, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash read: %v", err)
	}
	if err := fb.Grow(9); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash grow: %v", err)
	}
	if err := fb.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync: %v", err)
	}
	if !fb.Crashed() {
		t.Error("Crashed() = false after crash point")
	}
	// The frozen image still holds the pre-crash contents.
	fb.Disarm()
	if err := fb.ReadPage(1, buf); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, ps)
	stampPage(want, 1)
	if string(buf) != string(want) {
		t.Error("pre-crash page contents lost")
	}
}

func TestFaultBackendTornWriteIsDeterministic(t *testing.T) {
	const ps = 512
	run := func(seed int64) []byte {
		fb := NewFaultBackend(NewMemBackend(ps), seed)
		buf := make([]byte, ps)
		if err := fb.Grow(1); err != nil {
			t.Fatal(err)
		}
		stampPage(buf, 1)
		if err := fb.WritePage(1, buf); err != nil {
			t.Fatal(err)
		}
		fb.FailAt(1, FaultTornWrite)
		newImg := make([]byte, ps)
		for i := range newImg {
			newImg[i] = 0xAB
		}
		if err := fb.WritePage(1, newImg); !errors.Is(err, ErrInjected) {
			t.Fatalf("torn write should fail with ErrInjected: %v", err)
		}
		fb.Disarm()
		got := make([]byte, ps)
		if err := fb.ReadPage(1, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := run(42), run(42)
	if string(a) != string(b) {
		t.Fatal("same seed produced different torn images")
	}
	// The image must be a prefix of the new write over the old page —
	// not fully old, not fully new (overwhelmingly likely with ps=512).
	old, fresh := 0, 0
	for i := range a {
		if a[i] == 0xAB {
			fresh++
		} else {
			old++
		}
	}
	if fresh == 0 || old == 0 {
		t.Errorf("torn image not actually torn: %d new bytes, %d old bytes", fresh, old)
	}
}

func TestFaultBackendShortRead(t *testing.T) {
	const ps = 256
	fb := NewFaultBackend(NewMemBackend(ps), 3)
	buf := make([]byte, ps)
	if err := fb.Grow(1); err != nil {
		t.Fatal(err)
	}
	stampPage(buf, 1)
	if err := fb.WritePage(1, buf); err != nil {
		t.Fatal(err)
	}
	fb.FailAt(1, FaultShortRead)
	err := fb.ReadPage(1, buf)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short read should fail with ErrInjected: %v", err)
	}
	if !strings.Contains(err.Error(), "page 1") {
		t.Errorf("error %q does not name the page", err)
	}
}

func TestFaultBackendRunCountsAsOneOp(t *testing.T) {
	const ps = 128
	fb := NewFaultBackend(NewMemBackend(ps), 5)
	buf := make([]byte, 4*ps)
	for id := PageID(1); id <= 4; id++ {
		if err := fb.Grow(id); err != nil {
			t.Fatal(err)
		}
		stampPage(buf[:ps], id)
		if err := fb.WritePage(id, buf[:ps]); err != nil {
			t.Fatal(err)
		}
	}
	fb.FailAt(0, FaultNone)
	if err := fb.ReadRun(1, 4, buf); err != nil {
		t.Fatal(err)
	}
	if fb.Ops() != 1 {
		t.Errorf("run of 4 pages counted as %d ops, want 1", fb.Ops())
	}
	fb.FailAt(1, FaultError)
	if err := fb.ReadRun(1, 4, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed run read: %v", err)
	}
}

func TestFileBackendShortReadIsError(t *testing.T) {
	// Regression: reading past EOF (or a truncated tail page) must be an
	// error naming the page, never a silently zero-filled buffer.
	const ps = 512
	path := filepath.Join(t.TempDir(), "short.pages")
	fb, err := NewFileBackend(path, ps)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	buf := make([]byte, ps)
	if err := fb.Grow(2); err != nil {
		t.Fatal(err)
	}
	stampPage(buf, 2)
	if err := fb.WritePage(2, buf); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-page-2: a torn tail.
	if err := os.Truncate(path, int64(2*ps+100)); err != nil {
		t.Fatal(err)
	}
	err = fb.ReadPage(2, buf)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated page read: got %v, want io.ErrUnexpectedEOF", err)
	}
	if !strings.Contains(err.Error(), "page 2") {
		t.Errorf("error %q does not name the page", err)
	}
	// And entirely past EOF.
	err = fb.ReadPage(9, buf)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("past-EOF read: got %v, want io.ErrUnexpectedEOF", err)
	}
	// Run reads covering the torn tail fail too.
	err = fb.ReadRun(1, 2, make([]byte, 2*ps))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated run read: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFreeNilPageIsNoOp(t *testing.T) {
	// Regression: Free(NilPage) used to push page 0 onto the free list,
	// and the next Alloc handed out NilPage as a live page.
	m := NewManager(Options{PageSize: 128})
	m.Free(NilPage)
	id, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if id == NilPage {
		t.Fatal("Alloc returned NilPage after Free(NilPage)")
	}
	if got := m.Stats().Frees; got != 0 {
		t.Errorf("Free(NilPage) counted as a free: %d", got)
	}
}

func TestManagerCountsIOErrors(t *testing.T) {
	const ps = 256
	fb := NewFaultBackend(NewMemBackend(ps), 1)
	m := NewManager(Options{PageSize: ps, Backend: fb})
	id, err := m.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, ps)
	if err := m.Write(id, buf); err != nil {
		t.Fatal(err)
	}
	before := GlobalStats()
	fb.FailAt(1, FaultError)
	if err := m.Read(id, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed read: %v", err)
	}
	st := m.Stats()
	if st.IOErrors != 1 {
		t.Errorf("IOErrors = %d, want 1", st.IOErrors)
	}
	if st.ChecksumFailures != 0 {
		t.Errorf("ChecksumFailures = %d, want 0 (fault was not a checksum error)", st.ChecksumFailures)
	}
	if d := GlobalStats().IOErrors - before.IOErrors; d != 1 {
		t.Errorf("global IOErrors delta = %d, want 1", d)
	}
}
