package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// FaultKind selects the failure a FaultBackend injects.
type FaultKind int

const (
	// FaultNone disarms injection.
	FaultNone FaultKind = iota
	// FaultError makes the targeted operation return ErrInjected.
	FaultError
	// FaultShortRead delivers only a prefix of the requested bytes on a
	// read (writes targeted by it fall back to FaultError). The
	// underlying read still happens; the tail of the buffer is zeroed,
	// modelling a file truncated mid-page.
	FaultShortRead
	// FaultTornWrite applies only a prefix of a write before failing,
	// modelling a page torn by power loss mid-write. The prefix length
	// is drawn from the backend's seeded generator.
	FaultTornWrite
	// FaultCrash freezes the backend at the targeted operation: the
	// operation itself fails with ErrCrashed, as does every later one.
	// For a write, the crash happens before any byte is applied. The
	// on-disk image is whatever the preceding operations left — the
	// state a real crash would leave for recovery to find.
	FaultCrash
)

// Sentinel errors for injected failures. Injected errors wrap these, so
// tests distinguish "the fault I planted" from an organic failure with
// errors.Is.
var (
	// ErrInjected is the terminal error of FaultError, FaultShortRead,
	// and FaultTornWrite injections.
	ErrInjected = errors.New("injected fault")
	// ErrCrashed is returned by every operation at and after a
	// FaultCrash point.
	ErrCrashed = errors.New("backend crashed")
)

// FaultBackend wraps a Backend and injects deterministic, seedable
// failures for tests. Operations are counted from 1 in the order they
// reach the backend (reads, writes, and run reads each count as one
// operation; Grow and Sync are passed through uncounted so fault
// schedules track data-path I/O only). Arm a failure with FailAt; the
// same seed and schedule reproduce the same failure byte-for-byte.
//
// All methods are serialized by one mutex, which keeps the operation
// count and the crash state deterministic even under concurrent
// queries. It is a test double: fidelity beats parallelism.
type FaultBackend struct {
	mu    sync.Mutex
	inner Backend
	rng   *rand.Rand
	ops   int64 // operations seen so far

	failOp  int64 // 1-based operation to fail; 0 = disarmed
	kind    FaultKind
	crashed bool
}

// NewFaultBackend wraps inner. seed fixes the random choices (torn-write
// prefix lengths, short-read lengths) so failures reproduce exactly.
func NewFaultBackend(inner Backend, seed int64) *FaultBackend {
	return &FaultBackend{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// FailAt arms the backend to inject kind at the op-th operation from
// now, counting from 1. It also clears any previous crash state and
// resets the operation counter, so sweeps re-arm the same backend.
func (b *FaultBackend) FailAt(op int64, kind FaultKind) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failOp = op
	b.kind = kind
	b.ops = 0
	b.crashed = false
}

// Disarm clears any pending fault and crash state without resetting the
// operation counter.
func (b *FaultBackend) Disarm() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failOp = 0
	b.kind = FaultNone
	b.crashed = false
}

// Ops returns the number of operations the backend has served (or
// failed) since the last FailAt.
func (b *FaultBackend) Ops() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ops
}

// Crashed reports whether a FaultCrash point has fired.
func (b *FaultBackend) Crashed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.crashed
}

// step advances the operation counter and reports which fault (if any)
// fires for this operation. Callers hold b.mu.
func (b *FaultBackend) step() (FaultKind, error) {
	if b.crashed {
		return FaultNone, ErrCrashed
	}
	b.ops++
	if b.failOp != 0 && b.ops == b.failOp {
		if b.kind == FaultCrash {
			b.crashed = true
			return FaultNone, ErrCrashed
		}
		return b.kind, nil
	}
	return FaultNone, nil
}

// ReadPage implements Backend.
func (b *FaultBackend) ReadPage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	kind, err := b.step()
	if err != nil {
		return fmt.Errorf("storage: fault: read page %d: %w", id, err)
	}
	switch kind {
	case FaultError:
		return fmt.Errorf("storage: fault: read page %d: %w", id, ErrInjected)
	case FaultShortRead:
		// Deliver a prefix of the real page and zero the rest, but still
		// fail: a correct FileBackend surfaces short reads as errors,
		// and layers above must never see the partial buffer as data.
		if err := b.inner.ReadPage(id, buf); err != nil {
			return err
		}
		cut := b.rng.Intn(len(buf))
		for i := cut; i < len(buf); i++ {
			buf[i] = 0
		}
		return fmt.Errorf("storage: fault: short read of page %d (%d of %d bytes): %w",
			id, cut, len(buf), ErrInjected)
	case FaultTornWrite:
		return fmt.Errorf("storage: fault: read page %d: %w", id, ErrInjected)
	}
	return b.inner.ReadPage(id, buf)
}

// ReadRun implements RunReader (falling back to page loops when the
// inner backend lacks it). The whole run counts as one operation,
// matching FileBackend's single pread.
func (b *FaultBackend) ReadRun(first PageID, n int, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	kind, err := b.step()
	if err != nil {
		return fmt.Errorf("storage: fault: read run of pages [%d,%d): %w", first, first+PageID(n), err)
	}
	if kind != FaultNone {
		return fmt.Errorf("storage: fault: read run of pages [%d,%d): %w", first, first+PageID(n), ErrInjected)
	}
	if rr, ok := b.inner.(RunReader); ok {
		return rr.ReadRun(first, n, buf)
	}
	ps := len(buf) / n
	for i := 0; i < n; i++ {
		if err := b.inner.ReadPage(first+PageID(i), buf[i*ps:(i+1)*ps]); err != nil {
			return err
		}
	}
	return nil
}

// WritePage implements Backend.
func (b *FaultBackend) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	kind, err := b.step()
	if err != nil {
		return fmt.Errorf("storage: fault: write page %d: %w", id, err)
	}
	switch kind {
	case FaultError, FaultShortRead:
		return fmt.Errorf("storage: fault: write page %d: %w", id, ErrInjected)
	case FaultTornWrite:
		// Apply a random prefix of the new image over the old page, as a
		// sector-at-a-time disk losing power mid-write would, then fail.
		cut := b.rng.Intn(len(buf))
		old := make([]byte, len(buf))
		if rerr := b.inner.ReadPage(id, old); rerr == nil {
			copy(old[:cut], buf[:cut])
			if werr := b.inner.WritePage(id, old); werr != nil {
				return fmt.Errorf("storage: fault: torn write of page %d: %w", id, werr)
			}
		}
		return fmt.Errorf("storage: fault: torn write of page %d (%d of %d bytes applied): %w",
			id, cut, len(buf), ErrInjected)
	}
	return b.inner.WritePage(id, buf)
}

// Grow implements Backend. Growth is passed through uncounted, except
// after a crash point, when the image is frozen.
func (b *FaultBackend) Grow(id PageID) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.crashed {
		return fmt.Errorf("storage: fault: grow to page %d: %w", id, ErrCrashed)
	}
	return b.inner.Grow(id)
}

// Sync implements Syncer (uncounted; frozen after a crash).
func (b *FaultBackend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.crashed {
		return fmt.Errorf("storage: fault: sync: %w", ErrCrashed)
	}
	if s, ok := b.inner.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Close implements Backend. Close always reaches the inner backend so
// tests do not leak file handles, even after a crash.
func (b *FaultBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.inner.Close()
}
