package storage

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"
)

// fillPage returns a page-sized buffer whose contents identify the page.
func fillPage(ps int, tag byte) []byte {
	data := make([]byte, ps)
	for i := range data {
		data[i] = tag ^ byte(i)
	}
	return data
}

// allocRun allocates n consecutive pages and writes identifying data.
func allocRun(t *testing.T, m *Manager, n int) []PageID {
	t.Helper()
	ids := make([]PageID, n)
	for i := range ids {
		id, err := m.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && id != ids[i-1]+1 {
			t.Fatalf("pages not consecutive: %d after %d", id, ids[i-1])
		}
		ids[i] = id
		if err := m.Write(id, fillPage(m.PageSize(), byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	return ids
}

func checkRunData(t *testing.T, m *Manager, buf []byte, n int) {
	t.Helper()
	ps := m.PageSize()
	for i := 0; i < n; i++ {
		if !bytes.Equal(buf[i*ps:(i+1)*ps], fillPage(ps, byte(i))) {
			t.Errorf("page %d of run has wrong contents", i)
		}
	}
}

// TestReadRunOneReadPlusPrefetched is the accounting contract of the
// batched run read: a run of n cold pages on a RunReader backend costs
// one backend Read plus n-1 Prefetched, and the data matches per-page
// reads exactly.
func TestReadRunOneReadPlusPrefetched(t *testing.T) {
	m := NewManager(Options{PageSize: 64}) // MemBackend implements RunReader
	defer m.Close()
	ids := allocRun(t, m, 5)
	m.ResetStats()

	qio := &QueryIO{}
	ctx := WithQueryIO(context.Background(), qio)
	buf := make([]byte, 5*64)
	if err := m.ReadRunCtx(ctx, ids[0], 5, buf); err != nil {
		t.Fatal(err)
	}
	checkRunData(t, m, buf, 5)
	st := m.Stats()
	if st.Reads != 1 || st.Prefetched != 4 || st.Hits != 0 {
		t.Errorf("reads=%d prefetched=%d hits=%d, want 1/4/0", st.Reads, st.Prefetched, st.Hits)
	}
	if qio.Reads.Load() != 1 || qio.Prefetched.Load() != 4 {
		t.Errorf("qio reads=%d prefetched=%d, want 1/4", qio.Reads.Load(), qio.Prefetched.Load())
	}
	if qio.Total() != 5 {
		t.Errorf("qio.Total() = %d, want 5", qio.Total())
	}
}

// TestReadRunSinglePageIsPlainRead: a run of length 1 takes the ordinary
// per-page path — no Prefetched, one Read.
func TestReadRunSinglePageIsPlainRead(t *testing.T) {
	m := NewManager(Options{PageSize: 64})
	defer m.Close()
	ids := allocRun(t, m, 1)
	m.ResetStats()
	buf := make([]byte, 64)
	if err := m.ReadRunCtx(nil, ids[0], 1, buf); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Reads != 1 || st.Prefetched != 0 {
		t.Errorf("reads=%d prefetched=%d, want 1/0", st.Reads, st.Prefetched)
	}
}

// TestReadRunPoolHitSplitsSegments: a page resident in the buffer pool is
// served as a Hit and splits the surrounding misses into two separately
// fetched segments.
func TestReadRunPoolHitSplitsSegments(t *testing.T) {
	m := NewManager(Options{PageSize: 64, BufferPages: 16})
	defer m.Close()
	ids := allocRun(t, m, 5)
	m.DropBuffer()
	probe := make([]byte, 64)
	if err := m.Read(ids[2], probe); err != nil { // cache the middle page only
		t.Fatal(err)
	}
	m.ResetStats()

	qio := &QueryIO{}
	ctx := WithQueryIO(context.Background(), qio)
	buf := make([]byte, 5*64)
	if err := m.ReadRunCtx(ctx, ids[0], 5, buf); err != nil {
		t.Fatal(err)
	}
	checkRunData(t, m, buf, 5)
	st := m.Stats()
	// Segments [0,1] and [3,4]: one Read plus one Prefetched each; page 2
	// is a pool hit.
	if st.Reads != 2 || st.Prefetched != 2 || st.Hits != 1 {
		t.Errorf("reads=%d prefetched=%d hits=%d, want 2/2/1", st.Reads, st.Prefetched, st.Hits)
	}
	if qio.Total() != 5 {
		t.Errorf("qio.Total() = %d, want 5", qio.Total())
	}

	// The whole run is now pooled: re-reading it is all hits.
	m.ResetStats()
	if err := m.ReadRunCtx(nil, ids[0], 5, buf); err != nil {
		t.Fatal(err)
	}
	st = m.Stats()
	if st.Reads != 0 || st.Prefetched != 0 || st.Hits != 5 {
		t.Errorf("warm rerun: reads=%d prefetched=%d hits=%d, want 0/0/5", st.Reads, st.Prefetched, st.Hits)
	}
}

// noRunBackend hides the RunReader method of the wrapped backend: the
// embedded interface value only promotes Backend's method set.
type noRunBackend struct{ Backend }

// TestReadRunWithoutRunReaderCountsPerPage: on a backend that cannot
// service run reads, every miss in the run is an ordinary Read and
// nothing is Prefetched, but the data is identical.
func TestReadRunWithoutRunReaderCountsPerPage(t *testing.T) {
	inner := NewMemBackend(64)
	m := NewManager(Options{PageSize: 64, Backend: noRunBackend{inner}})
	defer m.Close()
	ids := allocRun(t, m, 4)
	m.ResetStats()
	buf := make([]byte, 4*64)
	if err := m.ReadRunCtx(nil, ids[0], 4, buf); err != nil {
		t.Fatal(err)
	}
	checkRunData(t, m, buf, 4)
	st := m.Stats()
	if st.Reads != 4 || st.Prefetched != 0 {
		t.Errorf("reads=%d prefetched=%d, want 4/0", st.Reads, st.Prefetched)
	}
}

// TestReadRunFileBackend exercises the positioned-read fast path of the
// file backend and its parity with per-page reads.
func TestReadRunFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	b, err := NewFileBackend(path, 128)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{PageSize: 128, Backend: b})
	defer m.Close()
	ids := allocRun(t, m, 6)
	m.ResetStats()
	buf := make([]byte, 6*128)
	if err := m.ReadRunCtx(nil, ids[0], 6, buf); err != nil {
		t.Fatal(err)
	}
	checkRunData(t, m, buf, 6)
	st := m.Stats()
	if st.Reads != 1 || st.Prefetched != 5 {
		t.Errorf("reads=%d prefetched=%d, want 1/5", st.Reads, st.Prefetched)
	}
	// Per-page parity.
	single := make([]byte, 128)
	for i, id := range ids {
		if err := m.Read(id, single); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, buf[i*128:(i+1)*128]) {
			t.Errorf("page %d: run read and page read disagree", i)
		}
	}
}

// TestReadRunErrors: nil first page and unallocated pages in the run
// surface as errors, not silent zero pages.
func TestReadRunErrors(t *testing.T) {
	m := NewManager(Options{PageSize: 64})
	defer m.Close()
	buf := make([]byte, 3*64)
	if err := m.ReadRunCtx(nil, NilPage, 3, buf); err == nil {
		t.Error("run read starting at NilPage succeeded")
	}
	ids := allocRun(t, m, 1)
	// Run extends past the last allocated page.
	if err := m.ReadRunCtx(nil, ids[0], 3, buf); err == nil {
		t.Error("run read past allocation succeeded")
	}
	// Zero-length run is a no-op.
	if err := m.ReadRunCtx(nil, ids[0], 0, nil); err != nil {
		t.Errorf("zero-length run read: %v", err)
	}
}
