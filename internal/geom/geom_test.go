package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPoint(rng *rand.Rand, dim int) Point {
	p := make(Point, dim)
	for i := range p {
		p[i] = rng.NormFloat64() * 10
	}
	return p
}

func randRect(rng *rand.Rand, dim int) Rect {
	a, b := randPoint(rng, dim), randPoint(rng, dim)
	lo := make(Point, dim)
	hi := make(Point, dim)
	for i := range a {
		lo[i] = math.Min(a[i], b[i])
		hi[i] = math.Max(a[i], b[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

func TestAreaMarginCenter(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 3})
	if r.Area() != 6 {
		t.Errorf("Area = %v, want 6", r.Area())
	}
	if r.Margin() != 5 {
		t.Errorf("Margin = %v, want 5", r.Margin())
	}
	c := r.Center()
	if c[0] != 1 || c[1] != 1.5 {
		t.Errorf("Center = %v", c)
	}
}

func TestContainsIntersects(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if !r.Contains(Point{5, 5}) || !r.Contains(Point{0, 10}) {
		t.Error("Contains failed for interior/boundary point")
	}
	if r.Contains(Point{-0.001, 5}) {
		t.Error("Contains accepted an outside point")
	}
	s := NewRect(Point{10, 10}, Point{20, 20})
	if !r.Intersects(s) {
		t.Error("touching rectangles should intersect")
	}
	u := NewRect(Point{10.5, 10.5}, Point{20, 20})
	if r.Intersects(u) {
		t.Error("disjoint rectangles reported intersecting")
	}
	if !r.ContainsRect(NewRect(Point{1, 1}, Point{9, 9})) {
		t.Error("ContainsRect failed for contained rect")
	}
	if r.ContainsRect(NewRect(Point{1, 1}, Point{11, 9})) {
		t.Error("ContainsRect accepted a protruding rect")
	}
}

func TestOverlapArea(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{4, 4})
	s := NewRect(Point{2, 2}, Point{6, 6})
	if got := r.OverlapArea(s); got != 4 {
		t.Errorf("OverlapArea = %v, want 4", got)
	}
	d := NewRect(Point{5, 5}, Point{6, 6})
	if got := r.OverlapArea(d); got != 0 {
		t.Errorf("OverlapArea disjoint = %v, want 0", got)
	}
}

func TestUnionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 4)
		s := randRect(rng, 4)
		u := r.Union(s)
		return u.ContainsRect(r) && u.ContainsRect(s) &&
			u.Area() >= r.Area() && u.Area() >= s.Area() &&
			r.Enlargement(s) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinDist(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 2})
	if got := r.MinDist(Point{1, 1}); got != 0 {
		t.Errorf("MinDist inside = %v, want 0", got)
	}
	if got := r.MinDist(Point{5, 2}); got != 3 {
		t.Errorf("MinDist side = %v, want 3", got)
	}
	if got := r.MinDist(Point{5, 6}); math.Abs(got-5) > 1e-12 {
		t.Errorf("MinDist corner = %v, want 5", got)
	}
}

func TestMinDistLowerBoundsPointDistances(t *testing.T) {
	// MINDIST(p, r) <= dist(p, q) for every q inside r.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 3)
		p := randPoint(rng, 3)
		md := r.MinDist(p)
		for trial := 0; trial < 20; trial++ {
			q := make(Point, 3)
			for i := range q {
				q[i] = r.Lo[i] + rng.Float64()*(r.Hi[i]-r.Lo[i])
			}
			if Dist(p, q) < md-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxDistDominatesMinDist(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 3)
		p := randPoint(rng, 3)
		return r.MinMaxDist(p) >= r.MinDist(p)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxDistUpperBoundsSomeFacePoint(t *testing.T) {
	// MINMAXDIST guarantees an object within that distance if every face
	// of r touches an object; check it is at least the distance to the
	// nearest corner is not exceeded, i.e. MINMAXDIST <= max corner dist.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		r := randRect(rng, 2)
		p := randPoint(rng, 2)
		corners := []Point{
			{r.Lo[0], r.Lo[1]}, {r.Lo[0], r.Hi[1]},
			{r.Hi[0], r.Lo[1]}, {r.Hi[0], r.Hi[1]},
		}
		maxCorner := 0.0
		for _, c := range corners {
			if d := Dist(p, c); d > maxCorner {
				maxCorner = d
			}
		}
		if got := r.MinMaxDist(p); got > maxCorner+1e-9 {
			t.Fatalf("MinMaxDist %v exceeds farthest corner %v", got, maxCorner)
		}
	}
}

func TestRectMinDist(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1})
	s := NewRect(Point{4, 5}, Point{6, 7})
	if got := r.RectMinDistTo(s); got != 5 {
		t.Errorf("RectMinDist = %v, want 5", got)
	}
	o := NewRect(Point{0.5, 0.5}, Point{2, 2})
	if got := RectMinDist(r, o); got != 0 {
		t.Errorf("RectMinDist overlapping = %v, want 0", got)
	}
}

// RectMinDistTo is a tiny shim so the test reads naturally.
func (r Rect) RectMinDistTo(s Rect) float64 { return RectMinDist(r, s) }

func TestRectMinDistLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRect(rng, 3)
		s := randRect(rng, 3)
		md := RectMinDist(r, s)
		for trial := 0; trial < 10; trial++ {
			p := make(Point, 3)
			q := make(Point, 3)
			for i := range p {
				p[i] = r.Lo[i] + rng.Float64()*(r.Hi[i]-r.Lo[i])
				q[i] = s.Lo[i] + rng.Float64()*(s.Hi[i]-s.Lo[i])
			}
			if Dist(p, q) < md-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMBR(t *testing.T) {
	pts := []Point{{1, 5}, {3, 2}, {-1, 4}}
	r := MBR(pts)
	if r.Lo[0] != -1 || r.Lo[1] != 2 || r.Hi[0] != 3 || r.Hi[1] != 5 {
		t.Errorf("MBR = %v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("MBR does not contain %v", p)
		}
	}
}

func TestMBRRects(t *testing.T) {
	rects := []Rect{
		NewRect(Point{0, 0}, Point{1, 1}),
		NewRect(Point{5, -2}, Point{6, 0}),
	}
	u := MBRRects(rects)
	for _, r := range rects {
		if !u.ContainsRect(r) {
			t.Errorf("MBRRects does not contain %v", r)
		}
	}
}

func TestExpand(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{1, 1}).Expand(0.5)
	if r.Lo[0] != -0.5 || r.Hi[1] != 1.5 {
		t.Errorf("Expand = %v", r)
	}
	per := NewRect(Point{0, 0}, Point{1, 1}).ExpandPer([]float64{1, 2})
	if per.Lo[0] != -1 || per.Lo[1] != -2 || per.Hi[0] != 2 || per.Hi[1] != 3 {
		t.Errorf("ExpandPer = %v", per)
	}
}

func TestPointRectAndClone(t *testing.T) {
	p := Point{1, 2}
	r := PointRect(p)
	if r.Area() != 0 || !r.Contains(p) {
		t.Errorf("PointRect = %v", r)
	}
	p[0] = 99
	if r.Lo[0] == 99 {
		t.Error("PointRect aliases the input point")
	}
	c := r.Clone()
	c.Lo[0] = -5
	if r.Lo[0] == -5 {
		t.Error("Clone aliases the original")
	}
}

func TestNewRectPanics(t *testing.T) {
	for _, tc := range []struct {
		name   string
		lo, hi Point
	}{
		{"mismatched dims", Point{0}, Point{1, 2}},
		{"inverted", Point{2}, Point{1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			NewRect(tc.lo, tc.hi)
		})
	}
}

func TestMBREmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MBR(nil)
}

func TestMinMaxDistOnPointRect(t *testing.T) {
	// For a degenerate (point) rectangle both metrics equal the plain
	// distance.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		p := randPoint(rng, 4)
		q := randPoint(rng, 4)
		r := PointRect(q)
		d := Dist(p, q)
		if math.Abs(r.MinDist(p)-d) > 1e-12 || math.Abs(r.MinMaxDist(p)-d) > 1e-12 {
			t.Fatalf("point rect metrics disagree: %v %v vs %v", r.MinDist(p), r.MinMaxDist(p), d)
		}
	}
}

func TestStringRendering(t *testing.T) {
	r := NewRect(Point{0, -1.5}, Point{2, 3})
	s := r.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}
