// Package geom provides the n-dimensional points and rectangles shared by
// the R*-tree and the similarity engine: hyper-rectangles with the usual
// area/margin/overlap measures, the MINDIST and MINMAXDIST metrics used by
// nearest-neighbor search, and minimum bounding rectangle construction.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in n-dimensional space.
type Point []float64

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	out := make(Point, len(p))
	copy(out, p)
	return out
}

// Rect is an axis-aligned hyper-rectangle given by per-dimension closed
// intervals [Lo[i], Hi[i]].
type Rect struct {
	Lo, Hi Point
}

// NewRect returns a rectangle with the given bounds. It panics if the
// bounds have different lengths or are inverted in any dimension.
func NewRect(lo, hi Point) Rect {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: bounds of dimension %d and %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: inverted bounds in dimension %d: [%v, %v]", i, lo[i], hi[i]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// PointRect returns the degenerate rectangle containing exactly p.
func PointRect(p Point) Rect {
	return Rect{Lo: p.Clone(), Hi: p.Clone()}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range c {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Area returns the volume of r (product of side lengths).
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of the side lengths of r (the R*-tree margin
// measure, up to the constant factor 2^(d-1)).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Contains reports whether r fully contains p.
func (r Rect) Contains(p Point) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether r fully contains s.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Lo[i] > s.Hi[i] || s.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// OverlapArea returns the volume of the intersection of r and s
// (0 if they do not intersect).
func (r Rect) OverlapArea(s Rect) float64 {
	a := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	for i := range lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Enlargement returns the increase in area needed for r to cover s.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Expand returns r grown by eps on both sides of every dimension.
func (r Rect) Expand(eps float64) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	for i := range lo {
		lo[i] = r.Lo[i] - eps
		hi[i] = r.Hi[i] + eps
	}
	return Rect{Lo: lo, Hi: hi}
}

// ExpandPer returns r grown by eps[i] on both sides of dimension i.
func (r Rect) ExpandPer(eps []float64) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	for i := range lo {
		lo[i] = r.Lo[i] - eps[i]
		hi[i] = r.Hi[i] + eps[i]
	}
	return Rect{Lo: lo, Hi: hi}
}

// MinDist returns the minimum Euclidean distance between p and any point
// of r (the MINDIST metric of Roussopoulos et al.). Zero if p is inside r.
func (r Rect) MinDist(p Point) float64 {
	var ss float64
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Lo[i]:
			d = r.Lo[i] - p[i]
		case p[i] > r.Hi[i]:
			d = p[i] - r.Hi[i]
		}
		ss += d * d
	}
	return math.Sqrt(ss)
}

// MinMaxDist returns the MINMAXDIST metric of Roussopoulos et al.: the
// minimum over dimensions of the maximum distance from p to the nearer
// face in that dimension combined with the farther corners elsewhere. It
// upper-bounds the distance from p to the nearest object inside r.
func (r Rect) MinMaxDist(p Point) float64 {
	n := len(p)
	// Precompute, per dimension, the squared distance to the nearer
	// boundary (rm) and to the farther boundary (rM).
	rmSq := make([]float64, n)
	rMSq := make([]float64, n)
	var sumMax float64
	for i := 0; i < n; i++ {
		mid := (r.Lo[i] + r.Hi[i]) / 2
		var rm float64
		if p[i] <= mid {
			rm = r.Lo[i]
		} else {
			rm = r.Hi[i]
		}
		var rM float64
		if p[i] >= mid {
			rM = r.Lo[i]
		} else {
			rM = r.Hi[i]
		}
		rmSq[i] = (p[i] - rm) * (p[i] - rm)
		rMSq[i] = (p[i] - rM) * (p[i] - rM)
		sumMax += rMSq[i]
	}
	best := math.Inf(1)
	for k := 0; k < n; k++ {
		v := sumMax - rMSq[k] + rmSq[k]
		if v < best {
			best = v
		}
	}
	return math.Sqrt(best)
}

// RectMinDist returns the minimum Euclidean distance between any point of
// r and any point of s. Zero if they intersect.
func RectMinDist(r, s Rect) float64 {
	var ss float64
	for i := range r.Lo {
		var d float64
		switch {
		case r.Hi[i] < s.Lo[i]:
			d = s.Lo[i] - r.Hi[i]
		case s.Hi[i] < r.Lo[i]:
			d = r.Lo[i] - s.Hi[i]
		}
		ss += d * d
	}
	return math.Sqrt(ss)
}

// MBR returns the minimum bounding rectangle of a non-empty set of points.
func MBR(points []Point) Rect {
	if len(points) == 0 {
		panic("geom: MBR of no points")
	}
	lo := points[0].Clone()
	hi := points[0].Clone()
	for _, p := range points[1:] {
		for i := range p {
			if p[i] < lo[i] {
				lo[i] = p[i]
			}
			if p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// MBRRects returns the minimum bounding rectangle of a non-empty set of
// rectangles.
func MBRRects(rects []Rect) Rect {
	if len(rects) == 0 {
		panic("geom: MBRRects of no rectangles")
	}
	out := rects[0].Clone()
	for _, r := range rects[1:] {
		out = out.Union(r)
	}
	return out
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss)
}

// String renders the rectangle as "[lo..hi] x [lo..hi] ...".
func (r Rect) String() string {
	var b strings.Builder
	for i := range r.Lo {
		if i > 0 {
			b.WriteString(" x ")
		}
		fmt.Fprintf(&b, "[%.4g, %.4g]", r.Lo[i], r.Hi[i])
	}
	return b.String()
}
