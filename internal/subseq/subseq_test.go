package subseq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"tsq/internal/datagen"
	"tsq/internal/geom"
	"tsq/internal/series"
)

func randSeqs(seed int64, count, minLen, maxLen int) []series.Series {
	rng := rand.New(rand.NewSource(seed))
	out := make([]series.Series, count)
	for i := range out {
		n := minLen + rng.Intn(maxLen-minLen+1)
		s := make(series.Series, n)
		x := 0.0
		for t := range s {
			x += rng.NormFloat64()
			s[t] = x
		}
		out[i] = s
	}
	return out
}

func matchSet(ms []Match) map[[2]int]bool {
	out := make(map[[2]int]bool, len(ms))
	for _, m := range ms {
		out[[2]int{m.Seq, m.Offset}] = true
	}
	return out
}

func TestSlidingFeaturesMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, w := range []int{4, 16, 32, 50} {
		s := make(series.Series, 200)
		for i := range s {
			s[i] = rng.NormFloat64() * 10
		}
		k := 3
		got := slidingFeatures(s, w, k)
		if len(got) != len(s)-w+1 {
			t.Fatalf("w=%d: %d trail points", w, len(got))
		}
		for p := range got {
			want := windowFeature(s[p:p+w], k)
			for d := range want {
				if math.Abs(got[p][d]-want[d]) > 1e-6*(1+math.Abs(want[d])) {
					t.Fatalf("w=%d p=%d dim=%d: sliding %v vs direct %v", w, p, d, got[p][d], want[d])
				}
			}
		}
	}
}

func TestFeatureDistanceIsLowerBound(t *testing.T) {
	// The contractive property that makes the index exact: feature-space
	// distance never exceeds the true window distance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 16 + rng.Intn(48)
		k := 1 + rng.Intn(w/4)
		a := make(series.Series, w)
		b := make(series.Series, w)
		for i := 0; i < w; i++ {
			a[i] = rng.NormFloat64() * 5
			b[i] = rng.NormFloat64() * 5
		}
		fa := windowFeature(a, k)
		fb := windowFeature(b, k)
		return geom.Dist(fa, fb) <= windowDistance(a, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSearchMatchesScan(t *testing.T) {
	seqs := randSeqs(2, 20, 100, 300)
	for _, adaptive := range []bool{false, true} {
		ix, err := Build(seqs, Options{Window: 32, Adaptive: adaptive, PageSize: 1024})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 10; trial++ {
			// Query: a stored window plus noise, so matches exist.
			src := seqs[rng.Intn(len(seqs))]
			off := rng.Intn(len(src) - 32)
			q := src[off : off+32].Clone()
			for i := range q {
				q[i] += rng.NormFloat64() * 0.2
			}
			eps := 2 + rng.Float64()*4
			got, st, err := ix.Search(q, eps)
			if err != nil {
				t.Fatal(err)
			}
			want := ScanSearch(seqs, q, eps)
			if len(want) == 0 {
				t.Fatalf("trial %d: degenerate (no matches)", trial)
			}
			gs, ws := matchSet(got), matchSet(want)
			if len(gs) != len(ws) {
				t.Fatalf("adaptive=%v trial %d: %d matches, want %d", adaptive, trial, len(gs), len(ws))
			}
			for k := range ws {
				if !gs[k] {
					t.Fatalf("adaptive=%v trial %d: missing %v", adaptive, trial, k)
				}
			}
			if st.NodeAccesses == 0 {
				t.Error("no node accesses recorded")
			}
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	seqs := randSeqs(4, 30, 200, 400)
	ix, err := Build(seqs, Options{Window: 32, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	q := seqs[0][10:42].Clone()
	_, st, err := ix.Search(q, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	totalWindows := 0
	for _, s := range seqs {
		totalWindows += len(s) - 32 + 1
	}
	if st.Candidates >= totalWindows/2 {
		t.Errorf("index verified %d of %d windows; barely any pruning", st.Candidates, totalWindows)
	}
}

func TestExactSelfMatch(t *testing.T) {
	seqs := randSeqs(5, 5, 80, 120)
	ix, err := Build(seqs, Options{Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	q := seqs[2][7:47]
	got, _, err := ix.Search(q, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range got {
		if m.Seq == 2 && m.Offset == 7 {
			found = true
			if m.Distance > 1e-9 {
				t.Errorf("self-match distance %v", m.Distance)
			}
		}
	}
	if !found {
		t.Error("exact self-match not found")
	}
}

func TestShortSequencesSkipped(t *testing.T) {
	seqs := []series.Series{
		make(series.Series, 10), // shorter than the window
		randSeqs(6, 1, 64, 64)[0],
	}
	ix, err := Build(seqs, Options{Window: 32})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Search(seqs[1][0:32], 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range got {
		if m.Seq == 0 {
			t.Error("match in a too-short sequence")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, Options{Window: 1}); err == nil {
		t.Error("window 1 accepted")
	}
	if _, err := Build(nil, Options{Window: 8, K: 5}); err == nil {
		t.Error("k too large accepted")
	}
	ix, err := Build(randSeqs(7, 2, 50, 60), Options{Window: 16})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.Search(make(series.Series, 8), 1); err == nil {
		t.Error("wrong-length query accepted")
	}
}

func TestAdaptiveVsFixedSubtrailCount(t *testing.T) {
	// Both heuristics must cover every window exactly once.
	seqs := randSeqs(8, 6, 150, 250)
	for _, adaptive := range []bool{false, true} {
		ix, err := Build(seqs, Options{Window: 32, Adaptive: adaptive})
		if err != nil {
			t.Fatal(err)
		}
		covered := make(map[[2]int]int)
		for _, tr := range ix.subtrails {
			for off := tr.Start; off < tr.Start+tr.Count; off++ {
				covered[[2]int{tr.Seq, off}]++
			}
		}
		for si, s := range seqs {
			for off := 0; off+32 <= len(s); off++ {
				if covered[[2]int{si, off}] != 1 {
					t.Fatalf("adaptive=%v: window (%d,%d) covered %d times", adaptive, si, off, covered[[2]int{si, off}])
				}
			}
		}
	}
}

func TestStockWorkload(t *testing.T) {
	// Sanity on the realistic generator: find where a pattern recurs.
	stocks := datagen.StockMarket(9, 50, 128, datagen.DefaultMarketOptions())
	ix, err := Build(stocks, Options{Window: 24, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	q := stocks[3][50:74]
	got, _, err := ix.Search(q, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := ScanSearch(stocks, q, 0.5)
	if len(got) != len(want) {
		t.Fatalf("%d matches, scan %d", len(got), len(want))
	}
}

func TestWindowEqualsSeriesLength(t *testing.T) {
	// w == len(s): exactly one window per sequence; subsequence matching
	// degenerates to whole matching on raw values.
	seqs := randSeqs(10, 8, 40, 40)
	ix, err := Build(seqs, Options{Window: 40})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Search(seqs[3], 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Seq != 3 || got[0].Offset != 0 {
		t.Errorf("whole-window search: %v", got)
	}
}

func TestAdaptiveCutsConstantTrail(t *testing.T) {
	// A constant sequence has a degenerate (single-point) trail; the
	// adaptive heuristic must still cover every window.
	s := make(series.Series, 100)
	for i := range s {
		s[i] = 5
	}
	ix, err := Build([]series.Series{s}, Options{Window: 16, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ix.Search(s[:16], 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100-16+1 {
		t.Errorf("constant sequence: %d matches, want %d", len(got), 100-16+1)
	}
}
