// Package subseq implements subsequence matching after Faloutsos,
// Ranganathan and Manolopoulos (SIGMOD '94), the extension of the
// whole-sequence indexing technique that the paper builds on: a window of
// length w slides over every stored sequence, each position maps to the
// first k DFT coefficients of the window (a point in 2k-dimensional
// feature space), consecutive points form a trail, trails are cut into
// subtrails, and the minimum bounding rectangle of each subtrail is
// stored in an R*-tree. A range query around the query window's features
// retrieves candidate (sequence, offset) ranges, which are verified
// exactly; the feature map is contractive (Parseval on a coefficient
// subset), so no qualifying offset is missed.
//
// Features use the real/imaginary coordinates of the coefficients (not
// the polar form of the transformation machinery) because the Euclidean
// distance in those coordinates exactly lower-bounds the true distance.
// Coefficients f >= 1 are scaled by sqrt(2) so the symmetry property
// (mirror coefficients carry the same energy) tightens the bound, as in
// the main index.
package subseq

import (
	"fmt"
	"math"
	"math/cmplx"

	"tsq/internal/geom"
	"tsq/internal/rtree"
	"tsq/internal/series"
	"tsq/internal/storage"
)

// Options configures Build.
type Options struct {
	// Window is the query length w. Required.
	Window int
	// K is the number of DFT coefficients per window (feature space has
	// 2K dimensions). Default 3.
	K int
	// SubtrailLen is the number of consecutive window positions grouped
	// into one bounding rectangle with the fixed-length heuristic.
	// Default 16.
	SubtrailLen int
	// Adaptive uses the greedy marginal-volume heuristic instead of
	// fixed-length subtrails: a subtrail is cut when extending it would
	// grow its rectangle's margin by more than its share.
	Adaptive bool
	// PageSize is the index page size; storage.DefaultPageSize if zero.
	PageSize int
	// Backend overrides the storage backend the trail index is built on.
	// Nil means in-memory. Exposed so fault-injection tests can run the
	// subsequence path over a failing backend.
	Backend storage.Backend
}

func (o Options) withDefaults() (Options, error) {
	if o.Window < 2 {
		return o, fmt.Errorf("subseq: window %d too small", o.Window)
	}
	if o.K == 0 {
		o.K = 3
	}
	if 2*o.K > o.Window {
		return o, fmt.Errorf("subseq: k=%d too large for window %d", o.K, o.Window)
	}
	if o.SubtrailLen == 0 {
		o.SubtrailLen = 16
	}
	if o.PageSize == 0 {
		o.PageSize = storage.DefaultPageSize
	}
	return o, nil
}

// Match is one qualifying subsequence: sequence Seq matches the query at
// offset Offset with the given Euclidean distance.
type Match struct {
	Seq      int
	Offset   int
	Distance float64
}

// Stats reports the work of one search.
type Stats struct {
	NodeAccesses int // index nodes fetched
	Candidates   int // window offsets verified exactly
	Abandoned    int // window verifications cut short by the eps cutoff
}

// subtrail is one leaf entry: window positions [Start, Start+Count) of
// sequence Seq.
type subtrail struct {
	Seq, Start, Count int
}

// Index is the subsequence-matching trail index.
type Index struct {
	opts      Options
	seqs      []series.Series
	tree      *rtree.Tree
	subtrails []subtrail
}

// Build indexes every window of every sequence. Sequences shorter than
// the window are skipped.
func Build(seqs []series.Series, opts Options) (*Index, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	mgr := storage.NewManager(storage.Options{PageSize: opts.PageSize, Backend: opts.Backend})
	tree, err := rtree.New(mgr, 2*opts.K)
	if err != nil {
		return nil, err
	}
	ix := &Index{opts: opts, seqs: make([]series.Series, len(seqs)), tree: tree}
	for si, s := range seqs {
		ix.seqs[si] = s.Clone()
		if len(s) < opts.Window {
			continue
		}
		trail := slidingFeatures(s, opts.Window, opts.K)
		var cuts []int
		if opts.Adaptive {
			cuts = adaptiveCuts(trail, opts.SubtrailLen)
		} else {
			cuts = fixedCuts(len(trail), opts.SubtrailLen)
		}
		start := 0
		for _, end := range cuts {
			mbr := geom.MBR(trail[start:end])
			rec := int64(len(ix.subtrails))
			ix.subtrails = append(ix.subtrails, subtrail{Seq: si, Start: start, Count: end - start})
			if err := tree.Insert(mbr, rec); err != nil {
				return nil, err
			}
			start = end
		}
	}
	return ix, nil
}

// NumSubtrails returns the number of bounding rectangles in the index.
func (ix *Index) NumSubtrails() int { return len(ix.subtrails) }

// Window returns the indexed window length.
func (ix *Index) Window() int { return ix.opts.Window }

// Search returns every (sequence, offset) whose length-w window is within
// eps of the query in Euclidean distance. The query must have length w.
func (ix *Index) Search(query series.Series, eps float64) ([]Match, Stats, error) {
	var st Stats
	if len(query) != ix.opts.Window {
		return nil, st, fmt.Errorf("subseq: query length %d, window %d", len(query), ix.opts.Window)
	}
	qf := windowFeature(query, ix.opts.K)
	var out []Match
	err := ix.walk(ix.tree.Root(), qf, eps, &st, &out, query)
	return out, st, err
}

// walk is a MINDIST-pruned range traversal: a rectangle may contain a
// qualifying feature point only if its MINDIST to the query feature is at
// most eps (the feature map is contractive).
func (ix *Index) walk(id storage.PageID, qf geom.Point, eps float64, st *Stats, out *[]Match, query series.Series) error {
	n, err := ix.tree.Load(id)
	if err != nil {
		return err
	}
	st.NodeAccesses++
	for _, e := range n.Entries {
		if e.Rect.MinDist(qf) > eps {
			continue
		}
		if !n.Leaf {
			if err := ix.walk(e.Child, qf, eps, st, out, query); err != nil {
				return err
			}
			continue
		}
		tr := ix.subtrails[e.Rec]
		s := ix.seqs[tr.Seq]
		for off := tr.Start; off < tr.Start+tr.Count; off++ {
			st.Candidates++
			// Early-abandoning verification: squared differences only
			// accumulate, so once the partial sum passes eps² the
			// offset cannot match. Non-abandoned distances are
			// bit-identical to windowDistance.
			d, abandoned := series.DistEuclideanAbandon(s[off:off+ix.opts.Window], query, eps)
			if abandoned {
				st.Abandoned++
				continue
			}
			if d <= eps {
				*out = append(*out, Match{Seq: tr.Seq, Offset: off, Distance: d})
			}
		}
	}
	return nil
}

// ScanSearch is the brute-force oracle: every offset of every sequence.
func ScanSearch(seqs []series.Series, query series.Series, eps float64) []Match {
	w := len(query)
	var out []Match
	for si, s := range seqs {
		for off := 0; off+w <= len(s); off++ {
			if d := windowDistance(s[off:off+w], query); d <= eps {
				out = append(out, Match{Seq: si, Offset: off, Distance: d})
			}
		}
	}
	return out
}

// windowDistance is the oracle's distance: series.EuclideanDistance, so
// the oracle stays bit-identical to the non-abandoned results of the
// blocked DistEuclideanAbandon kernel the index search uses.
func windowDistance(a, b series.Series) float64 {
	return series.EuclideanDistance(a, b)
}

// windowFeature maps one window to its feature point: the real and
// imaginary parts of unitary DFT coefficients 0..k-1, with coefficients
// f >= 1 scaled by sqrt(2) (symmetry property).
func windowFeature(win series.Series, k int) geom.Point {
	w := len(win)
	p := make(geom.Point, 2*k)
	for f := 0; f < k; f++ {
		var re, im float64
		for t, v := range win {
			angle := -2 * math.Pi * float64(t) * float64(f) / float64(w)
			re += v * math.Cos(angle)
			im += v * math.Sin(angle)
		}
		scale := 1 / math.Sqrt(float64(w))
		if f >= 1 {
			scale *= math.Sqrt2
		}
		p[2*f] = re * scale
		p[2*f+1] = im * scale
	}
	return p
}

// slidingFeatures computes the trail of feature points for every window
// position with the incremental sliding DFT:
//
//	X_f(p+1) = e^{j*2*pi*f/w} * (X_f(p) - x_p) + x_{p+w} * e^{-j*2*pi*(w-1)*f/w}
//
// so a length-L sequence costs O(L*k) instead of O(L*w*k).
func slidingFeatures(s series.Series, w, k int) []geom.Point {
	count := len(s) - w + 1
	out := make([]geom.Point, count)
	// Initial window, computed directly (unnormalized coefficients).
	X := make([]complex128, k)
	for f := 0; f < k; f++ {
		for t := 0; t < w; t++ {
			angle := -2 * math.Pi * float64(t) * float64(f) / float64(w)
			X[f] += complex(s[t], 0) * cmplx.Exp(complex(0, angle))
		}
	}
	// Note e^{-j*2*pi*(w-1)*f/w} = e^{j*2*pi*f/w}, so the recurrence
	// collapses to X_f(p+1) = rot_f * (X_f(p) - x_p + x_{p+w}).
	rot := make([]complex128, k) // e^{j*2*pi*f/w}
	for f := 0; f < k; f++ {
		rot[f] = cmplx.Exp(complex(0, 2*math.Pi*float64(f)/float64(w)))
	}
	emit := func(p int) {
		pt := make(geom.Point, 2*k)
		for f := 0; f < k; f++ {
			scale := 1 / math.Sqrt(float64(w))
			if f >= 1 {
				scale *= math.Sqrt2
			}
			pt[2*f] = real(X[f]) * scale
			pt[2*f+1] = imag(X[f]) * scale
		}
		out[p] = pt
	}
	emit(0)
	for p := 0; p+1 < count; p++ {
		old := complex(s[p], 0)
		fresh := complex(s[p+w], 0)
		for f := 0; f < k; f++ {
			X[f] = rot[f] * (X[f] - old + fresh)
		}
		emit(p + 1)
	}
	return out
}

// fixedCuts returns cut positions for fixed-length subtrails.
func fixedCuts(n, per int) []int {
	var cuts []int
	for end := per; end < n; end += per {
		cuts = append(cuts, end)
	}
	return append(cuts, n)
}

// adaptiveCuts implements a greedy marginal-cost heuristic in the spirit
// of FRM's adaptive subtrail division: a subtrail is cut when adding the
// next point would grow the rectangle's margin by more than twice the
// running average growth, or when it reaches 4x the nominal length.
func adaptiveCuts(trail []geom.Point, nominal int) []int {
	var cuts []int
	start := 0
	rect := geom.PointRect(trail[0])
	var totalGrowth float64
	for i := 1; i < len(trail); i++ {
		grown := rect.Union(geom.PointRect(trail[i]))
		growth := grown.Margin() - rect.Margin()
		count := i - start
		avg := totalGrowth / math.Max(1, float64(count-1))
		if count >= 4*nominal || (count >= 2 && growth > 2*avg && growth > 0) {
			cuts = append(cuts, i)
			start = i
			rect = geom.PointRect(trail[i])
			totalGrowth = 0
			continue
		}
		rect = grown
		totalGrowth += growth
	}
	return append(cuts, len(trail))
}
