package datagen

import (
	"math"
	"math/rand"
	"testing"

	"tsq/internal/series"
	"tsq/internal/transform"
)

func TestRandomWalkSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomWalk(rng, 128)
	if len(s) != 128 {
		t.Fatalf("len = %d", len(s))
	}
	// Steps must be bounded by 500 in absolute value.
	prev := 0.0
	for i, v := range s {
		step := v - prev
		if math.Abs(step) > 500 {
			t.Fatalf("step %d = %v exceeds 500", i, step)
		}
		prev = v
	}
}

func TestRandomWalksDeterministic(t *testing.T) {
	a := RandomWalks(42, 5, 64)
	b := RandomWalks(42, 5, 64)
	if len(a) != 5 {
		t.Fatalf("count = %d", len(a))
	}
	for i := range a {
		if series.EuclideanDistance(a[i], b[i]) != 0 {
			t.Fatalf("walk %d differs across runs with the same seed", i)
		}
	}
	c := RandomWalks(43, 5, 64)
	if series.EuclideanDistance(a[0], c[0]) == 0 {
		t.Error("different seeds produced identical walks")
	}
}

func TestStockMarketShape(t *testing.T) {
	stocks := StockMarket(7, 200, 128, DefaultMarketOptions())
	if len(stocks) != 200 {
		t.Fatalf("count = %d", len(stocks))
	}
	for i, s := range stocks {
		if len(s) != 128 {
			t.Fatalf("stock %d has length %d", i, len(s))
		}
		for _, v := range s {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("stock %d has non-positive or invalid price %v", i, v)
			}
		}
	}
}

func TestStockMarketHasSimilarPairsUnderMA(t *testing.T) {
	// The calibration property the substitution relies on: some pairs of
	// distinct stocks become highly correlated after a moving average of
	// their normal forms, and most pairs do not.
	stocks := StockMarket(11, 300, 128, DefaultMarketOptions())
	mv := 15
	norms := make([]series.Series, len(stocks))
	for i, s := range stocks {
		n, _, _ := s.NormalForm()
		norms[i] = series.CircularMovingAverage(n, mv)
	}
	eps := series.DistanceForCorrelation(128, 0.96)
	close, far := 0, 0
	for i := 0; i < len(norms); i++ {
		for j := i + 1; j < len(norms); j++ {
			ni, _, _ := norms[i].NormalForm()
			nj, _, _ := norms[j].NormalForm()
			_ = ni
			_ = nj
			if series.EuclideanDistance(norms[i], norms[j]) <= eps {
				close++
			} else {
				far++
			}
		}
	}
	if close == 0 {
		t.Error("no similar pairs under moving average; range queries would always be empty")
	}
	if close*20 > far {
		t.Errorf("too many similar pairs (%d close vs %d far); queries would degenerate", close, far)
	}
}

func TestMarketIndexesExample11(t *testing.T) {
	// Example 1.1's qualitative claims: the raw series are far apart (very
	// different scales), but normal forms under a short moving average
	// bring COMPV and NYV together, while COMPV and DECL need a longer one.
	compv, nyv, decl := MarketIndexes(3, 128)
	if d := series.EuclideanDistance(compv, nyv); d < 100 {
		t.Errorf("raw COMPV-NYV distance %v suspiciously small", d)
	}
	nc, _, _ := compv.NormalForm()
	nn, _, _ := nyv.NormalForm()
	nd, _, _ := decl.NormalForm()

	shortest := func(a, b series.Series, eps float64) int {
		for m := 1; m <= 40; m++ {
			if series.EuclideanDistance(
				series.CircularMovingAverage(a, m),
				series.CircularMovingAverage(b, m)) < eps {
				return m
			}
		}
		return -1
	}
	mNYV := shortest(nc, nn, 3)
	mDECL := shortest(nc, nd, 3)
	if mNYV < 0 || mDECL < 0 {
		t.Fatalf("no moving average brings the pairs within 3: NYV=%d DECL=%d", mNYV, mDECL)
	}
	if mNYV >= mDECL {
		t.Errorf("expected COMPV-NYV to need a shorter MA than COMPV-DECL: %d vs %d", mNYV, mDECL)
	}
}

func TestSpikePairExample12(t *testing.T) {
	// Example 1.2's qualitative claim: momenta are far apart, but shifting
	// one momentum d days right aligns the spikes and shrinks the distance
	// substantially.
	const d = 2
	pcg, pcl := SpikePair(5, 128, d)
	mg := series.CircularMomentum(pcg)
	ml := series.CircularMomentum(pcl)
	before := series.EuclideanDistance(mg, ml)
	n := len(mg)
	shifted := transform.TimeShift(n, d).ApplySeries(mg)
	after := series.EuclideanDistance(shifted, ml)
	if after >= before/1.5 {
		t.Errorf("shifting did not help: before=%v after=%v", before, after)
	}
}

func TestSpikePairPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for oversized offset")
		}
	}()
	SpikePair(1, 16, 8)
}

func TestTemperatures(t *testing.T) {
	ss, labels := Temperatures(7, 4, 3, 64)
	if len(ss) != 12 || len(labels) != 12 {
		t.Fatalf("got %d series, %d labels", len(ss), len(labels))
	}
	if labels[0] != "region0/year0" || labels[11] != "region3/year2" {
		t.Errorf("labels: %q ... %q", labels[0], labels[11])
	}
	// Same region across years correlates strongly (shared seasonal
	// cycle); opposite-hemisphere regions anti-correlate.
	sameRegion := series.Correlation(ss[0], ss[4]) // region0 year0 vs year1
	crossHemisphere := series.Correlation(ss[0], ss[1])
	if sameRegion < 0.5 {
		t.Errorf("same-region correlation %v too low", sameRegion)
	}
	if crossHemisphere > -0.3 {
		t.Errorf("cross-hemisphere correlation %v not negative", crossHemisphere)
	}
	// Deterministic in the seed.
	ss2, _ := Temperatures(7, 4, 3, 64)
	if series.EuclideanDistance(ss[5], ss2[5]) != 0 {
		t.Error("not deterministic")
	}
}
