// Package datagen generates the workloads of the paper's evaluation:
// the synthetic random walks of Sec. 5 (x_t = x_{t-1} + z_t with z uniform
// in [-500, 500]), a synthetic stock market standing in for the paper's
// unavailable 1068-stock data set (see DESIGN.md, substitutions), and the
// constructions behind the motivating examples of Sec. 1 (market indexes
// revealed similar by moving averages; a pair of stocks whose momenta
// align after a two-day shift).
//
// All generators are deterministic in their seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"tsq/internal/series"
)

// RandomWalk returns one synthetic sequence of length n per the paper's
// recipe: x_t = x_{t-1} + z_t, z_t uniform in [-500, 500], x_0 = 0.
func RandomWalk(rng *rand.Rand, n int) series.Series {
	s := make(series.Series, n)
	var x float64
	for i := 0; i < n; i++ {
		x += rng.Float64()*1000 - 500
		s[i] = x
	}
	return s
}

// RandomWalks returns count random walks of length n seeded from seed.
func RandomWalks(seed int64, count, n int) []series.Series {
	rng := rand.New(rand.NewSource(seed))
	out := make([]series.Series, count)
	for i := range out {
		out[i] = RandomWalk(rng, n)
	}
	return out
}

// MarketOptions tunes the synthetic stock market generator.
type MarketOptions struct {
	// Sectors is the number of sector factors stocks load on.
	Sectors int
	// TwinFraction is the fraction of stocks that track their sector
	// closely (these create the close matches range queries find).
	TwinFraction float64
	// NoiseTwin and NoiseOther scale idiosyncratic daily noise relative to
	// the sector move for twin and regular stocks respectively.
	NoiseTwin, NoiseOther float64
	// SpikeProb is the per-stock probability of one price spike.
	SpikeProb float64
	// GapProb is the per-stock probability of a short recording gap
	// (values frozen for a few days, as in the PCL example).
	GapProb float64
}

// DefaultMarketOptions are calibrated so a correlation-0.96 range query
// with a moving-average set over 1068 stocks returns on the order of the
// paper's reported output sizes (~11 matches).
func DefaultMarketOptions() MarketOptions {
	return MarketOptions{
		Sectors:      12,
		TwinFraction: 0.04,
		NoiseTwin:    0.18,
		NoiseOther:   1.1,
		SpikeProb:    0.06,
		GapProb:      0.05,
	}
}

// StockMarket returns count daily-closing-price series of length n with a
// sector-factor structure: each stock follows one of a few sector random
// walks plus idiosyncratic noise, scaled to an arbitrary price level.
// A small fraction of stocks ("twins") track their sector closely so that
// similarity queries under moving averages have non-trivial answers.
func StockMarket(seed int64, count, n int, opts MarketOptions) []series.Series {
	rng := rand.New(rand.NewSource(seed))
	sectors := make([]series.Series, opts.Sectors)
	for s := range sectors {
		sectors[s] = smoothWalk(rng, n, 1.0, 0.12)
	}
	out := make([]series.Series, count)
	for i := range out {
		sector := sectors[rng.Intn(opts.Sectors)]
		twin := rng.Float64() < opts.TwinFraction
		noise := opts.NoiseOther
		if twin {
			noise = opts.NoiseTwin
		}
		level := math.Exp(rng.Float64()*4 + 1) // price level in ~[2.7, 400]
		beta := 0.7 + rng.Float64()*0.6
		s := make(series.Series, n)
		walk := 0.0
		for t := 0; t < n; t++ {
			walk += rng.NormFloat64() * noise
			s[t] = level * (1 + 0.02*(beta*sector[t]+walk))
		}
		if rng.Float64() < opts.SpikeProb {
			at := rng.Intn(n)
			s[at] *= 1 + 0.2 + rng.Float64()*0.3
		}
		if rng.Float64() < opts.GapProb {
			at := 1 + rng.Intn(n-4)
			for g := 0; g < 3; g++ {
				s[at+g] = s[at-1]
			}
		}
		out[i] = s
	}
	return out
}

// smoothWalk returns a random walk with normal steps of the given scale,
// smoothed by an exponential moving average with the given smoothing
// factor, producing the low-frequency-dominated shape of market factors.
func smoothWalk(rng *rand.Rand, n int, step, alpha float64) series.Series {
	s := make(series.Series, n)
	var x, ema float64
	for i := 0; i < n; i++ {
		x += rng.NormFloat64() * step
		if i == 0 {
			ema = x
		} else {
			ema = alpha*x + (1-alpha)*ema
		}
		s[i] = ema
	}
	return s
}

// MarketIndexes reproduces the setting of Example 1.1: three index series
// (modeled on COMPV, NYV and DECL) that look dissimilar raw — wildly
// different scales — but whose normal forms become similar under moving
// averages: a short window (~9 days) suffices for the first pair, while
// the third series carries higher-frequency noise so only a longer window
// (~19 days) brings it within threshold of the first.
func MarketIndexes(seed int64, n int) (compv, nyv, decl series.Series) {
	rng := rand.New(rand.NewSource(seed))
	base := smoothWalk(rng, n, 1.0, 0.10)
	sigma := base.Std()
	// Noise levels relative to the common signal: COMPV and NYV carry
	// light noise (a ~9-day average suffices); DECL carries heavy
	// higher-frequency noise (a ~19-day average is needed).
	lightC := 0.55 * sigma
	lightN := 0.55 * sigma
	heavy := 1.05 * sigma
	compv = make(series.Series, n)
	nyv = make(series.Series, n)
	decl = make(series.Series, n)
	for t := 0; t < n; t++ {
		compv[t] = 50 + 8*(base[t]+rng.NormFloat64()*lightC)
		nyv[t] = 280 + 45*(base[t]+rng.NormFloat64()*lightN)
		decl[t] = 1200 + 110*(base[t]+rng.NormFloat64()*heavy)
	}
	return compv, nyv, decl
}

// Temperatures generates daily temperature series for the introduction's
// third motivating query ("years when the temperature patterns in two
// regions of the world were similar"): one series per (region, year),
// each a seasonal cycle with a region-specific mean level, amplitude and
// phase (southern-hemisphere regions run half a period out of phase),
// plus weather noise and a shared per-year climate anomaly, so some years
// genuinely resemble each other across regions and most do not. Labels
// returns "region/year" names aligned with the series.
func Temperatures(seed int64, regions, years, days int) (ss []series.Series, labels []string) {
	rng := rand.New(rand.NewSource(seed))
	type region struct {
		mean, amp, phase, noise float64
	}
	regs := make([]region, regions)
	for r := range regs {
		phase := 0.0
		if r%2 == 1 { // southern hemisphere
			phase = math.Pi
		}
		regs[r] = region{
			mean:  rng.Float64()*25 - 2,
			amp:   6 + rng.Float64()*10,
			phase: phase + rng.NormFloat64()*0.15,
			noise: 1 + rng.Float64()*1.5,
		}
	}
	anomaly := make([]float64, years) // shared climate signal per year
	for y := range anomaly {
		anomaly[y] = rng.NormFloat64() * 0.6
	}
	for y := 0; y < years; y++ {
		for r, reg := range regs {
			s := make(series.Series, days)
			for d := 0; d < days; d++ {
				season := reg.amp * math.Cos(2*math.Pi*float64(d)/float64(days)+reg.phase)
				s[d] = reg.mean + season + anomaly[y]*reg.amp/8 + rng.NormFloat64()*reg.noise
			}
			ss = append(ss, s)
			labels = append(labels, fmt.Sprintf("region%d/year%d", r, y))
		}
	}
	return ss, labels
}

// SpikePair reproduces the setting of Example 1.2: two price series (PCG
// and PCL stand-ins) with correlated day-to-day movements, where the first
// has a price spike d days before the second (a recording gap caused the
// offset in the original data). Their momenta are moderately far apart,
// but shifting the first momentum d days right aligns the spikes and
// shrinks the distance.
func SpikePair(seed int64, n, d int) (pcg, pcl series.Series) {
	if d < 0 || d >= n/2 {
		panic(fmt.Sprintf("datagen: spike offset %d out of range for length %d", d, n))
	}
	rng := rand.New(rand.NewSource(seed))
	common := make(series.Series, n) // shared daily returns (weak, as for
	// two unrelated companies)
	for t := range common {
		common[t] = rng.NormFloat64() * 0.08
	}
	spikeAt := n/2 - d
	pcg = make(series.Series, n)
	pcl = make(series.Series, n)
	var a, b float64
	for t := 0; t < n; t++ {
		ra := common[t] + rng.NormFloat64()*0.25
		rb := common[t] + rng.NormFloat64()*0.25
		if t == spikeAt {
			ra += 6
		}
		if t == spikeAt+d {
			rb += 6
		}
		a += ra
		b += rb
		pcg[t] = 30 + a
		pcl[t] = 25 + b
	}
	return pcg, pcl
}
