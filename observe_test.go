package tsq

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"tsq/internal/datagen"
	"tsq/internal/obs"
)

// openPagedTestDB builds a file-backed DB so queries fetch records
// through the buffer pool and the storage counters move.
func openPagedTestDB(t testing.TB, seed int64, count, n int) *DB {
	t.Helper()
	path := filepath.Join(t.TempDir(), "observe.tsq")
	db, err := CreateFile(path, datagen.RandomWalks(seed, count, n), nil, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestTracedNNFacadeCrossCheck runs a traced nearest-neighbor query
// through the public facade and reconciles the span tree's attributes
// against the storage counters exactly: every page fetch the manager
// counted must be attributed to a probe span, and the node-visit count
// must equal the disk-access statistic.
func TestTracedNNFacadeCrossCheck(t *testing.T) {
	db := openPagedTestDB(t, 5, 150, 32)
	ts := MovingAverages(32, 2, 6)
	q := db.Get(3)

	want, wantSt, err := db.NearestNeighbors(q, ts, 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	before := db.DiskStats()
	got, st, err := db.NearestNeighborsCtx(ctx, q, ts, 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := db.DiskStats()

	if len(got) != len(want) || st != wantSt {
		t.Errorf("traced NN diverged: %d results (want %d), stats %+v (want %+v)",
			len(got), len(want), st, wantSt)
	}
	wantIO := (after.Reads - before.Reads) + (after.Hits - before.Hits)
	gotIO := tr.Sum(obs.KindProbe, obs.APagesRead) + tr.Sum(obs.KindProbe, obs.ABufferHits)
	if gotIO != wantIO {
		t.Errorf("trace attributes %d page fetches, storage counted %d", gotIO, wantIO)
	}
	if wantIO == 0 {
		t.Error("paged NN query performed no page fetches; cross-check is vacuous")
	}
	if nodes := tr.Sum(obs.KindProbe, obs.ANodes); nodes != int64(st.DAAll) {
		t.Errorf("trace nodes = %d, stats DAAll = %d", nodes, st.DAAll)
	}
	if m := tr.Sum(obs.KindQuery, obs.AMatches); m != int64(len(got)) {
		t.Errorf("root span matches = %d, want %d", m, len(got))
	}
}

// TestDisabledObservabilityAddsNoAllocs pins the hot-path contract:
// with no flight recorder installed the per-query hook is one atomic
// pointer load — zero allocations — and a facade query allocates
// exactly as much as it did before a recorder was ever enabled.
func TestDisabledObservabilityAddsNoAllocs(t *testing.T) {
	DisableFlightRecorder()
	StopSampler()

	// The hook exactly as rangeRecord / NearestNeighborsCtx run it.
	hook := testing.AllocsPerRun(100, func() {
		if rec := flightRecorder.Load(); rec != nil {
			rec.Record("range", MTIndex.String(), 0, time.Microsecond, nil, nil)
		}
	})
	if hook != 0 {
		t.Errorf("disabled recorder hook allocates %.0f/op, want 0", hook)
	}

	db := openTestDB(t, 2, 200, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.95)
	run := func() {
		if _, _, err := db.RangeByID(10, ts, thr, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	base := testing.AllocsPerRun(20, run)

	// Enable, query, then disable: the cycle must leave no residue on
	// the disabled path.
	EnableFlightRecorder(RecorderOptions{Threshold: time.Nanosecond})
	StartSampler(SamplerOptions{Interval: time.Hour})
	run()
	DisableFlightRecorder()
	StopSampler()

	after := testing.AllocsPerRun(20, run)
	if after > base {
		t.Errorf("disabled path allocates %.0f/op after an enable cycle, %.0f/op before: recorder left %v allocs behind",
			after, base, after-base)
	}
}

// TestFlightRecorderCapturesFacadeQueries: enabled recorder retains
// range and NN queries with their trace-derived attribute counts.
func TestFlightRecorderCapturesFacadeQueries(t *testing.T) {
	db := openTestDB(t, 7, 150, 32)
	ts := MovingAverages(32, 2, 6)

	// Threshold 1ns: every query lands in the slow ring, deterministic.
	EnableFlightRecorder(RecorderOptions{SlowN: 8, Threshold: time.Nanosecond})
	defer DisableFlightRecorder()

	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	matches, _, err := db.RangeCtx(ctx, db.Get(0), ts, Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.NearestNeighbors(db.Get(1), ts, 3, QueryOptions{}); err != nil {
		t.Fatal(err)
	}

	snap := FlightRecorderSnapshot()
	if snap.Total != 2 || len(snap.Slow) != 2 {
		t.Fatalf("snapshot total=%d slow=%d, want 2 and 2", snap.Total, len(snap.Slow))
	}
	rangeRec, nnRec := snap.Slow[0], snap.Slow[1]
	if rangeRec.Kind != "range" || nnRec.Kind != "nn" {
		t.Fatalf("kinds = %q, %q, want range, nn", rangeRec.Kind, nnRec.Kind)
	}
	if rangeRec.Label != MTIndex.String() {
		t.Errorf("range label = %q, want %q", rangeRec.Label, MTIndex.String())
	}
	// The traced range query carries its trace and attribute rollups.
	if rangeRec.Trace == nil {
		t.Fatal("traced range query recorded without its trace")
	}
	if rangeRec.Matches != int64(len(matches)) {
		t.Errorf("recorded matches = %d, query returned %d", rangeRec.Matches, len(matches))
	}
	if rangeRec.Transforms != int64(len(ts)) {
		t.Errorf("recorded transforms = %d, want %d", rangeRec.Transforms, len(ts))
	}
	// The untraced NN query is still recorded, with zero attributes.
	if nnRec.Trace != nil || nnRec.Matches != 0 {
		t.Errorf("untraced NN record carries trace data: %+v", nnRec)
	}
	if nnRec.DurationNs <= 0 {
		t.Errorf("recorded duration = %d, want > 0", nnRec.DurationNs)
	}
}

// TestObservabilityHandlers drives the three -debug-addr endpoints:
// 503 while disabled, well-formed JSON once enabled.
func TestObservabilityHandlers(t *testing.T) {
	DisableFlightRecorder()
	StopSampler()

	rr := httptest.NewRecorder()
	QueriesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/queries", nil))
	if rr.Code != 503 {
		t.Errorf("/queries while disabled: status %d, want 503", rr.Code)
	}
	rr = httptest.NewRecorder()
	RatesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/rates", nil))
	if rr.Code != 503 {
		t.Errorf("/rates while stopped: status %d, want 503", rr.Code)
	}

	EnableFlightRecorder(RecorderOptions{Threshold: time.Nanosecond})
	StartSampler(SamplerOptions{Interval: time.Hour})
	defer DisableFlightRecorder()
	defer StopSampler()

	db := openPagedTestDB(t, 9, 120, 32)
	ts := MovingAverages(32, 2, 6)
	if _, _, err := db.Range(db.Get(2), ts, Correlation(0.9), QueryOptions{}); err != nil {
		t.Fatal(err)
	}

	rr = httptest.NewRecorder()
	QueriesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/queries", nil))
	if rr.Code != 200 {
		t.Fatalf("/queries: status %d", rr.Code)
	}
	var snap RecorderSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/queries JSON: %v", err)
	}
	if snap.Total != 1 || len(snap.Slow) != 1 || snap.Slow[0].Kind != "range" {
		t.Errorf("/queries snapshot: %+v", snap)
	}

	rr = httptest.NewRecorder()
	RatesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/rates", nil))
	if rr.Code != 200 {
		t.Fatalf("/rates: status %d", rr.Code)
	}
	var rates RatesReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rates); err != nil {
		t.Fatalf("/rates JSON: %v", err)
	}
	if rates.SchemaVersion != obs.RatesSchemaVersion {
		t.Errorf("/rates schema_version = %d, want %d", rates.SchemaVersion, obs.RatesSchemaVersion)
	}
	if rates.UptimeSeconds <= 0 {
		t.Errorf("/rates uptime_seconds = %v, want > 0", rates.UptimeSeconds)
	}
	if len(rates.Windows) != len(DefaultRateWindows) {
		t.Errorf("/rates returned %d windows, want %d", len(rates.Windows), len(DefaultRateWindows))
	}

	groups := db.QueryGroups(ts, QueryOptions{})
	rr = httptest.NewRecorder()
	IndexHandler(db, ts, groups).ServeHTTP(rr, httptest.NewRequest("GET", "/index", nil))
	if rr.Code != 200 {
		t.Fatalf("/index: status %d", rr.Code)
	}
	var hr HealthReport
	if err := json.Unmarshal(rr.Body.Bytes(), &hr); err != nil {
		t.Fatalf("/index JSON: %v", err)
	}
	if hr.Series != 120 || hr.Tree == nil || hr.Tree.Entries == 0 || hr.Heap == nil {
		t.Errorf("/index report: series=%d tree=%v heap=%v", hr.Series, hr.Tree, hr.Heap)
	}
	rr = httptest.NewRecorder()
	IndexHandler(db, ts, groups).ServeHTTP(rr, httptest.NewRequest("GET", "/index?format=text", nil))
	if !strings.Contains(rr.Body.String(), "index health: 120 series") {
		t.Errorf("/index?format=text body:\n%s", rr.Body.String())
	}
}

// Benchmark pair pinning the flight-recorder overhead on the query hot
// path: Disabled is the production default (one atomic load), Enabled
// pays the record under a short mutex hold.
func benchmarkRangeRecorder(b *testing.B, enabled bool) {
	DisableFlightRecorder()
	if enabled {
		EnableFlightRecorder(RecorderOptions{Threshold: time.Nanosecond})
		defer DisableFlightRecorder()
	}
	db := openTestDB(b, 2, 200, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.95)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.RangeByID(10, ts, thr, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeRecorderDisabled(b *testing.B) { benchmarkRangeRecorder(b, false) }
func BenchmarkRangeRecorderEnabled(b *testing.B)  { benchmarkRangeRecorder(b, true) }

// slogCapture retains emitted records for the facade query-log tests.
type slogCapture struct {
	mu      sync.Mutex
	records []slog.Record
}

func (h *slogCapture) Enabled(context.Context, slog.Level) bool { return true }
func (h *slogCapture) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	h.records = append(h.records, r.Clone())
	h.mu.Unlock()
	return nil
}
func (h *slogCapture) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *slogCapture) WithGroup(string) slog.Handler      { return h }

func (h *slogCapture) attrs(i int) map[string]slog.Value {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]slog.Value)
	h.records[i].Attrs(func(a slog.Attr) bool {
		out[a.Key] = a.Value
		return true
	})
	return out
}

func (h *slogCapture) len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.records)
}

// TestQueryLogFacade: an installed query log turns each facade query
// into one structured record carrying the query's id, shape and effort
// counters; a nanosecond slow threshold promotes it to Warn with the
// rendered trace attached.
func TestQueryLogFacade(t *testing.T) {
	h := &slogCapture{}
	EnableQueryLog(h, QueryLogOptions{SlowThreshold: -1})
	defer DisableQueryLog()

	db := openPagedTestDB(t, 11, 150, 32)
	ts := MovingAverages(32, 2, 6)
	matches, _, err := db.Range(db.Get(4), ts, Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h.len() != 1 {
		t.Fatalf("range query emitted %d log records, want 1", h.len())
	}
	attrs := h.attrs(0)
	if attrs["kind"].String() != "range" || attrs["algo"].String() != MTIndex.String() {
		t.Errorf("record kind=%q algo=%q", attrs["kind"], attrs["algo"])
	}
	if attrs["query_id"].Uint64() == 0 {
		t.Error("record missing query id")
	}
	if got := attrs["matches"].Int64(); got != int64(len(matches)) {
		t.Errorf("record matches = %d, query returned %d", got, len(matches))
	}
	if attrs["transforms"].Int64() != int64(len(ts)) {
		t.Errorf("record transforms = %d, want %d", attrs["transforms"].Int64(), len(ts))
	}
	if attrs["pages_read"].Int64()+attrs["buffer_hits"].Int64() == 0 {
		t.Error("paged query logged zero I/O")
	}
	if _, ok := attrs["eps"]; !ok {
		t.Error("range record missing eps")
	}

	// An NN query logs k, and the nanosecond threshold promotes a traced
	// query to Warn with its trace rendered into the record.
	EnableQueryLog(h, QueryLogOptions{SlowThreshold: time.Nanosecond})
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if _, _, err := db.NearestNeighborsCtx(ctx, db.Get(5), ts, 3, QueryOptions{}); err != nil {
		t.Fatal(err)
	}
	if h.len() != 2 {
		t.Fatalf("NN query emitted %d more records, want 1", h.len()-1)
	}
	attrs = h.attrs(1)
	if attrs["kind"].String() != "nn" || attrs["k"].Int64() != 3 {
		t.Errorf("NN record kind=%q k=%v", attrs["kind"], attrs["k"])
	}
	if !attrs["slow"].Bool() {
		t.Error("1ns-threshold record not slow-promoted")
	}
	if !strings.Contains(attrs["trace"].String(), "nn") {
		t.Errorf("slow record trace attr = %q", attrs["trace"])
	}
	if st := QueryLogSnapshot(); st.Emitted != 1 || st.Slow != 1 {
		t.Errorf("second logger stats = %+v, want 1 emitted / 1 slow", st)
	}

	DisableQueryLog()
	if st := QueryLogSnapshot(); st != (QueryLogStats{}) {
		t.Errorf("disabled query log reports stats: %+v", st)
	}
}

// TestResourceAttributionFacade: with attribution on, a query's stats
// and root span carry the process resource deltas; off (the default),
// they stay zero.
func TestResourceAttributionFacade(t *testing.T) {
	db := openPagedTestDB(t, 13, 150, 32)
	ts := MovingAverages(32, 2, 6)

	_, st, err := db.Range(db.Get(1), ts, Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.AllocBytes != 0 || st.Mallocs != 0 || st.GCCycles != 0 || st.GCPauseNs != 0 {
		t.Errorf("attribution disabled but stats carry resources: %+v", st)
	}

	EnableResourceAttribution()
	defer DisableResourceAttribution()
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	_, st, err = db.RangeCtx(ctx, db.Get(1), ts, Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A paged range query allocates (candidate buffers, page frames), so
	// the delta is positive even though it is process-wide.
	if st.AllocBytes <= 0 || st.Mallocs <= 0 {
		t.Errorf("attributed stats = %+v, want positive alloc deltas", st)
	}
	if st.GCCycles < 0 || st.GCPauseNs < 0 {
		t.Errorf("attributed GC deltas negative: %+v", st)
	}
	root := tr.Spans()[0]
	if !root.Has(obs.AAllocBytes) || !root.Has(obs.AMallocs) {
		t.Error("root span missing resource attributes")
	}
	if root.Get(obs.AAllocBytes) != st.AllocBytes {
		t.Errorf("root span alloc_bytes = %d, stats say %d", root.Get(obs.AAllocBytes), st.AllocBytes)
	}

	// NN path books resources the same way.
	_, nst, err := db.NearestNeighbors(db.Get(2), ts, 3, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if nst.AllocBytes <= 0 {
		t.Errorf("attributed NN stats = %+v, want positive alloc delta", nst)
	}
}

// TestCollectBundleFacade: a live system produces a bundle that passes
// every reconciliation check and carries the index health report.
// ExpectCompleteRecorder is off: the process-wide query counters span
// the whole test binary, not just this recorder's lifetime.
func TestCollectBundleFacade(t *testing.T) {
	EnableFlightRecorder(RecorderOptions{Threshold: time.Nanosecond})
	StartSampler(SamplerOptions{Interval: time.Hour})
	h := &slogCapture{}
	EnableQueryLog(h, QueryLogOptions{SlowThreshold: -1})
	defer DisableFlightRecorder()
	defer StopSampler()
	defer DisableQueryLog()

	db := openPagedTestDB(t, 17, 120, 32)
	ts := MovingAverages(32, 2, 6)
	for i := 0; i < 3; i++ {
		if _, _, err := db.Range(db.Get(int64(i)), ts, Correlation(0.9), QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	statsSampler.Load().Sample() // second snapshot so windows derive

	b, err := CollectBundle(context.Background(), db, BundleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !b.OK() {
		t.Fatalf("bundle failed reconciliation: %+v", b.FailedChecks())
	}
	if b.Queries == nil || b.Queries.Total != 3 {
		t.Errorf("bundle recorder total = %+v, want 3", b.Queries)
	}
	if b.QueryLog == nil || b.QueryLog.Emitted != 3 {
		t.Errorf("bundle query log = %+v, want 3 emitted", b.QueryLog)
	}
	var hr HealthReport
	if err := json.Unmarshal(b.Index, &hr); err != nil {
		t.Fatalf("bundle index section: %v", err)
	}
	if hr.Series != 120 {
		t.Errorf("bundle index series = %d, want 120", hr.Series)
	}
	// The range latency histogram carries exemplars pointing at issued
	// query ids.
	var sawExemplar bool
	for _, hsnap := range b.Metrics.Histograms {
		if hsnap.Name == "tsq_range_latency_ns" && len(hsnap.Exemplars) > 0 {
			sawExemplar = true
		}
	}
	if !sawExemplar {
		t.Error("range latency histogram has no exemplars after 3 queries")
	}

	// The HTTP surface serves the same bundle; ?heap=1 adds a profile.
	rr := httptest.NewRecorder()
	BundleHandler(db).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/bundle?heap=1", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/bundle: status %d", rr.Code)
	}
	var served Bundle
	if err := json.Unmarshal(rr.Body.Bytes(), &served); err != nil {
		t.Fatalf("/debug/bundle JSON: %v", err)
	}
	if served.SchemaVersion != obs.BundleSchemaVersion || len(served.Profiles["heap"]) == 0 {
		t.Errorf("served bundle: schema=%d heap=%d bytes", served.SchemaVersion, len(served.Profiles["heap"]))
	}
	rr = httptest.NewRecorder()
	BundleHandler(db).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/bundle?cpu=2h", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("/debug/bundle?cpu=2h: status %d, want 400", rr.Code)
	}
}

// TestEnableDebugHandlers: one call wires the full diagnostic surface
// onto a private mux.
func TestEnableDebugHandlers(t *testing.T) {
	db := openPagedTestDB(t, 19, 100, 32)
	mux := http.NewServeMux()
	EnableDebugHandlers(mux, db)
	for path, want := range map[string]int{
		"/metrics":             200,
		"/debug/bundle":        200,
		"/debug/pprof/cmdline": 200,
		"/debug/pprof/symbol":  200,
		"/nonexistent":         404,
	} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != want {
			t.Errorf("%s: status %d, want %d", path, rr.Code, want)
		}
	}
	// /queries and /rates answer 503 or 200 depending on whether another
	// test left the recorder enabled — either way they are wired.
	for _, path := range []string{"/queries", "/rates"} {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		if rr.Code != 200 && rr.Code != 503 {
			t.Errorf("%s: status %d, want 200 or 503", path, rr.Code)
		}
	}
}

// TestDisabledQueryLogAddsNoAllocs pins the query-log contract: with no
// logger installed the per-query hook allocates nothing.
func TestDisabledQueryLogAddsNoAllocs(t *testing.T) {
	DisableQueryLog()
	DisableResourceAttribution()
	db := openTestDB(t, 3, 200, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.95)
	run := func() {
		if _, _, err := db.RangeByID(10, ts, thr, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	base := testing.AllocsPerRun(20, run)

	EnableQueryLog(slog.NewTextHandler(io.Discard, nil), QueryLogOptions{})
	EnableResourceAttribution()
	run()
	DisableQueryLog()
	DisableResourceAttribution()

	after := testing.AllocsPerRun(20, run)
	if after > base {
		t.Errorf("disabled path allocates %.0f/op after a qlog cycle, %.0f/op before", after, base)
	}
}

// Benchmark pair pinning the query-log overhead: Disabled is the
// production default (one atomic load), Enabled pays record assembly
// and a discarded handler write.
func benchmarkRangeQueryLog(b *testing.B, enabled bool) {
	DisableQueryLog()
	if enabled {
		EnableQueryLog(slog.NewTextHandler(io.Discard, nil), QueryLogOptions{SlowThreshold: -1, MaxPerSec: -1})
		defer DisableQueryLog()
	}
	db := openTestDB(b, 2, 200, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.95)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.RangeByID(10, ts, thr, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeQueryLogDisabled(b *testing.B) { benchmarkRangeQueryLog(b, false) }
func BenchmarkRangeQueryLogEnabled(b *testing.B)  { benchmarkRangeQueryLog(b, true) }
