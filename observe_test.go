package tsq

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tsq/internal/datagen"
	"tsq/internal/obs"
)

// openPagedTestDB builds a file-backed DB so queries fetch records
// through the buffer pool and the storage counters move.
func openPagedTestDB(t testing.TB, seed int64, count, n int) *DB {
	t.Helper()
	path := filepath.Join(t.TempDir(), "observe.tsq")
	db, err := CreateFile(path, datagen.RandomWalks(seed, count, n), nil, Options{PageSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestTracedNNFacadeCrossCheck runs a traced nearest-neighbor query
// through the public facade and reconciles the span tree's attributes
// against the storage counters exactly: every page fetch the manager
// counted must be attributed to a probe span, and the node-visit count
// must equal the disk-access statistic.
func TestTracedNNFacadeCrossCheck(t *testing.T) {
	db := openPagedTestDB(t, 5, 150, 32)
	ts := MovingAverages(32, 2, 6)
	q := db.Get(3)

	want, wantSt, err := db.NearestNeighbors(q, ts, 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}

	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	before := db.DiskStats()
	got, st, err := db.NearestNeighborsCtx(ctx, q, ts, 5, QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after := db.DiskStats()

	if len(got) != len(want) || st != wantSt {
		t.Errorf("traced NN diverged: %d results (want %d), stats %+v (want %+v)",
			len(got), len(want), st, wantSt)
	}
	wantIO := (after.Reads - before.Reads) + (after.Hits - before.Hits)
	gotIO := tr.Sum(obs.KindProbe, obs.APagesRead) + tr.Sum(obs.KindProbe, obs.ABufferHits)
	if gotIO != wantIO {
		t.Errorf("trace attributes %d page fetches, storage counted %d", gotIO, wantIO)
	}
	if wantIO == 0 {
		t.Error("paged NN query performed no page fetches; cross-check is vacuous")
	}
	if nodes := tr.Sum(obs.KindProbe, obs.ANodes); nodes != int64(st.DAAll) {
		t.Errorf("trace nodes = %d, stats DAAll = %d", nodes, st.DAAll)
	}
	if m := tr.Sum(obs.KindQuery, obs.AMatches); m != int64(len(got)) {
		t.Errorf("root span matches = %d, want %d", m, len(got))
	}
}

// TestDisabledObservabilityAddsNoAllocs pins the hot-path contract:
// with no flight recorder installed the per-query hook is one atomic
// pointer load — zero allocations — and a facade query allocates
// exactly as much as it did before a recorder was ever enabled.
func TestDisabledObservabilityAddsNoAllocs(t *testing.T) {
	DisableFlightRecorder()
	StopSampler()

	// The hook exactly as rangeRecord / NearestNeighborsCtx run it.
	hook := testing.AllocsPerRun(100, func() {
		if rec := flightRecorder.Load(); rec != nil {
			rec.Record("range", MTIndex.String(), time.Microsecond, nil, nil)
		}
	})
	if hook != 0 {
		t.Errorf("disabled recorder hook allocates %.0f/op, want 0", hook)
	}

	db := openTestDB(t, 2, 200, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.95)
	run := func() {
		if _, _, err := db.RangeByID(10, ts, thr, QueryOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	base := testing.AllocsPerRun(20, run)

	// Enable, query, then disable: the cycle must leave no residue on
	// the disabled path.
	EnableFlightRecorder(RecorderOptions{Threshold: time.Nanosecond})
	StartSampler(SamplerOptions{Interval: time.Hour})
	run()
	DisableFlightRecorder()
	StopSampler()

	after := testing.AllocsPerRun(20, run)
	if after > base {
		t.Errorf("disabled path allocates %.0f/op after an enable cycle, %.0f/op before: recorder left %v allocs behind",
			after, base, after-base)
	}
}

// TestFlightRecorderCapturesFacadeQueries: enabled recorder retains
// range and NN queries with their trace-derived attribute counts.
func TestFlightRecorderCapturesFacadeQueries(t *testing.T) {
	db := openTestDB(t, 7, 150, 32)
	ts := MovingAverages(32, 2, 6)

	// Threshold 1ns: every query lands in the slow ring, deterministic.
	EnableFlightRecorder(RecorderOptions{SlowN: 8, Threshold: time.Nanosecond})
	defer DisableFlightRecorder()

	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	matches, _, err := db.RangeCtx(ctx, db.Get(0), ts, Correlation(0.9), QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.NearestNeighbors(db.Get(1), ts, 3, QueryOptions{}); err != nil {
		t.Fatal(err)
	}

	snap := FlightRecorderSnapshot()
	if snap.Total != 2 || len(snap.Slow) != 2 {
		t.Fatalf("snapshot total=%d slow=%d, want 2 and 2", snap.Total, len(snap.Slow))
	}
	rangeRec, nnRec := snap.Slow[0], snap.Slow[1]
	if rangeRec.Kind != "range" || nnRec.Kind != "nn" {
		t.Fatalf("kinds = %q, %q, want range, nn", rangeRec.Kind, nnRec.Kind)
	}
	if rangeRec.Label != MTIndex.String() {
		t.Errorf("range label = %q, want %q", rangeRec.Label, MTIndex.String())
	}
	// The traced range query carries its trace and attribute rollups.
	if rangeRec.Trace == nil {
		t.Fatal("traced range query recorded without its trace")
	}
	if rangeRec.Matches != int64(len(matches)) {
		t.Errorf("recorded matches = %d, query returned %d", rangeRec.Matches, len(matches))
	}
	if rangeRec.Transforms != int64(len(ts)) {
		t.Errorf("recorded transforms = %d, want %d", rangeRec.Transforms, len(ts))
	}
	// The untraced NN query is still recorded, with zero attributes.
	if nnRec.Trace != nil || nnRec.Matches != 0 {
		t.Errorf("untraced NN record carries trace data: %+v", nnRec)
	}
	if nnRec.DurationNs <= 0 {
		t.Errorf("recorded duration = %d, want > 0", nnRec.DurationNs)
	}
}

// TestObservabilityHandlers drives the three -debug-addr endpoints:
// 503 while disabled, well-formed JSON once enabled.
func TestObservabilityHandlers(t *testing.T) {
	DisableFlightRecorder()
	StopSampler()

	rr := httptest.NewRecorder()
	QueriesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/queries", nil))
	if rr.Code != 503 {
		t.Errorf("/queries while disabled: status %d, want 503", rr.Code)
	}
	rr = httptest.NewRecorder()
	RatesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/rates", nil))
	if rr.Code != 503 {
		t.Errorf("/rates while stopped: status %d, want 503", rr.Code)
	}

	EnableFlightRecorder(RecorderOptions{Threshold: time.Nanosecond})
	StartSampler(SamplerOptions{Interval: time.Hour})
	defer DisableFlightRecorder()
	defer StopSampler()

	db := openPagedTestDB(t, 9, 120, 32)
	ts := MovingAverages(32, 2, 6)
	if _, _, err := db.Range(db.Get(2), ts, Correlation(0.9), QueryOptions{}); err != nil {
		t.Fatal(err)
	}

	rr = httptest.NewRecorder()
	QueriesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/queries", nil))
	if rr.Code != 200 {
		t.Fatalf("/queries: status %d", rr.Code)
	}
	var snap RecorderSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/queries JSON: %v", err)
	}
	if snap.Total != 1 || len(snap.Slow) != 1 || snap.Slow[0].Kind != "range" {
		t.Errorf("/queries snapshot: %+v", snap)
	}

	rr = httptest.NewRecorder()
	RatesHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/rates", nil))
	if rr.Code != 200 {
		t.Fatalf("/rates: status %d", rr.Code)
	}
	var windows []WindowStats
	if err := json.Unmarshal(rr.Body.Bytes(), &windows); err != nil {
		t.Fatalf("/rates JSON: %v", err)
	}
	if len(windows) != len(DefaultRateWindows) {
		t.Errorf("/rates returned %d windows, want %d", len(windows), len(DefaultRateWindows))
	}

	groups := db.QueryGroups(ts, QueryOptions{})
	rr = httptest.NewRecorder()
	IndexHandler(db, ts, groups).ServeHTTP(rr, httptest.NewRequest("GET", "/index", nil))
	if rr.Code != 200 {
		t.Fatalf("/index: status %d", rr.Code)
	}
	var hr HealthReport
	if err := json.Unmarshal(rr.Body.Bytes(), &hr); err != nil {
		t.Fatalf("/index JSON: %v", err)
	}
	if hr.Series != 120 || hr.Tree == nil || hr.Tree.Entries == 0 || hr.Heap == nil {
		t.Errorf("/index report: series=%d tree=%v heap=%v", hr.Series, hr.Tree, hr.Heap)
	}
	rr = httptest.NewRecorder()
	IndexHandler(db, ts, groups).ServeHTTP(rr, httptest.NewRequest("GET", "/index?format=text", nil))
	if !strings.Contains(rr.Body.String(), "index health: 120 series") {
		t.Errorf("/index?format=text body:\n%s", rr.Body.String())
	}
}

// Benchmark pair pinning the flight-recorder overhead on the query hot
// path: Disabled is the production default (one atomic load), Enabled
// pays the record under a short mutex hold.
func benchmarkRangeRecorder(b *testing.B, enabled bool) {
	DisableFlightRecorder()
	if enabled {
		EnableFlightRecorder(RecorderOptions{Threshold: time.Nanosecond})
		defer DisableFlightRecorder()
	}
	db := openTestDB(b, 2, 200, 64)
	ts := MovingAverages(64, 5, 20)
	thr := Correlation(0.95)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.RangeByID(10, ts, thr, QueryOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeRecorderDisabled(b *testing.B) { benchmarkRangeRecorder(b, false) }
func BenchmarkRangeRecorderEnabled(b *testing.B)  { benchmarkRangeRecorder(b, true) }
