package tsq_test

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"tsq"
)

// wave builds a deterministic test series.
func wave(n int, f func(i int) float64) tsq.Series {
	s := make(tsq.Series, n)
	for i := range s {
		s[i] = f(i)
	}
	return s
}

// Example shows the core loop: index a few series, then ask which of them
// match a query under some moving average.
func Example() {
	const n = 64
	base := func(i int) float64 { return math.Sin(2 * math.Pi * float64(i) / 32) }
	db, err := tsq.Open([]tsq.Series{
		wave(n, base),
		wave(n, func(i int) float64 { return 100*base(i) + 1000 }), // scaled + shifted
		wave(n, func(i int) float64 { return float64(i % 7) }),     // unrelated
	}, []string{"wave", "scaled", "sawtooth"}, tsq.Options{})
	if err != nil {
		panic(err)
	}
	ts := tsq.MovingAverages(n, 1, 10)
	matches, _, err := db.Range(db.Get(0), ts, tsq.Correlation(0.99), tsq.QueryOptions{})
	if err != nil {
		panic(err)
	}
	seen := map[int64]bool{}
	for _, m := range matches {
		if !seen[m.RecordID] {
			seen[m.RecordID] = true
			fmt.Println(db.Name(m.RecordID))
		}
	}
	// Output:
	// wave
	// scaled
}

// ExampleParsePipeline rewrites a sequence of transformation sets into a
// single flat set by composition (the paper's Sec. 3.3).
func ExampleParsePipeline() {
	p, err := tsq.ParsePipeline("shift(0..10) | mv(1..40)", 128)
	if err != nil {
		panic(err)
	}
	ts := p.Flatten()
	fmt.Println(len(ts), ts[0].Name)
	// Output:
	// 440 mv1(shift0)
}

// ExampleDistanceForCorrelation shows the Eq. 9 threshold translation the
// paper uses to turn "correlation at least 0.96" into a distance bound.
func ExampleDistanceForCorrelation() {
	fmt.Printf("%.2f\n", tsq.DistanceForCorrelation(128, 0.96))
	// Output:
	// 3.19
}

// ExampleCompose builds "shift two days, then smooth" as one
// transformation (Eq. 10).
func ExampleCompose() {
	const n = 128
	t := tsq.Compose(tsq.MovingAverage(n, 10), tsq.TimeShift(n, 2))
	fmt.Println(t.Name)
	// Output:
	// mv10(shift2)
}

// ExampleDB_NearestNeighbors finds the best-aligning shift between two
// series with a one-sided query (a shift applied to both sides would
// cancel).
func ExampleDB_NearestNeighbors() {
	const n = 64
	base := wave(n, func(i int) float64 { return math.Sin(2*math.Pi*float64(i)/16) + 0.3*math.Cos(2*math.Pi*float64(i)/9) })
	shifted := tsq.TimeShift(n, 3).ApplySeries(base)
	db, err := tsq.Open([]tsq.Series{base}, []string{"base"}, tsq.Options{})
	if err != nil {
		panic(err)
	}
	nn, _, err := db.NearestNeighbors(shifted, tsq.TimeShifts(n, 0, 7), 1,
		tsq.QueryOptions{OneSided: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s %.4f\n", tsq.TimeShifts(n, 0, 7)[nn[0].TransformIdx].Name, nn[0].Distance)
	// Output:
	// shift3 0.0000
}

// ExampleCreateFile persists a database to a single page file and reopens
// it without rebuilding the index.
func ExampleCreateFile() {
	dir, err := os.MkdirTemp("", "tsq")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "waves.tsq")

	const n = 64
	base := func(i int) float64 { return math.Sin(2 * math.Pi * float64(i) / 16) }
	db, err := tsq.CreateFile(path, []tsq.Series{
		wave(n, base),
		wave(n, func(i int) float64 { return 3 * base(i) }),
	}, []string{"a", "b"}, tsq.Options{})
	if err != nil {
		panic(err)
	}
	if err := db.Close(); err != nil {
		panic(err)
	}

	re, err := tsq.OpenFile(path)
	if err != nil {
		panic(err)
	}
	defer re.Close()
	fmt.Println(re.Len(), re.Name(1))
	// Output:
	// 2 b
}

// ExampleNewSubsequenceIndex finds where a short pattern occurs inside
// longer stored sequences.
func ExampleNewSubsequenceIndex() {
	long := wave(200, func(i int) float64 { return math.Sin(2*math.Pi*float64(i)/40) + float64(i)/100 })
	ix, err := tsq.NewSubsequenceIndex([]tsq.Series{long}, tsq.SubseqOptions{Window: 25})
	if err != nil {
		panic(err)
	}
	pattern := long[60:85]
	matches, _, err := ix.Search(pattern, 1e-9)
	if err != nil {
		panic(err)
	}
	for _, m := range matches {
		fmt.Println(m.Seq, m.Offset)
	}
	// Output:
	// 0 60
}
