package tsq

// Persistence: a DB can live in a single page file on disk — the record
// heap, the R*-tree, and a superblock tying them together — and be
// reopened without rebuilding the index. File-backed databases are always
// "paged": candidate verification retrieves record pages through the
// storage manager, so the disk-access statistics cover the full Eq. 18
// retrieval path.
//
// File layout: a 16-byte raw header in the reserved page-0 region
// (magic + page size, so OpenFile can size the backend), the superblock
// on page 1, and heap/tree pages after it.

import (
	"encoding/binary"
	"fmt"
	"os"

	"tsq/internal/core"
	"tsq/internal/storage"
)

var (
	fileMagic  = [4]byte{'T', 'S', 'Q', 'F'}
	superMagic = [4]byte{'T', 'S', 'Q', '1'}
)

const rawHeaderSize = 16

// Superblock layout (page 1, little endian):
//
//	offset 0: magic "TSQ1"
//	offset 4: series length n (uint32)
//	offset 8: indexed coefficients k (uint32)
//	offset 12: flags (uint32; bit 0 = symmetry)
//	offset 16: tree meta page (uint32)
//	offset 20: heap directory page (uint32)
func encodeSuper(buf []byte, n, k int, symmetry bool, treeMeta, heapDir storage.PageID) {
	copy(buf, superMagic[:])
	binary.LittleEndian.PutUint32(buf[4:], uint32(n))
	binary.LittleEndian.PutUint32(buf[8:], uint32(k))
	var flags uint32
	if symmetry {
		flags |= 1
	}
	binary.LittleEndian.PutUint32(buf[12:], flags)
	binary.LittleEndian.PutUint32(buf[16:], uint32(treeMeta))
	binary.LittleEndian.PutUint32(buf[20:], uint32(heapDir))
}

func decodeSuper(buf []byte) (n, k int, symmetry bool, treeMeta, heapDir storage.PageID, err error) {
	if [4]byte(buf[:4]) != superMagic {
		return 0, 0, false, 0, 0, fmt.Errorf("tsq: bad superblock magic %q", buf[:4])
	}
	n = int(binary.LittleEndian.Uint32(buf[4:]))
	k = int(binary.LittleEndian.Uint32(buf[8:]))
	symmetry = binary.LittleEndian.Uint32(buf[12:])&1 != 0
	treeMeta = storage.PageID(binary.LittleEndian.Uint32(buf[16:]))
	heapDir = storage.PageID(binary.LittleEndian.Uint32(buf[20:]))
	return n, k, symmetry, treeMeta, heapDir, nil
}

// CreateFile builds a database in a page file at path. The file holds the
// records and the index; reopen it with OpenFile. The returned DB must be
// closed.
func CreateFile(path string, ss []Series, names []string, opts Options) (*DB, error) {
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.K == 0 {
		opts.K = 2
	}
	backend, err := storage.NewFileBackend(path, opts.PageSize)
	if err != nil {
		return nil, err
	}
	mgr := storage.NewManager(storage.Options{
		PageSize:    opts.PageSize,
		BufferPages: opts.BufferPages,
		Backend:     backend,
	})
	superID, err := mgr.Alloc()
	if err != nil {
		mgr.Close()
		return nil, err
	}
	ds, err := core.NewDataset(ss, names)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	ix, err := core.BuildIndex(ds, core.IndexOptions{
		K:           opts.K,
		PageSize:    opts.PageSize,
		UseSymmetry: !opts.DisableSymmetry,
		Paged:       true,
		Manager:     mgr,
		BulkLoad:    opts.BulkLoad,
	})
	if err != nil {
		mgr.Close()
		return nil, err
	}
	buf := make([]byte, opts.PageSize)
	encodeSuper(buf, ds.N, opts.K, !opts.DisableSymmetry, ix.Tree().MetaID(), ix.Heap().DirHead())
	if err := mgr.Write(superID, buf); err != nil {
		mgr.Close()
		return nil, err
	}
	if err := writeRawHeader(path, opts.PageSize); err != nil {
		mgr.Close()
		return nil, err
	}
	return &DB{ds: ds, ix: ix}, nil
}

// OpenFile reopens a database created by CreateFile.
func OpenFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tsq: %w", err)
	}
	header := make([]byte, rawHeaderSize)
	if _, err := f.ReadAt(header, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("tsq: reading file header: %w", err)
	}
	f.Close()
	if [4]byte(header[:4]) != fileMagic {
		return nil, fmt.Errorf("tsq: %s is not a tsq database (magic %q)", path, header[:4])
	}
	pageSize := int(binary.LittleEndian.Uint32(header[4:]))
	if pageSize < 512 || pageSize > 1<<20 {
		return nil, fmt.Errorf("tsq: implausible page size %d in %s", pageSize, path)
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("tsq: %w", err)
	}
	backend, err := storage.NewFileBackend(path, pageSize)
	if err != nil {
		return nil, err
	}
	mgr := storage.NewManager(storage.Options{
		PageSize: pageSize,
		Backend:  backend,
		// Resume allocation after the last page the file covers, so
		// post-reopen inserts cannot overwrite live pages.
		FirstUnallocated: storage.PageID((st.Size() + int64(pageSize) - 1) / int64(pageSize)),
	})
	buf := make([]byte, pageSize)
	if err := mgr.Read(storage.PageID(1), buf); err != nil {
		mgr.Close()
		return nil, err
	}
	n, k, symmetry, treeMeta, heapDir, err := decodeSuper(buf)
	if err != nil {
		mgr.Close()
		return nil, err
	}
	ix, err := core.OpenIndex(mgr, treeMeta, heapDir, n, core.IndexOptions{
		K:           k,
		PageSize:    pageSize,
		UseSymmetry: symmetry,
	})
	if err != nil {
		mgr.Close()
		return nil, err
	}
	return &DB{ds: ix.Dataset(), ix: ix}, nil
}

// writeRawHeader stores the file magic and page size in the reserved
// page-0 region.
func writeRawHeader(path string, pageSize int) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("tsq: %w", err)
	}
	header := make([]byte, rawHeaderSize)
	copy(header, fileMagic[:])
	binary.LittleEndian.PutUint32(header[4:], uint32(pageSize))
	if _, err := f.WriteAt(header, 0); err != nil {
		f.Close()
		return fmt.Errorf("tsq: writing file header: %w", err)
	}
	return f.Close()
}

// Close releases the storage behind the database. Queries must not be
// issued afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ix.Manager().Close()
}

// Insert adds a series to the database (and to the file, for file-backed
// databases), returning its id.
func (db *DB) Insert(name string, s Series) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ix.Insert(name, s)
}

// Delete removes series id from the database. Its id is not reused.
func (db *DB) Delete(id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ix.Delete(id)
}
