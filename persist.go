package tsq

// Persistence: a DB can live in a single page file on disk — the record
// heap, the R*-tree, and a superblock tying them together — and be
// reopened without rebuilding the index. File-backed databases are always
// "paged": candidate verification retrieves record pages through the
// storage manager, so the disk-access statistics cover the full Eq. 18
// retrieval path.
//
// File layout: a 16-byte raw header in the reserved page-0 region
// (magic + page size + format flags, so OpenFile can size the backend),
// the superblock on page 1, and heap/tree pages after it.
//
// Checksummed format (the default since the crash-consistency work):
// every page except the raw page-0 region carries a CRC32C trailer in
// its last 8 bytes, written and verified by storage.ChecksumBackend.
// The page size in the raw header is always the PHYSICAL page size;
// when the checksum flag is set, layers above the backend operate on
// logical pages 8 bytes smaller. Files written without the flag (PR 4
// and earlier) reopen transparently with no checksum layer.
//
// Durability: CreateFile syncs the page image before writing the raw
// header, and syncs the header before returning — the header acts as a
// commit record, so a crash mid-create leaves a file OpenFile rejects
// (no magic) rather than a plausible-looking torn database.
//
// Sharded layout (Options.Shards > 1): each shard is a complete
// single-shard page file at <path>.shard<i> — same format, same commit
// protocol, records carrying shard-local ids — and <path> itself holds
// a small CRC-protected manifest (magic "TSQM") naming the shard count
// and the index parameters. The global<->local id mapping is a pure
// function of the total record count and the partition function, so it
// is re-derived on open and cross-checked against the shard files.
// Commit order: every shard file is fully committed first, the manifest
// is written and synced last — a crash anywhere mid-create leaves
// either no manifest (OpenFile: not a tsq database), a torn manifest
// (CRC reject), or a manifest whose named shard file fails its own
// header/checksum validation with a shard-identifying error. A
// partially-visible DB is never constructible. Single-shard files are
// written and opened in the classic TSQF format, unchanged.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"tsq/internal/core"
	"tsq/internal/obs"
	"tsq/internal/storage"
	"tsq/internal/wal"
)

var (
	fileMagic     = [4]byte{'T', 'S', 'Q', 'F'}
	superMagic    = [4]byte{'T', 'S', 'Q', '1'}
	manifestMagic = [4]byte{'T', 'S', 'Q', 'M'}
)

const rawHeaderSize = 16

// Raw header format flags (offset 8). Files from before the flags field
// existed have zeros there, which decodes as "no checksums" — exactly
// their format.
const rawFlagChecksums = 1 << 0

// Superblock flags (offset 12).
const (
	superFlagSymmetry  = 1 << 0
	superFlagChecksums = 1 << 1 // mirrors rawFlagChecksums; cross-checked on open
)

// superInfo is the decoded superblock.
type superInfo struct {
	n, k        int
	symmetry    bool
	checksummed bool
	treeMeta    storage.PageID
	heapDir     storage.PageID
}

// Superblock layout (page 1, little endian):
//
//	offset 0: magic "TSQ1"
//	offset 4: series length n (uint32)
//	offset 8: indexed coefficients k (uint32)
//	offset 12: flags (uint32; bit 0 = symmetry, bit 1 = checksummed)
//	offset 16: tree meta page (uint32)
//	offset 20: heap directory page (uint32)
func encodeSuper(buf []byte, si superInfo) {
	copy(buf, superMagic[:])
	binary.LittleEndian.PutUint32(buf[4:], uint32(si.n))
	binary.LittleEndian.PutUint32(buf[8:], uint32(si.k))
	var flags uint32
	if si.symmetry {
		flags |= superFlagSymmetry
	}
	if si.checksummed {
		flags |= superFlagChecksums
	}
	binary.LittleEndian.PutUint32(buf[12:], flags)
	binary.LittleEndian.PutUint32(buf[16:], uint32(si.treeMeta))
	binary.LittleEndian.PutUint32(buf[20:], uint32(si.heapDir))
}

// decodeSuper validates and decodes a superblock page. A corrupt
// superblock must fail here with a descriptive error, not as a panic in
// whatever downstream code first trusts the garbage.
func decodeSuper(buf []byte) (superInfo, error) {
	var si superInfo
	if [4]byte(buf[:4]) != superMagic {
		return si, fmt.Errorf("tsq: bad superblock magic %q", buf[:4])
	}
	si.n = int(binary.LittleEndian.Uint32(buf[4:]))
	si.k = int(binary.LittleEndian.Uint32(buf[8:]))
	flags := binary.LittleEndian.Uint32(buf[12:])
	si.symmetry = flags&superFlagSymmetry != 0
	si.checksummed = flags&superFlagChecksums != 0
	si.treeMeta = storage.PageID(binary.LittleEndian.Uint32(buf[16:]))
	si.heapDir = storage.PageID(binary.LittleEndian.Uint32(buf[20:]))
	if si.n <= 0 {
		return si, fmt.Errorf("tsq: corrupt superblock: series length %d (must be > 0)", si.n)
	}
	if si.k <= 0 || si.k > si.n {
		return si, fmt.Errorf("tsq: corrupt superblock: %d indexed coefficients for series length %d (need 0 < k <= n)", si.k, si.n)
	}
	if si.treeMeta == storage.NilPage {
		return si, fmt.Errorf("tsq: corrupt superblock: nil tree meta page")
	}
	if si.heapDir == storage.NilPage {
		return si, fmt.Errorf("tsq: corrupt superblock: nil heap directory page")
	}
	return si, nil
}

// CreateFile builds a database in a page file at path (or, with
// Options.Shards > 1, per-shard page files behind a manifest at path).
// The files hold the records and the index; reopen with OpenFile. The
// returned DB must be closed.
func CreateFile(path string, ss []Series, names []string, opts Options) (*DB, error) {
	return createFile(path, ss, names, opts, nil)
}

// createFile is CreateFile with a test hook: when wrap is non-nil it is
// applied to the raw file backend before the checksum layer, placing
// injected faults at the "disk" position — beneath the CRC, which is
// where torn writes happen and where the checksums must catch them.
func createFile(path string, ss []Series, names []string, opts Options, wrap func(storage.Backend) storage.Backend) (*DB, error) {
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	if opts.K == 0 {
		opts.K = 2
	}
	ds, err := core.NewDataset(ss, names)
	if err != nil {
		return nil, err
	}
	if opts.Shards > 1 {
		return createShardedFiles(path, ds, opts, wrap)
	}
	ix, err := createShardFile(path, ds, opts, wrap)
	if err != nil {
		return nil, err
	}
	return &DB{ds: ds, ix: core.WrapIndex(ix)}, nil
}

// walPath names the write-ahead log that protects the page file at
// path (one per shard file in the sharded layout).
func walPath(path string) string { return path + ".wal" }

// mWALFsync is the group-commit fsync latency histogram; the hook is
// installed on every log this package opens.
var mWALFsync = obs.Default.Histogram("tsq_wal_fsync_latency_ns", obs.DurationBuckets())

// openWAL opens (or creates) the write-ahead log for the page file at
// path, wiring the fsync latency hook, and returns the log plus any
// records that were acknowledged but not yet folded into the file.
func openWAL(path string) (*wal.Log, []wal.Record, error) {
	wlog, pending, err := wal.OpenFile(walPath(path))
	if err != nil {
		return nil, nil, fmt.Errorf("tsq: opening write-ahead log: %w", err)
	}
	wlog.OnFsync = mWALFsync.ObserveDuration
	return wlog, pending, nil
}

// createShardFile writes one complete single-shard page file at path
// from a ready dataset, returning its opened index with a fresh WAL
// attached. On error the storage manager is closed.
func createShardFile(path string, ds *core.Dataset, opts Options, wrap func(storage.Backend) storage.Backend) (*core.Index, error) {
	// A WAL left over from a previous database at this path would replay
	// foreign pages into the new file on reopen: remove it before the
	// first page write, and create the fresh log only after the header
	// commits.
	if err := os.Remove(walPath(path)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("tsq: removing stale write-ahead log: %w", err)
	}
	physPageSize := opts.PageSize
	fileBackend, err := storage.NewFileBackend(path, physPageSize)
	if err != nil {
		return nil, err
	}
	var backend storage.Backend = fileBackend
	if wrap != nil {
		backend = wrap(backend)
	}
	pageSize := physPageSize
	if !opts.DisableChecksums {
		cb := storage.NewChecksumBackend(backend, physPageSize)
		backend = cb
		pageSize = cb.LogicalPageSize()
	}
	staged := storage.NewStagedBackend(backend)
	backend = staged
	mgr := storage.NewManager(storage.Options{
		PageSize:    pageSize,
		BufferPages: opts.BufferPages,
		Backend:     backend,
	})
	superID, err := mgr.Alloc()
	if err != nil {
		_ = mgr.Close()
		return nil, err
	}
	ix, err := core.BuildIndex(ds, core.IndexOptions{
		K:           opts.K,
		PageSize:    pageSize,
		UseSymmetry: !opts.DisableSymmetry,
		Paged:       true,
		Manager:     mgr,
		BulkLoad:    opts.BulkLoad && len(ds.Records) > 0,
	})
	if err != nil {
		_ = mgr.Close()
		return nil, err
	}
	buf := make([]byte, pageSize)
	encodeSuper(buf, superInfo{
		n:           ds.N,
		k:           opts.K,
		symmetry:    !opts.DisableSymmetry,
		checksummed: !opts.DisableChecksums,
		treeMeta:    ix.Tree().MetaID(),
		heapDir:     ix.Heap().DirHead(),
	})
	if err := mgr.Write(superID, buf); err != nil {
		_ = mgr.Close()
		return nil, err
	}
	// Commit protocol: sync the page image, then write and sync the raw
	// header. The header is what OpenFile validates first, so a crash at
	// any point before the final sync leaves a file that is rejected
	// (or scrubbed) rather than silently half-built.
	if err := mgr.Sync(); err != nil {
		_ = mgr.Close()
		return nil, err
	}
	var flags uint32
	if !opts.DisableChecksums {
		flags |= rawFlagChecksums
	}
	if err := writeRawHeader(path, physPageSize, flags); err != nil {
		_ = mgr.Close()
		return nil, err
	}
	// The file is committed; arm the online write path.
	wlog, _, err := openWAL(path)
	if err != nil {
		_ = mgr.Close()
		return nil, err
	}
	ix.AttachWAL(wlog, staged)
	return ix, nil
}

// shardPath names shard i's page file of the sharded database at path.
func shardPath(path string, i int) string {
	return fmt.Sprintf("%s.shard%d", path, i)
}

// createShardedFiles writes an Options.Shards-way sharded database:
// every shard a complete single-shard page file, committed before the
// manifest at path is written last.
func createShardedFiles(path string, ds *core.Dataset, opts Options, wrap func(storage.Backend) storage.Backend) (*DB, error) {
	locals, err := core.PartitionDataset(ds, opts.Shards)
	if err != nil {
		return nil, err
	}
	shards := make([]*core.Index, opts.Shards)
	// On error, close the managers but leave any partial shard files on
	// disk (matching the single-file path): the manifest is only written
	// after every shard commits, so the partial set is unopenable — and
	// it is exactly the image a crash would leave, which the fault sweep
	// examines.
	cleanup := func() {
		for _, ix := range shards {
			if ix != nil {
				_ = ix.Close()
			}
		}
	}
	if wrap == nil {
		// Parallel shard build: each file has its own backend, manager
		// and tree, so the builds share nothing.
		errs := make([]error, opts.Shards)
		done := make(chan int, opts.Shards)
		for i := 0; i < opts.Shards; i++ {
			go func(i int) {
				shards[i], errs[i] = createShardFile(shardPath(path, i), locals[i], opts, nil)
				done <- i
			}(i)
		}
		for i := 0; i < opts.Shards; i++ {
			<-done
		}
		for i, err := range errs {
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("tsq: creating shard %d: %w", i, err)
			}
		}
	} else {
		// Fault-injection builds run serially so the hook observes a
		// deterministic write sequence.
		for i := 0; i < opts.Shards; i++ {
			shards[i], err = createShardFile(shardPath(path, i), locals[i], opts, wrap)
			if err != nil {
				cleanup()
				return nil, fmt.Errorf("tsq: creating shard %d: %w", i, err)
			}
		}
	}
	if err := writeManifest(path, manifestInfo{
		shards:      opts.Shards,
		n:           ds.N,
		k:           opts.K,
		symmetry:    !opts.DisableSymmetry,
		checksummed: !opts.DisableChecksums,
	}); err != nil {
		cleanup()
		return nil, err
	}
	sh, err := core.AssembleShards(shards)
	if err != nil {
		cleanup()
		return nil, err
	}
	return &DB{ds: sh.Dataset(), ix: sh}, nil
}

// manifestInfo is the decoded shard manifest.
type manifestInfo struct {
	shards      int
	n, k        int
	symmetry    bool
	checksummed bool
}

// Manifest layout (little endian, 36 bytes):
//
//	offset 0:  magic "TSQM"
//	offset 4:  format version (uint32, currently 1)
//	offset 8:  shard count (uint32)
//	offset 12: series length n (uint32)
//	offset 16: indexed coefficients k (uint32)
//	offset 20: flags (uint32; bit 0 = symmetry, bit 1 = checksummed)
//	offset 24: reserved (8 bytes, zero)
//	offset 32: CRC32C over bytes [0, 32)
//
// The record count is deliberately absent: it is derived from the shard
// files on open (and cross-checked against the partition function), so
// inserts never have to rewrite the manifest.
const manifestSize = 36

func encodeManifest(mi manifestInfo) []byte {
	buf := make([]byte, manifestSize)
	copy(buf, manifestMagic[:])
	binary.LittleEndian.PutUint32(buf[4:], 1)
	binary.LittleEndian.PutUint32(buf[8:], uint32(mi.shards))
	binary.LittleEndian.PutUint32(buf[12:], uint32(mi.n))
	binary.LittleEndian.PutUint32(buf[16:], uint32(mi.k))
	var flags uint32
	if mi.symmetry {
		flags |= superFlagSymmetry
	}
	if mi.checksummed {
		flags |= superFlagChecksums
	}
	binary.LittleEndian.PutUint32(buf[20:], flags)
	binary.LittleEndian.PutUint32(buf[32:], crc32.Checksum(buf[:32], crc32.MakeTable(crc32.Castagnoli)))
	return buf
}

func decodeManifest(buf []byte) (manifestInfo, error) {
	var mi manifestInfo
	if len(buf) < manifestSize {
		return mi, fmt.Errorf("tsq: shard manifest truncated (%d bytes, need %d)", len(buf), manifestSize)
	}
	if [4]byte(buf[:4]) != manifestMagic {
		return mi, fmt.Errorf("tsq: bad shard manifest magic %q", buf[:4])
	}
	if got, want := binary.LittleEndian.Uint32(buf[32:]), crc32.Checksum(buf[:32], crc32.MakeTable(crc32.Castagnoli)); got != want {
		return mi, fmt.Errorf("tsq: shard manifest checksum mismatch (stored %08x, computed %08x): torn or corrupt manifest", got, want)
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != 1 {
		return mi, fmt.Errorf("tsq: unsupported shard manifest version %d", v)
	}
	mi.shards = int(binary.LittleEndian.Uint32(buf[8:]))
	mi.n = int(binary.LittleEndian.Uint32(buf[12:]))
	mi.k = int(binary.LittleEndian.Uint32(buf[16:]))
	flags := binary.LittleEndian.Uint32(buf[20:])
	mi.symmetry = flags&superFlagSymmetry != 0
	mi.checksummed = flags&superFlagChecksums != 0
	if mi.shards < 2 || mi.shards > 1<<16 {
		return mi, fmt.Errorf("tsq: corrupt shard manifest: implausible shard count %d", mi.shards)
	}
	if mi.n <= 0 || mi.k <= 0 || mi.k > mi.n {
		return mi, fmt.Errorf("tsq: corrupt shard manifest: n=%d k=%d", mi.n, mi.k)
	}
	return mi, nil
}

// writeManifest commits the shard manifest: written in one call and
// synced, after every shard file is already durable.
func writeManifest(path string, mi manifestInfo) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("tsq: %w", err)
	}
	if _, err := f.WriteAt(encodeManifest(mi), 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("tsq: writing shard manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("tsq: syncing shard manifest: %w", err)
	}
	return f.Close()
}

// readManifest loads and validates the shard manifest at path.
func readManifest(path string) (manifestInfo, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return manifestInfo{}, fmt.Errorf("tsq: %w", err)
	}
	return decodeManifest(buf)
}

// sniffMagic reads the first four bytes of a file, distinguishing the
// single-file format (TSQF) from a shard manifest (TSQM).
func sniffMagic(path string) ([4]byte, error) {
	var magic [4]byte
	f, err := os.Open(path)
	if err != nil {
		return magic, fmt.Errorf("tsq: %w", err)
	}
	defer f.Close()
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return magic, fmt.Errorf("tsq: reading file header: %w", err)
	}
	return magic, nil
}

// openMode selects how openShardFile treats the write-ahead log.
type openMode int

const (
	// openRW is the normal open: acked-but-unfolded WAL records are
	// replayed into the file (then checkpointed away), the torn tail is
	// truncated, and the index accepts writes.
	openRW openMode = iota
	// openScrub is the read-only open used by CheckFile: pending WAL
	// records are replayed into a memory overlay only — the file and the
	// log are not modified — and the index refuses writes.
	openScrub
)

// OpenFile reopens a database created by CreateFile: a classic
// single-file database or a shard manifest with its per-shard files.
// Files written with and without page checksums are both recognized
// (the raw header flags field says which). Recovery runs here: any
// Insert/Delete that was acknowledged before a crash is replayed from
// the write-ahead log before the first query sees the index.
func OpenFile(path string) (*DB, error) {
	return openFileAny(path, nil, openRW)
}

// openFileAny dispatches on the leading magic: TSQM opens the sharded
// layout, anything else takes the single-file path (whose own header
// validation reports non-databases).
func openFileAny(path string, wrap func(storage.Backend) storage.Backend, mode openMode) (*DB, error) {
	magic, err := sniffMagic(path)
	if err != nil {
		return nil, err
	}
	if magic == manifestMagic {
		return openShardedFiles(path, wrap, mode)
	}
	return openFile(path, wrap, mode)
}

// openShardedFiles opens every shard file named by the manifest and
// reassembles the global id space. Any shard that fails validation is
// reported by ordinal and path — a half-written shard set never opens.
func openShardedFiles(path string, wrap func(storage.Backend) storage.Backend, mode openMode) (*DB, error) {
	mi, err := readManifest(path)
	if err != nil {
		return nil, err
	}
	shards := make([]*core.Index, mi.shards)
	cleanup := func() {
		for _, ix := range shards {
			if ix != nil {
				_ = ix.Close()
			}
		}
	}
	for i := 0; i < mi.shards; i++ {
		sp := shardPath(path, i)
		ix, err := openShardFile(sp, wrap, mode)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("tsq: shard %d (%s): %w", i, sp, err)
		}
		if got := ix.Dataset().N; got != mi.n {
			cleanup()
			_ = ix.Close()
			return nil, fmt.Errorf("tsq: shard %d (%s): series length %d, manifest says %d", i, sp, got, mi.n)
		}
		if got := ix.Options().K; got != mi.k {
			cleanup()
			_ = ix.Close()
			return nil, fmt.Errorf("tsq: shard %d (%s): k=%d, manifest says %d", i, sp, got, mi.k)
		}
		shards[i] = ix
	}
	sh, err := core.AssembleShards(shards)
	if err != nil {
		cleanup()
		return nil, fmt.Errorf("tsq: %w", err)
	}
	return &DB{ds: sh.Dataset(), ix: sh}, nil
}

// openFile is the single-file open path, with the same fault-injection
// hook as createFile.
func openFile(path string, wrap func(storage.Backend) storage.Backend, mode openMode) (*DB, error) {
	ix, err := openShardFile(path, wrap, mode)
	if err != nil {
		return nil, err
	}
	return &DB{ds: ix.Dataset(), ix: core.WrapIndex(ix)}, nil
}

// openShardFile opens one page file (a whole single-file database, or
// one shard of a sharded one) and returns its index, replaying the
// write-ahead log first.
//
// Recovery is physical redo: each pending record carries the full
// after-image of every page its operation wrote, so replay rewrites
// those pages (through the checksum layer, which recomputes trailers)
// and is idempotent — a crash during recovery just replays again. In
// openScrub mode the images land in the staging overlay instead, so
// the scrubber sees the healed state without modifying anything.
func openShardFile(path string, wrap func(storage.Backend) storage.Backend, mode openMode) (*core.Index, error) {
	physPageSize, flags, err := readRawHeader(path)
	if err != nil {
		return nil, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("tsq: %w", err)
	}
	// Read the log before building the manager: replayed images can lie
	// past the file's current end (the crash happened before the grown
	// pages were flushed), and allocation must resume after them.
	var (
		wlog    *wal.Log
		pending []wal.Record
	)
	if mode == openRW {
		wlog, pending, err = openWAL(path)
		if err != nil {
			return nil, err
		}
	} else {
		pending, _, err = wal.ReadPending(walPath(path))
		if err != nil {
			return nil, fmt.Errorf("tsq: reading write-ahead log: %w", err)
		}
	}
	closeAll := func(mgr *storage.Manager) {
		if mgr != nil {
			_ = mgr.Close()
		}
		if wlog != nil {
			_ = wlog.Close()
		}
	}
	fileBackend, err := storage.NewFileBackend(path, physPageSize)
	if err != nil {
		closeAll(nil)
		return nil, err
	}
	var backend storage.Backend = fileBackend
	if wrap != nil {
		backend = wrap(backend)
	}
	checksummed := flags&rawFlagChecksums != 0
	pageSize := physPageSize
	if checksummed {
		cb := storage.NewChecksumBackend(backend, physPageSize)
		backend = cb
		pageSize = cb.LogicalPageSize()
	}
	staged := storage.NewStagedBackend(backend)
	backend = staged
	// Resume allocation after the last page the file covers — or after
	// the last page the WAL is about to replay, whichever is further —
	// so post-reopen inserts cannot overwrite live pages.
	firstUnallocated := storage.PageID((st.Size() + int64(physPageSize) - 1) / int64(physPageSize))
	for _, rec := range pending {
		for _, img := range rec.Pages {
			if img.ID >= firstUnallocated {
				firstUnallocated = img.ID + 1
			}
		}
	}
	mgr := storage.NewManager(storage.Options{
		PageSize:         pageSize,
		Backend:          backend,
		FirstUnallocated: firstUnallocated,
	})
	if mode == openScrub && len(pending) > 0 {
		// Overlay-only replay: the transaction is deliberately never
		// committed or aborted; Close discards it.
		staged.Begin()
	}
	for _, rec := range pending {
		for _, img := range rec.Pages {
			if err := mgr.Write(img.ID, img.Data); err != nil {
				closeAll(mgr)
				return nil, fmt.Errorf("tsq: replaying WAL record %d (page %d): %w", rec.LSN, img.ID, err)
			}
		}
	}
	if mode == openRW && len(pending) > 0 {
		// Fold the replayed images in and start from an empty log.
		if err := mgr.Sync(); err != nil {
			closeAll(mgr)
			return nil, fmt.Errorf("tsq: syncing replayed WAL records: %w", err)
		}
		if err := wlog.Checkpoint(); err != nil {
			closeAll(mgr)
			return nil, fmt.Errorf("tsq: checkpointing after replay: %w", err)
		}
		wal.NoteReplayed(int64(len(pending)))
	}
	buf := make([]byte, pageSize)
	if err := mgr.Read(storage.PageID(1), buf); err != nil {
		closeAll(mgr)
		return nil, fmt.Errorf("tsq: reading superblock: %w", err)
	}
	si, err := decodeSuper(buf)
	if err != nil {
		closeAll(mgr)
		return nil, err
	}
	if si.checksummed != checksummed {
		closeAll(mgr)
		return nil, fmt.Errorf("tsq: corrupt file: header says checksums=%v but superblock says checksums=%v",
			checksummed, si.checksummed)
	}
	// The structural roots must lie inside the file, or every later page
	// access chases garbage.
	for _, ref := range []struct {
		name string
		id   storage.PageID
	}{{"tree meta", si.treeMeta}, {"heap directory", si.heapDir}} {
		if ref.id >= firstUnallocated {
			closeAll(mgr)
			return nil, fmt.Errorf("tsq: corrupt superblock: %s page %d outside file (%d pages)",
				ref.name, ref.id, firstUnallocated)
		}
	}
	ix, err := core.OpenIndex(mgr, si.treeMeta, si.heapDir, si.n, core.IndexOptions{
		K:           si.k,
		PageSize:    pageSize,
		UseSymmetry: si.symmetry,
	})
	if err != nil {
		closeAll(mgr)
		return nil, err
	}
	if mode == openRW {
		ix.AttachWAL(wlog, staged)
	} else {
		ix.SetReadOnly()
	}
	return ix, nil
}

// readRawHeader reads and validates the page-0 raw header, returning
// the physical page size and the format flags.
func readRawHeader(path string) (int, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("tsq: %w", err)
	}
	header := make([]byte, rawHeaderSize)
	if _, err := f.ReadAt(header, 0); err != nil {
		_ = f.Close()
		return 0, 0, fmt.Errorf("tsq: reading file header: %w", err)
	}
	if err := f.Close(); err != nil {
		return 0, 0, fmt.Errorf("tsq: %w", err)
	}
	if [4]byte(header[:4]) != fileMagic {
		return 0, 0, fmt.Errorf("tsq: %s is not a tsq database (magic %q)", path, header[:4])
	}
	pageSize := int(binary.LittleEndian.Uint32(header[4:]))
	if pageSize < 512 || pageSize > 1<<20 {
		return 0, 0, fmt.Errorf("tsq: implausible page size %d in %s", pageSize, path)
	}
	flags := binary.LittleEndian.Uint32(header[8:])
	return pageSize, flags, nil
}

// writeRawHeader stores the file magic, page size, and format flags in
// the reserved page-0 region, syncing the file before returning: the
// header is the create-time commit record.
func writeRawHeader(path string, pageSize int, flags uint32) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("tsq: %w", err)
	}
	header := make([]byte, rawHeaderSize)
	copy(header, fileMagic[:])
	binary.LittleEndian.PutUint32(header[4:], uint32(pageSize))
	binary.LittleEndian.PutUint32(header[8:], flags)
	if _, err := f.WriteAt(header, 0); err != nil {
		_ = f.Close()
		return fmt.Errorf("tsq: writing file header: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("tsq: syncing file header: %w", err)
	}
	return f.Close()
}

// Close releases the storage behind the database. Queries must not be
// issued afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ix.Close()
}

// Insert adds a series to the database (and to the file, for file-backed
// databases), returning its id.
func (db *DB) Insert(name string, s Series) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ix.Insert(name, s)
}

// Delete removes series id from the database. Its id is not reused.
func (db *DB) Delete(id int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ix.Delete(id)
}

// Checkpoint folds outstanding write-ahead-log records into the main
// file (every shard, for sharded databases) and truncates the logs.
// Writes already checkpoint automatically when a log outgrows its
// threshold, and Close checkpoints too; an explicit call is for tests
// and operators that want the log empty at a known point. A no-op for
// in-memory databases.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ix.Checkpoint()
}
