// Package cmd_test builds the command-line tools and exercises them end
// to end: generate a dataset, query it three ways, inspect a database
// file, regenerate a figure with charts. These are the workflows the
// README advertises.
package cmd_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// binaries are built once per test run.
var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tsqbin")
		if err != nil {
			buildErr = err
			return
		}
		binDir = dir
		for _, tool := range []string{"tsgen", "tsquery", "tsbench", "tsinspect"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
			cmd.Dir = "." // cmd/ directory
			if out, err := cmd.CombinedOutput(); err != nil {
				buildErr = err
				t.Logf("building %s: %s", tool, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(buildTools(t), bin), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestCLIGenerateAndRangeQuery(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "stocks.csv")
	out := runTool(t, "tsgen", "-kind", "stocks", "-count", "200", "-length", "128", "-out", data)
	if !strings.Contains(out, "wrote 200 series") {
		t.Fatalf("tsgen output: %q", out)
	}
	out = runTool(t, "tsquery", "-data", data, "-query", "stock0007", "-pipeline", "mv(5..20)", "-rho", "0.96")
	for _, needle := range []string{"200 series of length 128", "16 transformations", "range query around stock0007", "stats:"} {
		if !strings.Contains(out, needle) {
			t.Errorf("tsquery range output missing %q:\n%s", needle, out)
		}
	}
	// All three algorithms agree on the match count.
	counts := map[string]string{}
	for _, algo := range []string{"mt", "st", "seq"} {
		o := runTool(t, "tsquery", "-data", data, "-query", "stock0007", "-pipeline", "mv(5..20)", "-rho", "0.96", "-algo", algo, "-max-print", "0")
		for _, line := range strings.Split(o, "\n") {
			if strings.Contains(line, "matches") {
				counts[algo] = line[strings.Index(line, "):"):]
			}
		}
	}
	if counts["mt"] != counts["st"] || counts["mt"] != counts["seq"] {
		t.Errorf("algorithms disagree: %v", counts)
	}
}

func TestCLIJoinNNSubseqExplain(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "stocks.csv")
	runTool(t, "tsgen", "-kind", "stocks", "-count", "120", "-length", "128", "-out", data)

	join := runTool(t, "tsquery", "-data", data, "-join", "-pipeline", "mv(5..12)", "-rho", "0.99", "-max-print", "3")
	if !strings.Contains(join, "join (MT-index") {
		t.Errorf("join output:\n%s", join)
	}
	nn := runTool(t, "tsquery", "-data", data, "-query", "7", "-pipeline", "mv(1..10)", "-nn", "3")
	if !strings.Contains(nn, "3 nearest neighbors of stock0007") {
		t.Errorf("nn output:\n%s", nn)
	}
	sub := runTool(t, "tsquery", "-data", data, "-query", "stock0003", "-subseq", "20", "-offset", "40", "-dist", "0.5")
	if !strings.Contains(sub, "subsequence search: window 20") {
		t.Errorf("subseq output:\n%s", sub)
	}
	expl := runTool(t, "tsquery", "-data", data, "-query", "stock0003", "-pipeline", "mv(5..20)", "-rho", "0.96", "-explain")
	if !strings.Contains(expl, "chosen:") || !strings.Contains(expl, "seqscan") {
		t.Errorf("explain output:\n%s", expl)
	}
	// EXPLAIN ANALYZE runs all three algorithms with tracing on and
	// cross-checks every trace against the storage counters.
	if !strings.Contains(expl, "EXPLAIN ANALYZE") {
		t.Errorf("explain output missing EXPLAIN ANALYZE section:\n%s", expl)
	}
	if got := strings.Count(expl, "— OK"); got != 3 {
		t.Errorf("want 3 passing cross-check lines, got %d:\n%s", got, expl)
	}
	if strings.Contains(expl, "MISMATCH") {
		t.Errorf("trace/storage accounting mismatch:\n%s", expl)
	}
	for _, needle := range []string{"algorithm", "disk accesses", "cand ratio", "false pos"} {
		if !strings.Contains(expl, needle) {
			t.Errorf("explain summary table missing %q:\n%s", needle, expl)
		}
	}
	info := runTool(t, "tsquery", "-data", data, "-info")
	if !strings.Contains(info, "tree height") {
		t.Errorf("info output:\n%s", info)
	}
}

func TestCLIBenchWithCharts(t *testing.T) {
	dir := t.TempDir()
	out := runTool(t, "tsbench", "-fig", "8", "-queries", "2", "-stocks", "150", "-out", dir)
	if !strings.Contains(out, "Figure 8") {
		t.Errorf("tsbench output:\n%s", out)
	}
	for _, f := range []string{"fig8-time.svg", "fig8-disk.svg", "fig8-time.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", f)
		}
	}
	svg, _ := os.ReadFile(filepath.Join(dir, "fig8-time.svg"))
	if !strings.Contains(string(svg), "<svg") || !strings.Contains(string(svg), "polyline") {
		t.Error("fig8-time.svg is not a chart")
	}
	// Figures 3/4 are textual.
	out = runTool(t, "tsbench", "-fig", "3")
	if !strings.Contains(out, "mult-MBR") {
		t.Errorf("fig3 output:\n%s", out)
	}
}

// TestCLIBenchJSONEnvelope checks the machine-readable output format:
// a schema-3 envelope whose metadata makes BENCH_*.json files
// comparable across machines, including the run's resource footprint.
func TestCLIBenchJSONEnvelope(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	runTool(t, "tsbench", "-fig", "8", "-queries", "1", "-stocks", "120", "-json", jsonPath)
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		SchemaVersion int `json:"schema_version"`
		Meta          struct {
			GoVersion   string `json:"go_version"`
			GOMAXPROCS  int    `json:"gomaxprocs"`
			NumCPU      int    `json:"num_cpu"`
			PageSize    int    `json:"page_size"`
			GitRevision string `json:"git_revision"`
			Resources   struct {
				AllocBytes int64 `json:"alloc_bytes"`
				Mallocs    int64 `json:"mallocs"`
			} `json:"resources"`
		} `json:"meta"`
		Results []struct {
			Name    string  `json:"name"`
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("parsing %s: %v", jsonPath, err)
	}
	if out.SchemaVersion != 4 {
		t.Errorf("schema_version = %d, want 4", out.SchemaVersion)
	}
	if out.Meta.GoVersion == "" || out.Meta.GOMAXPROCS < 1 || out.Meta.NumCPU < 1 {
		t.Errorf("implausible run metadata: %+v", out.Meta)
	}
	if out.Meta.PageSize != 4096 {
		t.Errorf("page_size = %d, want 4096", out.Meta.PageSize)
	}
	if out.Meta.GitRevision == "" {
		t.Error("git_revision missing (expected a hash or \"unknown\")")
	}
	if out.Meta.Resources.AllocBytes <= 0 || out.Meta.Resources.Mallocs <= 0 {
		t.Errorf("schema-3 resource footprint implausible: %+v", out.Meta.Resources)
	}
	if len(out.Results) == 0 {
		t.Fatal("no results recorded")
	}
	for _, r := range out.Results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Errorf("implausible result row: %+v", r)
		}
	}
}

// TestCLIBundle: tsquery -bundle runs a query under full diagnostics
// and exports a support bundle that passes its own reconciliation.
func TestCLIBundle(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "stocks.csv")
	bundlePath := filepath.Join(dir, "bundle.json")
	runTool(t, "tsgen", "-kind", "stocks", "-count", "150", "-length", "128", "-out", data)
	out := runTool(t, "tsquery", "-data", data, "-query", "stock0007",
		"-pipeline", "mv(5..20)", "-rho", "0.96", "-bundle", bundlePath)
	if !strings.Contains(out, "reconciliation checks passed") {
		t.Errorf("tsquery -bundle output missing reconciliation verdict:\n%s", out)
	}

	raw, err := os.ReadFile(bundlePath)
	if err != nil {
		t.Fatal(err)
	}
	var b struct {
		SchemaVersion int     `json:"schema_version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		Build         struct {
			GoVersion string `json:"go_version"`
		} `json:"build"`
		Runtime struct {
			NumCPU int `json:"num_cpu"`
		} `json:"runtime"`
		Queries struct {
			Total uint64 `json:"total"`
		} `json:"queries"`
		Index struct {
			Series int `json:"series"`
		} `json:"index"`
		Reconciliation []struct {
			Name   string `json:"name"`
			OK     bool   `json:"ok"`
			Detail string `json:"detail"`
		} `json:"reconciliation"`
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatalf("parsing %s: %v", bundlePath, err)
	}
	if b.SchemaVersion != 1 {
		t.Errorf("bundle schema_version = %d, want 1", b.SchemaVersion)
	}
	if b.UptimeSeconds <= 0 || b.Build.GoVersion == "" || b.Runtime.NumCPU < 1 {
		t.Errorf("bundle envelope implausible: uptime=%v go=%q cpus=%d",
			b.UptimeSeconds, b.Build.GoVersion, b.Runtime.NumCPU)
	}
	if b.Queries.Total != 1 {
		t.Errorf("bundle recorded %d queries, want 1", b.Queries.Total)
	}
	if b.Index.Series != 150 {
		t.Errorf("bundle index series = %d, want 150", b.Index.Series)
	}
	if len(b.Reconciliation) == 0 {
		t.Fatal("bundle has no reconciliation checks")
	}
	for _, c := range b.Reconciliation {
		if !c.OK {
			t.Errorf("reconciliation check %s failed: %s", c.Name, c.Detail)
		}
	}

	// A corrupt destination path fails loudly with nonzero status.
	cmd := exec.Command(filepath.Join(buildTools(t), "tsquery"), "-data", data,
		"-query", "stock0007", "-pipeline", "mv(5..20)", "-rho", "0.96",
		"-bundle", filepath.Join(dir, "missing", "bundle.json"))
	if err := cmd.Run(); err == nil {
		t.Error("tsquery -bundle accepted an unwritable path")
	}
}

func TestCLIInspect(t *testing.T) {
	// Build a database through the library, then inspect it as a user
	// would.
	dir := t.TempDir()
	data := filepath.Join(dir, "stocks.csv")
	runTool(t, "tsgen", "-kind", "stocks", "-count", "80", "-length", "64", "-out", data)

	// tsquery has no "create file" mode; drive CreateFile via a tiny
	// helper program compiled on the fly.
	helper := filepath.Join(dir, "mkdb.go")
	prog := `package main

import (
	"encoding/csv"
	"os"
	"strconv"

	"tsq"
)

func main() {
	f, err := os.Open(os.Args[1])
	if err != nil {
		panic(err)
	}
	rows, err := csv.NewReader(f).ReadAll()
	f.Close()
	if err != nil {
		panic(err)
	}
	var names []string
	var ss []tsq.Series
	for _, row := range rows {
		names = append(names, row[0])
		s := make(tsq.Series, len(row)-1)
		for i, field := range row[1:] {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				panic(err)
			}
			s[i] = v
		}
		ss = append(ss, s)
	}
	db, err := tsq.CreateFile(os.Args[2], ss, names, tsq.Options{})
	if err != nil {
		panic(err)
	}
	if err := db.Close(); err != nil {
		panic(err)
	}
}
`
	if err := os.WriteFile(helper, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	dbPath := filepath.Join(dir, "db.tsq")
	cmd := exec.Command("go", "run", helper, data, dbPath)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("mkdb: %v\n%s", err, out)
	}

	out := runTool(t, "tsinspect", dbPath)
	for _, needle := range []string{"80 series of length 64", "paged storage: true", "tree levels", "integrity check... ok"} {
		if !strings.Contains(out, needle) {
			t.Errorf("tsinspect output missing %q:\n%s", needle, out)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	bin := buildTools(t)
	// Unknown algorithm fails loudly with nonzero status.
	cmd := exec.Command(filepath.Join(bin, "tsquery"), "-data", "/nonexistent.csv")
	if err := cmd.Run(); err == nil {
		t.Error("tsquery accepted a missing data file")
	}
	cmd = exec.Command(filepath.Join(bin, "tsgen"), "-kind", "nope")
	if err := cmd.Run(); err == nil {
		t.Error("tsgen accepted an unknown kind")
	}
	cmd = exec.Command(filepath.Join(bin, "tsinspect"), "/nonexistent.tsq")
	if err := cmd.Run(); err == nil {
		t.Error("tsinspect accepted a missing file")
	}
}

func TestCLICheck(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "stocks.csv")
	dbPath := filepath.Join(dir, "stocks.tsq")
	runTool(t, "tsgen", "-kind", "stocks", "-count", "60", "-length", "64", "-out", data)
	runTool(t, "tsquery", "-data", data, "-save", dbPath)

	// A clean file scrubs OK.
	out := runTool(t, "tsquery", "-db", dbPath, "-check")
	for _, needle := range []string{"checksums on", "result: OK"} {
		if !strings.Contains(out, needle) {
			t.Errorf("-check output missing %q:\n%s", needle, out)
		}
	}

	// Flip a byte mid-file: -check must report CORRUPT and exit nonzero.
	f, err := os.OpenFile(dbPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF, 0xEE, 0xDD}, st.Size()/2); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(filepath.Join(buildTools(t), "tsquery"), "-db", dbPath, "-check")
	corrupt, err := cmd.CombinedOutput()
	if err == nil {
		t.Errorf("-check exited zero on a corrupt file:\n%s", corrupt)
	}
	if !strings.Contains(string(corrupt), "result: CORRUPT") {
		t.Errorf("-check output on corrupt file:\n%s", corrupt)
	}
}

func TestCLIInspectReport(t *testing.T) {
	// Acceptance: the -inspect report's tree height and total entry count
	// match ground truth on a generated Fig. 5-style workload.
	dir := t.TempDir()
	data := filepath.Join(dir, "stocks.csv")
	dbPath := filepath.Join(dir, "stocks.tsq")
	runTool(t, "tsgen", "-kind", "stocks", "-count", "300", "-length", "128", "-out", data)
	runTool(t, "tsquery", "-data", data, "-save", dbPath)

	info := runTool(t, "tsquery", "-db", dbPath, "-info")
	im := regexp.MustCompile(`tree height (\d+)`).FindStringSubmatch(info)
	if im == nil {
		t.Fatalf("no tree height in -info output:\n%s", info)
	}
	wantHeight := im[1]

	out := runTool(t, "tsquery", "-db", dbPath, "-pipeline", "mv(5..20)", "-per-mbr", "4", "-inspect")
	hm := regexp.MustCompile(`R\*-tree: height=(\d+) entries=(\d+) nodes=(\d+)`).FindStringSubmatch(out)
	if hm == nil {
		t.Fatalf("no R*-tree header in -inspect output:\n%s", out)
	}
	if hm[1] != wantHeight {
		t.Errorf("-inspect height = %s, -info reports %s", hm[1], wantHeight)
	}
	entries, _ := strconv.Atoi(hm[2])
	nodes, _ := strconv.Atoi(hm[3])
	// Ground truth: one leaf entry per series plus one internal entry per
	// non-root node.
	if want := 300 + nodes - 1; entries != want {
		t.Errorf("-inspect entries = %d with %d nodes, want %d", entries, nodes, want)
	}
	for _, needle := range []string{
		"index health: 300 series of length 128",
		"leaf occupancy",
		"heap: 300 records (300 live, 0 deleted)",
		"storage: reads=",
		"transformation groups:",
	} {
		if !strings.Contains(out, needle) {
			t.Errorf("-inspect output missing %q:\n%s", needle, out)
		}
	}
	// mv(5..20) is 16 transforms in groups of 4.
	if rows := regexp.MustCompile(`(?m)^\d+ +4 `).FindAllString(out, -1); len(rows) != 4 {
		t.Errorf("expected 4 groups of size 4 in:\n%s", out)
	}
}
