// Command tsreplay re-runs a captured query workload (see tsquery
// -capture) against a database and verifies that every query still
// returns the bit-identical answer set, then reports per-query and
// aggregate effort deltas — a regression diff between the capture-time
// run and today's binary, options, or data layout.
//
// Usage:
//
//	tsreplay -capture queries.tscap -db stocks.tsq
//	tsreplay -capture queries.tscap -data stocks.csv -set flatlb=true
//	tsreplay -capture queries.tscap -db stocks.tsq -workers 4 -json
//
// Exit status: 0 when every query replayed with a matching digest, 1 on
// digest mismatches or replay errors, 2 on a corrupt capture file or
// usage error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tsq"
	"tsq/internal/csvio"
	"tsq/internal/obs"
	"tsq/internal/obs/capture"
)

func main() {
	os.Exit(run())
}

// overrides accumulates repeated -set key=value flags into a mutation
// of every replayed query's options.
type overrides struct {
	specs []string
	apply []func(*tsq.QueryOptions)
}

func (o *overrides) String() string { return strings.Join(o.specs, ",") }

func (o *overrides) Set(s string) error {
	key, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	switch key {
	case "flatlb", "naiveverify", "ordering":
		b, err := strconv.ParseBool(val)
		if err != nil {
			return fmt.Errorf("%s wants a boolean, got %q", key, val)
		}
		o.apply = append(o.apply, func(q *tsq.QueryOptions) {
			switch key {
			case "flatlb":
				q.FlatLB = b
			case "naiveverify":
				q.NaiveVerify = b
			case "ordering":
				q.UseOrdering = b
			}
		})
	case "algo":
		var alg tsq.Algorithm
		switch val {
		case "mt":
			alg = tsq.MTIndex
		case "st":
			alg = tsq.STIndex
		case "seq":
			alg = tsq.SeqScan
		case "auto":
			alg = tsq.Auto
		default:
			return fmt.Errorf("algo wants mt|st|seq|auto, got %q", val)
		}
		o.apply = append(o.apply, func(q *tsq.QueryOptions) { q.Algorithm = alg })
	default:
		return fmt.Errorf("unknown option %q (have flatlb, naiveverify, ordering, algo)", key)
	}
	o.specs = append(o.specs, s)
	return nil
}

func run() int {
	var ovr overrides
	var (
		capturePath = flag.String("capture", "", "capture file to replay (required)")
		data        = flag.String("data", "", "CSV dataset to replay against (this or -db is required)")
		dbPath      = flag.String("db", "", "a .tsq database file to replay against")
		workers     = flag.Int("workers", 0, "override Workers on every replayed query (0 keeps the captured value)")
		limit       = flag.Int64("limit", 0, "replay at most this many queries (0 = all)")
		shards      = flag.Int("shards", 0, "rebuild the -data dataset with this many shards before replaying (answer digests are shard-layout independent)")
		jsonOut     = flag.Bool("json", false, "emit the report as JSON instead of text")
		version     = flag.Bool("version", false, "print build information and exit")
	)
	flag.Var(&ovr, "set", "override a query option on every replayed query, e.g. -set flatlb=true (repeatable)")
	flag.Parse()
	if *version {
		fmt.Println("tsreplay", obs.ReadBuildSection())
		return 0
	}
	if *capturePath == "" {
		fmt.Fprintln(os.Stderr, "tsreplay: -capture is required")
		return 2
	}

	var db *tsq.DB
	switch {
	case *data != "" && *dbPath != "":
		fmt.Fprintln(os.Stderr, "tsreplay: -data and -db are exclusive")
		return 2
	case *dbPath != "":
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "tsreplay: -shards only applies to -data (a .tsq file carries its own shard layout)")
			return 2
		}
		var err error
		db, err = tsq.OpenFile(*dbPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsreplay: %v\n", err)
			return 2
		}
		defer func() { _ = db.Close() }()
	case *data != "":
		names, ss, err := csvio.ReadFile(*data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsreplay: %v\n", err)
			return 2
		}
		db, err = tsq.Open(ss, names, tsq.Options{Shards: *shards})
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsreplay: %v\n", err)
			return 2
		}
	default:
		fmt.Fprintln(os.Stderr, "tsreplay: -data or -db is required")
		return 2
	}

	opts := tsq.ReplayOptions{Limit: *limit}
	if len(ovr.apply) > 0 || *workers > 0 {
		w := *workers
		apply := ovr.apply
		opts.Override = func(q *tsq.QueryOptions) {
			for _, f := range apply {
				f(q)
			}
			if w > 0 {
				q.Workers = w
			}
		}
	}

	rep, err := tsq.ReplayFile(context.Background(), db, *capturePath, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsreplay: %v\n", err)
		if errors.Is(err, capture.ErrCorrupt) && rep != nil {
			fmt.Fprintf(os.Stderr, "tsreplay: capture is corrupt after %d records\n", rep.Records)
		}
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "tsreplay: %v\n", err)
			return 2
		}
	} else {
		rep.WriteText(os.Stdout)
	}
	if !rep.OK() {
		return 1
	}
	return 0
}
