package main

import (
	"os"
	"testing"
)

// TestGitRevisionDegradesGracefully: with no git binary on PATH (and no
// VCS stamp in the test binary's build info), gitRevision must fall back
// to "unknown" rather than erroring — benchmark runs in stripped
// containers still produce a valid envelope.
func TestGitRevisionDegradesGracefully(t *testing.T) {
	t.Setenv("PATH", "")
	rev := gitRevision()
	if rev == "" {
		t.Fatal("gitRevision returned empty, want a hash or \"unknown\"")
	}
	// Test binaries carry no vcs.revision stamp and PATH has no git, so
	// the only valid answer here is the fallback.
	if rev != "unknown" {
		t.Fatalf("gitRevision = %q, want \"unknown\" with no git available", rev)
	}
	meta := collectMeta()
	if meta.GitRevision != rev {
		t.Errorf("collectMeta revision = %q, want %q", meta.GitRevision, rev)
	}
}

// TestGitRevisionNotInRepo: with git available but run outside any
// repository, the rev-parse fallback must degrade to "unknown".
func TestGitRevisionNotInRepo(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	rev := gitRevision()
	if rev == "" {
		t.Fatal("gitRevision returned empty")
	}
	if rev != "unknown" {
		t.Fatalf("gitRevision = %q outside a repo, want \"unknown\"", rev)
	}
}
